(* Benchmark harness.

   Two kinds of output:

   1. Reproduction sections — every figure/claim of the paper's
      evaluation regenerated in the simulator (Fig. 3, the 4-minute
      video demonstration, the red/green GUI), plus the extension
      experiments of DESIGN.md (scaling, ablations, topology
      families). Each prints the same rows/series the paper reports.

   2. Microbenchmarks — bechamel Test.make timings of the hot
      substrate operations (SPF, LPM, OF codec, flow-table lookup,
      LLDP codec, LSA Fletcher checksum, RIB churn).

   Usage: main.exe [all|fig3|demo|failure|restart|gui|scaling|ablation|families|micro]
   Default "all" runs everything, with scaling capped at 250 switches
   (the full 1000-switch sweep takes tens of minutes; request it with
   `main.exe scaling`). *)

open Rf_packet
module Experiment = Rf_core.Experiment

let std = Format.std_formatter

let section name = Format.fprintf std "@.=== %s ===@." name

(* ------------------------------------------------------------------ *)
(* Microbenchmark fixtures                                             *)
(* ------------------------------------------------------------------ *)

let ip = Ipv4_addr.of_string_exn

let pfx = Ipv4_addr.Prefix.of_string_exn

(* A converged 24-router OSPF line; its first daemon then re-runs SPF
   under the timer. *)
let spf_fixture () =
  let engine = Rf_sim.Engine.create () in
  let join a b =
    Rf_routing.Iface.set_transmit a (fun f ->
        ignore
          (Rf_sim.Engine.schedule engine (Rf_sim.Vtime.span_ms 1) (fun () ->
               Rf_routing.Iface.deliver b f)));
    Rf_routing.Iface.set_transmit b (fun f ->
        ignore
          (Rf_sim.Engine.schedule engine (Rf_sim.Vtime.span_ms 1) (fun () ->
               Rf_routing.Iface.deliver a f)))
  in
  let routers =
    Array.init 24 (fun i ->
        let rid = ip (Printf.sprintf "10.255.0.%d" (i + 1)) in
        let rib = Rf_routing.Rib.create () in
        Rf_routing.Ospfd.create engine
          (Rf_routing.Ospfd.default_config ~router_id:rid)
          rib)
  in
  Array.iteri
    (fun i d ->
      let stub =
        Rf_routing.Iface.create
          ~name:(Printf.sprintf "stub%d" i)
          ~mac:(Mac.make_local (9000 + i))
          ~ip:(ip (Printf.sprintf "10.9.%d.1" i))
          ~prefix_len:24 ()
      in
      Rf_routing.Ospfd.add_interface d ~passive:true stub)
    routers;
  for i = 0 to Array.length routers - 2 do
    let ia =
      Rf_routing.Iface.create
        ~name:(Printf.sprintf "r%d" i)
        ~mac:(Mac.make_local (9100 + (2 * i)))
        ~ip:(ip (Printf.sprintf "172.20.%d.1" i))
        ~prefix_len:30 ()
    in
    let ib =
      Rf_routing.Iface.create
        ~name:(Printf.sprintf "l%d" (i + 1))
        ~mac:(Mac.make_local (9101 + (2 * i)))
        ~ip:(ip (Printf.sprintf "172.20.%d.2" i))
        ~prefix_len:30 ()
    in
    join ia ib;
    Rf_routing.Ospfd.add_interface routers.(i) ia;
    Rf_routing.Ospfd.add_interface routers.(i + 1) ib
  done;
  Array.iter Rf_routing.Ospfd.start routers;
  ignore (Rf_sim.Engine.run ~until:(Rf_sim.Vtime.of_s 60.) engine);
  routers.(0)

let trie_fixture () =
  let trie = Rf_routing.Prefix_trie.create () in
  let rng = Rf_sim.Rng.create 11 in
  for _ = 1 to 10_000 do
    let addr = Ipv4_addr.of_int32 (Int32.of_int (Rf_sim.Rng.int rng 0x3FFFFFFF)) in
    let len = 8 + Rf_sim.Rng.int rng 17 in
    Rf_routing.Prefix_trie.insert trie (Ipv4_addr.Prefix.make addr len) len
  done;
  trie

let flow_table_fixture () =
  let engine = Rf_sim.Engine.create () in
  let table = Rf_net.Flow_table.create () in
  let now = Rf_sim.Engine.now engine in
  for i = 0 to 999 do
    let prefix =
      Ipv4_addr.Prefix.make (Ipv4_addr.of_octets 10 (i lsr 8) (i land 0xff) 0) 24
    in
    let fm =
      Rf_openflow.Of_msg.flow_add
        ~priority:(0x4000 + (i land 0xff))
        (Rf_openflow.Of_match.nw_dst_prefix prefix)
        [ Rf_openflow.Of_action.output ((i mod 16) + 1) ]
    in
    ignore (Rf_net.Flow_table.apply_flow_mod table ~now fm)
  done;
  table

let sample_udp_frame =
  Packet.udp ~src_mac:(Mac.make_local 1) ~dst_mac:(Mac.make_local 2)
    ~src_ip:(ip "10.0.1.2") ~dst_ip:(ip "10.0.200.2")
    (Udp.make ~src_port:5004 ~dst_port:1234 (String.make 1200 'v'))

let sample_flow_mod_wire =
  Rf_openflow.Of_codec.to_wire
    (Rf_openflow.Of_msg.msg
       (Rf_openflow.Of_msg.Flow_mod
          (Rf_openflow.Of_msg.flow_add
             (Rf_openflow.Of_match.nw_dst_prefix (pfx "10.0.7.0/24"))
             [
               Rf_openflow.Of_action.Set_dl_src (Mac.make_local 77);
               Rf_openflow.Of_action.Set_dl_dst (Mac.make_local 78);
               Rf_openflow.Of_action.output 3;
             ])))

let sample_lldp_wire = Lldp.to_wire (Lldp.discovery_probe ~dpid:42L ~port:7)

let sample_lsa =
  {
    Ospf_pkt.age = 1;
    options = 2;
    link_state_id = ip "10.255.0.1";
    adv_router = ip "10.255.0.1";
    seq = Ospf_pkt.initial_seq;
    body =
      Ospf_pkt.Router
        {
          links =
            List.init 8 (fun i ->
                {
                  Ospf_pkt.link_id = ip (Printf.sprintf "10.255.0.%d" (i + 2));
                  link_data = ip (Printf.sprintf "172.16.%d.1" i);
                  link_type = Ospf_pkt.Point_to_point;
                  metric = 10;
                });
        };
  }

(* Telemetry substrate: spans, counters and histogram observes sit on
   every hot path now, so their cost must stay in the noise. *)
let obs_fixture () =
  let m = Rf_obs.Metrics.create () in
  let tracer = Rf_obs.Tracer.create () in
  let c = Rf_obs.Metrics.counter m "bench_counter_total" in
  let h = Rf_obs.Metrics.histogram m "bench_seconds" in
  (m, tracer, c, h)

(* Forwarding-state auditor on a 28-switch ring (the E9 scale): one
   host subnet per switch, RouteFlow-style classifiers (dl_type 0x800 +
   nw_dst /24, MAC rewrites, one output) pointing the short way round.
   The steady-state unit of work is one classifier snapshot push that
   reroutes a single remote prefix between the two ring directions:
   both variants deliver, so the incremental path re-walks only the
   affected (class, switch) pairs and opens no windows. *)
let audit_ring = 28

let audit_rules ~flip dpid =
  let n = audit_ring in
  let i = Int64.to_int dpid in
  let pfx_of j = pfx (Printf.sprintf "10.0.%d.0/24" j) in
  let rules = ref [] in
  let seq = ref 0 in
  List.iter
    (fun j ->
      if j <> i then begin
        incr seq;
        let fwd = (j - i + n) mod n and bwd = (i - j + n) mod n in
        let port = if fwd <= bwd then 1 else 2 in
        (* The flapping prefix swaps direction each iteration. *)
        let port = if flip && j = ((i mod n) + 1) then 3 - port else port in
        rules :=
          Rf_obs.Fwd_model.rule_of_actions
            ~match_:(Rf_openflow.Of_match.nw_dst_prefix (pfx_of j))
            ~priority:(0x4000 + (24 * 64))
            ~seq:!seq
            [
              Rf_openflow.Of_action.Set_dl_src Mac.zero;
              Rf_openflow.Of_action.Set_dl_dst Mac.zero;
              Rf_openflow.Of_action.output port;
            ]
          :: !rules
      end)
    (List.init n (fun k -> k + 1));
  List.rev !rules

let audit_fixture () =
  let au = Rf_obs.Auditor.create () in
  let n = audit_ring in
  for i = 1 to n do
    Rf_obs.Auditor.add_switch au (Int64.of_int i)
  done;
  for i = 1 to n do
    let j = (i mod n) + 1 in
    Rf_obs.Auditor.add_link au
      ~a:(Int64.of_int i, 1)
      ~b:(Int64.of_int j, 2)
  done;
  for i = 1 to n do
    Rf_obs.Auditor.add_host au ~dpid:(Int64.of_int i) ~port:3
      (pfx (Printf.sprintf "10.0.%d.0/24" i))
  done;
  for i = 1 to n do
    Rf_obs.Auditor.set_switch_rules au (Int64.of_int i)
      (audit_rules ~flip:false (Int64.of_int i))
  done;
  au

let micro_tests () =
  let open Bechamel in
  let _obs_m, obs_tracer, obs_c, obs_h = obs_fixture () in
  let spf_daemon = spf_fixture () in
  (* Steady-state SPF work unit: a far-end router's LSA flaps between
     two link metrics each iteration, so the incremental path repairs a
     small subtree while the full-recompute oracle row rebuilds the
     whole 24-router tree from the LSDB. *)
  let flap_rid = ip "10.255.0.22" in
  let flap_lsa =
    List.find
      (fun (l : Ospf_pkt.lsa) -> Ipv4_addr.compare l.adv_router flap_rid = 0)
      (Rf_routing.Ospfd.lsdb spf_daemon)
  in
  let flap_seq = ref flap_lsa.Ospf_pkt.seq in
  let flap_up = ref false in
  let flap_install () =
    flap_seq := Int32.succ !flap_seq;
    flap_up := not !flap_up;
    let metric = if !flap_up then 11 else 10 in
    let body =
      match flap_lsa.Ospf_pkt.body with
      | Ospf_pkt.Router { links } ->
          Ospf_pkt.Router
            {
              links =
                List.map
                  (fun (l : Ospf_pkt.router_link) ->
                    match l.link_type with
                    | Ospf_pkt.Point_to_point -> { l with metric }
                    | _ -> l)
                  links;
            }
      | b -> b
    in
    Rf_routing.Ospfd.install_lsa spf_daemon
      { flap_lsa with seq = !flap_seq; body }
  in
  let trie = trie_fixture () in
  let table = flow_table_fixture () in
  let parsed_frame =
    match Packet.parse sample_udp_frame with Ok p -> p | Error e -> failwith e
  in
  let key = Rf_openflow.Of_match.key_of_packet ~in_port:1 parsed_frame in
  let pkt_cursor = Packet.Cursor.create () in
  let fm_cursor = Rf_openflow.Of_codec.Flow_mod_cursor.create () in
  let rib = Rf_routing.Rib.create () in
  let churn_route =
    {
      Rf_routing.Rib.r_prefix = pfx "10.1.2.0/24";
      r_proto = Rf_routing.Rib.Ospf;
      r_distance = 110;
      r_metric = 30;
      r_next_hop = Some (ip "172.16.0.2");
      r_iface = "eth1";
    }
  in
  [
    Test.make ~name:"spf_24_routers"
      (Staged.stage (fun () ->
           flap_install ();
           ignore (Rf_routing.Ospfd.spf_now spf_daemon)));
    Test.make ~name:"spf_24_routers_full"
      (Staged.stage (fun () ->
           flap_install ();
           ignore (Rf_routing.Ospfd.spf_now_full spf_daemon)));
    Test.make ~name:"lpm_lookup_10k_prefixes"
      (Staged.stage (fun () ->
           ignore (Rf_routing.Prefix_trie.lookup trie (ip "10.57.3.9"))));
    Test.make ~name:"flow_table_lookup_1k_entries"
      (Staged.stage (fun () -> ignore (Rf_net.Flow_table.lookup table key)));
    Test.make ~name:"flow_table_lookup_1k_linear"
      (Staged.stage (fun () ->
           ignore (Rf_net.Flow_table.lookup_linear table key)));
    Test.make ~name:"of_flow_mod_decode"
      (Staged.stage (fun () ->
           if
             not
               (Rf_openflow.Of_codec.Flow_mod_cursor.decode fm_cursor
                  sample_flow_mod_wire)
           then failwith "of_flow_mod_decode: reject"));
    Test.make ~name:"of_flow_mod_decode_alloc"
      (Staged.stage (fun () ->
           match Rf_openflow.Of_codec.of_wire sample_flow_mod_wire with
           | Ok _ -> ()
           | Error e -> failwith e));
    Test.make ~name:"packet_parse_udp_1200B"
      (Staged.stage (fun () ->
           if not (Packet.Cursor.parse_udp pkt_cursor sample_udp_frame) then
             failwith "packet_parse_udp: reject"));
    Test.make ~name:"packet_parse_udp_1200B_alloc"
      (Staged.stage (fun () ->
           match Packet.parse sample_udp_frame with
           | Ok _ -> ()
           | Error e -> failwith e));
    Test.make ~name:"lldp_probe_decode"
      (Staged.stage (fun () ->
           match Lldp.of_wire sample_lldp_wire with
           | Ok l -> ignore (Lldp.parse_discovery l)
           | Error e -> failwith e));
    Test.make ~name:"lsa_encode_fletcher"
      (Staged.stage (fun () -> ignore (Ospf_pkt.lsa_to_wire sample_lsa)));
    Test.make ~name:"rib_update_withdraw"
      (Staged.stage (fun () ->
           Rf_routing.Rib.update rib churn_route;
           Rf_routing.Rib.withdraw rib Rf_routing.Rib.Ospf churn_route.Rf_routing.Rib.r_prefix));
    Test.make ~name:"obs_counter_incr"
      (Staged.stage (fun () -> Rf_obs.Metrics.incr obs_c));
    Test.make ~name:"obs_histogram_observe"
      (Staged.stage (fun () -> Rf_obs.Metrics.observe obs_h 0.042));
    Test.make ~name:"obs_span_start_end"
      (Staged.stage (fun () ->
           let sp = Rf_obs.Tracer.span_start obs_tracer "bench.span" in
           Rf_obs.Tracer.span_end obs_tracer sp));
    Test.make ~name:"audit_update_incremental"
      (Staged.stage
         (let au = audit_fixture () in
          let rules_a = audit_rules ~flip:false 1L in
          let rules_b = audit_rules ~flip:true 1L in
          let flip = ref false in
          fun () ->
            flip := not !flip;
            Rf_obs.Auditor.set_switch_rules au 1L
              (if !flip then rules_b else rules_a)));
    Test.make ~name:"audit_full_recheck"
      (Staged.stage
         (let au = audit_fixture () in
          fun () -> Rf_obs.Auditor.full_recheck au));
    (* Engine dispatch with and without a profiler installed. Each run
       is a single event, so the profiled row carries the whole run
       envelope (run_begin/run_end, final GC sample) on top of the
       per-event tick — an upper bound, not the amortized cost. *)
    Test.make ~name:"engine_dispatch"
      (Staged.stage
         (let e = Rf_sim.Engine.create () in
          let nop () = () in
          fun () ->
            ignore (Rf_sim.Engine.schedule e (Rf_sim.Vtime.span_us 1) nop);
            ignore (Rf_sim.Engine.run e)));
    Test.make ~name:"engine_dispatch_profiled"
      (Staged.stage
         (let e = Rf_sim.Engine.create () in
          Rf_sim.Engine.set_profiler e (Some (Rf_obs.Profiler.create ()));
          let ent = Rf_obs.Profiler.component "bench" in
          let nop () = () in
          fun () ->
            ignore
              (Rf_sim.Engine.schedule ~entity:ent e (Rf_sim.Vtime.span_us 1)
                 nop);
            ignore (Rf_sim.Engine.run e)));
  ]

(* Machine-readable results, schema "rfauto-bench-v1" (documented in
   README): {"schema", "meta": {"schema_version","seed","suite"},
   "suites": {"micro": [{"name","mean_ns","runs"}]}}. mean_ns is the
   OLS ns/run estimate (null if the fit failed), runs the number of
   raw samples bechamel collected. The meta block pins provenance so a
   baseline diff can refuse to compare apples to oranges. *)
let bench_schema_version = 1

(* Engine fixtures use Engine.create's default seed; rng-driven
   fixtures derive from it. *)
let bench_seed = 42

let write_bench_json path ~suite rows samples_of =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"rfauto-bench-v1\",";
  Buffer.add_string buf
    (Printf.sprintf
       "\"meta\":{\"schema_version\":%d,\"seed\":%d,\"suite\":\"%s\"},"
       bench_schema_version bench_seed suite);
  Buffer.add_string buf "\"suites\":{\"micro\":[";
  List.iteri
    (fun i (name, est) ->
      if i > 0 then Buffer.add_char buf ',';
      let short =
        match String.index_opt name '/' with
        | Some j -> String.sub name (j + 1) (String.length name - j - 1)
        | None -> name
      in
      let mean =
        match est with
        | Some v when Float.is_finite v -> Printf.sprintf "%.1f" v
        | Some _ | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"mean_ns\":%s,\"runs\":%d}" short
           mean (samples_of name)))
    rows;
  Buffer.add_string buf "]}}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.fprintf std "bench json written to %s@." path

let short_name name =
  match String.index_opt name '/' with
  | Some j -> String.sub name (j + 1) (String.length name - j - 1)
  | None -> name

(* CI gate tolerance: microbenchmark OLS estimates on shared runners
   jitter well beyond the 10% experiment default, so the band is wide
   (35% relative, 200 ns absolute floor); only real slowdowns — like a
   fast path silently falling back to its oracle — clear it. *)
let bench_tolerance = { Rf_obs.Baseline.tol_rel = 0.35; tol_abs = 200.0 }

let baseline_run_of_estimates estimates =
  {
    Rf_obs.Baseline.run_label = "bench-micro";
    indicators =
      List.filter_map
        (fun (name, est) ->
          match est with
          | Some v when Float.is_finite v ->
              Some
                {
                  Rf_obs.Baseline.i_name = short_name name;
                  i_value = v;
                  i_unit = "ns";
                  i_lower_is_better = true;
                }
          | Some _ | None -> None)
        estimates;
  }

let run_micro ?json_out ?baseline ?save_baseline () =
  let open Bechamel in
  section "Microbenchmarks (bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" (micro_tests ()) in
  (* Jitter control: one short discarded pass first (pages in code,
     warms caches and the minor heap), then measure, retrying with a
     doubled quota until every row has a sample floor to regress the
     OLS fit on. *)
  let warm_cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) () in
  ignore (Benchmark.all warm_cfg instances tests);
  let min_samples = 25 in
  let rec measure attempt quota =
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    let enough =
      Hashtbl.fold
        (fun _ (b : Benchmark.t) acc -> acc && b.stats.samples >= min_samples)
        raw true
    in
    if enough || attempt >= 3 then raw else measure (attempt + 1) (2.0 *. quota)
  in
  let raw = measure 1 0.5 in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let clock =
    Hashtbl.find merged (Measure.label Toolkit.Instance.monotonic_clock)
  in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) clock []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.fprintf std "%-40s %16s@." "benchmark" "ns/run";
  let estimates =
    List.map
      (fun (name, v) ->
        let est =
          match Analyze.OLS.estimates v with
          | Some [ est ] ->
              Format.fprintf std "%-40s %16.1f@." name est;
              Some est
          | Some _ | None ->
              Format.fprintf std "%-40s %16s@." name "-";
              None
        in
        (name, est))
      rows
  in
  (match json_out with
  | None -> ()
  | Some path ->
      let samples_of name =
        match Hashtbl.find_opt raw name with
        | Some (b : Benchmark.t) -> b.stats.samples
        | None -> 0
      in
      write_bench_json path ~suite:"micro" estimates samples_of);
  let current = baseline_run_of_estimates estimates in
  (match save_baseline with
  | None -> ()
  | Some path ->
      Rf_obs.Baseline.save path current;
      Format.fprintf std "bench baseline written to %s@." path);
  match baseline with
  | None -> ()
  | Some path ->
      let base = Rf_obs.Baseline.load path in
      let entries =
        Rf_obs.Baseline.diff ~tol:bench_tolerance ~base ~current ()
      in
      Format.fprintf std "@.=== Perf gate vs %s ===@." path;
      Rf_obs.Baseline.pp_diff std entries;
      if Rf_obs.Baseline.has_regression entries then begin
        Format.fprintf std "perf gate: REGRESSED@.";
        exit 3
      end
      else Format.fprintf std "perf gate: ok@."

(* ------------------------------------------------------------------ *)

let run_fig3 () =
  section "E1 / Figure 3 — automatic vs manual configuration time";
  Experiment.print_fig3 std (Experiment.fig3 ())

let run_demo () =
  section "E2 — demonstration: pan-European video streaming";
  Experiment.print_demo std (Experiment.demo ())

let run_failure () =
  section "E3 — failure recovery under live traffic";
  Experiment.print_failure_recovery std (Experiment.failure_recovery ())

let run_restart () =
  section "E4 — controller crash/restart and anti-entropy reconciliation";
  Experiment.print_restart std (Experiment.restart ())

let run_gui () =
  section "E5 — GUI red/green progression (every 60 sim-seconds)";
  List.iter
    (fun f -> Format.fprintf std "%s@." f)
    (Experiment.gui_frames ~every_s:60.0 ())

let run_scaling ?(sizes = [ 50; 100; 250 ]) () =
  section "X1 — scaling (extension)";
  Experiment.print_scaling std (Experiment.scaling ~sizes ())

let run_ablation () =
  section "X2 — ablations (extension)";
  Experiment.print_ablation std "VM boot parallelism"
    (Experiment.ablation_parallel_boot ());
  Experiment.print_ablation std "LLDP probe interval"
    (Experiment.ablation_probe_interval ());
  Experiment.print_ablation std "RPC latency (controller placement)"
    (Experiment.ablation_rpc_latency ());
  Experiment.print_ablation std "routing protocol (OSPF vs RIPv2)"
    (Experiment.ablation_protocol ())

let run_obs () =
  section "X5 — telemetry: per-phase decomposition of E1 (extension)";
  Experiment.print_phases std (Experiment.phase_breakdown ())

let run_traffic () =
  section "E6 — traffic disruption during failure and restart";
  Experiment.print_traffic std (Experiment.traffic_disruption ());
  section "E6b — traffic scaling on a fat-tree (aggregate fabric)";
  Experiment.print_traffic_scaling ~show_rate:true std
    (Experiment.traffic_scaling ())

(* E11 json, same "rfauto-bench-v1" envelope as the micro suite: the
   meta block pins the workload and the run digest (identical for every
   shard count, or the run would have failed), the suite rows carry the
   per-shard-count figures. speedup is wall-clock vs the 1-shard run of
   the same sweep; bound is the Amdahl limit of the cut actually used,
   advisor_bound the advisor's limit for its own proposed cut (null for
   1 shard). *)
let write_shard_json path (r : Experiment.shard_result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"rfauto-bench-v1\",";
  Buffer.add_string buf
    (Printf.sprintf
       "\"meta\":{\"schema_version\":%d,\"seed\":%d,\"suite\":\"shard\",\"k\":%d,\"horizon_s\":%.1f,\"hosts\":%d,\"flows\":%d,\"digest\":\"%s\",\"fingerprint\":\"%s\",\"deterministic\":%b,\"legacy_agrees\":%b},"
       bench_schema_version r.Experiment.sh_seed r.Experiment.sh_k
       r.Experiment.sh_horizon_s r.Experiment.sh_hosts r.Experiment.sh_flows
       (match r.Experiment.sh_runs with
       | su :: _ -> su.Experiment.su_digest
       | [] -> "")
       (match r.Experiment.sh_runs with
       | su :: _ -> su.Experiment.su_fingerprint
       | [] -> "")
       r.Experiment.sh_deterministic r.Experiment.sh_legacy_agrees);
  Buffer.add_string buf "\"suites\":{\"shard\":[";
  List.iteri
    (fun i (su : Experiment.shard_speedup_run) ->
      if i > 0 then Buffer.add_char buf ',';
      let advisor =
        match List.assoc_opt su.Experiment.su_shards r.Experiment.sh_advisor_bounds with
        | Some b -> Printf.sprintf "%.4f" b
        | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"shards\":%d,\"mode\":\"%s\",\"windows\":%d,\"events\":%d,\"cross_msgs\":%d,\"lookahead_us\":%d,\"elapsed_s\":%.4f,\"events_per_s\":%.0f,\"speedup\":%.4f,\"bound\":%.4f,\"advisor_bound\":%s}"
           su.Experiment.su_shards
           (match su.Experiment.su_mode with
           | Rf_sim.Shard_engine.Parallel -> "parallel"
           | Rf_sim.Shard_engine.Sequential -> "sequential")
           su.Experiment.su_windows su.Experiment.su_events
           su.Experiment.su_cross_msgs su.Experiment.su_lookahead_us
           su.Experiment.su_elapsed_s
           (float_of_int su.Experiment.su_events
           /. Float.max 1e-9 su.Experiment.su_elapsed_s)
           su.Experiment.su_speedup su.Experiment.su_bound advisor))
    r.Experiment.sh_runs;
  Buffer.add_string buf "]}}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.fprintf std "bench json written to %s@." path

let run_shard ?json_out () =
  section "E11 — sharded-engine speedup (conservative lookahead)";
  let r =
    Experiment.shard_speedup ~k:10 ~horizon_s:15.0 ~shard_counts:[ 1; 2; 4; 8 ]
      ()
  in
  Experiment.print_shard ~wall:true std r;
  if not (r.Experiment.sh_deterministic && r.Experiment.sh_legacy_agrees)
  then begin
    Format.fprintf std "shard bench: DETERMINISM VIOLATION@.";
    exit 4
  end;
  match json_out with
  | None -> ()
  | Some path -> write_shard_json path r

let run_census () =
  section "X4 — control-plane message census (extension)";
  Experiment.print_census std (Experiment.census ())

let run_families () =
  section "X3 — topology families (extension)";
  Experiment.print_families std (Experiment.topo_families ())

let all_sections =
  [
    "all"; "fig3"; "demo"; "failure"; "restart"; "gui"; "scaling"; "ablation";
    "families"; "census"; "obs"; "traffic"; "shard"; "micro";
  ]

let () =
  (* argv: [section] [--json [PATH]] [--baseline PATH]
     [--save-baseline PATH]. All three apply to the micro suite;
     --json defaults to BENCH_6.json, --baseline diffs the run against
     a saved rfauto-baseline-v1 file and exits 3 on regression,
     --save-baseline refreshes that file. *)
  let json_out = ref None in
  let baseline = ref None in
  let save_baseline = ref None in
  let sections = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--json" ->
          if
            i + 1 < Array.length Sys.argv
            && String.length Sys.argv.(i + 1) > 0
            && Sys.argv.(i + 1).[0] <> '-'
            && not (List.mem Sys.argv.(i + 1) all_sections)
          then (
            json_out := Some Sys.argv.(i + 1);
            parse (i + 2))
          else (
            json_out := Some "BENCH_6.json";
            parse (i + 1))
      | "--baseline" when i + 1 < Array.length Sys.argv ->
          baseline := Some Sys.argv.(i + 1);
          parse (i + 2)
      | "--save-baseline" when i + 1 < Array.length Sys.argv ->
          save_baseline := Some Sys.argv.(i + 1);
          parse (i + 2)
      | s ->
          sections := s :: !sections;
          parse (i + 1)
  in
  parse 1;
  let what = match List.rev !sections with [] -> "all" | s :: _ -> s in
  (* each json-bearing suite has its own default artifact name *)
  let json_out =
    match (!json_out, what) with
    | Some "BENCH_6.json", "shard" -> Some "BENCH_9.json"
    | j, _ -> j
  in
  let baseline = !baseline in
  let save_baseline = !save_baseline in
  match what with
  | "fig3" -> run_fig3 ()
  | "demo" -> run_demo ()
  | "failure" -> run_failure ()
  | "restart" -> run_restart ()
  | "gui" -> run_gui ()
  | "scaling" -> run_scaling ~sizes:[ 50; 100; 250; 500; 1000 ] ()
  | "ablation" -> run_ablation ()
  | "families" -> run_families ()
  | "census" -> run_census ()
  | "obs" -> run_obs ()
  | "traffic" -> run_traffic ()
  | "shard" -> run_shard ?json_out ()
  | "micro" -> run_micro ?json_out ?baseline ?save_baseline ()
  | "all" ->
      run_fig3 ();
      run_demo ();
      run_failure ();
      run_restart ();
      run_gui ();
      run_scaling ();
      run_ablation ();
      run_families ();
      run_census ();
      run_obs ();
      run_traffic ();
      run_shard ();
      run_micro ?json_out ?baseline ?save_baseline ()
  | other ->
      Format.eprintf
        "unknown section %S (use all|fig3|demo|failure|restart|gui|scaling|ablation|families|census|obs|traffic|shard|micro, optionally with --json [PATH], --baseline PATH, --save-baseline PATH)@."
        other;
      exit 2
