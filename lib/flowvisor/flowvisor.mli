(** FlowVisor: a transparent OpenFlow proxy that lets several
    controllers share the same switches, each confined to its slice.

    Toward each switch, FlowVisor is the controller (it completes the
    handshake itself). Toward each slice controller, it impersonates
    every connected switch over a dedicated channel, answering
    handshakes from cached features, policing flow-mods and packet-outs
    against the slice's flowspace, classifying packet-ins to the owning
    slice, and translating transaction ids both ways. *)


type t

val create : Rf_sim.Engine.t -> ?controller_latency:Rf_sim.Vtime.span -> unit -> t

val add_slice :
  t ->
  Flowspace.t ->
  attach:(dpid:int64 -> Rf_net.Channel.endpoint -> unit) ->
  unit
(** [attach] is invoked once per (slice, switch) as switches complete
    their handshake; the endpoint speaks OpenFlow 1.0 and behaves like
    a direct connection to that switch. Classification follows slice
    registration order. Must be called before switches connect. *)

val switch_attach : t -> dpid:int64 -> Rf_net.Channel.endpoint -> unit
(** Give FlowVisor the controller-side endpoint of a switch's control
    channel — pass this (partially applied) as [attach_controller] to
    {!Rf_net.Network.build}. The [dpid] parameter is redundant with the
    handshake and only used for bookkeeping labels. *)

val set_on_flow_mod :
  t -> (dpid:int64 -> slice:string -> Rf_openflow.Of_msg.flow_mod -> unit) ->
  unit
(** Observer fired for every flow-mod a slice controller was permitted
    to install, before it is forwarded to the switch — the auditor's
    slice-attribution feed. Denied flow-mods never reach it. *)

(** {1 Introspection} *)

val slices : t -> string list

val switches_connected : t -> int64 list

val messages_to_slice : t -> string -> int
(** Switch→controller messages forwarded into a slice. *)

val messages_from_slice : t -> string -> int

val denied_flow_mods : t -> string -> int
(** Flow-mods rejected because they escaped the slice's flowspace. *)
