open Rf_packet
open Rf_openflow
module Of_conn = Rf_controller.Of_conn

type slice_state = {
  def : Flowspace.t;
  attach : dpid:int64 -> Rf_net.Channel.endpoint -> unit;
  to_slice : Rf_obs.Metrics.counter;
  from_slice : Rf_obs.Metrics.counter;
  denied : Rf_obs.Metrics.counter;
}

type slice_conn = {
  fv_end : Rf_net.Channel.endpoint;
  framer : Of_codec.Framer.t;
}

type switch_state = {
  sw_conn : Of_conn.t;
  features : Of_msg.features;
  slice_conns : (string, slice_conn) Hashtbl.t;
  xid_map : (int32, string * int32) Hashtbl.t;
  mutable next_xid : int32;
}

type t = {
  engine : Rf_sim.Engine.t;
  controller_latency : Rf_sim.Vtime.span;
  mutable slice_list : slice_state list;  (** registration order *)
  switches : (int64, switch_state) Hashtbl.t;
  mutable on_flow_mod : dpid:int64 -> slice:string -> Of_msg.flow_mod -> unit;
}

let create engine ?(controller_latency = Rf_sim.Vtime.span_ms 1) () =
  {
    engine;
    controller_latency;
    slice_list = [];
    switches = Hashtbl.create 64;
    on_flow_mod = (fun ~dpid:_ ~slice:_ _ -> ());
  }

let set_on_flow_mod t f = t.on_flow_mod <- f

let add_slice t def ~attach =
  let m = Rf_sim.Engine.metrics t.engine in
  let labels = [ ("slice", def.Flowspace.fs_name) ] in
  let slice =
    {
      def;
      attach;
      to_slice =
        Rf_obs.Metrics.counter m ~labels
          ~help:"Messages relayed from switches into a slice controller"
          "fv_to_slice_total";
      from_slice =
        Rf_obs.Metrics.counter m ~labels
          ~help:"Messages received from a slice controller"
          "fv_from_slice_total";
      denied =
        Rf_obs.Metrics.counter m ~labels
          ~help:"Slice messages denied by flowspace policy" "fv_denied_total";
    }
  in
  t.slice_list <- t.slice_list @ [ slice ]

let slice_named t name =
  List.find_opt (fun s -> String.equal s.def.Flowspace.fs_name name) t.slice_list

let send_to_slice slice conn (m : Of_msg.t) =
  Rf_obs.Metrics.incr slice.to_slice;
  Rf_net.Channel.send conn.fv_end (Of_codec.to_wire m)

let fresh_xid sw =
  sw.next_xid <- Int32.add sw.next_xid 1l;
  sw.next_xid

(* Forward a controller-originated request to the switch, remembering
   which slice and original xid a reply must return to. *)
let forward_to_switch sw ~slice_name (m : Of_msg.t) =
  let xid = fresh_xid sw in
  Hashtbl.replace sw.xid_map xid (slice_name, m.xid);
  Of_conn.send_msg sw.sw_conn { m with xid }

let classify_frame t frame ~in_port =
  match Packet.parse frame with
  | Error _ -> None
  | Ok pkt ->
      let key = Of_match.key_of_packet ~in_port pkt in
      List.find_opt (fun s -> Flowspace.owns_key s.def key) t.slice_list

let eperm_flow_mod xid =
  Of_msg.msg ~xid
    (Of_msg.Error
       {
         err_type = Of_msg.error_flow_mod_failed;
         err_code = 6 (* OFPFMFC_EPERM *);
         err_data = "flowvisor: match outside slice flowspace";
       })

let eperm_packet_out xid =
  Of_msg.msg ~xid
    (Of_msg.Error
       {
         err_type = Of_msg.error_bad_request;
         err_code = 4 (* OFPBRC_EPERM *);
         err_data = "flowvisor: packet outside slice flowspace";
       })

let handle_from_slice t sw slice conn (m : Of_msg.t) =
  Rf_obs.Metrics.incr slice.from_slice;
  let reply msg = send_to_slice slice conn msg in
  match m.payload with
  | Of_msg.Hello -> ()
  | Of_msg.Echo_request data -> reply (Of_msg.msg ~xid:m.xid (Of_msg.Echo_reply data))
  | Of_msg.Echo_reply _ -> ()
  | Of_msg.Features_request ->
      reply (Of_msg.msg ~xid:m.xid (Of_msg.Features_reply sw.features))
  | Of_msg.Get_config_request ->
      reply
        (Of_msg.msg ~xid:m.xid
           (Of_msg.Get_config_reply { flags = 0; miss_send_len = 128 }))
  | Of_msg.Set_config _ ->
      (* Pass through: slices sharing a switch share its miss_send_len;
         the RouteFlow slice raises it to get whole frames relayed. *)
      forward_to_switch sw ~slice_name:slice.def.Flowspace.fs_name m
  | Of_msg.Flow_mod fm ->
      if Flowspace.permits_match slice.def fm.fm_match then begin
        t.on_flow_mod ~dpid:sw.features.Of_msg.datapath_id
          ~slice:slice.def.Flowspace.fs_name fm;
        forward_to_switch sw ~slice_name:slice.def.Flowspace.fs_name m
      end
      else begin
        Rf_obs.Metrics.incr slice.denied;
        reply (eperm_flow_mod m.xid)
      end
  | Of_msg.Packet_out po ->
      let allowed =
        match Packet.parse po.po_data with
        | Error _ -> po.po_buffer_id <> None
        | Ok pkt ->
            let key = Of_match.key_of_packet ~in_port:po.po_in_port pkt in
            Flowspace.owns_key slice.def key
      in
      if allowed then
        forward_to_switch sw ~slice_name:slice.def.Flowspace.fs_name m
      else begin
        Rf_obs.Metrics.incr slice.denied;
        reply (eperm_packet_out m.xid)
      end
  | Of_msg.Stats_request _ | Of_msg.Barrier_request ->
      forward_to_switch sw ~slice_name:slice.def.Flowspace.fs_name m
  | Of_msg.Port_mod _ ->
      (* Port state is shared by every slice; FlowVisor denies it. *)
      Rf_obs.Metrics.incr slice.denied;
      reply
        (Of_msg.msg ~xid:m.xid
           (Of_msg.Error
              { err_type = 4 (* PORT_MOD_FAILED *); err_code = 1 (* EPERM *);
                err_data = "flowvisor: port-mod not permitted" }))
  | Of_msg.Vendor _ ->
      reply
        (Of_msg.msg ~xid:m.xid
           (Of_msg.Error
              {
                err_type = Of_msg.error_bad_request;
                err_code = 3;
                err_data = "";
              }))
  | Of_msg.Error _ | Of_msg.Features_reply _ | Of_msg.Get_config_reply _
  | Of_msg.Packet_in _ | Of_msg.Flow_removed _ | Of_msg.Port_status _
  | Of_msg.Stats_reply _ | Of_msg.Barrier_reply ->
      ()

let broadcast_to_slices t sw msg =
  Hashtbl.iter
    (fun name conn ->
      match slice_named t name with
      | Some slice -> send_to_slice slice conn msg
      | None -> ())
    sw.slice_conns

let handle_from_switch t sw (m : Of_msg.t) =
  match m.payload with
  | Of_msg.Packet_in pi -> (
      match classify_frame t pi.pi_data ~in_port:pi.pi_in_port with
      | Some slice -> (
          match Hashtbl.find_opt sw.slice_conns slice.def.Flowspace.fs_name with
          | Some conn -> send_to_slice slice conn m
          | None -> ())
      | None -> ())
  | Of_msg.Flow_removed fr -> (
      let owner =
        List.find_opt
          (fun s -> Flowspace.permits_match s.def fr.fr_match)
          t.slice_list
      in
      match owner with
      | Some slice -> (
          match Hashtbl.find_opt sw.slice_conns slice.def.Flowspace.fs_name with
          | Some conn -> send_to_slice slice conn m
          | None -> ())
      | None -> ())
  | Of_msg.Port_status _ -> broadcast_to_slices t sw m
  | Of_msg.Error _ | Of_msg.Stats_reply _ | Of_msg.Barrier_reply -> (
      match Hashtbl.find_opt sw.xid_map m.xid with
      | Some (slice_name, orig_xid) -> (
          (match m.payload with
          | Of_msg.Error _ -> () (* keep mapping: stats may still reply *)
          | Of_msg.Stats_reply _ | Of_msg.Barrier_reply ->
              Hashtbl.remove sw.xid_map m.xid
          | Of_msg.Hello | Of_msg.Echo_request _ | Of_msg.Echo_reply _
          | Of_msg.Vendor _ | Of_msg.Features_request | Of_msg.Features_reply _
          | Of_msg.Get_config_request | Of_msg.Get_config_reply _
          | Of_msg.Set_config _ | Of_msg.Packet_in _ | Of_msg.Flow_removed _
          | Of_msg.Port_status _ | Of_msg.Packet_out _ | Of_msg.Flow_mod _
          | Of_msg.Port_mod _ | Of_msg.Stats_request _ | Of_msg.Barrier_request ->
              ());
          match (slice_named t slice_name, Hashtbl.find_opt sw.slice_conns slice_name) with
          | Some slice, Some conn -> send_to_slice slice conn { m with xid = orig_xid }
          | (Some _ | None), (Some _ | None) -> ())
      | None -> ())
  | Of_msg.Hello | Of_msg.Echo_request _ | Of_msg.Echo_reply _ | Of_msg.Vendor _
  | Of_msg.Features_request | Of_msg.Features_reply _ | Of_msg.Get_config_request
  | Of_msg.Get_config_reply _ | Of_msg.Set_config _ | Of_msg.Packet_out _
  | Of_msg.Flow_mod _ | Of_msg.Port_mod _ | Of_msg.Stats_request _
  | Of_msg.Barrier_request ->
      ()

(* Correlation keys for the per-switch configuration span tree; the
   downstream phases (autoconfig, RPC, RF-server) close them. *)
let span_key prefix dpid = Printf.sprintf "%s:%Ld" prefix dpid

let switch_attach t ~dpid endpoint =
  let tracer = Rf_sim.Engine.tracer t.engine in
  (* The root of this switch's configuration span tree: opened the
     instant the switch reaches the slicer, closed when its VM's
     Quagga config has been applied. *)
  let root =
    Rf_obs.Tracer.span_start tracer
      ~attrs:[ ("dpid", Int64.to_string dpid) ]
      "sw.configure"
  in
  Rf_obs.Tracer.correlate tracer ~key:(span_key "cfg" dpid) root;
  let disc = Rf_obs.Tracer.span_start tracer ~parent:root "phase.discovery" in
  Rf_obs.Tracer.correlate tracer ~key:(span_key "disc" dpid) disc;
  let conn = Of_conn.create t.engine endpoint in
  Of_conn.set_on_handshake conn (fun features ->
      let dpid = features.Of_msg.datapath_id in
      let sw =
        {
          sw_conn = conn;
          features;
          slice_conns = Hashtbl.create 4;
          xid_map = Hashtbl.create 64;
          next_xid = 0x40000000l;
        }
      in
      Hashtbl.replace t.switches dpid sw;
      Of_conn.set_on_message conn (fun m -> handle_from_switch t sw m);
      (* A switch disconnect tears down its impersonated connection in
         every slice, so slice controllers observe the loss. *)
      Of_conn.set_on_close conn (fun () ->
          Hashtbl.iter
            (fun _ sconn -> Rf_net.Channel.close sconn.fv_end)
            sw.slice_conns;
          Hashtbl.remove t.switches dpid;
          (* A mid-configuration disconnect aborts whatever phase
             spans are still open for this switch; a reconnect opens
             a fresh tree. *)
          List.iter
            (fun prefix ->
              match
                Rf_obs.Tracer.take tracer ~key:(span_key prefix dpid)
              with
              | Some id ->
                  Rf_obs.Tracer.span_end tracer
                    ~attrs:[ ("status", "aborted") ]
                    id
              | None -> ())
            [ "quagga"; "vm"; "rpc"; "disc"; "cfg" ]);
      (* One impersonated switch connection per slice. *)
      List.iter
        (fun slice ->
          let fv_end, ctl_end =
            Rf_net.Channel.create t.engine ~latency:t.controller_latency
              ~name:
                (Printf.sprintf "fv-%s-%Ld" slice.def.Flowspace.fs_name dpid)
              ()
          in
          let sconn = { fv_end; framer = Of_codec.Framer.create () } in
          Hashtbl.replace sw.slice_conns slice.def.Flowspace.fs_name sconn;
          Rf_net.Channel.set_receiver fv_end (fun bytes ->
              match Of_codec.Framer.input sconn.framer bytes with
              | Ok msgs -> List.iter (handle_from_slice t sw slice sconn) msgs
              | Error e ->
                  Rf_sim.Engine.record t.engine ~component:"flowvisor"
                    ~event:"framing-error" e;
                  Rf_net.Channel.close fv_end);
          (* Behave like a switch: greet the slice controller. *)
          send_to_slice slice sconn (Of_msg.msg ~xid:0l Of_msg.Hello);
          slice.attach ~dpid ctl_end)
        t.slice_list)

let slices t = List.map (fun s -> s.def.Flowspace.fs_name) t.slice_list

let switches_connected t =
  Hashtbl.fold (fun d _ acc -> d :: acc) t.switches []
  |> List.sort Int64.compare

let stat t name f =
  match slice_named t name with
  | Some s -> Rf_obs.Metrics.counter_value (f s)
  | None -> 0

let messages_to_slice t name = stat t name (fun s -> s.to_slice)

let messages_from_slice t name = stat t name (fun s -> s.from_slice)

let denied_flow_mods t name = stat t name (fun s -> s.denied)
