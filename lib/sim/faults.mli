(** Deterministic fault injection for the simulator.

    A {!plan} is a declarative description of everything that goes
    wrong during a run: timed topology faults (link flaps, switch
    crashes, VM clone failures) plus an optional probabilistic fault
    profile for control channels. Probabilistic faults draw from an
    {!Rng.t} split off the engine's seeded root generator, so a run is
    replayable bit-for-bit from its seed — the foundation of the
    failure-recovery experiments and the determinism regression tests.

    This module is layer-agnostic: it only knows datapath ids and
    virtual time. The scenario layer supplies an {!injector} that maps
    each fault onto the emulated network, and components with a control
    channel (e.g. the controller-side OpenFlow connection) consult
    {!fate} per message to apply a {!chan_profile}. *)

(** {1 Timed topology faults} *)

type link_ref = { l_a : int64; l_b : int64 }
(** A switch–switch link named by its endpoints' datapath ids. *)

type event =
  | Link_down of link_ref
  | Link_up of link_ref  (** recovery of a previously failed link *)
  | Switch_crash of int64
      (** the switch loses its control connection; the datapath keeps
          forwarding headless *)
  | Switch_recover of int64
  | Vm_boot_failure of { dpid : int64; failures : int }
      (** arms the RouteFlow server so the next [failures] VM clone
          attempts for [dpid] fail; the server's retry policy re-queues
          the switch after each failed boot until a clone succeeds *)
  | Controller_crash of int
      (** RF-controller replica [i] dies: its RPC/replication endpoint
          stops reading and loses all volatile session state. Replica 0
          is the single controller of the legacy deployments *)
  | Controller_recover of int
      (** the replica restarts (new incarnation / rejoins the cluster
          as follower) and resynchronizes state *)
  | Controller_partition of { cp_a : int list; cp_b : int list }
      (** drop every RPC frame between the two replica subsets, both
          directions; replicas in neither subset keep connectivity *)
  | Controller_heal  (** lifts the active controller partition *)

type timed = { at : Vtime.t; ev : event }

(** Convenience constructors, taking the instant in simulated seconds. *)

val link_down : at_s:float -> int64 -> int64 -> timed

val link_up : at_s:float -> int64 -> int64 -> timed

val switch_crash : at_s:float -> int64 -> timed

val switch_recover : at_s:float -> int64 -> timed

val vm_boot_failure : at_s:float -> dpid:int64 -> failures:int -> timed

val controller_crash : at_s:float -> ?replica:int -> unit -> timed
(** [replica] defaults to 0, the legacy single controller. *)

val controller_recover : at_s:float -> ?replica:int -> unit -> timed

val controller_partition : at_s:float -> int list -> int list -> timed

val controller_heal : at_s:float -> timed

val pp_event : Format.formatter -> event -> unit

(** {1 Probabilistic control-channel faults} *)

type chan_profile = {
  cf_drop : float;  (** P(message silently dropped) *)
  cf_duplicate : float;  (** P(message delivered twice) *)
  cf_delay : float;  (** P(message delayed) *)
  cf_max_delay : Vtime.span;
      (** a delayed message waits a uniform draw from [0, cf_max_delay) *)
}
(** Per-message fault probabilities. [cf_drop + cf_duplicate + cf_delay]
    must not exceed 1. *)

val reliable : chan_profile
(** All probabilities zero. *)

val lossy :
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?max_delay:Vtime.span ->
  unit ->
  chan_profile
(** Defaults: 2% drop, 1% duplicate, 5% delay, 100 ms max delay —
    a plausibly overloaded control channel. *)

type fate = Deliver | Drop | Duplicate | Delay of Vtime.span

val fate : Rng.t -> chan_profile -> fate
(** Draws the fate of one message. Always consumes exactly one draw
    from the generator (two when the fate is [Delay]), keeping replay
    deterministic regardless of the outcome. *)

(** {1 Plans} *)

type plan = {
  events : timed list;
  control_faults : chan_profile option;
      (** applied to control channels that opt in (the scenario wires it
          into the connections it owns) *)
  rpc_faults : chan_profile option;
      (** applied to the topology-controller ↔ RF-controller RPC
          session, on both directions *)
}

val empty : plan

val plan :
  ?control_faults:chan_profile -> ?rpc_faults:chan_profile -> timed list -> plan

val is_empty : plan -> bool

(** {1 Execution} *)

type injector = {
  inj_link : up:bool -> link_ref -> unit;
  inj_switch : up:bool -> int64 -> unit;
  inj_vm_boot_failure : dpid:int64 -> failures:int -> unit;
  inj_controller : up:bool -> int -> unit;
      (** crash/restart of one controller replica *)
  inj_partition : (int list * int list) option -> unit;
      (** [Some (a, b)] installs a controller partition; [None] heals *)
}
(** How each fault is realised; supplied by the layer that owns the
    emulated network. *)

type handle

val schedule : Engine.t -> injector -> plan -> handle
(** Schedules every timed event on the engine (events in the past fire
    immediately). Each firing is recorded in the engine trace under
    component ["faults"] and dispatched through the injector. *)

val fired_count : handle -> int

val pending_count : handle -> int

val last_fired_at : handle -> Vtime.t option
(** When the most recent fault fired; [None] until the first fires.
    Reconvergence is measured from the value this holds after the final
    fault. *)
