type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type series = { mutable samples : float list; mutable n : int }

let series () = { samples = []; n = 0 }

let add s v =
  s.samples <- v :: s.samples;
  s.n <- s.n + 1

let count s = s.n

let sorted s = List.sort Float.compare s.samples

(* Linear interpolation on the (n-1)-spaced rank grid: p0 is the
   minimum, p100 the maximum, and interior quantiles interpolate
   between neighbours instead of clamping to an order statistic (p99
   of [1..5] is 4.96, not 5). *)
(* Total on all inputs: empty input yields nan (quantile of nothing is
   undefined, and callers fold it into reports where nan is visible
   rather than fatal); q is clamped to [0,1] with NaN q reading as 0;
   a single sample is every quantile of itself. *)
let percentile_of_sorted sorted_arr q =
  let n = Array.length sorted_arr in
  if n = 0 then Float.nan
  else begin
  let q = if Float.is_nan q then 0. else Float.min 1. (Float.max 0. q) in
  let idx = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor idx) in
  let hi = int_of_float (Float.ceil idx) in
  if lo = hi then sorted_arr.(lo)
  else
    let frac = idx -. float_of_int lo in
    (sorted_arr.(lo) *. (1. -. frac)) +. (sorted_arr.(hi) *. frac)
  end

let percentile s q =
  let arr = Array.of_list (sorted s) in
  percentile_of_sorted arr q

let mean s =
  if s.n = 0 then 0.
  else List.fold_left ( +. ) 0. s.samples /. float_of_int s.n

let summarize s =
  if s.n = 0 then None
  else begin
    let arr = Array.of_list (sorted s) in
    let n = Array.length arr in
    let mean = mean s in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. arr
      /. float_of_int n
    in
    Some
      {
        count = n;
        min = arr.(0);
        max = arr.(n - 1);
        mean;
        stddev = sqrt var;
        p50 = percentile_of_sorted arr 0.5;
        p90 = percentile_of_sorted arr 0.9;
        p99 = percentile_of_sorted arr 0.99;
      }
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%.3f mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f sd=%.3f"
    s.count s.min s.mean s.p50 s.p90 s.p99 s.max s.stddev

type counter = { mutable v : int }

let counter () = { v = 0 }

let incr c = c.v <- c.v + 1

let incr_by c n = c.v <- c.v + n

let value c = c.v
