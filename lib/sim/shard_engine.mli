(** Sharded discrete-event engine with conservative lookahead.

    Partitions a simulation into [shards] independent {!Engine}
    instances — each with its own event heap, virtual clock and
    {!Rng.derive_label}-seeded generator — and drives them in
    conservative time windows (Chandy–Misra–Bryant style, collapsed to
    synchronous windows): if every cross-shard message takes at least
    [lookahead] of virtual time to arrive, then all events in
    [\[t, t + lookahead)] are safe to execute in parallel, because
    nothing a neighbour does inside the window can arrive before the
    window ends. Cross-shard messages travel through a {!Mailbox} and
    are injected into destination heaps between windows in canonical
    [(vtime, src shard, seq)] order, so a run's outcome is a pure
    function of the seed — bit-identical whether the windows execute on
    one domain ([`Sequential]) or [shards] domains ([`Parallel]), and
    regardless of how the OS schedules those domains.

    Zero (or negative) lookahead would make every window empty — the
    horizon could never advance past the next event — so [create]
    rejects it outright when [shards > 1] rather than silently
    serialising; degrade to [shards = 1] explicitly if the topology cut
    has a zero-latency boundary link. *)

type 'msg t

type mode = Parallel | Sequential

val create :
  ?seed:int ->
  ?mode:mode ->
  lookahead:Vtime.span ->
  shards:int ->
  unit ->
  'msg t
(** [mode] defaults to [Parallel] (one domain per shard during {!run});
    [Sequential] runs the identical window schedule on the calling
    domain and produces bit-identical results. Shard [i]'s engine is
    seeded from [Rng.derive_label (Rng.create seed) ("shard:" ^ i)], so
    a shard's stream depends only on the root seed and its index —
    never on the shard count. Raises [Invalid_argument] if
    [shards < 1], or if [shards > 1] and [lookahead <= 0]. *)

val shards : 'msg t -> int

val mode : 'msg t -> mode

val lookahead : 'msg t -> Vtime.span

val engine : 'msg t -> int -> Engine.t
(** Shard [i]'s engine. Schedule setup events and read clocks/traces
    here; during {!run}, shard [i]'s events must touch only shard-local
    state and communicate outward solely via {!post}. *)

val set_handler : 'msg t -> int -> (at:Vtime.t -> src:int -> 'msg -> unit) -> unit
(** Installs shard [i]'s inbound-message handler. It runs as an event
    on shard [i]'s engine at the message's arrival instant. *)

val post : 'msg t -> src:int -> dst:int -> at:Vtime.t -> 'msg -> unit
(** Sends a cross-shard message from within one of shard [src]'s
    events. [at] is the arrival instant and must honour the lookahead
    contract: [at >= Engine.now (engine t src) + lookahead]. Raises
    [Invalid_argument] on a violation — a message under the horizon
    could land in a neighbour's already-executed past. [src = dst] is
    allowed and goes through the same deterministic merge. *)

type result = Quiescent | Deadline_reached

type stats = {
  st_windows : int;  (** conservative windows executed *)
  st_events : int;  (** events executed, summed over shards *)
  st_heap_pushes : int;  (** heap churn, summed over shards *)
  st_heap_peak : int;  (** per-shard heap peaks, summed *)
  st_messages : int;  (** cross-shard messages delivered *)
  st_undelivered : int;  (** messages whose arrival fell past [until] *)
}

val run : ?until:Vtime.t -> ?max_events:int -> 'msg t -> result
(** Drives every shard to [until] (or to global quiescence). On
    return all shard clocks sit at the same instant. [max_events]
    bounds each shard's executed events, as {!Engine.run} does. May be
    called again to continue from the previous horizon. *)

val undelivered : 'msg t -> (Vtime.t * int * int * 'msg) list
(** Messages posted during {!run} whose arrival instant lies beyond the
    [until] horizon — the cross-shard analogue of events left in the
    heap — as [(at, src, dst, payload)] in canonical order. They are
    kept and injected by the next [run] call; read them after the final
    horizon to account for in-flight work (e.g. probes that must be
    declared lost). *)

val stats : 'msg t -> stats
