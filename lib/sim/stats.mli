(** Simple statistics collectors used by the experiment harness. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type series
(** A growable collection of float samples. *)

val series : unit -> series

val add : series -> float -> unit

val count : series -> int

val summarize : series -> summary option
(** [None] when no sample was recorded. *)

val percentile : series -> float -> float
(** [percentile s q] with [q] in [0,1], linearly interpolated on the
    (n-1)-spaced rank grid (p0 = min, p100 = max, interior quantiles
    interpolate between neighbouring order statistics). Total on all
    inputs: an empty series yields [nan], [q] is clamped to [0,1]
    (NaN [q] reads as 0), and a single sample is every quantile of
    itself. *)

val percentile_of_sorted : float array -> float -> float
(** {!percentile} on an already-sorted array — the allocation-free
    form reports use; same totality contract. *)

val mean : series -> float

val pp_summary : Format.formatter -> summary -> unit

type counter

val counter : unit -> counter

val incr : counter -> unit

val incr_by : counter -> int -> unit

val value : counter -> int
