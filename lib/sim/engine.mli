(** Discrete-event simulation engine.

    A single engine owns the virtual clock and the event queue. All
    simulated components capture the engine and schedule closures on
    it; [run] drains the queue in timestamp order, advancing the clock
    to each event's instant before executing it. *)

type t

type timer
(** Handle for a scheduled event, used for cancellation. *)

val create : ?seed:int -> unit -> t

val create_with_rng : Rng.t -> t
(** Like [create] but with a caller-built generator — shard drivers use
    {!Rng.derive_label} streams so a shard's draws depend only on the
    root seed and the shard's label, never on the shard count. *)

val now : t -> Vtime.t

val rng : t -> Rng.t
(** The engine's root generator; components normally [Rng.split] it. *)

val trace : t -> Trace.t

val tracer : t -> Rf_obs.Tracer.t
(** The engine's telemetry bus; its clock is the virtual clock, so
    span/event timestamps are deterministic microseconds. [trace] and
    [tracer] share one underlying event stream. *)

val metrics : t -> Rf_obs.Metrics.t
(** The engine-wide metrics registry. Components get-or-create their
    instruments here at attach time and bump them on the hot path. *)

val set_profiler : t -> Rf_obs.Profiler.t option -> unit
(** Installs (or removes) a load profiler. With a profiler installed,
    [run] attributes each executed event's wall time to the entity it
    was scheduled with; without one the dispatch loop pays only a
    [None] branch and allocates nothing. *)

val profiler : t -> Rf_obs.Profiler.t option
(** Components consult this at construction time to decide whether to
    build entity handles and record message-matrix entries. *)

val next_time : t -> Vtime.t option
(** Timestamp of the earliest queued event, [None] when the queue is
    empty. Shard drivers ({!Shard_engine}) read this to compute the
    conservative-lookahead horizon they may [run ~until] safely. *)

val heap_depth : t -> int
(** Current event-queue depth. *)

val heap_pushes : t -> int
(** Cumulative events ever scheduled (heap churn). *)

val heap_peak : t -> int
(** High-water mark of the event-queue depth. *)

val schedule :
  ?entity:Rf_obs.Profiler.entity -> t -> Vtime.span -> (unit -> unit) -> timer
(** [schedule t after f] runs [f] once, [after] from now. A negative
    delay raises [Invalid_argument]. [entity] tags the event for load
    attribution; untagged events are charged to "unattributed". *)

val schedule_at :
  ?entity:Rf_obs.Profiler.entity -> t -> Vtime.t -> (unit -> unit) -> timer
(** Absolute variant; scheduling strictly in the past raises. *)

val periodic :
  ?entity:Rf_obs.Profiler.entity ->
  t -> ?jitter:Vtime.span -> Vtime.span -> (unit -> unit) -> timer
(** [periodic t every f] runs [f] every [every], first firing after
    [every]. With [~jitter:j], each interval is lengthened by a uniform
    draw from [0, j) (desynchronises protocol timers, as real
    implementations do). Cancel to stop. *)

val cancel : timer -> unit
(** Cancelling an already-fired one-shot timer is a no-op. *)

val record : t -> ?span:int -> component:string -> event:string -> string -> unit
(** Appends to the engine trace at the current instant; [?span] links
    the record to a telemetry span. *)

type run_result =
  | Quiescent  (** event queue drained *)
  | Deadline_reached  (** stopped at the [until] horizon *)
  | Stopped  (** a component called [stop] *)

val run : ?until:Vtime.t -> ?max_events:int -> t -> run_result
(** Drains the queue. [until] bounds virtual time (events after it stay
    queued; the clock is left at [until]). [max_events] guards against
    runaway simulations and raises [Failure] when exceeded. *)

val stop : t -> unit
(** Makes [run] return after the current event completes. *)

val events_executed : t -> int
