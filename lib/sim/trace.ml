type record = {
  time : Vtime.t;
  component : string;
  event : string;
  detail : string;
}

(* The trace is a thin facade over the [Rf_obs.Tracer] event bus: the
   engine shares one tracer between both, so legacy trace queries and
   span-linked telemetry read the same stream. [size]/[dropped] count
   what went through *this* facade, which is every event as long as
   components record via [Engine.record]. *)
type t = {
  tracer : Rf_obs.Tracer.t;
  capacity : int option;
  mutable size : int;
  mutable dropped : int;
}

let create ?capacity ?tracer () =
  let tracer =
    match tracer with Some tr -> tr | None -> Rf_obs.Tracer.create ()
  in
  { tracer; capacity; size = 0; dropped = 0 }

let record t ?span time ~component ~event detail =
  match t.capacity with
  | Some cap when t.size >= cap -> t.dropped <- t.dropped + 1
  | Some _ | None ->
      Rf_obs.Tracer.event_at t.tracer ?span ~us:(Vtime.to_us time) ~component
        ~kind:event detail;
      t.size <- t.size + 1

let size t = t.size

let dropped t = t.dropped

let of_event (ev : Rf_obs.Tracer.event) =
  {
    time = Vtime.of_us ev.time_us;
    component = ev.component;
    event = ev.kind;
    detail = ev.detail;
  }

let to_list t = List.map of_event (Rf_obs.Tracer.events t.tracer)

let filter t f = List.filter f (to_list t)

let find_first t f = List.find_opt f (to_list t)

let find_last t f = List.find_opt f (List.rev (to_list t))

let pp_record ppf r =
  Format.fprintf ppf "[%a] %-18s %-16s %s" Vtime.pp r.time r.component r.event
    r.detail

let dump ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) (to_list t)
