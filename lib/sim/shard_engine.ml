type mode = Parallel | Sequential

type 'msg t = {
  n : int;
  md : mode;
  la : Vtime.span;
  engines : Engine.t array;
  handlers : (at:Vtime.t -> src:int -> 'msg -> unit) option array;
  mailbox : 'msg Mailbox.t;
  mutable windows : int;
  mutable delivered : int;
  mutable undelivered : 'msg Mailbox.msg list;  (* canonical order *)
}

let create ?(seed = 42) ?(mode = Parallel) ~lookahead ~shards () =
  if shards < 1 then invalid_arg "Shard_engine.create: shards < 1";
  if shards > 1 && Vtime.span_compare lookahead Vtime.span_zero <= 0 then
    invalid_arg
      "Shard_engine.create: lookahead must be positive — a zero-latency \
       cross-shard link leaves no safe horizon (drop to shards = 1 for that \
       cut)";
  let root = Rng.create seed in
  {
    n = shards;
    md = mode;
    la = lookahead;
    engines =
      Array.init shards (fun i ->
          (* Label-derived so shard i's stream is a function of (seed, i)
             alone — stable when the shard count changes. *)
          Engine.create_with_rng
            (Rng.derive_label root (Printf.sprintf "shard:%d" i)));
    handlers = Array.make shards None;
    mailbox = Mailbox.create ~shards;
    windows = 0;
    delivered = 0;
    undelivered = [];
  }

let shards t = t.n

let mode t = t.md

let lookahead t = t.la

let engine t i =
  if i < 0 || i >= t.n then invalid_arg "Shard_engine.engine: bad shard";
  t.engines.(i)

let set_handler t i f =
  if i < 0 || i >= t.n then invalid_arg "Shard_engine.set_handler: bad shard";
  t.handlers.(i) <- Some f

let handler t i =
  match t.handlers.(i) with
  | Some f -> f
  | None -> invalid_arg "Shard_engine: message for a shard with no handler"

let post t ~src ~dst ~at payload =
  let now = Engine.now t.engines.(src) in
  if Vtime.(at < now) then
    invalid_arg "Shard_engine.post: arrival in the sender's past";
  if src = dst then
    (* Intra-shard: an ordinary local event; no horizon applies. *)
    let f = handler t dst in
    ignore (Engine.schedule_at t.engines.(dst) at (fun () -> f ~at ~src payload))
  else begin
    if Vtime.(at < Vtime.add now t.la) then
      invalid_arg
        "Shard_engine.post: arrival under the lookahead horizon — the \
         destination may already have executed past it";
    Mailbox.post t.mailbox ~src ~dst ~at payload
  end

type result = Quiescent | Deadline_reached

type stats = {
  st_windows : int;
  st_events : int;
  st_heap_pushes : int;
  st_heap_peak : int;
  st_messages : int;
  st_undelivered : int;
}

(* Move mailbox contents into destination heaps. Messages are handled
   in canonical (vtime, src, seq) order per destination, so heap
   tie-break seqs — and therefore execution order at equal instants —
   are a pure function of the message set. Arrivals past [until] are
   parked (the cross-shard analogue of events left queued). *)
let deliver t ~until =
  let fresh = ref [] in
  for dst = t.n - 1 downto 0 do
    fresh := List.rev_append (List.rev (Mailbox.collect t.mailbox ~dst)) !fresh
  done;
  let all =
    List.merge Mailbox.msg_compare t.undelivered
      (List.sort Mailbox.msg_compare !fresh)
  in
  t.undelivered <- [];
  let park = ref [] in
  List.iter
    (fun (m : 'msg Mailbox.msg) ->
      let in_horizon =
        match until with None -> true | Some h -> Vtime.(m.mx_at <= h)
      in
      if in_horizon then begin
        let f = handler t m.mx_dst in
        t.delivered <- t.delivered + 1;
        ignore
          (Engine.schedule_at t.engines.(m.mx_dst) m.mx_at (fun () ->
               f ~at:m.mx_at ~src:m.mx_src m.mx_payload))
      end
      else park := m :: !park)
    all;
  t.undelivered <- List.rev !park

let global_next t =
  Array.fold_left
    (fun acc e ->
      match (acc, Engine.next_time e) with
      | None, n -> n
      | acc, None -> acc
      | Some a, Some n -> if Vtime.(n < a) then Some n else Some a)
    None t.engines

(* One mutex/condvar pair per worker; the coordinator and the worker
   strictly alternate, so each signal has exactly one possible waiter.
   Engines hand off between the worker domain (inside a window) and
   the coordinator (between windows) through these mutexes, which
   gives the required happens-before edges. *)
type wjob = Idle | Run_until of Vtime.t | Quit

type wstate = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  mutable w_job : wjob;
  mutable w_done : bool;
  mutable w_exn : exn option;
}

let with_window_runner t ~max_events f =
  if t.md = Sequential || t.n = 1 then
    f (fun w_end ->
        Array.iter
          (fun e -> ignore (Engine.run ~until:w_end ~max_events e))
          t.engines)
  else begin
    let states =
      Array.init t.n (fun _ ->
          {
            w_mutex = Mutex.create ();
            w_cond = Condition.create ();
            w_job = Idle;
            w_done = true;
            w_exn = None;
          })
    in
    let worker i st =
      let rec loop () =
        Mutex.lock st.w_mutex;
        while st.w_job = Idle do
          Condition.wait st.w_cond st.w_mutex
        done;
        let job = st.w_job in
        Mutex.unlock st.w_mutex;
        match job with
        | Quit -> ()
        | Idle -> loop ()
        | Run_until w_end ->
            let exn =
              match Engine.run ~until:w_end ~max_events t.engines.(i) with
              | (_ : Engine.run_result) -> None
              | exception e -> Some e
            in
            Mutex.lock st.w_mutex;
            st.w_job <- Idle;
            st.w_done <- true;
            st.w_exn <- exn;
            Condition.broadcast st.w_cond;
            Mutex.unlock st.w_mutex;
            if exn = None then loop ()
      in
      loop ()
    in
    let domains =
      Array.mapi (fun i st -> Domain.spawn (fun () -> worker i st)) states
    in
    let stop_workers () =
      Array.iter
        (fun st ->
          Mutex.lock st.w_mutex;
          st.w_job <- Quit;
          Condition.broadcast st.w_cond;
          Mutex.unlock st.w_mutex)
        states;
      Array.iter Domain.join domains
    in
    let run_window w_end =
      Array.iter
        (fun st ->
          Mutex.lock st.w_mutex;
          st.w_job <- Run_until w_end;
          st.w_done <- false;
          Condition.broadcast st.w_cond;
          Mutex.unlock st.w_mutex)
        states;
      Array.iter
        (fun st ->
          Mutex.lock st.w_mutex;
          while not st.w_done do
            Condition.wait st.w_cond st.w_mutex
          done;
          Mutex.unlock st.w_mutex)
        states;
      Array.iter
        (fun st -> match st.w_exn with Some e -> raise e | None -> ())
        states
    in
    Fun.protect ~finally:stop_workers (fun () -> f run_window)
  end

let run ?until ?(max_events = 50_000_000) t =
  with_window_runner t ~max_events (fun run_window ->
      (* Leave every clock at the horizon, like [Engine.run ~until]. *)
      let settle () =
        match until with
        | Some h ->
            Array.iter
              (fun e -> ignore (Engine.run ~until:h ~max_events e))
              t.engines
        | None -> ()
      in
      let la_tail = Vtime.span_add t.la (Vtime.span_us (-1)) in
      let rec loop () =
        deliver t ~until;
        match global_next t with
        | None ->
            settle ();
            Quiescent
        | Some next -> (
            match until with
            | Some h when Vtime.(h < next) ->
                settle ();
                Deadline_reached
            | _ ->
                let w_end =
                  if t.n = 1 then
                    (* Single shard: no cross-shard horizon; drain in
                       one window. *)
                    match until with Some h -> h | None -> Vtime.add next la_tail
                  else
                    let cap = Vtime.add next la_tail in
                    match until with
                    | Some h when Vtime.(h < cap) -> h
                    | Some _ | None -> cap
                in
                run_window w_end;
                t.windows <- t.windows + 1;
                loop ())
      in
      loop ())

let undelivered t =
  List.map
    (fun (m : 'msg Mailbox.msg) -> (m.mx_at, m.mx_src, m.mx_dst, m.mx_payload))
    t.undelivered

let stats t =
  let sum f = Array.fold_left (fun acc e -> acc + f e) 0 t.engines in
  {
    st_windows = t.windows;
    st_events = sum Engine.events_executed;
    st_heap_pushes = sum Engine.heap_pushes;
    st_heap_peak = sum Engine.heap_peak;
    st_messages = t.delivered;
    st_undelivered = List.length t.undelivered;
  }
