type timer = {
  mutable cancelled : bool;
  thunk : unit -> unit;
  entity : Rf_obs.Profiler.entity;
}

type t = {
  mutable clock : Vtime.t;
  queue : timer Event_heap.t;
  rng : Rng.t;
  trace : Trace.t;
  tracer : Rf_obs.Tracer.t;
  metrics : Rf_obs.Metrics.t;
  unattributed : Rf_obs.Profiler.entity;
  mutable profiler : Rf_obs.Profiler.t option;
  mutable stop_requested : bool;
  mutable executed : int;
}

let create_with_rng rng =
  let tracer = Rf_obs.Tracer.create () in
  let t =
    {
      clock = Vtime.zero;
      queue = Event_heap.create ();
      rng;
      trace = Trace.create ~tracer ();
      tracer;
      metrics = Rf_obs.Metrics.create ();
      unattributed = Rf_obs.Profiler.unattributed ();
      profiler = None;
      stop_requested = false;
      executed = 0;
    }
  in
  (* The tracer stamps spans/events with the virtual clock, so all
     telemetry is deterministic for a given seed. *)
  Rf_obs.Tracer.set_clock tracer (fun () -> Vtime.to_us t.clock);
  t

let create ?(seed = 42) () = create_with_rng (Rng.create seed)

let now t = t.clock

let rng t = t.rng

let trace t = t.trace

let tracer t = t.tracer

let metrics t = t.metrics

let set_profiler t p = t.profiler <- p

let profiler t = t.profiler

let next_time t = Event_heap.peek_time t.queue

let heap_depth t = Event_heap.size t.queue

let heap_pushes t = Event_heap.pushes t.queue

let heap_peak t = Event_heap.peak t.queue

let schedule_at ?entity t at f =
  if Vtime.(at < t.clock) then
    invalid_arg "Engine.schedule_at: scheduling into the past";
  let entity =
    match entity with Some e -> e | None -> t.unattributed
  in
  let timer = { cancelled = false; thunk = f; entity } in
  Event_heap.push t.queue at timer;
  timer

let schedule ?entity t after f =
  if Vtime.span_is_negative after then
    invalid_arg "Engine.schedule: negative delay";
  schedule_at ?entity t (Vtime.add t.clock after) f

let periodic ?entity t ?jitter every f =
  if Vtime.span_is_negative every then
    invalid_arg "Engine.periodic: negative period";
  let handle =
    {
      cancelled = false;
      thunk = (fun () -> ());
      entity =
        (match entity with Some e -> e | None -> t.unattributed);
    }
  in
  let next_delay () =
    match jitter with
    | None -> every
    | Some j ->
        let extra_s = Rng.float t.rng (Vtime.span_to_s j) in
        Vtime.span_add every (Vtime.span_s extra_s)
  in
  (* Inner one-shots check [handle.cancelled]; after cancellation the
     pending event fires as a no-op and the chain ends. *)
  let rec arm () =
    ignore
      (schedule ?entity t (next_delay ()) (fun () ->
           if not handle.cancelled then begin
             f ();
             arm ()
           end))
  in
  arm ();
  handle

let cancel timer = timer.cancelled <- true

let record t ?span ~component ~event detail =
  Trace.record t.trace ?span t.clock ~component ~event detail

type run_result = Quiescent | Deadline_reached | Stopped

(* The dispatch loop must not allocate when no profiler is installed:
   [Event_heap.min_time] returns an unboxed int and [pop_entry] hands
   back the stored option, so the only per-event work is field reads,
   int stores and the [None] profiler branch. A Gc.minor_words budget
   test pins this. *)
let run ?until ?(max_events = 50_000_000) t =
  t.stop_requested <- false;
  (match t.profiler with
  | Some p -> Rf_obs.Profiler.run_begin p
  | None -> ());
  let rec loop () =
    if t.stop_requested then Stopped
    else if Event_heap.is_empty t.queue then Quiescent
    else
      let next = Event_heap.min_time t.queue in
      match until with
      | Some horizon when Vtime.(horizon < next) ->
          t.clock <- horizon;
          Deadline_reached
      | Some _ | None -> (
          match Event_heap.pop_entry t.queue with
          | None -> Quiescent
          | Some e ->
              let timer = e.Event_heap.value in
              t.clock <- e.Event_heap.time;
              if not timer.cancelled then begin
                t.executed <- t.executed + 1;
                if t.executed > max_events then
                  failwith "Engine.run: max_events exceeded";
                (match t.profiler with
                | Some p ->
                    Rf_obs.Profiler.tick p timer.entity
                      ~depth:(Event_heap.size t.queue)
                      ~now_us:(Vtime.to_us t.clock)
                | None -> ());
                timer.thunk ()
              end;
              loop ())
  in
  let result = loop () in
  (match (result, until) with
  | Quiescent, Some horizon when Vtime.(t.clock < horizon) -> t.clock <- horizon
  | (Quiescent | Deadline_reached | Stopped), _ -> ());
  (match t.profiler with
  | Some p ->
      Rf_obs.Profiler.run_end p
        ~depth:(Event_heap.size t.queue)
        ~now_us:(Vtime.to_us t.clock)
        ~pushes:(Event_heap.pushes t.queue)
        ~peak:(Event_heap.peak t.queue)
  | None -> ());
  result

let stop t = t.stop_requested <- true

let events_executed t = t.executed
