(** Structured trace of simulation events.

    Components record ("component", "event", detail) triples with the
    virtual timestamp; experiments query the trace afterwards to
    reconstruct timelines (e.g. when each switch became configured).

    Since the telemetry layer landed, the trace is a facade over an
    [Rf_obs.Tracer] event bus (the engine shares one tracer between
    the two), so every record is also a telemetry event and may carry
    a causal link into the span tree. *)

type record = {
  time : Vtime.t;
  component : string;
  event : string;
  detail : string;
}

type t

val create : ?capacity:int -> ?tracer:Rf_obs.Tracer.t -> unit -> t
(** With [~capacity:n], records past the [n]th are dropped (and
    counted — see [dropped]) instead of growing without bound. The
    engine passes its own [tracer]; a fresh private one is created
    otherwise. *)

val record :
  t -> ?span:int -> Vtime.t -> component:string -> event:string -> string ->
  unit
(** [?span] links the record to a telemetry span (e.g. a fault
    injection landing inside one switch's configuration span). *)

val size : t -> int
(** Records accepted (excludes dropped ones). *)

val dropped : t -> int
(** Records discarded because the trace was at capacity. *)

val to_list : t -> record list
(** All records in chronological (insertion) order. *)

val filter : t -> (record -> bool) -> record list

val find_first : t -> (record -> bool) -> record option

val find_last : t -> (record -> bool) -> record option

val pp_record : Format.formatter -> record -> unit

val dump : Format.formatter -> t -> unit
