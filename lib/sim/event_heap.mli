(** Binary min-heap of timestamped events.

    Ties on time are broken by insertion sequence number so that two
    events scheduled for the same instant fire in scheduling order —
    this is what makes the whole simulation deterministic. *)

type 'a entry = private { time : Vtime.t; seq : int; value : 'a }
(** Heap slot as stored: timestamp, insertion sequence number, payload. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> Vtime.t -> 'a -> unit
(** [push h time v] inserts [v] with priority [time]. *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest event, or [None] if empty. *)

val pop_entry : 'a t -> 'a entry option
(** Like [pop] but returns the stored entry without rebuilding a
    tuple — the allocation-free form the engine dispatch loop uses. *)

val peek_time : 'a t -> Vtime.t option
(** Time of the earliest event without removing it. *)

val min_time : 'a t -> Vtime.t
(** Allocation-free [peek_time]; raises [Invalid_argument] on an
    empty heap — check {!is_empty} first. *)

val pushes : 'a t -> int
(** Cumulative number of [push]es over the heap's lifetime (the
    insertion sequence counter) — the churn figure profilers report
    alongside depth. *)

val peak : 'a t -> int
(** Maximum size ever reached (tracked at push, so it is exact even
    between pops) — profilers report it as the heap's high-water
    mark. *)

val clear : 'a t -> unit
