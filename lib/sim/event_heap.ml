type 'a entry = { time : Vtime.t; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
  mutable peak : int;
}

let create () = { arr = Array.make 64 None; len = 0; next_seq = 0; peak = 0 }

let is_empty h = h.len = 0

let size h = h.len

let entry_lt a b =
  match Vtime.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> invalid_arg "Event_heap: hole in heap"

let grow h =
  let arr = Array.make (2 * Array.length h.arr) None in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.len && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h time value =
  if h.len = Array.length h.arr then grow h;
  let e = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  h.arr.(h.len) <- Some e;
  h.len <- h.len + 1;
  if h.len > h.peak then h.peak <- h.len;
  sift_up h (h.len - 1)

(* Returns the stored [Some entry] directly — the dispatch hot path
   must not allocate when profiling is off, so no tuple rebuild. *)
let pop_entry h =
  if h.len = 0 then None
  else begin
    let root = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- None;
    if h.len > 0 then sift_down h 0;
    root
  end

let pop h =
  match pop_entry h with
  | None -> None
  | Some e -> Some (e.time, e.value)

let peek_time h = if h.len = 0 then None else Some (get h 0).time

let min_time h =
  if h.len = 0 then invalid_arg "Event_heap.min_time: empty heap"
  else (get h 0).time

let pushes h = h.next_seq

let peak h = h.peak

let clear h =
  Array.fill h.arr 0 h.len None;
  h.len <- 0
