type link_ref = { l_a : int64; l_b : int64 }

type event =
  | Link_down of link_ref
  | Link_up of link_ref
  | Switch_crash of int64
  | Switch_recover of int64
  | Vm_boot_failure of { dpid : int64; failures : int }
  | Controller_crash of int
  | Controller_recover of int
  | Controller_partition of { cp_a : int list; cp_b : int list }
  | Controller_heal

type timed = { at : Vtime.t; ev : event }

let link ~at_s a b ev_of =
  let l = if Int64.compare a b <= 0 then { l_a = a; l_b = b } else { l_a = b; l_b = a } in
  { at = Vtime.of_s at_s; ev = ev_of l }

let link_down ~at_s a b = link ~at_s a b (fun l -> Link_down l)

let link_up ~at_s a b = link ~at_s a b (fun l -> Link_up l)

let switch_crash ~at_s dpid = { at = Vtime.of_s at_s; ev = Switch_crash dpid }

let switch_recover ~at_s dpid = { at = Vtime.of_s at_s; ev = Switch_recover dpid }

let vm_boot_failure ~at_s ~dpid ~failures =
  if failures < 0 then invalid_arg "Faults.vm_boot_failure: negative count";
  { at = Vtime.of_s at_s; ev = Vm_boot_failure { dpid; failures } }

let controller_crash ~at_s ?(replica = 0) () =
  if replica < 0 then invalid_arg "Faults.controller_crash: negative replica";
  { at = Vtime.of_s at_s; ev = Controller_crash replica }

let controller_recover ~at_s ?(replica = 0) () =
  if replica < 0 then invalid_arg "Faults.controller_recover: negative replica";
  { at = Vtime.of_s at_s; ev = Controller_recover replica }

let controller_partition ~at_s a b =
  { at = Vtime.of_s at_s; ev = Controller_partition { cp_a = a; cp_b = b } }

let controller_heal ~at_s = { at = Vtime.of_s at_s; ev = Controller_heal }

let pp_event ppf = function
  | Link_down { l_a; l_b } -> Format.fprintf ppf "link-down sw%Ld-sw%Ld" l_a l_b
  | Link_up { l_a; l_b } -> Format.fprintf ppf "link-up sw%Ld-sw%Ld" l_a l_b
  | Switch_crash d -> Format.fprintf ppf "switch-crash sw%Ld" d
  | Switch_recover d -> Format.fprintf ppf "switch-recover sw%Ld" d
  | Vm_boot_failure { dpid; failures } ->
      Format.fprintf ppf "vm-boot-failure sw%Ld x%d" dpid failures
  (* replica 0 keeps the historical single-controller spelling, so the
     pinned E4 trace fingerprint is unchanged *)
  | Controller_crash 0 -> Format.fprintf ppf "controller-crash"
  | Controller_crash r -> Format.fprintf ppf "controller-crash replica=%d" r
  | Controller_recover 0 -> Format.fprintf ppf "controller-recover"
  | Controller_recover r -> Format.fprintf ppf "controller-recover replica=%d" r
  | Controller_partition { cp_a; cp_b } ->
      Format.fprintf ppf "controller-partition {%s}|{%s}"
        (String.concat "," (List.map string_of_int cp_a))
        (String.concat "," (List.map string_of_int cp_b))
  | Controller_heal -> Format.fprintf ppf "controller-heal"

type chan_profile = {
  cf_drop : float;
  cf_duplicate : float;
  cf_delay : float;
  cf_max_delay : Vtime.span;
}

let reliable =
  { cf_drop = 0.; cf_duplicate = 0.; cf_delay = 0.; cf_max_delay = Vtime.span_zero }

let lossy ?(drop = 0.02) ?(duplicate = 0.01) ?(delay = 0.05)
    ?(max_delay = Vtime.span_ms 100) () =
  if drop < 0. || duplicate < 0. || delay < 0. || drop +. duplicate +. delay > 1.
  then invalid_arg "Faults.lossy: probabilities must be >= 0 and sum to <= 1";
  { cf_drop = drop; cf_duplicate = duplicate; cf_delay = delay; cf_max_delay = max_delay }

type fate = Deliver | Drop | Duplicate | Delay of Vtime.span

let fate rng p =
  let u = Rng.float rng 1.0 in
  if u < p.cf_drop then Drop
  else if u < p.cf_drop +. p.cf_duplicate then Duplicate
  else if u < p.cf_drop +. p.cf_duplicate +. p.cf_delay then
    Delay (Vtime.span_s (Rng.float rng (Vtime.span_to_s p.cf_max_delay)))
  else Deliver

type plan = {
  events : timed list;
  control_faults : chan_profile option;
  rpc_faults : chan_profile option;
}

let empty = { events = []; control_faults = None; rpc_faults = None }

let plan ?control_faults ?rpc_faults events =
  { events; control_faults; rpc_faults }

let is_empty p = p.events = [] && p.control_faults = None && p.rpc_faults = None

type injector = {
  inj_link : up:bool -> link_ref -> unit;
  inj_switch : up:bool -> int64 -> unit;
  inj_vm_boot_failure : dpid:int64 -> failures:int -> unit;
  inj_controller : up:bool -> int -> unit;
  inj_partition : (int list * int list) option -> unit;
}

type handle = {
  mutable fired : int;
  mutable pending : int;
  mutable last_at : Vtime.t option;
}

let dispatch inj = function
  | Link_down l -> inj.inj_link ~up:false l
  | Link_up l -> inj.inj_link ~up:true l
  | Switch_crash d -> inj.inj_switch ~up:false d
  | Switch_recover d -> inj.inj_switch ~up:true d
  | Vm_boot_failure { dpid; failures } -> inj.inj_vm_boot_failure ~dpid ~failures
  | Controller_crash r -> inj.inj_controller ~up:false r
  | Controller_recover r -> inj.inj_controller ~up:true r
  | Controller_partition { cp_a; cp_b } -> inj.inj_partition (Some (cp_a, cp_b))
  | Controller_heal -> inj.inj_partition None

(* Injections targeting one switch link into that switch's
   configuration span (registered under "cfg:<dpid>" by the slicer),
   so a span tree shows which faults landed inside which phase. *)
let span_of_event engine = function
  | Switch_crash d | Switch_recover d | Vm_boot_failure { dpid = d; _ } ->
      Rf_obs.Tracer.correlated (Engine.tracer engine)
        ~key:(Printf.sprintf "cfg:%Ld" d)
  | Link_down _ | Link_up _ | Controller_crash _ | Controller_recover _
  | Controller_partition _ | Controller_heal ->
      None

let schedule engine inj p =
  let h = { fired = 0; pending = List.length p.events; last_at = None } in
  let injections =
    Rf_obs.Metrics.counter (Engine.metrics engine)
      ~help:"Fault-plan events fired" "fault_injections_total"
  in
  List.iter
    (fun { at; ev } ->
      let fire () =
        h.fired <- h.fired + 1;
        h.pending <- h.pending - 1;
        h.last_at <- Some (Engine.now engine);
        Rf_obs.Metrics.incr injections;
        Engine.record engine
          ?span:(span_of_event engine ev)
          ~component:"faults" ~event:"inject"
          (Format.asprintf "%a" pp_event ev);
        dispatch inj ev
      in
      let now = Engine.now engine in
      if Vtime.(at < now) then fire ()
      else
        ignore
          (Engine.schedule_at
             ~entity:(Rf_obs.Profiler.component "faults")
             engine at fire))
    p.events;
  h

let fired_count h = h.fired

let pending_count h = h.pending

let last_fired_at h = h.last_at
