(** Deterministic cross-shard message channels.

    A mailbox is an n×n matrix of outboxes. During a conservative
    window, shard [src]'s domain appends to row [src] exclusively — no
    other domain reads or writes that row, so posting needs no lock.
    Between windows the (single-threaded) coordinator drains every
    outbox aimed at a destination with {!collect}, which returns the
    messages in canonical [(arrival vtime, src shard, seq)] order.
    Because delivery order is a pure function of the messages
    themselves — never of domain scheduling — same-seed runs are
    bit-identical regardless of how many domains executed the windows,
    or whether any domains were used at all. *)

type 'a msg = {
  mx_at : Vtime.t;  (** arrival instant at the destination shard *)
  mx_src : int;
  mx_dst : int;
  mx_seq : int;  (** per-(src,dst) monotone sequence number *)
  mx_payload : 'a;
}

type 'a t

val create : shards:int -> 'a t
(** Raises [Invalid_argument] if [shards < 1]. *)

val shards : 'a t -> int

val post : 'a t -> src:int -> dst:int -> at:Vtime.t -> 'a -> unit
(** Appends to outbox [(src, dst)]. Safe to call from shard [src]'s
    domain while other shards run concurrently; two domains must never
    post with the same [src]. *)

val msg_compare : 'a msg -> 'a msg -> int
(** The canonical [(mx_at, mx_src, mx_seq)] order. *)

val collect : 'a t -> dst:int -> 'a msg list
(** Drains every outbox aimed at [dst], merged in [(mx_at, mx_src,
    mx_seq)] order. Coordinator-only: must not race with posts. *)

val posted : 'a t -> int
(** Cumulative messages ever posted (all pairs). Coordinator-only. *)

val in_flight : 'a t -> int
(** Messages currently posted but not yet collected. Coordinator-only. *)
