type 'a msg = {
  mx_at : Vtime.t;
  mx_src : int;
  mx_dst : int;
  mx_seq : int;
  mx_payload : 'a;
}

(* One cell per (src, dst) pair. [bx_msgs] is newest-first; posts touch
   only row [src], so a shard's domain owns its whole row for the
   duration of a window and posting is lock-free. *)
type 'a box = { mutable bx_msgs : 'a msg list; mutable bx_seq : int }

type 'a t = { n : int; boxes : 'a box array array }

let create ~shards =
  if shards < 1 then invalid_arg "Mailbox.create: shards < 1";
  {
    n = shards;
    boxes =
      Array.init shards (fun _ ->
          Array.init shards (fun _ -> { bx_msgs = []; bx_seq = 0 }));
  }

let shards t = t.n

let post t ~src ~dst ~at payload =
  if src < 0 || src >= t.n then invalid_arg "Mailbox.post: bad src";
  if dst < 0 || dst >= t.n then invalid_arg "Mailbox.post: bad dst";
  let box = t.boxes.(src).(dst) in
  let seq = box.bx_seq in
  box.bx_seq <- seq + 1;
  box.bx_msgs <-
    { mx_at = at; mx_src = src; mx_dst = dst; mx_seq = seq; mx_payload = payload }
    :: box.bx_msgs

let msg_compare a b =
  match Vtime.compare a.mx_at b.mx_at with
  | 0 -> (
      match Int.compare a.mx_src b.mx_src with
      | 0 -> Int.compare a.mx_seq b.mx_seq
      | c -> c)
  | c -> c

let collect t ~dst =
  if dst < 0 || dst >= t.n then invalid_arg "Mailbox.collect: bad dst";
  let acc = ref [] in
  for src = 0 to t.n - 1 do
    let box = t.boxes.(src).(dst) in
    acc := List.rev_append box.bx_msgs !acc;
    box.bx_msgs <- []
  done;
  List.sort msg_compare !acc

(* [bx_seq] never resets, so the sum is the lifetime post count. *)
let posted t =
  let n = ref 0 in
  Array.iter
    (fun row -> Array.iter (fun box -> n := !n + box.bx_seq) row)
    t.boxes;
  !n

let in_flight t =
  let n = ref 0 in
  Array.iter
    (fun row -> Array.iter (fun box -> n := !n + List.length box.bx_msgs) row)
    t.boxes;
  !n
