(** Virtual simulation time.

    Time is kept as an integer number of microseconds since the start
    of the simulation, which keeps event ordering exact and the whole
    simulation deterministic (no floating-point drift in comparisons). *)

type t
(** An absolute instant of virtual time. *)

type span
(** A duration. Spans may be negative in intermediate arithmetic but
    the engine rejects scheduling into the past. *)

val zero : t
(** The simulation epoch. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff a b] is the span from [b] to [a] (i.e. [a - b]). *)

val span_us : int -> span
val span_ms : int -> span
val span_s : float -> span
val span_min : float -> span

val span_zero : span
val span_compare : span -> span -> int
val span_add : span -> span -> span
val span_scale : float -> span -> span
val span_is_negative : span -> bool

val to_s : t -> float
(** Seconds since the epoch, for reporting. *)

val span_to_s : span -> float
val span_to_ms : span -> float
val span_to_us : span -> int

val of_s : float -> t
(** Instant [s] seconds after the epoch. *)

val to_us : t -> int
val of_us : int -> t

val pp : Format.formatter -> t -> unit
(** Renders as [mm:ss.mmm]. *)

val pp_span : Format.formatter -> span -> unit
