type t = int (* microseconds since epoch *)

type span = int (* microseconds *)

let zero = 0

let compare = Int.compare

let equal = Int.equal

let ( <= ) (a : t) (b : t) = a <= b

let ( < ) (a : t) (b : t) = a < b

let add t d = t + d

let diff a b = a - b

let span_us us = us

let span_ms ms = ms * 1_000

let span_s s = int_of_float (s *. 1e6 +. (if s >= 0. then 0.5 else -0.5))

let span_min m = span_s (m *. 60.)

let span_zero = 0

let span_compare = Int.compare

let span_add = ( + )

let span_scale f d = int_of_float (f *. float_of_int d)

let span_is_negative d = d < 0

let to_s t = float_of_int t /. 1e6

let span_to_s = to_s

let span_to_ms d = float_of_int d /. 1e3

let span_to_us d = d

let of_s = span_s

let to_us t = t

let of_us us = us

let pp ppf t =
  let total_ms = t / 1_000 in
  let ms = total_ms mod 1_000 in
  let s = total_ms / 1_000 in
  Format.fprintf ppf "%02d:%02d.%03d" (s / 60) (s mod 60) ms

let pp_span ppf d = Format.fprintf ppf "%.3fs" (span_to_s d)
