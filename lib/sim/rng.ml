type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = next t in
  { state = s }

(* Salt-keyed child that leaves the parent's sequence untouched: new
   components can obtain seeded randomness without shifting the draw
   order of everything created after them (which would break the
   byte-identical experiment fingerprints). *)
let derive t salt =
  {
    state =
      mix (Int64.logxor t.state (Int64.mul (Int64.of_int (salt + 1)) golden));
  }

(* FNV-1a over the label bytes, then the same finalizer as [derive]:
   equal labels give equal streams from equal parent states, so a
   labelled child is stable under repartitioning — shard N of M and
   shard N' of M' derive the same stream for the same entity label. *)
let derive_label t label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  { state = mix (Int64.logxor t.state (Int64.mul !h golden)) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (* 53 significant bits, same construction as Random.float *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u
