(** Deterministic pseudo-random number generator (splitmix64).

    The simulator never uses the global [Random] state: every source of
    randomness is an explicit [Rng.t] seeded by the experiment, so runs
    are reproducible. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. *)

val split : t -> t
(** Derives an independent generator; the parent advances. *)

val derive : t -> int -> t
(** [derive t salt] builds an independent generator keyed by [salt]
    from [t]'s current state {e without} advancing [t]. Distinct salts
    give distinct streams; the parent's draw sequence is unchanged, so
    existing same-seed runs stay bit-identical. *)

val derive_label : t -> string -> t
(** [derive_label t label] is {!derive} keyed by a string label instead
    of an integer salt, again without advancing [t]. Because the child
    stream depends only on the parent state and the label — not on how
    many siblings were derived before it, nor on any shard index — a
    per-entity stream (["shard:3"], ["host:h0042"]) survives
    repartitioning: moving the entity to a different shard, or changing
    the shard count, derives the identical stream. This is the jump
    function shard engines use to seed per-shard generators. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)
