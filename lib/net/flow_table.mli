(** A single OpenFlow 1.0 flow table.

    Implements the OF 1.0 semantics the substrate needs: highest
    priority wins on lookup, non-strict modify/delete subsume by match,
    strict variants require equal match and priority, idle and hard
    timeouts, and per-entry packet/byte counters. *)

open Rf_openflow

type entry = {
  e_match : Of_match.t;
  e_priority : int;
  e_cookie : int64;
  e_idle_timeout : int;  (** seconds; 0 = none *)
  e_hard_timeout : int;
  e_notify_removed : bool;
  e_seq : int;  (** installation sequence; equal-priority tie-break *)
  mutable e_actions : Of_action.t list;
  mutable e_packets : int64;
  mutable e_bytes : int64;
  e_installed : Rf_sim.Vtime.t;
  mutable e_last_used : Rf_sim.Vtime.t;
}

type removal_reason = Expired_idle | Expired_hard | Deleted

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536; adds beyond it are rejected with an
    "all tables full" error, as a real switch would. *)

val size : t -> int

val entries : t -> entry list
(** Priority-descending, then insertion order. *)

val lookup : t -> Of_match.key -> entry option
(** Highest-priority matching entry (insertion order breaks ties).
    Served from a lazily rebuilt index that partitions entries by
    wildcard signature into exact-match hash buckets, so steady-state
    cost is one hash probe per distinct signature rather than a scan
    of every entry. Does not touch counters; callers account
    explicitly. *)

val lookup_linear : t -> Of_match.key -> entry option
(** The original linear scan over the priority-sorted entry list; the
    reference oracle for {!lookup} — both must agree on every key. *)

val account : entry -> now:Rf_sim.Vtime.t -> bytes:int -> unit

val apply_flow_mod :
  t -> now:Rf_sim.Vtime.t -> Of_msg.flow_mod -> (entry list, string) result
(** Returns the entries removed by a delete command ([] for add and
    modify). Add with an existing identical (match, priority) entry
    replaces it, resetting counters. *)

val expire : t -> now:Rf_sim.Vtime.t -> (entry * removal_reason) list
(** Removes and returns timed-out entries in canonical eviction order:
    priority descending, then cookie ascending, then table order — so
    the Flow_removed sequence is deterministic even when several
    entries expire at the same vtime regardless of install order. *)

val stats :
  t -> match_:Of_match.t -> out_port:Of_port.t option -> now:Rf_sim.Vtime.t ->
  Of_msg.flow_stats list
