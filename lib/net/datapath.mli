(** An emulated OpenFlow 1.0 datapath (the Open vSwitch role).

    The datapath owns ports, the flow table and the packet-in buffer
    store. It is controller-agnostic: {!Of_agent} drives it over a
    control channel by installing the callbacks below. *)

open Rf_packet
open Rf_openflow

type t

val create :
  Rf_sim.Engine.t -> dpid:int64 -> n_ports:int -> ?table_capacity:int -> unit -> t
(** Ports are numbered 1..n_ports, each with a deterministic
    locally-administered MAC. A periodic task expires flow entries
    once per second. *)

val dpid : t -> int64

val entity : t -> Rf_obs.Profiler.entity
(** The switch's load-attribution handle ([Switch dpid]). *)

val engine : t -> Rf_sim.Engine.t

val n_ports : t -> int

val port_mac : t -> int -> Mac.t

val port_up : t -> int -> bool

val set_port_up : t -> int -> bool -> unit
(** Triggers the port-status callback on change. *)

val set_transmit : t -> port:int -> (string -> unit) -> unit
(** Installs the link-layer transmit function of a port. *)

val receive_frame : t -> in_port:int -> string -> unit
(** A frame arrived from the wire. *)

val flow_table : t -> Flow_table.t

val features : t -> Of_msg.features

val miss_send_len : t -> int

val set_miss_send_len : t -> int -> unit

(** {1 Controller-side operations (used by the OF agent)} *)

val handle_flow_mod : t -> Of_msg.flow_mod -> (unit, Of_msg.error) result

val handle_packet_out : t -> Of_msg.packet_out -> (unit, Of_msg.error) result

val flow_stats :
  t -> match_:Of_match.t -> out_port:Of_port.t option -> Of_msg.flow_stats list

val port_stats : t -> port:int -> Of_msg.port_stats list
(** [port = Of_port.none] returns all ports. *)

val set_on_packet_in : t -> (Of_msg.packet_in -> unit) -> unit

val set_on_flow_removed : t -> (Of_msg.flow_removed -> unit) -> unit

val set_on_port_status :
  t -> (Of_msg.port_status_reason -> Of_msg.phys_port -> unit) -> unit

val set_on_table_changed : t -> (unit -> unit) -> unit
(** Fires after every successful flow-mod and after each expiry sweep
    that removed entries — the forwarding-state auditor's feed. *)

(** {1 Introspection for experiments} *)

val packets_forwarded : t -> int

val packets_missed : t -> int

val packets_dropped : t -> int
(** Dropped for lack of a controller decision (no buffer space, output
    on a down port, TTL and parse failures). *)
