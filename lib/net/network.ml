open Rf_packet

type host_config = {
  hc_ip : Ipv4_addr.t;
  hc_prefix_len : int;
  hc_gateway : Ipv4_addr.t;
}

type t = {
  engine : Rf_sim.Engine.t;
  topo : Topology.t;
  dps : (int64, Datapath.t) Hashtbl.t;
  host_tbl : (string, Host.t) Hashtbl.t;
  agents : (int64, Of_agent.t) Hashtbl.t;
  links : (Topology.node * Topology.node, Link.t) Hashtbl.t;
  mutable reconnect : (int64 -> unit) option;
  mutable partition : (int * (Topology.node -> int)) option;
  mutable on_link_state : Topology.node -> Topology.node -> bool -> unit;
}

let engine t = t.engine

let topology t = t.topo

let set_partition t ~shards assign =
  if shards < 1 then invalid_arg "Network.set_partition: shards < 1";
  let cut = Topology.cut_stats t.topo ~shards ~assign in
  (match cut.Topology.cut_lookahead with
  | Some la
    when shards > 1 && Rf_sim.Vtime.span_compare la Rf_sim.Vtime.span_zero <= 0
    ->
      invalid_arg
        "Network.set_partition: a zero-latency link crosses the cut — no \
         safe lookahead horizon exists (merge those shards or run with \
         shards = 1)"
  | Some _ | None -> ());
  t.partition <- Some (shards, assign)

let partition_shards t =
  match t.partition with Some (n, _) -> n | None -> 1

let shard_of t node =
  match t.partition with Some (_, assign) -> Some (assign node) | None -> None

let partition_cut t =
  match t.partition with
  | Some (shards, assign) -> Some (Topology.cut_stats t.topo ~shards ~assign)
  | None -> None

let datapath t dpid =
  match Hashtbl.find_opt t.dps dpid with
  | Some dp -> dp
  | None -> invalid_arg (Printf.sprintf "Network.datapath: unknown dpid %Ld" dpid)

let datapaths t =
  Hashtbl.fold (fun d dp acc -> (d, dp) :: acc) t.dps []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let host t name =
  match Hashtbl.find_opt t.host_tbl name with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Network.host: unknown host %s" name)

let hosts t =
  Hashtbl.fold (fun n h acc -> (n, h) :: acc) t.host_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let link t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> Some l
  | None -> Hashtbl.find_opt t.links (b, a)

let set_link_up t a b up =
  match link t a b with
  | Some l ->
      Link.set_up l up;
      t.on_link_state a b up
  | None -> raise Not_found

let set_on_link_state t f = t.on_link_state <- f

let node_key = function
  | Topology.Switch d -> (0, d, "")
  | Topology.Host n -> (1, 0L, n)

let links t =
  Hashtbl.fold (fun k l acc -> (k, l) :: acc) t.links []
  |> List.sort (fun ((a1, b1), _) ((a2, b2), _) ->
         match compare (node_key a1) (node_key a2) with
         | 0 -> compare (node_key b1) (node_key b2)
         | c -> c)

let set_all_link_capacity t capacity =
  List.iter (fun (_, l) -> Link.set_capacity l capacity) (links t)

let queue_dropped_frames t =
  Hashtbl.fold (fun _ l acc -> acc + Link.frames_queue_dropped l) t.links 0

let disconnect_switch t dpid =
  match Hashtbl.find_opt t.agents dpid with
  | Some agent -> Of_agent.disconnect agent
  | None -> ()

let reconnect_switch t dpid =
  match t.reconnect with Some f -> f dpid | None -> ()

let total_data_frames t =
  Hashtbl.fold (fun _ l acc -> acc + Link.frames_carried l) t.links 0

let build engine topo ~host_config ~attach_controller
    ?(control_latency = Rf_sim.Vtime.span_ms 1)
    ?(switch_boot_delay = fun _ -> Rf_sim.Vtime.span_zero) () =
  let t =
    {
      engine;
      topo;
      dps = Hashtbl.create 64;
      host_tbl = Hashtbl.create 16;
      agents = Hashtbl.create 64;
      links = Hashtbl.create 64;
      reconnect = None;
      partition = None;
      on_link_state = (fun _ _ _ -> ());
    }
  in
  (* Datapaths, with one port per topology edge endpoint. *)
  List.iter
    (fun dpid ->
      let n_ports = Topology.degree topo (Topology.Switch dpid) in
      let dp = Datapath.create engine ~dpid ~n_ports:(max 1 n_ports) () in
      Hashtbl.replace t.dps dpid dp)
    (Topology.switches topo);
  (* Hosts. *)
  let host_index = ref 0 in
  List.iter
    (fun name ->
      incr host_index;
      let cfg = host_config name in
      let mac = Mac.make_local ((1 lsl 36) lor !host_index) in
      let h =
        Host.create engine ~name ~mac ~ip:cfg.hc_ip ~prefix_len:cfg.hc_prefix_len
          ~gateway:cfg.hc_gateway ()
      in
      Hashtbl.replace t.host_tbl name h)
    (Topology.hosts topo);
  (* Data-plane links. *)
  List.iter
    (fun (e : Topology.edge) ->
      let attachment node port =
        match node with
        | Topology.Switch dpid -> Link.To_switch (datapath t dpid, port)
        | Topology.Host name -> Link.To_host (host t name)
      in
      let l =
        Link.connect engine ~latency:e.latency (attachment e.a e.a_port)
          (attachment e.b e.b_port)
      in
      Hashtbl.replace t.links (e.a, e.b) l)
    (Topology.edges topo);
  (* Control connections, possibly staggered. *)
  let connect dpid =
    let dp = datapath t dpid in
    let switch_end, controller_end =
      Channel.create engine ~latency:control_latency
        ~name:(Printf.sprintf "ctl-%Ld" dpid)
        ~entity:(Datapath.entity dp) ()
    in
    let agent = Of_agent.create engine dp switch_end in
    Hashtbl.replace t.agents dpid agent;
    attach_controller ~dpid controller_end
  in
  t.reconnect <- Some connect;
  List.iter
    (fun (dpid, _dp) ->
      let delay = switch_boot_delay dpid in
      if Rf_sim.Vtime.span_compare delay Rf_sim.Vtime.span_zero <= 0 then
        connect dpid
      else
        ignore
          (Rf_sim.Engine.schedule
             ~entity:(Datapath.entity (datapath t dpid))
             engine delay
             (fun () -> connect dpid)))
    (datapaths t);
  (* Host self-announcement. *)
  List.iter (fun (_, h) -> Host.gratuitous_arp h) (hosts t);
  t
