(** Reliable, ordered, bidirectional byte channels.

    These model the control-plane TCP connections of the paper's
    testbed: switch↔FlowVisor, FlowVisor↔controller, and RPC
    client↔server sessions. Delivery is in order with a fixed one-way
    latency; there is no loss (the real transport is TCP). *)

type endpoint
(** One side of a channel. *)

val create :
  Rf_sim.Engine.t ->
  ?latency:Rf_sim.Vtime.span ->
  ?name:string ->
  ?entity:Rf_obs.Profiler.entity ->
  unit ->
  endpoint * endpoint
(** A connected pair. Default latency 1 ms. [entity] tags both
    directions' delivery events for load attribution (e.g. the
    per-switch control channel tags its switch). *)

val send : endpoint -> string -> unit
(** Queues bytes for the peer; they arrive after the channel latency.
    Sending on a closed channel is a silent no-op (as writes to a dying
    TCP connection are, from the application's viewpoint). *)

val set_receiver : endpoint -> (string -> unit) -> unit
(** At most one receiver per endpoint; bytes delivered before a
    receiver is installed are buffered. *)

val close : endpoint -> unit
(** Closes both directions; the peer's [set_on_close] fires after the
    channel latency. *)

val set_on_close : endpoint -> (unit -> unit) -> unit

val is_open : endpoint -> bool

val name : endpoint -> string
