open Rf_openflow

type entry = {
  e_match : Of_match.t;
  e_priority : int;
  e_cookie : int64;
  e_idle_timeout : int;
  e_hard_timeout : int;
  e_notify_removed : bool;
  mutable e_actions : Of_action.t list;
  mutable e_packets : int64;
  mutable e_bytes : int64;
  e_installed : Rf_sim.Vtime.t;
  mutable e_last_used : Rf_sim.Vtime.t;
}

type removal_reason = Expired_idle | Expired_hard | Deleted

type t = { mutable entries : entry list; capacity : int }
(* Entries kept sorted by priority descending; stable within equal
   priority (insertion order). Table sizes here are small enough that a
   sorted list keeps the semantics obvious. *)

let create ?(capacity = 65536) () = { entries = []; capacity }

let size t = List.length t.entries

let entries t = t.entries

let lookup t key = List.find_opt (fun e -> Of_match.matches e.e_match key) t.entries

let account e ~now ~bytes =
  e.e_packets <- Int64.succ e.e_packets;
  e.e_bytes <- Int64.add e.e_bytes (Int64.of_int bytes);
  e.e_last_used <- now

let insert_sorted t entry =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest ->
        if entry.e_priority > e.e_priority then entry :: e :: rest
        else e :: go rest
  in
  t.entries <- go t.entries

let entry_outputs_to port e =
  List.exists
    (fun a ->
      match a with
      | Of_action.Output { port = p; _ } -> p = port
      | Of_action.Set_dl_src _ | Of_action.Set_dl_dst _ | Of_action.Set_nw_src _
      | Of_action.Set_nw_dst _ | Of_action.Set_nw_tos _ | Of_action.Set_tp_src _
      | Of_action.Set_tp_dst _ | Of_action.Strip_vlan ->
          false)
    e.e_actions

let matches_for_delete ~strict (fm : Of_msg.flow_mod) e =
  let match_ok =
    if strict then
      Of_match.equal fm.fm_match e.e_match && fm.fm_priority = e.e_priority
    else Of_match.subsumes fm.fm_match e.e_match
  in
  let out_port_ok =
    match fm.fm_out_port with
    | None -> true
    | Some port -> entry_outputs_to port e
  in
  match_ok && out_port_ok

let rec apply_flow_mod t ~now (fm : Of_msg.flow_mod) =
  match fm.fm_command with
  | Of_msg.Add ->
      let identical e =
        Of_match.equal fm.fm_match e.e_match && fm.fm_priority = e.e_priority
      in
      let without = List.filter (fun e -> not (identical e)) t.entries in
      if List.length without >= t.capacity then Error "all tables full"
      else begin
        t.entries <- without;
        insert_sorted t
          {
            e_match = fm.fm_match;
            e_priority = fm.fm_priority;
            e_cookie = fm.fm_cookie;
            e_idle_timeout = fm.fm_idle_timeout;
            e_hard_timeout = fm.fm_hard_timeout;
            e_notify_removed = fm.fm_notify_removed;
            e_actions = fm.fm_actions;
            e_packets = 0L;
            e_bytes = 0L;
            e_installed = now;
            e_last_used = now;
          };
        Ok []
      end
  | Of_msg.Modify | Of_msg.Modify_strict ->
      let strict = fm.fm_command = Of_msg.Modify_strict in
      let touched = ref false in
      List.iter
        (fun e ->
          let hit =
            if strict then
              Of_match.equal fm.fm_match e.e_match && fm.fm_priority = e.e_priority
            else Of_match.subsumes fm.fm_match e.e_match
          in
          if hit then begin
            e.e_actions <- fm.fm_actions;
            touched := true
          end)
        t.entries;
      if !touched then Ok []
      else
        (* OF 1.0: a modify that matches nothing behaves as an add. *)
        apply_flow_mod t ~now { fm with fm_command = Of_msg.Add }
  | Of_msg.Delete | Of_msg.Delete_strict ->
      let strict = fm.fm_command = Of_msg.Delete_strict in
      let removed, kept =
        List.partition (matches_for_delete ~strict fm) t.entries
      in
      t.entries <- kept;
      Ok removed

let expire t ~now =
  let expired e =
    let age_since from limit =
      limit > 0
      && Rf_sim.Vtime.(add from (Rf_sim.Vtime.span_s (float_of_int limit)) <= now)
    in
    if age_since e.e_installed e.e_hard_timeout then Some Expired_hard
    else if age_since e.e_last_used e.e_idle_timeout then Some Expired_idle
    else None
  in
  let gone, kept =
    List.fold_left
      (fun (gone, kept) e ->
        match expired e with
        | Some reason -> ((e, reason) :: gone, kept)
        | None -> (gone, e :: kept))
      ([], []) t.entries
  in
  t.entries <- List.rev kept;
  (* Canonical eviction order, independent of insertion history: higher
     priority first, then lowest cookie, with table order as the final
     (stable) tie-break. Keeps the Flow_removed sequence deterministic
     when several entries expire at the same vtime. *)
  List.stable_sort
    (fun ((a : entry), _) ((b : entry), _) ->
      match compare b.e_priority a.e_priority with
      | 0 -> Int64.compare a.e_cookie b.e_cookie
      | c -> c)
    (List.rev gone)

let stats t ~match_ ~out_port ~now =
  List.filter_map
    (fun e ->
      let match_ok = Of_match.subsumes match_ e.e_match in
      let out_ok =
        match out_port with None -> true | Some p -> entry_outputs_to p e
      in
      if match_ok && out_ok then
        Some
          {
            Of_msg.fs_match = e.e_match;
            fs_priority = e.e_priority;
            fs_cookie = e.e_cookie;
            fs_duration_s =
              int_of_float
                (Rf_sim.Vtime.span_to_s (Rf_sim.Vtime.diff now e.e_installed));
            fs_packet_count = e.e_packets;
            fs_byte_count = e.e_bytes;
            fs_actions = e.e_actions;
          }
      else None)
    t.entries
