open Rf_openflow
open Rf_packet

type entry = {
  e_match : Of_match.t;
  e_priority : int;
  e_cookie : int64;
  e_idle_timeout : int;
  e_hard_timeout : int;
  e_notify_removed : bool;
  e_seq : int;
  mutable e_actions : Of_action.t list;
  mutable e_packets : int64;
  mutable e_bytes : int64;
  e_installed : Rf_sim.Vtime.t;
  mutable e_last_used : Rf_sim.Vtime.t;
}

type removal_reason = Expired_idle | Expired_hard | Deleted

(* Lookup index: entries partitioned by wildcard signature (which
   fields are exact, plus the two prefix lengths). Within a signature
   every entry constrains the same projection of the key, so the bucket
   is an exact-match hash table from projected key to the best (first
   in table order) entry for that projection. A lookup probes one hash
   table per distinct signature instead of scanning every entry. *)
type bucket = {
  b_mask : int;  (* presence bits for the ten scalar fields *)
  b_src : int;  (* nw_src prefix length; -1 = wildcarded *)
  b_dst : int;
  b_tbl : (Of_match.key, entry) Hashtbl.t;
}

type t = {
  mutable entries : entry list;
  capacity : int;
  mutable next_seq : int;
  mutable index : bucket list option;  (* None = stale, rebuilt lazily *)
}
(* Entries kept sorted by priority descending; stable within equal
   priority (insertion order, i.e. [e_seq] ascending). Mutations
   invalidate [index]; [lookup] rebuilds it on demand. *)

let create ?(capacity = 65536) () =
  { entries = []; capacity; next_seq = 0; index = None }

let size t = List.length t.entries

let entries t = t.entries

let lookup_linear t key =
  List.find_opt (fun e -> Of_match.matches e.e_match key) t.entries

let bit_in_port = 1 lsl 0

let bit_dl_src = 1 lsl 1

let bit_dl_dst = 1 lsl 2

let bit_dl_vlan = 1 lsl 3

let bit_dl_pcp = 1 lsl 4

let bit_dl_type = 1 lsl 5

let bit_nw_tos = 1 lsl 6

let bit_nw_proto = 1 lsl 7

let bit_tp_src = 1 lsl 8

let bit_tp_dst = 1 lsl 9

let mask_of_match (m : Of_match.t) =
  let bit b = function Some _ -> b | None -> 0 in
  bit bit_in_port m.m_in_port
  lor bit bit_dl_src m.m_dl_src
  lor bit bit_dl_dst m.m_dl_dst
  lor bit bit_dl_vlan m.m_dl_vlan
  lor bit bit_dl_pcp m.m_dl_pcp
  lor bit bit_dl_type m.m_dl_type
  lor bit bit_nw_tos m.m_nw_tos
  lor bit bit_nw_proto m.m_nw_proto
  lor bit bit_tp_src m.m_tp_src
  lor bit bit_tp_dst m.m_tp_dst

let prefix_len = function
  | None -> -1
  | Some p -> Ipv4_addr.Prefix.length p

let mask_addr a len =
  if len <= 0 then Ipv4_addr.any
  else
    Ipv4_addr.of_int32
      (Int32.logand (Ipv4_addr.to_int32 a) (Int32.shift_left (-1l) (32 - len)))

(* The exact-match key an entry of this bucket constrains: wildcarded
   fields zeroed, prefix fields masked to the bucket's lengths. *)
let project b (k : Of_match.key) =
  {
    Of_match.in_port = (if b.b_mask land bit_in_port <> 0 then k.in_port else 0);
    dl_src = (if b.b_mask land bit_dl_src <> 0 then k.dl_src else Mac.zero);
    dl_dst = (if b.b_mask land bit_dl_dst <> 0 then k.dl_dst else Mac.zero);
    dl_vlan = (if b.b_mask land bit_dl_vlan <> 0 then k.dl_vlan else 0);
    dl_pcp = (if b.b_mask land bit_dl_pcp <> 0 then k.dl_pcp else 0);
    dl_type = (if b.b_mask land bit_dl_type <> 0 then k.dl_type else 0);
    nw_tos = (if b.b_mask land bit_nw_tos <> 0 then k.nw_tos else 0);
    nw_proto = (if b.b_mask land bit_nw_proto <> 0 then k.nw_proto else 0);
    nw_src = mask_addr k.nw_src b.b_src;
    nw_dst = mask_addr k.nw_dst b.b_dst;
    tp_src = (if b.b_mask land bit_tp_src <> 0 then k.tp_src else 0);
    tp_dst = (if b.b_mask land bit_tp_dst <> 0 then k.tp_dst else 0);
  }

let key_of_match (m : Of_match.t) =
  let addr = function
    | None -> Ipv4_addr.any
    | Some p -> Ipv4_addr.Prefix.network p
  in
  {
    Of_match.in_port = Option.value m.m_in_port ~default:0;
    dl_src = Option.value m.m_dl_src ~default:Mac.zero;
    dl_dst = Option.value m.m_dl_dst ~default:Mac.zero;
    dl_vlan = Option.value m.m_dl_vlan ~default:0;
    dl_pcp = Option.value m.m_dl_pcp ~default:0;
    dl_type = Option.value m.m_dl_type ~default:0;
    nw_tos = Option.value m.m_nw_tos ~default:0;
    nw_proto = Option.value m.m_nw_proto ~default:0;
    nw_src = addr m.m_nw_src;
    nw_dst = addr m.m_nw_dst;
    tp_src = Option.value m.m_tp_src ~default:0;
    tp_dst = Option.value m.m_tp_dst ~default:0;
  }

let rebuild t =
  let buckets = ref [] in
  (* [t.entries] is already (priority desc, seq asc): the first entry
     stored for a projected key is the bucket's winner. *)
  List.iter
    (fun e ->
      let mask = mask_of_match e.e_match in
      let src = prefix_len e.e_match.Of_match.m_nw_src in
      let dst = prefix_len e.e_match.Of_match.m_nw_dst in
      let b =
        match
          List.find_opt
            (fun b -> b.b_mask = mask && b.b_src = src && b.b_dst = dst)
            !buckets
        with
        | Some b -> b
        | None ->
            let b =
              { b_mask = mask; b_src = src; b_dst = dst; b_tbl = Hashtbl.create 64 }
            in
            buckets := b :: !buckets;
            b
      in
      let pk = key_of_match e.e_match in
      if not (Hashtbl.mem b.b_tbl pk) then Hashtbl.add b.b_tbl pk e)
    t.entries;
  let index = List.rev !buckets in
  t.index <- Some index;
  index

(* Highest priority across buckets wins; within equal priority the
   earliest-installed entry ([e_seq]) — exactly the entry the linear
   scan over the sorted list would find first. *)
let lookup t key =
  let buckets = match t.index with Some i -> i | None -> rebuild t in
  let rec go best = function
    | [] -> best
    | b :: rest ->
        let best =
          match Hashtbl.find_opt b.b_tbl (project b key) with
          | None -> best
          | Some e -> (
              match best with
              | Some be
                when be.e_priority > e.e_priority
                     || (be.e_priority = e.e_priority && be.e_seq < e.e_seq) ->
                  best
              | Some _ | None -> Some e)
        in
        go best rest
  in
  go None buckets

let account e ~now ~bytes =
  e.e_packets <- Int64.succ e.e_packets;
  e.e_bytes <- Int64.add e.e_bytes (Int64.of_int bytes);
  e.e_last_used <- now

let insert_sorted t entry =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest ->
        if entry.e_priority > e.e_priority then entry :: e :: rest
        else e :: go rest
  in
  t.entries <- go t.entries

let entry_outputs_to port e =
  List.exists
    (fun a ->
      match a with
      | Of_action.Output { port = p; _ } -> p = port
      | Of_action.Set_dl_src _ | Of_action.Set_dl_dst _ | Of_action.Set_nw_src _
      | Of_action.Set_nw_dst _ | Of_action.Set_nw_tos _ | Of_action.Set_tp_src _
      | Of_action.Set_tp_dst _ | Of_action.Strip_vlan ->
          false)
    e.e_actions

let matches_for_delete ~strict (fm : Of_msg.flow_mod) e =
  let match_ok =
    if strict then
      Of_match.equal fm.fm_match e.e_match && fm.fm_priority = e.e_priority
    else Of_match.subsumes fm.fm_match e.e_match
  in
  let out_port_ok =
    match fm.fm_out_port with
    | None -> true
    | Some port -> entry_outputs_to port e
  in
  match_ok && out_port_ok

let rec apply_flow_mod t ~now (fm : Of_msg.flow_mod) =
  t.index <- None;
  match fm.fm_command with
  | Of_msg.Add ->
      let identical e =
        Of_match.equal fm.fm_match e.e_match && fm.fm_priority = e.e_priority
      in
      let without = List.filter (fun e -> not (identical e)) t.entries in
      if List.length without >= t.capacity then Error "all tables full"
      else begin
        t.entries <- without;
        t.next_seq <- t.next_seq + 1;
        insert_sorted t
          {
            e_match = fm.fm_match;
            e_priority = fm.fm_priority;
            e_cookie = fm.fm_cookie;
            e_idle_timeout = fm.fm_idle_timeout;
            e_hard_timeout = fm.fm_hard_timeout;
            e_notify_removed = fm.fm_notify_removed;
            e_seq = t.next_seq;
            e_actions = fm.fm_actions;
            e_packets = 0L;
            e_bytes = 0L;
            e_installed = now;
            e_last_used = now;
          };
        Ok []
      end
  | Of_msg.Modify | Of_msg.Modify_strict ->
      let strict = fm.fm_command = Of_msg.Modify_strict in
      let touched = ref false in
      List.iter
        (fun e ->
          let hit =
            if strict then
              Of_match.equal fm.fm_match e.e_match && fm.fm_priority = e.e_priority
            else Of_match.subsumes fm.fm_match e.e_match
          in
          if hit then begin
            e.e_actions <- fm.fm_actions;
            touched := true
          end)
        t.entries;
      if !touched then Ok []
      else
        (* OF 1.0: a modify that matches nothing behaves as an add. *)
        apply_flow_mod t ~now { fm with fm_command = Of_msg.Add }
  | Of_msg.Delete | Of_msg.Delete_strict ->
      let strict = fm.fm_command = Of_msg.Delete_strict in
      let removed, kept =
        List.partition (matches_for_delete ~strict fm) t.entries
      in
      t.entries <- kept;
      Ok removed

let expire t ~now =
  let expired e =
    let age_since from limit =
      limit > 0
      && Rf_sim.Vtime.(add from (Rf_sim.Vtime.span_s (float_of_int limit)) <= now)
    in
    if age_since e.e_installed e.e_hard_timeout then Some Expired_hard
    else if age_since e.e_last_used e.e_idle_timeout then Some Expired_idle
    else None
  in
  let gone, kept =
    List.fold_left
      (fun (gone, kept) e ->
        match expired e with
        | Some reason -> ((e, reason) :: gone, kept)
        | None -> (gone, e :: kept))
      ([], []) t.entries
  in
  t.entries <- List.rev kept;
  if gone <> [] then t.index <- None;
  (* Canonical eviction order, independent of insertion history: higher
     priority first, then lowest cookie, with table order as the final
     (stable) tie-break. Keeps the Flow_removed sequence deterministic
     when several entries expire at the same vtime. *)
  List.stable_sort
    (fun ((a : entry), _) ((b : entry), _) ->
      match compare b.e_priority a.e_priority with
      | 0 -> Int64.compare a.e_cookie b.e_cookie
      | c -> c)
    (List.rev gone)

let stats t ~match_ ~out_port ~now =
  List.filter_map
    (fun e ->
      let match_ok = Of_match.subsumes match_ e.e_match in
      let out_ok =
        match out_port with None -> true | Some p -> entry_outputs_to p e
      in
      if match_ok && out_ok then
        Some
          {
            Of_msg.fs_match = e.e_match;
            fs_priority = e.e_priority;
            fs_cookie = e.e_cookie;
            fs_duration_s =
              int_of_float
                (Rf_sim.Vtime.span_to_s (Rf_sim.Vtime.diff now e.e_installed));
            fs_packet_count = e.e_packets;
            fs_byte_count = e.e_bytes;
            fs_actions = e.e_actions;
          }
      else None)
    t.entries
