(** Data-plane links with propagation latency, optional capacity
    (bandwidth + bounded FIFO queue with tail drop) and failure
    injection. *)

type t

type attachment =
  | To_switch of Datapath.t * int  (** datapath, port number *)
  | To_host of Host.t

type capacity = {
  bandwidth_bps : int;  (** serialization rate, bits per second *)
  queue_frames : int;
      (** bounded per-direction FIFO depth, counting the frame being
          serialized; arrivals beyond this are tail-dropped *)
}

val connect :
  Rf_sim.Engine.t ->
  ?latency:Rf_sim.Vtime.span ->
  ?capacity:capacity ->
  attachment ->
  attachment ->
  t
(** Wires the two attachments together: installs each side's transmit
    function so frames appear at the other side after [latency]
    (default 1 ms). Frames in flight when the link goes down are
    dropped.

    Without [capacity] the link is ideal (infinite bandwidth, no
    queueing) and behaves exactly as before the capacity model was
    introduced. With [capacity], each direction serializes frames at
    [bandwidth_bps] through a bounded FIFO of [queue_frames] slots;
    frames arriving at a full queue are tail-dropped and counted in
    {!frames_queue_dropped}. *)

val set_capacity : t -> capacity option -> unit
(** Changes the capacity model for subsequent frames. [None] restores
    the ideal (unqueued) link. *)

val capacity : t -> capacity option

val set_up : t -> bool -> unit
(** Also drives the port-status state on switch attachments. *)

val is_up : t -> bool

val set_tap : t -> (string -> unit) -> unit
(** Observes every frame the link delivers (both directions); used by
    the pcap capture. One tap per link. *)

val frames_offered : t -> int
(** Every frame handed to the link by either side. Conservation holds
    after the engine quiesces: offered = carried + dropped. *)

val frames_carried : t -> int

val frames_dropped : t -> int
(** Frames lost to link-down transitions plus queue tail drops. *)

val frames_queue_dropped : t -> int
(** The subset of {!frames_dropped} lost to a full FIFO. *)
