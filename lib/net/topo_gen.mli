(** Topology generators.

    [ring] is the workload of the paper's Fig. 3 experiment;
    [pan_european] is the 28-node demo topology (de Maesschalck et al.,
    Photonic Network Communications 2003, the paper's reference [5]). *)

val ring : ?latency:Rf_sim.Vtime.span -> int -> Topology.t
(** [ring n] with [n >= 3] switches, dpids 1..n. *)

val line : ?latency:Rf_sim.Vtime.span -> int -> Topology.t
(** [line n] with [n >= 2]. *)

val star : ?latency:Rf_sim.Vtime.span -> int -> Topology.t
(** [star n]: hub dpid 1 plus [n-1] leaves. *)

val grid : ?latency:Rf_sim.Vtime.span -> int -> int -> Topology.t
(** [grid w h], dpids row-major from 1. *)

val random :
  ?latency:Rf_sim.Vtime.span -> seed:int -> n:int -> extra_edges:int -> unit -> Topology.t
(** A connected random graph: a random spanning tree plus
    [extra_edges] random chords (no duplicates, no self-loops). *)

val fat_tree :
  ?latency:Rf_sim.Vtime.span -> ?with_hosts:bool -> int -> Topology.t
(** [fat_tree k] for even [k >= 2]: the k-ary fat-tree of Al-Fares et
    al. (SIGCOMM 2008) — [(k/2)^2] core switches, [k] pods of [k/2]
    aggregation and [k/2] edge switches (every switch of degree [k]),
    and, when [with_hosts] (default), [k/2] hosts per edge switch
    ([k^3/4] total) named by {!fat_tree_host_name}. Dpids number the
    cores first, then each pod's aggregation then edge switches. *)

val fat_tree_host_name : int -> string
(** Zero-padded ("h0042") so lexicographic host order equals index
    order. *)

val fat_tree_host_count : int -> int
(** [k^3/4]. *)

val fat_tree_hops : k:int -> int -> int -> int
(** Structural hop count between two host indexes: 0 (same host),
    2 (same edge switch), 4 (same pod) or 6 (via core). *)

val pan_european : unit -> Topology.t
(** 28 nodes, 41 links; dpids 1..28. Link latencies approximate
    geographic distance. *)

val pan_european_city : int64 -> string
(** City name of a pan-European dpid; raises [Not_found] for ids
    outside 1..28. *)
