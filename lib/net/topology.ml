type node = Switch of int64 | Host of string

type edge = {
  a : node;
  a_port : int;
  b : node;
  b_port : int;
  latency : Rf_sim.Vtime.span;
  cost : int;
}

let node_equal x y =
  match (x, y) with
  | Switch a, Switch b -> Int64.equal a b
  | Host a, Host b -> String.equal a b
  | Switch _, Host _ | Host _, Switch _ -> false

let node_compare x y =
  match (x, y) with
  | Switch a, Switch b -> Int64.compare a b
  | Host a, Host b -> String.compare a b
  | Switch _, Host _ -> -1
  | Host _, Switch _ -> 1

module Node_map = Map.Make (struct
  type t = node

  let compare = node_compare
end)

type t = {
  mutable nodes : int Node_map.t;  (** node -> next free port *)
  mutable edge_list : edge list;  (** reversed *)
  mutable n_edges : int;
}

let create () = { nodes = Node_map.empty; edge_list = []; n_edges = 0 }

let add_node t node =
  if not (Node_map.mem node t.nodes) then
    t.nodes <- Node_map.add node 1 t.nodes

let add_switch t dpid = add_node t (Switch dpid)

let add_host t name = add_node t (Host name)

let next_port t node =
  match Node_map.find_opt node t.nodes with
  | Some p -> p
  | None ->
      add_node t node;
      1

let use_port t node port =
  let free = next_port t node in
  let free = if port >= free then port + 1 else free in
  t.nodes <- Node_map.add node free t.nodes

let connect t ?(latency = Rf_sim.Vtime.span_ms 1) ?(cost = 10) ?a_port ?b_port a b
    =
  (match (a, b) with
  | Host _, Host _ -> invalid_arg "Topology.connect: host-host link"
  | (Switch _ | Host _), (Switch _ | Host _) -> ());
  if node_equal a b then invalid_arg "Topology.connect: self loop";
  add_node t a;
  add_node t b;
  let a_port = match a_port with Some p -> p | None -> next_port t a in
  use_port t a a_port;
  let b_port = match b_port with Some p -> p | None -> next_port t b in
  use_port t b b_port;
  let edge = { a; a_port; b; b_port; latency; cost } in
  t.edge_list <- edge :: t.edge_list;
  t.n_edges <- t.n_edges + 1;
  edge

let switches t =
  Node_map.fold
    (fun node _ acc -> match node with Switch d -> d :: acc | Host _ -> acc)
    t.nodes []
  |> List.sort Int64.compare

let hosts t =
  Node_map.fold
    (fun node _ acc -> match node with Host h -> h :: acc | Switch _ -> acc)
    t.nodes []
  |> List.sort String.compare

let edges t = List.rev t.edge_list

let switch_count t = List.length (switches t)

let edge_count t = t.n_edges

let ports_of t node =
  let collect acc e =
    if node_equal e.a node then (e.a_port, e.b, e.b_port) :: acc
    else if node_equal e.b node then (e.b_port, e.a, e.a_port) :: acc
    else acc
  in
  List.fold_left collect [] (edges t)
  |> List.sort (fun (p, _, _) (q, _, _) -> Int.compare p q)

let degree t node = List.length (ports_of t node)

let neighbors t node = List.map (fun (_, peer, _) -> peer) (ports_of t node)

let peer_of t node port =
  List.find_map
    (fun (p, peer, peer_port) ->
      if p = port then Some (peer, peer_port) else None)
    (ports_of t node)

let edge_between t x y =
  List.find_opt
    (fun e ->
      (node_equal e.a x && node_equal e.b y)
      || (node_equal e.a y && node_equal e.b x))
    t.edge_list

let switch_switch_edges t =
  List.filter
    (fun e ->
      match (e.a, e.b) with
      | Switch _, Switch _ -> true
      | (Switch _ | Host _), (Switch _ | Host _) -> false)
    (edges t)

let host_edges t =
  List.filter
    (fun e ->
      match (e.a, e.b) with
      | Switch _, Switch _ -> false
      | (Switch _ | Host _), (Switch _ | Host _) -> true)
    (edges t)

let hop_distance t src dst =
  if node_equal src dst then Some 0
  else begin
    let visited = ref (Node_map.singleton src 0) in
    let queue = Queue.create () in
    Queue.add src queue;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         let node = Queue.pop queue in
         let d = Node_map.find node !visited in
         List.iter
           (fun peer ->
             if not (Node_map.mem peer !visited) then begin
               visited := Node_map.add peer (d + 1) !visited;
               if node_equal peer dst then begin
                 result := Some (d + 1);
                 raise Exit
               end;
               Queue.add peer queue
             end)
           (neighbors t node)
       done
     with Exit -> ());
    !result
  end

let is_connected t =
  match switches t with
  | [] -> true
  | first :: rest ->
      List.for_all
        (fun d -> hop_distance t (Switch first) (Switch d) <> None)
        rest

let diameter t =
  let sw = List.map (fun d -> Switch d) (switches t) in
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc b ->
          match hop_distance t a b with Some d -> max acc d | None -> acc)
        acc sw)
    0 sw

type cut = {
  cut_shards : int;
  cut_cross_edges : int;
  cut_total_edges : int;
  cut_lookahead : Rf_sim.Vtime.span option;
}

let cut_stats t ~shards ~assign =
  if shards < 1 then invalid_arg "Topology.cut_stats: shards < 1";
  let cross = ref 0 in
  let la = ref None in
  List.iter
    (fun e ->
      let sa = assign e.a and sb = assign e.b in
      if sa < 0 || sa >= shards || sb < 0 || sb >= shards then
        invalid_arg "Topology.cut_stats: shard id out of range";
      if sa <> sb then begin
        incr cross;
        la :=
          Some
            (match !la with
            | None -> e.latency
            | Some l ->
                if Rf_sim.Vtime.span_compare e.latency l < 0 then e.latency
                else l)
      end)
    (edges t);
  {
    cut_shards = shards;
    cut_cross_edges = !cross;
    cut_total_edges = t.n_edges;
    cut_lookahead = !la;
  }

let pp_node ppf = function
  | Switch d -> Format.fprintf ppf "sw%Ld" d
  | Host h -> Format.fprintf ppf "host:%s" h
