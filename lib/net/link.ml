type attachment = To_switch of Datapath.t * int | To_host of Host.t

type capacity = { bandwidth_bps : int; queue_frames : int }

(* Per-direction transmitter state: [busy_until] is when the serializer
   frees up, [queued] counts frames buffered or on the wire (the frame
   being serialized occupies a queue slot until transmission ends). *)
type direction = {
  mutable busy_until : Rf_sim.Vtime.t;
  mutable queued : int;
  mutable queue_dropped : int;
}

type t = {
  engine : Rf_sim.Engine.t;
  latency : Rf_sim.Vtime.span;
  entity : Rf_obs.Profiler.entity;
  a : attachment;
  b : attachment;
  mutable up : bool;
  mutable capacity : capacity option;
  dir_ab : direction;
  dir_ba : direction;
  mutable offered : int;
  mutable carried : int;
  mutable dropped : int;
  mutable tap : (string -> unit) option;
}

let deliver side frame =
  match side with
  | To_switch (dp, port) -> Datapath.receive_frame dp ~in_port:port frame
  | To_host h -> Host.receive_frame h frame

let propagate t other frame =
  ignore
    (Rf_sim.Engine.schedule ~entity:t.entity t.engine t.latency (fun () ->
         if t.up then begin
           t.carried <- t.carried + 1;
           (match t.tap with Some f -> f frame | None -> ());
           deliver other frame
         end
         else t.dropped <- t.dropped + 1))

let serialization_delay cap frame =
  let bits = 8 * String.length frame in
  let us = bits * 1_000_000 / cap.bandwidth_bps in
  Rf_sim.Vtime.span_us (max 1 us)

let attach t side other dir =
  let transmit frame =
    t.offered <- t.offered + 1;
    if not t.up then t.dropped <- t.dropped + 1
    else
      match t.capacity with
      | None -> propagate t other frame
      | Some cap ->
          if dir.queued >= cap.queue_frames then begin
            (* Bounded FIFO: tail drop. *)
            dir.queue_dropped <- dir.queue_dropped + 1;
            t.dropped <- t.dropped + 1
          end
          else begin
            dir.queued <- dir.queued + 1;
            let now = Rf_sim.Engine.now t.engine in
            let start =
              if Rf_sim.Vtime.compare dir.busy_until now > 0 then
                dir.busy_until
              else now
            in
            let finish =
              Rf_sim.Vtime.add start (serialization_delay cap frame)
            in
            dir.busy_until <- finish;
            ignore
              (Rf_sim.Engine.schedule_at ~entity:t.entity t.engine finish
                 (fun () ->
                   dir.queued <- dir.queued - 1;
                   if t.up then propagate t other frame
                   else t.dropped <- t.dropped + 1))
          end
  in
  match side with
  | To_switch (dp, port) -> Datapath.set_transmit dp ~port transmit
  | To_host h -> Host.set_transmit h transmit

(* Load attribution: switch-switch links are entities of their own
   (their propagation work sits between two domains); host access
   links fold into the host, whose placement follows its edge
   switch. *)
let attribution a b =
  match (a, b) with
  | To_switch (da, _), To_switch (db, _) ->
      Rf_obs.Profiler.link (Datapath.dpid da) (Datapath.dpid db)
  | To_host h, _ | _, To_host h -> Rf_obs.Profiler.host (Host.name h)

let connect engine ?(latency = Rf_sim.Vtime.span_ms 1) ?capacity a b =
  let direction () =
    { busy_until = Rf_sim.Vtime.zero; queued = 0; queue_dropped = 0 }
  in
  let t =
    {
      engine;
      latency;
      entity = attribution a b;
      a;
      b;
      up = true;
      capacity;
      dir_ab = direction ();
      dir_ba = direction ();
      offered = 0;
      carried = 0;
      dropped = 0;
      tap = None;
    }
  in
  attach t a b t.dir_ab;
  attach t b a t.dir_ba;
  t

let set_capacity t capacity = t.capacity <- capacity

let capacity t = t.capacity

let set_up t up =
  if t.up <> up then begin
    t.up <- up;
    let toggle = function
      | To_switch (dp, port) -> Datapath.set_port_up dp port up
      | To_host _ -> ()
    in
    toggle t.a;
    toggle t.b
  end

let is_up t = t.up

let set_tap t f = t.tap <- Some f

let frames_offered t = t.offered

let frames_carried t = t.carried

let frames_dropped t = t.dropped

let frames_queue_dropped t = t.dir_ab.queue_dropped + t.dir_ba.queue_dropped
