(** End hosts with a minimal IPv4 stack: ARP (with request retry and
    learning), ICMP echo, and UDP send/receive. Used as the video
    server and remote client of the paper's demonstration. *)

open Rf_packet

type t

val create :
  Rf_sim.Engine.t ->
  name:string ->
  mac:Mac.t ->
  ip:Ipv4_addr.t ->
  prefix_len:int ->
  gateway:Ipv4_addr.t ->
  unit ->
  t

val name : t -> string

val entity : t -> Rf_obs.Profiler.entity
(** The host's load-attribution handle ([Host name]). *)

val mac : t -> Mac.t

val ip : t -> Ipv4_addr.t

val gateway : t -> Ipv4_addr.t

val set_transmit : t -> (string -> unit) -> unit

val receive_frame : t -> string -> unit

val gratuitous_arp : t -> unit
(** Announce our own binding (hosts do this when an interface comes
    up); also primes switches' tables with our MAC. *)

val send_udp : t -> ?src_port:int -> dst:Ipv4_addr.t -> dst_port:int -> string -> unit
(** Resolves the next hop (direct neighbour or gateway) via ARP; frames
    queue while resolution is pending and ARP requests are retried
    every 2 s until answered. *)

val set_udp_handler :
  t -> (src:Ipv4_addr.t -> src_port:int -> dst_port:int -> payload:string -> unit)
  -> unit
(** A single handler for all ports (scenarios demux themselves). When
    unset, datagrams still count in [udp_received]. *)

val ping : t -> dst:Ipv4_addr.t -> seq:int -> unit

val set_echo_handler : t -> (src:Ipv4_addr.t -> seq:int -> unit) -> unit
(** Called on each received echo reply. *)

(** {1 Constant-rate UDP streams (the demo's video traffic)} *)

type stream

val start_udp_stream :
  t ->
  dst:Ipv4_addr.t ->
  dst_port:int ->
  period:Rf_sim.Vtime.span ->
  payload_size:int ->
  ?count:int ->
  unit ->
  stream
(** Sends the first datagram immediately, then every [period].
    Unlimited when [count] is omitted. *)

val stop_stream : stream -> unit
(** Idempotent: the first call cancels the timer and freezes the
    counter; further calls are no-ops. After stopping, no more
    datagrams from this stream reach [send_udp], so [stream_sent]
    equals the stream's contribution to [udp_sent]. Streams that hit
    their [count] limit stop themselves. *)

val stream_sent : stream -> int

val stream_stopped : stream -> bool

(** {1 Counters} *)

val udp_received : t -> int

val udp_sent : t -> int

val first_udp_rx_time : t -> Rf_sim.Vtime.t option
(** When the first datagram arrived — the demo's "video reaches the
    client" instant. *)

val arp_cache : t -> (Ipv4_addr.t * Mac.t) list

val frames_received : t -> int
