(** Instantiates an emulated network from a topology description:
    datapaths with OF agents, hosts, and data-plane links. Control
    channels are handed to [attach_controller] — in the paper's setup
    that is FlowVisor's switch-facing side. *)

open Rf_packet

type host_config = {
  hc_ip : Ipv4_addr.t;
  hc_prefix_len : int;
  hc_gateway : Ipv4_addr.t;
}

type t

val build :
  Rf_sim.Engine.t ->
  Topology.t ->
  host_config:(string -> host_config) ->
  attach_controller:(dpid:int64 -> Channel.endpoint -> unit) ->
  ?control_latency:Rf_sim.Vtime.span ->
  ?switch_boot_delay:(int64 -> Rf_sim.Vtime.span) ->
  unit ->
  t
(** [switch_boot_delay] staggers when each switch opens its control
    connection (default: all at the current instant). Hosts announce
    themselves with a gratuitous ARP when built. *)

val engine : t -> Rf_sim.Engine.t

val topology : t -> Topology.t

val datapath : t -> int64 -> Datapath.t

val datapaths : t -> (int64 * Datapath.t) list

val host : t -> string -> Host.t

val hosts : t -> (string * Host.t) list

val link : t -> Topology.node -> Topology.node -> Link.t option

val links : t -> ((Topology.node * Topology.node) * Link.t) list
(** All links in a deterministic order (switches before hosts, then by
    dpid/name), regardless of construction order. *)

val set_all_link_capacity : t -> Link.capacity option -> unit
(** Applies one capacity model to every link (switch-switch and
    switch-host alike); [None] restores ideal links. *)

val queue_dropped_frames : t -> int
(** Sum of FIFO tail drops over all links. *)

val set_link_up : t -> Topology.node -> Topology.node -> bool -> unit
(** Raises [Not_found] when there is no such link. *)

val set_on_link_state :
  t -> (Topology.node -> Topology.node -> bool -> unit) -> unit
(** Observer fired by {!set_link_up} after the link state changed —
    every link fault and recovery (the fault injector included) goes
    through that chokepoint, so this is the auditor's link feed. *)

val disconnect_switch : t -> int64 -> unit
(** Closes the switch's control connection (crash injection); the
    datapath keeps forwarding with its installed flows, headless. *)

val reconnect_switch : t -> int64 -> unit
(** Opens a fresh control connection for the switch (recovery after
    [disconnect_switch]); to the controllers this is a brand-new
    switch joining. *)

val total_data_frames : t -> int
(** Sum of frames carried over all links. *)

val set_partition : t -> shards:int -> (Topology.node -> int) -> unit
(** Records the node→shard assignment a sharded run will use. Link
    latency is the shard-boundary contract: the minimum latency over
    cross-shard links bounds the conservative lookahead, so this raises
    [Invalid_argument] when [shards > 1] and a zero-latency link
    crosses the cut. *)

val partition_shards : t -> int
(** Shard count of the recorded partition; [1] when none is set. *)

val shard_of : t -> Topology.node -> int option
(** The recorded shard of a node, [None] when no partition is set. *)

val partition_cut : t -> Topology.cut option
(** Cut statistics of the recorded partition. *)
