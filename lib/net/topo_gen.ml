let ring ?(latency = Rf_sim.Vtime.span_ms 1) n =
  if n < 3 then invalid_arg "Topo_gen.ring: need at least 3 switches";
  let t = Topology.create () in
  for i = 1 to n do
    Topology.add_switch t (Int64.of_int i)
  done;
  for i = 1 to n do
    let next = if i = n then 1 else i + 1 in
    ignore
      (Topology.connect t ~latency
         (Topology.Switch (Int64.of_int i))
         (Topology.Switch (Int64.of_int next)))
  done;
  t

let line ?(latency = Rf_sim.Vtime.span_ms 1) n =
  if n < 2 then invalid_arg "Topo_gen.line: need at least 2 switches";
  let t = Topology.create () in
  for i = 1 to n - 1 do
    ignore
      (Topology.connect t ~latency
         (Topology.Switch (Int64.of_int i))
         (Topology.Switch (Int64.of_int (i + 1))))
  done;
  t

let star ?(latency = Rf_sim.Vtime.span_ms 1) n =
  if n < 2 then invalid_arg "Topo_gen.star: need at least 2 switches";
  let t = Topology.create () in
  for i = 2 to n do
    ignore
      (Topology.connect t ~latency (Topology.Switch 1L)
         (Topology.Switch (Int64.of_int i)))
  done;
  t

let grid ?(latency = Rf_sim.Vtime.span_ms 1) w h =
  if w < 1 || h < 1 || w * h < 2 then invalid_arg "Topo_gen.grid";
  let t = Topology.create () in
  let dpid x y = Int64.of_int ((y * w) + x + 1) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then
        ignore
          (Topology.connect t ~latency
             (Topology.Switch (dpid x y))
             (Topology.Switch (dpid (x + 1) y)));
      if y + 1 < h then
        ignore
          (Topology.connect t ~latency
             (Topology.Switch (dpid x y))
             (Topology.Switch (dpid x (y + 1))))
    done
  done;
  t

let random ?(latency = Rf_sim.Vtime.span_ms 1) ~seed ~n ~extra_edges () =
  if n < 2 then invalid_arg "Topo_gen.random: need at least 2 switches";
  let rng = Rf_sim.Rng.create seed in
  let t = Topology.create () in
  (* Random spanning tree: attach each new node to a uniformly chosen
     existing node, after a random relabeling. *)
  let order = Array.init n (fun i -> Int64.of_int (i + 1)) in
  Rf_sim.Rng.shuffle rng order;
  for i = 1 to n - 1 do
    let parent = order.(Rf_sim.Rng.int rng i) in
    ignore
      (Topology.connect t ~latency (Topology.Switch order.(i))
         (Topology.Switch parent))
  done;
  let attempts = ref (20 * extra_edges) in
  let added = ref 0 in
  while !added < extra_edges && !attempts > 0 do
    decr attempts;
    let a = order.(Rf_sim.Rng.int rng n) in
    let b = order.(Rf_sim.Rng.int rng n) in
    if
      (not (Int64.equal a b))
      && Topology.edge_between t (Topology.Switch a) (Topology.Switch b) = None
    then begin
      ignore
        (Topology.connect t ~latency (Topology.Switch a) (Topology.Switch b));
      incr added
    end
  done;
  t

(* The 28-node pan-European reference network (de Maesschalck et al.
   2003). Latencies are one-way propagation delays (~5 us/km) rounded
   to the millisecond, floor 1 ms. *)
let cities =
  [|
    "Amsterdam" (* 1 *);
    "Athens" (* 2 *);
    "Barcelona" (* 3 *);
    "Belgrade" (* 4 *);
    "Berlin" (* 5 *);
    "Bordeaux" (* 6 *);
    "Brussels" (* 7 *);
    "Budapest" (* 8 *);
    "Copenhagen" (* 9 *);
    "Dublin" (* 10 *);
    "Dusseldorf" (* 11 *);
    "Frankfurt" (* 12 *);
    "Glasgow" (* 13 *);
    "Hamburg" (* 14 *);
    "Helsinki" (* 15 *);
    "Krakow" (* 16 *);
    "London" (* 17 *);
    "Lyon" (* 18 *);
    "Madrid" (* 19 *);
    "Milan" (* 20 *);
    "Munich" (* 21 *);
    "Oslo" (* 22 *);
    "Paris" (* 23 *);
    "Prague" (* 24 *);
    "Rome" (* 25 *);
    "Stockholm" (* 26 *);
    "Vienna" (* 27 *);
    "Zurich" (* 28 *);
  |]

let pan_european_city dpid =
  let i = Int64.to_int dpid in
  if i < 1 || i > Array.length cities then raise Not_found;
  cities.(i - 1)

let pan_european_links =
  (* (a, b, one-way latency in ms) by city index, 41 links *)
  [
    (13, 10, 2) (* Glasgow-Dublin *);
    (13, 17, 3) (* Glasgow-London *);
    (10, 17, 2) (* Dublin-London *);
    (17, 1, 2) (* London-Amsterdam *);
    (17, 23, 2) (* London-Paris *);
    (1, 7, 1) (* Amsterdam-Brussels *);
    (1, 14, 2) (* Amsterdam-Hamburg *);
    (7, 11, 1) (* Brussels-Dusseldorf *);
    (7, 23, 2) (* Brussels-Paris *);
    (23, 6, 3) (* Paris-Bordeaux *);
    (23, 18, 2) (* Paris-Lyon *);
    (6, 19, 3) (* Bordeaux-Madrid *);
    (19, 3, 3) (* Madrid-Barcelona *);
    (3, 18, 3) (* Barcelona-Lyon *);
    (18, 28, 2) (* Lyon-Zurich *);
    (28, 20, 2) (* Zurich-Milan *);
    (28, 12, 2) (* Zurich-Frankfurt *);
    (20, 25, 3) (* Milan-Rome *);
    (25, 2, 5) (* Rome-Athens *);
    (2, 4, 4) (* Athens-Belgrade *);
    (4, 8, 2) (* Belgrade-Budapest *);
    (8, 27, 2) (* Budapest-Vienna *);
    (27, 21, 2) (* Vienna-Munich *);
    (27, 24, 2) (* Vienna-Prague *);
    (21, 12, 2) (* Munich-Frankfurt *);
    (21, 20, 3) (* Munich-Milan *);
    (12, 11, 1) (* Frankfurt-Dusseldorf *);
    (11, 14, 2) (* Dusseldorf-Hamburg *);
    (14, 5, 2) (* Hamburg-Berlin *);
    (5, 9, 2) (* Berlin-Copenhagen *);
    (5, 24, 2) (* Berlin-Prague *);
    (24, 16, 2) (* Prague-Krakow *);
    (16, 8, 2) (* Krakow-Budapest *);
    (9, 22, 3) (* Copenhagen-Oslo *);
    (9, 26, 3) (* Copenhagen-Stockholm *);
    (22, 26, 3) (* Oslo-Stockholm *);
    (26, 15, 2) (* Stockholm-Helsinki *);
    (15, 5, 6) (* Helsinki-Berlin *);
    (12, 5, 3) (* Frankfurt-Berlin *);
    (3, 25, 5) (* Barcelona-Rome *);
    (2, 20, 6) (* Athens-Milan *);
  ]

(* k-ary fat-tree (Al-Fares et al., SIGCOMM 2008): (k/2)^2 core
   switches, k pods of k/2 aggregation + k/2 edge switches, and k/2
   hosts per edge switch — 5k^2/4 switches, k^3/4 hosts, every switch
   of degree k. Dpids: cores first (1..(k/2)^2), then per pod the
   aggregation switches followed by the edge switches. *)

let fat_tree_host_name idx = Printf.sprintf "h%04d" idx

let fat_tree_host_count k = k * k * k / 4

let fat_tree_hops ~k a b =
  let half = k / 2 in
  if a = b then 0
  else if a / half = b / half then 2 (* same edge switch *)
  else if a / (half * half) = b / (half * half) then 4 (* same pod *)
  else 6

let fat_tree ?(latency = Rf_sim.Vtime.span_ms 1) ?(with_hosts = true) k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topo_gen.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  let t = Topology.create () in
  let core i = Int64.of_int (i + 1) in
  let agg p j = Int64.of_int (cores + (p * k) + j + 1) in
  let edge p e = Int64.of_int (cores + (p * k) + half + e + 1) in
  for i = 0 to cores - 1 do
    Topology.add_switch t (core i)
  done;
  for p = 0 to k - 1 do
    for j = 0 to half - 1 do
      Topology.add_switch t (agg p j)
    done;
    for e = 0 to half - 1 do
      Topology.add_switch t (edge p e)
    done
  done;
  for p = 0 to k - 1 do
    for j = 0 to half - 1 do
      (* Aggregation switch j of every pod reaches core group j. *)
      for i = 0 to half - 1 do
        ignore
          (Topology.connect t ~latency
             (Topology.Switch (agg p j))
             (Topology.Switch (core ((j * half) + i))))
      done;
      for e = 0 to half - 1 do
        ignore
          (Topology.connect t ~latency
             (Topology.Switch (agg p j))
             (Topology.Switch (edge p e)))
      done
    done
  done;
  if with_hosts then
    for p = 0 to k - 1 do
      for e = 0 to half - 1 do
        for i = 0 to half - 1 do
          let idx = (((p * half) + e) * half) + i in
          let name = fat_tree_host_name idx in
          Topology.add_host t name;
          ignore
            (Topology.connect t ~latency
               (Topology.Switch (edge p e))
               (Topology.Host name))
        done
      done
    done;
  t

let pan_european () =
  let t = Topology.create () in
  for i = 1 to Array.length cities do
    Topology.add_switch t (Int64.of_int i)
  done;
  List.iter
    (fun (a, b, ms) ->
      ignore
        (Topology.connect t
           ~latency:(Rf_sim.Vtime.span_ms ms)
           (Topology.Switch (Int64.of_int a))
           (Topology.Switch (Int64.of_int b))))
    pan_european_links;
  t
