open Rf_packet

module Ip_map = Map.Make (Ipv4_addr)

type pending = { mutable frames : (Ipv4_addr.t -> Mac.t -> string) list }
(* Deferred frame builders: invoked once the next hop's MAC is known. *)

type t = {
  engine : Rf_sim.Engine.t;
  name : string;
  entity : Rf_obs.Profiler.entity;
  mac : Mac.t;
  ip : Ipv4_addr.t;
  prefix : Ipv4_addr.Prefix.t;
  gateway : Ipv4_addr.t;
  mutable transmit : (string -> unit) option;
  mutable arp : Mac.t Ip_map.t;
  mutable waiting : pending Ip_map.t;  (** keyed by next-hop IP *)
  mutable udp_handler :
    (src:Ipv4_addr.t -> src_port:int -> dst_port:int -> payload:string -> unit)
    option;
  mutable echo_handler : (src:Ipv4_addr.t -> seq:int -> unit) option;
  mutable udp_rx : int;
  mutable udp_tx : int;
  mutable frames_rx : int;
  mutable first_udp_rx : Rf_sim.Vtime.t option;
  mutable next_src_port : int;
}

let arp_retry_period = Rf_sim.Vtime.span_s 2.0

let create engine ~name ~mac ~ip ~prefix_len ~gateway () =
  {
    engine;
    name;
    entity = Rf_obs.Profiler.host name;
    mac;
    ip;
    prefix = Ipv4_addr.Prefix.make ip prefix_len;
    gateway;
    transmit = None;
    arp = Ip_map.empty;
    waiting = Ip_map.empty;
    udp_handler = None;
    echo_handler = None;
    udp_rx = 0;
    udp_tx = 0;
    frames_rx = 0;
    first_udp_rx = None;
    next_src_port = 40000;
  }

let name t = t.name

let entity t = t.entity

let mac t = t.mac

let ip t = t.ip

let gateway t = t.gateway

let set_transmit t f = t.transmit <- Some f

let raw_send t frame =
  match t.transmit with Some f -> f frame | None -> ()

let gratuitous_arp t =
  raw_send t
    (Packet.arp ~src:t.mac ~dst:Mac.broadcast
       (Arp.request ~sender_mac:t.mac ~sender_ip:t.ip ~target_ip:t.ip))

let next_hop t dst =
  if Ipv4_addr.Prefix.mem dst t.prefix then dst else t.gateway

let send_arp_request t target =
  raw_send t
    (Packet.arp ~src:t.mac ~dst:Mac.broadcast
       (Arp.request ~sender_mac:t.mac ~sender_ip:t.ip ~target_ip:target))

let rec arp_retry t target =
  if Ip_map.mem target t.waiting then begin
    send_arp_request t target;
    ignore
      (Rf_sim.Engine.schedule ~entity:t.entity t.engine arp_retry_period
         (fun () -> arp_retry t target))
  end

let resolve_and_send t dst build =
  let hop = next_hop t dst in
  match Ip_map.find_opt hop t.arp with
  | Some hop_mac -> raw_send t (build hop hop_mac)
  | None -> (
      match Ip_map.find_opt hop t.waiting with
      | Some p ->
          (* Linux keeps only a few packets per unresolved neighbour;
             keep the newest three. *)
          p.frames <- build :: (if List.length p.frames >= 3 then List.filteri (fun i _ -> i < 2) p.frames else p.frames)
      | None ->
          t.waiting <- Ip_map.add hop { frames = [ build ] } t.waiting;
          send_arp_request t hop;
          ignore
            (Rf_sim.Engine.schedule ~entity:t.entity t.engine arp_retry_period
               (fun () -> arp_retry t hop)))

let learn t ip mac =
  t.arp <- Ip_map.add ip mac t.arp;
  match Ip_map.find_opt ip t.waiting with
  | None -> ()
  | Some p ->
      t.waiting <- Ip_map.remove ip t.waiting;
      List.iter (fun build -> raw_send t (build ip mac)) (List.rev p.frames)

let send_udp t ?src_port ~dst ~dst_port payload =
  let src_port =
    match src_port with
    | Some p -> p
    | None ->
        t.next_src_port <- t.next_src_port + 1;
        t.next_src_port
  in
  t.udp_tx <- t.udp_tx + 1;
  resolve_and_send t dst (fun _hop hop_mac ->
      Packet.udp ~src_mac:t.mac ~dst_mac:hop_mac ~src_ip:t.ip ~dst_ip:dst
        (Udp.make ~src_port ~dst_port payload))

let ping t ~dst ~seq =
  resolve_and_send t dst (fun _hop hop_mac ->
      Packet.icmp ~src_mac:t.mac ~dst_mac:hop_mac ~src_ip:t.ip ~dst_ip:dst
        (Icmp.Echo_request { ident = 1; seq; payload = "rf-ping" }))

let set_udp_handler t f = t.udp_handler <- Some f

let set_echo_handler t f = t.echo_handler <- Some f

let handle_arp t (a : Arp.t) =
  (* Learn from every ARP we see addressed to us or broadcast. *)
  if not (Ipv4_addr.equal a.sender_ip Ipv4_addr.any) then
    learn t a.sender_ip a.sender_mac;
  match a.op with
  | Arp.Request when Ipv4_addr.equal a.target_ip t.ip ->
      raw_send t
        (Packet.arp ~src:t.mac ~dst:a.sender_mac
           (Arp.reply ~sender_mac:t.mac ~sender_ip:t.ip ~target_mac:a.sender_mac
              ~target_ip:a.sender_ip))
  | Arp.Request | Arp.Reply -> ()

let handle_ipv4 t (ip : Ipv4.t) l4 =
  if Ipv4_addr.equal ip.dst t.ip then begin
    match l4 with
    | Packet.Udp u ->
        t.udp_rx <- t.udp_rx + 1;
        if t.first_udp_rx = None then
          t.first_udp_rx <- Some (Rf_sim.Engine.now t.engine);
        (match t.udp_handler with
        | Some f ->
            f ~src:ip.src ~src_port:u.src_port ~dst_port:u.dst_port
              ~payload:u.payload
        | None -> ())
    | Packet.Icmp (Icmp.Echo_request { ident; seq; payload }) ->
        resolve_and_send t ip.src (fun _hop hop_mac ->
            Packet.icmp ~src_mac:t.mac ~dst_mac:hop_mac ~src_ip:t.ip
              ~dst_ip:ip.src (Icmp.Echo_reply { ident; seq; payload }))
    | Packet.Icmp (Icmp.Echo_reply { seq; _ }) -> (
        match t.echo_handler with
        | Some f -> f ~src:ip.src ~seq
        | None -> ())
    | Packet.Icmp (Icmp.Dest_unreachable _ | Icmp.Time_exceeded _)
    | Packet.Tcp _ | Packet.Ospf _ | Packet.Raw_l4 _ ->
        ()
  end

let receive_frame t frame =
  t.frames_rx <- t.frames_rx + 1;
  let for_us dst = Mac.equal dst t.mac || Mac.is_broadcast dst || Mac.is_multicast dst in
  match Packet.parse frame with
  | Error _ -> ()
  | Ok pkt ->
      if for_us pkt.eth.dst then begin
        match pkt.l3 with
        | Packet.Arp a -> handle_arp t a
        | Packet.Ipv4 (ip, l4) -> handle_ipv4 t ip l4
        | Packet.Lldp _ | Packet.Raw_l3 _ -> ()
      end

type stream = {
  host : t;
  mutable timer : Rf_sim.Engine.timer option;
  mutable sent : int;
  mutable stopped : bool;
  limit : int option;
}

let stop_stream s =
  (* Idempotent: the first call wins, later calls (and ticks raced in
     at the same vtime) are no-ops, so [stream_sent] is frozen at the
     number of datagrams actually handed to [send_udp]. *)
  if not s.stopped then begin
    s.stopped <- true;
    match s.timer with
    | Some timer ->
        Rf_sim.Engine.cancel timer;
        s.timer <- None
    | None -> ()
  end

let start_udp_stream t ~dst ~dst_port ~period ~payload_size ?count () =
  let s = { host = t; timer = None; sent = 0; stopped = false; limit = count } in
  let src_port = 5004 in
  let payload seq =
    (* An RTP-flavoured payload: sequence number then filler. *)
    let w = Wire.Writer.create ~initial:payload_size () in
    Wire.Writer.u32 w (Int32.of_int seq);
    Wire.Writer.zeros w (max 0 (payload_size - 4));
    Wire.Writer.contents w
  in
  let tick () =
    if not s.stopped then
      match s.limit with
      | Some n when s.sent >= n -> stop_stream s
      | Some _ | None ->
          send_udp t ~src_port ~dst ~dst_port (payload s.sent);
          s.sent <- s.sent + 1
  in
  tick ();
  if not s.stopped then
    s.timer <- Some (Rf_sim.Engine.periodic ~entity:t.entity t.engine period tick);
  s

let stream_sent s = s.sent

let stream_stopped s = s.stopped

let udp_received t = t.udp_rx

let udp_sent t = t.udp_tx

let first_udp_rx_time t = t.first_udp_rx

let arp_cache t = Ip_map.bindings t.arp

let frames_received t = t.frames_rx
