(** Network topology descriptions.

    A topology is the ground truth the emulated network is built from;
    the topology controller must re-discover the switch/link part of it
    via LLDP. Switch nodes carry datapath ids; host nodes carry names.
    Ports are numbered from 1 in edge-insertion order, matching how
    Open vSwitch numbers its interfaces. *)

type node = Switch of int64 | Host of string

type edge = {
  a : node;
  a_port : int;
  b : node;
  b_port : int;
  latency : Rf_sim.Vtime.span;
  cost : int;  (** OSPF metric of the corresponding virtual link *)
}

type t

val create : unit -> t

val add_switch : t -> int64 -> unit
(** Idempotent. *)

val add_host : t -> string -> unit

val connect :
  t ->
  ?latency:Rf_sim.Vtime.span ->
  ?cost:int ->
  ?a_port:int ->
  ?b_port:int ->
  node ->
  node ->
  edge
(** Adds both endpoints if missing; allocates the next free port on
    each side unless explicit ports are given. Default latency 1 ms,
    cost 10. Host–host edges are rejected. *)

val switches : t -> int64 list
(** Sorted. *)

val hosts : t -> string list
(** Sorted. *)

val edges : t -> edge list
(** In insertion order. *)

val switch_count : t -> int

val edge_count : t -> int

val ports_of : t -> node -> (int * node * int) list
(** [(local_port, peer, peer_port)], sorted by local port. *)

val degree : t -> node -> int

val neighbors : t -> node -> node list

val peer_of : t -> node -> int -> (node * int) option
(** What the given port connects to. *)

val edge_between : t -> node -> node -> edge option

val switch_switch_edges : t -> edge list
(** Only the core links LLDP discovery can find. *)

val host_edges : t -> edge list

val is_connected : t -> bool
(** Considering switch nodes only. *)

val hop_distance : t -> node -> node -> int option
(** BFS hop count, [None] if unreachable. *)

val diameter : t -> int
(** Max finite switch-to-switch hop distance (0 for <2 switches). *)

type cut = {
  cut_shards : int;
  cut_cross_edges : int;  (** edges whose endpoints sit on different shards *)
  cut_total_edges : int;
  cut_lookahead : Rf_sim.Vtime.span option;
      (** Minimum latency over cross-shard edges — the largest safe
          conservative-lookahead horizon this cut supports. [None] when
          nothing crosses the cut. *)
}

val cut_stats : t -> shards:int -> assign:(node -> int) -> cut
(** Evaluates a node→shard assignment as a shard boundary. Link latency
    is the boundary contract: a sharded engine may only run a window of
    [cut_lookahead] safely. Raises [Invalid_argument] when an assigned
    shard id falls outside [0, shards). *)

val pp_node : Format.formatter -> node -> unit

val node_equal : node -> node -> bool
