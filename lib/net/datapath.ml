open Rf_packet
open Rf_openflow

type port = {
  port_no : int;
  mac : Mac.t;
  mutable up : bool;
  mutable transmit : (string -> unit) option;
  mutable rx_packets : int64;
  mutable tx_packets : int64;
  mutable rx_bytes : int64;
  mutable tx_bytes : int64;
  mutable rx_dropped : int64;
  mutable tx_dropped : int64;
}

type t = {
  engine : Rf_sim.Engine.t;
  dpid : int64;
  entity : Rf_obs.Profiler.entity;
  ports : port array;  (** index 0 = port 1 *)
  table : Flow_table.t;
  buffers : (int32, int * string) Hashtbl.t;  (** id -> (in_port, frame) *)
  mutable buffer_order : int32 list;  (** oldest last *)
  mutable next_buffer : int32;
  mutable miss_send_len : int;
  mutable on_packet_in : Of_msg.packet_in -> unit;
  mutable on_flow_removed : Of_msg.flow_removed -> unit;
  mutable on_port_status : Of_msg.port_status_reason -> Of_msg.phys_port -> unit;
  mutable on_table_changed : unit -> unit;
  mutable forwarded : int;
  mutable missed : int;
  mutable dropped : int;
}

let max_buffers = 256

let port_desc (p : port) =
  {
    Of_msg.port_no = p.port_no;
    hw_addr = p.mac;
    name = Printf.sprintf "eth%d" p.port_no;
    up = p.up;
  }

let create engine ~dpid ~n_ports ?table_capacity () =
  if n_ports < 1 || n_ports > Of_port.max_physical then
    invalid_arg "Datapath.create: bad port count";
  let mk i =
    {
      port_no = i + 1;
      mac = Mac.make_local ((Int64.to_int dpid lsl 12) lor (i + 1));
      up = true;
      transmit = None;
      rx_packets = 0L;
      tx_packets = 0L;
      rx_bytes = 0L;
      tx_bytes = 0L;
      rx_dropped = 0L;
      tx_dropped = 0L;
    }
  in
  let t =
    {
      engine;
      dpid;
      entity = Rf_obs.Profiler.switch dpid;
      ports = Array.init n_ports mk;
      table = Flow_table.create ?capacity:table_capacity ();
      buffers = Hashtbl.create 64;
      buffer_order = [];
      next_buffer = 1l;
      miss_send_len = 128;
      on_packet_in = (fun _ -> ());
      on_flow_removed = (fun _ -> ());
      on_port_status = (fun _ _ -> ());
      on_table_changed = (fun () -> ());
      forwarded = 0;
      missed = 0;
      dropped = 0;
    }
  in
  let expiry () =
    let now = Rf_sim.Engine.now engine in
    let removed = Flow_table.expire t.table ~now in
    List.iter
      (fun ((e : Flow_table.entry), reason) ->
        if e.Flow_table.e_notify_removed then
          t.on_flow_removed
            {
              Of_msg.fr_match = e.Flow_table.e_match;
              fr_cookie = e.Flow_table.e_cookie;
              fr_priority = e.Flow_table.e_priority;
              fr_reason =
                (match reason with
                | Flow_table.Expired_idle -> Of_msg.Removed_idle
                | Flow_table.Expired_hard -> Of_msg.Removed_hard
                | Flow_table.Deleted -> Of_msg.Removed_delete);
              fr_duration_s =
                int_of_float
                  (Rf_sim.Vtime.span_to_s
                     (Rf_sim.Vtime.diff now e.Flow_table.e_installed));
              fr_packet_count = e.Flow_table.e_packets;
              fr_byte_count = e.Flow_table.e_bytes;
            })
      removed;
    if removed <> [] then t.on_table_changed ()
  in
  ignore
    (Rf_sim.Engine.periodic ~entity:t.entity engine (Rf_sim.Vtime.span_s 1.0)
       expiry);
  t

let dpid t = t.dpid

let entity t = t.entity

let engine t = t.engine

let n_ports t = Array.length t.ports

let get_port t n =
  if n < 1 || n > Array.length t.ports then None else Some t.ports.(n - 1)

let port_mac t n =
  match get_port t n with
  | Some p -> p.mac
  | None -> invalid_arg "Datapath.port_mac"

let port_up t n = match get_port t n with Some p -> p.up | None -> false

let set_port_up t n up =
  match get_port t n with
  | None -> invalid_arg "Datapath.set_port_up"
  | Some p ->
      if p.up <> up then begin
        p.up <- up;
        t.on_port_status Of_msg.Port_modify (port_desc p)
      end

let set_transmit t ~port f =
  match get_port t port with
  | None -> invalid_arg "Datapath.set_transmit"
  | Some p -> p.transmit <- Some f

let flow_table t = t.table

let miss_send_len t = t.miss_send_len

let set_miss_send_len t len = t.miss_send_len <- max 0 (min 65535 len)

let features t =
  {
    Of_msg.datapath_id = t.dpid;
    n_buffers = Int32.of_int max_buffers;
    n_tables = 1;
    capabilities = 0x00000001l (* FLOW_STATS *);
    supported_actions = 0x07FFl;
    ports = Array.to_list (Array.map port_desc t.ports);
  }

let set_on_packet_in t f = t.on_packet_in <- f

let set_on_flow_removed t f = t.on_flow_removed <- f

let set_on_port_status t f = t.on_port_status <- f

let set_on_table_changed t f = t.on_table_changed <- f

let packets_forwarded t = t.forwarded

let packets_missed t = t.missed

let packets_dropped t = t.dropped

(* --- frame surgery for the set-field actions -------------------- *)

let eth_header_len = 14

let ip_header_offset = eth_header_len

let has_ipv4 frame =
  String.length frame >= eth_header_len + 20
  && (Char.code frame.[12] lsl 8) lor Char.code frame.[13]
     = Ethernet.ethertype_ipv4

let refresh_ip_checksum b =
  let ihl = (Char.code (Bytes.get b ip_header_offset) land 0xF) * 4 in
  Bytes.set b (ip_header_offset + 10) '\000';
  Bytes.set b (ip_header_offset + 11) '\000';
  let header = Bytes.sub_string b ip_header_offset ihl in
  let csum = Wire.checksum header in
  Bytes.set b (ip_header_offset + 10) (Char.chr (csum lsr 8));
  Bytes.set b (ip_header_offset + 11) (Char.chr (csum land 0xff))

let set_mac b off mac = Bytes.blit_string (Mac.to_bytes mac) 0 b off 6

let set_ip_field frame_bytes off addr =
  let v = Ipv4_addr.to_int32 addr in
  for i = 0 to 3 do
    Bytes.set frame_bytes (off + i)
      (Char.chr
         (Int32.to_int (Int32.shift_right_logical v (8 * (3 - i))) land 0xff))
  done

let l4_offset frame_bytes =
  ip_header_offset
  + ((Char.code (Bytes.get frame_bytes ip_header_offset) land 0xF) * 4)

let apply_set_field frame action =
  match action with
  | Of_action.Output _ -> frame
  | Of_action.Strip_vlan -> frame (* frames in this simulator are untagged *)
  | Of_action.Set_dl_src mac ->
      let b = Bytes.of_string frame in
      set_mac b 6 mac;
      Bytes.to_string b
  | Of_action.Set_dl_dst mac ->
      let b = Bytes.of_string frame in
      set_mac b 0 mac;
      Bytes.to_string b
  | Of_action.Set_nw_src addr when has_ipv4 frame ->
      let b = Bytes.of_string frame in
      set_ip_field b (ip_header_offset + 12) addr;
      refresh_ip_checksum b;
      Bytes.to_string b
  | Of_action.Set_nw_dst addr when has_ipv4 frame ->
      let b = Bytes.of_string frame in
      set_ip_field b (ip_header_offset + 16) addr;
      refresh_ip_checksum b;
      Bytes.to_string b
  | Of_action.Set_nw_tos tos when has_ipv4 frame ->
      let b = Bytes.of_string frame in
      Bytes.set b (ip_header_offset + 1) (Char.chr (tos land 0xff));
      refresh_ip_checksum b;
      Bytes.to_string b
  | Of_action.Set_tp_src port when has_ipv4 frame ->
      let b = Bytes.of_string frame in
      let off = l4_offset b in
      if Bytes.length b >= off + 2 then begin
        Bytes.set b off (Char.chr (port lsr 8));
        Bytes.set b (off + 1) (Char.chr (port land 0xff))
      end;
      Bytes.to_string b
  | Of_action.Set_tp_dst port when has_ipv4 frame ->
      let b = Bytes.of_string frame in
      let off = l4_offset b + 2 in
      if Bytes.length b >= off + 2 then begin
        Bytes.set b off (Char.chr (port lsr 8));
        Bytes.set b (off + 1) (Char.chr (port land 0xff))
      end;
      Bytes.to_string b
  | Of_action.Set_nw_src _ | Of_action.Set_nw_dst _ | Of_action.Set_nw_tos _
  | Of_action.Set_tp_src _ | Of_action.Set_tp_dst _ ->
      frame

(* --- buffering --------------------------------------------------- *)

let store_buffer t ~in_port frame =
  if Hashtbl.length t.buffers >= max_buffers then begin
    match List.rev t.buffer_order with
    | oldest :: _ ->
        Hashtbl.remove t.buffers oldest;
        t.buffer_order <-
          List.filter (fun id -> not (Int32.equal id oldest)) t.buffer_order;
        t.dropped <- t.dropped + 1
    | [] -> ()
  end;
  let id = t.next_buffer in
  t.next_buffer <- Int32.add t.next_buffer 1l;
  Hashtbl.replace t.buffers id (in_port, frame);
  t.buffer_order <- id :: t.buffer_order;
  id

let take_buffer t id =
  match Hashtbl.find_opt t.buffers id with
  | Some v ->
      Hashtbl.remove t.buffers id;
      t.buffer_order <-
        List.filter (fun i -> not (Int32.equal i id)) t.buffer_order;
      Some v
  | None -> None

(* --- forwarding --------------------------------------------------- *)

let transmit_on _t (p : port) frame =
  if p.up then begin
    match p.transmit with
    | Some f ->
        p.tx_packets <- Int64.succ p.tx_packets;
        p.tx_bytes <- Int64.add p.tx_bytes (Int64.of_int (String.length frame));
        f frame
    | None -> p.tx_dropped <- Int64.succ p.tx_dropped
  end
  else p.tx_dropped <- Int64.succ p.tx_dropped

let emit_packet_in t ~in_port ~reason frame =
  let total_len = String.length frame in
  let buffer_id, data =
    if total_len <= t.miss_send_len then (None, frame)
    else
      let id = store_buffer t ~in_port frame in
      (Some id, String.sub frame 0 t.miss_send_len)
  in
  t.on_packet_in
    {
      Of_msg.pi_buffer_id = buffer_id;
      pi_total_len = total_len;
      pi_in_port = in_port;
      pi_reason = reason;
      pi_data = data;
    }

let rec apply_actions t ~in_port frame actions =
  match actions with
  | [] -> ()
  | action :: rest -> (
      match action with
      | Of_action.Output { port; _ } ->
          output t ~in_port frame port;
          apply_actions t ~in_port frame rest
      | Of_action.Set_dl_src _ | Of_action.Set_dl_dst _ | Of_action.Set_nw_src _
      | Of_action.Set_nw_dst _ | Of_action.Set_nw_tos _ | Of_action.Set_tp_src _
      | Of_action.Set_tp_dst _ | Of_action.Strip_vlan ->
          apply_actions t ~in_port (apply_set_field frame action) rest)

and output t ~in_port frame port =
  if port = Of_port.flood || port = Of_port.all then
    (* Both exclude the ingress port; there is no STP in this model so
       FLOOD and ALL coincide. *)
    Array.iter
      (fun p -> if p.port_no <> in_port then transmit_on t p frame)
      t.ports
  else if port = Of_port.in_port then begin
    match get_port t in_port with
    | Some p -> transmit_on t p frame
    | None -> t.dropped <- t.dropped + 1
  end
  else if port = Of_port.controller then
    emit_packet_in t ~in_port ~reason:Of_msg.Action_to_controller frame
  else if Of_port.is_physical port then begin
    match get_port t port with
    | Some p -> transmit_on t p frame
    | None -> t.dropped <- t.dropped + 1
  end
  else (* TABLE / NORMAL / LOCAL / NONE: not forwarded in this model *)
    t.dropped <- t.dropped + 1

let receive_frame t ~in_port frame =
  match get_port t in_port with
  | None -> invalid_arg "Datapath.receive_frame: no such port"
  | Some p ->
      if not p.up then p.rx_dropped <- Int64.succ p.rx_dropped
      else begin
        p.rx_packets <- Int64.succ p.rx_packets;
        p.rx_bytes <- Int64.add p.rx_bytes (Int64.of_int (String.length frame));
        match Packet.parse frame with
        | Error _ ->
            p.rx_dropped <- Int64.succ p.rx_dropped;
            t.dropped <- t.dropped + 1
        | Ok pkt -> (
            let key = Of_match.key_of_packet ~in_port pkt in
            match Flow_table.lookup t.table key with
            | Some entry ->
                Flow_table.account entry
                  ~now:(Rf_sim.Engine.now t.engine)
                  ~bytes:(String.length frame);
                t.forwarded <- t.forwarded + 1;
                apply_actions t ~in_port frame entry.Flow_table.e_actions
            | None ->
                t.missed <- t.missed + 1;
                emit_packet_in t ~in_port ~reason:Of_msg.No_match frame)
      end

let handle_flow_mod t (fm : Of_msg.flow_mod) =
  let now = Rf_sim.Engine.now t.engine in
  match Flow_table.apply_flow_mod t.table ~now fm with
  | Error msg ->
      Error
        {
          Of_msg.err_type = Of_msg.error_flow_mod_failed;
          err_code = 0;
          err_data = msg;
        }
  | Ok removed ->
      List.iter
        (fun (e : Flow_table.entry) ->
          if e.Flow_table.e_notify_removed then
            t.on_flow_removed
              {
                Of_msg.fr_match = e.Flow_table.e_match;
                fr_cookie = e.Flow_table.e_cookie;
                fr_priority = e.Flow_table.e_priority;
                fr_reason = Of_msg.Removed_delete;
                fr_duration_s =
                  int_of_float
                    (Rf_sim.Vtime.span_to_s
                       (Rf_sim.Vtime.diff now e.Flow_table.e_installed));
                fr_packet_count = e.Flow_table.e_packets;
                fr_byte_count = e.Flow_table.e_bytes;
              })
        removed;
      (match (fm.fm_command, fm.fm_buffer_id) with
      | Of_msg.Add, Some buffer | Of_msg.Modify, Some buffer -> (
          match take_buffer t buffer with
          | Some (in_port, frame) ->
              apply_actions t ~in_port frame fm.fm_actions
          | None -> ())
      | (Of_msg.Add | Of_msg.Modify | Of_msg.Modify_strict | Of_msg.Delete
        | Of_msg.Delete_strict), (Some _ | None) ->
          ());
      t.on_table_changed ();
      Ok ()

let handle_packet_out t (po : Of_msg.packet_out) =
  let frame =
    match po.po_buffer_id with
    | Some id -> (
        match take_buffer t id with
        | Some (_, frame) -> Some frame
        | None -> None)
    | None -> Some po.po_data
  in
  match frame with
  | None ->
      Error
        {
          Of_msg.err_type = Of_msg.error_bad_request;
          err_code = 8 (* OFPBRC_BUFFER_UNKNOWN *);
          err_data = "";
        }
  | Some frame ->
      apply_actions t ~in_port:po.po_in_port frame po.po_actions;
      Ok ()

let flow_stats t ~match_ ~out_port =
  Flow_table.stats t.table ~match_ ~out_port ~now:(Rf_sim.Engine.now t.engine)

let port_stats t ~port =
  let stat (p : port) =
    {
      Of_msg.ps_port_no = p.port_no;
      ps_rx_packets = p.rx_packets;
      ps_tx_packets = p.tx_packets;
      ps_rx_bytes = p.rx_bytes;
      ps_tx_bytes = p.tx_bytes;
      ps_rx_dropped = p.rx_dropped;
      ps_tx_dropped = p.tx_dropped;
    }
  in
  if port = Of_port.none then Array.to_list (Array.map stat t.ports)
  else match get_port t port with Some p -> [ stat p ] | None -> []
