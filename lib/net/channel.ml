type endpoint = {
  engine : Rf_sim.Engine.t;
  latency : Rf_sim.Vtime.span;
  ep_name : string;
  entity : Rf_obs.Profiler.entity option;
  mutable peer : endpoint option;
  mutable receiver : (string -> unit) option;
  mutable pending : string list;  (** reversed buffer until receiver set *)
  mutable open_ : bool;
  mutable on_close : (unit -> unit) option;
}

let make engine latency entity ep_name =
  {
    engine;
    latency;
    ep_name;
    entity;
    peer = None;
    receiver = None;
    pending = [];
    open_ = true;
    on_close = None;
  }

let create engine ?(latency = Rf_sim.Vtime.span_ms 1) ?(name = "chan") ?entity
    () =
  let a = make engine latency entity (name ^ ".a") in
  let b = make engine latency entity (name ^ ".b") in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let deliver ep bytes =
  if ep.open_ then begin
    match ep.receiver with
    | Some f -> f bytes
    | None -> ep.pending <- bytes :: ep.pending
  end

let send ep bytes =
  match ep.peer with
  | Some peer when ep.open_ && peer.open_ ->
      ignore
        (Rf_sim.Engine.schedule ?entity:ep.entity ep.engine ep.latency
           (fun () -> deliver peer bytes))
  | Some _ | None -> ()

let set_receiver ep f =
  ep.receiver <- Some f;
  let buffered = List.rev ep.pending in
  ep.pending <- [];
  List.iter f buffered

let do_close ep =
  if ep.open_ then begin
    ep.open_ <- false;
    match ep.on_close with Some f -> f () | None -> ()
  end

let close ep =
  if ep.open_ then begin
    ep.open_ <- false;
    (match ep.on_close with Some f -> f () | None -> ());
    match ep.peer with
    | Some peer ->
        ignore
          (Rf_sim.Engine.schedule ?entity:ep.entity ep.engine ep.latency
             (fun () -> do_close peer))
    | None -> ()
  end

let set_on_close ep f = ep.on_close <- Some f

let is_open ep = ep.open_

let name ep = ep.ep_name
