open Rf_packet
open Rf_routing

type pending_packet = { pp_ipv4 : Ipv4.t }

type flow_route = {
  fr_prefix : Ipv4_addr.Prefix.t;
  fr_port : int;
  fr_src_mac : Mac.t;
  fr_dst_mac : Mac.t;
}

type t = {
  engine : Rf_sim.Engine.t;
  dpid : int64;
  entity : Rf_obs.Profiler.entity;
  hostname : string;
  nics : Iface.t array;
  zebra : Zebra.t;
  mutable ospfd : Ospfd.t option;
  mutable ripd : Ripd.t option;
  mutable bgpd : Bgpd.t option;
  arp : (int * Ipv4_addr.t, Mac.t) Hashtbl.t;
  arp_confirmed : (int * Ipv4_addr.t, Rf_sim.Vtime.t) Hashtbl.t;
  arp_probing : (int * Ipv4_addr.t, int) Hashtbl.t;  (** probes left *)
  pending : (int * Ipv4_addr.t, pending_packet list ref) Hashtbl.t;
  configs : (string, string) Hashtbl.t;
  mutable ospf_enabled : string list;  (** NIC names already under OSPF *)
  mutable rip_enabled : string list;
  mutable last_flows : flow_route list;
  mutable on_flows_changed : unit -> unit;
  mutable flow_listeners : (unit -> unit) list;  (** extra observers *)
  mutable flows_dirty : bool;
  mutable slow_forwarded : int;
  m_slow_path : Rf_obs.Metrics.counter;
  m_flow_exports : Rf_obs.Metrics.counter;
}

let arp_retry = Rf_sim.Vtime.span_s 1.0

let max_arp_retries = 30

let dpid t = t.dpid

let entity t = t.entity

let hostname t = t.hostname

let n_ports t = Array.length t.nics

let nic t port =
  if port < 1 || port > Array.length t.nics then
    invalid_arg (Printf.sprintf "Vm.nic: port %d out of range" port);
  t.nics.(port - 1)

let nic_by_name t name =
  Array.find_opt (fun i -> String.equal (Iface.name i) name) t.nics

let zebra t = t.zebra

let rib t = Zebra.rib t.zebra

let ospfd t = t.ospfd

let ripd t = t.ripd

let bgpd t = t.bgpd

let config_file t name = Hashtbl.find_opt t.configs name

(* --- flow export --------------------------------------------------- *)

let compare_flow a b =
  match Ipv4_addr.Prefix.compare a.fr_prefix b.fr_prefix with
  | 0 -> Stdlib.compare (a.fr_port, a.fr_src_mac, a.fr_dst_mac) (b.fr_port, b.fr_src_mac, b.fr_dst_mac)
  | c -> c

let port_of_iface_name t name =
  let result = ref None in
  Array.iteri
    (fun i ifc -> if String.equal (Iface.name ifc) name then result := Some (i + 1))
    t.nics;
  !result

let send_arp_request t port target =
  let ifc = nic t port in
  if Iface.is_addressed ifc then
    Iface.send ifc
      (Packet.arp ~src:(Iface.mac ifc) ~dst:Mac.broadcast
         (Arp.request ~sender_mac:(Iface.mac ifc) ~sender_ip:(Iface.ip ifc)
            ~target_ip:target))

(* Resolve a route to (output port, next-hop address). Routes without
   an interface (statics) resolve recursively through the connected
   route covering their next hop, as zebra does. *)
let resolve_route t (r : Rib.route) =
  match r.Rib.r_next_hop with
  | None -> Option.map (fun p -> (p, None)) (port_of_iface_name t r.Rib.r_iface)
  | Some nh -> (
      if not (String.equal r.Rib.r_iface "") then
        Option.map (fun p -> (p, Some nh)) (port_of_iface_name t r.Rib.r_iface)
      else
        match Rib.lookup (rib t) nh with
        | Some { Rib.r_proto = Rib.Connected; r_iface; _ } ->
            Option.map (fun p -> (p, Some nh)) (port_of_iface_name t r_iface)
        | Some _ | None -> None)

let compute_flows t =
  let flows = ref [] in
  let add fr = flows := fr :: !flows in
  List.iter
    (fun (r : Rib.route) ->
      match r.r_proto with
      | Rib.Connected -> (
          match port_of_iface_name t r.r_iface with
          | None -> ()
          | Some port ->
              let ifc = nic t port in
              Hashtbl.iter
                (fun (p, ip) mac ->
                  if
                    p = port
                    && Ipv4_addr.Prefix.mem ip r.r_prefix
                    && not (Ipv4_addr.equal ip (Iface.ip ifc))
                  then
                    add
                      {
                        fr_prefix = Ipv4_addr.Prefix.make ip 32;
                        fr_port = port;
                        fr_src_mac = Iface.mac ifc;
                        fr_dst_mac = mac;
                      })
                t.arp)
      | Rib.Static | Rib.Ospf | Rib.Rip | Rib.Bgp -> (
          match resolve_route t r with
          | Some (port, Some nh) -> (
              match Hashtbl.find_opt t.arp (port, nh) with
              | Some mac ->
                  add
                    {
                      fr_prefix = r.r_prefix;
                      fr_port = port;
                      fr_src_mac = Iface.mac (nic t port);
                      fr_dst_mac = mac;
                    }
              | None ->
                  (* Resolve the next hop over the virtual link; the
                     export re-runs when the reply is learned. *)
                  send_arp_request t port nh)
          | Some (_, None) | None -> ()))
    (Rib.selected (rib t));
  List.sort_uniq compare_flow !flows

let refresh_flows t =
  if not t.flows_dirty then begin
    t.flows_dirty <- true;
    (* Debounce: RIB replacement fires one event per route. *)
    ignore
      (Rf_sim.Engine.schedule ~entity:t.entity t.engine
         (Rf_sim.Vtime.span_ms 10) (fun () ->
           t.flows_dirty <- false;
           let flows = compute_flows t in
           if flows <> t.last_flows then begin
             t.last_flows <- flows;
             Rf_obs.Metrics.incr t.m_flow_exports;
             t.on_flows_changed ();
             List.iter (fun f -> f ()) (List.rev t.flow_listeners)
           end))
  end

let flow_routes t = t.last_flows

let set_on_flows_changed t f = t.on_flows_changed <- f

let add_on_flows_changed t f = t.flow_listeners <- f :: t.flow_listeners

(* --- data plane ----------------------------------------------------- *)

let my_addresses t =
  Array.to_list t.nics
  |> List.filter_map (fun ifc ->
         if Iface.is_addressed ifc then Some (Iface.ip ifc) else None)

let learn t port ip mac =
  if not (Ipv4_addr.equal ip Ipv4_addr.any) then begin
    let key = (port, ip) in
    let known = Hashtbl.find_opt t.arp key in
    Hashtbl.replace t.arp_confirmed key (Rf_sim.Engine.now t.engine);
    Hashtbl.remove t.arp_probing key;
    if known <> Some mac then begin
      Hashtbl.replace t.arp key mac;
      refresh_flows t
    end;
    match Hashtbl.find_opt t.pending key with
    | Some queue ->
        Hashtbl.remove t.pending key;
        let ifc = nic t port in
        List.iter
          (fun pp ->
            t.slow_forwarded <- t.slow_forwarded + 1;
            Rf_obs.Metrics.incr t.m_slow_path;
            Iface.send ifc
              (Packet.ipv4 ~src_mac:(Iface.mac ifc) ~dst_mac:mac pp.pp_ipv4))
          (List.rev !queue)
    | None -> ()
  end

let rec arp_retry_tick t key retries =
  if Hashtbl.mem t.pending key then begin
    let port, target = key in
    if retries <= 0 then Hashtbl.remove t.pending key
    else begin
      send_arp_request t port target;
      ignore
        (Rf_sim.Engine.schedule ~entity:t.entity t.engine arp_retry (fun () ->
             arp_retry_tick t key (retries - 1)))
    end
  end

let enqueue_pending t port next_hop ipv4 =
  let key = (port, next_hop) in
  match Hashtbl.find_opt t.pending key with
  | Some queue -> queue := { pp_ipv4 = ipv4 } :: !queue
  | None ->
      Hashtbl.replace t.pending key (ref [ { pp_ipv4 = ipv4 } ]);
      send_arp_request t port next_hop;
      ignore
        (Rf_sim.Engine.schedule ~entity:t.entity t.engine arp_retry (fun () ->
             arp_retry_tick t key max_arp_retries))

let forward_ipv4 t (ip : Ipv4.t) =
  match Ipv4.decrement_ttl ip with
  | None -> ()
  | Some ip -> (
      match Rib.lookup (rib t) ip.dst with
      | None -> ()
      | Some route -> (
          match resolve_route t route with
          | None -> ()
          | Some (port, nh) -> (
              let next_hop = match nh with Some nh -> nh | None -> ip.dst in
              let ifc = nic t port in
              match Hashtbl.find_opt t.arp (port, next_hop) with
              | Some mac ->
                  t.slow_forwarded <- t.slow_forwarded + 1;
                  Rf_obs.Metrics.incr t.m_slow_path;
                  Iface.send ifc
                    (Packet.ipv4 ~src_mac:(Iface.mac ifc) ~dst_mac:mac ip)
              | None -> enqueue_pending t port next_hop ip)))

let handle_frame t port frame =
  let ifc = nic t port in
  match Packet.parse frame with
  | Error _ -> ()
  | Ok pkt -> (
      match pkt.l3 with
      | Packet.Arp a ->
          if Iface.is_addressed ifc && Ipv4_addr.Prefix.mem a.sender_ip (Iface.prefix ifc)
          then learn t port a.sender_ip a.sender_mac;
          (match a.op with
          | Arp.Request
            when Iface.is_addressed ifc && Ipv4_addr.equal a.target_ip (Iface.ip ifc)
            ->
              Iface.send ifc
                (Packet.arp ~src:(Iface.mac ifc) ~dst:a.sender_mac
                   (Arp.reply ~sender_mac:(Iface.mac ifc)
                      ~sender_ip:(Iface.ip ifc) ~target_mac:a.sender_mac
                      ~target_ip:a.sender_ip))
          | Arp.Request | Arp.Reply -> ())
      | Packet.Ipv4 (ip, l4) ->
          (* Passive neighbour learning from any on-subnet source. *)
          if Iface.is_addressed ifc && Ipv4_addr.Prefix.mem ip.src (Iface.prefix ifc)
          then learn t port ip.src pkt.eth.src;
          if List.exists (Ipv4_addr.equal ip.dst) (my_addresses t) then begin
            (* Local delivery: the guest answers pings; OSPF packets are
               consumed by ospfd's own receiver. *)
            match l4 with
            | Packet.Icmp (Icmp.Echo_request { ident; seq; payload }) ->
                Iface.send ifc
                  (Packet.icmp ~src_mac:(Iface.mac ifc) ~dst_mac:pkt.eth.src
                     ~src_ip:ip.dst ~dst_ip:ip.src
                     (Icmp.Echo_reply { ident; seq; payload }))
            | Packet.Icmp _ | Packet.Udp _ | Packet.Tcp _ | Packet.Ospf _
            | Packet.Raw_l4 _ ->
                ()
          end
          else if Ipv4_addr.is_multicast ip.dst then ()
          else if Mac.equal pkt.eth.dst (Iface.mac ifc) || Mac.is_broadcast pkt.eth.dst
          then forward_ipv4 t ip
      | Packet.Lldp _ | Packet.Raw_l3 _ -> ())

let create engine ~dpid ~n_ports () =
  if n_ports < 1 then invalid_arg "Vm.create: need at least one port";
  let hostname = Printf.sprintf "vm-%Ld" dpid in
  let nics =
    Array.init n_ports (fun i ->
        Iface.create
          ~name:(Printf.sprintf "eth%d" (i + 1))
          ~mac:(Mac.make_local ((0x2 lsl 40) lor (Int64.to_int dpid lsl 12) lor (i + 1)))
          ())
  in
  let t =
    {
      engine;
      dpid;
      entity = Rf_obs.Profiler.switch dpid;
      hostname;
      nics;
      zebra = Zebra.create ~hostname ();
      ospfd = None;
      ripd = None;
      bgpd = None;
      arp = Hashtbl.create 32;
      arp_confirmed = Hashtbl.create 32;
      arp_probing = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      configs = Hashtbl.create 4;
      ospf_enabled = [];
      rip_enabled = [];
      last_flows = [];
      on_flows_changed = (fun () -> ());
      flow_listeners = [];
      flows_dirty = false;
      slow_forwarded = 0;
      m_slow_path =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"Packets forwarded by the VM slow path" "vm_slow_path_total";
      m_flow_exports =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"Flow-table exports pushed to the datapath"
          "vm_flow_exports_total";
    }
  in
  Array.iteri
    (fun i ifc ->
      Zebra.add_interface t.zebra ifc;
      Iface.add_receiver ifc (handle_frame t (i + 1)))
    nics;
  Rib.add_listener (rib t) (fun _ -> refresh_flows t);
  (* Neighbour aging, Linux-style: entries unconfirmed for 300 s are
     probed (3 unicast-equivalent ARP requests); only unanswered probes
     remove the entry, so healthy next hops never cause flow churn. *)
  let reachable = Rf_sim.Vtime.span_s 300.0 in
  ignore
    (Rf_sim.Engine.periodic ~entity:t.entity engine (Rf_sim.Vtime.span_s 30.0)
       (fun () ->
         let now = Rf_sim.Engine.now engine in
         Hashtbl.iter
           (fun key mac ->
             ignore mac;
             let confirmed =
               Option.value
                 (Hashtbl.find_opt t.arp_confirmed key)
                 ~default:Rf_sim.Vtime.zero
             in
             if Rf_sim.Vtime.(add confirmed reachable < now) then begin
               let port, target = key in
               match Hashtbl.find_opt t.arp_probing key with
               | None ->
                   Hashtbl.replace t.arp_probing key 3;
                   send_arp_request t port target
               | Some 0 ->
                   Hashtbl.remove t.arp_probing key;
                   Hashtbl.remove t.arp key;
                   Hashtbl.remove t.arp_confirmed key;
                   refresh_flows t
               | Some n ->
                   Hashtbl.replace t.arp_probing key (n - 1);
                   send_arp_request t port target
             end)
           (Hashtbl.copy t.arp)));
  t

(* --- configuration -------------------------------------------------- *)

(* Re-applying the exact text already in force is a no-op, so the
   reconciliation pass after a controller restart can blindly push the
   full desired state without restarting daemons or re-adding routes. *)
let already_applied t file text =
  match Hashtbl.find_opt t.configs file with
  | Some current -> String.equal current text
  | None -> false

let apply_zebra_config t text =
  if already_applied t "zebra.conf" text then Ok ()
  else
  match Quagga_conf.parse_zebra text with
  | Error e -> Error e
  | Ok conf ->
      let apply_iface (ic : Quagga_conf.iface_conf) =
        match nic_by_name t ic.ic_name with
        | None -> Error (Printf.sprintf "vm %s: no NIC %s" t.hostname ic.ic_name)
        | Some ifc ->
            Iface.set_address ifc ~ip:ic.ic_ip ~prefix_len:ic.ic_prefix_len;
            Ok ()
      in
      let rec apply_all = function
        | [] -> Ok ()
        | ic :: rest -> (
            match apply_iface ic with Ok () -> apply_all rest | Error e -> Error e)
      in
      (match apply_all conf.z_ifaces with
      | Error e -> Error e
      | Ok () ->
          List.iter
            (fun (s : Quagga_conf.static_route) ->
              Zebra.add_static t.zebra s.sr_prefix s.sr_next_hop)
            conf.z_statics;
          Hashtbl.replace t.configs "zebra.conf" text;
          Ok ())

let ospf_covers (conf : Quagga_conf.ospfd_conf) ifc =
  List.exists
    (fun (prefix, _area) ->
      Iface.is_addressed ifc && Ipv4_addr.Prefix.subset (Iface.prefix ifc) prefix)
    conf.o_networks

let apply_ospfd_config t text =
  if already_applied t "ospfd.conf" text then Ok ()
  else
  match Quagga_conf.parse_ospfd text with
  | Error e -> Error e
  | Ok conf ->
      let daemon =
        match t.ospfd with
        | Some d -> d
        | None ->
            let cfg =
              {
                (Ospfd.default_config ~router_id:conf.o_router_id) with
                Ospfd.hello_interval = conf.o_hello_interval;
                dead_interval = conf.o_dead_interval;
              }
            in
            let d = Ospfd.create t.engine ~entity:t.entity cfg (rib t) in
            t.ospfd <- Some d;
            d
      in
      (* Enable OSPF on every addressed NIC covered by a network
         statement and not yet enabled. *)
      Array.iter
        (fun ifc ->
          if ospf_covers conf ifc && not (List.mem (Iface.name ifc) t.ospf_enabled)
          then begin
            let passive = List.mem (Iface.name ifc) conf.o_passive in
            Ospfd.add_interface daemon ~passive ifc;
            t.ospf_enabled <- Iface.name ifc :: t.ospf_enabled
          end)
        t.nics;
      Ospfd.start daemon;
      Hashtbl.replace t.configs "ospfd.conf" text;
      Ok ()

let rip_covers (conf : Quagga_conf.ripd_conf) ifc =
  List.exists
    (fun prefix ->
      Iface.is_addressed ifc && Ipv4_addr.Prefix.subset (Iface.prefix ifc) prefix)
    conf.r_networks

let apply_ripd_config t text =
  if already_applied t "ripd.conf" text then Ok ()
  else
  match Quagga_conf.parse_ripd text with
  | Error e -> Error e
  | Ok conf ->
      let daemon =
        match t.ripd with
        | Some d -> d
        | None ->
            let cfg =
              {
                Ripd.update_interval = float_of_int conf.r_update;
                timeout = float_of_int conf.r_timeout;
                garbage = float_of_int conf.r_garbage;
              }
            in
            let d = Ripd.create t.engine ~entity:t.entity ~config:cfg (rib t) in
            t.ripd <- Some d;
            d
      in
      Array.iter
        (fun ifc ->
          if rip_covers conf ifc && not (List.mem (Iface.name ifc) t.rip_enabled)
          then begin
            let passive = List.mem (Iface.name ifc) conf.r_passive in
            Ripd.add_interface daemon ~passive ifc;
            t.rip_enabled <- Iface.name ifc :: t.rip_enabled
          end)
        t.nics;
      Ripd.start daemon;
      Hashtbl.replace t.configs "ripd.conf" text;
      Ok ()

let apply_bgpd_config t ~peer_channel text =
  match Quagga_conf.parse_bgpd text with
  | Error e -> Error e
  | Ok conf ->
      let daemon =
        match t.bgpd with
        | Some d -> d
        | None ->
            let d =
              Bgpd.create t.engine ~entity:t.entity ~asn:conf.b_asn
                ~router_id:conf.b_router_id
                (rib t)
            in
            t.bgpd <- Some d;
            d
      in
      List.iter (fun p -> Bgpd.announce daemon p) conf.b_networks;
      List.iter
        (fun (addr, remote_asn) ->
          match peer_channel addr with
          | None -> ()
          | Some (send, set_receive) ->
              (* Our address on the shared link is the NIC that owns the
                 neighbour's subnet. *)
              let hint =
                Array.fold_left
                  (fun acc ifc ->
                    if
                      Iface.is_addressed ifc
                      && Ipv4_addr.Prefix.mem addr (Iface.prefix ifc)
                    then Some (Iface.ip ifc)
                    else acc)
                  None t.nics
              in
              let hint = Option.value hint ~default:conf.b_router_id in
              let peer =
                Bgpd.add_peer daemon ~remote_asn ~next_hop_hint:hint ~send
              in
              set_receive (fun bytes -> Bgpd.input peer bytes);
              Bgpd.start_peer peer)
        conf.b_neighbors;
      Hashtbl.replace t.configs "bgpd.conf" text;
      Ok ()

let arp_entries t =
  Hashtbl.fold (fun (port, ip) mac acc -> (port, ip, mac) :: acc) t.arp []
  |> List.sort compare

let packets_forwarded_slow_path t = t.slow_forwarded

let pp_flow_route ppf fr =
  Format.fprintf ppf "%a -> port %d (%a -> %a)" Ipv4_addr.Prefix.pp fr.fr_prefix
    fr.fr_port Mac.pp fr.fr_src_mac Mac.pp fr.fr_dst_mac
