open Rf_routing

type t = {
  engine : Rf_sim.Engine.t;
  virtual_latency : Rf_sim.Vtime.span;
  vms : (int64, Vm.t) Hashtbl.t;
  vlinks : (int64 * int, int64 * int) Hashtbl.t;  (** both directions *)
  mutable physical_out : (dpid:int64 -> port:int -> string -> unit) option;
  mutable virtual_frames : int;
  mutable physical_frames : int;
}

let create engine ?(virtual_latency = Rf_sim.Vtime.span_ms 1) () =
  {
    engine;
    virtual_latency;
    vms = Hashtbl.create 64;
    vlinks = Hashtbl.create 64;
    physical_out = None;
    virtual_frames = 0;
    physical_frames = 0;
  }

let deliver_to t (dpid, port) frame =
  match Hashtbl.find_opt t.vms dpid with
  | Some vm when port >= 1 && port <= Vm.n_ports vm ->
      Iface.deliver (Vm.nic vm port) frame
  | Some _ | None -> ()

let transmit_from t key frame =
  match Hashtbl.find_opt t.vlinks key with
  | Some peer ->
      t.virtual_frames <- t.virtual_frames + 1;
      let entity =
        match Hashtbl.find_opt t.vms (fst peer) with
        | Some vm -> Some (Vm.entity vm)
        | None -> None
      in
      ignore
        (Rf_sim.Engine.schedule ?entity t.engine t.virtual_latency (fun () ->
             deliver_to t peer frame))
  | None -> (
      match t.physical_out with
      | Some out ->
          t.physical_frames <- t.physical_frames + 1;
          let dpid, port = key in
          out ~dpid ~port frame
      | None -> ())

let register_vm t vm =
  let dpid = Vm.dpid vm in
  Hashtbl.replace t.vms dpid vm;
  for port = 1 to Vm.n_ports vm do
    Iface.set_transmit (Vm.nic vm port) (fun frame ->
        transmit_from t (dpid, port) frame)
  done

let connect_ports t ~a ~b =
  Hashtbl.replace t.vlinks a b;
  Hashtbl.replace t.vlinks b a

let disconnect_ports t ~a ~b =
  (match Hashtbl.find_opt t.vlinks a with
  | Some peer when peer = b -> Hashtbl.remove t.vlinks a
  | Some _ | None -> ());
  match Hashtbl.find_opt t.vlinks b with
  | Some peer when peer = a -> Hashtbl.remove t.vlinks b
  | Some _ | None -> ()

let set_physical_out t f = t.physical_out <- Some f

let inject_from_physical t ~dpid ~port frame = deliver_to t (dpid, port) frame

let has_virtual_link t key = Hashtbl.mem t.vlinks key

let virtual_frames t = t.virtual_frames

let physical_out_frames t = t.physical_frames
