open Rf_packet
open Rf_openflow
module Of_conn = Rf_controller.Of_conn

type sw = { conn : Of_conn.t; mutable installed : Vm.flow_route list }

type t = {
  engine : Rf_sim.Engine.t;
  vs : Rf_vs.t;
  switches : (int64, sw) Hashtbl.t;
  mutable master : bool;
  mutable reassignments : int;
  mutable flow_mods : int;
  mutable pkt_in : int;
  mutable pkt_out : int;
}

let priority_of_prefix_len len = 0x4000 + (len * 64)

let match_of_route (fr : Vm.flow_route) =
  Of_match.nw_dst_prefix fr.Vm.fr_prefix

let create engine vs =
  let t =
    {
      engine;
      vs;
      switches = Hashtbl.create 64;
      master = true;
      reassignments = 0;
      flow_mods = 0;
      pkt_in = 0;
      pkt_out = 0;
    }
  in
  Rf_vs.set_physical_out vs (fun ~dpid ~port frame ->
      match Hashtbl.find_opt t.switches dpid with
      | Some sw when Of_conn.is_open sw.conn ->
          t.pkt_out <- t.pkt_out + 1;
          Of_conn.packet_out sw.conn ~actions:[ Of_action.output port ] frame
      | Some _ | None -> ());
  t

let attach t ~dpid:_ endpoint =
  let conn = Of_conn.create t.engine endpoint in
  if not t.master then Of_conn.set_role conn Of_conn.Slave;
  Of_conn.set_on_handshake conn (fun features ->
      let dpid = features.Of_msg.datapath_id in
      Hashtbl.replace t.switches dpid { conn; installed = [] };
      Of_conn.set_on_close conn (fun () -> Hashtbl.remove t.switches dpid);
      (* Full frames in packet-ins: the VM needs whole packets for its
         slow path, not 128-byte heads plus buffer ids. *)
      ignore
        (Of_conn.send conn
           (Of_msg.Set_config { flags = 0; miss_send_len = 0xffff })));
  Of_conn.set_on_message conn (fun (m : Of_msg.t) ->
      match m.payload with
      | Of_msg.Packet_in pi -> (
          match Of_conn.dpid conn with
          | Some dpid ->
              (* LLDP belongs to the topology slice; FlowVisor already
                 filters, but be defensive. *)
              let is_lldp =
                String.length pi.pi_data >= 14
                && (Char.code pi.pi_data.[12] lsl 8) lor Char.code pi.pi_data.[13]
                   = Ethernet.ethertype_lldp
              in
              if not is_lldp then begin
                t.pkt_in <- t.pkt_in + 1;
                Rf_vs.inject_from_physical t.vs ~dpid ~port:pi.pi_in_port
                  pi.pi_data
              end
          | None -> ())
      | Of_msg.Error _ | Of_msg.Flow_removed _ | Of_msg.Port_status _
      | Of_msg.Stats_reply _ | Of_msg.Barrier_reply | Of_msg.Hello
      | Of_msg.Echo_request _ | Of_msg.Echo_reply _ | Of_msg.Vendor _
      | Of_msg.Features_request | Of_msg.Features_reply _
      | Of_msg.Get_config_request | Of_msg.Get_config_reply _
      | Of_msg.Set_config _ | Of_msg.Packet_out _ | Of_msg.Flow_mod _
      | Of_msg.Port_mod _ | Of_msg.Stats_request _ | Of_msg.Barrier_request ->
          ())

let is_connected t dpid = Hashtbl.mem t.switches dpid

let connected_switches t =
  Hashtbl.fold (fun d _ acc -> d :: acc) t.switches [] |> List.sort Int64.compare

let flow_mod_of_route ~add (fr : Vm.flow_route) =
  let priority =
    priority_of_prefix_len (Ipv4_addr.Prefix.length fr.Vm.fr_prefix)
  in
  if add then
    Of_msg.flow_add ~priority (match_of_route fr)
      [
        Of_action.Set_dl_src fr.Vm.fr_src_mac;
        Of_action.Set_dl_dst fr.Vm.fr_dst_mac;
        Of_action.output fr.Vm.fr_port;
      ]
  else Of_msg.flow_delete ~strict:true ~priority (match_of_route fr)

let sync_flows t ~dpid flows =
  match Hashtbl.find_opt t.switches dpid with
  | None -> ()
  | Some sw ->
      let stale =
        List.filter (fun f -> not (List.mem f flows)) sw.installed
      in
      let fresh =
        List.filter (fun f -> not (List.mem f sw.installed)) flows
      in
      List.iter
        (fun f ->
          t.flow_mods <- t.flow_mods + 1;
          Of_conn.flow_mod sw.conn (flow_mod_of_route ~add:false f))
        stale;
      List.iter
        (fun f ->
          t.flow_mods <- t.flow_mods + 1;
          Of_conn.flow_mod sw.conn (flow_mod_of_route ~add:true f))
        fresh;
      sw.installed <- flows

(* Failover reassignment: flip every switch session's OpenFlow role.
   On promotion, re-send the flows we believe installed — a flow_add
   with the same match and priority replaces in place, so re-applying
   over whatever the switch already holds is idempotent; any mods the
   slave suppressed while standing by are thereby made good. *)
let set_master t master =
  if t.master <> master then begin
    t.master <- master;
    let role = if master then Of_conn.Master else Of_conn.Slave in
    Hashtbl.iter
      (fun dpid sw ->
        t.reassignments <- t.reassignments + 1;
        Of_conn.set_role sw.conn role;
        Rf_sim.Engine.record t.engine ~component:"rf-controller"
          ~event:"role-reassign"
          (Printf.sprintf "sw%Ld -> %s" dpid
             (if master then "master" else "slave"));
        if master then
          List.iter
            (fun f ->
              t.flow_mods <- t.flow_mods + 1;
              Of_conn.flow_mod sw.conn (flow_mod_of_route ~add:true f))
            sw.installed)
      t.switches
  end

let is_master t = t.master

let reassignments t = t.reassignments

let installed_flows t dpid =
  match Hashtbl.find_opt t.switches dpid with
  | Some sw -> sw.installed
  | None -> []

let flow_mods_sent t = t.flow_mods

let packet_ins_relayed t = t.pkt_in

let packet_outs_sent t = t.pkt_out
