(** The RouteFlow server: VM lifecycle, switch↔VM and port↔NIC
    mappings, config-file generation, and the RF-client→controller flow
    path.

    This module exposes exactly the operations the paper's RPC server
    performs on reception of configuration messages: create a VM for a
    new switch, assign interface addresses for a new link, and write
    the routing configuration files. *)

open Rf_packet

type protocol = Proto_ospf | Proto_rip
(** Which routing control platform the VMs run — the framework itself
    is protocol-agnostic, it only writes different config files. *)

type params = {
  vm_boot_time : Rf_sim.Vtime.span;
      (** cloning + booting one VM image (LXC in RouteFlow) *)
  parallel_boot : int;
      (** concurrent VM creations; 1 = the serialized behaviour of the
          paper-era RouteFlow, larger values are the ablation knob *)
  config_apply_delay : Rf_sim.Vtime.span;
      (** writing config files and (re)starting daemons *)
  routing_protocol : protocol;
}

val default_params : params
(** 8 s boot, serialized, 200 ms config apply, OSPF (the paper's
    protocol). *)

type t

val create : Rf_sim.Engine.t -> Rf_controller_app.t -> Rf_vs.t -> params -> t

val router_id_of : int64 -> Ipv4_addr.t
(** Deterministic router id for a datapath: 10.255.hi.lo. *)

(** {1 Configuration operations (called by the RPC server)} *)

val switch_up : t -> dpid:int64 -> n_ports:int -> unit
(** Queues creation of the switch's VM. Idempotent per dpid. *)

val switch_down : t -> dpid:int64 -> unit

val link_config :
  t ->
  a:int64 * int * Ipv4_addr.t * int ->
  b:int64 * int * Ipv4_addr.t * int ->
  unit
(** [(dpid, port, ip, prefix_len)] for each side of a discovered link:
    records the NIC addresses, regenerates both VMs' config files, and
    mirrors the link in the virtual switch. *)

val link_down : t -> a:int64 * int -> b:int64 * int -> unit
(** Mirrors a physical link failure into the virtual environment:
    disconnects the virtual link and downs both VM NICs so the routing
    protocol reconverges immediately (the link's addresses are kept for
    its return). *)

val link_up_again : t -> a:int64 * int -> b:int64 * int -> unit
(** The reverse of [link_down] for a recovered link whose addresses are
    already configured. *)

val edge_config :
  t -> dpid:int64 -> port:int -> gateway:Ipv4_addr.t -> prefix_len:int -> unit
(** A host-facing port: the VM NIC gets the subnet's gateway address
    and the interface is OSPF-passive. *)

(** {1 Reconciliation}

    Used by the snapshot handler after a controller restart: the
    topology controller's [Sync_snapshot] is the authoritative desired
    state, and these let the RF-controller compute and apply only the
    delta. *)

val switches_known : t -> int64 list
(** Datapaths with live state (booting or configured), sorted. *)

val prune_vlinks : t -> keep:((int64 * int) * (int64 * int)) list -> unit
(** Disconnects and forgets virtual links absent from [keep] (either
    endpoint order matches). *)

(** {1 State} *)

val vm : t -> int64 -> Vm.t option

val vms : t -> (int64 * Vm.t) list

val is_configured : t -> int64 -> bool
(** Paper semantics: the switch has a corresponding VM. *)

val configured_count : t -> int

val set_on_vm_ready : t -> (int64 -> unit) -> unit

val set_mutation_guard : t -> (unit -> bool) -> unit
(** Installed by clustered deployments: every configuration mutation
    ({!switch_up}, {!switch_down}, {!link_config}, {!link_down},
    {!link_up_again}, {!edge_config}, {!prune_vlinks}) first consults
    the guard and is dropped (and counted) when it returns [false].
    Default: always allow. This is the fence that keeps a deposed
    leader from mutating state the new leader owns. *)

val mutations_rejected : t -> int
(** Configuration mutations dropped by the guard. *)

(** {1 Fault injection} *)

val arm_boot_failures : t -> dpid:int64 -> failures:int -> unit
(** The next [failures] VM clone attempts for [dpid] fail at the end of
    their boot time; each failure re-enqueues the switch at the back of
    the boot queue (the server retries until a clone succeeds), so a
    switch with a finite failure count still becomes configured. *)

val boot_failures_injected : t -> int
(** Total clone failures that have fired. *)

val vms_created : t -> int

val boot_queue_length : t -> int
