open Rf_packet
open Rf_routing

type protocol = Proto_ospf | Proto_rip

type params = {
  vm_boot_time : Rf_sim.Vtime.span;
  parallel_boot : int;
  config_apply_delay : Rf_sim.Vtime.span;
  routing_protocol : protocol;
}

let default_params =
  {
    vm_boot_time = Rf_sim.Vtime.span_s 8.0;
    parallel_boot = 1;
    config_apply_delay = Rf_sim.Vtime.span_ms 200;
    routing_protocol = Proto_ospf;
  }

type nic_role = P2p | Edge

type nic_desired = { nd_ip : Ipv4_addr.t; nd_len : int; nd_role : nic_role }

type sw_state = {
  ss_dpid : int64;
  ss_entity : Rf_obs.Profiler.entity;
  ss_ports : int;
  mutable ss_vm : Vm.t option;
  ss_nics : (int, nic_desired) Hashtbl.t;
  mutable ss_dirty : bool;  (** config regeneration scheduled *)
}

type t = {
  engine : Rf_sim.Engine.t;
  app : Rf_controller_app.t;
  vs : Rf_vs.t;
  params : params;
  switches : (int64, sw_state) Hashtbl.t;
  mutable vlinks : ((int64 * int) * (int64 * int)) list;
  mutable boot_queue : sw_state list;  (** FIFO, head = oldest *)
  mutable booting : int;
  mutable created : int;
  mutable on_vm_ready : int64 -> unit;
  boot_faults : (int64, int ref) Hashtbl.t;
      (** armed clone failures remaining, per dpid *)
  mutable boot_failures : int;
  mutable mutation_guard : unit -> bool;
      (** consulted before every configuration mutation; in clustered
          deployments only the committed-entry apply path may pass *)
  mutable mutations_rejected : int;
  m_boots : Rf_obs.Metrics.counter;
  m_boot_failures : Rf_obs.Metrics.counter;
  m_provision : Rf_obs.Metrics.histogram;
}

let tracer t = Rf_sim.Engine.tracer t.engine

let span_key prefix dpid = Printf.sprintf "%s:%Ld" prefix dpid

let create engine app vs params =
  if params.parallel_boot < 1 then invalid_arg "Rf_system: parallel_boot >= 1";
  {
    engine;
    app;
    vs;
    params;
    switches = Hashtbl.create 64;
    vlinks = [];
    boot_queue = [];
    booting = 0;
    created = 0;
    on_vm_ready = (fun _ -> ());
    boot_faults = Hashtbl.create 4;
    boot_failures = 0;
    mutation_guard = (fun () -> true);
    mutations_rejected = 0;
    m_boots =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"VM clone+boot attempts started" "vm_boots_total";
    m_boot_failures =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"VM clone failures injected" "vm_boot_failures_total";
    m_provision =
      Rf_obs.Metrics.histogram
        (Rf_sim.Engine.metrics engine)
        ~help:"Switch_up delivery to VM ready (queue wait + boots)"
        "vm_provision_seconds";
  }

let router_id_of dpid =
  let d = Int64.to_int dpid in
  Ipv4_addr.of_octets 10 255 ((d lsr 8) land 0xff) (d land 0xff)

(* --- config generation -------------------------------------------- *)

let generate_configs t ss =
  let nics =
    Hashtbl.fold (fun port nd acc -> (port, nd) :: acc) ss.ss_nics []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let zebra =
    Quagga_conf.generate_zebra
      {
        Quagga_conf.z_hostname = Printf.sprintf "vm-%Ld" ss.ss_dpid;
        z_password = "rfauto";
        z_ifaces =
          List.map
            (fun (port, nd) ->
              {
                Quagga_conf.ic_name = Printf.sprintf "eth%d" port;
                ic_ip = nd.nd_ip;
                ic_prefix_len = nd.nd_len;
              })
            nics;
        z_statics = [];
      }
  in
  let passive =
    List.filter_map
      (fun (port, nd) ->
        match nd.nd_role with
        | Edge -> Some (Printf.sprintf "eth%d" port)
        | P2p -> None)
      nics
  in
  let routing =
    match t.params.routing_protocol with
    | Proto_ospf ->
        ( "ospfd.conf",
          Quagga_conf.generate_ospfd
            {
              Quagga_conf.o_hostname = Printf.sprintf "vm-%Ld" ss.ss_dpid;
              o_router_id = router_id_of ss.ss_dpid;
              o_networks =
                List.map
                  (fun (_port, nd) ->
                    (Ipv4_addr.Prefix.make nd.nd_ip nd.nd_len, Ipv4_addr.any))
                  nics;
              o_passive = passive;
              o_hello_interval = 10;
              o_dead_interval = 40;
            } )
    | Proto_rip ->
        ( "ripd.conf",
          Quagga_conf.generate_ripd
            {
              Quagga_conf.r_hostname = Printf.sprintf "vm-%Ld" ss.ss_dpid;
              r_networks =
                List.map
                  (fun (_port, nd) -> Ipv4_addr.Prefix.make nd.nd_ip nd.nd_len)
                  nics;
              r_passive = passive;
              r_update = 30;
              r_timeout = 180;
              r_garbage = 120;
            } )
  in
  (zebra, routing)

(* --- reconciliation ------------------------------------------------ *)

let reconcile_vlinks t =
  List.iter
    (fun ((a_dpid, a_port), (b_dpid, b_port)) ->
      let nic_ready dpid port =
        match Hashtbl.find_opt t.switches dpid with
        | Some { ss_vm = Some vm; _ } when port >= 1 && port <= Vm.n_ports vm ->
            Iface.is_addressed (Vm.nic vm port)
        | Some _ | None -> false
      in
      if
        nic_ready a_dpid a_port && nic_ready b_dpid b_port
        && not (Rf_vs.has_virtual_link t.vs (a_dpid, a_port))
      then
        Rf_vs.connect_ports t.vs ~a:(a_dpid, a_port) ~b:(b_dpid, b_port))
    t.vlinks

let apply_configs t ss =
  match ss.ss_vm with
  | None -> ()
  | Some vm ->
      if Hashtbl.length ss.ss_nics > 0 then begin
        let zebra, (routing_file, routing_text) = generate_configs t ss in
        (match Vm.apply_zebra_config vm zebra with
        | Ok () -> ()
        | Error e ->
            Rf_sim.Engine.record t.engine ~component:"rf-server"
              ~event:"config-error" e);
        let apply_routing =
          match routing_file with
          | "ripd.conf" -> Vm.apply_ripd_config vm
          | _ -> Vm.apply_ospfd_config vm
        in
        (match apply_routing routing_text with
        | Ok () -> ()
        | Error e ->
            Rf_sim.Engine.record t.engine ~component:"rf-server"
              ~event:"config-error" e);
        Rf_sim.Engine.record t.engine ~component:"rf-server" ~event:"configured"
          (Printf.sprintf "vm-%Ld" ss.ss_dpid);
        (match
           Rf_obs.Tracer.take (tracer t) ~key:(span_key "quagga" ss.ss_dpid)
         with
        | Some span -> Rf_obs.Tracer.span_end (tracer t) span
        | None -> ());
        (match
           Rf_obs.Tracer.take (tracer t) ~key:(span_key "cfg" ss.ss_dpid)
         with
        | Some root -> Rf_obs.Tracer.span_end (tracer t) root
        | None -> ());
        reconcile_vlinks t
      end

let schedule_apply t ss =
  if not ss.ss_dirty then begin
    ss.ss_dirty <- true;
    ignore
      (Rf_sim.Engine.schedule ~entity:ss.ss_entity t.engine
         t.params.config_apply_delay (fun () ->
           ss.ss_dirty <- false;
           apply_configs t ss))
  end

(* --- VM boot queue -------------------------------------------------- *)

(* An armed clone failure consumes the whole boot time and then
   re-queues the switch: the retry policy of a server that notices the
   LXC clone died and tries again. *)
let boot_fails t ss =
  match Hashtbl.find_opt t.boot_faults ss.ss_dpid with
  | Some n when !n > 0 ->
      decr n;
      t.boot_failures <- t.boot_failures + 1;
      true
  | Some _ | None -> false

let rec start_boots t =
  match t.boot_queue with
  | [] -> ()
  | ss :: rest ->
      if t.booting < t.params.parallel_boot then begin
        t.boot_queue <- rest;
        t.booting <- t.booting + 1;
        Rf_obs.Metrics.incr t.m_boots;
        Rf_sim.Engine.record t.engine
          ?span:(Rf_obs.Tracer.correlated (tracer t)
                   ~key:(span_key "vm" ss.ss_dpid))
          ~component:"rf-server" ~event:"vm-boot-start"
          (Printf.sprintf "vm-%Ld" ss.ss_dpid);
        ignore
          (Rf_sim.Engine.schedule ~entity:ss.ss_entity t.engine
             t.params.vm_boot_time (fun () ->
               t.booting <- t.booting - 1;
               if boot_fails t ss then begin
                 Rf_obs.Metrics.incr t.m_boot_failures;
                 Rf_sim.Engine.record t.engine
                   ?span:(Rf_obs.Tracer.correlated (tracer t)
                            ~key:(span_key "vm" ss.ss_dpid))
                   ~component:"rf-server" ~event:"vm-boot-failed"
                   (Printf.sprintf "vm-%Ld" ss.ss_dpid);
                 (* Retry unless the switch went away while booting. *)
                 if Hashtbl.mem t.switches ss.ss_dpid then
                   t.boot_queue <- t.boot_queue @ [ ss ]
               end
               else finish_boot t ss;
               start_boots t));
        start_boots t
      end

and finish_boot t ss =
  let vm = Vm.create t.engine ~dpid:ss.ss_dpid ~n_ports:ss.ss_ports () in
  ss.ss_vm <- Some vm;
  t.created <- t.created + 1;
  Rf_vs.register_vm t.vs vm;
  Vm.set_on_flows_changed vm (fun () ->
      Rf_controller_app.sync_flows t.app ~dpid:ss.ss_dpid (Vm.flow_routes vm));
  (match Rf_obs.Tracer.take (tracer t) ~key:(span_key "vm" ss.ss_dpid) with
  | Some vm_span ->
      (match Rf_obs.Tracer.find_span (tracer t) vm_span with
      | Some sp ->
          Rf_obs.Metrics.observe t.m_provision
            (float_of_int
               (Rf_obs.Tracer.now_us (tracer t) - sp.Rf_obs.Tracer.start_us)
            /. 1e6)
      | None -> ());
      Rf_obs.Tracer.span_end (tracer t) vm_span
  | None -> ());
  (* The Quagga phase runs from VM ready to the first non-empty config
     application (zebra + routing daemon), which also completes the
     switch's configuration span. *)
  let parent =
    Rf_obs.Tracer.correlated (tracer t) ~key:(span_key "cfg" ss.ss_dpid)
  in
  let quagga = Rf_obs.Tracer.span_start (tracer t) ?parent "phase.quagga" in
  Rf_obs.Tracer.correlate (tracer t) ~key:(span_key "quagga" ss.ss_dpid) quagga;
  Rf_sim.Engine.record t.engine ~component:"rf-server" ~event:"vm-ready"
    (Printf.sprintf "vm-%Ld" ss.ss_dpid);
  t.on_vm_ready ss.ss_dpid;
  (* Any configuration that arrived while the VM was booting. *)
  schedule_apply t ss

(* Every configuration mutation funnels through the guard: a replica
   that lost leadership (but does not know yet) keeps calling these,
   and must not corrupt the state the new leader owns. *)
let permitted t op =
  t.mutation_guard ()
  ||
  (t.mutations_rejected <- t.mutations_rejected + 1;
   Rf_sim.Engine.record t.engine ~component:"rf-server"
     ~event:"mutation-rejected" op;
   false)

let switch_up t ~dpid ~n_ports =
  if permitted t "switch-up" && not (Hashtbl.mem t.switches dpid) then begin
    let ss =
      {
        ss_dpid = dpid;
        ss_entity = Rf_obs.Profiler.switch dpid;
        ss_ports = max 1 n_ports;
        ss_vm = None;
        ss_nics = Hashtbl.create 4;
        ss_dirty = false;
      }
    in
    Hashtbl.replace t.switches dpid ss;
    (* The VM phase covers the whole provisioning wait: time in the
       serialized boot queue plus the boots themselves (including
       failed clones). *)
    let parent =
      Rf_obs.Tracer.correlated (tracer t) ~key:(span_key "cfg" dpid)
    in
    let vm_span = Rf_obs.Tracer.span_start (tracer t) ?parent "phase.vm" in
    Rf_obs.Tracer.correlate (tracer t) ~key:(span_key "vm" dpid) vm_span;
    t.boot_queue <- t.boot_queue @ [ ss ];
    start_boots t
  end

let switch_down t ~dpid =
  match
    if permitted t "switch-down" then Hashtbl.find_opt t.switches dpid else None
  with
  | None -> ()
  | Some ss ->
      (match ss.ss_vm with
      | Some vm ->
          (match Vm.ospfd vm with Some d -> Ospfd.stop d | None -> ());
          (match Vm.ripd vm with Some d -> Ripd.stop d | None -> ());
          List.iter
            (fun ((a, b) as link) ->
              if fst a = dpid || fst b = dpid then begin
                Rf_vs.disconnect_ports t.vs ~a ~b;
                ignore link
              end)
            t.vlinks;
          t.vlinks <-
            List.filter
              (fun ((a, _), (b, _)) ->
                not (Int64.equal a dpid || Int64.equal b dpid))
              t.vlinks
      | None ->
          t.boot_queue <-
            List.filter (fun q -> not (Int64.equal q.ss_dpid dpid)) t.boot_queue);
      Hashtbl.remove t.switches dpid

let link_config t ~a:(a_dpid, a_port, a_ip, a_len) ~b:(b_dpid, b_port, b_ip, b_len)
    =
  if permitted t "link-config" then begin
  let record dpid port ip len =
    match Hashtbl.find_opt t.switches dpid with
    | None ->
        Rf_sim.Engine.record t.engine ~component:"rf-server" ~event:"link-unknown-switch"
          (Printf.sprintf "sw%Ld" dpid)
    | Some ss ->
        Hashtbl.replace ss.ss_nics port { nd_ip = ip; nd_len = len; nd_role = P2p };
        schedule_apply t ss
  in
  record a_dpid a_port a_ip a_len;
  record b_dpid b_port b_ip b_len;
  let link = ((a_dpid, a_port), (b_dpid, b_port)) in
  if not (List.mem link t.vlinks) then t.vlinks <- link :: t.vlinks
  end

let set_nic_state t (dpid, port) up =
  match Hashtbl.find_opt t.switches dpid with
  | Some { ss_vm = Some vm; _ } when port >= 1 && port <= Vm.n_ports vm ->
      Iface.set_up (Vm.nic vm port) up
  | Some _ | None -> ()

let link_down t ~a ~b =
  if permitted t "link-down" then begin
    Rf_vs.disconnect_ports t.vs ~a ~b;
    set_nic_state t a false;
    set_nic_state t b false
  end

let link_up_again t ~a ~b =
  if permitted t "link-up" then begin
    set_nic_state t a true;
    set_nic_state t b true;
    reconcile_vlinks t
  end

let edge_config t ~dpid ~port ~gateway ~prefix_len =
  match
    if permitted t "edge-config" then Hashtbl.find_opt t.switches dpid else None
  with
  | None -> ()
  | Some ss ->
      Hashtbl.replace ss.ss_nics port
        { nd_ip = gateway; nd_len = prefix_len; nd_role = Edge };
      schedule_apply t ss

(* --- reconciliation against a topology snapshot -------------------- *)

let switches_known t =
  Hashtbl.fold (fun dpid _ acc -> dpid :: acc) t.switches []
  |> List.sort Int64.compare

let prune_vlinks t ~keep =
  if permitted t "prune-vlinks" then begin
  let keeps link =
    let ((a, b) : (int64 * int) * (int64 * int)) = link in
    List.exists (fun (ka, kb) -> (ka = a && kb = b) || (ka = b && kb = a)) keep
  in
  let stale = List.filter (fun l -> not (keeps l)) t.vlinks in
  List.iter
    (fun (a, b) ->
      (* Same teardown as [link_down]: the NICs must go down too so the
         routing daemons withdraw the link's subnet. *)
      Rf_vs.disconnect_ports t.vs ~a ~b;
      set_nic_state t a false;
      set_nic_state t b false;
      Rf_sim.Engine.record t.engine ~component:"rf-server" ~event:"vlink-pruned"
        (Printf.sprintf "sw%Ld/%d <-> sw%Ld/%d" (fst a) (snd a) (fst b) (snd b)))
    stale;
  if stale <> [] then t.vlinks <- List.filter keeps t.vlinks
  end

let vm t dpid =
  match Hashtbl.find_opt t.switches dpid with
  | Some ss -> ss.ss_vm
  | None -> None

let vms t =
  Hashtbl.fold
    (fun dpid ss acc ->
      match ss.ss_vm with Some v -> (dpid, v) :: acc | None -> acc)
    t.switches []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let is_configured t dpid = vm t dpid <> None

let configured_count t = List.length (vms t)

let set_on_vm_ready t f = t.on_vm_ready <- f

let set_mutation_guard t f = t.mutation_guard <- f

let mutations_rejected t = t.mutations_rejected

let arm_boot_failures t ~dpid ~failures =
  if failures < 0 then invalid_arg "Rf_system.arm_boot_failures: negative count";
  Hashtbl.replace t.boot_faults dpid (ref failures)

let boot_failures_injected t = t.boot_failures

let vms_created t = t.created

let boot_queue_length t = List.length t.boot_queue
