(** The RF-controller's OpenFlow application.

    Owns the RouteFlow slice's connection to every switch (through
    FlowVisor): relays table-miss packet-ins down into the mapped VM
    NIC, emits VM-originated frames as packet-outs, and programs the
    physical flow tables from the RF-clients' exported routes. *)

open Rf_openflow

type t

val create : Rf_sim.Engine.t -> Rf_vs.t -> t
(** Also wires itself as the virtual switch's physical-out path. *)

val attach : t -> dpid:int64 -> Rf_net.Channel.endpoint -> unit
(** Pass (partially applied) as a FlowVisor slice's [attach]. *)

val is_connected : t -> int64 -> bool

val connected_switches : t -> int64 list

val sync_flows : t -> dpid:int64 -> Vm.flow_route list -> unit
(** Diffs against what is already installed: deletes stale entries
    (strict), adds new ones. Route-prefix priority grows with prefix
    length so host routes beat subnet routes. *)

val set_master : t -> bool -> unit
(** Cluster failover hook: flips every switch session's OpenFlow role
    (and the role future attaches start in). Demotion parks the
    connections as slaves — state-changing sends are suppressed at the
    connection layer. Promotion re-pushes the flows believed installed
    on each switch; same-match same-priority adds replace in place, so
    the re-apply is idempotent. Apps start as master. *)

val is_master : t -> bool

val reassignments : t -> int
(** Switch sessions whose role was flipped by {!set_master}. *)

val installed_flows : t -> int64 -> Vm.flow_route list

val flow_mods_sent : t -> int

val packet_ins_relayed : t -> int

val packet_outs_sent : t -> int

val priority_of_prefix_len : int -> int
(** Exposed for tests. *)

val match_of_route : Vm.flow_route -> Of_match.t
