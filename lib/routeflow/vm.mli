(** A RouteFlow virtual machine: the container that runs the routing
    control platform (zebra + ospfd, optionally bgpd) for one switch.

    The VM's NICs mirror the switch's ports one-to-one. Its IP stack
    implements what a Linux guest would contribute to RouteFlow:
    answering ARP for its interface addresses, passive ARP learning,
    ICMP echo, and slow-path IPv4 forwarding driven by the RIB (packets
    relayed up from the physical switch before flows are installed).

    Configuration enters exactly as in the paper: the RPC server writes
    Quagga config *files*; [apply_zebra_config] / [apply_ospfd_config]
    parse that text and reconcile the running daemons. *)

open Rf_packet
open Rf_routing

type t

val create :
  Rf_sim.Engine.t -> dpid:int64 -> n_ports:int -> unit -> t
(** NICs eth1..ethN are created unnumbered. *)

val dpid : t -> int64

val entity : t -> Rf_obs.Profiler.entity
(** Load-attribution handle ([Switch dpid]), shared with the physical
    datapath of the same switch via kind-merging. *)

val hostname : t -> string
(** ["vm-<dpid>"], matching the paper's "ID identical to the switch
    ID". *)

val n_ports : t -> int

val nic : t -> int -> Iface.t
(** 1-based port number; raises [Invalid_argument] out of range. *)

val nic_by_name : t -> string -> Iface.t option

val zebra : t -> Zebra.t

val rib : t -> Rib.t

val ospfd : t -> Ospfd.t option
(** Present after the first ospfd config has been applied. *)

val bgpd : t -> Bgpd.t option

val ripd : t -> Ripd.t option

val apply_zebra_config : t -> string -> (unit, string) result
(** Parses zebra.conf text: addresses NICs, installs static routes. *)

val apply_ospfd_config : t -> string -> (unit, string) result
(** Parses ospfd.conf text: boots ospfd on first call, then reconciles
    (enables OSPF on interfaces covered by new network statements). *)

val apply_ripd_config : t -> string -> (unit, string) result
(** Parses ripd.conf text: boots ripd on first call, then reconciles
    (enables RIP on interfaces covered by new network statements). *)

val apply_bgpd_config :
  t -> peer_channel:(Ipv4_addr.t -> ((string -> unit) * ((string -> unit) -> unit)) option) ->
  string -> (unit, string) result
(** [peer_channel addr] returns the (send, set_receive) pair of a
    session transport toward the BGP neighbor at [addr]. *)

val config_file : t -> string -> string option
(** Text of the last applied config file, by name ("zebra.conf",
    "ospfd.conf", "bgpd.conf"). *)

(** {1 Flow export (the rfclient role)} *)

type flow_route = {
  fr_prefix : Ipv4_addr.Prefix.t;
  fr_port : int;  (** switch output port *)
  fr_src_mac : Mac.t;  (** rewritten source = NIC MAC *)
  fr_dst_mac : Mac.t;  (** next hop or host MAC *)
}

val flow_routes : t -> flow_route list
(** The routes currently resolvable to a (port, MAC) pair — the set the
    RF-client wants installed on the physical switch, sorted. *)

val set_on_flows_changed : t -> (unit -> unit) -> unit
(** The single RF-client slot (consumed by {!Rf_system}); replaces any
    previous function. *)

val add_on_flows_changed : t -> (unit -> unit) -> unit
(** Appends an extra observer — fired after the {!set_on_flows_changed}
    slot on every flow-export change. Used by the auditor's RIB feed
    without stealing the RF-client's callback. *)

(** {1 Introspection} *)

val arp_entries : t -> (int * Ipv4_addr.t * Mac.t) list
(** (port, ip, mac), sorted. *)

val packets_forwarded_slow_path : t -> int

val pp_flow_route : Format.formatter -> flow_route -> unit
