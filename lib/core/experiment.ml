module Topology = Rf_net.Topology
module Topo_gen = Rf_net.Topo_gen
module Host = Rf_net.Host
module Rf_system = Rf_routeflow.Rf_system
module Vtime = Rf_sim.Vtime

let to_s_opt = Option.map Vtime.to_s

(* --- E1: Figure 3 -------------------------------------------------- *)

type fig3_row = {
  f3_switches : int;
  f3_auto_s : float;
  f3_converged_s : float option;
  f3_manual_min : float;
}

let params ?(protocol = Rf_system.Proto_ospf) ~vm_boot_s ~parallel_boot () =
  {
    Rf_system.vm_boot_time = Vtime.span_s vm_boot_s;
    parallel_boot;
    config_apply_delay = Vtime.span_ms 200;
    routing_protocol = protocol;
  }

let fig3 ?(sizes = [ 4; 8; 12; 16; 20; 24; 28 ]) ?(vm_boot_s = 8.0)
    ?(parallel_boot = 1) ?telemetry ?profiler () =
  let last_size = List.nth sizes (List.length sizes - 1) in
  List.map
    (fun n ->
      let options =
        {
          Scenario.default_options with
          rf_params = params ~vm_boot_s ~parallel_boot ();
          profiler = (if n = last_size then profiler else None);
        }
      in
      let s = Scenario.build ~options (Topo_gen.ring n) in
      (* Generous horizon: boots dominate. *)
      let horizon = (vm_boot_s *. float_of_int n /. float_of_int parallel_boot) +. 120. in
      Scenario.run_for s (Vtime.span_s horizon);
      (match telemetry with
      | Some path when n = last_size ->
          Scenario.write_telemetry s path ~meta:[ ("experiment", "fig3") ]
      | Some _ | None -> ());
      let auto =
        match Scenario.all_configured_at s with
        | Some t -> Vtime.to_s t
        | None -> Float.nan
      in
      {
        f3_switches = n;
        f3_auto_s = auto;
        f3_converged_s = to_s_opt (Scenario.routing_converged_at s);
        f3_manual_min =
          Manual_model.total_minutes Manual_model.paper_costs ~switches:n;
      })
    sizes

let print_fig3 ppf rows =
  Format.fprintf ppf
    "Figure 3 — RouteFlow configuration time, ring topologies@.";
  Format.fprintf ppf
    "%-10s %14s %16s %14s %10s@." "switches" "auto (s)" "converged (s)"
    "manual" "speedup";
  List.iter
    (fun r ->
      let manual_s = r.f3_manual_min *. 60. in
      Format.fprintf ppf "%-10d %14.1f %16s %14s %9.0fx@." r.f3_switches
        r.f3_auto_s
        (match r.f3_converged_s with
        | Some c -> Printf.sprintf "%.1f" c
        | None -> "-")
        (Format.asprintf "%a" Manual_model.pp_duration r.f3_manual_min)
        (manual_s /. r.f3_auto_s))
    rows

(* --- E1b: per-phase decomposition of the configuration time ------- *)

type phase_row = {
  ph_dpid : int64;
  ph_discovery_s : float;
  ph_rpc_s : float;
  ph_vm_s : float;
  ph_quagga_s : float;
  ph_config_s : float;
}

type phase_breakdown = {
  pb_switches : int;
  pb_rows : phase_row list;
  pb_critical : phase_row;
  pb_all_green_s : float option;
  pb_convergence_tail_s : float option;
  pb_converged_s : float option;
  pb_trace_events : int;
  pb_trace_dropped : int;
}

let span_dur (sp : Rf_obs.Tracer.span) =
  match sp.Rf_obs.Tracer.end_us with
  | Some e -> float_of_int (e - sp.Rf_obs.Tracer.start_us) /. 1e6
  | None -> 0.

let breakdown_of s =
  let open Rf_obs.Tracer in
  let tracer = Rf_sim.Engine.tracer (Scenario.engine s) in
  let spans = spans tracer in
  let cfgs =
    List.filter (fun sp -> String.equal sp.name "sw.configure") spans
  in
  if cfgs = [] then invalid_arg "breakdown_of: no sw.configure spans yet";
  let row_of cfg =
    let dpid =
      match List.assoc_opt "dpid" cfg.attrs with
      | Some d -> Int64.of_string d
      | None -> -1L
    in
    let child name =
      match
        List.find_opt
          (fun sp -> sp.parent = Some cfg.id && String.equal sp.name name)
          spans
      with
      | Some sp -> span_dur sp
      | None -> 0.
    in
    {
      ph_dpid = dpid;
      ph_discovery_s = child "phase.discovery";
      ph_rpc_s = child "phase.rpc";
      ph_vm_s = child "phase.vm";
      ph_quagga_s = child "phase.quagga";
      ph_config_s = span_dur cfg;
    }
  in
  let rows =
    List.map row_of cfgs
    |> List.sort (fun a b -> Int64.compare a.ph_dpid b.ph_dpid)
  in
  (* Critical path: the configure span that finished last bounds the
     all-green time. *)
  let critical =
    List.fold_left
      (fun acc r -> if r.ph_config_s > acc.ph_config_s then r else acc)
      (List.hd rows) rows
  in
  let convergence =
    List.find_opt (fun sp -> String.equal sp.name "phase.convergence") spans
  in
  {
    pb_switches = List.length rows;
    pb_rows = rows;
    pb_critical = critical;
    pb_all_green_s = to_s_opt (Scenario.all_configured_at s);
    pb_convergence_tail_s = Option.map span_dur convergence;
    pb_converged_s = to_s_opt (Scenario.routing_converged_at s);
    pb_trace_events = event_count tracer;
    pb_trace_dropped = Scenario.trace_dropped s;
  }

let phase_breakdown ?(switches = 28) ?(vm_boot_s = 8.0) ?(parallel_boot = 1)
    ?telemetry () =
  let options =
    { Scenario.default_options with rf_params = params ~vm_boot_s ~parallel_boot () }
  in
  let s = Scenario.build ~options (Topo_gen.ring switches) in
  let horizon =
    (vm_boot_s *. float_of_int switches /. float_of_int parallel_boot) +. 120.
  in
  Scenario.run_for s (Vtime.span_s horizon);
  (match telemetry with
  | Some path ->
      Scenario.write_telemetry s path ~meta:[ ("experiment", "e1-phases") ]
  | None -> ());
  breakdown_of s

let print_phases ppf (b : phase_breakdown) =
  Format.fprintf ppf
    "E1 phase decomposition — %d-switch ring, critical path sw%Ld@."
    b.pb_switches b.pb_critical.ph_dpid;
  let c = b.pb_critical in
  let share v =
    if c.ph_config_s > 0. then 100. *. v /. c.ph_config_s else 0.
  in
  let row name v =
    Format.fprintf ppf "  %-22s %10.2f s %7.1f%%@." name v (share v)
  in
  row "discovery" c.ph_discovery_s;
  row "rpc delivery" c.ph_rpc_s;
  row "vm provisioning" c.ph_vm_s;
  row "quagga config" c.ph_quagga_s;
  let phase_sum =
    c.ph_discovery_s +. c.ph_rpc_s +. c.ph_vm_s +. c.ph_quagga_s
  in
  Format.fprintf ppf "  %-22s %10.2f s (phases sum to %.2f s)@."
    "configure total" c.ph_config_s phase_sum;
  (match b.pb_convergence_tail_s with
  | Some v -> Format.fprintf ppf "  %-22s %10.2f s@." "convergence tail" v
  | None -> ());
  (match (b.pb_all_green_s, b.pb_converged_s) with
  | Some g, Some e ->
      Format.fprintf ppf "  %-22s %10.2f s (all green %.2f s)@." "end-to-end" e
        g
  | Some g, None ->
      Format.fprintf ppf "  %-22s %10.2f s (not converged)@." "all green" g
  | None, _ -> Format.fprintf ppf "  configuration incomplete@.");
  Format.fprintf ppf "  trace: %d events, %d dropped@." b.pb_trace_events
    b.pb_trace_dropped

(* --- E2: the demonstration ---------------------------------------- *)

type demo_result = {
  d_switches : int;
  d_links : int;
  d_first_green_s : float option;
  d_all_green_s : float option;
  d_converged_s : float option;
  d_video_first_packet_s : float option;
  d_video_sent : int;
  d_video_received : int;
  d_flow_entries_total : int;
  d_slow_path_packets : int;  (** data packets the VMs forwarded *)
  d_steady_sent : int;  (** datagrams sent in the final minute *)
  d_steady_received : int;
  d_gui_timeline : (float * int) list;
  d_gui_final_frame : string;
}

let city_dpid name =
  let rec find i =
    if i > 28 then invalid_arg (Printf.sprintf "unknown city %s" name)
    else if String.equal (Topo_gen.pan_european_city (Int64.of_int i)) name then
      Int64.of_int i
    else find (i + 1)
  in
  find 1

let demo ?(vm_boot_s = 8.0) ?(horizon_s = 360.0) ?(server_city = "Glasgow")
    ?(client_city = "Athens") ?(protocol = Rf_system.Proto_ospf) ?pcap_path
    ?telemetry () =
  let topo = Topo_gen.pan_european () in
  Topology.add_host topo "server";
  Topology.add_host topo "client";
  ignore
    (Topology.connect topo (Topology.Host "server")
       (Topology.Switch (city_dpid server_city)));
  ignore
    (Topology.connect topo (Topology.Host "client")
       (Topology.Switch (city_dpid client_city)));
  let options =
    {
      Scenario.default_options with
      rf_params = params ~protocol ~vm_boot_s ~parallel_boot:1 ();
    }
  in
  let s = Scenario.build ~options topo in
  let server = Scenario.host s "server" in
  let client = Scenario.host s "client" in
  (* The paper streams the clip from t=0, before any VM exists. A
     video-rate stream: 25 fps. *)
  let stream =
    Host.start_udp_stream server ~dst:(Scenario.host_ip s "client")
      ~dst_port:5004 ~period:(Vtime.span_ms 40) ~payload_size:1200 ()
  in
  (* Sample the GUI once per simulated second for the timeline. *)
  let timeline = ref [] in
  let last_green = ref (-1) in
  ignore
    (Rf_sim.Engine.periodic
       ~entity:(Rf_obs.Profiler.component "experiment")
       (Scenario.engine s) (Vtime.span_s 1.0) (fun () ->
         let g = Gui.green_count (Scenario.gui s) in
         if g <> !last_green then begin
           last_green := g;
           timeline :=
             (Vtime.to_s (Rf_sim.Engine.now (Scenario.engine s)), g) :: !timeline
         end));
  (* Optional packet capture of the client's access link. *)
  let capture =
    match pcap_path with
    | None -> None
    | Some path -> (
        match
          Rf_net.Network.link (Scenario.network s) (Topology.Host "client")
            (Topology.Switch (city_dpid client_city))
        with
        | Some link ->
            let cap = Rf_net.Pcap.create () in
            Rf_net.Pcap.tap_link (Scenario.engine s) cap link;
            Some (cap, path)
        | None -> None)
  in
  let sent_at_mark = ref 0 and recv_at_mark = ref 0 in
  ignore
    (Rf_sim.Engine.schedule
       ~entity:(Rf_obs.Profiler.component "experiment")
       (Scenario.engine s)
       (Vtime.span_s (Float.max 0. (horizon_s -. 60.)))
       (fun () ->
         sent_at_mark := Host.udp_sent server;
         recv_at_mark := Host.udp_received client));
  Scenario.run_for s (Vtime.span_s horizon_s);
  (match telemetry with
  | Some path ->
      Scenario.write_telemetry s path ~meta:[ ("experiment", "demo") ]
  | None -> ());
  Host.stop_stream stream;
  (match capture with
  | Some (cap, path) -> Rf_net.Pcap.write_file cap path
  | None -> ());
  let steady_sent = Host.udp_sent server - !sent_at_mark in
  let steady_recv = Host.udp_received client - !recv_at_mark in
  let slow_path_total =
    List.fold_left
      (fun acc (_, vm) -> acc + Rf_routeflow.Vm.packets_forwarded_slow_path vm)
      0
      (Rf_system.vms (Scenario.rf_system s))
  in
  let flow_total =
    List.fold_left
      (fun acc (_, dp) -> acc + Rf_net.Flow_table.size (Rf_net.Datapath.flow_table dp))
      0
      (Rf_net.Network.datapaths (Scenario.network s))
  in
  let first_green =
    match Gui.timeline (Scenario.gui s) with
    | (_, t) :: _ -> Some (Vtime.to_s t)
    | [] -> None
  in
  {
    d_switches = Topology.switch_count topo;
    d_links = List.length (Topology.switch_switch_edges topo);
    d_first_green_s = first_green;
    d_all_green_s = to_s_opt (Scenario.all_configured_at s);
    d_converged_s = to_s_opt (Scenario.routing_converged_at s);
    d_video_first_packet_s = to_s_opt (Host.first_udp_rx_time client);
    d_video_sent = Host.udp_sent server;
    d_video_received = Host.udp_received client;
    d_flow_entries_total = flow_total;
    d_slow_path_packets = slow_path_total;
    d_steady_sent = steady_sent;
    d_steady_received = steady_recv;
    d_gui_timeline = List.rev !timeline;
    d_gui_final_frame =
      Gui.render ~label:(fun d -> Topo_gen.pan_european_city d) (Scenario.gui s);
  }

let print_demo ppf (d : demo_result) =
  Format.fprintf ppf
    "Demonstration — pan-European topology (%d switches, %d links)@."
    d.d_switches d.d_links;
  let opt = function
    | Some v -> Printf.sprintf "%.1f s" v
    | None -> "not reached"
  in
  Format.fprintf ppf "  first switch configured   %s@." (opt d.d_first_green_s);
  Format.fprintf ppf "  all switches configured   %s@." (opt d.d_all_green_s);
  Format.fprintf ppf "  routing converged         %s@." (opt d.d_converged_s);
  Format.fprintf ppf "  video reaches client      %s  (paper: < 4 min)@."
    (opt d.d_video_first_packet_s);
  Format.fprintf ppf "  video datagrams           %d sent, %d delivered@."
    d.d_video_sent d.d_video_received;
  Format.fprintf ppf "  flow entries installed    %d@." d.d_flow_entries_total;
  Format.fprintf ppf "  slow-path packets (VMs)   %d@." d.d_slow_path_packets;
  Format.fprintf ppf
    "  steady-state delivery     %d/%d in the final minute (%.1f%%)@."
    d.d_steady_received d.d_steady_sent
    (100. *. float_of_int d.d_steady_received
    /. float_of_int (max 1 d.d_steady_sent));
  Format.fprintf ppf "  GUI milestones (t, green): %s@."
    (String.concat " "
       (List.map
          (fun (t, g) -> Printf.sprintf "(%.0fs,%d)" t g)
          d.d_gui_timeline));
  Format.fprintf ppf "%s" d.d_gui_final_frame

(* --- E12: forwarding-state audit (shared pieces) ------------------- *)

type audit_window = {
  aw_kind : string;
  aw_key : string;
  aw_open_s : float;
  aw_close_s : float option;  (** [None]: still open at the horizon *)
}

type audit_run = {
  ar_label : string;
  ar_updates : int;
  ar_eq_classes : int;
  ar_walks : int;
  ar_dropped : int;
  ar_loop : int;
  ar_blackhole : int;
  ar_rib_fib : int;
  ar_slice : int;
  ar_window_count : int;
  ar_open_at_end : int;
  ar_converged_s : float option;
  ar_first_fault_s : float option;
  ar_steady_windows : int;
  ar_boot_union_s : float;
  ar_fault_union_s : float;
  ar_fault_windows : audit_window list;
}

(* Total length of the union of half-open [a, b) interval lists, in the
   interval unit (microseconds here). *)
let interval_union ivs =
  List.sort compare ivs
  |> List.fold_left
       (fun (total, edge) (a, b) ->
         if b <= edge then (total, edge) else (total + b - max a edge, b))
       (0, min_int)
  |> fst

let audit_run_of s ~label ~first_fault_s ~horizon_s =
  let au =
    match Scenario.auditor s with
    | Some a -> a
    | None -> invalid_arg "audit_run_of: scenario built without audit"
  in
  let module A = Rf_obs.Auditor in
  let horizon_us = Vtime.to_us (Vtime.of_s horizon_s) in
  let wins = A.windows au in
  let conv_us = Option.map Vtime.to_us (Scenario.routing_converged_at s) in
  let fault_us =
    Option.map (fun t -> Vtime.to_us (Vtime.of_s t)) first_fault_s
  in
  let clip lo hi =
    List.filter_map
      (fun (w : A.window) ->
        let a = max w.A.w_open_us lo
        and b = min (Option.value w.A.w_close_us ~default:hi) hi in
        if b > a then Some (a, b) else None)
      wins
  in
  let boot_hi = Option.value fault_us ~default:horizon_us in
  let boot_union_us = interval_union (clip 0 boot_hi) in
  let fault_union_us =
    match fault_us with
    | None -> 0
    | Some f -> interval_union (clip f horizon_us)
  in
  (* The steady-state interval is strictly after convergence and
     strictly before the first planned fault: a window closing exactly
     at convergence (the last flow-mod of the boot) or opening exactly
     at the fault does not count against the quiescent network. *)
  let steady_windows =
    let upto =
      match fault_us with Some f -> f - 1 | None -> horizon_us
    in
    match conv_us with
    | Some c when c + 1 <= upto ->
        List.length (A.overlapping au ~start_us:(c + 1) ~stop_us:upto)
    | Some _ | None -> 0
  in
  let row (w : A.window) =
    {
      aw_kind = A.kind_to_string w.A.w_kind;
      aw_key = w.A.w_key;
      aw_open_s = float_of_int w.A.w_open_us /. 1e6;
      aw_close_s = Option.map (fun c -> float_of_int c /. 1e6) w.A.w_close_us;
    }
  in
  let fault_windows =
    match fault_us with
    | None -> []
    | Some f ->
        List.filter_map
          (fun (w : A.window) ->
            if w.A.w_open_us >= f then Some (row w) else None)
          wins
  in
  {
    ar_label = label;
    ar_updates = A.updates au;
    ar_eq_classes = A.eq_classes au;
    ar_walks = A.walks au;
    ar_dropped = A.dropped au;
    ar_loop = A.violations_total au A.Loop;
    ar_blackhole = A.violations_total au A.Blackhole;
    ar_rib_fib = A.violations_total au A.Rib_fib;
    ar_slice = A.violations_total au A.Slice;
    ar_window_count = List.length wins;
    ar_open_at_end = List.length (A.open_violations au);
    ar_converged_s = to_s_opt (Scenario.routing_converged_at s);
    ar_first_fault_s = first_fault_s;
    ar_steady_windows = steady_windows;
    ar_boot_union_s = float_of_int boot_union_us /. 1e6;
    ar_fault_union_s = float_of_int fault_union_us /. 1e6;
    ar_fault_windows = fault_windows;
  }

let audit_meta (r : audit_run) =
  [
    ( "first_fault_s",
      match r.ar_first_fault_s with
      | Some f -> Printf.sprintf "%.3f" f
      | None -> "none" );
    ("steady_windows", string_of_int r.ar_steady_windows);
    ("boot_union_s", Printf.sprintf "%.3f" r.ar_boot_union_s);
    ("fault_union_s", Printf.sprintf "%.3f" r.ar_fault_union_s);
    ("open_at_horizon", string_of_int r.ar_open_at_end);
  ]

let print_audit_run ppf (r : audit_run) =
  Format.fprintf ppf
    "  [%s] %d audited updates, %d equivalence classes, %d walks, %d \
     unprobed@."
    r.ar_label r.ar_updates r.ar_eq_classes r.ar_walks r.ar_dropped;
  Format.fprintf ppf
    "  [%s] windows loop %d, blackhole %d, rib-fib %d, slice %d; open at \
     horizon %d@."
    r.ar_label r.ar_loop r.ar_blackhole r.ar_rib_fib r.ar_slice
    r.ar_open_at_end;
  Format.fprintf ppf
    "  [%s] violation union: boot %.3f s, post-fault %.3f s; steady-state \
     violations %d@."
    r.ar_label r.ar_boot_union_s r.ar_fault_union_s r.ar_steady_windows;
  let shown, extra =
    let rec take n = function
      | [] -> ([], 0)
      | l when n = 0 -> ([], List.length l)
      | w :: rest ->
          let taken, more = take (n - 1) rest in
          (w :: taken, more)
    in
    take 10 r.ar_fault_windows
  in
  List.iter
    (fun w ->
      Format.fprintf ppf "  [%s]   %-9s %-18s %9.3f -> %s@." r.ar_label
        w.aw_kind w.aw_key w.aw_open_s
        (match w.aw_close_s with
        | Some c -> Printf.sprintf "%.3f" c
        | None -> "open"))
    shown;
  if extra > 0 then
    Format.fprintf ppf "  [%s]   ... and %d more@." r.ar_label extra

(* --- E3: failure recovery ------------------------------------------ *)

type recovery_result = {
  fr_seed : int;
  fr_switches : int;
  fr_fail_at_s : float;
  fr_all_green_s : float option;
  fr_converged_s : float option;
  fr_reconverged_s : float option;
  fr_outage_s : float option;
  fr_window_sent : int;
  fr_window_received : int;
  fr_window_lost : int;
  fr_routes_avoid_failed_link : bool;
  fr_trace_fingerprint : string;
  fr_audit : audit_run option;
}

let failure_recovery ?(seed = 42) ?(switches = 6) ?(fail_at_s = 60.0)
    ?(window_s = 30.0) ?(horizon_s = 150.0) ?(audit = false) ?telemetry
    ?profiler () =
  if switches < 4 then invalid_arg "failure_recovery: need a ring of >= 4";
  let topo = Topo_gen.ring switches in
  Topology.add_host topo "server";
  Topology.add_host topo "client";
  ignore (Topology.connect topo (Topology.Host "server") (Topology.Switch 1L));
  let far = Int64.of_int ((switches / 2) + 1) in
  ignore (Topology.connect topo (Topology.Host "client") (Topology.Switch far));
  (* Fail a link on the shortest server->client arc, mid-stream. *)
  let fail_a, fail_b = (2L, 3L) in
  let options =
    {
      Scenario.default_options with
      seed;
      rf_params = params ~vm_boot_s:2.0 ~parallel_boot:4 ();
      faults = Rf_sim.Faults.(plan [ link_down ~at_s:fail_at_s fail_a fail_b ]);
      profiler;
      audit;
    }
  in
  let s = Scenario.build ~options topo in
  let server = Scenario.host s "server" in
  let client = Scenario.host s "client" in
  ignore
    (Host.start_udp_stream server ~dst:(Scenario.host_ip s "client")
       ~dst_port:5004 ~period:(Vtime.span_ms 100) ~payload_size:500 ());
  (* Datagram accounting over the window starting at the failure. *)
  let sent_at_fail = ref 0 and recv_at_fail = ref 0 in
  let sent_at_end = ref 0 and recv_at_end = ref 0 in
  let engine = Scenario.engine s in
  ignore
    (Rf_sim.Engine.schedule_at
       ~entity:(Rf_obs.Profiler.component "experiment")
       engine (Vtime.of_s fail_at_s) (fun () ->
         sent_at_fail := Host.udp_sent server;
         recv_at_fail := Host.udp_received client));
  ignore
    (Rf_sim.Engine.schedule_at
       ~entity:(Rf_obs.Profiler.component "experiment")
       engine
       (Vtime.of_s (fail_at_s +. window_s))
       (fun () ->
         sent_at_end := Host.udp_sent server;
         recv_at_end := Host.udp_received client));
  Scenario.run_for s (Vtime.span_s horizon_s);
  let audit_run =
    if audit then
      Some
        (audit_run_of s ~label:"automatic" ~first_fault_s:(Some fail_at_s)
           ~horizon_s)
    else None
  in
  (match telemetry with
  | Some path ->
      Scenario.write_telemetry s path
        ~meta:
          ((match audit_run with
           | Some r -> audit_meta r
           | None -> [])
          @ [
            ("experiment", "failure");
            ("fail_at_s", Printf.sprintf "%.3f" fail_at_s);
            ("window_s", Printf.sprintf "%.3f" window_s);
            ("window_sent", string_of_int (!sent_at_end - !sent_at_fail));
            ("window_received", string_of_int (!recv_at_end - !recv_at_fail));
            ( "window_lost",
              string_of_int
                (!sent_at_end - !sent_at_fail - (!recv_at_end - !recv_at_fail))
            );
          ])
  | None -> ());
  (* Post-failure routes must not use the interfaces facing the dead
     link. *)
  let avoid =
    match
      Topology.edge_between topo (Topology.Switch fail_a)
        (Topology.Switch fail_b)
    with
    | None -> false
    | Some e ->
        let dead (dpid, port) =
          let iface = Printf.sprintf "eth%d" port in
          match Rf_system.vm (Scenario.rf_system s) dpid with
          | None -> false
          | Some vm ->
              List.exists
                (fun (r : Rf_routing.Rib.route) -> String.equal r.r_iface iface)
                (Rf_routing.Rib.selected (Rf_routeflow.Vm.rib vm))
        in
        let a_side, b_side =
          match e.a with
          | Topology.Switch d when Int64.equal d fail_a ->
              ((fail_a, e.a_port), (fail_b, e.b_port))
          | Topology.Switch _ | Topology.Host _ ->
              ((fail_a, e.b_port), (fail_b, e.a_port))
        in
        (not (dead a_side)) && not (dead b_side)
  in
  let fingerprint =
    Digest.to_hex
      (Digest.string
         (Format.asprintf "%a" Rf_sim.Trace.dump (Rf_sim.Engine.trace engine)))
  in
  let window_sent = !sent_at_end - !sent_at_fail in
  let window_recv = !recv_at_end - !recv_at_fail in
  let reconverged = Scenario.reconverged_at s in
  {
    fr_seed = seed;
    fr_switches = switches;
    fr_fail_at_s = fail_at_s;
    fr_all_green_s = to_s_opt (Scenario.all_configured_at s);
    fr_converged_s = to_s_opt (Scenario.routing_converged_at s);
    fr_reconverged_s = to_s_opt reconverged;
    fr_outage_s =
      Option.map (fun t -> Vtime.to_s t -. fail_at_s) reconverged;
    fr_window_sent = window_sent;
    fr_window_received = window_recv;
    fr_window_lost = window_sent - window_recv;
    fr_routes_avoid_failed_link = avoid;
    fr_trace_fingerprint = fingerprint;
    fr_audit = audit_run;
  }

let print_failure_recovery ppf (r : recovery_result) =
  Format.fprintf ppf
    "Failure recovery — %d-switch ring, link sw2-sw3 cut at t=%.0fs@."
    r.fr_switches r.fr_fail_at_s;
  let opt = function
    | Some v -> Printf.sprintf "%.1f s" v
    | None -> "not reached"
  in
  Format.fprintf ppf "  all switches configured    %s@." (opt r.fr_all_green_s);
  Format.fprintf ppf "  routing converged          %s@." (opt r.fr_converged_s);
  Format.fprintf ppf "  routes settled after cut   %s@."
    (opt r.fr_reconverged_s);
  Format.fprintf ppf "  reconvergence time         %s@." (opt r.fr_outage_s);
  Format.fprintf ppf
    "  datagrams in post-cut window  %d sent, %d delivered, %d lost@."
    r.fr_window_sent r.fr_window_received r.fr_window_lost;
  Format.fprintf ppf "  routes avoid failed link   %b@."
    r.fr_routes_avoid_failed_link;
  Format.fprintf ppf "  seed %d, trace fingerprint %s@." r.fr_seed
    r.fr_trace_fingerprint;
  Format.fprintf ppf
    "  (rerun with the same seed to reproduce this fingerprint exactly)@."

(* --- E4: controller crash/restart ---------------------------------- *)

type restart_run = {
  rr_label : string;
  rr_configured : int;
  rr_all_green_s : float option;
  rr_converged_s : float option;
  rr_reconverged_s : float option;
  rr_state_digest : string;
  rr_sent : int;
  rr_retx : int;
  rr_gave_up : int;
  rr_pings : int;
  rr_snapshots : int;
  rr_resyncs : int;
  rr_handled : int;
  rr_dups : int;
  rr_undelivered : int;
  rr_incarnation : int;
  rr_trace_fingerprint : string;
  rr_audit : audit_run option;
}

type restart_result = {
  rs_seed : int;
  rs_switches : int;
  rs_crash_at_s : float;
  rs_cut_at_s : float;
  rs_recover_at_s : float;
  rs_baseline : restart_run;  (** no fault *)
  rs_supervised : restart_run;  (** crash/restart, resync on *)
  rs_legacy : restart_run;  (** crash/restart, resync off *)
  rs_supervised_matches : bool;  (** supervised state == baseline state *)
  rs_legacy_matches : bool;
  rs_sync_overhead_msgs : int;
      (** extra tracked frames the supervised run cost over the
          baseline (retransmissions + snapshot) *)
  rs_recovery_s : float option;
      (** routes settled this long after the controller came back *)
}

(* One digest over everything the RF-controller side materialised:
   every VM's config files and its selected routes. Two runs that end
   in the same digest configured the network identically, whatever
   happened to the control plane in between. *)
let rf_state_digest s =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (dpid, vm) ->
      Buffer.add_string buf (Printf.sprintf "vm-%Ld\n" dpid);
      List.iter
        (fun file ->
          match Rf_routeflow.Vm.config_file vm file with
          | Some text ->
              Buffer.add_string buf (Printf.sprintf "--%s--\n%s" file text)
          | None -> ())
        [ "zebra.conf"; "ospfd.conf"; "ripd.conf" ];
      let routes =
        List.map
          (fun (r : Rf_routing.Rib.route) ->
            Printf.sprintf "%s/%s/%s"
              (Rf_packet.Ipv4_addr.Prefix.to_string r.r_prefix)
              (match r.r_next_hop with
              | Some nh -> Rf_packet.Ipv4_addr.to_string nh
              | None -> "direct")
              r.r_iface)
          (Rf_routing.Rib.selected (Rf_routeflow.Vm.rib vm))
        |> List.sort String.compare
      in
      List.iter
        (fun r ->
          Buffer.add_string buf r;
          Buffer.add_char buf '\n')
        routes)
    (Rf_system.vms (Scenario.rf_system s));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let restart ?(seed = 42) ?(switches = 8) ?(crash_at_s = 4.0)
    ?(cut_at_s = 8.0) ?(recover_at_s = 20.0) ?(horizon_s = 120.0)
    ?(audit = false) ?telemetry () =
  if switches < 4 then invalid_arg "restart: need a ring of >= 4";
  if not (crash_at_s < cut_at_s && cut_at_s < recover_at_s) then
    invalid_arg "restart: need crash < cut < recover";
  (* Aggressive supervision so the whole exchange fits a short run:
     frames sent into the dead controller park after ~3.5 s instead of
     minutes. *)
  let rpc_params =
    {
      Rf_rpc.Rpc_client.rto = Vtime.span_s 0.5;
      rto_max = Vtime.span_s 4.0;
      max_retries = 3;
      heartbeat_every = Vtime.span_s 1.0;
      heartbeat_jitter = 0.0;
      dead_after = 3;
      resync = true;
    }
  in
  (* All three runs see the same physical event — the sw2-sw3 link dies
     at [cut_at_s] — so they should all end in the same network state.
     What differs is whether the RF-controller was up to hear about it:
     the baseline controller never crashes; the other two are down from
     [crash_at_s] to [recover_at_s], so the Link_down config event has
     nowhere to go and parks after the retry budget. Reconciliation
     recovers it from the post-restart snapshot (the dead link is absent,
     so the stale virtual link is pruned); the legacy session never
     hears of it at all. *)
  let run ?telemetry label ~faulty ~resync =
    let cut = Rf_sim.Faults.link_down ~at_s:cut_at_s 2L 3L in
    let faults =
      if faulty then
        Rf_sim.Faults.(
          plan
            [
              controller_crash ~at_s:crash_at_s ();
              cut;
              controller_recover ~at_s:recover_at_s ();
            ])
      else Rf_sim.Faults.plan [ cut ]
    in
    let options =
      {
        Scenario.default_options with
        seed;
        rf_params = params ~vm_boot_s:2.0 ~parallel_boot:4 ();
        rpc_params = { rpc_params with Rf_rpc.Rpc_client.resync };
        faults;
        audit;
      }
    in
    let s = Scenario.build ~options (Topo_gen.ring switches) in
    Scenario.run_for s (Vtime.span_s horizon_s);
    let client = Scenario.rpc_client s in
    let server = Scenario.rpc_server s in
    let audit_run =
      if audit then
        let first_fault_s = if faulty then crash_at_s else cut_at_s in
        Some
          (audit_run_of s ~label ~first_fault_s:(Some first_fault_s)
             ~horizon_s)
      else None
    in
    (match telemetry with
    | Some path ->
        Scenario.write_telemetry s path
          ~meta:
            ((match audit_run with
             | Some r -> audit_meta r
             | None -> [])
            @ [
              ("experiment", "restart");
              ("crash_at_s", Printf.sprintf "%.3f" crash_at_s);
              ("recover_at_s", Printf.sprintf "%.3f" recover_at_s);
              ("rpc_sent", string_of_int (Rf_rpc.Rpc_client.sent client));
              ( "rpc_retx",
                string_of_int (Rf_rpc.Rpc_client.retransmissions client) );
              ("rpc_gave_up", string_of_int (Rf_rpc.Rpc_client.gave_up client));
              ( "rpc_undelivered",
                string_of_int
                  (Rf_rpc.Rpc_client.unacked client
                  + Rf_rpc.Rpc_server.dedup_size server) );
              ( "rpc_handled",
                string_of_int (Rf_rpc.Rpc_server.requests_handled server) );
            ])
    | None -> ());
    {
      rr_label = label;
      rr_configured = Rf_system.configured_count (Scenario.rf_system s);
      rr_all_green_s = to_s_opt (Scenario.all_configured_at s);
      rr_converged_s = to_s_opt (Scenario.routing_converged_at s);
      rr_reconverged_s = to_s_opt (Scenario.reconverged_at s);
      rr_state_digest = rf_state_digest s;
      rr_sent = Rf_rpc.Rpc_client.sent client;
      rr_retx = Rf_rpc.Rpc_client.retransmissions client;
      rr_gave_up = Rf_rpc.Rpc_client.gave_up client;
      rr_pings = Rf_rpc.Rpc_client.pings_sent client;
      rr_snapshots = Rf_rpc.Rpc_client.snapshots_sent client;
      rr_resyncs = Rf_rpc.Rpc_client.resyncs client;
      rr_handled = Rf_rpc.Rpc_server.requests_handled server;
      rr_dups = Rf_rpc.Rpc_server.duplicates_dropped server;
      (* Config events the handler never saw and never will: frames
         still parked/unacknowledged at the horizon plus frames stuck in
         the server's reorder buffer behind a gap that will never close.
         Zero under reconciliation (the resync drops parked frames and
         covers them with the snapshot). *)
      rr_undelivered =
        Rf_rpc.Rpc_client.unacked client + Rf_rpc.Rpc_server.dedup_size server;
      rr_incarnation = Int32.to_int (Rf_rpc.Rpc_server.incarnation server);
      rr_trace_fingerprint =
        Digest.to_hex
          (Digest.string
             (Format.asprintf "%a" Rf_sim.Trace.dump
                (Rf_sim.Engine.trace (Scenario.engine s))));
      rr_audit = audit_run;
    }
  in
  let baseline = run "no-fault" ~faulty:false ~resync:true in
  let supervised =
    run ?telemetry "crash+reconciliation" ~faulty:true ~resync:true
  in
  let legacy = run "crash, legacy rpc" ~faulty:true ~resync:false in
  {
    rs_seed = seed;
    rs_switches = switches;
    rs_crash_at_s = crash_at_s;
    rs_cut_at_s = cut_at_s;
    rs_recover_at_s = recover_at_s;
    rs_baseline = baseline;
    rs_supervised = supervised;
    rs_legacy = legacy;
    rs_supervised_matches =
      String.equal supervised.rr_state_digest baseline.rr_state_digest;
    rs_legacy_matches =
      String.equal legacy.rr_state_digest baseline.rr_state_digest;
    rs_sync_overhead_msgs =
      supervised.rr_sent - baseline.rr_sent + supervised.rr_retx;
    rs_recovery_s =
      Option.map (fun t -> t -. recover_at_s) supervised.rr_reconverged_s;
  }

let print_restart ppf (r : restart_result) =
  Format.fprintf ppf
    "Controller restart — %d-switch ring; RF-controller down t=%.0fs..%.0fs, \
     link sw2-sw3 cut at t=%.0fs while it is down@."
    r.rs_switches r.rs_crash_at_s r.rs_recover_at_s r.rs_cut_at_s;
  let opt = function
    | Some v -> Printf.sprintf "%.1f s" v
    | None -> "never"
  in
  Format.fprintf ppf "%-24s %12s %12s %12s@." "" "no-fault"
    "reconciled" "legacy rpc";
  let row name f =
    Format.fprintf ppf "%-24s %12s %12s %12s@." name (f r.rs_baseline)
      (f r.rs_supervised) (f r.rs_legacy)
  in
  row "switches configured" (fun x -> string_of_int x.rr_configured);
  row "routing converged" (fun x ->
      match x.rr_converged_s with Some v -> Printf.sprintf "%.1f s" v | None -> "never");
  row "config events lost" (fun x -> string_of_int x.rr_undelivered);
  row "rpc frames sent" (fun x -> string_of_int x.rr_sent);
  row "retransmissions" (fun x -> string_of_int x.rr_retx);
  row "heartbeat pings" (fun x -> string_of_int x.rr_pings);
  row "state snapshots" (fun x -> string_of_int x.rr_snapshots);
  row "server incarnation" (fun x -> string_of_int x.rr_incarnation);
  row "state digest" (fun x -> String.sub x.rr_state_digest 0 12);
  Format.fprintf ppf "  reconciled state == no-fault state   %b@."
    r.rs_supervised_matches;
  Format.fprintf ppf "  legacy state == no-fault state       %b@."
    r.rs_legacy_matches;
  Format.fprintf ppf "  reconvergence after restart          %s@."
    (opt r.rs_recovery_s);
  Format.fprintf ppf "  sync overhead (extra frames)         %d@."
    r.rs_sync_overhead_msgs;
  Format.fprintf ppf "  seed %d, trace fingerprints %s / %s / %s@." r.rs_seed
    (String.sub r.rs_baseline.rr_trace_fingerprint 0 12)
    (String.sub r.rs_supervised.rr_trace_fingerprint 0 12)
    (String.sub r.rs_legacy.rr_trace_fingerprint 0 12);
  Format.fprintf ppf
    "  (rerun with the same seed to reproduce the fingerprints exactly)@."

(* --- E5: GUI frames ------------------------------------------------ *)

let gui_frames ?(vm_boot_s = 8.0) ?(every_s = 30.0) () =
  let topo = Topo_gen.pan_european () in
  let options =
    { Scenario.default_options with rf_params = params ~vm_boot_s ~parallel_boot:1 () }
  in
  let s = Scenario.build ~options topo in
  let frames = ref [] in
  ignore
    (Rf_sim.Engine.periodic
       ~entity:(Rf_obs.Profiler.component "experiment")
       (Scenario.engine s) (Vtime.span_s every_s) (fun () ->
         frames :=
           Gui.render ~label:(fun d -> Topo_gen.pan_european_city d) (Scenario.gui s)
           :: !frames));
  Scenario.run_for s (Vtime.span_s (vm_boot_s *. 28. +. 60.));
  List.rev !frames

(* --- X1: scaling ---------------------------------------------------- *)

type scaling_row = {
  sc_switches : int;
  sc_auto_s : float;
  sc_manual_min : float;
  sc_events : int;
}

let scaling ?(sizes = [ 50; 100; 250; 500; 1000 ]) () =
  List.map
    (fun n ->
      let options =
        {
          Scenario.default_options with
          rf_params = params ~vm_boot_s:8.0 ~parallel_boot:1 ();
          probe_interval = Vtime.span_s 30.0;
        }
      in
      let s = Scenario.build ~options (Topo_gen.ring n) in
      Scenario.run_for s (Vtime.span_s ((8.0 *. float_of_int n) +. 180.));
      {
        sc_switches = n;
        sc_auto_s =
          (match Scenario.all_configured_at s with
          | Some t -> Vtime.to_s t
          | None -> Float.nan);
        sc_manual_min =
          Manual_model.total_minutes Manual_model.paper_costs ~switches:n;
        sc_events = Rf_sim.Engine.events_executed (Scenario.engine s);
      })
    sizes

let print_scaling ppf rows =
  Format.fprintf ppf "Scaling — rings beyond the paper's 28 switches@.";
  Format.fprintf ppf "%-10s %12s %16s %12s@." "switches" "auto" "manual"
    "sim events";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10d %11.0fs %16s %12d@." r.sc_switches r.sc_auto_s
        (Format.asprintf "%a" Manual_model.pp_duration r.sc_manual_min)
        r.sc_events)
    rows

(* --- X2: ablations --------------------------------------------------- *)

type ablation_row = {
  ab_label : string;
  ab_all_green_s : float option;
  ab_converged_s : float option;
}

let run_ablation ~switches options label =
  let s = Scenario.build ~options (Topo_gen.ring switches) in
  Scenario.run_for s (Vtime.span_s ((8.0 *. float_of_int switches) +. 180.));
  {
    ab_label = label;
    ab_all_green_s = to_s_opt (Scenario.all_configured_at s);
    ab_converged_s = to_s_opt (Scenario.routing_converged_at s);
  }

let ablation_parallel_boot ?(switches = 28) () =
  List.map
    (fun p ->
      run_ablation ~switches
        { Scenario.default_options with rf_params = params ~vm_boot_s:8.0 ~parallel_boot:p () }
        (Printf.sprintf "parallel_boot=%d" p))
    [ 1; 2; 4; 8 ]

let ablation_probe_interval ?(switches = 28) () =
  List.map
    (fun secs ->
      run_ablation ~switches
        {
          Scenario.default_options with
          rf_params = params ~vm_boot_s:8.0 ~parallel_boot:1 ();
          probe_interval = Vtime.span_s secs;
        }
        (Printf.sprintf "probe_interval=%.0fs" secs))
    [ 1.; 5.; 15.; 30. ]

let ablation_rpc_latency ?(switches = 28) () =
  List.map
    (fun ms ->
      run_ablation ~switches
        {
          Scenario.default_options with
          rf_params = params ~vm_boot_s:8.0 ~parallel_boot:1 ();
          rpc_latency = Vtime.span_ms ms;
        }
        (Printf.sprintf "rpc_latency=%dms" ms))
    [ 1; 10; 50; 200 ]

let ablation_protocol ?(switches = 28) () =
  List.map
    (fun (label, proto) ->
      run_ablation ~switches
        {
          Scenario.default_options with
          rf_params =
            params ~protocol:proto ~vm_boot_s:8.0 ~parallel_boot:1 ();
        }
        label)
    [ ("protocol=ospf", Rf_system.Proto_ospf); ("protocol=rip", Rf_system.Proto_rip) ]

let print_ablation ppf title rows =
  Format.fprintf ppf "Ablation — %s (28-switch ring)@." title;
  Format.fprintf ppf "%-24s %14s %16s@." "variant" "all green (s)" "converged (s)";
  List.iter
    (fun r ->
      let opt = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
      Format.fprintf ppf "%-24s %14s %16s@." r.ab_label (opt r.ab_all_green_s)
        (opt r.ab_converged_s))
    rows

(* --- X4: control-plane message census --------------------------------- *)

type census = {
  cn_switches : int;
  cn_links : int;
  cn_lldp_probes : int;
  cn_lldp_received : int;
  cn_rpc_messages : int;
  cn_fv_to_topology : int;
  cn_fv_to_routeflow : int;
  cn_fv_from_topology : int;
  cn_fv_from_routeflow : int;
  cn_flow_mods : int;
  cn_packet_ins_relayed : int;
  cn_packet_outs : int;
  cn_slow_path : int;
  cn_sim_events : int;
}

let census ?(switches = 28) () =
  let options =
    { Scenario.default_options with rf_params = params ~vm_boot_s:8.0 ~parallel_boot:1 () }
  in
  let s = Scenario.build ~options (Topo_gen.ring switches) in
  Scenario.run_for s (Vtime.span_s ((8.0 *. float_of_int switches) +. 120.));
  let fv = Scenario.flowvisor s in
  let disc = Scenario.discovery s in
  let app = Scenario.rf_app s in
  {
    cn_switches = switches;
    cn_links = switches;
    cn_lldp_probes = Rf_controller.Discovery.probes_sent disc;
    cn_lldp_received = Rf_controller.Discovery.lldp_received disc;
    cn_rpc_messages = Rf_rpc.Rpc_client.sent (Scenario.rpc_client s);
    cn_fv_to_topology = Rf_flowvisor.Flowvisor.messages_to_slice fv "topology";
    cn_fv_to_routeflow = Rf_flowvisor.Flowvisor.messages_to_slice fv "routeflow";
    cn_fv_from_topology = Rf_flowvisor.Flowvisor.messages_from_slice fv "topology";
    cn_fv_from_routeflow = Rf_flowvisor.Flowvisor.messages_from_slice fv "routeflow";
    cn_flow_mods = Rf_routeflow.Rf_controller_app.flow_mods_sent app;
    cn_packet_ins_relayed = Rf_routeflow.Rf_controller_app.packet_ins_relayed app;
    cn_packet_outs = Rf_routeflow.Rf_controller_app.packet_outs_sent app;
    cn_slow_path =
      List.fold_left
        (fun acc (_, vm) -> acc + Rf_routeflow.Vm.packets_forwarded_slow_path vm)
        0
        (Rf_system.vms (Scenario.rf_system s));
    cn_sim_events = Rf_sim.Engine.events_executed (Scenario.engine s);
  }

let print_census ppf c =
  Format.fprintf ppf
    "Control-plane census — %d-switch ring, full autoconfiguration run@."
    c.cn_switches;
  let row name v = Format.fprintf ppf "  %-36s %10d@." name v in
  row "LLDP probes sent" c.cn_lldp_probes;
  row "LLDP packet-ins received" c.cn_lldp_received;
  row "RPC configuration messages" c.cn_rpc_messages;
  row "FlowVisor -> topology slice msgs" c.cn_fv_to_topology;
  row "FlowVisor <- topology slice msgs" c.cn_fv_from_topology;
  row "FlowVisor -> routeflow slice msgs" c.cn_fv_to_routeflow;
  row "FlowVisor <- routeflow slice msgs" c.cn_fv_from_routeflow;
  row "flow-mods installed" c.cn_flow_mods;
  row "packet-ins relayed into VMs" c.cn_packet_ins_relayed;
  row "packet-outs from VMs" c.cn_packet_outs;
  row "slow-path forwards inside VMs" c.cn_slow_path;
  row "simulator events executed" c.cn_sim_events

(* --- X3: topology families ------------------------------------------ *)

type family_row = {
  fam_name : string;
  fam_switches : int;
  fam_links : int;
  fam_all_green_s : float option;
  fam_converged_s : float option;
}

let topo_families ?(n = 16) () =
  let families =
    [
      ("ring", Topo_gen.ring n);
      ("line", Topo_gen.line n);
      ("star", Topo_gen.star n);
      ("grid", Topo_gen.grid 4 (n / 4));
      ("random", Topo_gen.random ~seed:7 ~n ~extra_edges:(n / 2) ());
    ]
  in
  List.map
    (fun (name, topo) ->
      let options =
        { Scenario.default_options with rf_params = params ~vm_boot_s:8.0 ~parallel_boot:1 () }
      in
      let s = Scenario.build ~options topo in
      Scenario.run_for s (Vtime.span_s ((8.0 *. float_of_int n) +. 180.));
      {
        fam_name = name;
        fam_switches = Topology.switch_count topo;
        fam_links = List.length (Topology.switch_switch_edges topo);
        fam_all_green_s = to_s_opt (Scenario.all_configured_at s);
        fam_converged_s = to_s_opt (Scenario.routing_converged_at s);
      })
    families

let print_families ppf rows =
  Format.fprintf ppf "Topology families (n≈16, 8 s serialized boots)@.";
  Format.fprintf ppf "%-10s %9s %7s %14s %16s@." "family" "switches" "links"
    "all green (s)" "converged (s)";
  List.iter
    (fun r ->
      let opt = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
      Format.fprintf ppf "%-10s %9d %7d %14s %16s@." r.fam_name r.fam_switches
        r.fam_links
        (opt r.fam_all_green_s)
        (opt r.fam_converged_s))
    rows

(* --- E6: data-plane traffic ----------------------------------------- *)

module Traffic_spec = Rf_traffic.Spec
module Traffic_measure = Rf_traffic.Measure
module Traffic_gen = Rf_traffic.Generator

type traffic_run = {
  tw_label : string;
  tw_flows : int;
  tw_offered : int;  (** weighted data-plane packets *)
  tw_delivered : int;
  tw_lost : int;
  tw_disrupted_flows : int;
  tw_window : (float * float) option;
  tw_disruption_s : float;
  tw_reconverged_s : float option;
  tw_queue_dropped : int;
  tw_classes : Traffic_measure.class_summary list;
}

type traffic_result = {
  tr_seed : int;
  tr_switches : int;
  tr_fail_at_s : float;
  tr_manual_response_s : float;
  tr_crash_at_s : float;
  tr_cut_at_s : float;
  tr_recover_at_s : float;
  tr_auto : traffic_run;
  tr_manual : traffic_run;
  tr_reconciled : traffic_run;
  tr_legacy : traffic_run;
  tr_auto_shorter : bool;
}

(* The standard E6 workload: three classes over a ring of hosts, named
   so some flows must cross the sw2-sw3 link that the fault plans cut
   (h02->h03 has no one-hop alternative) and some act as controls on
   the far side of the ring. *)
let traffic_spec ?(start_s = 20.0) ~switches ~horizon_s () =
  let h i = Printf.sprintf "h%02d" (((i - 1) mod switches) + 1) in
  let stop_s = horizon_s -. 10.0 in
  let on_dur = stop_s -. start_s in
  let web_pairs =
    List.init 4 (fun i -> (h (i + 1), h (i + 1 + (switches / 2))))
    |> List.filter (fun (a, b) -> not (String.equal a b))
  in
  Traffic_spec.make ~sample_cap:4 ~loss_timeout_s:2.0
    [
      Traffic_spec.cls ~name:"video" ~payload:200 ~port:5006 ~start_s
        ~pairs:[ (h 2, h 3); (h 1, h 4); (h 7, h 5) ]
        (Traffic_spec.Cbr { rate_pps = 20.0; duration_s = on_dur });
      Traffic_spec.cls ~name:"bursty" ~payload:120 ~port:5007 ~start_s
        ~pairs:[ (h 3, h 2) ]
        (Traffic_spec.On_off
           { rate_pps = 40.0; on_s = 1.0; off_s = 2.0; duration_s = on_dur });
      Traffic_spec.cls ~name:"web" ~payload:64 ~port:5008 ~start_s
        ~pairs:web_pairs
        (Traffic_spec.Poisson
           {
             arrivals_per_s = 4.0;
             size_packets =
               Traffic_spec.Pareto { alpha = 1.3; xmin = 10; cap = 500 };
             packet_rate_pps = 200.0;
             until_s = stop_s;
           });
    ]

let traffic_link_capacity =
  { Rf_net.Link.bandwidth_bps = 10_000_000; queue_frames = 64 }

(* One measured scenario run: ring + one host per switch, the given
   fault plan, and the standard workload through the live data plane. *)
let traffic_ring_run ?telemetry ?profiler ~label ~seed ~switches ~horizon_s
    ~faults ~resync () =
  let spec = traffic_spec ~switches ~horizon_s () in
  let topo = Topo_gen.ring switches in
  for i = 1 to switches do
    let name = Printf.sprintf "h%02d" i in
    Topology.add_host topo name;
    ignore
      (Topology.connect topo (Topology.Host name)
         (Topology.Switch (Int64.of_int i)))
  done;
  let rpc_params =
    {
      Rf_rpc.Rpc_client.rto = Vtime.span_s 0.5;
      rto_max = Vtime.span_s 4.0;
      max_retries = 3;
      heartbeat_every = Vtime.span_s 1.0;
      heartbeat_jitter = 0.0;
      dead_after = 3;
      resync;
    }
  in
  let options =
    {
      Scenario.default_options with
      seed;
      rf_params = params ~vm_boot_s:2.0 ~parallel_boot:4 ();
      rpc_params;
      faults;
      link_capacity = Some traffic_link_capacity;
      profiler;
    }
  in
  let s = Scenario.build ~options topo in
  let engine = Scenario.engine s in
  let measure =
    Traffic_measure.create engine
      ~loss_timeout_s:spec.Traffic_spec.loss_timeout_s ()
  in
  let fabric =
    Traffic_gen.live_fabric measure
      ~hosts:(Rf_net.Network.hosts (Scenario.network s))
  in
  let rng = Rf_sim.Rng.create (seed + 1009) in
  ignore (Traffic_gen.start engine ~rng ~measure ~fabric spec);
  Scenario.run_for s (Vtime.span_s horizon_s);
  Traffic_measure.finalize measure;
  (match telemetry with
  | Some path ->
      Scenario.write_telemetry s path
        ~meta:
          [
            ("experiment", "traffic");
            ("run", label);
            ("flows", string_of_int (Traffic_measure.flow_count measure));
            ("offered", string_of_int (Traffic_measure.total_offered measure));
            ( "delivered",
              string_of_int (Traffic_measure.total_delivered measure) );
            ("lost", string_of_int (Traffic_measure.total_lost measure));
            ( "disruption_s",
              Printf.sprintf "%.3f" (Traffic_measure.disruption_seconds measure)
            );
          ]
  | None -> ());
  {
    tw_label = label;
    tw_flows = Traffic_measure.flow_count measure;
    tw_offered = Traffic_measure.total_offered measure;
    tw_delivered = Traffic_measure.total_delivered measure;
    tw_lost = Traffic_measure.total_lost measure;
    tw_disrupted_flows = Traffic_measure.disrupted_flows measure;
    tw_window = Traffic_measure.disruption_window measure;
    tw_disruption_s = Traffic_measure.disruption_seconds measure;
    tw_reconverged_s = to_s_opt (Scenario.reconverged_at s);
    tw_queue_dropped =
      Rf_net.Network.queue_dropped_frames (Scenario.network s);
    tw_classes = Traffic_measure.summaries measure;
  }

let traffic_disruption ?(seed = 42) ?(switches = 8) ?(fail_at_s = 40.0)
    ?(manual_response_s = 25.0) ?(crash_at_s = 25.0) ?(cut_at_s = 30.0)
    ?(recover_at_s = 45.0) ?(horizon_s = 90.0) ?telemetry ?profiler () =
  if switches < 8 then invalid_arg "traffic_disruption: need a ring of >= 8";
  if not (crash_at_s < cut_at_s && cut_at_s < recover_at_s) then
    invalid_arg "traffic_disruption: need crash < cut < recover";
  let cut_fault at = Rf_sim.Faults.link_down ~at_s:at 2L 3L in
  (* E3 scenario, automatic: the controller is up, hears the port-down,
     and the virtual topology reconverges on its own. *)
  let auto =
    traffic_ring_run ?telemetry ?profiler ~label:"automatic" ~seed ~switches ~horizon_s
      ~faults:(Rf_sim.Faults.plan [ cut_fault fail_at_s ])
      ~resync:true ()
  in
  (* Manual baseline: the same cut, but the routing control platform is
     down across it — the operator notices and brings it back only
     [manual_response_s] later, as with hand-driven configuration. *)
  let manual =
    traffic_ring_run ~label:"manual" ~seed ~switches ~horizon_s
      ~faults:
        (Rf_sim.Faults.(
           plan
             [
               controller_crash ~at_s:(fail_at_s -. 2.0) ();
               cut_fault fail_at_s;
               controller_recover ~at_s:(fail_at_s +. manual_response_s) ();
             ]))
      ~resync:true ()
  in
  (* E4 scenario: crash + cut + restart, reconciled vs legacy RPC. *)
  let restart_faults =
    Rf_sim.Faults.(
      plan
        [
          controller_crash ~at_s:crash_at_s ();
          cut_fault cut_at_s;
          controller_recover ~at_s:recover_at_s ();
        ])
  in
  let reconciled =
    traffic_ring_run ~label:"reconciled" ~seed ~switches ~horizon_s
      ~faults:restart_faults ~resync:true ()
  in
  let legacy =
    traffic_ring_run ~label:"legacy" ~seed ~switches ~horizon_s
      ~faults:restart_faults ~resync:false ()
  in
  {
    tr_seed = seed;
    tr_switches = switches;
    tr_fail_at_s = fail_at_s;
    tr_manual_response_s = manual_response_s;
    tr_crash_at_s = crash_at_s;
    tr_cut_at_s = cut_at_s;
    tr_recover_at_s = recover_at_s;
    tr_auto = auto;
    tr_manual = manual;
    tr_reconciled = reconciled;
    tr_legacy = legacy;
    tr_auto_shorter = auto.tw_disruption_s < manual.tw_disruption_s;
  }

let print_traffic_run ppf (r : traffic_run) =
  let window =
    match r.tw_window with
    | Some (a, b) -> Printf.sprintf "%.1f-%.1f s" a b
    | None -> "none"
  in
  Format.fprintf ppf
    "  %-12s disruption %6.1f s (window %s), %d/%d flows disrupted@."
    r.tw_label r.tw_disruption_s window r.tw_disrupted_flows r.tw_flows;
  Format.fprintf ppf
    "  %-12s packets: %d offered, %d delivered, %d lost; %d queue drops; \
     routes settled %s@."
    "" r.tw_offered r.tw_delivered r.tw_lost r.tw_queue_dropped
    (match r.tw_reconverged_s with
    | Some v -> Printf.sprintf "%.1f s" v
    | None -> "never")

let print_traffic_classes ppf (r : traffic_run) =
  Format.fprintf ppf "  per-class (%s run):@." r.tw_label;
  Format.fprintf ppf "    %-8s %6s %9s %10s %6s %6s %9s %9s@." "class" "flows"
    "offered" "delivered" "lost" "late" "p50 (ms)" "p99 (ms)";
  List.iter
    (fun (c : Traffic_measure.class_summary) ->
      let ms p =
        match c.Traffic_measure.cs_latency with
        | Some (s : Rf_sim.Stats.summary) ->
            Printf.sprintf "%.2f" (1000.0 *. p s)
        | None -> "-"
      in
      Format.fprintf ppf "    %-8s %6d %9d %10d %6d %6d %9s %9s@."
        c.Traffic_measure.cs_class c.Traffic_measure.cs_flows
        c.Traffic_measure.cs_offered c.Traffic_measure.cs_delivered
        c.Traffic_measure.cs_lost c.Traffic_measure.cs_late
        (ms (fun s -> s.Rf_sim.Stats.p50))
        (ms (fun s -> s.Rf_sim.Stats.p99)))
    r.tw_classes

let print_traffic ppf (r : traffic_result) =
  Format.fprintf ppf
    "Traffic disruption — %d-switch ring, one host per switch, 10 Mbit/s \
     links, 64-frame queues@."
    r.tr_switches;
  Format.fprintf ppf
    "E3 scenario: link sw2-sw3 cut at t=%.0fs (manual operator responds \
     %.0f s after the cut)@."
    r.tr_fail_at_s r.tr_manual_response_s;
  print_traffic_run ppf r.tr_auto;
  print_traffic_run ppf r.tr_manual;
  Format.fprintf ppf "  automatic disruption strictly shorter than manual: %b@."
    r.tr_auto_shorter;
  Format.fprintf ppf
    "E4 scenario: controller down t=%.0fs..%.0fs, cut at t=%.0fs while it \
     is down@."
    r.tr_crash_at_s r.tr_recover_at_s r.tr_cut_at_s;
  print_traffic_run ppf r.tr_reconciled;
  print_traffic_run ppf r.tr_legacy;
  print_traffic_classes ppf r.tr_auto;
  Format.fprintf ppf "  seed %d@." r.tr_seed

(* --- E6b: traffic scaling (fat-tree, aggregated flows) -------------- *)

type traffic_scale_result = {
  ts_k : int;
  ts_switches : int;
  ts_hosts : int;
  ts_links : int;
  ts_pairs : int;
  ts_flows : int;
  ts_samples : int;
  ts_offered : int;
  ts_delivered : int;
  ts_lost : int;
  ts_horizon_s : float;
  ts_events : int;
  ts_elapsed_s : float;
      (** wall-clock cost (CPU seconds); excluded from deterministic
          summaries *)
}

(* The E6b workload, shared between the legacy single-engine run and
   the sharded one: both must see the identical topology, pair list and
   spec — and, crucially, consume the pair RNG in the identical order —
   so their results stay comparable byte for byte. *)
type scaling_workload = {
  sw_topo : Topology.t;
  sw_hosts : int;
  sw_pairs : (string * string) list;
  sw_latency : src:string -> dst:string -> Vtime.span;
  sw_spec : Traffic_spec.t;
}

let scaling_host_index name =
  int_of_string (String.sub name 1 (String.length name - 1))

let scaling_workload ?(seed = 42) ?(k = 20) ?(pairs_per_host = 2)
    ?(arrivals_per_s = 2500.0) ?(horizon_s = 60.0) () =
  let topo = Topo_gen.fat_tree k in
  let hosts = Topo_gen.fat_tree_host_count k in
  (* A deterministic random pair list stands in for "everyone talks to
     a few peers". *)
  let pair_rng = Rf_sim.Rng.create (seed + 7919) in
  let pairs =
    List.init (hosts * pairs_per_host) (fun i ->
        let src = i mod hosts in
        let dst =
          let d = ref (Rf_sim.Rng.int pair_rng hosts) in
          while !d = src do
            d := Rf_sim.Rng.int pair_rng hosts
          done;
          !d
        in
        (Topo_gen.fat_tree_host_name src, Topo_gen.fat_tree_host_name dst))
  in
  let latency ~src ~dst =
    Vtime.span_ms
      (max 1
         (Topo_gen.fat_tree_hops ~k (scaling_host_index src)
            (scaling_host_index dst)))
  in
  let spec =
    Traffic_spec.make ~sample_cap:4 ~loss_timeout_s:2.0
      [
        Traffic_spec.cls ~name:"poisson" ~payload:512 ~port:5009 ~start_s:1.0
          ~pairs
          (Traffic_spec.Poisson
             {
               arrivals_per_s;
               size_packets =
                 Traffic_spec.Pareto { alpha = 1.3; xmin = 8; cap = 2000 };
               packet_rate_pps = 500.0;
               until_s = horizon_s -. 5.0;
             });
      ]
  in
  {
    sw_topo = topo;
    sw_hosts = hosts;
    sw_pairs = pairs;
    sw_latency = latency;
    sw_spec = spec;
  }

let traffic_scaling_run ?(seed = 42) ?(k = 20) ?(pairs_per_host = 2)
    ?(arrivals_per_s = 2500.0) ?(horizon_s = 60.0) ?profiler () =
  let w = scaling_workload ~seed ~k ~pairs_per_host ~arrivals_per_s ~horizon_s () in
  let engine = Rf_sim.Engine.create ~seed () in
  (match profiler with
  | Some p -> Rf_sim.Engine.set_profiler engine (Some p)
  | None -> ());
  let measure = Traffic_measure.create engine ~loss_timeout_s:2.0 () in
  let fabric = Traffic_gen.aggregate_fabric engine measure ~latency:w.sw_latency in
  let rng = Rf_sim.Rng.create (seed + 1009) in
  let gen = Traffic_gen.start engine ~rng ~measure ~fabric w.sw_spec in
  let t0 = Sys.time () in
  ignore (Rf_sim.Engine.run ~until:(Vtime.of_s horizon_s) engine);
  let elapsed = Sys.time () -. t0 in
  Traffic_measure.finalize measure;
  ( {
    ts_k = k;
    ts_switches = Topology.switch_count w.sw_topo;
    ts_hosts = w.sw_hosts;
    ts_links = Topology.edge_count w.sw_topo;
    ts_pairs = List.length w.sw_pairs;
    ts_flows = Traffic_gen.flows_launched gen;
    ts_samples = Traffic_gen.samples_sent gen;
    ts_offered = Traffic_measure.total_offered measure;
    ts_delivered = Traffic_measure.total_delivered measure;
    ts_lost = Traffic_measure.total_lost measure;
    ts_horizon_s = horizon_s;
    ts_events = Rf_sim.Engine.events_executed engine;
    ts_elapsed_s = elapsed;
  },
  engine )

let traffic_scaling ?seed ?k ?pairs_per_host ?arrivals_per_s ?horizon_s
    ?profiler () =
  fst
    (traffic_scaling_run ?seed ?k ?pairs_per_host ?arrivals_per_s ?horizon_s
       ?profiler ())

(* --- E9: controller-cluster failover under live traffic ------------- *)

type cluster_run = {
  cw_traffic : traffic_run;
  cw_replicas : int;
  cw_digest : string;  (** {!rf_state_digest} at the end of the run *)
  cw_elections : int;
  cw_failovers : int;
  cw_failover_s : float option;
      (** most recent leaderless interval, fault to re-election *)
  cw_leader : int option;
  cw_epoch : int32;
  cw_agree : bool;  (** live replicas end on the same committed log *)
  cw_applied : int;  (** committed entries surfaced to RouteFlow *)
  cw_reassignments : int;  (** switch sessions whose OpenFlow role flipped *)
  cw_rejected : int;  (** mutations fenced off outside the commit path *)
  cw_audit : audit_run option;
}

(* One measured scenario run like [traffic_ring_run], but with the
   RF-controller replicated [replicas] ways ([1] keeps the legacy
   single controller, so the baseline goes through the same code).
   [audit_from] attaches the forwarding-state auditor; its value is
   the first planned fault time, the steady-state upper bound. *)
let cluster_ring_run ?telemetry ?profiler ?(shards = 1) ?audit_from ~label
    ~seed ~switches ~replicas ~horizon_s ~traffic_start_s ~parallel_boot
    ~faults ()
    =
  let spec = traffic_spec ~start_s:traffic_start_s ~switches ~horizon_s () in
  let topo = Topo_gen.ring switches in
  for i = 1 to switches do
    let name = Printf.sprintf "h%02d" i in
    Topology.add_host topo name;
    ignore
      (Topology.connect topo (Topology.Host name)
         (Topology.Switch (Int64.of_int i)))
  done;
  let rpc_params =
    {
      Rf_rpc.Rpc_client.rto = Vtime.span_s 0.5;
      rto_max = Vtime.span_s 4.0;
      max_retries = 3;
      heartbeat_every = Vtime.span_s 1.0;
      heartbeat_jitter = 0.0;
      dead_after = 3;
      resync = true;
    }
  in
  let options =
    {
      Scenario.default_options with
      seed;
      rf_params = params ~vm_boot_s:2.0 ~parallel_boot ();
      rpc_params;
      faults;
      link_capacity = Some traffic_link_capacity;
      cluster_replicas = replicas;
      profiler;
      shards;
      audit = audit_from <> None;
    }
  in
  let s = Scenario.build ~options topo in
  let engine = Scenario.engine s in
  let measure =
    Traffic_measure.create engine
      ~loss_timeout_s:spec.Traffic_spec.loss_timeout_s ()
  in
  let fabric =
    Traffic_gen.live_fabric measure
      ~hosts:(Rf_net.Network.hosts (Scenario.network s))
  in
  let rng = Rf_sim.Rng.create (seed + 1009) in
  ignore (Traffic_gen.start engine ~rng ~measure ~fabric spec);
  Scenario.run_for s (Vtime.span_s horizon_s);
  Traffic_measure.finalize measure;
  let audit_run =
    Option.map
      (fun first_fault_s ->
        audit_run_of s ~label ~first_fault_s:(Some first_fault_s) ~horizon_s)
      audit_from
  in
  (match telemetry with
  | Some path ->
      Scenario.write_telemetry s path
        ~meta:
          ((match audit_run with
           | Some r -> audit_meta r
           | None -> [])
          @ [
            ("experiment", "cluster");
            ("run", label);
            ("flows", string_of_int (Traffic_measure.flow_count measure));
            ("offered", string_of_int (Traffic_measure.total_offered measure));
            ( "delivered",
              string_of_int (Traffic_measure.total_delivered measure) );
            ("lost", string_of_int (Traffic_measure.total_lost measure));
            ( "disruption_s",
              Printf.sprintf "%.3f" (Traffic_measure.disruption_seconds measure)
            );
          ])
  | None -> ());
  let traffic =
    {
      tw_label = label;
      tw_flows = Traffic_measure.flow_count measure;
      tw_offered = Traffic_measure.total_offered measure;
      tw_delivered = Traffic_measure.total_delivered measure;
      tw_lost = Traffic_measure.total_lost measure;
      tw_disrupted_flows = Traffic_measure.disrupted_flows measure;
      tw_window = Traffic_measure.disruption_window measure;
      tw_disruption_s = Traffic_measure.disruption_seconds measure;
      tw_reconverged_s = to_s_opt (Scenario.reconverged_at s);
      tw_queue_dropped =
        Rf_net.Network.queue_dropped_frames (Scenario.network s);
      tw_classes = Traffic_measure.summaries measure;
    }
  in
  let elections, failovers, failover_s, leader, epoch, agree, applied =
    match Scenario.cluster s with
    | Some cl ->
        ( Rf_rpc.Cluster.elections cl,
          Rf_rpc.Cluster.failovers cl,
          Rf_rpc.Cluster.last_failover_s cl,
          Rf_rpc.Cluster.leader cl,
          Rf_rpc.Cluster.leader_epoch cl,
          Rf_rpc.Cluster.converged cl,
          Rf_rpc.Cluster.applied cl )
    | None -> (0, 0, None, None, 0l, true, 0)
  in
  {
    cw_traffic = traffic;
    cw_replicas = replicas;
    cw_digest = rf_state_digest s;
    cw_elections = elections;
    cw_failovers = failovers;
    cw_failover_s = failover_s;
    cw_leader = leader;
    cw_epoch = epoch;
    cw_agree = agree;
    cw_applied = applied;
    cw_reassignments =
      Rf_routeflow.Rf_controller_app.reassignments (Scenario.rf_app s);
    cw_rejected = Rf_system.mutations_rejected (Scenario.rf_system s);
    cw_audit = audit_run;
  }

type cluster_result = {
  cf_seed : int;
  cf_switches : int;
  cf_replicas : int;
  cf_crash_at_s : float;
  cf_cut_at_s : float;
  cf_recover_at_s : float;
  cf_manual_response_s : float;
  cf_auto : cluster_run;  (** replicated: leader crash, automatic failover *)
  cf_legacy : cluster_run;
      (** single controller: same crash needs the operator *)
  cf_digest_match : bool;
      (** both deployments configured the network identically *)
  cf_auto_shorter : bool;
}

let cluster_failover ?(seed = 42) ?(switches = 28) ?(replicas = 3)
    ?(crash_at_s = 30.0) ?(cut_at_s = 36.0) ?(recover_at_s = 60.0)
    ?(manual_response_s = 25.0) ?(horizon_s = 120.0) ?(traffic_start_s = 20.0)
    ?(parallel_boot = 4) ?(shards = 1) ?(audit = false) ?telemetry ?profiler
    () =
  if switches < 8 then invalid_arg "cluster_failover: need a ring of >= 8";
  if replicas < 3 then invalid_arg "cluster_failover: need >= 3 replicas";
  if not (crash_at_s < cut_at_s && cut_at_s < recover_at_s) then
    invalid_arg "cluster_failover: need crash < cut < recover";
  let cut_fault at = Rf_sim.Faults.link_down ~at_s:at 2L 3L in
  (* Replicated: the acting leader (replica 0, the deterministic
     bootstrap winner) dies just before the link cut. The survivors
     elect a new leader within seconds, it takes the switch sessions
     back as master, and the cut is rerouted as if nothing happened to
     the control plane. Replica 0 later rejoins as a follower. *)
  let audit_from = if audit then Some crash_at_s else None in
  let auto =
    cluster_ring_run ?telemetry ?profiler ~shards ?audit_from
      ~label:"automatic" ~seed ~switches ~replicas ~horizon_s ~traffic_start_s
      ~parallel_boot
      ~faults:
        Rf_sim.Faults.(
          plan
            [
              controller_crash ~at_s:crash_at_s ~replica:0 ();
              cut_fault cut_at_s;
              controller_recover ~at_s:recover_at_s ~replica:0 ();
            ])
      ()
  in
  (* Single controller: the same crash takes the whole control plane
     down across the cut; the operator notices and restarts it only
     [manual_response_s] later, and resync reconciles from there. *)
  let legacy =
    cluster_ring_run ?audit_from ~label:"legacy" ~seed ~switches ~replicas:1
      ~horizon_s ~traffic_start_s ~parallel_boot
      ~faults:
        Rf_sim.Faults.(
          plan
            [
              controller_crash ~at_s:crash_at_s ();
              cut_fault cut_at_s;
              controller_recover ~at_s:(crash_at_s +. manual_response_s) ();
            ])
      ()
  in
  {
    cf_seed = seed;
    cf_switches = switches;
    cf_replicas = replicas;
    cf_crash_at_s = crash_at_s;
    cf_cut_at_s = cut_at_s;
    cf_recover_at_s = recover_at_s;
    cf_manual_response_s = manual_response_s;
    cf_auto = auto;
    cf_legacy = legacy;
    cf_digest_match = String.equal auto.cw_digest legacy.cw_digest;
    cf_auto_shorter =
      auto.cw_traffic.tw_disruption_s < legacy.cw_traffic.tw_disruption_s;
  }

let print_cluster ppf (r : cluster_result) =
  Format.fprintf ppf
    "Cluster failover — %d-switch ring, %d RF-controller replicas, 10 \
     Mbit/s links@."
    r.cf_switches r.cf_replicas;
  Format.fprintf ppf
    "scenario: leader crash at t=%.0fs, link sw2-sw3 cut at t=%.0fs, \
     crashed replica back at t=%.0fs@."
    r.cf_crash_at_s r.cf_cut_at_s r.cf_recover_at_s;
  print_traffic_run ppf r.cf_auto.cw_traffic;
  Format.fprintf ppf
    "  cluster: %d elections, %d failover(s), re-election in %s; leader %s \
     epoch %ld@."
    r.cf_auto.cw_elections r.cf_auto.cw_failovers
    (match r.cf_auto.cw_failover_s with
    | Some s -> Printf.sprintf "%.3f s" s
    | None -> "-")
    (match r.cf_auto.cw_leader with
    | Some l -> string_of_int l
    | None -> "none")
    r.cf_auto.cw_epoch;
  Format.fprintf ppf
    "  cluster: replicas agree on committed log %b, %d entries applied, %d \
     fenced mutations, %d session role flips@."
    r.cf_auto.cw_agree r.cf_auto.cw_applied r.cf_auto.cw_rejected
    r.cf_auto.cw_reassignments;
  Format.fprintf ppf
    "legacy baseline: single controller, operator restarts it %.0f s after \
     the crash@."
    r.cf_manual_response_s;
  print_traffic_run ppf r.cf_legacy.cw_traffic;
  Format.fprintf ppf "  RF state digest (cluster): %s@." r.cf_auto.cw_digest;
  Format.fprintf ppf "  RF state digest (legacy):  %s@." r.cf_legacy.cw_digest;
  Format.fprintf ppf
    "  both deployments configured the network identically: %b@."
    r.cf_digest_match;
  Format.fprintf ppf
    "  automatic disruption strictly shorter than legacy: %b@."
    r.cf_auto_shorter;
  Format.fprintf ppf "  seed %d@." r.cf_seed

let print_traffic_scaling ?(show_rate = false) ppf (r : traffic_scale_result) =
  Format.fprintf ppf
    "Traffic scaling — fat-tree k=%d: %d switches, %d links, %d hosts@."
    r.ts_k r.ts_switches r.ts_links r.ts_hosts;
  Format.fprintf ppf
    "  %d aggregated flows over %d pairs in %.0f s of virtual time@."
    r.ts_flows r.ts_pairs r.ts_horizon_s;
  Format.fprintf ppf
    "  %d probe datagrams standing for %d packets (%.1fx aggregation)@."
    r.ts_samples r.ts_offered
    (float_of_int r.ts_offered /. float_of_int (max 1 r.ts_samples));
  Format.fprintf ppf "  delivered %d, lost %d@." r.ts_delivered r.ts_lost;
  Format.fprintf ppf "  engine events %d@." r.ts_events;
  if show_rate then
    Format.fprintf ppf "  events/sec %.0f (%.2f s elapsed)@."
      (float_of_int r.ts_events /. Float.max 1e-9 r.ts_elapsed_s)
      r.ts_elapsed_s

(* --- E10: engine profile & shard-cut advisory ----------------------- *)

type profile_result = {
  pf_scale : traffic_scale_result;
  pf_snapshot : Rf_obs.Profiler.snapshot;
  pf_report : Rf_obs.Shard_advisor.report;
  pf_overhead_pct : float option;
}

let advisor_input_of topo (sn : Rf_obs.Profiler.snapshot) ~horizon_s =
  let node_id = function
    | Topology.Switch d -> Printf.sprintf "sw:%Ld" d
    | Topology.Host h -> "host:" ^ h
  in
  let weights = Hashtbl.create 997 in
  let add id w =
    match Hashtbl.find_opt weights id with
    | Some r -> r := !r + w
    | None -> Hashtbl.add weights id (ref w)
  in
  List.iter
    (fun (es : Rf_obs.Profiler.entity_stat) ->
      match es.es_kind with
      | Rf_obs.Profiler.Switch _ | Rf_obs.Profiler.Host _ ->
          add es.es_id es.es_events
      | Rf_obs.Profiler.Link (a, b) ->
          (* A link's propagation work straddles the cut between its
             endpoint domains: split it evenly so neither side looks
             lighter than the wire it terminates. *)
          let half = es.es_events / 2 in
          add (Printf.sprintf "sw:%Ld" a) half;
          add (Printf.sprintf "sw:%Ld" b) (es.es_events - half)
      | Rf_obs.Profiler.Unattributed | Rf_obs.Profiler.Idle
      | Rf_obs.Profiler.Component _ | Rf_obs.Profiler.Controller _ ->
          ())
    sn.Rf_obs.Profiler.sn_entities;
  let node_ids =
    List.map (fun d -> node_id (Topology.Switch d)) (Topology.switches topo)
    @ List.map (fun h -> node_id (Topology.Host h)) (Topology.hosts topo)
  in
  let known = Hashtbl.create 997 in
  List.iter (fun id -> Hashtbl.replace known id ()) node_ids;
  let nodes =
    List.map
      (fun id ->
        {
          Rf_obs.Shard_advisor.nd_id = id;
          nd_weight =
            (match Hashtbl.find_opt weights id with Some r -> !r | None -> 0);
        })
      node_ids
  in
  let adjacency =
    List.map
      (fun (e : Topology.edge) -> (node_id e.a, node_id e.b))
      (Topology.edges topo)
  in
  let edges =
    List.filter_map
      (fun (src, dst, count) ->
        if Hashtbl.mem known src && Hashtbl.mem known dst then
          Some { Rf_obs.Shard_advisor.ed_a = src; ed_b = dst; ed_msgs = count }
        else None)
      sn.Rf_obs.Profiler.sn_messages
  in
  {
    Rf_obs.Shard_advisor.in_nodes = nodes;
    in_edges = edges;
    in_adjacency = adjacency;
    in_horizon_s = horizon_s;
  }

let profile_scaling ?(seed = 42) ?(k = 20) ?(pairs_per_host = 2)
    ?(arrivals_per_s = 2500.0) ?(horizon_s = 60.0) ?(shards = 4)
    ?(measure_overhead = false) ?telemetry () =
  (* Best-of-3 on both sides: single-sample wall-clock deltas on a
     shared machine swing by more than the effect being measured. The
     first baseline run also warms caches for everything after it. *)
  let best_of_3 run = Float.min (run ()) (Float.min (run ()) (run ())) in
  let baseline =
    if measure_overhead then
      Some
        (best_of_3 (fun () ->
             (traffic_scaling ~seed ~k ~pairs_per_host ~arrivals_per_s
                ~horizon_s ())
               .ts_elapsed_s))
    else None
  in
  let profiler = Rf_obs.Profiler.create () in
  let scale, engine =
    traffic_scaling_run ~seed ~k ~pairs_per_host ~arrivals_per_s ~horizon_s
      ~profiler ()
  in
  let profiled_s =
    if measure_overhead then
      Float.min scale.ts_elapsed_s
        (best_of_3 (fun () ->
             let again, _ =
               traffic_scaling_run ~seed ~k ~pairs_per_host ~arrivals_per_s
                 ~horizon_s
                 ~profiler:(Rf_obs.Profiler.create ())
                 ()
             in
             again.ts_elapsed_s))
    else scale.ts_elapsed_s
  in
  let sn = Rf_obs.Profiler.snapshot profiler in
  let input = advisor_input_of (Topo_gen.fat_tree k) sn ~horizon_s in
  let report = Rf_obs.Shard_advisor.partition ~k:shards input in
  Rf_obs.Profiler.emit sn
    ~tracer:(Rf_sim.Engine.tracer engine)
    ~metrics:(Rf_sim.Engine.metrics engine)
    ~now_us:(Vtime.to_us (Rf_sim.Engine.now engine));
  (match telemetry with
  | Some path ->
      let meta =
        [
          ("experiment", "profile");
          ("seed", string_of_int seed);
          ("k", string_of_int k);
          ("shards", string_of_int shards);
          ("horizon_s", Printf.sprintf "%.0f" horizon_s);
        ]
        @ Rf_obs.Profiler.meta sn
        @ Rf_obs.Shard_advisor.meta report
      in
      let oc = open_out path in
      output_string oc (Rf_obs.Export.jsonl ~meta (Rf_sim.Engine.tracer engine));
      close_out oc
  | None -> ());
  let overhead =
    Option.map
      (fun b -> (profiled_s -. b) /. Float.max 1e-9 b *. 100.)
      baseline
  in
  {
    pf_scale = scale;
    pf_snapshot = sn;
    pf_report = report;
    pf_overhead_pct = overhead;
  }

let print_profile ?(wall = false) ?(top = 10) ppf (r : profile_result) =
  print_traffic_scaling ~show_rate:wall ppf r.pf_scale;
  Rf_obs.Profiler.pp_top ~wall ~top ppf r.pf_snapshot;
  Rf_obs.Profiler.pp_depth_curve ppf r.pf_snapshot;
  Rf_obs.Shard_advisor.pp_report ppf r.pf_report;
  match (wall, r.pf_overhead_pct) with
  | true, Some pct ->
      Format.fprintf ppf "profiling overhead: %+.1f%% wall clock@." pct
  | true, None | false, _ -> ()

(* --- E11: sharded-engine speedup ------------------------------------ *)

module Shard_run = Rf_traffic.Shard_run

type shard_speedup_run = {
  su_shards : int;
  su_mode : Rf_sim.Shard_engine.mode;
  su_lookahead_us : int;
  su_windows : int;
  su_events : int;
  su_cross_msgs : int;
  su_digest : string;
  su_fingerprint : string;
  su_elapsed_s : float;
  su_speedup : float;
  su_bound : float;
}

type shard_result = {
  sh_seed : int;
  sh_k : int;
  sh_hosts : int;
  sh_pairs : int;
  sh_horizon_s : float;
  sh_flows : int;
  sh_samples : int;
  sh_offered : int;
  sh_delivered : int;
  sh_lost : int;
  sh_legacy_events : int;
  sh_legacy_elapsed_s : float;
  sh_legacy_agrees : bool;
  sh_advisor_bounds : (int * float) list;
  sh_runs : shard_speedup_run list;
  sh_deterministic : bool;
}

(* The default static cut: contiguous blocks of host indices, so pods
   stay together and the cut crosses only inter-pod pairs. *)
let block_cut ~hosts n host = scaling_host_index host * n / hosts

(* Host→shard lookup from an advisor assignment: entities carry the
   advisor's "host:<name>" ids, but accept bare names too so maps from
   other producers keep working. *)
let assignment_cut assignment =
  let tbl = Hashtbl.create 997 in
  List.iter (fun (id, s) -> Hashtbl.replace tbl id s) assignment;
  fun host ->
    match Hashtbl.find_opt tbl ("host:" ^ host) with
    | Some s -> s
    | None -> (
        match Hashtbl.find_opt tbl host with
        | Some s -> s
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Experiment: shard map has no entry for host %s" host))

let shard_speedup ?(seed = 42) ?(k = 10) ?(pairs_per_host = 2)
    ?(arrivals_per_s = 2500.0) ?(horizon_s = 20.0)
    ?(shard_counts = [ 1; 2; 4; 8 ]) ?(mode = Rf_sim.Shard_engine.Parallel)
    ?(advisor_cut = false) ?cut () =
  let w =
    scaling_workload ~seed ~k ~pairs_per_host ~arrivals_per_s ~horizon_s ()
  in
  (* The legacy single-engine run doubles as the differential oracle and
     as the load profile the Amdahl bounds are computed from. *)
  let profiler = Rf_obs.Profiler.create () in
  let legacy, _engine =
    traffic_scaling_run ~seed ~k ~pairs_per_host ~arrivals_per_s ~horizon_s
      ~profiler ()
  in
  let sn = Rf_obs.Profiler.snapshot profiler in
  let input = advisor_input_of w.sw_topo sn ~horizon_s in
  (* Only hosts carry events in the aggregated-fabric model, so only
     host weights gate a cut's balance. *)
  let host_weight = Hashtbl.create 997 in
  List.iter
    (fun (nd : Rf_obs.Shard_advisor.node) ->
      if String.length nd.nd_id > 5 && String.sub nd.nd_id 0 5 = "host:" then
        Hashtbl.replace host_weight
          (String.sub nd.nd_id 5 (String.length nd.nd_id - 5))
          nd.nd_weight)
    input.Rf_obs.Shard_advisor.in_nodes;
  let bound_for n assign =
    let per = Array.make n 0 in
    let total = ref 0 in
    Hashtbl.iter
      (fun h wt ->
        let s = assign h in
        if s >= 0 && s < n then per.(s) <- per.(s) + wt;
        total := !total + wt)
      host_weight;
    let mx = Array.fold_left max 0 per in
    if mx = 0 then 1.0 else float_of_int !total /. float_of_int mx
  in
  let cut_for n =
    match cut with
    | Some f -> f n
    | None when advisor_cut && n >= 2 ->
        assignment_cut
          (Rf_obs.Shard_advisor.shard_assignment
             (Rf_obs.Shard_advisor.partition ~k:n input))
    | None -> block_cut ~hosts:w.sw_hosts n
  in
  let advisor_bounds =
    List.filter_map
      (fun n ->
        if n < 2 then None
        else
          let report = Rf_obs.Shard_advisor.partition ~k:n input in
          Some (n, report.Rf_obs.Shard_advisor.rp_speedup_bound))
      shard_counts
  in
  let raw_runs =
    List.map
      (fun n ->
        let assign = cut_for n in
        let m = if n = 1 then Rf_sim.Shard_engine.Sequential else mode in
        let rng = Rf_sim.Rng.create (seed + 1009) in
        let r =
          Shard_run.run ~seed ~mode:m ~shards:n ~assign ~latency:w.sw_latency
            ~horizon_s ~rng w.sw_spec
        in
        (n, m, assign, r))
      shard_counts
  in
  let base_elapsed =
    match
      List.find_opt (fun (n, _, _, _) -> n = 1) raw_runs
    with
    | Some (_, _, _, r) -> r.Shard_run.sr_elapsed_s
    | None -> (
        match raw_runs with
        | (_, _, _, r) :: _ -> r.Shard_run.sr_elapsed_s
        | [] -> invalid_arg "Experiment.shard_speedup: shard_counts is empty")
  in
  let runs =
    List.map
      (fun (n, m, assign, (r : Shard_run.result)) ->
        {
          su_shards = n;
          su_mode = m;
          su_lookahead_us = Vtime.span_to_us r.sr_lookahead;
          su_windows = r.sr_windows;
          su_events = r.sr_events;
          su_cross_msgs = r.sr_cross_msgs;
          su_digest = r.sr_digest;
          su_fingerprint = r.sr_fingerprint;
          su_elapsed_s = r.sr_elapsed_s;
          su_speedup = base_elapsed /. Float.max 1e-9 r.sr_elapsed_s;
          su_bound = (if n = 1 then 1.0 else bound_for n assign);
        })
      raw_runs
  in
  let first =
    match raw_runs with
    | (_, _, _, r) :: _ -> r
    | [] -> assert false
  in
  let legacy_agrees =
    legacy.ts_flows = first.sr_flows
    && legacy.ts_samples = first.sr_samples
    && legacy.ts_offered = first.sr_offered
    && legacy.ts_delivered = first.sr_delivered
    && legacy.ts_lost = first.sr_lost
  in
  let deterministic =
    List.for_all (fun su -> String.equal su.su_digest first.sr_digest) runs
  in
  {
    sh_seed = seed;
    sh_k = k;
    sh_hosts = w.sw_hosts;
    sh_pairs = List.length w.sw_pairs;
    sh_horizon_s = horizon_s;
    sh_flows = first.sr_flows;
    sh_samples = first.sr_samples;
    sh_offered = first.sr_offered;
    sh_delivered = first.sr_delivered;
    sh_lost = first.sr_lost;
    sh_legacy_events = legacy.ts_events;
    sh_legacy_elapsed_s = legacy.ts_elapsed_s;
    sh_legacy_agrees = legacy_agrees;
    sh_advisor_bounds = advisor_bounds;
    sh_runs = runs;
    sh_deterministic = deterministic;
  }

let shard_mode_name = function
  | Rf_sim.Shard_engine.Parallel -> "parallel"
  | Rf_sim.Shard_engine.Sequential -> "sequential"

let print_shard ?(wall = false) ppf (r : shard_result) =
  Format.fprintf ppf
    "Shard speedup — fat-tree k=%d: %d hosts, %d pairs, %.0f s of virtual time@."
    r.sh_k r.sh_hosts r.sh_pairs r.sh_horizon_s;
  Format.fprintf ppf "  %d flows, %d probes: offered %d = delivered %d + lost %d@."
    r.sh_flows r.sh_samples r.sh_offered r.sh_delivered r.sh_lost;
  Format.fprintf ppf "  legacy single-engine run agrees: %b (%d events)@."
    r.sh_legacy_agrees r.sh_legacy_events;
  Format.fprintf ppf "  digests identical across shard counts: %b@."
    r.sh_deterministic;
  (match r.sh_runs with
  | first :: _ ->
      Format.fprintf ppf "  run digest %s@." first.su_digest;
      Format.fprintf ppf "  summary fingerprint %s@." first.su_fingerprint
  | [] -> ());
  List.iter
    (fun su ->
      Format.fprintf ppf
        "  shards %d (%s): lookahead %d us, %d windows, %d events, %d cross msgs, bound %.2fx"
        su.su_shards (shard_mode_name su.su_mode) su.su_lookahead_us
        su.su_windows su.su_events su.su_cross_msgs su.su_bound;
      if wall then
        Format.fprintf ppf ", speedup %.2fx (%.3f s)" su.su_speedup
          su.su_elapsed_s;
      Format.fprintf ppf "@.")
    r.sh_runs;
  List.iter
    (fun (n, b) ->
      Format.fprintf ppf "  advisor bound at k=%d: %.2fx@." n b)
    r.sh_advisor_bounds;
  Format.fprintf ppf "  seed %d@." r.sh_seed

let scaling_sharded ?(seed = 42) ?(k = 20) ?(pairs_per_host = 2)
    ?(arrivals_per_s = 2500.0) ?(horizon_s = 60.0)
    ?(mode = Rf_sim.Shard_engine.Parallel) ?(profile = false) ?assignment
    ~shards () =
  let w =
    scaling_workload ~seed ~k ~pairs_per_host ~arrivals_per_s ~horizon_s ()
  in
  let assign =
    match assignment with
    | Some a -> assignment_cut a
    | None -> block_cut ~hosts:w.sw_hosts shards
  in
  let mode = if shards = 1 then Rf_sim.Shard_engine.Sequential else mode in
  let rng = Rf_sim.Rng.create (seed + 1009) in
  Shard_run.run ~seed ~mode ~profile ~shards ~assign ~latency:w.sw_latency
    ~horizon_s ~rng w.sw_spec

let print_scaling_sharded ?(wall = false) ppf (r : Shard_run.result) =
  Format.fprintf ppf
    "Sharded scaling — %d shards (%s), lookahead %d us, %d windows@."
    r.Shard_run.sr_shards (shard_mode_name r.sr_mode)
    (Vtime.span_to_us r.sr_lookahead) r.sr_windows;
  Format.fprintf ppf "  %d flows, %d probes: offered %d = delivered %d + lost %d@."
    r.sr_flows r.sr_samples r.sr_offered r.sr_delivered r.sr_lost;
  Format.fprintf ppf "  engine events %d, cross-shard msgs %d@." r.sr_events
    r.sr_cross_msgs;
  Format.fprintf ppf "  digest %s@.  fingerprint %s@." r.sr_digest
    r.sr_fingerprint;
  if wall then
    Format.fprintf ppf "  events/sec %.0f (%.2f s elapsed)@."
      (float_of_int r.sr_events /. Float.max 1e-9 r.sr_elapsed_s)
      r.sr_elapsed_s

(* --- E12: forwarding-state audit of the fault replays -------------- *)

type audit_pair = {
  ap_name : string;
  ap_detail : string;
  ap_switches : int;
  ap_auto : audit_run;
  ap_legacy : audit_run;
}

type audit_result = {
  ad_seed : int;
  ad_pairs : audit_pair list;
  ad_steady_total : int;  (** steady-state violations across every run *)
}

(* One audited control-plane replay: the ring with one host per switch
   (every subnet is a configured prefix, so blackhole coverage is
   total), the aggressive RPC supervision of the fault experiments, no
   traffic workload — E12 watches the forwarding *state*, not the
   packets, so the runs stay cheap enough to fingerprint in CI. *)
let audit_ring_run ?telemetry ~scenario ~label ~seed ~switches ~replicas
    ~resync ~faults ~first_fault_s ~horizon_s () =
  let topo = Topo_gen.ring switches in
  for i = 1 to switches do
    let name = Printf.sprintf "h%02d" i in
    Topology.add_host topo name;
    ignore
      (Topology.connect topo (Topology.Host name)
         (Topology.Switch (Int64.of_int i)))
  done;
  let rpc_params =
    {
      Rf_rpc.Rpc_client.rto = Vtime.span_s 0.5;
      rto_max = Vtime.span_s 4.0;
      max_retries = 3;
      heartbeat_every = Vtime.span_s 1.0;
      heartbeat_jitter = 0.0;
      dead_after = 3;
      resync;
    }
  in
  let options =
    {
      Scenario.default_options with
      seed;
      rf_params = params ~vm_boot_s:2.0 ~parallel_boot:4 ();
      rpc_params;
      faults;
      cluster_replicas = replicas;
      audit = true;
    }
  in
  let s = Scenario.build ~options topo in
  Scenario.run_for s (Vtime.span_s horizon_s);
  let run =
    audit_run_of s ~label ~first_fault_s:(Some first_fault_s) ~horizon_s
  in
  (match telemetry with
  | Some path ->
      Scenario.write_telemetry s path
        ~meta:
          ([ ("experiment", "audit"); ("scenario", scenario); ("run", label) ]
          @ audit_meta run)
  | None -> ());
  run

let audit_windows ?(seed = 42) ?(e3_switches = 6) ?(e4_switches = 8)
    ?(e9_switches = 28) ?(e9_replicas = 3) ?telemetry () =
  if e3_switches < 4 || e4_switches < 4 then
    invalid_arg "audit_windows: need rings of >= 4";
  if e9_switches < 8 then invalid_arg "audit_windows: need an E9 ring >= 8";
  if e9_replicas < 3 then invalid_arg "audit_windows: need >= 3 replicas";
  let cut at = Rf_sim.Faults.link_down ~at_s:at 2L 3L in
  (* E3 replay: link sw2-sw3 cut at t=60 s with the controller up
     (automatic) vs. down across the cut until the operator responds
     (legacy, the E6 manual baseline). *)
  let e3 =
    let auto =
      audit_ring_run ~scenario:"e3-link-cut" ~label:"automatic" ~seed
        ~switches:e3_switches ~replicas:1 ~resync:true
        ~faults:(Rf_sim.Faults.plan [ cut 60.0 ])
        ~first_fault_s:60.0 ~horizon_s:150.0 ()
    in
    let legacy =
      audit_ring_run ~scenario:"e3-link-cut" ~label:"legacy" ~seed
        ~switches:e3_switches ~replicas:1 ~resync:true
        ~faults:
          Rf_sim.Faults.(
            plan
              [
                controller_crash ~at_s:58.0 ();
                cut 60.0;
                controller_recover ~at_s:85.0 ();
              ])
        ~first_fault_s:58.0 ~horizon_s:150.0 ()
    in
    {
      ap_name = "e3-link-cut";
      ap_detail =
        "link sw2-sw3 cut at t=60s; legacy: controller down 58s..85s";
      ap_switches = e3_switches;
      ap_auto = auto;
      ap_legacy = legacy;
    }
  in
  (* E4 replay: crash at 4 s, cut at 8 s while down, restart at 20 s —
     reconciling RPC session (automatic) vs. the legacy session that
     never hears of the cut. *)
  let e4 =
    let faults =
      Rf_sim.Faults.(
        plan
          [
            controller_crash ~at_s:4.0 ();
            cut 8.0;
            controller_recover ~at_s:20.0 ();
          ])
    in
    let run label resync =
      audit_ring_run ~scenario:"e4-restart" ~label ~seed
        ~switches:e4_switches ~replicas:1 ~resync ~faults ~first_fault_s:4.0
        ~horizon_s:120.0 ()
    in
    {
      ap_name = "e4-restart";
      ap_detail =
        "controller down 4s..20s, link sw2-sw3 cut at t=8s; legacy: no \
         resync";
      ap_switches = e4_switches;
      ap_auto = run "automatic" true;
      ap_legacy = run "legacy" false;
    }
  in
  (* E9 replay: the acting leader dies at 30 s, the cut lands at 36 s —
     replicated failover (automatic) vs. the single controller waiting
     25 s for the operator (legacy). Telemetry captures the automatic
     run: its audit.violation spans are the headline windows. *)
  let e9 =
    let auto =
      audit_ring_run ?telemetry ~scenario:"e9-leader-crash" ~label:"automatic"
        ~seed ~switches:e9_switches ~replicas:e9_replicas ~resync:true
        ~faults:
          Rf_sim.Faults.(
            plan
              [
                controller_crash ~at_s:30.0 ~replica:0 ();
                cut 36.0;
                controller_recover ~at_s:60.0 ~replica:0 ();
              ])
        ~first_fault_s:30.0 ~horizon_s:120.0 ()
    in
    let legacy =
      audit_ring_run ~scenario:"e9-leader-crash" ~label:"legacy" ~seed
        ~switches:e9_switches ~replicas:1 ~resync:true
        ~faults:
          Rf_sim.Faults.(
            plan
              [
                controller_crash ~at_s:30.0 ();
                cut 36.0;
                controller_recover ~at_s:55.0 ();
              ])
        ~first_fault_s:30.0 ~horizon_s:120.0 ()
    in
    {
      ap_name = "e9-leader-crash";
      ap_detail =
        "leader crash at t=30s, link sw2-sw3 cut at t=36s; legacy: single \
         controller back at t=55s";
      ap_switches = e9_switches;
      ap_auto = auto;
      ap_legacy = legacy;
    }
  in
  let pairs = [ e3; e4; e9 ] in
  {
    ad_seed = seed;
    ad_pairs = pairs;
    ad_steady_total =
      List.fold_left
        (fun acc p ->
          acc + p.ap_auto.ar_steady_windows + p.ap_legacy.ar_steady_windows)
        0 pairs;
  }

let print_audit ppf (r : audit_result) =
  Format.fprintf ppf
    "Forwarding-state audit — E3/E4/E9 fault replays, one host per switch \
     (seed %d)@."
    r.ad_seed;
  List.iter
    (fun p ->
      Format.fprintf ppf "[%s] %d-switch ring — %s@." p.ap_name p.ap_switches
        p.ap_detail;
      print_audit_run ppf p.ap_auto;
      print_audit_run ppf p.ap_legacy)
    r.ad_pairs;
  Format.fprintf ppf "steady-state violations across all runs: %d@."
    r.ad_steady_total
