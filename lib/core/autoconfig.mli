(** The automatic-configuration framework (the paper's contribution).

    Binds the topology controller's discovery events to RouteFlow
    configuration messages: a detected switch becomes a [Switch_up] RPC
    carrying (dpid, port count); a detected link triggers allocation of
    a /30 from the administrator's range and a [Link_up] RPC carrying
    the VM interface addresses; host-facing subnets from the
    administrator's static input are pushed as [Edge_subnet] RPCs. *)

open Rf_packet

type admin_config = {
  ac_range : Ipv4_addr.Prefix.t;
      (** the virtual environment's IP range — the paper's only manual
          input *)
  ac_edges : (int64 * int * Ipv4_addr.Prefix.t) list;
      (** host attachment points: switch, port, subnet (gateway = .1) *)
}

type t

val create :
  Rf_sim.Engine.t ->
  Rf_controller.Discovery.t ->
  Rf_rpc.Rpc_client.t ->
  admin_config ->
  t
(** Installs itself as the discovery module's event consumer, and as
    the RPC client's snapshot provider: on a session resync the full
    authoritative view (current switches, their edge subnets, current
    links with their existing address allocations) is rebuilt from the
    discovery state and sent as one [Sync_snapshot]. *)

val snapshot : t -> Rf_rpc.Rpc_msg.t list
(** The authoritative view, in application order (switches, then
    edges, then links). Link addresses come from the live allocation
    table, so a snapshot never renumbers a known link. *)

val snapshots_built : t -> int

val allocator : t -> Ip_alloc.t

val switches_reported : t -> int

val links_reported : t -> int

val set_on_switch_reported : t -> (int64 -> unit) -> unit
(** For GUI/experiment instrumentation. *)
