open Rf_packet
module Discovery = Rf_controller.Discovery

type admin_config = {
  ac_range : Ipv4_addr.Prefix.t;
  ac_edges : (int64 * int * Ipv4_addr.Prefix.t) list;
}

type link_alloc = { la_a : Ipv4_addr.t; la_b : Ipv4_addr.t; la_len : int }

type t = {
  engine : Rf_sim.Engine.t;
  disc : Discovery.t;
  rpc : Rf_rpc.Rpc_client.t;
  config : admin_config;
  alloc : Ip_alloc.t;
  link_allocs : (Discovery.link, link_alloc) Hashtbl.t;
  mutable switches : int;
  mutable links : int;
  mutable snapshots : int;
  mutable on_switch_reported : int64 -> unit;
}

let physical_ports ports =
  List.length
    (List.filter
       (fun (p : Rf_openflow.Of_msg.phys_port) ->
         Rf_openflow.Of_port.is_physical p.port_no)
       ports)

let alloc_for t link =
  match Hashtbl.find_opt t.link_allocs link with
  | Some a -> a (* a re-appearing link keeps its addresses *)
  | None ->
      let a, b, len = Ip_alloc.alloc_p2p t.alloc in
      let a = { la_a = a; la_b = b; la_len = len } in
      Hashtbl.replace t.link_allocs link a;
      a

let link_up_msg t link =
  let alloc = alloc_for t link in
  Rf_rpc.Rpc_msg.Link_up
    {
      a_dpid = link.Discovery.la_dpid;
      a_port = link.Discovery.la_port;
      a_ip = alloc.la_a;
      a_prefix_len = alloc.la_len;
      b_dpid = link.Discovery.lb_dpid;
      b_port = link.Discovery.lb_port;
      b_ip = alloc.la_b;
      b_prefix_len = alloc.la_len;
    }

let edge_msgs t dpid =
  List.filter_map
    (fun (edpid, port, subnet) ->
      if Int64.equal edpid dpid then
        Some
          (Rf_rpc.Rpc_msg.Edge_subnet
             {
               dpid;
               port;
               gateway = Ipv4_addr.Prefix.host subnet 1;
               prefix_len = Ipv4_addr.Prefix.length subnet;
             })
      else None)
    t.config.ac_edges

(* The topology controller's authoritative view as one message list in
   application order (switches, then edges, then links), used as the
   anti-entropy snapshot after an RF-controller restart. Addresses come
   from the same allocation table the live events use, so a snapshot
   never renumbers anything. *)
let snapshot t =
  t.snapshots <- t.snapshots + 1;
  let switches = Discovery.switches t.disc in
  let switch_msgs =
    List.map
      (fun (dpid, ports) ->
        Rf_rpc.Rpc_msg.Switch_up { dpid; n_ports = physical_ports ports })
      switches
  in
  let edges = List.concat_map (fun (dpid, _) -> edge_msgs t dpid) switches in
  let links = List.map (link_up_msg t) (Discovery.links t.disc) in
  Rf_sim.Engine.record t.engine ~component:"autoconf" ~event:"snapshot"
    (Printf.sprintf "%d switches, %d edges, %d links"
       (List.length switch_msgs) (List.length edges) (List.length links));
  switch_msgs @ edges @ links

let create engine disc rpc config =
  let t =
    {
      engine;
      disc;
      rpc;
      config;
      alloc = Ip_alloc.create config.ac_range;
      link_allocs = Hashtbl.create 64;
      switches = 0;
      links = 0;
      snapshots = 0;
      on_switch_reported = (fun _ -> ());
    }
  in
  Rf_rpc.Rpc_client.set_snapshot_provider rpc (fun () -> snapshot t);
  let tracer = Rf_sim.Engine.tracer engine in
  let metrics = Rf_sim.Engine.metrics engine in
  let switches_seen =
    Rf_obs.Metrics.counter metrics ~help:"Switches reported over RPC"
      "autoconf_switches_total"
  in
  let links_seen =
    Rf_obs.Metrics.counter metrics ~help:"Links reported over RPC"
      "autoconf_links_total"
  in
  let discovery_latency =
    Rf_obs.Metrics.histogram metrics
      ~help:"Switch attach to topology-controller detection"
      "autoconf_discovery_seconds"
  in
  Discovery.set_on_switch_up disc (fun dpid ports ->
      t.switches <- t.switches + 1;
      Rf_obs.Metrics.incr switches_seen;
      let physical = physical_ports ports in
      (* Detection closes this switch's discovery phase and opens its
         RPC phase (closed by the client when the Switch_up frame is
         acknowledged). *)
      (match
         Rf_obs.Tracer.take tracer ~key:(Printf.sprintf "disc:%Ld" dpid)
       with
      | Some disc_span ->
          (match Rf_obs.Tracer.find_span tracer disc_span with
          | Some sp ->
              Rf_obs.Metrics.observe discovery_latency
                (float_of_int
                   (Rf_obs.Tracer.now_us tracer - sp.Rf_obs.Tracer.start_us)
                /. 1e6)
          | None -> ());
          Rf_obs.Tracer.span_end tracer disc_span
      | None -> ());
      let parent =
        Rf_obs.Tracer.correlated tracer ~key:(Printf.sprintf "cfg:%Ld" dpid)
      in
      let rpc_span = Rf_obs.Tracer.span_start tracer ?parent "phase.rpc" in
      Rf_obs.Tracer.correlate tracer
        ~key:(Printf.sprintf "rpc:%Ld" dpid)
        rpc_span;
      Rf_sim.Engine.record engine ~component:"autoconf" ~event:"switch-detected"
        (Printf.sprintf "sw%Ld ports=%d" dpid physical);
      Rf_rpc.Rpc_client.send rpc
        (Rf_rpc.Rpc_msg.Switch_up { dpid; n_ports = physical });
      List.iter (Rf_rpc.Rpc_client.send rpc) (edge_msgs t dpid);
      t.on_switch_reported dpid);
  Discovery.set_on_link_up disc (fun link ->
      t.links <- t.links + 1;
      Rf_obs.Metrics.incr links_seen;
      Rf_sim.Engine.record engine ~component:"autoconf" ~event:"link-detected"
        (Format.asprintf "%a" Discovery.pp_link link);
      Rf_rpc.Rpc_client.send rpc (link_up_msg t link));
  Discovery.set_on_switch_down disc (fun dpid ->
      Rf_rpc.Rpc_client.send rpc (Rf_rpc.Rpc_msg.Switch_down { dpid }));
  Discovery.set_on_link_down disc (fun link ->
      Rf_rpc.Rpc_client.send rpc
        (Rf_rpc.Rpc_msg.Link_down
           {
             a_dpid = link.Discovery.la_dpid;
             a_port = link.Discovery.la_port;
             b_dpid = link.Discovery.lb_dpid;
             b_port = link.Discovery.lb_port;
           }));
  t

let allocator t = t.alloc

let switches_reported t = t.switches

let links_reported t = t.links

let snapshots_built t = t.snapshots

let set_on_switch_reported t f = t.on_switch_reported <- f
