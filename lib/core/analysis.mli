(** Trace analytics over the experiments: standard SLO rule sets,
    critical paths, flamegraph forests and baseline indicators, all
    derived from a telemetry dump ({!Rf_obs.Ingest.dump}) — whether
    just produced by a live run or replayed from a JSONL file.

    Thresholds are calibrated to the seed-42 defaults: warn sits above
    the observed value with headroom, fail marks a broken run, so the
    scorecard of an unmodified run is all-PASS and byte-identical
    across invocations — CI diffs it as the E7 fingerprint. *)

type experiment = E1b | E3 | E4 | E6 | E9 | E10 | E12

val all : experiment list
(** In E-number order. E9, E10 and E12 are excluded — [all] drives
    the pinned E7 scorecard fingerprint; ask for them explicitly. *)

val name : experiment -> string
(** ["e1b"] / ["e3"] / ["e4"] / ["e6"] / ["e9"] / ["e10"] / ["e12"] *)

val of_string : string -> experiment option

val describe : experiment -> string

val run_dump : ?seed:int -> experiment -> Rf_obs.Ingest.dump
(** Runs the experiment with its standard parameters (E1b pins the CI
    fingerprint parameters: 8-switch ring, 2 s boots) writing telemetry
    to a temp file, then ingests it — the exact pipeline a replayed
    file goes through. *)

val rules : experiment -> Rf_obs.Slo.rule list
(** The standard rule set; every set ends with a
    [<exp>.dropped_records] completeness guard. *)

val evaluate : experiment -> Rf_obs.Ingest.dump -> Rf_obs.Slo.result list

val indicators_of_results :
  Rf_obs.Slo.result list -> Rf_obs.Baseline.indicator list
(** One indicator per rule that produced a value: the rule's direction
    determines [i_lower_is_better]. *)

val baseline_run :
  label:string -> Rf_obs.Slo.result list -> Rf_obs.Baseline.run

val forest : Rf_obs.Ingest.dump -> Rf_obs.Critical_path.node list

val configure_path :
  Rf_obs.Ingest.dump -> Rf_obs.Critical_path.step list option
(** Critical path of the longest [sw.configure] span, [None] when the
    dump has none. *)

val scorecard : Format.formatter -> Rf_obs.Slo.result list -> unit
