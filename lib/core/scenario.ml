open Rf_packet
module Topology = Rf_net.Topology
module Network = Rf_net.Network
module Channel = Rf_net.Channel
module Flowvisor = Rf_flowvisor.Flowvisor
module Flowspace = Rf_flowvisor.Flowspace
module Discovery = Rf_controller.Discovery
module Rf_system = Rf_routeflow.Rf_system
module Rf_controller_app = Rf_routeflow.Rf_controller_app
module Rf_vs = Rf_routeflow.Rf_vs

type options = {
  seed : int;
  rf_params : Rf_system.params;
  rpc_params : Rf_rpc.Rpc_client.params;
  probe_interval : Rf_sim.Vtime.span;
  control_latency : Rf_sim.Vtime.span;
  rpc_latency : Rf_sim.Vtime.span;
  ip_range : Ipv4_addr.Prefix.t;
  faults : Rf_sim.Faults.plan;
  link_capacity : Rf_net.Link.capacity option;
  cluster_replicas : int;
      (** RF-controller replicas; 1 = the legacy single controller
          (no cluster machinery is instantiated at all) *)
  profiler : Rf_obs.Profiler.t option;
  shards : int;
      (** registers a static k-way partition of the network nodes (a
          contiguous block cut: switches first, hosts after, in
          topology order) and its cut statistics in the telemetry
          meta; 1 = no partition. Build raises [Invalid_argument] if
          a zero-latency link crosses the cut, because such a cut
          leaves a sharded engine no conservative-lookahead horizon. *)
  audit : bool;
      (** attaches the continuous forwarding-state auditor
          ({!Rf_obs.Auditor}): flow-table snapshots, link state, RIB
          publications and slice attributions feed an incremental
          forwarding model whose violation windows appear as
          [audit.violation] spans and [audit_*] meta keys. Off by
          default so unaudited telemetry (and its pinned fingerprints)
          is unchanged. *)
}

let default_options =
  {
    seed = 42;
    rf_params = Rf_system.default_params;
    rpc_params = Rf_rpc.Rpc_client.default_params;
    probe_interval = Rf_sim.Vtime.span_s 5.0;
    control_latency = Rf_sim.Vtime.span_ms 1;
    rpc_latency = Rf_sim.Vtime.span_ms 1;
    ip_range = Ipv4_addr.Prefix.of_string_exn "172.16.0.0/16";
    faults = Rf_sim.Faults.empty;
    link_capacity = None;
    cluster_replicas = 1;
    profiler = None;
    shards = 1;
    audit = false;
  }

type host_plan = { hp_subnet : Ipv4_addr.Prefix.t; hp_ip : Ipv4_addr.t }

type t = {
  engine : Rf_sim.Engine.t;
  topo : Topology.t;
  net : Network.t;
  fv : Flowvisor.t;
  disc : Discovery.t;
  autoconf : Autoconfig.t;
  rf_sys : Rf_system.t;
  rf_app : Rf_controller_app.t;
  rpc_client : Rf_rpc.Rpc_client.t;
  rpc_server : Rf_rpc.Rpc_server.t;
  cluster : Rf_rpc.Cluster.t option;
  auditor : Rf_obs.Auditor.t option;
  gui : Gui.t;
  host_plans : (string * host_plan) list;
  n_switches : int;
  n_subnets : int;
  mutable vm_ready_listeners : (int64 -> unit) list;
  mutable converged_at : Rf_sim.Vtime.t option;
  fault_handle : Rf_sim.Faults.handle;
  mutable route_digest : string;
  mutable last_route_change_at : Rf_sim.Vtime.t option;
  opts : options;
}

let host_plans_of topo =
  List.mapi
    (fun i name ->
      let k = i + 1 in
      let subnet =
        Ipv4_addr.Prefix.make (Ipv4_addr.of_octets 10 0 (k land 0xff) 0) 24
      in
      ignore ((k lsr 8) land 0xff);
      (name, { hp_subnet = subnet; hp_ip = Ipv4_addr.Prefix.host subnet 2 }))
    (Topology.hosts topo)

let edges_of_plans topo plans =
  List.filter_map
    (fun (e : Topology.edge) ->
      let host_end, sw_end =
        match (e.a, e.b) with
        | Topology.Host h, Topology.Switch d -> (Some (h, e.a_port), Some (d, e.b_port))
        | Topology.Switch d, Topology.Host h -> (Some (h, e.b_port), Some (d, e.a_port))
        | Topology.Switch _, Topology.Switch _ | Topology.Host _, Topology.Host _
          ->
            (None, None)
      in
      match (host_end, sw_end) with
      | Some (h, _), Some (d, sw_port) ->
          let plan = List.assoc h plans in
          Some (d, sw_port, plan.hp_subnet)
      | (Some _ | None), (Some _ | None) -> None)
    (Topology.edges topo)

let build ?(options = default_options) topo =
  let engine = Rf_sim.Engine.create ~seed:options.seed () in
  (match options.profiler with
  | Some p -> Rf_sim.Engine.set_profiler engine (Some p)
  | None -> ());
  let host_plans = host_plans_of topo in
  let admin_edges = edges_of_plans topo host_plans in

  (* RouteFlow side. *)
  let vs = Rf_vs.create engine () in
  let rf_app = Rf_controller_app.create engine vs in
  let rf_sys = Rf_system.create engine rf_app vs options.rf_params in

  (* RPC plumbing. *)
  let faults_rng = Rf_sim.Rng.split (Rf_sim.Engine.rng engine) in
  let client_end, server_end =
    Channel.create engine ~latency:options.rpc_latency ~name:"rpc" ()
  in
  let rpc_client =
    Rf_rpc.Rpc_client.create engine ~params:options.rpc_params client_end
  in
  let rpc_server = Rf_rpc.Rpc_server.create engine server_end in
  (match options.faults.Rf_sim.Faults.rpc_faults with
  | Some profile ->
      Rf_rpc.Rpc_client.set_fault_profile rpc_client
        (Rf_sim.Rng.split faults_rng) profile;
      Rf_rpc.Rpc_server.set_fault_profile rpc_server
        (Rf_sim.Rng.split faults_rng) profile
  | None -> ());
  (* Replicated control plane (opt-in): the frontend RPC session stays
     as-is, but configuration messages are committed through a leader
     before touching the RouteFlow state. Replica rngs derive from the
     root without advancing it, so single-controller runs stay
     bit-identical. *)
  let cluster =
    if options.cluster_replicas > 1 then
      Some
        (Rf_rpc.Cluster.create engine
           ~rng:(Rf_sim.Rng.derive (Rf_sim.Engine.rng engine) 0x636c)
           ~replicas:options.cluster_replicas ())
    else None
  in
  let apply_msg msg =
    match msg with
    | Rf_rpc.Rpc_msg.Switch_up { dpid; n_ports } ->
        Rf_system.switch_up rf_sys ~dpid ~n_ports
    | Rf_rpc.Rpc_msg.Switch_down { dpid } -> Rf_system.switch_down rf_sys ~dpid
    | Rf_rpc.Rpc_msg.Link_up l ->
        Rf_system.link_config rf_sys
          ~a:(l.a_dpid, l.a_port, l.a_ip, l.a_prefix_len)
          ~b:(l.b_dpid, l.b_port, l.b_ip, l.b_prefix_len);
        Rf_system.link_up_again rf_sys ~a:(l.a_dpid, l.a_port)
          ~b:(l.b_dpid, l.b_port)
    | Rf_rpc.Rpc_msg.Link_down l ->
        Rf_system.link_down rf_sys ~a:(l.a_dpid, l.a_port)
          ~b:(l.b_dpid, l.b_port)
    | Rf_rpc.Rpc_msg.Edge_subnet e ->
        Rf_system.edge_config rf_sys ~dpid:e.dpid ~port:e.port
          ~gateway:e.gateway ~prefix_len:e.prefix_len
  in
  (* How a delivered configuration message reaches the RouteFlow state:
     directly in the legacy deployment, via replicated-log commit in
     the clustered one. *)
  let ingest =
    match cluster with
    | None -> apply_msg
    | Some cl ->
        (* Leader fence: mutations are only legal from inside a commit
           callback, so a deposed leader (or any stray path) cannot
           touch the state. *)
        let in_commit = ref false in
        Rf_system.set_mutation_guard rf_sys (fun () -> !in_commit);
        Rf_rpc.Cluster.set_on_apply cl (fun msg ->
            in_commit := true;
            apply_msg msg;
            in_commit := false);
        (* Switch failover: while leaderless the OpenFlow sessions are
           parked as slaves; the new leader takes them back as master
           and idempotently re-applies the installed flows. *)
        Rf_rpc.Cluster.set_on_failover cl (fun () ->
            Rf_controller_app.set_master rf_app false);
        Rf_rpc.Cluster.set_on_leader_change cl (fun _leader ->
            Rf_controller_app.set_master rf_app true);
        fun msg -> Rf_rpc.Cluster.submit cl msg
  in
  Rf_rpc.Rpc_server.set_handler rpc_server ingest;
  (* Anti-entropy: the topology controller's snapshot is the desired
     state. Tear down switches and virtual links it no longer contains,
     then push every message through the ordinary (idempotent) handler
     so missing state is created and existing state is untouched. *)
  Rf_rpc.Rpc_server.set_snapshot_handler rpc_server (fun msgs ->
      let want_switch dpid =
        List.exists
          (function
            | Rf_rpc.Rpc_msg.Switch_up { dpid = d; _ } -> Int64.equal d dpid
            | _ -> false)
          msgs
      in
      (match cluster with
      | None ->
          List.iter
            (fun dpid ->
              if not (want_switch dpid) then Rf_system.switch_down rf_sys ~dpid)
            (Rf_system.switches_known rf_sys);
          let keep =
            List.filter_map
              (function
                | Rf_rpc.Rpc_msg.Link_up l ->
                    Some ((l.a_dpid, l.a_port), (l.b_dpid, l.b_port))
                | _ -> None)
              msgs
          in
          Rf_system.prune_vlinks rf_sys ~keep
      | Some _ ->
          (* clustered: the teardown must survive failover too, so it
             rides the log as ordinary Switch_down entries *)
          List.iter
            (fun dpid ->
              if not (want_switch dpid) then
                ingest (Rf_rpc.Rpc_msg.Switch_down { dpid }))
            (Rf_system.switches_known rf_sys));
      List.iter ingest msgs);

  (* Topology controller side. *)
  let disc = Discovery.create engine ~probe_interval:options.probe_interval () in
  let autoconf =
    Autoconfig.create engine disc rpc_client
      { Autoconfig.ac_range = options.ip_range; ac_edges = admin_edges }
  in

  (* FlowVisor with the two slices of the paper. *)
  let fv = Flowvisor.create engine ~controller_latency:options.control_latency () in
  let lldp_fs = Flowspace.lldp_slice ~name:"topology" in
  let data_fs = Flowspace.data_slice ~name:"routeflow" in
  Flowvisor.add_slice fv lldp_fs
    ~attach:(fun ~dpid endpoint ->
      ignore dpid;
      let conn = Rf_controller.Of_conn.create engine endpoint in
      (match options.faults.Rf_sim.Faults.control_faults with
      | Some profile ->
          Rf_controller.Of_conn.set_fault_profile conn
            (Rf_sim.Rng.split faults_rng) profile
      | None -> ());
      Discovery.attach disc conn);
  Flowvisor.add_slice fv data_fs
    ~attach:(fun ~dpid endpoint -> Rf_controller_app.attach rf_app ~dpid endpoint);

  (* The emulated network. *)
  let host_config name =
    let plan = List.assoc name host_plans in
    {
      Network.hc_ip = plan.hp_ip;
      hc_prefix_len = Ipv4_addr.Prefix.length plan.hp_subnet;
      hc_gateway = Ipv4_addr.Prefix.host plan.hp_subnet 1;
    }
  in
  let net =
    Network.build engine topo ~host_config
      ~attach_controller:(Flowvisor.switch_attach fv)
      ~control_latency:options.control_latency ()
  in
  (match options.link_capacity with
  | Some _ as cap -> Network.set_all_link_capacity net cap
  | None -> ());
  (* Static block partition for sharded execution: nodes in topology
     order (switches first, then hosts) cut into contiguous blocks, so
     ring neighbours and pod members stay on the same shard. *)
  if options.shards > 1 then begin
    let nodes =
      List.map (fun d -> Topology.Switch d) (Topology.switches topo)
      @ List.map (fun h -> Topology.Host h) (Topology.hosts topo)
    in
    let total = List.length nodes in
    let index = Hashtbl.create 997 in
    List.iteri (fun i n -> Hashtbl.replace index n i) nodes;
    Network.set_partition net ~shards:options.shards (fun n ->
        match Hashtbl.find_opt index n with
        | Some i -> i * options.shards / total
        | None -> 0)
  end;

  (* Forwarding-state auditor (opt-in): feed it the static topology,
     then subscribe it to every state source — classifier snapshots on
     table change, link transitions, RIB publications (wired per VM
     below, once VMs exist) and FlowVisor's flow-mod attributions. *)
  let auditor =
    if not options.audit then None
    else begin
      let au =
        Rf_obs.Auditor.create
          ~tracer:(Rf_sim.Engine.tracer engine)
          ~metrics:(Rf_sim.Engine.metrics engine)
          ()
      in
      List.iter (fun d -> Rf_obs.Auditor.add_switch au d) (Topology.switches topo);
      let sw_edges =
        List.filter_map
          (fun (e : Topology.edge) ->
            match (e.a, e.b) with
            | Topology.Switch da, Topology.Switch db ->
                Some ((da, e.a_port), (db, e.b_port))
            | (Topology.Switch _ | Topology.Host _), _ -> None)
          (Topology.edges topo)
      in
      List.iter (fun (a, b) -> Rf_obs.Auditor.add_link au ~a ~b) sw_edges;
      List.iter
        (fun (dpid, port, subnet) -> Rf_obs.Auditor.add_host au ~dpid ~port subnet)
        admin_edges;
      List.iter
        (fun (fs : Flowspace.t) ->
          Rf_obs.Auditor.set_slice au fs.Flowspace.fs_name fs.Flowspace.fs_patterns)
        [ lldp_fs; data_fs ];
      Flowvisor.set_on_flow_mod fv (fun ~dpid ~slice fm ->
          match fm.Rf_openflow.Of_msg.fm_command with
          | Rf_openflow.Of_msg.Add | Rf_openflow.Of_msg.Modify
          | Rf_openflow.Of_msg.Modify_strict ->
              Rf_obs.Auditor.attribute au ~dpid
                ~match_:fm.Rf_openflow.Of_msg.fm_match
                ~priority:fm.Rf_openflow.Of_msg.fm_priority slice
          | Rf_openflow.Of_msg.Delete | Rf_openflow.Of_msg.Delete_strict -> ());
      List.iter
        (fun (dpid, dp) ->
          let push () =
            let rules =
              List.map
                (fun (e : Rf_net.Flow_table.entry) ->
                  Rf_obs.Fwd_model.rule_of_actions ~match_:e.Rf_net.Flow_table.e_match
                    ~priority:e.Rf_net.Flow_table.e_priority
                    ~seq:e.Rf_net.Flow_table.e_seq e.Rf_net.Flow_table.e_actions)
                (Rf_net.Flow_table.entries (Rf_net.Datapath.flow_table dp))
            in
            Rf_obs.Auditor.set_switch_rules au dpid rules
          in
          Rf_net.Datapath.set_on_table_changed dp push;
          push ())
        (Network.datapaths net);
      Network.set_on_link_state net (fun a b up ->
          match (a, b) with
          | Topology.Switch da, Topology.Switch db ->
              let ends =
                List.find_map
                  (fun (((ea, _), (eb, _)) as l) ->
                    if
                      (Int64.equal ea da && Int64.equal eb db)
                      || (Int64.equal ea db && Int64.equal eb da)
                    then Some l
                    else None)
                  sw_edges
              in
              (match ends with
              | Some (ea, eb) -> Rf_obs.Auditor.set_link_state au ~a:ea ~b:eb up
              | None -> ())
          | (Topology.Switch _ | Topology.Host _), _ -> ());
      Some au
    end
  in

  (* GUI and instrumentation. *)
  let gui = Gui.create engine () in
  List.iter (fun d -> Gui.add_switch gui d) (Topology.switches topo);
  let n_switches = Topology.switch_count topo in
  let n_subnets =
    List.length (Topology.switch_switch_edges topo) + List.length admin_edges
  in
  (* Fault injection: map the layer-agnostic plan onto this scenario's
     components. *)
  let injector =
    {
      Rf_sim.Faults.inj_link =
        (fun ~up { Rf_sim.Faults.l_a; l_b } ->
          Network.set_link_up net (Topology.Switch l_a) (Topology.Switch l_b) up);
      inj_switch =
        (fun ~up dpid ->
          if up then Network.reconnect_switch net dpid
          else Network.disconnect_switch net dpid);
      inj_vm_boot_failure =
        (fun ~dpid ~failures -> Rf_system.arm_boot_failures rf_sys ~dpid ~failures);
      inj_controller =
        (fun ~up replica ->
          match cluster with
          | Some cl ->
              if up then Rf_rpc.Cluster.restart cl replica
              else Rf_rpc.Cluster.crash cl replica
          | None ->
              (* legacy single controller: the replica id is moot *)
              if up then Rf_rpc.Rpc_server.restart rpc_server
              else Rf_rpc.Rpc_server.crash rpc_server);
      inj_partition =
        (fun p ->
          match cluster with
          | Some cl -> (
              match p with
              | Some (a, b) -> Rf_rpc.Cluster.partition cl a b
              | None -> Rf_rpc.Cluster.heal cl)
          | None -> ());
    }
  in
  let fault_handle = Rf_sim.Faults.schedule engine injector options.faults in
  let t =
    {
      engine;
      topo;
      net;
      fv;
      disc;
      autoconf;
      rf_sys;
      rf_app;
      rpc_client;
      rpc_server;
      cluster;
      auditor;
      gui;
      host_plans;
      n_switches;
      n_subnets;
      vm_ready_listeners = [];
      converged_at = None;
      fault_handle;
      route_digest = "";
      last_route_change_at = None;
      opts = options;
    }
  in
  Rf_system.set_on_vm_ready rf_sys (fun dpid ->
      Gui.set_green gui dpid;
      List.iter (fun f -> f dpid) t.vm_ready_listeners);
  (* RIB feed: each VM publishes its desired FIB — the (prefix, port)
     pairs the RF-client wants installed — to the auditor on every
     flow-export change. Attached on readiness because VMs are created
     dynamically (and re-created across restarts). *)
  (match auditor with
  | Some au ->
      t.vm_ready_listeners <-
        t.vm_ready_listeners
        @ [
            (fun dpid ->
              match Rf_system.vm rf_sys dpid with
              | Some vm ->
                  Rf_routeflow.Vm.add_on_flows_changed vm (fun () ->
                      Rf_obs.Auditor.set_rib au dpid
                        (List.map
                           (fun (fr : Rf_routeflow.Vm.flow_route) ->
                             (fr.Rf_routeflow.Vm.fr_prefix, fr.Rf_routeflow.Vm.fr_port))
                           (Rf_routeflow.Vm.flow_routes vm)))
              | None -> ());
          ]
  | None -> ());
  (* Convergence probe: every VM's RIB covers every subnet. *)
  let converged () =
    Rf_system.configured_count rf_sys = n_switches
    && n_subnets > 0
    && List.for_all
         (fun (_, vm) ->
           Rf_routing.Rib.size (Rf_routeflow.Vm.rib vm) >= n_subnets)
         (Rf_system.vms rf_sys)
  in
  (* Only pay for route-table digests when a fault plan is active — the
     digest walks every VM's RIB once per simulated second, too costly
     for the 1000-switch scaling runs. *)
  let digest_routes () =
    let buf = Buffer.create 256 in
    List.iter
      (fun (dpid, vm) ->
        Buffer.add_string buf (Printf.sprintf "vm-%Ld:" dpid);
        List.iter
          (fun (r : Rf_routing.Rib.route) ->
            Buffer.add_string buf
              (Printf.sprintf "%s/%s/%s;"
                 (Ipv4_addr.Prefix.to_string r.r_prefix)
                 (match r.r_next_hop with
                 | Some nh -> Ipv4_addr.to_string nh
                 | None -> "direct")
                 r.r_iface))
          (Rf_routing.Rib.selected (Rf_routeflow.Vm.rib vm));
        Buffer.add_char buf '\n')
      (Rf_system.vms rf_sys)
    |> fun () -> Buffer.contents buf
  in
  let track_routes = not (Rf_sim.Faults.is_empty options.faults) in
  ignore
    (Rf_sim.Engine.periodic
       ~entity:(Rf_obs.Profiler.component "scenario")
       engine (Rf_sim.Vtime.span_s 1.0) (fun () ->
         if t.converged_at = None && converged () then begin
           t.converged_at <- Some (Rf_sim.Engine.now engine);
           (* Retroactive convergence span: the routing tail between the
              last switch turning green and full RIB coverage. *)
           let tracer = Rf_sim.Engine.tracer engine in
           let start_us =
             match Gui.all_green_at gui with
             | Some at -> Rf_sim.Vtime.to_us at
             | None -> Rf_obs.Tracer.now_us tracer
           in
           let sp =
             Rf_obs.Tracer.span_start tracer ~start_us "phase.convergence"
           in
           Rf_obs.Tracer.span_end tracer sp
         end;
         if track_routes then begin
           let d = digest_routes () in
           if d <> t.route_digest then begin
             t.route_digest <- d;
             t.last_route_change_at <- Some (Rf_sim.Engine.now engine)
           end
         end));
  t

let engine t = t.engine

let network t = t.net

let flowvisor t = t.fv

let discovery t = t.disc

let autoconfig t = t.autoconf

let rf_system t = t.rf_sys

let rf_app t = t.rf_app

let rpc_client t = t.rpc_client

let rpc_server t = t.rpc_server

let cluster t = t.cluster

let auditor t = t.auditor

let gui t = t.gui

let host t name = Network.host t.net name

let host_ip t name =
  match List.assoc_opt name t.host_plans with
  | Some plan -> plan.hp_ip
  | None -> invalid_arg (Printf.sprintf "Scenario.host_ip: unknown host %s" name)

let switch_count t = t.n_switches

let run_for t span =
  ignore
    (Rf_sim.Engine.run
       ~until:(Rf_sim.Vtime.add (Rf_sim.Engine.now t.engine) span)
       t.engine)

let add_vm_ready_listener t f =
  t.vm_ready_listeners <- t.vm_ready_listeners @ [ f ]

let all_configured_at t = Gui.all_green_at t.gui

let routing_converged_at t = t.converged_at

let total_subnets t = t.n_subnets

let fault_events_fired t = Rf_sim.Faults.fired_count t.fault_handle

let last_fault_at t = Rf_sim.Faults.last_fired_at t.fault_handle

(* --- Telemetry ----------------------------------------------------- *)

let prometheus t = Rf_obs.Metrics.to_prometheus (Rf_sim.Engine.metrics t.engine)

let span_stats t = Rf_obs.Export.span_stats (Rf_sim.Engine.tracer t.engine)

let trace_dropped t = Rf_sim.Trace.dropped (Rf_sim.Engine.trace t.engine)

let reconverged_at t =
  match (Rf_sim.Faults.last_fired_at t.fault_handle, t.last_route_change_at) with
  | Some fault_at, Some change_at when Rf_sim.Vtime.(fault_at <= change_at) ->
      Some change_at
  | (Some _ | None), (Some _ | None) -> None

(* Outcome fields ride in the meta line so downstream SLO rules can
   judge a run from its telemetry file alone; absent outcomes (never
   converged, no fault plan) simply omit their key, which Slo turns
   into a Fail for rules that require them. All values are fixed
   precision so same-seed runs stay byte-identical. *)
let telemetry_meta t =
  let opt_s key = function
    | Some v -> [ (key, Printf.sprintf "%.3f" (Rf_sim.Vtime.to_s v)) ]
    | None -> []
  in
  let nonzero key n = if n = 0 then [] else [ (key, string_of_int n) ] in
  [
    ("seed", string_of_int t.opts.seed);
    ("switches", string_of_int t.n_switches);
    ("subnets", string_of_int t.n_subnets);
  ]
  @ opt_s "all_green_s" (Gui.all_green_at t.gui)
  @ opt_s "converged_s" t.converged_at
  @ opt_s "last_fault_s" (Rf_sim.Faults.last_fired_at t.fault_handle)
  @ opt_s "reconverged_s" (reconverged_at t)
  @ nonzero "fault_events" (Rf_sim.Faults.fired_count t.fault_handle)
  @ nonzero "trace_dropped" (trace_dropped t)
  (* shard keys appear only in partitioned runs, so unpartitioned
     telemetry (and its pinned fingerprints) is unchanged *)
  @ (match Network.partition_cut t.net with
    | None -> []
    | Some cut ->
        [
          ("shards", string_of_int cut.Topology.cut_shards);
          ("cut_cross_links", string_of_int cut.Topology.cut_cross_edges);
          ("cut_total_links", string_of_int cut.Topology.cut_total_edges);
        ]
        @ (match cut.Topology.cut_lookahead with
          | Some la ->
              [
                ( "cut_lookahead_us",
                  string_of_int (Rf_sim.Vtime.span_to_us la) );
              ]
          | None -> []))
  (* audit keys appear only in audited runs, so unaudited telemetry
     (and its pinned fingerprints) is unchanged; audit_dropped is
     always present when auditing so completeness rules can bind to
     it, even at 0 *)
  @ (match t.auditor with
    | None -> []
    | Some au ->
        let open Rf_obs.Auditor in
        [
          ("experiment_audited", "1");
          ("audit_updates", string_of_int (updates au));
          ("audit_eq_classes", string_of_int (eq_classes au));
          ("audit_walks", string_of_int (walks au));
          ("audit_windows", string_of_int (List.length (windows au)));
          ( "audit_open_windows",
            string_of_int (List.length (open_violations au)) );
          ("audit_loop_windows", string_of_int (violations_total au Loop));
          ( "audit_blackhole_windows",
            string_of_int (violations_total au Blackhole) );
          ("audit_rib_fib_windows", string_of_int (violations_total au Rib_fib));
          ("audit_slice_windows", string_of_int (violations_total au Slice));
          ("audit_dropped", string_of_int (dropped au));
        ])
  @
  (* cluster keys appear only in clustered runs, so single-controller
     telemetry (and its pinned fingerprints) is unchanged *)
  match t.cluster with
  | None -> []
  | Some cl ->
      [
        ("replicas", string_of_int (Rf_rpc.Cluster.replicas cl));
        ("elections", string_of_int (Rf_rpc.Cluster.elections cl));
        ("leader_epoch", Int32.to_string (Rf_rpc.Cluster.leader_epoch cl));
      ]
      @ (match Rf_rpc.Cluster.leader cl with
        | Some l -> [ ("leader", string_of_int l) ]
        | None -> [])
      @ (match Rf_rpc.Cluster.last_failover_s cl with
        | Some s -> [ ("failover_s", Printf.sprintf "%.3f" s) ]
        | None -> [])

let telemetry_jsonl ?(meta = []) t =
  Rf_obs.Export.jsonl
    ~meta:(telemetry_meta t @ meta)
    (Rf_sim.Engine.tracer t.engine)

let write_telemetry ?meta t path =
  let oc = open_out path in
  output_string oc (telemetry_jsonl ?meta t);
  close_out oc
