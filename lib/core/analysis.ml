(* Trace analytics over the experiments: runs (or ingests) a
   telemetry dump and evaluates the standard SLO rule set for each
   experiment, producing deterministic scorecards, critical paths,
   flamegraphs and baseline indicators. Thresholds are calibrated to
   the seed-42 defaults — warn sits above the observed value with
   headroom for legitimate drift, fail marks a broken run. *)

module Ingest = Rf_obs.Ingest
module Slo = Rf_obs.Slo
module Critical_path = Rf_obs.Critical_path
module Flamegraph = Rf_obs.Flamegraph
module Baseline = Rf_obs.Baseline

type experiment = E1b | E3 | E4 | E6 | E9 | E10 | E12

(* E9, E10 and E12 are deliberately absent: [all] drives the E7
   scorecard fingerprint, which is pinned. Ask for them explicitly. *)
let all = [ E1b; E3; E4; E6 ]

let name = function
  | E1b -> "e1b"
  | E3 -> "e3"
  | E4 -> "e4"
  | E6 -> "e6"
  | E9 -> "e9"
  | E10 -> "e10"
  | E12 -> "e12"

let of_string = function
  | "e1b" -> Some E1b
  | "e3" -> Some E3
  | "e4" -> Some E4
  | "e6" -> Some E6
  | "e9" -> Some E9
  | "e10" -> Some E10
  | "e12" -> Some E12
  | _ -> None

let describe = function
  | E1b -> "phase decomposition, 8-switch ring, 2 s boots"
  | E3 -> "link cut under live traffic, 6-switch ring"
  | E4 -> "controller crash + reconciliation, 8-switch ring"
  | E6 -> "traffic disruption, automatic response, 8-switch ring"
  | E9 -> "cluster leader crash + failover, 28-switch ring, 3 replicas"
  | E10 -> "engine profile of the fat-tree scaling run + shard-cut advisory"
  | E12 -> "forwarding-state audit of the E3/E4/E9 fault replays"

(* Runs the experiment with telemetry into a temp file and ingests it:
   the analysis path is identical for live runs and replayed files. *)
let run_dump ?(seed = 42) exp =
  let path = Filename.temp_file "rfauto-analyze" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match exp with
      | E1b ->
          (* Same parameters as the CI E1 fingerprint run. *)
          ignore
            (Experiment.phase_breakdown ~switches:8 ~vm_boot_s:2.0
               ~telemetry:path ())
      | E3 -> ignore (Experiment.failure_recovery ~seed ~telemetry:path ())
      | E4 -> ignore (Experiment.restart ~seed ~telemetry:path ())
      | E6 -> ignore (Experiment.traffic_disruption ~seed ~telemetry:path ())
      | E9 -> ignore (Experiment.cluster_failover ~seed ~telemetry:path ())
      | E10 ->
          (* Small fat-tree so the analysis path stays quick; the CI
             fingerprint pins the full k=20 run separately. *)
          ignore (Experiment.profile_scaling ~seed ~k:8 ~telemetry:path ())
      | E12 -> ignore (Experiment.audit_windows ~seed ~telemetry:path ()));
      Ingest.load_file path)

let rule ?(unit_ = "s") ?(direction = Slo.At_most) name what source ~warn ~fail
    =
  {
    Slo.r_name = name;
    r_what = what;
    r_source = source;
    r_direction = direction;
    r_warn = warn;
    r_fail = fail;
    r_unit = unit_;
  }

let completeness prefix =
  rule ~unit_:"records"
    (prefix ^ ".dropped_records")
    "telemetry records dropped anywhere in the pipeline" Slo.Dropped_records
    ~warn:0. ~fail:0.

let rules = function
  | E1b ->
      [
        rule "e1b.configure_max_s" "slowest switch end-to-end configure time"
          (Slo.Span_max_duration_s "sw.configure") ~warn:17. ~fail:25.;
        rule "e1b.convergence_tail_s"
          "routing tail between all-green and full RIB coverage"
          (Slo.Span_max_duration_s "phase.convergence") ~warn:3. ~fail:10.;
        rule "e1b.end_to_end_s" "time to full routing convergence"
          (Slo.Meta_s "converged_s") ~warn:20. ~fail:30.;
        rule "e1b.rpc_p99_s" "p99 of per-switch RPC config delivery"
          (Slo.Span_quantile_s ("phase.rpc", 0.99))
          ~warn:0.1 ~fail:1.;
        completeness "e1b";
      ]
  | E3 ->
      [
        rule "e3.recovery_delay_s"
          "routes settled after the link cut (reconverged - cut)"
          (Slo.Meta_diff_s ("reconverged_s", "last_fault_s"))
          ~warn:10. ~fail:30.;
        rule ~unit_:"ratio" "e3.window_loss_ratio"
          "datagrams lost in the 30 s post-cut window"
          (Slo.Meta_ratio ("window_lost", "window_sent"))
          ~warn:0.2 ~fail:0.5;
        rule "e3.converged_s" "initial convergence before the fault"
          (Slo.Meta_s "converged_s") ~warn:30. ~fail:60.;
        completeness "e3";
      ]
  | E4 ->
      [
        rule ~unit_:"msgs" "e4.rpc_undelivered"
          "config events lost across the crash (0 under reconciliation)"
          (Slo.Meta_s "rpc_undelivered") ~warn:0. ~fail:0.;
        rule "e4.recovery_delay_s"
          "routes settled after controller recovery"
          (Slo.Meta_diff_s ("reconverged_s", "recover_at_s"))
          ~warn:15. ~fail:40.;
        (* Denominator is ALL telemetry events: a sparse window that is
           nothing but deadness signals would otherwise saturate the
           burn at its 1/(1-objective) ceiling. *)
        rule ~unit_:"x" "e4.rpc_deadness_burn"
          "sliding-window budget burn of peer-dead signals (99% objective)"
          (Slo.Burn_rate
             {
               errors =
                 {
                   Slo.m_component = Some "rpc-client";
                   m_kind = Some "peer-dead";
                 };
               total = { Slo.m_component = None; m_kind = None };
               objective = 0.99;
               window_us = 10_000_000;
             })
          ~warn:60. ~fail:90.;
        completeness "e4";
      ]
  | E6 ->
      [
        rule "e6.disruption_s"
          "traffic-weighted disruption under automatic response"
          (Slo.Meta_s "disruption_s") ~warn:2. ~fail:10.;
        rule ~direction:Slo.At_least ~unit_:"ratio" "e6.delivery_ratio"
          "datagrams delivered / offered over the whole run"
          (Slo.Meta_ratio ("delivered", "offered"))
          ~warn:0.97 ~fail:0.90;
        rule "e6.disruption_union_s"
          "wall-clock union of per-flow disruption spans"
          (Slo.Span_union_duration_s "traffic.disruption") ~warn:8. ~fail:30.;
        completeness "e6";
      ]
  | E9 ->
      [
        rule "e9.failover_s"
          "leaderless interval from leader crash to re-election"
          (Slo.Meta_s "failover_s") ~warn:5. ~fail:15.;
        rule "e9.disruption_s"
          "traffic-weighted disruption across crash + cut (replicated)"
          (Slo.Meta_s "disruption_s") ~warn:5. ~fail:20.;
        rule ~direction:Slo.At_least ~unit_:"ratio" "e9.delivery_ratio"
          "datagrams delivered / offered over the whole run"
          (Slo.Meta_ratio ("delivered", "offered"))
          ~warn:0.97 ~fail:0.90;
        rule ~unit_:"elections" "e9.elections"
          "leader elections over the run (bootstrap + one failover)"
          (Slo.Meta_s "elections") ~warn:2. ~fail:4.;
        rule "e9.failover_union_s"
          "wall-clock union of cluster failover spans"
          (Slo.Span_union_duration_s "cluster.failover") ~warn:5. ~fail:15.;
        completeness "e9";
      ]
  | E10 ->
      [
        rule ~direction:Slo.At_least ~unit_:"pct" "e10.attributed_pct"
          "share of executed events attributed to a tagged entity"
          (Slo.Meta_s "profile_attributed_pct") ~warn:90. ~fail:75.;
        rule ~direction:Slo.At_least ~unit_:"x" "e10.speedup_bound"
          "conservative-lookahead speedup bound of the advised cut"
          (Slo.Meta_s "shard_speedup_bound") ~warn:2. ~fail:1.2;
        rule ~unit_:"ratio" "e10.cut_fraction"
          "fraction of simulated messages crossing the advised cut"
          (Slo.Meta_s "shard_cut_fraction") ~warn:0.6 ~fail:0.9;
        rule ~unit_:"x" "e10.imbalance"
          "heaviest shard weight over the mean shard weight"
          (Slo.Meta_s "shard_imbalance") ~warn:1.5 ~fail:3.;
        completeness "e10";
      ]
  | E12 ->
      [
        rule ~unit_:"windows" "e12.steady_windows"
          "violation windows inside the steady (post-convergence, \
           pre-fault) interval"
          (Slo.Meta_s "steady_windows") ~warn:0. ~fail:0.;
        rule "e12.fault_union_s"
          "union of violation windows after the fault (automatic E9 run)"
          (Slo.Meta_s "fault_union_s") ~warn:10. ~fail:40.;
        rule ~unit_:"windows" "e12.open_at_horizon"
          "violation windows still open at the horizon"
          (Slo.Meta_s "open_at_horizon") ~warn:0. ~fail:0.;
        rule "e12.violation_union_s"
          "union of every audit.violation span over the whole run"
          (Slo.Span_union_duration_s "audit.violation") ~warn:40. ~fail:90.;
        completeness "e12";
      ]

let evaluate exp dump = Slo.evaluate dump (rules exp)

(* Baseline indicators are the SLO measurements themselves: the rule's
   direction gives the bad direction, its unit the display unit. Rules
   without a value contribute nothing (their Fail verdict already
   reports the problem). *)
let indicators_of_results results =
  List.filter_map
    (fun (r : Slo.result) ->
      match r.res_value with
      | None -> None
      | Some v ->
          Some
            {
              Baseline.i_name = r.res_rule.r_name;
              i_value = v;
              i_unit = r.res_rule.r_unit;
              i_lower_is_better = r.res_rule.r_direction = Slo.At_most;
            })
    results

let baseline_run ~label results =
  { Baseline.run_label = label; indicators = indicators_of_results results }

(* The span forest of a dump, and the critical path of the longest
   configure chain — the headline "where did the time go" answer. *)
let forest (dump : Ingest.dump) = Critical_path.forest dump.spans

let configure_path dump =
  Option.map Critical_path.critical_path
    (Critical_path.find_longest ~name:"sw.configure" (forest dump))

let scorecard ppf results = Slo.pp_scorecard ppf results
