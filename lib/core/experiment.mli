(** Reproductions of the paper's evaluation artifacts plus the
    extension experiments listed in DESIGN.md.

    All times are *simulated* seconds; the manual baseline is the
    paper's analytical model. *)

(** {1 E1 — Figure 3: automatic vs manual configuration time} *)

type fig3_row = {
  f3_switches : int;
  f3_auto_s : float;  (** all switches green (VM created + configured) *)
  f3_converged_s : float option;  (** OSPF routes complete everywhere *)
  f3_manual_min : float;  (** paper model: 15 min per switch *)
}

val fig3 :
  ?sizes:int list ->
  ?vm_boot_s:float ->
  ?parallel_boot:int ->
  ?telemetry:string ->
  ?profiler:Rf_obs.Profiler.t ->
  unit ->
  fig3_row list
(** Default sizes 4, 8, ..., 28 (ring topologies, as in the paper).
    [telemetry] writes the span/event JSONL of the largest size's run
    to the given path. *)

val print_fig3 : Format.formatter -> fig3_row list -> unit

(** {1 E1b — per-phase decomposition of the configuration time}

    From the span tree of one ring run: how the critical-path switch's
    end-to-end configuration time divides into discovery, RPC delivery,
    VM provisioning and Quagga configuration, plus the routing
    convergence tail after the last switch turns green. *)

type phase_row = {
  ph_dpid : int64;
  ph_discovery_s : float;  (** switch attach → topology ctrl detection *)
  ph_rpc_s : float;  (** detection → Switch_up frame acknowledged *)
  ph_vm_s : float;  (** RF-controller delivery → VM booted (queueing) *)
  ph_quagga_s : float;  (** VM up → Quagga configs applied *)
  ph_config_s : float;  (** whole sw.configure span *)
}

type phase_breakdown = {
  pb_switches : int;
  pb_rows : phase_row list;  (** every switch, dpid order *)
  pb_critical : phase_row;  (** the switch whose configuration ended last *)
  pb_all_green_s : float option;
  pb_convergence_tail_s : float option;
  pb_converged_s : float option;
  pb_trace_events : int;
  pb_trace_dropped : int;  (** ring-buffer drops, see {!Rf_sim.Trace.dropped} *)
}

val breakdown_of : Scenario.t -> phase_breakdown
(** Reads the span tree of an already-run scenario. Raises
    [Invalid_argument] if no switch ever started configuring. *)

val phase_breakdown :
  ?switches:int ->
  ?vm_boot_s:float ->
  ?parallel_boot:int ->
  ?telemetry:string ->
  unit ->
  phase_breakdown
(** Runs one ring scenario (default: the paper's 28 switches, 8 s
    serialized boots) and decomposes it. [telemetry] additionally
    writes the run's span/event JSONL to the given path. *)

val print_phases : Format.formatter -> phase_breakdown -> unit

(** {1 E2 — Demonstration: pan-European video streaming} *)

type demo_result = {
  d_switches : int;
  d_links : int;
  d_first_green_s : float option;
  d_all_green_s : float option;
  d_converged_s : float option;
  d_video_first_packet_s : float option;
  d_video_sent : int;
  d_video_received : int;
  d_flow_entries_total : int;
  d_slow_path_packets : int;  (** data packets the VMs forwarded *)
  d_steady_sent : int;  (** datagrams sent in the final minute *)
  d_steady_received : int;
  d_gui_timeline : (float * int) list;  (** (time, #green) milestones *)
  d_gui_final_frame : string;
}

val demo :
  ?vm_boot_s:float ->
  ?horizon_s:float ->
  ?server_city:string ->
  ?client_city:string ->
  ?protocol:Rf_routeflow.Rf_system.protocol ->
  ?pcap_path:string ->
  ?telemetry:string ->
  unit ->
  demo_result
(** Default: 8 s boots, 360 s horizon, video streamed from a server in
    Glasgow to a client in Athens (opposite ends of the topology).
    [pcap_path] writes a Wireshark-readable capture of the client's
    access link. *)

val print_demo : Format.formatter -> demo_result -> unit

(** {1 E12 — forwarding-state audit (shared result shape)}

    One audited run's view of the {!Rf_obs.Auditor} attached via
    {!Scenario.options.audit}: window counts per invariant, union
    durations of the violation windows before and after the first
    planned fault, and the steady-state gate input — windows strictly
    inside the (post-convergence, pre-fault) interval, which must be
    empty on a healthy run. *)

type audit_window = {
  aw_kind : string;  (** "loop" / "blackhole" / "rib_fib" / "slice" *)
  aw_key : string;
  aw_open_s : float;
  aw_close_s : float option;  (** [None]: still open at the horizon *)
}

type audit_run = {
  ar_label : string;
  ar_updates : int;  (** audited incremental updates processed *)
  ar_eq_classes : int;
  ar_walks : int;
  ar_dropped : int;  (** unprobeable classes — audit incompleteness *)
  ar_loop : int;  (** windows opened, per invariant... *)
  ar_blackhole : int;
  ar_rib_fib : int;
  ar_slice : int;
  ar_window_count : int;
  ar_open_at_end : int;  (** windows still open at the horizon *)
  ar_converged_s : float option;
  ar_first_fault_s : float option;
  ar_steady_windows : int;
      (** windows overlapping the open steady-state interval
          (converged_s, first_fault_s) — the exit-code-5 gate *)
  ar_boot_union_s : float;
      (** union of violation windows clipped to before the first fault
          (dominated by the boot transient) *)
  ar_fault_union_s : float;
      (** union clipped to [first fault, horizon] — the measurable
          fault-induced violation window *)
  ar_fault_windows : audit_window list;
      (** windows opened at or after the first fault, opening order *)
}

val print_audit_run : Format.formatter -> audit_run -> unit
(** Virtual-clock figures only — safe to fingerprint. *)

(** {1 E3 — Failure recovery: link cut under live traffic}

    A ring carries a UDP stream end to end; a deterministic fault plan
    cuts one link on the stream's path mid-run. Reported: datagrams
    lost in the post-cut window, the time for the routing control
    platform to settle on routes that avoid the dead link, and an MD5
    fingerprint of the full event trace — rerunning with the same seed
    reproduces the fingerprint byte for byte. *)

type recovery_result = {
  fr_seed : int;
  fr_switches : int;
  fr_fail_at_s : float;
  fr_all_green_s : float option;
  fr_converged_s : float option;
  fr_reconverged_s : float option;  (** routes settled post-cut *)
  fr_outage_s : float option;  (** reconverged − fail time *)
  fr_window_sent : int;  (** datagrams sent in the post-cut window *)
  fr_window_received : int;
  fr_window_lost : int;
  fr_routes_avoid_failed_link : bool;
  fr_trace_fingerprint : string;  (** MD5 of the trace dump *)
  fr_audit : audit_run option;  (** present with [audit] *)
}

val failure_recovery :
  ?seed:int ->
  ?switches:int ->
  ?fail_at_s:float ->
  ?window_s:float ->
  ?horizon_s:float ->
  ?audit:bool ->
  ?telemetry:string ->
  ?profiler:Rf_obs.Profiler.t ->
  unit ->
  recovery_result
(** Default: 6-switch ring (server behind sw1, client behind sw4, 2 s
    quad-parallel boots so setup is quick), link sw2–sw3 cut at 60 s,
    loss counted over the following 30 s, 150 s horizon. [audit]
    attaches the forwarding-state auditor and fills [fr_audit] (plus
    the audit meta keys of the telemetry dump). *)

val print_failure_recovery : Format.formatter -> recovery_result -> unit

(** {1 E4 — Controller restart: crash, topology change, reconcile on return}

    The RF-controller crashes, a physical link dies while it is down
    (so the Link_down config event has no live session to land in), and
    the controller restarts later. Three runs with the same seed see
    the same link cut: a baseline whose controller never crashes, a
    crash with the supervised RPC session (epochs + anti-entropy
    snapshot), and a crash with the legacy session (no epochs, no
    resync). Reported per run: configuration/convergence outcomes,
    config events that were silently lost, traffic overhead of the
    supervision, and an MD5 digest of the final VM/Quagga/route state —
    the supervised run's digest must equal the baseline's, the legacy
    run's must not (it keeps routing over the dead link). *)

type restart_run = {
  rr_label : string;
  rr_configured : int;
  rr_all_green_s : float option;
  rr_converged_s : float option;
  rr_reconverged_s : float option;
  rr_state_digest : string;  (** MD5 over VM configs + selected routes *)
  rr_sent : int;
  rr_retx : int;
  rr_gave_up : int;
  rr_pings : int;
  rr_snapshots : int;
  rr_resyncs : int;
  rr_handled : int;
  rr_dups : int;
  rr_undelivered : int;
      (** config events acknowledged-or-abandoned but never handled *)
  rr_incarnation : int;
  rr_trace_fingerprint : string;
  rr_audit : audit_run option;
      (** present with [audit]; the first fault is the crash for the
          faulty runs, the cut for the baseline *)
}

type restart_result = {
  rs_seed : int;
  rs_switches : int;
  rs_crash_at_s : float;
  rs_cut_at_s : float;  (** link sw2-sw3 dies while the controller is down *)
  rs_recover_at_s : float;
  rs_baseline : restart_run;
  rs_supervised : restart_run;
  rs_legacy : restart_run;
  rs_supervised_matches : bool;
  rs_legacy_matches : bool;
  rs_sync_overhead_msgs : int;
  rs_recovery_s : float option;
}

val restart :
  ?seed:int ->
  ?switches:int ->
  ?crash_at_s:float ->
  ?cut_at_s:float ->
  ?recover_at_s:float ->
  ?horizon_s:float ->
  ?audit:bool ->
  ?telemetry:string ->
  unit ->
  restart_result
(** Default: 8-switch ring, 2 s quad-parallel boots, crash at 4 s,
    link cut at 8 s, restart at 20 s, 120 s horizon. Requires
    [crash_at_s < cut_at_s < recover_at_s]. [telemetry] writes the
    supervised (crash + reconciliation) run's span/event JSONL to the
    given path. *)

val print_restart : Format.formatter -> restart_result -> unit

(** {1 E5 — GUI: red/green frames over the demo run} *)

val gui_frames : ?vm_boot_s:float -> ?every_s:float -> unit -> string list

(** {1 X1 — scaling beyond the paper (up to 1000 switches)} *)

type scaling_row = {
  sc_switches : int;
  sc_auto_s : float;
  sc_manual_min : float;
  sc_events : int;  (** simulator events executed *)
}

val scaling : ?sizes:int list -> unit -> scaling_row list
(** Default sizes 50, 100, 250, 500, 1000; discovery slowed to 30 s
    probes to keep event counts proportionate at scale. *)

val print_scaling : Format.formatter -> scaling_row list -> unit

(** {1 X2 — ablations} *)

type ablation_row = {
  ab_label : string;
  ab_all_green_s : float option;
  ab_converged_s : float option;
}

val ablation_parallel_boot : ?switches:int -> unit -> ablation_row list
(** Serialized (paper-era RouteFlow) vs 2/4/8-way parallel VM cloning. *)

val ablation_probe_interval : ?switches:int -> unit -> ablation_row list

val ablation_rpc_latency : ?switches:int -> unit -> ablation_row list
(** Co-located vs remote topology controller (RPC RTT sweep). *)

val ablation_protocol : ?switches:int -> unit -> ablation_row list
(** The framework is protocol-agnostic: the same run with the VMs on
    OSPF vs RIPv2 (triggered updates let RIP converge within seconds
    of the last boot too; VM cloning dominates both). *)

val print_ablation : Format.formatter -> string -> ablation_row list -> unit

(** {1 X4 — control-plane message census (extension)} *)

type census = {
  cn_switches : int;
  cn_links : int;
  cn_lldp_probes : int;
  cn_lldp_received : int;
  cn_rpc_messages : int;
  cn_fv_to_topology : int;
  cn_fv_to_routeflow : int;
  cn_fv_from_topology : int;
  cn_fv_from_routeflow : int;
  cn_flow_mods : int;
  cn_packet_ins_relayed : int;
  cn_packet_outs : int;
  cn_slow_path : int;
  cn_sim_events : int;
}

val census : ?switches:int -> unit -> census
(** Counts every control-plane message category over one full
    autoconfiguration run of a ring. *)

val print_census : Format.formatter -> census -> unit

(** {1 X3 — topology families} *)

type family_row = {
  fam_name : string;
  fam_switches : int;
  fam_links : int;
  fam_all_green_s : float option;
  fam_converged_s : float option;
}

val topo_families : ?n:int -> unit -> family_row list

val print_families : Format.formatter -> family_row list -> unit

(** {1 E6 — data-plane traffic: disruption under reconfiguration} *)

type traffic_run = {
  tw_label : string;
  tw_flows : int;
  tw_offered : int;  (** weighted data-plane packets *)
  tw_delivered : int;
  tw_lost : int;
  tw_disrupted_flows : int;
  tw_window : (float * float) option;
      (** virtual-time envelope of lost-probe send times *)
  tw_disruption_s : float;
  tw_reconverged_s : float option;
  tw_queue_dropped : int;  (** link FIFO tail drops *)
  tw_classes : Rf_traffic.Measure.class_summary list;
}

type traffic_result = {
  tr_seed : int;
  tr_switches : int;
  tr_fail_at_s : float;
  tr_manual_response_s : float;
  tr_crash_at_s : float;
  tr_cut_at_s : float;
  tr_recover_at_s : float;
  tr_auto : traffic_run;  (** E3 cut, controller up *)
  tr_manual : traffic_run;
      (** same cut with the control platform down across it — the
          manual-operation baseline *)
  tr_reconciled : traffic_run;  (** E4 crash/restart, resync on *)
  tr_legacy : traffic_run;  (** E4 crash/restart, resync off *)
  tr_auto_shorter : bool;
      (** automatic disruption strictly shorter than manual *)
}

val traffic_spec :
  ?start_s:float -> switches:int -> horizon_s:float -> unit -> Rf_traffic.Spec.t
(** The standard E6 workload: a CBR "video" class (some pairs forced
    across the sw2-sw3 cut), an on-off "bursty" class, and a Poisson
    "web" class with heavy-tailed aggregated flows. [start_s] (default
    20, the E6 value) delays every class — large rings need the
    network configured before measuring it. *)

val traffic_disruption :
  ?seed:int ->
  ?switches:int ->
  ?fail_at_s:float ->
  ?manual_response_s:float ->
  ?crash_at_s:float ->
  ?cut_at_s:float ->
  ?recover_at_s:float ->
  ?horizon_s:float ->
  ?telemetry:string ->
  ?profiler:Rf_obs.Profiler.t ->
  unit ->
  traffic_result
(** Four measured runs of the standard workload on a ring with 10
    Mbit/s links (one host per switch, >= 8 switches): the E3 link cut
    with automatic reconfiguration vs. the manual baseline (controller
    down across the cut, operator responds [manual_response_s] later),
    and the E4 crash/restart with reconciled vs. legacy RPC.
    [telemetry] writes the automatic run's span/event JSONL. *)

val print_traffic : Format.formatter -> traffic_result -> unit
(** Deterministic: safe to fingerprint (no wall-clock content). *)

type traffic_scale_result = {
  ts_k : int;
  ts_switches : int;
  ts_hosts : int;
  ts_links : int;
  ts_pairs : int;
  ts_flows : int;
  ts_samples : int;
  ts_offered : int;
  ts_delivered : int;
  ts_lost : int;
  ts_horizon_s : float;
  ts_events : int;
  ts_elapsed_s : float;  (** CPU seconds; not deterministic *)
}

val traffic_scaling :
  ?seed:int ->
  ?k:int ->
  ?pairs_per_host:int ->
  ?arrivals_per_s:float ->
  ?horizon_s:float ->
  ?profiler:Rf_obs.Profiler.t ->
  unit ->
  traffic_scale_result
(** The E6 scaling run: a k-ary fat-tree (default k=20: 500 switches,
    2000 hosts) with Poisson flow arrivals through the aggregate
    fabric — >= 10^5 aggregated flows in 60 s of virtual time at the
    defaults. *)

val print_traffic_scaling :
  ?show_rate:bool -> Format.formatter -> traffic_scale_result -> unit
(** With [show_rate] the (non-deterministic) events/sec line is
    included; leave it off for fingerprinted summaries. *)

(** {1 E9 — controller-cluster failover under live traffic} *)

type cluster_run = {
  cw_traffic : traffic_run;
  cw_replicas : int;
  cw_digest : string;  (** RF-side state digest at the end of the run *)
  cw_elections : int;
  cw_failovers : int;
  cw_failover_s : float option;
      (** most recent leaderless interval, fault to re-election *)
  cw_leader : int option;
  cw_epoch : int32;
  cw_agree : bool;  (** live replicas end on the same committed log *)
  cw_applied : int;  (** committed entries surfaced to RouteFlow *)
  cw_reassignments : int;  (** switch sessions whose OpenFlow role flipped *)
  cw_rejected : int;  (** mutations fenced off outside the commit path *)
  cw_audit : audit_run option;  (** present with [audit] *)
}

type cluster_result = {
  cf_seed : int;
  cf_switches : int;
  cf_replicas : int;
  cf_crash_at_s : float;
  cf_cut_at_s : float;
  cf_recover_at_s : float;
  cf_manual_response_s : float;
  cf_auto : cluster_run;  (** replicated: leader crash, automatic failover *)
  cf_legacy : cluster_run;
      (** single controller: same crash needs the operator *)
  cf_digest_match : bool;
      (** both deployments configured the network identically *)
  cf_auto_shorter : bool;
}

val cluster_failover :
  ?seed:int ->
  ?switches:int ->
  ?replicas:int ->
  ?crash_at_s:float ->
  ?cut_at_s:float ->
  ?recover_at_s:float ->
  ?manual_response_s:float ->
  ?horizon_s:float ->
  ?traffic_start_s:float ->
  ?parallel_boot:int ->
  ?shards:int ->
  ?audit:bool ->
  ?telemetry:string ->
  ?profiler:Rf_obs.Profiler.t ->
  unit ->
  cluster_result
(** Two measured runs of the standard E6 workload on a ring with 10
    Mbit/s links: the replicated deployment loses its acting leader
    (replica 0, the deterministic bootstrap winner) just before the
    sw2-sw3 cut and fails over automatically, while the
    single-controller baseline suffers the same crash and waits
    [manual_response_s] for the operator. Both must end on the same
    RF-side state digest. [telemetry] writes the automatic run's
    span/event JSONL. At large ring sizes raise [parallel_boot],
    [traffic_start_s] and the fault times so provisioning completes
    before the measurement starts. [shards >= 2] registers the static
    block partition on the automatic run's network and surfaces its
    cut statistics in the telemetry meta (see {!Scenario.options}). *)

val print_cluster : Format.formatter -> cluster_result -> unit
(** Deterministic: safe to fingerprint (no wall-clock content). *)

(** {1 E10 — engine profile & shard-cut advisory}

    One E6-style scaling run with the {!Rf_obs.Profiler} attached:
    per-entity load attribution, heap/GC telemetry, and a
    {!Rf_obs.Shard_advisor} partition of the topology. Every figure in
    the deterministic report derives from simulation state (event
    counts, heap shape, message counts), so the summary can be
    fingerprinted; wall-clock rates and GC words appear only in the
    [wall] form of the printer. *)

type profile_result = {
  pf_scale : traffic_scale_result;
  pf_snapshot : Rf_obs.Profiler.snapshot;
  pf_report : Rf_obs.Shard_advisor.report;
  pf_overhead_pct : float option;
      (** profiled vs unprofiled wall-clock cost of the same run, in
          percent; only present with [measure_overhead] and never part
          of deterministic output *)
}

val advisor_input_of :
  Rf_net.Topology.t ->
  Rf_obs.Profiler.snapshot ->
  horizon_s:float ->
  Rf_obs.Shard_advisor.input
(** Builds the advisor's weighted graph: topology switches and hosts
    as nodes weighted by attributed event counts (link-entity events
    split between their endpoint switches), topology edges as the
    weight-free adjacency, and the profiler's message matrix (filtered
    to topology nodes) as the communication edges. *)

val profile_scaling :
  ?seed:int ->
  ?k:int ->
  ?pairs_per_host:int ->
  ?arrivals_per_s:float ->
  ?horizon_s:float ->
  ?shards:int ->
  ?measure_overhead:bool ->
  ?telemetry:string ->
  unit ->
  profile_result
(** The E6 scaling run (same defaults as {!traffic_scaling}) with
    profiling on, partitioned into [shards] (default 4) shards.
    [measure_overhead] first runs the identical workload unprofiled
    and reports the relative wall-clock cost of instrumentation. *)

val print_profile :
  ?wall:bool ->
  ?top:int ->
  Format.formatter ->
  profile_result ->
  unit
(** With [wall:false] (default) the report contains only
    simulation-deterministic figures — safe to fingerprint. [wall]
    adds busy-time, events/sec, GC and overhead lines. [top] (default
    10) bounds the entity table. *)

(** {1 E11 — sharded-engine speedup}

    The E6 scaling workload run on the conservative-lookahead
    {!Rf_sim.Shard_engine} across a sweep of shard counts, with a
    legacy single-engine run as differential oracle and load profile.
    Every shard count must reproduce the identical virtual-clock
    digest — the sweep measures wall-clock only. *)

type shard_speedup_run = {
  su_shards : int;
  su_mode : Rf_sim.Shard_engine.mode;
  su_lookahead_us : int;  (** conservative horizon, microseconds *)
  su_windows : int;  (** synchronization windows executed *)
  su_events : int;
  su_cross_msgs : int;  (** probes that crossed a shard boundary *)
  su_digest : string;  (** virtual-clock-only run digest *)
  su_fingerprint : string;  (** CI-stable summary fingerprint *)
  su_elapsed_s : float;  (** wall-clock; never deterministic *)
  su_speedup : float;  (** vs the shards=1 run of the same sweep *)
  su_bound : float;
      (** Amdahl bound of the cut actually used: total profiled host
          weight over the heaviest shard's *)
}

type shard_result = {
  sh_seed : int;
  sh_k : int;
  sh_hosts : int;
  sh_pairs : int;
  sh_horizon_s : float;
  sh_flows : int;
  sh_samples : int;
  sh_offered : int;
  sh_delivered : int;
  sh_lost : int;
  sh_legacy_events : int;  (** single-engine event count *)
  sh_legacy_elapsed_s : float;  (** CPU time, {!Sys.time} based *)
  sh_legacy_agrees : bool;
      (** sharded integer results match the legacy run *)
  sh_advisor_bounds : (int * float) list;
      (** {!Rf_obs.Shard_advisor} speedup bound per shard count >= 2,
          from the profiled legacy run *)
  sh_runs : shard_speedup_run list;  (** in [shard_counts] order *)
  sh_deterministic : bool;  (** all digests byte-identical *)
}

val shard_speedup :
  ?seed:int ->
  ?k:int ->
  ?pairs_per_host:int ->
  ?arrivals_per_s:float ->
  ?horizon_s:float ->
  ?shard_counts:int list ->
  ?mode:Rf_sim.Shard_engine.mode ->
  ?advisor_cut:bool ->
  ?cut:(int -> string -> int) ->
  unit ->
  shard_result
(** Runs the E6 workload (defaults scaled down: k=10, 20 s horizon)
    once on the legacy engine with the profiler attached, then once
    per entry of [shard_counts] (default [[1;2;4;8]]) on the sharded
    runner. [cut n] maps a host name to its shard in [[0, n)];
    the default is a contiguous block cut by host index, keeping
    fat-tree pods together, or — with [advisor_cut] — the
    {!Rf_obs.Shard_advisor} partition derived from the profiled
    legacy run. Shards=1 runs [Sequential]; other counts use [mode]
    (default [Parallel], one domain per shard). Raises
    [Invalid_argument] if [shard_counts] is empty. *)

val print_shard : ?wall:bool -> Format.formatter -> shard_result -> unit
(** With [wall:false] (default) prints only virtual-clock figures —
    safe to fingerprint across machines and shard counts. [wall] adds
    per-run elapsed seconds and speedups. *)

val assignment_cut : (string * int) list -> string -> int
(** Host→shard lookup over an entity→shard assignment (advisor ids
    ["host:<name>"] first, bare names second). Raises
    [Invalid_argument] for a host absent from the map. *)

val scaling_sharded :
  ?seed:int ->
  ?k:int ->
  ?pairs_per_host:int ->
  ?arrivals_per_s:float ->
  ?horizon_s:float ->
  ?mode:Rf_sim.Shard_engine.mode ->
  ?profile:bool ->
  ?assignment:(string * int) list ->
  shards:int ->
  unit ->
  Rf_traffic.Shard_run.result
(** One sharded run of the E6 scaling workload (same defaults as
    {!traffic_scaling}). [assignment] is an entity→shard map — e.g.
    loaded from a [rfauto-shard-map-v1] file — consulted first under
    the advisor's ["host:<name>"] ids and then under bare names;
    without it the contiguous block cut by host index is used.
    [profile] attaches a profiler per shard and merges the snapshots
    ({!Rf_obs.Profiler.merge}) into the result. Raises
    [Invalid_argument] when a host is missing from [assignment] or a
    shard id falls outside [[0, shards)]. *)

val print_scaling_sharded :
  ?wall:bool -> Format.formatter -> Rf_traffic.Shard_run.result -> unit
(** With [wall:false] (default) the report is byte-identical for a
    given seed regardless of shard count — the CI shard fingerprint.
    [wall] adds events/sec and elapsed seconds. *)

(** {1 E12 — forwarding-state audit of the fault replays}

    The E3 link-cut, E4 crash/restart and E9 leader-crash fault
    schedules replayed with the {!Rf_obs.Auditor} attached, automatic
    vs. legacy control plane, on rings with one host per switch and no
    traffic workload — E12 measures the forwarding *state*: how long
    each fault leaves the network with loops, blackholes, RIB–FIB
    divergence or slice escapes, as violation windows in virtual
    time. *)

type audit_pair = {
  ap_name : string;  (** "e3-link-cut" / "e4-restart" / "e9-leader-crash" *)
  ap_detail : string;  (** printable fault schedule *)
  ap_switches : int;
  ap_auto : audit_run;
  ap_legacy : audit_run;
}

type audit_result = {
  ad_seed : int;
  ad_pairs : audit_pair list;  (** E3, E4, E9 order *)
  ad_steady_total : int;
      (** steady-state violations across every run — `rfauto audit`
          exits 5 unless this is 0 *)
}

val audit_ring_run :
  ?telemetry:string ->
  scenario:string ->
  label:string ->
  seed:int ->
  switches:int ->
  replicas:int ->
  resync:bool ->
  faults:Rf_sim.Faults.plan ->
  first_fault_s:float ->
  horizon_s:float ->
  unit ->
  audit_run
(** One audited control-plane replay: a ring with one host subnet per
    switch (no traffic workload), the given fault plan, and the
    auditor attached. The building block of {!audit_windows}; exposed
    so tests can pin reduced-size replays. *)

val audit_windows :
  ?seed:int ->
  ?e3_switches:int ->
  ?e4_switches:int ->
  ?e9_switches:int ->
  ?e9_replicas:int ->
  ?telemetry:string ->
  unit ->
  audit_result
(** Defaults mirror the source experiments: E3 on a 6-ring (cut at
    60 s; legacy: controller down 58–85 s), E4 on an 8-ring (crash 4 s,
    cut 8 s, recover 20 s; legacy: no resync), E9 on a 28-ring with 3
    replicas (leader crash 30 s, cut 36 s, rejoin 60 s; legacy: single
    controller back at 55 s). [telemetry] writes the E9 automatic run's
    span/event JSONL — its [audit.violation] spans are the headline
    windows. Deterministic: same seed, byte-identical windows. *)

val print_audit : Format.formatter -> audit_result -> unit
(** Virtual-clock figures only — the CI E12 fingerprint. *)
