(** Builds the complete system of the paper's Fig. 2 around an emulated
    topology: switches and hosts ({!Rf_net.Network}), FlowVisor with
    the topology and RouteFlow slices, the topology controller
    (discovery + autoconfig + RPC client), and the RF-controller (RPC
    server + RouteFlow + VMs), plus the red/green GUI.

    Host subnets are assigned 10.0.k.0/24 in host-name order: host = .2,
    VM gateway = .1; these become the administrator's static edge input
    to the topology controller. *)

open Rf_packet

type options = {
  seed : int;
  rf_params : Rf_routeflow.Rf_system.params;
  rpc_params : Rf_rpc.Rpc_client.params;
      (** supervision knobs of the RPC session (backoff, heartbeats,
          resync-on-restart) *)
  probe_interval : Rf_sim.Vtime.span;  (** LLDP probe period *)
  control_latency : Rf_sim.Vtime.span;  (** switch↔FlowVisor↔controller *)
  rpc_latency : Rf_sim.Vtime.span;  (** RPC client↔server *)
  ip_range : Ipv4_addr.Prefix.t;  (** the administrator's range *)
  faults : Rf_sim.Faults.plan;
      (** deterministic fault plan injected into the built system *)
  link_capacity : Rf_net.Link.capacity option;
      (** when set, applied to every data-plane link at build time so
          congestion and blackholing produce real loss (default [None]:
          ideal links, the pre-traffic behaviour) *)
  cluster_replicas : int;
      (** RF-controller replicas. 1 (default) keeps the legacy single
          controller with no cluster machinery at all; >= 2 routes
          every configuration message through a replicated log
          ({!Rf_rpc.Cluster}) with leader election, guards the
          RouteFlow state behind the commit path, and fails switch
          OpenFlow sessions over to each new leader *)
  profiler : Rf_obs.Profiler.t option;
      (** when set, attached to the engine before anything is
          scheduled, so boot-phase work is attributed too *)
  shards : int;
      (** >= 2 registers a static contiguous block partition of the
          network nodes ({!Rf_net.Network.set_partition}) and surfaces
          its cut statistics — shard count, cross links, lookahead
          bound — in the telemetry meta. 1 (default) records nothing,
          keeping unpartitioned fingerprints unchanged. Build raises
          [Invalid_argument] when a zero-latency link crosses the
          cut, since such a cut leaves a sharded engine no
          conservative-lookahead horizon *)
  audit : bool;
      (** attaches a continuous forwarding-state auditor
          ({!Rf_obs.Auditor}) fed by flow-table snapshots (on every
          flow-mod and expiry), link-state transitions, per-VM RIB
          publications and FlowVisor slice attributions. Violation
          windows appear as [audit.violation] spans in the telemetry
          and as [audit_*] meta keys ([audit_dropped] always present
          when auditing, so completeness rules can bind to it). Off
          (default) adds no meta keys, keeping every pinned
          fingerprint unchanged *)
}

val default_options : options
(** seed 42, paper-era RouteFlow params (8 s serialized boots), 5 s
    probes, 1 ms control and RPC latency, range 172.16.0.0/16, no
    faults. *)

type t

val build : ?options:options -> Rf_net.Topology.t -> t

(** {1 Component access} *)

val engine : t -> Rf_sim.Engine.t

val network : t -> Rf_net.Network.t

val flowvisor : t -> Rf_flowvisor.Flowvisor.t

val discovery : t -> Rf_controller.Discovery.t

val autoconfig : t -> Autoconfig.t

val rf_system : t -> Rf_routeflow.Rf_system.t

val rf_app : t -> Rf_routeflow.Rf_controller_app.t

val rpc_client : t -> Rf_rpc.Rpc_client.t

val rpc_server : t -> Rf_rpc.Rpc_server.t

val cluster : t -> Rf_rpc.Cluster.t option
(** The controller cluster; [None] unless [cluster_replicas >= 2]. *)

val auditor : t -> Rf_obs.Auditor.t option
(** The forwarding-state auditor; [None] unless [options.audit]. *)

val gui : t -> Gui.t

val host : t -> string -> Rf_net.Host.t

val host_ip : t -> string -> Ipv4_addr.t

val switch_count : t -> int

(** {1 Running and instrumentation} *)

val run_for : t -> Rf_sim.Vtime.span -> unit
(** Advances the simulation by the given span of virtual time. *)

val add_vm_ready_listener : t -> (int64 -> unit) -> unit

val all_configured_at : t -> Rf_sim.Vtime.t option
(** When the last switch turned green (paper metric: every switch has
    its VM). *)

val routing_converged_at : t -> Rf_sim.Vtime.t option
(** When every VM's RIB covered every subnet of the network (checked
    once per simulated second). *)

val total_subnets : t -> int

(** {1 Fault injection}

    Built from [options.faults]: timed events fire on the engine's
    clock (link flaps via {!Rf_net.Network.set_link_up}, switch crashes
    via disconnect/reconnect, VM clone failures via
    {!Rf_routeflow.Rf_system.arm_boot_failures}, RF-controller
    crash/restart via the RPC server's crash/restart), an optional
    lossy profile applies to the topology slice's OpenFlow connections,
    and another to both directions of the RPC session. All randomness
    descends from [options.seed], so a run is replayable from its seed
    alone. *)

val fault_events_fired : t -> int

val last_fault_at : t -> Rf_sim.Vtime.t option
(** When the most recent planned fault fired. *)

(** {1 Telemetry}

    Every scenario shares its engine's tracer and metrics registry; the
    span tree decomposes each switch's configuration time into
    discovery, RPC, VM-provisioning and Quagga phases, with one
    retroactive [phase.convergence] span covering the routing tail. *)

val telemetry_jsonl : ?meta:(string * string) list -> t -> string
(** The full span/event stream as JSON lines, preceded by a meta line:
    seed, switch and subnet counts, run outcomes when observed
    ([all_green_s], [converged_s], [last_fault_s], [reconverged_s],
    [fault_events]), drop counts when non-zero ([trace_dropped] plus
    the exporter's own), and [meta]. Deterministic: two same-seed runs
    produce byte-identical output, and the meta line alone lets
    [Rf_obs.Slo] judge a run from its telemetry file. *)

val write_telemetry : ?meta:(string * string) list -> t -> string -> unit
(** [write_telemetry t path] dumps {!telemetry_jsonl} to [path]. *)

val prometheus : t -> string
(** Prometheus-style text exposition of the metrics registry. *)

val span_stats : t -> Rf_obs.Export.span_stat list
(** Per-span-name aggregates (count, open, total/mean/max seconds). *)

val trace_dropped : t -> int
(** Event-log records discarded because the trace ring was full. *)

val reconverged_at : t -> Rf_sim.Vtime.t option
(** Time of the last observed route-table change at or after the last
    injected fault — the moment the routing control platform settled
    into its post-fault state. [None] until a fault has fired and some
    VM's selected routes have changed since (route tables are digested
    once per simulated second, only when a fault plan is present). *)
