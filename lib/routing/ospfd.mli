(** OSPFv2 daemon (the ospfd of the Quagga substrate).

    Point-to-point network model, single backbone area: hello-based
    neighbor discovery and liveness, a simplified database-description
    / request / update adjacency bring-up, reliable flooding of router
    LSAs with explicit acks and retransmission, and Dijkstra SPF
    feeding OSPF routes into the RIB.

    Interfaces are {!Iface.t} values wired by the caller (in RouteFlow,
    to the RF virtual switch). Passive interfaces advertise their
    connected subnet as a stub link but exchange no protocol packets —
    the host-facing ports. *)

open Rf_packet

type config = {
  router_id : Ipv4_addr.t;
  area_id : Ipv4_addr.t;
  hello_interval : int;  (** seconds *)
  dead_interval : int;
  rxmt_interval : int;
  spf_delay : Rf_sim.Vtime.span;  (** holddown between LSDB change and SPF *)
  reference_cost : int;  (** default interface cost *)
}

val default_config : router_id:Ipv4_addr.t -> config
(** Quagga defaults: hello 10 s, dead 40 s, rxmt 5 s, SPF delay 1 s,
    cost 10, area 0.0.0.0. *)

type neighbor_state = Down | Init | Exstart | Exchange | Loading | Full

type neighbor_info = {
  ni_router_id : Ipv4_addr.t;
  ni_addr : Ipv4_addr.t;
  ni_iface : string;
  ni_state : neighbor_state;
}

type t

val create :
  Rf_sim.Engine.t -> ?entity:Rf_obs.Profiler.entity -> config -> Rib.t -> t
(** [entity] tags the daemon's timers (hello, SPF, dead-scan) for load
    attribution — the owning VM passes its switch entity. *)

val config : t -> config

val add_interface : t -> ?cost:int -> ?passive:bool -> Iface.t -> unit
(** Must be called before [start]. Also installs the connected route
    into the RIB. *)

val start : t -> unit
(** Sends the first hellos immediately and starts all timers. *)

val stop : t -> unit
(** Cancels timers and withdraws OSPF routes. *)

val router_id : t -> Ipv4_addr.t

val neighbors : t -> neighbor_info list

val lsdb : t -> Ospf_pkt.lsa list

val lsdb_size : t -> int

val spf_runs : t -> int

val spf_now : t -> int
(** Runs SPF synchronously (outside the normal holddown scheduling) and
    returns the number of OSPF routes produced. Incremental: repairs
    only the part of the shortest-path tree affected by LSAs changed
    since the last run. For benchmarks. *)

val spf_now_full : t -> int
(** Like {!spf_now} but recomputes the whole tree from the LSDB from
    scratch. The reference oracle for the incremental path: both must
    produce identical routes. *)

val install_lsa : t -> Ospf_pkt.lsa -> unit
(** Installs an LSA directly into the LSDB (bypassing flooding) and
    schedules SPF, as receiving it in an LS Update would. For
    benchmarks and differential tests. *)

val is_adjacent_to : t -> Ipv4_addr.t -> bool
(** Full adjacency with the given router id. *)

val full_neighbor_count : t -> int

val neighbor_addr_of_router : t -> Ipv4_addr.t -> Ipv4_addr.t option
(** Interface address of a directly-adjacent router (next-hop
    resolution). *)

val set_on_route_change : t -> (unit -> unit) -> unit
(** Fired after each SPF run that changed the OSPF route set. *)

val pp_neighbor : Format.formatter -> neighbor_info -> unit
