open Rf_packet

(* Router ids are 32-bit; as plain ints they make cheap hash keys and
   keep the heap allocation-free. *)
let key rid = Int32.to_int (Ipv4_addr.to_int32 rid) land 0xFFFFFFFF

type node = { n_rid : Ipv4_addr.t; n_out : int array; n_metric : int array }

type graph = (int, node) Hashtbl.t

let graph_create () : graph = Hashtbl.create 64

let graph_set_links (g : graph) rid links =
  let n = List.length links in
  let out = Array.make n 0 and metric = Array.make n 0 in
  List.iteri
    (fun i (nbr, m) ->
      out.(i) <- key nbr;
      metric.(i) <- m)
    links;
  Hashtbl.replace g (key rid) { n_rid = rid; n_out = out; n_metric = metric }

let graph_remove (g : graph) rid = Hashtbl.remove g (key rid)

let graph_reset (g : graph) = Hashtbl.reset g

let links_back node k =
  let n = Array.length node.n_out in
  let rec go i = i < n && (Array.unsafe_get node.n_out i = k || go (i + 1)) in
  go 0

(* Cheapest of [node]'s links to [k], or -1. Duplicate links can carry
   different metrics; only the cheapest can be tight. *)
let metric_to node k =
  let best = ref (-1) in
  Array.iteri
    (fun i nk ->
      if nk = k then begin
        let m = node.n_metric.(i) in
        if !best < 0 || m < !best then best := m
      end)
    node.n_out;
  !best

type t = {
  root : Ipv4_addr.t;
  root_key : int;
  dist : (int, int) Hashtbl.t;
  parent : (int, int) Hashtbl.t;
  fh : (int, int) Hashtbl.t;  (* first-hop key; -1 = no derivable hop *)
  (* pref = root-link index of the node's first hop (see
     [canonical_pass]); persisted so incremental runs can reuse the
     inherited preference of untouched nodes. *)
  pref : (int, int) Hashtbl.t;
  rids : (int, Ipv4_addr.t) Hashtbl.t;
  visited : (int, unit) Hashtbl.t;  (* relax_run scratch *)
  mutable heap_d : int array;
  mutable heap_k : int array;
  mutable heap_len : int;
  mutable computed : bool;
}

let create ~root =
  {
    root;
    root_key = key root;
    dist = Hashtbl.create 64;
    parent = Hashtbl.create 64;
    fh = Hashtbl.create 64;
    pref = Hashtbl.create 64;
    rids = Hashtbl.create 64;
    visited = Hashtbl.create 64;
    heap_d = Array.make 64 0;
    heap_k = Array.make 64 0;
    heap_len = 0;
    computed = false;
  }

(* Binary min-heap over (dist, key) as two parallel int arrays, with
   lazy deletion: stale entries are skipped when popped. *)

let heap_push t d k =
  if t.heap_len = Array.length t.heap_d then begin
    let cap = 2 * t.heap_len in
    let nd = Array.make cap 0 and nk = Array.make cap 0 in
    Array.blit t.heap_d 0 nd 0 t.heap_len;
    Array.blit t.heap_k 0 nk 0 t.heap_len;
    t.heap_d <- nd;
    t.heap_k <- nk
  end;
  let hd = t.heap_d and hk = t.heap_k in
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  hd.(!i) <- d;
  hk.(!i) <- k;
  while !i > 0 && hd.((!i - 1) / 2) > hd.(!i) do
    let p = (!i - 1) / 2 in
    let td = hd.(p) and tk = hk.(p) in
    hd.(p) <- hd.(!i);
    hk.(p) <- hk.(!i);
    hd.(!i) <- td;
    hk.(!i) <- tk;
    i := p
  done

(* [track] (when given) collects every key whose distance was set or
   improved during the run — the change set driving the incremental
   canonical pass. *)
let relax_run t g ~track =
  let visited = t.visited in
  Hashtbl.reset visited;
  while t.heap_len > 0 do
    let hd = t.heap_d and hk = t.heap_k in
    let d = hd.(0) and u = hk.(0) in
    t.heap_len <- t.heap_len - 1;
    hd.(0) <- hd.(t.heap_len);
    hk.(0) <- hk.(t.heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.heap_len && hd.(l) < hd.(!smallest) then smallest := l;
      if r < t.heap_len && hd.(r) < hd.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let td = hd.(!smallest) and tk = hk.(!smallest) in
        hd.(!smallest) <- hd.(!i);
        hk.(!smallest) <- hk.(!i);
        hd.(!i) <- td;
        hk.(!i) <- tk;
        i := !smallest
      end
      else continue := false
    done;
    let live =
      (not (Hashtbl.mem visited u))
      &&
      match Hashtbl.find_opt t.dist u with Some cur -> cur = d | None -> false
    in
    if live then begin
      Hashtbl.replace visited u ();
      match Hashtbl.find_opt g u with
      | None -> ()
      | Some unode ->
          Array.iteri
            (fun idx v ->
              match Hashtbl.find_opt g v with
              | Some vnode when links_back vnode u ->
                  let nd = d + unode.n_metric.(idx) in
                  let better =
                    match Hashtbl.find_opt t.dist v with
                    | Some old -> nd < old
                    | None -> true
                  in
                  if better then begin
                    Hashtbl.replace t.dist v nd;
                    Hashtbl.replace t.rids v vnode.n_rid;
                    (match track with
                    | Some tbl -> Hashtbl.replace tbl v ()
                    | None -> ());
                    heap_push t nd v
                  end
              | Some _ | None -> ())
            unode.n_out
    end
  done

(* Parents and first hops as a pure function of the distance map, so
   full and incremental runs derive identical trees whatever order they
   relaxed edges in. Nodes are processed in (dist, key) order; the
   canonical parent of [v] is the tight in-neighbor [u] (dist u +
   metric = dist v, (dist u, u) lexicographically before (dist v, v))
   whose first hop appears earliest among the root's own out-links,
   breaking remaining ties on the smaller key. Preferring the earliest
   root link reproduces the equal-cost choices of the classic
   relax-order-dependent Dijkstra on symmetric topologies (the first
   link originated is the first relaxed), keeping route fingerprints
   stable across the rewrite. *)
let root_idx_fn t g =
  let root_out =
    match Hashtbl.find_opt g t.root_key with
    | Some n -> n.n_out
    | None -> [||]
  in
  fun k ->
    let n = Array.length root_out in
    let rec go i =
      if i >= n then max_int else if root_out.(i) = k then i else go (i + 1)
    in
    go 0

(* Reachable non-root nodes in (dist, key) order, packed as
   (d lsl 32) lor key into a sorted int array. Distances stay well
   under 2^30 (16-bit link metrics times the node count), so the
   packing is exact and the sort allocation-light. *)
let ordered_nodes t =
  let n = Hashtbl.length t.dist in
  let a = Array.make (max n 1) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun v d ->
      if v <> t.root_key then begin
        a.(!i) <- (d lsl 32) lor v;
        incr i
      end)
    t.dist;
  let a = if !i = n then a else Array.sub a 0 !i in
  Array.sort (fun (x : int) y -> compare x y) a;
  a

(* Canonical parent of [v]: the tight in-neighbor [u] (dist u + metric
   = dist v, (dist u, u) lexicographically before (dist v, v)) whose
   first hop appears earliest among the root's own out-links, breaking
   remaining ties on the smaller key. In-neighbors of [v] all appear
   among [v]'s own out-links: a validated edge u->v requires v to link
   back to u. Returns (parent, pref); (-1, max_int) when none. *)
let select_parent t g root_idx vnode v dv =
  let best = ref (-1) and best_pref = ref max_int in
  Array.iter
    (fun u ->
      if u <> v then begin
        match Hashtbl.find_opt t.dist u with
        | Some du when du < dv || (du = dv && u < v) -> (
            match Hashtbl.find_opt g u with
            | Some unode ->
                let c = metric_to unode v in
                if c >= 0 && du + c = dv then begin
                  let p =
                    if u = t.root_key then root_idx v
                    else
                      match Hashtbl.find_opt t.pref u with
                      | Some p -> p
                      | None -> max_int
                  in
                  if
                    p < !best_pref || (p = !best_pref && (!best < 0 || u < !best))
                  then begin
                    best := u;
                    best_pref := p
                  end
                end
            | None -> ())
        | Some _ | None -> ()
      end)
    vnode.n_out;
  (!best, !best_pref)

let store_parent t v best best_pref =
  Hashtbl.replace t.parent v best;
  Hashtbl.replace t.pref v best_pref;
  if best = t.root_key then Hashtbl.replace t.fh v v
  else
    let h = match Hashtbl.find_opt t.fh best with Some h -> h | None -> -1 in
    Hashtbl.replace t.fh v h

(* Parents and first hops as a pure function of the distance map, so
   full and incremental runs derive identical trees whatever order they
   relaxed edges in. Nodes are processed in (dist, key) order — every
   candidate parent precedes the node it serves, so inherited
   preferences are final when read. Preferring the earliest root link
   reproduces the equal-cost choices of the classic
   relax-order-dependent Dijkstra on symmetric topologies (the first
   link originated is the first relaxed), keeping route fingerprints
   stable across the rewrite. *)
let canonical_pass t g =
  Hashtbl.reset t.parent;
  Hashtbl.reset t.fh;
  Hashtbl.reset t.pref;
  let root_idx = root_idx_fn t g in
  Array.iter
    (fun packed ->
      let dv = packed lsr 32 and v = packed land 0xFFFFFFFF in
      match Hashtbl.find_opt g v with
      | None -> ()
      | Some vnode ->
          let best, best_pref = select_parent t g root_idx vnode v dv in
          if best >= 0 then store_parent t v best best_pref)
    (ordered_nodes t)

(* Incremental variant: [touched] holds every key whose distance or
   adjacency changed this run. A node outside [touched] with no
   touched neighbor keeps its stored parent: its own distance, its
   candidates' distances and the connecting metrics are all unchanged,
   and so are the candidates' inherited preferences (fh changes
   propagate through [fh_changed]). Processing in (dist, key) order
   makes each candidate's final pref available when read, exactly as
   in the full pass. *)
let canonical_update t g ~touched =
  let fh_changed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let root_idx = root_idx_fn t g in
  Array.iter
    (fun packed ->
      let dv = packed lsr 32 and v = packed land 0xFFFFFFFF in
      match Hashtbl.find_opt g v with
      | None -> ()
      | Some vnode ->
          let need =
            Hashtbl.mem touched v
            ||
            let n = Array.length vnode.n_out in
            let rec scan i =
              i < n
              &&
              let u = Array.unsafe_get vnode.n_out i in
              Hashtbl.mem touched u || Hashtbl.mem fh_changed u || scan (i + 1)
            in
            scan 0
          in
          if need then begin
            let old_fh = Hashtbl.find_opt t.fh v in
            let best, best_pref = select_parent t g root_idx vnode v dv in
            if best >= 0 then store_parent t v best best_pref
            else begin
              Hashtbl.remove t.parent v;
              Hashtbl.remove t.fh v;
              Hashtbl.remove t.pref v
            end;
            if Hashtbl.find_opt t.fh v <> old_fh then
              Hashtbl.replace fh_changed v ()
          end)
    (ordered_nodes t)

let full t g =
  Hashtbl.reset t.dist;
  Hashtbl.reset t.rids;
  t.heap_len <- 0;
  Hashtbl.replace t.dist t.root_key 0;
  Hashtbl.replace t.rids t.root_key t.root;
  heap_push t 0 t.root_key;
  relax_run t g ~track:None;
  canonical_pass t g;
  t.computed <- true

let update t g ~dirty =
  if (not t.computed) || List.exists (fun rid -> key rid = t.root_key) dirty
  then full t g
  else if dirty <> [] then begin
    (* Invalidate the dirty routers plus everything the old tree
       reached through them; what is left keeps correct distances
       (their canonical paths avoid every changed router, and edges
       between two unchanged routers cannot have changed). *)
    let children : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun v p ->
        let prev =
          match Hashtbl.find_opt children p with Some l -> l | None -> []
        in
        Hashtbl.replace children p (v :: prev))
      t.parent;
    let invalid : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let rec mark k =
      if not (Hashtbl.mem invalid k) then begin
        Hashtbl.replace invalid k ();
        match Hashtbl.find_opt children k with
        | Some kids -> List.iter mark kids
        | None -> ()
      end
    in
    List.iter (fun rid -> mark (key rid)) dirty;
    Hashtbl.iter
      (fun k () ->
        Hashtbl.remove t.dist k;
        Hashtbl.remove t.rids k)
      invalid;
    t.heap_len <- 0;
    (* Seed the frontier with the best edge from each still-valid node
       into the invalidated hole, then let Dijkstra repair the hole.
       Improvements to valid nodes through the changed region propagate
       by ordinary relaxation once the hole nodes settle. *)
    Hashtbl.iter
      (fun w () ->
        match Hashtbl.find_opt g w with
        | None -> ()
        | Some wnode ->
            Array.iter
              (fun u ->
                match Hashtbl.find_opt t.dist u with
                | None -> ()
                | Some du -> (
                    match Hashtbl.find_opt g u with
                    | Some unode ->
                        let c = metric_to unode w in
                        if c >= 0 then begin
                          let nd = du + c in
                          let better =
                            match Hashtbl.find_opt t.dist w with
                            | Some old -> nd < old
                            | None -> true
                          in
                          if better then begin
                            Hashtbl.replace t.dist w nd;
                            Hashtbl.replace t.rids w wnode.n_rid;
                            heap_push t nd w
                          end
                        end
                    | None -> ()))
              wnode.n_out)
      invalid;
    (* [invalid] doubles as the canonical pass's change set: relax_run
       adds every node whose distance improved, so afterwards it holds
       exactly the keys whose distance or adjacency changed. *)
    relax_run t g ~track:(Some invalid);
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem t.dist k) then begin
          Hashtbl.remove t.parent k;
          Hashtbl.remove t.fh k;
          Hashtbl.remove t.pref k
        end)
      invalid;
    canonical_update t g ~touched:invalid
  end

let dist t rid = Hashtbl.find_opt t.dist (key rid)

let first_hop t rid =
  match Hashtbl.find_opt t.fh (key rid) with
  | Some h when h >= 0 -> Hashtbl.find_opt t.rids h
  | Some _ | None -> None

let iter t f =
  Hashtbl.iter
    (fun v d ->
      if v <> t.root_key then
        match Hashtbl.find_opt t.fh v with
        | Some h when h >= 0 ->
            f (Hashtbl.find t.rids v) d (Hashtbl.find t.rids h)
        | Some _ | None -> ())
    t.dist

let reachable t =
  let acc = ref [] in
  iter t (fun rid d h -> acc := (rid, d, h) :: !acc);
  List.sort (fun (a, _, _) (b, _, _) -> Ipv4_addr.compare a b) !acc
