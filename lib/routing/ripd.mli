(** RIPv2 daemon (the ripd of the Quagga substrate).

    Distance-vector routing per RFC 2453: periodic full-table responses
    every 30 s (jittered), split horizon with poisoned reverse,
    triggered updates on metric change, 180 s route timeout and 120 s
    garbage-collection hold. Routes install into the RIB at Quagga's
    RIP distance (120).

    RIP converges in O(diameter) update rounds where OSPF floods in
    milliseconds — the protocol ablation of the experiment harness
    makes that visible. *)

open Rf_packet

type config = {
  update_interval : float;  (** seconds, default 30 *)
  timeout : float;  (** default 180 *)
  garbage : float;  (** default 120 *)
}

val default_config : config

type t

val create :
  Rf_sim.Engine.t ->
  ?entity:Rf_obs.Profiler.entity ->
  ?config:config ->
  Rib.t ->
  t

val add_interface : t -> ?passive:bool -> Iface.t -> unit
(** Must be addressed. Advertises the connected subnet at metric 1 and
    installs the connected route. *)

val start : t -> unit
(** Sends an immediate request + first response round. *)

val stop : t -> unit

val route_count : t -> int
(** RIP-learned routes currently valid (metric < 16). *)

val table : t -> (Ipv4_addr.Prefix.t * int * Ipv4_addr.t option) list
(** (prefix, metric, next hop) including connected entries, sorted. *)

val updates_sent : t -> int

val triggered_updates : t -> int
