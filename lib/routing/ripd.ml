open Rf_packet

type config = { update_interval : float; timeout : float; garbage : float }

let default_config = { update_interval = 30.; timeout = 180.; garbage = 120. }

type rentry = {
  re_prefix : Ipv4_addr.Prefix.t;
  mutable re_metric : int;
  mutable re_next_hop : Ipv4_addr.t option;  (** [None] = connected *)
  mutable re_iface : string;
  mutable re_expires : Rf_sim.Vtime.t option;
  mutable re_garbage : Rf_sim.Vtime.t option;
  mutable re_changed : bool;
}

type riface = { ifc : Iface.t; passive : bool }

type t = {
  engine : Rf_sim.Engine.t;
  entity : Rf_obs.Profiler.entity option;
  cfg : config;
  rib : Rib.t;
  mutable ifaces : riface list;
  table : (Ipv4_addr.Prefix.t, rentry) Hashtbl.t;
  mutable started : bool;
  mutable timers : Rf_sim.Engine.timer list;
  mutable trig_scheduled : bool;
  mutable sent : int;
  mutable triggered : int;
}

let create engine ?entity ?(config = default_config) rib =
  {
    engine;
    entity;
    cfg = config;
    rib;
    ifaces = [];
    table = Hashtbl.create 32;
    started = false;
    timers = [];
    trig_scheduled = false;
    sent = 0;
    triggered = 0;
  }

(* --- sending -------------------------------------------------------- *)

let entries_for t rif ~only_changed =
  (* Split horizon with poisoned reverse: routes learned through this
     interface are advertised back with metric infinity. *)
  Hashtbl.fold
    (fun _ e acc ->
      if only_changed && not e.re_changed then acc
      else begin
        let metric =
          if
            e.re_next_hop <> None
            && String.equal e.re_iface (Iface.name rif.ifc)
          then Rip_pkt.infinity_metric
          else e.re_metric
        in
        { Rip_pkt.e_prefix = e.re_prefix; e_next_hop = Ipv4_addr.any; e_metric = metric }
        :: acc
      end)
    t.table []

let send_response t rif entries =
  if (not rif.passive) && Iface.is_up rif.ifc && entries <> [] then begin
    let rec batches = function
      | [] -> ()
      | es ->
          let batch, rest =
            if List.length es <= Rip_pkt.max_entries then (es, [])
            else
              ( List.filteri (fun i _ -> i < Rip_pkt.max_entries) es,
                List.filteri (fun i _ -> i >= Rip_pkt.max_entries) es )
          in
          t.sent <- t.sent + 1;
          Iface.send rif.ifc
            (Packet.udp ~src_mac:(Iface.mac rif.ifc) ~dst_mac:Rip_pkt.multicast_mac
               ~src_ip:(Iface.ip rif.ifc) ~dst_ip:Rip_pkt.multicast_group ~ttl:1
               (Udp.make ~src_port:Rip_pkt.port ~dst_port:Rip_pkt.port
                  (Rip_pkt.to_wire (Rip_pkt.Response batch))));
          batches rest
    in
    batches entries
  end

let broadcast t ~only_changed =
  List.iter (fun rif -> send_response t rif (entries_for t rif ~only_changed)) t.ifaces

let clear_changed t = Hashtbl.iter (fun _ e -> e.re_changed <- false) t.table

(* --- RIB synchronization ---------------------------------------------- *)

let sync_rib t =
  let routes =
    Hashtbl.fold
      (fun _ e acc ->
        match e.re_next_hop with
        | Some nh when e.re_metric < Rip_pkt.infinity_metric ->
            {
              Rib.r_prefix = e.re_prefix;
              r_proto = Rib.Rip;
              r_distance = Rib.default_distance Rib.Rip;
              r_metric = e.re_metric;
              r_next_hop = Some nh;
              r_iface = e.re_iface;
            }
            :: acc
        | Some _ | None -> acc)
      t.table []
  in
  Rib.replace_proto t.rib Rib.Rip routes

let schedule_triggered t =
  if t.started && not t.trig_scheduled then begin
    t.trig_scheduled <- true;
    ignore
      (Rf_sim.Engine.schedule ?entity:t.entity t.engine
         (Rf_sim.Vtime.span_s 1.0) (fun () ->
           t.trig_scheduled <- false;
           t.triggered <- t.triggered + 1;
           broadcast t ~only_changed:true;
           clear_changed t))
  end

let mark_unreachable t e =
  if e.re_metric <> Rip_pkt.infinity_metric then begin
    e.re_metric <- Rip_pkt.infinity_metric;
    e.re_changed <- true;
    e.re_expires <- None;
    e.re_garbage <-
      Some
        (Rf_sim.Vtime.add (Rf_sim.Engine.now t.engine)
           (Rf_sim.Vtime.span_s t.cfg.garbage));
    sync_rib t;
    schedule_triggered t
  end

(* --- receiving ----------------------------------------------------------- *)

let process_entry t rif ~src (entry : Rip_pkt.entry) =
  let now = Rf_sim.Engine.now t.engine in
  let metric = min (entry.e_metric + 1) Rip_pkt.infinity_metric in
  let fresh_expiry = Some (Rf_sim.Vtime.add now (Rf_sim.Vtime.span_s t.cfg.timeout)) in
  match Hashtbl.find_opt t.table entry.e_prefix with
  | None ->
      if metric < Rip_pkt.infinity_metric then begin
        Hashtbl.replace t.table entry.e_prefix
          {
            re_prefix = entry.e_prefix;
            re_metric = metric;
            re_next_hop = Some src;
            re_iface = Iface.name rif.ifc;
            re_expires = fresh_expiry;
            re_garbage = None;
            re_changed = true;
          };
        sync_rib t;
        schedule_triggered t
      end
  | Some e -> (
      match e.re_next_hop with
      | None -> () (* connected routes are never overridden *)
      | Some current_nh ->
          let same_source = Ipv4_addr.equal current_nh src in
          if same_source then begin
            if metric >= Rip_pkt.infinity_metric then mark_unreachable t e
            else begin
              if e.re_metric <> metric then begin
                e.re_metric <- metric;
                e.re_changed <- true;
                sync_rib t;
                schedule_triggered t
              end;
              e.re_expires <- fresh_expiry;
              e.re_garbage <- None
            end
          end
          else if metric < e.re_metric then begin
            e.re_metric <- metric;
            e.re_next_hop <- Some src;
            e.re_iface <- Iface.name rif.ifc;
            e.re_expires <- fresh_expiry;
            e.re_garbage <- None;
            e.re_changed <- true;
            sync_rib t;
            schedule_triggered t
          end)

let handle_packet t rif ~src pkt =
  match pkt with
  | Rip_pkt.Request -> send_response t rif (entries_for t rif ~only_changed:false)
  | Rip_pkt.Response entries ->
      List.iter (process_entry t rif ~src) entries

let add_interface t ?(passive = false) ifc =
  if not (Iface.is_addressed ifc) then
    invalid_arg "Ripd.add_interface: interface has no address";
  let rif = { ifc; passive } in
  t.ifaces <- t.ifaces @ [ rif ];
  (* The connected route, at metric 1 as RIP counts it. *)
  Hashtbl.replace t.table (Iface.prefix ifc)
    {
      re_prefix = Iface.prefix ifc;
      re_metric = 1;
      re_next_hop = None;
      re_iface = Iface.name ifc;
      re_expires = None;
      re_garbage = None;
      re_changed = true;
    };
  Rib.update t.rib
    {
      Rib.r_prefix = Iface.prefix ifc;
      r_proto = Rib.Connected;
      r_distance = Rib.default_distance Rib.Connected;
      r_metric = 0;
      r_next_hop = None;
      r_iface = Iface.name ifc;
    };
  Iface.add_receiver ifc (fun frame ->
      match Packet.parse frame with
      | Ok { l3 = Packet.Ipv4 (iph, Packet.Udp u); _ }
        when u.Udp.dst_port = Rip_pkt.port
             && not (Ipv4_addr.equal iph.Ipv4.src (Iface.ip ifc)) -> (
          match Rip_pkt.of_wire u.Udp.payload with
          | Ok pkt -> handle_packet t rif ~src:iph.Ipv4.src pkt
          | Error _ -> ())
      | Ok _ | Error _ -> ());
  Iface.add_state_listener ifc (fun up ->
      if not up then
        Hashtbl.iter
          (fun _ e ->
            if e.re_next_hop <> None && String.equal e.re_iface (Iface.name ifc)
            then mark_unreachable t e)
          t.table)

let start t =
  if not t.started then begin
    t.started <- true;
    (* Ask neighbours for their tables and announce ours at once. *)
    List.iter
      (fun rif ->
        if (not rif.passive) && Iface.is_up rif.ifc then
          Iface.send rif.ifc
            (Packet.udp ~src_mac:(Iface.mac rif.ifc)
               ~dst_mac:Rip_pkt.multicast_mac ~src_ip:(Iface.ip rif.ifc)
               ~dst_ip:Rip_pkt.multicast_group ~ttl:1
               (Udp.make ~src_port:Rip_pkt.port ~dst_port:Rip_pkt.port
                  (Rip_pkt.to_wire Rip_pkt.Request))))
      t.ifaces;
    broadcast t ~only_changed:false;
    clear_changed t;
    t.timers <-
      [
        Rf_sim.Engine.periodic ?entity:t.entity t.engine
          ~jitter:(Rf_sim.Vtime.span_s (t.cfg.update_interval /. 6.))
          (Rf_sim.Vtime.span_s t.cfg.update_interval)
          (fun () ->
            broadcast t ~only_changed:false;
            clear_changed t);
        Rf_sim.Engine.periodic ?entity:t.entity t.engine
          (Rf_sim.Vtime.span_s 1.0) (fun () ->
            let now = Rf_sim.Engine.now t.engine in
            let dead = ref [] in
            Hashtbl.iter
              (fun prefix e ->
                (match e.re_expires with
                | Some at when Rf_sim.Vtime.(at < now) -> mark_unreachable t e
                | Some _ | None -> ());
                match e.re_garbage with
                | Some at when Rf_sim.Vtime.(at < now) -> dead := prefix :: !dead
                | Some _ | None -> ())
              t.table;
            if !dead <> [] then begin
              List.iter (Hashtbl.remove t.table) !dead;
              sync_rib t
            end);
      ]
  end

let stop t =
  if t.started then begin
    t.started <- false;
    List.iter Rf_sim.Engine.cancel t.timers;
    t.timers <- [];
    Rib.replace_proto t.rib Rib.Rip []
  end

let route_count t =
  Hashtbl.fold
    (fun _ e acc ->
      if e.re_next_hop <> None && e.re_metric < Rip_pkt.infinity_metric then
        acc + 1
      else acc)
    t.table 0

let table t =
  Hashtbl.fold
    (fun prefix e acc -> (prefix, e.re_metric, e.re_next_hop) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> Ipv4_addr.Prefix.compare a b)

let updates_sent t = t.sent

let triggered_updates t = t.triggered
