open Rf_packet

type peer_state = Idle | Open_sent | Established

module Pfx_map = Map.Make (Ipv4_addr.Prefix)

type learned = { l_path : int list; l_next_hop : Ipv4_addr.t }

type peer = {
  daemon : t;
  remote_asn : int;
  next_hop_hint : Ipv4_addr.t;
  send_bytes : string -> unit;
  framer : Bgp_msg.Framer.t;
  mutable state : peer_state;
  mutable learned : learned Pfx_map.t;
  mutable last_heard : Rf_sim.Vtime.t;
  mutable keepalive_timer : Rf_sim.Engine.timer option;
  mutable hold_timer : Rf_sim.Engine.timer option;
}

and t = {
  engine : Rf_sim.Engine.t;
  entity : Rf_obs.Profiler.entity option;
  asn : int;
  router_id : Ipv4_addr.t;
  hold_time : int;
  rib : Rib.t;
  mutable peers : peer list;
  mutable networks : Ipv4_addr.Prefix.t list;
}

let create engine ?entity ~asn ~router_id ?(hold_time = 90) rib =
  { engine; entity; asn; router_id; hold_time; rib; peers = []; networks = [] }

let asn t = t.asn

let send_msg peer m = peer.send_bytes (Bgp_msg.to_wire m)

(* --- best path selection ------------------------------------------ *)

let reselect t =
  (* Collect, per prefix, the shortest AS path across established
     peers. *)
  let best : (Ipv4_addr.Prefix.t, learned) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun peer ->
      if peer.state = Established then
        Pfx_map.iter
          (fun prefix l ->
            match Hashtbl.find_opt best prefix with
            | Some cur when List.length cur.l_path <= List.length l.l_path -> ()
            | Some _ | None -> Hashtbl.replace best prefix l)
          peer.learned)
    t.peers;
  let routes =
    Hashtbl.fold
      (fun prefix l acc ->
        {
          Rib.r_prefix = prefix;
          r_proto = Rib.Bgp;
          r_distance = Rib.default_distance Rib.Bgp;
          r_metric = List.length l.l_path;
          r_next_hop = Some l.l_next_hop;
          r_iface = "";
        }
        :: acc)
      best []
  in
  Rib.replace_proto t.rib Rib.Bgp routes

let announce_to peer prefixes =
  if prefixes <> [] && peer.state = Established then
    send_msg peer
      (Bgp_msg.Update
         {
           u_withdrawn = [];
           u_as_path = [ peer.daemon.asn ];
           u_next_hop = Some peer.next_hop_hint;
           u_nlri = prefixes;
         })

let drop_session peer =
  if peer.state <> Idle then begin
    peer.state <- Idle;
    peer.learned <- Pfx_map.empty;
    (match peer.keepalive_timer with
    | Some timer -> Rf_sim.Engine.cancel timer
    | None -> ());
    peer.keepalive_timer <- None;
    reselect peer.daemon
  end

let establish peer =
  peer.state <- Established;
  Rf_obs.Metrics.incr
    (Rf_obs.Metrics.counter
       (Rf_sim.Engine.metrics peer.daemon.engine)
       ~help:"BGP sessions reaching Established"
       "bgp_sessions_established_total");
  send_msg peer Bgp_msg.Keepalive;
  let interval =
    Rf_sim.Vtime.span_s (float_of_int (max 1 (peer.daemon.hold_time / 3)))
  in
  peer.keepalive_timer <-
    Some
      (Rf_sim.Engine.periodic ?entity:peer.daemon.entity peer.daemon.engine
         interval (fun () -> send_msg peer Bgp_msg.Keepalive));
  announce_to peer peer.daemon.networks;
  (* Propagate routes learned from other peers (simple full-mesh
     re-advertisement with path prepend). *)
  List.iter
    (fun other ->
      if other != peer && other.state = Established then
        Pfx_map.iter
          (fun prefix l ->
            send_msg peer
              (Bgp_msg.Update
                 {
                   u_withdrawn = [];
                   u_as_path = peer.daemon.asn :: l.l_path;
                   u_next_hop = Some peer.next_hop_hint;
                   u_nlri = [ prefix ];
                 }))
          other.learned)
    peer.daemon.peers

let handle_update peer (u : Bgp_msg.update) =
  let t = peer.daemon in
  (* Loop prevention. *)
  let looped = List.exists (Int.equal t.asn) u.u_as_path in
  peer.learned <-
    List.fold_left (fun acc p -> Pfx_map.remove p acc) peer.learned u.u_withdrawn;
  (if (not looped) && u.u_nlri <> [] then
     match u.u_next_hop with
     | Some nh ->
         peer.learned <-
           List.fold_left
             (fun acc p ->
               Pfx_map.add p { l_path = u.u_as_path; l_next_hop = nh } acc)
             peer.learned u.u_nlri
     | None -> ());
  reselect t;
  (* Re-advertise to the other peers. *)
  if (not looped) && u.u_nlri <> [] then
    List.iter
      (fun other ->
        if other != peer && other.state = Established then
          send_msg other
            (Bgp_msg.Update
               {
                 u_withdrawn = [];
                 u_as_path = t.asn :: u.u_as_path;
                 u_next_hop = Some other.next_hop_hint;
                 u_nlri = u.u_nlri;
               }))
      t.peers

let handle peer m =
  peer.last_heard <- Rf_sim.Engine.now peer.daemon.engine;
  match m with
  | Bgp_msg.Open o ->
      if o.o_asn <> peer.remote_asn then
        send_msg peer (Bgp_msg.Notification { code = 2; subcode = 2 })
      else if peer.state <> Established then establish peer
  | Bgp_msg.Keepalive -> ()
  | Bgp_msg.Update u -> if peer.state = Established then handle_update peer u
  | Bgp_msg.Notification _ -> drop_session peer

let input peer bytes =
  match Bgp_msg.Framer.input peer.framer bytes with
  | Ok msgs -> List.iter (handle peer) msgs
  | Error _ -> drop_session peer

let add_peer t ~remote_asn ~next_hop_hint ~send =
  let peer =
    {
      daemon = t;
      remote_asn;
      next_hop_hint;
      send_bytes = send;
      framer = Bgp_msg.Framer.create ();
      state = Idle;
      learned = Pfx_map.empty;
      last_heard = Rf_sim.Engine.now t.engine;
      keepalive_timer = None;
      hold_timer = None;
    }
  in
  t.peers <- t.peers @ [ peer ];
  peer

let start_peer peer =
  let t = peer.daemon in
  send_msg peer
    (Bgp_msg.Open
       { o_asn = t.asn; o_hold_time = t.hold_time; o_router_id = t.router_id });
  peer.state <- Open_sent;
  if peer.hold_timer = None then
    peer.hold_timer <-
      Some
        (Rf_sim.Engine.periodic ?entity:t.entity t.engine
           (Rf_sim.Vtime.span_s 1.0) (fun () ->
             if peer.state = Established then begin
               let silence =
                 Rf_sim.Vtime.diff (Rf_sim.Engine.now t.engine) peer.last_heard
               in
               if
                 Rf_sim.Vtime.span_compare silence
                   (Rf_sim.Vtime.span_s (float_of_int t.hold_time))
                 > 0
               then drop_session peer
             end))

let announce t prefix =
  if not (List.exists (Ipv4_addr.Prefix.equal prefix) t.networks) then begin
    t.networks <- t.networks @ [ prefix ];
    List.iter (fun peer -> announce_to peer [ prefix ]) t.peers
  end

let withdraw_network t prefix =
  t.networks <- List.filter (fun p -> not (Ipv4_addr.Prefix.equal p prefix)) t.networks;
  List.iter
    (fun peer ->
      if peer.state = Established then
        send_msg peer
          (Bgp_msg.Update
             { u_withdrawn = [ prefix ]; u_as_path = []; u_next_hop = None; u_nlri = [] }))
    t.peers

let peer_state peer = peer.state

let established_peers t =
  List.length (List.filter (fun p -> p.state = Established) t.peers)

let routes_learned t =
  List.length (List.filter (fun r -> r.Rib.r_proto = Rib.Bgp) (Rib.selected t.rib))

let pp_state ppf = function
  | Idle -> Format.pp_print_string ppf "Idle"
  | Open_sent -> Format.pp_print_string ppf "OpenSent"
  | Established -> Format.pp_print_string ppf "Established"
