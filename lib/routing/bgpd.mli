(** A compact BGP-4 speaker (the bgpd of the Quagga substrate).

    Transport-agnostic: each peer is driven through a byte-stream
    [send] function plus calls to [input] with received bytes, so
    sessions run over any reliable channel. Semantics implemented:
    OPEN/KEEPALIVE session bring-up, hold-timer expiry, UPDATE
    origination for locally announced networks, AS-path loop rejection,
    shortest-AS-path selection, and RIB installation (distance 20). *)

open Rf_packet

type t

type peer

type peer_state = Idle | Open_sent | Established

val create :
  Rf_sim.Engine.t ->
  ?entity:Rf_obs.Profiler.entity ->
  asn:int ->
  router_id:Ipv4_addr.t ->
  ?hold_time:int ->
  Rib.t ->
  t

val asn : t -> int

val add_peer :
  t -> remote_asn:int -> next_hop_hint:Ipv4_addr.t -> send:(string -> unit) -> peer
(** [next_hop_hint] is the address our announcements carry as NEXT_HOP
    toward this peer (our address on the shared link). *)

val input : peer -> string -> unit
(** Feed bytes received from the peer's channel. *)

val start_peer : peer -> unit
(** Sends OPEN and arms timers. *)

val announce : t -> Ipv4_addr.Prefix.t -> unit
(** Originate a network (sent to all established peers, and to peers
    that establish later). *)

val withdraw_network : t -> Ipv4_addr.Prefix.t -> unit

val peer_state : peer -> peer_state

val established_peers : t -> int

val routes_learned : t -> int
(** Number of prefixes currently selected from BGP. *)

val pp_state : Format.formatter -> peer_state -> unit
