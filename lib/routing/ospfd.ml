open Rf_packet

type config = {
  router_id : Ipv4_addr.t;
  area_id : Ipv4_addr.t;
  hello_interval : int;
  dead_interval : int;
  rxmt_interval : int;
  spf_delay : Rf_sim.Vtime.span;
  reference_cost : int;
}

let default_config ~router_id =
  {
    router_id;
    area_id = Ipv4_addr.any;
    hello_interval = 10;
    dead_interval = 40;
    rxmt_interval = 5;
    spf_delay = Rf_sim.Vtime.span_s 1.0;
    reference_cost = 10;
  }

type neighbor_state = Down | Init | Exstart | Exchange | Loading | Full

type neighbor_info = {
  ni_router_id : Ipv4_addr.t;
  ni_addr : Ipv4_addr.t;
  ni_iface : string;
  ni_state : neighbor_state;
}

type oiface = {
  ifc : Iface.t;
  cost : int;
  passive : bool;
  mutable hello_timer : Rf_sim.Engine.timer option;
}

type neighbor = {
  n_router_id : Ipv4_addr.t;
  mutable n_addr : Ipv4_addr.t;
  n_oiface : oiface;
  mutable n_state : neighbor_state;
  mutable n_last_hello : Rf_sim.Vtime.t;
  mutable n_req : Ospf_pkt.lsa_key list;
  n_rxmt : (Ospf_pkt.lsa_key, unit) Hashtbl.t;
  mutable n_rxmt_timer : Rf_sim.Engine.timer option;
}

type t = {
  engine : Rf_sim.Engine.t;
  entity : Rf_obs.Profiler.entity option;
  cfg : config;
  rib : Rib.t;
  mutable ifaces : oiface list;
  nbr_tbl : (Ipv4_addr.t, neighbor) Hashtbl.t;
  lsdb : (Ospf_pkt.lsa_key, Ospf_pkt.lsa) Hashtbl.t;
  spf : Spf.t;
  graph : Spf.graph;
  (* Advertising routers whose LSAs changed since the last SPF run;
     drives the incremental recomputation. *)
  spf_dirty : (Ipv4_addr.t, unit) Hashtbl.t;
  (* Parsed stub links per advertising router — prefix, packed prefix
     key, link metric — invalidated with the LSA, so route publication
     does not re-derive masks and prefixes from unchanged LSAs every
     run. *)
  stub_cache : (Ipv4_addr.t, (Ipv4_addr.Prefix.t * int * int) array) Hashtbl.t;
  mutable my_seq : int32;
  mutable spf_scheduled : bool;
  mutable spf_count : int;
  mutable started : bool;
  mutable timers : Rf_sim.Engine.timer list;
  mutable last_routes : Rib.route list;
  mutable on_route_change : unit -> unit;
  m_spf : Rf_obs.Metrics.counter;
  m_hellos : Rf_obs.Metrics.counter;
  m_floods : Rf_obs.Metrics.counter;
  m_adjacencies : Rf_obs.Metrics.counter;
}

let ospf_multicast_mac = Mac.of_int64 0x01005E000005L

let create engine ?entity cfg rib =
  {
    engine;
    entity;
    cfg;
    rib;
    ifaces = [];
    nbr_tbl = Hashtbl.create 16;
    lsdb = Hashtbl.create 64;
    spf = Spf.create ~root:cfg.router_id;
    graph = Spf.graph_create ();
    spf_dirty = Hashtbl.create 16;
    stub_cache = Hashtbl.create 64;
    my_seq = Ospf_pkt.initial_seq;
    spf_scheduled = false;
    spf_count = 0;
    started = false;
    timers = [];
    last_routes = [];
    on_route_change = (fun () -> ());
    m_spf =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"SPF runs across all OSPF daemons" "ospf_spf_runs_total";
    m_hellos =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"OSPF hellos sent" "ospf_hellos_total";
    m_floods =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"LSA flood operations" "ospf_floods_total";
    m_adjacencies =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"Adjacencies reaching Full" "ospf_adjacencies_full_total";
  }

let config t = t.cfg

let router_id t = t.cfg.router_id

let set_on_route_change t f = t.on_route_change <- f

let send_pkt t (oif : oiface) payload =
  let pkt =
    { Ospf_pkt.router_id = t.cfg.router_id; area_id = t.cfg.area_id; payload }
  in
  Iface.send oif.ifc
    (Packet.ospf ~src_mac:(Iface.mac oif.ifc) ~dst_mac:ospf_multicast_mac
       ~src_ip:(Iface.ip oif.ifc) ~dst_ip:Ipv4_addr.ospf_all_routers pkt)

(* --- hello ------------------------------------------------------- *)

let neighbors_on t oif =
  Hashtbl.fold
    (fun _ n acc ->
      if String.equal (Iface.name n.n_oiface.ifc) (Iface.name oif.ifc) then
        n :: acc
      else acc)
    t.nbr_tbl []

let send_hello t oif =
  if (not oif.passive) && Iface.is_up oif.ifc then begin
    Rf_obs.Metrics.incr t.m_hellos;
    send_pkt t oif
      (Ospf_pkt.Hello
         {
           netmask = Iface.netmask oif.ifc;
           hello_interval = t.cfg.hello_interval;
           dead_interval = t.cfg.dead_interval;
           priority = 1;
           dr = Ipv4_addr.any;
           bdr = Ipv4_addr.any;
           neighbors = List.map (fun n -> n.n_router_id) (neighbors_on t oif);
         })
  end

(* --- LSA origination and flooding -------------------------------- *)

let arm_rxmt t nbr =
  if nbr.n_rxmt_timer = None then begin
    let timer =
      Rf_sim.Engine.periodic ?entity:t.entity t.engine
        (Rf_sim.Vtime.span_s (float_of_int t.cfg.rxmt_interval))
        (fun () ->
          if Hashtbl.length nbr.n_rxmt > 0 then begin
            let lsas =
              Hashtbl.fold
                (fun key () acc ->
                  match Hashtbl.find_opt t.lsdb key with
                  | Some lsa -> lsa :: acc
                  | None ->
                      Hashtbl.remove nbr.n_rxmt key;
                      acc)
                nbr.n_rxmt []
            in
            if lsas <> [] then send_pkt t nbr.n_oiface (Ospf_pkt.Ls_update lsas)
          end)
    in
    nbr.n_rxmt_timer <- Some timer
  end

let flood t ?except lsa =
  Rf_obs.Metrics.incr t.m_floods;
  let key = Ospf_pkt.key_of_lsa lsa in
  List.iter
    (fun oif ->
      let skip =
        match except with
        | Some name -> String.equal (Iface.name oif.ifc) name
        | None -> false
      in
      if (not skip) && not oif.passive then begin
        let targets =
          List.filter
            (fun n ->
              match n.n_state with
              | Exchange | Loading | Full -> true
              | Down | Init | Exstart -> false)
            (neighbors_on t oif)
        in
        if targets <> [] then begin
          send_pkt t oif (Ospf_pkt.Ls_update [ lsa ]);
          List.iter
            (fun n ->
              Hashtbl.replace n.n_rxmt key ();
              arm_rxmt t n)
            targets
        end
      end)
    t.ifaces

let router_lsa t rid =
  Hashtbl.find_opt t.lsdb { Ospf_pkt.k_type = 1; k_id = rid; k_adv = rid }

let p2p_pairs lsa =
  match lsa.Ospf_pkt.body with
  | Ospf_pkt.Router { links } ->
      List.filter_map
        (fun (l : Ospf_pkt.router_link) ->
          if l.link_type = Ospf_pkt.Point_to_point then Some (l.link_id, l.metric)
          else None)
        links
  | Ospf_pkt.Network _ | Ospf_pkt.Opaque _ -> []

(* Vertices = router LSAs; a p2p edge A->B counts only when B's LSA
   links back to A (bidirectionality check of RFC 2328 §16.1) — the
   back-link check lives in {!Spf}. *)
let refresh_graph_node t rid =
  match router_lsa t rid with
  | Some lsa -> Spf.graph_set_links t.graph rid (p2p_pairs lsa)
  | None -> Spf.graph_remove t.graph rid

let mark_dirty t rid =
  Hashtbl.replace t.spf_dirty rid ();
  Hashtbl.remove t.stub_cache rid

(* Set bits of the 32-bit netmask (SWAR popcount, replacing a 32-step
   shift loop on the route-build hot path). *)
let mask_len_of m =
  let v = Int32.to_int m land 0xFFFFFFFF in
  let v = v - ((v lsr 1) land 0x55555555) in
  let v = (v land 0x33333333) + ((v lsr 2) land 0x33333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F in
  ((v * 0x01010101) land 0xFFFFFFFF) lsr 24

(* A prefix as a plain int, ordered exactly like [Prefix.compare]
   (signed 32-bit network address, then length): cheap hash key and
   sort/merge comparand on the route-publication path. *)
let prefix_key p =
  (Int32.to_int (Ipv4_addr.to_int32 (Ipv4_addr.Prefix.network p)) lsl 6)
  lor Ipv4_addr.Prefix.length p

(* Stub links of [rid]'s router LSA as (prefix, key, metric) triples,
   parsed once per LSA generation. *)
let stub_links_of t rid =
  match Hashtbl.find_opt t.stub_cache rid with
  | Some a -> a
  | None ->
      let a =
        match router_lsa t rid with
        | Some { Ospf_pkt.body = Ospf_pkt.Router { links }; _ } ->
            List.filter_map
              (fun (l : Ospf_pkt.router_link) ->
                if l.link_type = Ospf_pkt.Stub then begin
                  let p =
                    Ipv4_addr.Prefix.make l.link_id
                      (mask_len_of (Ipv4_addr.to_int32 l.link_data))
                  in
                  Some (p, prefix_key p, l.metric)
                end
                else None)
              links
            |> Array.of_list
        | Some _ | None -> [||]
      in
      Hashtbl.add t.stub_cache rid a;
      a

(* Everything but the prefix (equal by construction at comparison
   sites): cheap field-wise check replacing polymorphic equality. *)
let route_same (a : Rib.route) (b : Rib.route) =
  a.Rib.r_metric = b.Rib.r_metric
  && a.Rib.r_distance = b.Rib.r_distance
  && (match (a.Rib.r_next_hop, b.Rib.r_next_hop) with
     | Some x, Some y -> Ipv4_addr.equal x y
     | None, None -> true
     | Some _, None | None, Some _ -> false)
  && String.equal a.Rib.r_iface b.Rib.r_iface
  && a.Rib.r_proto = b.Rib.r_proto

(* Build OSPF routes from remote routers' stub links, using the SPT
   held in [t.spf]. Equal-cost prefix candidates break ties on the
   advertising router id so the result is independent of hash order. *)
let publish_routes t =
  let candidates : (int, Rib.route * Ipv4_addr.t) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Distinct first hops number at most the root's degree, so the
     neighbor lookup memoizes on the previous hop. *)
  let memo_hop = ref Ipv4_addr.any in
  let memo_info = ref None in
  let hop_info hop =
    if Ipv4_addr.equal hop !memo_hop then !memo_info
    else begin
      memo_hop := hop;
      let info =
        match Hashtbl.find_opt t.nbr_tbl hop with
        | Some hop_nbr when hop_nbr.n_state = Full ->
            Some (Some hop_nbr.n_addr, Iface.name hop_nbr.n_oiface.ifc)
        | Some _ | None -> None
      in
      memo_info := info;
      info
    end
  in
  Spf.iter t.spf (fun rid d hop ->
      match hop_info hop with
      | Some (next_hop, iface) ->
          let stubs = stub_links_of t rid in
          Array.iter
            (fun (prefix, pkey, link_metric) ->
              let metric = d + link_metric in
              let better =
                match Hashtbl.find_opt candidates pkey with
                | None -> true
                | Some (existing, adv) ->
                    metric < existing.Rib.r_metric
                    || metric = existing.Rib.r_metric
                       && Ipv4_addr.compare rid adv < 0
              in
              if better then
                Hashtbl.replace candidates pkey
                  ( {
                      Rib.r_prefix = prefix;
                      r_proto = Rib.Ospf;
                      r_distance = Rib.default_distance Rib.Ospf;
                      r_metric = metric;
                      r_next_hop = next_hop;
                      r_iface = iface;
                    },
                    rid ))
            stubs
      | None -> ());
  (* Drop prefixes we own directly: connected wins anyway, but keeping
     them out of the OSPF table matches Quagga. *)
  let own_keys =
    List.map (fun oif -> prefix_key (Iface.prefix oif.ifc)) t.ifaces
  in
  let routes =
    Hashtbl.fold
      (fun pkey (route, _) acc ->
        if List.exists (fun (k : int) -> k = pkey) own_keys then acc
        else (pkey, route) :: acc)
      candidates []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  (* Publish as a sorted-merge diff against the previous run: only
     prefixes whose best route actually moved touch the RIB trie.
     [last_routes] mirrors the RIB's OSPF content exactly (emptied in
     [stop] alongside the wholesale withdraw), so this is equivalent
     to [Rib.replace_proto] at a fraction of the cost on the hot
     steady-state path where most routes are unchanged. *)
  let changed = ref false in
  let rec merge olds news =
    match (olds, news) with
    | [], [] -> ()
    | o :: os, [] ->
        Rib.withdraw t.rib Rib.Ospf o.Rib.r_prefix;
        changed := true;
        merge os []
    | [], n :: ns ->
        Rib.update t.rib n;
        changed := true;
        merge [] ns
    | o :: os, n :: ns ->
        let c = Ipv4_addr.Prefix.compare o.Rib.r_prefix n.Rib.r_prefix in
        if c < 0 then begin
          Rib.withdraw t.rib Rib.Ospf o.Rib.r_prefix;
          changed := true;
          merge os news
        end
        else if c > 0 then begin
          Rib.update t.rib n;
          changed := true;
          merge olds ns
        end
        else begin
          if not (route_same o n) then begin
            Rib.update t.rib n;
            changed := true
          end;
          merge os ns
        end
  in
  merge t.last_routes routes;
  t.last_routes <- routes;
  if !changed then t.on_route_change ()

let rec schedule_spf t =
  if not t.spf_scheduled then begin
    t.spf_scheduled <- true;
    ignore
      (Rf_sim.Engine.schedule ?entity:t.entity t.engine t.cfg.spf_delay
         (fun () -> run_spf t))
  end

and run_spf t =
  Rf_obs.Metrics.incr t.m_spf;
  t.spf_scheduled <- false;
  t.spf_count <- t.spf_count + 1;
  (* Incremental SPF: refresh the adjacency cache for the routers whose
     LSAs changed, then repair only the affected part of the tree. *)
  let dirty = Hashtbl.fold (fun rid () acc -> rid :: acc) t.spf_dirty [] in
  Hashtbl.reset t.spf_dirty;
  List.iter (refresh_graph_node t) dirty;
  Spf.update t.spf t.graph ~dirty;
  publish_routes t

let spf_now_full t =
  Rf_obs.Metrics.incr t.m_spf;
  t.spf_count <- t.spf_count + 1;
  (* Reference oracle: rebuild the adjacency cache from the LSDB and
     recompute the tree from scratch. *)
  Hashtbl.reset t.spf_dirty;
  Spf.graph_reset t.graph;
  Hashtbl.iter
    (fun (k : Ospf_pkt.lsa_key) lsa ->
      if k.k_type = 1 then Spf.graph_set_links t.graph k.k_adv (p2p_pairs lsa))
    t.lsdb;
  Spf.full t.spf t.graph;
  publish_routes t;
  List.length t.last_routes

let install_lsa t lsa =
  Hashtbl.replace t.lsdb (Ospf_pkt.key_of_lsa lsa) lsa;
  mark_dirty t lsa.Ospf_pkt.adv_router;
  schedule_spf t

let originate_router_lsa t =
  let links =
    List.concat_map
      (fun oif ->
        if not (Iface.is_up oif.ifc) then []
        else begin
          let p2p =
            if oif.passive then []
            else
              List.filter_map
                (fun n ->
                  if n.n_state = Full then
                    Some
                      {
                        Ospf_pkt.link_id = n.n_router_id;
                        link_data = Iface.ip oif.ifc;
                        link_type = Ospf_pkt.Point_to_point;
                        metric = oif.cost;
                      }
                  else None)
                (neighbors_on t oif)
          in
          let stub =
            {
              Ospf_pkt.link_id = Ipv4_addr.Prefix.network (Iface.prefix oif.ifc);
              link_data = Iface.netmask oif.ifc;
              link_type = Ospf_pkt.Stub;
              metric = oif.cost;
            }
          in
          p2p @ [ stub ]
        end)
      t.ifaces
  in
  t.my_seq <- Int32.add t.my_seq 1l;
  let lsa =
    {
      Ospf_pkt.age = 1;
      options = 0x02;
      link_state_id = t.cfg.router_id;
      adv_router = t.cfg.router_id;
      seq = t.my_seq;
      body = Ospf_pkt.Router { links };
    }
  in
  install_lsa t lsa;
  flood t lsa

(* --- adjacency ---------------------------------------------------- *)

let my_headers t =
  Hashtbl.fold (fun _ lsa acc -> Ospf_pkt.header_of_lsa lsa :: acc) t.lsdb []

let send_dd t nbr =
  send_pkt t nbr.n_oiface
    (Ospf_pkt.Db_desc
       {
         mtu = 1500;
         dd_init = false;
         dd_more = false;
         dd_master = Ipv4_addr.compare t.cfg.router_id nbr.n_router_id > 0;
         dd_seq = 1l;
         headers = my_headers t;
       })

let to_full t nbr =
  if nbr.n_state <> Full then begin
    nbr.n_state <- Full;
    Rf_obs.Metrics.incr t.m_adjacencies;
    Rf_sim.Engine.record t.engine
      ~component:(Printf.sprintf "ospfd.%s" (Ipv4_addr.to_string t.cfg.router_id))
      ~event:"adjacency-full"
      (Ipv4_addr.to_string nbr.n_router_id);
    originate_router_lsa t;
    schedule_spf t
  end

let kill_neighbor t nbr =
  (match nbr.n_rxmt_timer with
  | Some timer -> Rf_sim.Engine.cancel timer
  | None -> ());
  Hashtbl.remove t.nbr_tbl nbr.n_router_id;
  if nbr.n_state = Full then begin
    originate_router_lsa t;
    schedule_spf t
  end

let handle_hello t oif ~src (h : Ospf_pkt.hello) ~from_rid =
  if
    h.hello_interval <> t.cfg.hello_interval
    || h.dead_interval <> t.cfg.dead_interval
  then
    (* RFC 2328 §10.5: hello/dead intervals must agree or the packet is
       dropped — a classic cause of stuck adjacencies that the
       autoconfig framework avoids by writing both sides' configs. *)
    Rf_sim.Engine.record t.engine
      ~component:(Printf.sprintf "ospfd.%s" (Ipv4_addr.to_string t.cfg.router_id))
      ~event:"hello-mismatch"
      (Ipv4_addr.to_string from_rid)
  else begin
  let now = Rf_sim.Engine.now t.engine in
  let nbr =
    match Hashtbl.find_opt t.nbr_tbl from_rid with
    | Some n ->
        n.n_addr <- src;
        n.n_last_hello <- now;
        n
    | None ->
        let n =
          {
            n_router_id = from_rid;
            n_addr = src;
            n_oiface = oif;
            n_state = Init;
            n_last_hello = now;
            n_req = [];
            n_rxmt = Hashtbl.create 16;
            n_rxmt_timer = None;
          }
        in
        Hashtbl.replace t.nbr_tbl from_rid n;
        (* Answer at once so the peer learns about us without waiting a
           full hello interval. *)
        send_hello t oif;
        n
  in
  let sees_us = List.exists (Ipv4_addr.equal t.cfg.router_id) h.neighbors in
  (match nbr.n_state with
  | Down | Init ->
      if sees_us then begin
        nbr.n_state <- Exstart;
        send_dd t nbr
      end
  | Exstart | Exchange | Loading | Full -> ())
  end

let handle_dd t nbr (dd : Ospf_pkt.db_desc) =
  (match nbr.n_state with
  | Down | Init ->
      (* Their hello listing us must have been lost; a DD is itself
         evidence of bidirectionality, so answer with ours. *)
      nbr.n_state <- Exstart;
      send_dd t nbr
  | Full | Exchange | Loading ->
      (* A DD from a neighbour we believe is synchronized means it
         restarted (RFC 2328 SeqNumberMismatch): describe our database
         again so it can reload. *)
      send_dd t nbr
  | Exstart -> ());
  let missing =
    List.filter_map
      (fun (h : Ospf_pkt.lsa_header) ->
        match Hashtbl.find_opt t.lsdb h.h_key with
        | None -> Some h.h_key
        | Some mine ->
            if Ospf_pkt.compare_instance h (Ospf_pkt.header_of_lsa mine) > 0
            then Some h.h_key
            else None)
      dd.headers
  in
  match missing with
  | [] -> if nbr.n_state <> Full then to_full t nbr
  | keys ->
      nbr.n_req <- keys;
      nbr.n_state <- Loading;
      send_pkt t nbr.n_oiface (Ospf_pkt.Ls_request keys)

let handle_lsr t nbr keys =
  let lsas =
    List.filter_map (fun key -> Hashtbl.find_opt t.lsdb key) keys
  in
  if lsas <> [] then begin
    send_pkt t nbr.n_oiface (Ospf_pkt.Ls_update lsas);
    List.iter
      (fun lsa ->
        Hashtbl.replace nbr.n_rxmt (Ospf_pkt.key_of_lsa lsa) ();
        arm_rxmt t nbr)
      lsas
  end

let send_ack t oif headers =
  if headers <> [] then send_pkt t oif (Ospf_pkt.Ls_ack headers)

let handle_lsu t nbr lsas =
  let acks = ref [] in
  List.iter
    (fun (lsa : Ospf_pkt.lsa) ->
      let key = Ospf_pkt.key_of_lsa lsa in
      let header = Ospf_pkt.header_of_lsa lsa in
      (* Receiving an instance is an implied ack. *)
      Hashtbl.remove nbr.n_rxmt key;
      if Ipv4_addr.equal lsa.adv_router t.cfg.router_id then begin
        (* A copy of our own LSA. If it is newer (pre-restart state),
           take over its sequence number. *)
        match Hashtbl.find_opt t.lsdb key with
        | Some mine
          when Ospf_pkt.compare_instance header (Ospf_pkt.header_of_lsa mine) > 0
          ->
            t.my_seq <- Int32.add lsa.seq 1l;
            originate_router_lsa t
        | Some _ | None -> acks := header :: !acks
      end
      else begin
        let action =
          match Hashtbl.find_opt t.lsdb key with
          | None -> if lsa.age >= Ospf_pkt.max_age then `Ack else `Install
          | Some mine ->
              let c =
                Ospf_pkt.compare_instance header (Ospf_pkt.header_of_lsa mine)
              in
              if c > 0 then if lsa.age >= Ospf_pkt.max_age then `Purge else `Install
              else if c = 0 then `Ack
              else `Send_back mine
        in
        match action with
        | `Install ->
            install_lsa t lsa;
            acks := header :: !acks;
            flood t ~except:(Iface.name nbr.n_oiface.ifc) lsa
        | `Purge ->
            (* A MaxAge instance flushes the LSA from the database. *)
            Hashtbl.remove t.lsdb key;
            mark_dirty t lsa.adv_router;
            schedule_spf t;
            acks := header :: !acks;
            flood t ~except:(Iface.name nbr.n_oiface.ifc) lsa
        | `Ack -> acks := header :: !acks
        | `Send_back mine -> send_pkt t nbr.n_oiface (Ospf_pkt.Ls_update [ mine ])
      end;
      (* Progress database loading. *)
      nbr.n_req <- List.filter (fun k -> k <> key) nbr.n_req;
      if nbr.n_state = Loading && nbr.n_req = [] then to_full t nbr)
    lsas;
  send_ack t nbr.n_oiface !acks

let handle_lsack _t nbr headers =
  List.iter
    (fun (h : Ospf_pkt.lsa_header) -> Hashtbl.remove nbr.n_rxmt h.h_key)
    headers

let handle_packet t oif ~src (pkt : Ospf_pkt.t) =
  if not t.started then () (* a stopped daemon is deaf *)
  else if Ipv4_addr.equal pkt.router_id t.cfg.router_id then ()
  else if not (Ipv4_addr.equal pkt.area_id t.cfg.area_id) then ()
  else
    match pkt.payload with
    | Ospf_pkt.Hello h -> handle_hello t oif ~src h ~from_rid:pkt.router_id
    | Ospf_pkt.Db_desc dd -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_dd t nbr dd
        | None -> ())
    | Ospf_pkt.Ls_request keys -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_lsr t nbr keys
        | None -> ())
    | Ospf_pkt.Ls_update lsas -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_lsu t nbr lsas
        | None -> ())
    | Ospf_pkt.Ls_ack headers -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_lsack t nbr headers
        | None -> ())

let arm_iface t oif =
  if (not oif.passive) && oif.hello_timer = None then begin
    send_hello t oif;
    oif.hello_timer <-
      Some
        (Rf_sim.Engine.periodic ?entity:t.entity t.engine
           ~jitter:(Rf_sim.Vtime.span_ms 100)
           (Rf_sim.Vtime.span_s (float_of_int t.cfg.hello_interval))
           (fun () -> send_hello t oif))
  end

let add_interface t ?cost ?(passive = false) ifc =
  if not (Iface.is_addressed ifc) then
    invalid_arg "Ospfd.add_interface: interface has no address";
  let cost = Option.value cost ~default:t.cfg.reference_cost in
  let oif = { ifc; cost; passive; hello_timer = None } in
  t.ifaces <- t.ifaces @ [ oif ];
  (* Connected route. *)
  Rib.update t.rib
    {
      Rib.r_prefix = Iface.prefix ifc;
      r_proto = Rib.Connected;
      r_distance = Rib.default_distance Rib.Connected;
      r_metric = 0;
      r_next_hop = None;
      r_iface = Iface.name ifc;
    };
  Iface.add_receiver ifc (fun frame ->
      match Packet.parse frame with
      | Ok { l3 = Packet.Ipv4 (ip, Packet.Ospf pkt); _ } ->
          if
            Ipv4_addr.equal ip.dst Ipv4_addr.ospf_all_routers
            || Ipv4_addr.equal ip.dst (Iface.ip ifc)
          then handle_packet t oif ~src:ip.src pkt
      | Ok _ | Error _ -> ());
  (* Interface state drives immediate reconvergence: a downed link
     kills its adjacencies and re-originates at once instead of waiting
     out the dead interval. *)
  Iface.add_state_listener ifc (fun up ->
      if t.started then begin
        if not up then
          List.iter (kill_neighbor t) (neighbors_on t oif)
        else send_hello t oif;
        originate_router_lsa t;
        schedule_spf t
      end);
  (* Quagga accepts new `network` statements at runtime; adding an
     interface to a running instance brings it up immediately. *)
  if t.started then begin
    arm_iface t oif;
    originate_router_lsa t;
    schedule_spf t
  end

let start t =
  if not t.started then begin
    t.started <- true;
    List.iter (fun oif -> arm_iface t oif) t.ifaces;
    (* Dead-neighbor scan. *)
    let dead_scan () =
      let now = Rf_sim.Engine.now t.engine in
      let dead =
        Hashtbl.fold
          (fun _ n acc ->
            let deadline =
              Rf_sim.Vtime.add n.n_last_hello
                (Rf_sim.Vtime.span_s (float_of_int t.cfg.dead_interval))
            in
            if Rf_sim.Vtime.(deadline < now) then n :: acc else acc)
          t.nbr_tbl []
      in
      List.iter (kill_neighbor t) dead
    in
    t.timers <-
      Rf_sim.Engine.periodic ?entity:t.entity t.engine
        (Rf_sim.Vtime.span_s 1.0) dead_scan
      :: t.timers;
    originate_router_lsa t
  end

let stop t =
  if t.started then begin
    (* Graceful shutdown (RFC 2328 §14.1): flush our router LSA by
       flooding a MaxAge instance so neighbours withdraw immediately
       instead of waiting out the dead interval. *)
    t.my_seq <- Int32.add t.my_seq 1l;
    let flush =
      {
        Ospf_pkt.age = Ospf_pkt.max_age;
        options = 0x02;
        link_state_id = t.cfg.router_id;
        adv_router = t.cfg.router_id;
        seq = t.my_seq;
        body = Ospf_pkt.Router { links = [] };
      }
    in
    Hashtbl.remove t.lsdb
      { Ospf_pkt.k_type = 1; k_id = t.cfg.router_id; k_adv = t.cfg.router_id };
    mark_dirty t t.cfg.router_id;
    flood t flush;
    t.started <- false;
    List.iter
      (fun oif ->
        match oif.hello_timer with
        | Some timer ->
            Rf_sim.Engine.cancel timer;
            oif.hello_timer <- None
        | None -> ())
      t.ifaces;
    List.iter Rf_sim.Engine.cancel t.timers;
    t.timers <- [];
    Hashtbl.iter
      (fun _ n ->
        match n.n_rxmt_timer with
        | Some timer -> Rf_sim.Engine.cancel timer
        | None -> ())
      t.nbr_tbl;
    Hashtbl.reset t.nbr_tbl;
    Rib.replace_proto t.rib Rib.Ospf [];
    t.last_routes <- []
  end

let neighbors t =
  Hashtbl.fold
    (fun _ n acc ->
      {
        ni_router_id = n.n_router_id;
        ni_addr = n.n_addr;
        ni_iface = Iface.name n.n_oiface.ifc;
        ni_state = n.n_state;
      }
      :: acc)
    t.nbr_tbl []
  |> List.sort (fun a b -> Ipv4_addr.compare a.ni_router_id b.ni_router_id)

let lsdb t = Hashtbl.fold (fun _ lsa acc -> lsa :: acc) t.lsdb []

let lsdb_size t = Hashtbl.length t.lsdb

let spf_runs t = t.spf_count

let spf_now t =
  run_spf t;
  List.length t.last_routes

let is_adjacent_to t rid =
  match Hashtbl.find_opt t.nbr_tbl rid with
  | Some n -> n.n_state = Full
  | None -> false

let full_neighbor_count t =
  Hashtbl.fold (fun _ n acc -> if n.n_state = Full then acc + 1 else acc) t.nbr_tbl 0

let neighbor_addr_of_router t rid =
  match Hashtbl.find_opt t.nbr_tbl rid with
  | Some n when n.n_state = Full -> Some n.n_addr
  | Some _ | None -> None

let state_name = function
  | Down -> "Down"
  | Init -> "Init"
  | Exstart -> "ExStart"
  | Exchange -> "Exchange"
  | Loading -> "Loading"
  | Full -> "Full"

let pp_neighbor ppf n =
  Format.fprintf ppf "%a via %s (%s) %s" Ipv4_addr.pp n.ni_router_id n.ni_iface
    (Ipv4_addr.to_string n.ni_addr)
    (state_name n.ni_state)
