open Rf_packet

type config = {
  router_id : Ipv4_addr.t;
  area_id : Ipv4_addr.t;
  hello_interval : int;
  dead_interval : int;
  rxmt_interval : int;
  spf_delay : Rf_sim.Vtime.span;
  reference_cost : int;
}

let default_config ~router_id =
  {
    router_id;
    area_id = Ipv4_addr.any;
    hello_interval = 10;
    dead_interval = 40;
    rxmt_interval = 5;
    spf_delay = Rf_sim.Vtime.span_s 1.0;
    reference_cost = 10;
  }

type neighbor_state = Down | Init | Exstart | Exchange | Loading | Full

type neighbor_info = {
  ni_router_id : Ipv4_addr.t;
  ni_addr : Ipv4_addr.t;
  ni_iface : string;
  ni_state : neighbor_state;
}

type oiface = {
  ifc : Iface.t;
  cost : int;
  passive : bool;
  mutable hello_timer : Rf_sim.Engine.timer option;
}

type neighbor = {
  n_router_id : Ipv4_addr.t;
  mutable n_addr : Ipv4_addr.t;
  n_oiface : oiface;
  mutable n_state : neighbor_state;
  mutable n_last_hello : Rf_sim.Vtime.t;
  mutable n_req : Ospf_pkt.lsa_key list;
  n_rxmt : (Ospf_pkt.lsa_key, unit) Hashtbl.t;
  mutable n_rxmt_timer : Rf_sim.Engine.timer option;
}

type t = {
  engine : Rf_sim.Engine.t;
  cfg : config;
  rib : Rib.t;
  mutable ifaces : oiface list;
  nbr_tbl : (Ipv4_addr.t, neighbor) Hashtbl.t;
  lsdb : (Ospf_pkt.lsa_key, Ospf_pkt.lsa) Hashtbl.t;
  mutable my_seq : int32;
  mutable spf_scheduled : bool;
  mutable spf_count : int;
  mutable started : bool;
  mutable timers : Rf_sim.Engine.timer list;
  mutable last_routes : Rib.route list;
  mutable on_route_change : unit -> unit;
  m_spf : Rf_obs.Metrics.counter;
  m_hellos : Rf_obs.Metrics.counter;
  m_floods : Rf_obs.Metrics.counter;
  m_adjacencies : Rf_obs.Metrics.counter;
}

let ospf_multicast_mac = Mac.of_int64 0x01005E000005L

let create engine cfg rib =
  {
    engine;
    cfg;
    rib;
    ifaces = [];
    nbr_tbl = Hashtbl.create 16;
    lsdb = Hashtbl.create 64;
    my_seq = Ospf_pkt.initial_seq;
    spf_scheduled = false;
    spf_count = 0;
    started = false;
    timers = [];
    last_routes = [];
    on_route_change = (fun () -> ());
    m_spf =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"SPF runs across all OSPF daemons" "ospf_spf_runs_total";
    m_hellos =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"OSPF hellos sent" "ospf_hellos_total";
    m_floods =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"LSA flood operations" "ospf_floods_total";
    m_adjacencies =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"Adjacencies reaching Full" "ospf_adjacencies_full_total";
  }

let config t = t.cfg

let router_id t = t.cfg.router_id

let set_on_route_change t f = t.on_route_change <- f

let send_pkt t (oif : oiface) payload =
  let pkt =
    { Ospf_pkt.router_id = t.cfg.router_id; area_id = t.cfg.area_id; payload }
  in
  Iface.send oif.ifc
    (Packet.ospf ~src_mac:(Iface.mac oif.ifc) ~dst_mac:ospf_multicast_mac
       ~src_ip:(Iface.ip oif.ifc) ~dst_ip:Ipv4_addr.ospf_all_routers pkt)

(* --- hello ------------------------------------------------------- *)

let neighbors_on t oif =
  Hashtbl.fold
    (fun _ n acc ->
      if String.equal (Iface.name n.n_oiface.ifc) (Iface.name oif.ifc) then
        n :: acc
      else acc)
    t.nbr_tbl []

let send_hello t oif =
  if (not oif.passive) && Iface.is_up oif.ifc then begin
    Rf_obs.Metrics.incr t.m_hellos;
    send_pkt t oif
      (Ospf_pkt.Hello
         {
           netmask = Iface.netmask oif.ifc;
           hello_interval = t.cfg.hello_interval;
           dead_interval = t.cfg.dead_interval;
           priority = 1;
           dr = Ipv4_addr.any;
           bdr = Ipv4_addr.any;
           neighbors = List.map (fun n -> n.n_router_id) (neighbors_on t oif);
         })
  end

(* --- LSA origination and flooding -------------------------------- *)

let arm_rxmt t nbr =
  if nbr.n_rxmt_timer = None then begin
    let timer =
      Rf_sim.Engine.periodic t.engine
        (Rf_sim.Vtime.span_s (float_of_int t.cfg.rxmt_interval))
        (fun () ->
          if Hashtbl.length nbr.n_rxmt > 0 then begin
            let lsas =
              Hashtbl.fold
                (fun key () acc ->
                  match Hashtbl.find_opt t.lsdb key with
                  | Some lsa -> lsa :: acc
                  | None ->
                      Hashtbl.remove nbr.n_rxmt key;
                      acc)
                nbr.n_rxmt []
            in
            if lsas <> [] then send_pkt t nbr.n_oiface (Ospf_pkt.Ls_update lsas)
          end)
    in
    nbr.n_rxmt_timer <- Some timer
  end

let flood t ?except lsa =
  Rf_obs.Metrics.incr t.m_floods;
  let key = Ospf_pkt.key_of_lsa lsa in
  List.iter
    (fun oif ->
      let skip =
        match except with
        | Some name -> String.equal (Iface.name oif.ifc) name
        | None -> false
      in
      if (not skip) && not oif.passive then begin
        let targets =
          List.filter
            (fun n ->
              match n.n_state with
              | Exchange | Loading | Full -> true
              | Down | Init | Exstart -> false)
            (neighbors_on t oif)
        in
        if targets <> [] then begin
          send_pkt t oif (Ospf_pkt.Ls_update [ lsa ]);
          List.iter
            (fun n ->
              Hashtbl.replace n.n_rxmt key ();
              arm_rxmt t n)
            targets
        end
      end)
    t.ifaces

let rec schedule_spf t =
  if not t.spf_scheduled then begin
    t.spf_scheduled <- true;
    ignore
      (Rf_sim.Engine.schedule t.engine t.cfg.spf_delay (fun () -> run_spf t))
  end

and run_spf t =
  Rf_obs.Metrics.incr t.m_spf;
  t.spf_scheduled <- false;
  t.spf_count <- t.spf_count + 1;
  (* Vertices = router LSAs; a p2p edge A->B counts only when B's LSA
     links back to A (bidirectionality check of RFC 2328 §16.1). *)
  let lsa_of rid =
    Hashtbl.find_opt t.lsdb { Ospf_pkt.k_type = 1; k_id = rid; k_adv = rid }
  in
  let p2p_links lsa =
    match lsa.Ospf_pkt.body with
    | Ospf_pkt.Router { links } ->
        List.filter
          (fun (l : Ospf_pkt.router_link) -> l.link_type = Ospf_pkt.Point_to_point)
          links
    | Ospf_pkt.Network _ | Ospf_pkt.Opaque _ -> []
  in
  let stub_links lsa =
    match lsa.Ospf_pkt.body with
    | Ospf_pkt.Router { links } ->
        List.filter
          (fun (l : Ospf_pkt.router_link) -> l.link_type = Ospf_pkt.Stub)
          links
    | Ospf_pkt.Network _ | Ospf_pkt.Opaque _ -> []
  in
  let has_back_link from_rid to_lsa =
    List.exists
      (fun (l : Ospf_pkt.router_link) -> Ipv4_addr.equal l.link_id from_rid)
      (p2p_links to_lsa)
  in
  (* Dijkstra with (dist, first_hop router id). The frontier is a
     binary min-heap of (dist, rid) with lazy deletion: stale entries
     are skipped when their recorded distance no longer matches. *)
  let dist : (Ipv4_addr.t, int) Hashtbl.t = Hashtbl.create 64 in
  let first_hop : (Ipv4_addr.t, Ipv4_addr.t) Hashtbl.t = Hashtbl.create 64 in
  let visited : (Ipv4_addr.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let heap = ref (Array.make 64 (0, Ipv4_addr.any)) in
  let heap_len = ref 0 in
  let swap i j =
    let tmp = !heap.(i) in
    !heap.(i) <- !heap.(j);
    !heap.(j) <- tmp
  in
  let push d rid =
    if !heap_len = Array.length !heap then begin
      let bigger = Array.make (2 * Array.length !heap) (0, Ipv4_addr.any) in
      Array.blit !heap 0 bigger 0 !heap_len;
      heap := bigger
    end;
    !heap.(!heap_len) <- (d, rid);
    incr heap_len;
    let i = ref (!heap_len - 1) in
    while !i > 0 && fst !heap.((!i - 1) / 2) > fst !heap.(!i) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    if !heap_len = 0 then None
    else begin
      let top = !heap.(0) in
      decr heap_len;
      !heap.(0) <- !heap.(!heap_len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < !heap_len && fst !heap.(l) < fst !heap.(!smallest) then
          smallest := l;
        if r < !heap_len && fst !heap.(r) < fst !heap.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
  in
  Hashtbl.replace dist t.cfg.router_id 0;
  push 0 t.cfg.router_id;
  let rec loop () =
    match pop () with
    | None -> ()
    | Some (d, rid) ->
        let stale =
          Hashtbl.mem visited rid
          || match Hashtbl.find_opt dist rid with Some cur -> cur <> d | None -> true
        in
        if not stale then begin
          Hashtbl.replace visited rid ();
          match lsa_of rid with
          | None -> ()
          | Some lsa ->
              List.iter
                (fun (l : Ospf_pkt.router_link) ->
                  let nbr_rid = l.link_id in
                  match lsa_of nbr_rid with
                  | Some nbr_lsa when has_back_link rid nbr_lsa ->
                      let nd = d + l.metric in
                      let better =
                        match Hashtbl.find_opt dist nbr_rid with
                        | Some old -> nd < old
                        | None -> true
                      in
                      if better then begin
                        Hashtbl.replace dist nbr_rid nd;
                        push nd nbr_rid;
                        let hop =
                          if Ipv4_addr.equal rid t.cfg.router_id then nbr_rid
                          else
                            match Hashtbl.find_opt first_hop rid with
                            | Some h -> h
                            | None -> nbr_rid
                        in
                        Hashtbl.replace first_hop nbr_rid hop
                      end
                  | Some _ | None -> ())
                (p2p_links lsa)
        end;
        loop ()
  in
  loop ();
  (* Build OSPF routes from remote routers' stub links. *)
  let candidates : (Ipv4_addr.Prefix.t, Rib.route) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun rid d ->
      if not (Ipv4_addr.equal rid t.cfg.router_id) then
        match (lsa_of rid, Hashtbl.find_opt first_hop rid) with
        | Some lsa, Some hop -> (
            match Hashtbl.find_opt t.nbr_tbl hop with
            | Some hop_nbr when hop_nbr.n_state = Full ->
                List.iter
                  (fun (l : Ospf_pkt.router_link) ->
                    let mask_len =
                      let m = Ipv4_addr.to_int32 l.link_data in
                      let rec count i acc =
                        if i = 32 then acc
                        else
                          count (i + 1)
                            (acc
                            + Int32.to_int
                                (Int32.logand
                                   (Int32.shift_right_logical m (31 - i))
                                   1l))
                      in
                      count 0 0
                    in
                    let prefix = Ipv4_addr.Prefix.make l.link_id mask_len in
                    let metric = d + l.metric in
                    let route =
                      {
                        Rib.r_prefix = prefix;
                        r_proto = Rib.Ospf;
                        r_distance = Rib.default_distance Rib.Ospf;
                        r_metric = metric;
                        r_next_hop = Some hop_nbr.n_addr;
                        r_iface = Iface.name hop_nbr.n_oiface.ifc;
                      }
                    in
                    match Hashtbl.find_opt candidates prefix with
                    | Some existing when existing.Rib.r_metric <= metric -> ()
                    | Some _ | None -> Hashtbl.replace candidates prefix route)
                  (stub_links lsa)
            | Some _ | None -> ())
        | (Some _ | None), (Some _ | None) -> ())
    dist;
  (* Drop prefixes we own directly: connected wins anyway, but keeping
     them out of the OSPF table matches Quagga. *)
  let own_prefixes = List.map (fun oif -> Iface.prefix oif.ifc) t.ifaces in
  let routes =
    Hashtbl.fold
      (fun prefix route acc ->
        if List.exists (Ipv4_addr.Prefix.equal prefix) own_prefixes then acc
        else route :: acc)
      candidates []
    |> List.sort (fun a b -> Ipv4_addr.Prefix.compare a.Rib.r_prefix b.Rib.r_prefix)
  in
  Rib.replace_proto t.rib Rib.Ospf routes;
  let changed = routes <> t.last_routes in
  t.last_routes <- routes;
  if changed then t.on_route_change ()

let install_lsa t lsa =
  Hashtbl.replace t.lsdb (Ospf_pkt.key_of_lsa lsa) lsa;
  schedule_spf t

let originate_router_lsa t =
  let links =
    List.concat_map
      (fun oif ->
        if not (Iface.is_up oif.ifc) then []
        else begin
          let p2p =
            if oif.passive then []
            else
              List.filter_map
                (fun n ->
                  if n.n_state = Full then
                    Some
                      {
                        Ospf_pkt.link_id = n.n_router_id;
                        link_data = Iface.ip oif.ifc;
                        link_type = Ospf_pkt.Point_to_point;
                        metric = oif.cost;
                      }
                  else None)
                (neighbors_on t oif)
          in
          let stub =
            {
              Ospf_pkt.link_id = Ipv4_addr.Prefix.network (Iface.prefix oif.ifc);
              link_data = Iface.netmask oif.ifc;
              link_type = Ospf_pkt.Stub;
              metric = oif.cost;
            }
          in
          p2p @ [ stub ]
        end)
      t.ifaces
  in
  t.my_seq <- Int32.add t.my_seq 1l;
  let lsa =
    {
      Ospf_pkt.age = 1;
      options = 0x02;
      link_state_id = t.cfg.router_id;
      adv_router = t.cfg.router_id;
      seq = t.my_seq;
      body = Ospf_pkt.Router { links };
    }
  in
  install_lsa t lsa;
  flood t lsa

(* --- adjacency ---------------------------------------------------- *)

let my_headers t =
  Hashtbl.fold (fun _ lsa acc -> Ospf_pkt.header_of_lsa lsa :: acc) t.lsdb []

let send_dd t nbr =
  send_pkt t nbr.n_oiface
    (Ospf_pkt.Db_desc
       {
         mtu = 1500;
         dd_init = false;
         dd_more = false;
         dd_master = Ipv4_addr.compare t.cfg.router_id nbr.n_router_id > 0;
         dd_seq = 1l;
         headers = my_headers t;
       })

let to_full t nbr =
  if nbr.n_state <> Full then begin
    nbr.n_state <- Full;
    Rf_obs.Metrics.incr t.m_adjacencies;
    Rf_sim.Engine.record t.engine
      ~component:(Printf.sprintf "ospfd.%s" (Ipv4_addr.to_string t.cfg.router_id))
      ~event:"adjacency-full"
      (Ipv4_addr.to_string nbr.n_router_id);
    originate_router_lsa t;
    schedule_spf t
  end

let kill_neighbor t nbr =
  (match nbr.n_rxmt_timer with
  | Some timer -> Rf_sim.Engine.cancel timer
  | None -> ());
  Hashtbl.remove t.nbr_tbl nbr.n_router_id;
  if nbr.n_state = Full then begin
    originate_router_lsa t;
    schedule_spf t
  end

let handle_hello t oif ~src (h : Ospf_pkt.hello) ~from_rid =
  if
    h.hello_interval <> t.cfg.hello_interval
    || h.dead_interval <> t.cfg.dead_interval
  then
    (* RFC 2328 §10.5: hello/dead intervals must agree or the packet is
       dropped — a classic cause of stuck adjacencies that the
       autoconfig framework avoids by writing both sides' configs. *)
    Rf_sim.Engine.record t.engine
      ~component:(Printf.sprintf "ospfd.%s" (Ipv4_addr.to_string t.cfg.router_id))
      ~event:"hello-mismatch"
      (Ipv4_addr.to_string from_rid)
  else begin
  let now = Rf_sim.Engine.now t.engine in
  let nbr =
    match Hashtbl.find_opt t.nbr_tbl from_rid with
    | Some n ->
        n.n_addr <- src;
        n.n_last_hello <- now;
        n
    | None ->
        let n =
          {
            n_router_id = from_rid;
            n_addr = src;
            n_oiface = oif;
            n_state = Init;
            n_last_hello = now;
            n_req = [];
            n_rxmt = Hashtbl.create 16;
            n_rxmt_timer = None;
          }
        in
        Hashtbl.replace t.nbr_tbl from_rid n;
        (* Answer at once so the peer learns about us without waiting a
           full hello interval. *)
        send_hello t oif;
        n
  in
  let sees_us = List.exists (Ipv4_addr.equal t.cfg.router_id) h.neighbors in
  (match nbr.n_state with
  | Down | Init ->
      if sees_us then begin
        nbr.n_state <- Exstart;
        send_dd t nbr
      end
  | Exstart | Exchange | Loading | Full -> ())
  end

let handle_dd t nbr (dd : Ospf_pkt.db_desc) =
  (match nbr.n_state with
  | Down | Init ->
      (* Their hello listing us must have been lost; a DD is itself
         evidence of bidirectionality, so answer with ours. *)
      nbr.n_state <- Exstart;
      send_dd t nbr
  | Full | Exchange | Loading ->
      (* A DD from a neighbour we believe is synchronized means it
         restarted (RFC 2328 SeqNumberMismatch): describe our database
         again so it can reload. *)
      send_dd t nbr
  | Exstart -> ());
  let missing =
    List.filter_map
      (fun (h : Ospf_pkt.lsa_header) ->
        match Hashtbl.find_opt t.lsdb h.h_key with
        | None -> Some h.h_key
        | Some mine ->
            if Ospf_pkt.compare_instance h (Ospf_pkt.header_of_lsa mine) > 0
            then Some h.h_key
            else None)
      dd.headers
  in
  match missing with
  | [] -> if nbr.n_state <> Full then to_full t nbr
  | keys ->
      nbr.n_req <- keys;
      nbr.n_state <- Loading;
      send_pkt t nbr.n_oiface (Ospf_pkt.Ls_request keys)

let handle_lsr t nbr keys =
  let lsas =
    List.filter_map (fun key -> Hashtbl.find_opt t.lsdb key) keys
  in
  if lsas <> [] then begin
    send_pkt t nbr.n_oiface (Ospf_pkt.Ls_update lsas);
    List.iter
      (fun lsa ->
        Hashtbl.replace nbr.n_rxmt (Ospf_pkt.key_of_lsa lsa) ();
        arm_rxmt t nbr)
      lsas
  end

let send_ack t oif headers =
  if headers <> [] then send_pkt t oif (Ospf_pkt.Ls_ack headers)

let handle_lsu t nbr lsas =
  let acks = ref [] in
  List.iter
    (fun (lsa : Ospf_pkt.lsa) ->
      let key = Ospf_pkt.key_of_lsa lsa in
      let header = Ospf_pkt.header_of_lsa lsa in
      (* Receiving an instance is an implied ack. *)
      Hashtbl.remove nbr.n_rxmt key;
      if Ipv4_addr.equal lsa.adv_router t.cfg.router_id then begin
        (* A copy of our own LSA. If it is newer (pre-restart state),
           take over its sequence number. *)
        match Hashtbl.find_opt t.lsdb key with
        | Some mine
          when Ospf_pkt.compare_instance header (Ospf_pkt.header_of_lsa mine) > 0
          ->
            t.my_seq <- Int32.add lsa.seq 1l;
            originate_router_lsa t
        | Some _ | None -> acks := header :: !acks
      end
      else begin
        let action =
          match Hashtbl.find_opt t.lsdb key with
          | None -> if lsa.age >= Ospf_pkt.max_age then `Ack else `Install
          | Some mine ->
              let c =
                Ospf_pkt.compare_instance header (Ospf_pkt.header_of_lsa mine)
              in
              if c > 0 then if lsa.age >= Ospf_pkt.max_age then `Purge else `Install
              else if c = 0 then `Ack
              else `Send_back mine
        in
        match action with
        | `Install ->
            install_lsa t lsa;
            acks := header :: !acks;
            flood t ~except:(Iface.name nbr.n_oiface.ifc) lsa
        | `Purge ->
            (* A MaxAge instance flushes the LSA from the database. *)
            Hashtbl.remove t.lsdb key;
            schedule_spf t;
            acks := header :: !acks;
            flood t ~except:(Iface.name nbr.n_oiface.ifc) lsa
        | `Ack -> acks := header :: !acks
        | `Send_back mine -> send_pkt t nbr.n_oiface (Ospf_pkt.Ls_update [ mine ])
      end;
      (* Progress database loading. *)
      nbr.n_req <- List.filter (fun k -> k <> key) nbr.n_req;
      if nbr.n_state = Loading && nbr.n_req = [] then to_full t nbr)
    lsas;
  send_ack t nbr.n_oiface !acks

let handle_lsack _t nbr headers =
  List.iter
    (fun (h : Ospf_pkt.lsa_header) -> Hashtbl.remove nbr.n_rxmt h.h_key)
    headers

let handle_packet t oif ~src (pkt : Ospf_pkt.t) =
  if not t.started then () (* a stopped daemon is deaf *)
  else if Ipv4_addr.equal pkt.router_id t.cfg.router_id then ()
  else if not (Ipv4_addr.equal pkt.area_id t.cfg.area_id) then ()
  else
    match pkt.payload with
    | Ospf_pkt.Hello h -> handle_hello t oif ~src h ~from_rid:pkt.router_id
    | Ospf_pkt.Db_desc dd -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_dd t nbr dd
        | None -> ())
    | Ospf_pkt.Ls_request keys -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_lsr t nbr keys
        | None -> ())
    | Ospf_pkt.Ls_update lsas -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_lsu t nbr lsas
        | None -> ())
    | Ospf_pkt.Ls_ack headers -> (
        match Hashtbl.find_opt t.nbr_tbl pkt.router_id with
        | Some nbr -> handle_lsack t nbr headers
        | None -> ())

let arm_iface t oif =
  if (not oif.passive) && oif.hello_timer = None then begin
    send_hello t oif;
    oif.hello_timer <-
      Some
        (Rf_sim.Engine.periodic t.engine
           ~jitter:(Rf_sim.Vtime.span_ms 100)
           (Rf_sim.Vtime.span_s (float_of_int t.cfg.hello_interval))
           (fun () -> send_hello t oif))
  end

let add_interface t ?cost ?(passive = false) ifc =
  if not (Iface.is_addressed ifc) then
    invalid_arg "Ospfd.add_interface: interface has no address";
  let cost = Option.value cost ~default:t.cfg.reference_cost in
  let oif = { ifc; cost; passive; hello_timer = None } in
  t.ifaces <- t.ifaces @ [ oif ];
  (* Connected route. *)
  Rib.update t.rib
    {
      Rib.r_prefix = Iface.prefix ifc;
      r_proto = Rib.Connected;
      r_distance = Rib.default_distance Rib.Connected;
      r_metric = 0;
      r_next_hop = None;
      r_iface = Iface.name ifc;
    };
  Iface.add_receiver ifc (fun frame ->
      match Packet.parse frame with
      | Ok { l3 = Packet.Ipv4 (ip, Packet.Ospf pkt); _ } ->
          if
            Ipv4_addr.equal ip.dst Ipv4_addr.ospf_all_routers
            || Ipv4_addr.equal ip.dst (Iface.ip ifc)
          then handle_packet t oif ~src:ip.src pkt
      | Ok _ | Error _ -> ());
  (* Interface state drives immediate reconvergence: a downed link
     kills its adjacencies and re-originates at once instead of waiting
     out the dead interval. *)
  Iface.add_state_listener ifc (fun up ->
      if t.started then begin
        if not up then
          List.iter (kill_neighbor t) (neighbors_on t oif)
        else send_hello t oif;
        originate_router_lsa t;
        schedule_spf t
      end);
  (* Quagga accepts new `network` statements at runtime; adding an
     interface to a running instance brings it up immediately. *)
  if t.started then begin
    arm_iface t oif;
    originate_router_lsa t;
    schedule_spf t
  end

let start t =
  if not t.started then begin
    t.started <- true;
    List.iter (fun oif -> arm_iface t oif) t.ifaces;
    (* Dead-neighbor scan. *)
    let dead_scan () =
      let now = Rf_sim.Engine.now t.engine in
      let dead =
        Hashtbl.fold
          (fun _ n acc ->
            let deadline =
              Rf_sim.Vtime.add n.n_last_hello
                (Rf_sim.Vtime.span_s (float_of_int t.cfg.dead_interval))
            in
            if Rf_sim.Vtime.(deadline < now) then n :: acc else acc)
          t.nbr_tbl []
      in
      List.iter (kill_neighbor t) dead
    in
    t.timers <-
      Rf_sim.Engine.periodic t.engine (Rf_sim.Vtime.span_s 1.0) dead_scan
      :: t.timers;
    originate_router_lsa t
  end

let stop t =
  if t.started then begin
    (* Graceful shutdown (RFC 2328 §14.1): flush our router LSA by
       flooding a MaxAge instance so neighbours withdraw immediately
       instead of waiting out the dead interval. *)
    t.my_seq <- Int32.add t.my_seq 1l;
    let flush =
      {
        Ospf_pkt.age = Ospf_pkt.max_age;
        options = 0x02;
        link_state_id = t.cfg.router_id;
        adv_router = t.cfg.router_id;
        seq = t.my_seq;
        body = Ospf_pkt.Router { links = [] };
      }
    in
    Hashtbl.remove t.lsdb
      { Ospf_pkt.k_type = 1; k_id = t.cfg.router_id; k_adv = t.cfg.router_id };
    flood t flush;
    t.started <- false;
    List.iter
      (fun oif ->
        match oif.hello_timer with
        | Some timer ->
            Rf_sim.Engine.cancel timer;
            oif.hello_timer <- None
        | None -> ())
      t.ifaces;
    List.iter Rf_sim.Engine.cancel t.timers;
    t.timers <- [];
    Hashtbl.iter
      (fun _ n ->
        match n.n_rxmt_timer with
        | Some timer -> Rf_sim.Engine.cancel timer
        | None -> ())
      t.nbr_tbl;
    Hashtbl.reset t.nbr_tbl;
    Rib.replace_proto t.rib Rib.Ospf []
  end

let neighbors t =
  Hashtbl.fold
    (fun _ n acc ->
      {
        ni_router_id = n.n_router_id;
        ni_addr = n.n_addr;
        ni_iface = Iface.name n.n_oiface.ifc;
        ni_state = n.n_state;
      }
      :: acc)
    t.nbr_tbl []
  |> List.sort (fun a b -> Ipv4_addr.compare a.ni_router_id b.ni_router_id)

let lsdb t = Hashtbl.fold (fun _ lsa acc -> lsa :: acc) t.lsdb []

let lsdb_size t = Hashtbl.length t.lsdb

let spf_runs t = t.spf_count

let spf_now t =
  run_spf t;
  List.length t.last_routes

let is_adjacent_to t rid =
  match Hashtbl.find_opt t.nbr_tbl rid with
  | Some n -> n.n_state = Full
  | None -> false

let full_neighbor_count t =
  Hashtbl.fold (fun _ n acc -> if n.n_state = Full then acc + 1 else acc) t.nbr_tbl 0

let neighbor_addr_of_router t rid =
  match Hashtbl.find_opt t.nbr_tbl rid with
  | Some n when n.n_state = Full -> Some n.n_addr
  | Some _ | None -> None

let state_name = function
  | Down -> "Down"
  | Init -> "Init"
  | Exstart -> "ExStart"
  | Exchange -> "Exchange"
  | Loading -> "Loading"
  | Full -> "Full"

let pp_neighbor ppf n =
  Format.fprintf ppf "%a via %s (%s) %s" Ipv4_addr.pp n.ni_router_id n.ni_iface
    (Ipv4_addr.to_string n.ni_addr)
    (state_name n.ni_state)
