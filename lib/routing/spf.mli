(** Incremental shortest-path-first engine.

    Holds the shortest-path tree rooted at one router and repairs it
    in place when a subset of routers re-originate their LSAs: only
    the root-side boundary and the invalidated subtree are re-relaxed
    (warm-start Dijkstra), instead of recomputing from scratch. The
    full recomputation stays available as {!full} and both paths
    produce identical results — parents and first hops are derived by
    a canonical deterministic pass over the (unique) distance map, so
    equal-cost ties break the same way regardless of relaxation order.

    The graph is the router-LSA topology: a directed edge [u -> v]
    with metric [m] exists when [u]'s links list [(v, m)] {e and} [v]'s
    links list [u] back (the bidirectionality check of RFC 2328
    §16.1). *)

open Rf_packet

type graph
(** Mutable adjacency cache, keyed by router id. *)

val graph_create : unit -> graph

val graph_set_links : graph -> Ipv4_addr.t -> (Ipv4_addr.t * int) list -> unit
(** Replace [rid]'s out-links with [(neighbor, metric)] pairs. *)

val graph_remove : graph -> Ipv4_addr.t -> unit

val graph_reset : graph -> unit

type t

val create : root:Ipv4_addr.t -> t

val full : t -> graph -> unit
(** Cold-start: recompute the whole tree from the root. *)

val update : t -> graph -> dirty:Ipv4_addr.t list -> unit
(** Warm-start: repair the tree given that exactly the routers in
    [dirty] changed their links since the last run. The caller must
    have refreshed [graph] for those routers first. Falls back to
    {!full} when the tree has never been computed or when the root
    itself is dirty. *)

val dist : t -> Ipv4_addr.t -> int option
(** Distance from the root; [None] when unreachable. *)

val first_hop : t -> Ipv4_addr.t -> Ipv4_addr.t option
(** First router on the canonical shortest path from the root. *)

val iter : t -> (Ipv4_addr.t -> int -> Ipv4_addr.t -> unit) -> unit
(** [iter t f] calls [f rid dist first_hop] for every reachable router
    other than the root (iteration order unspecified). *)

val reachable : t -> (Ipv4_addr.t * int * Ipv4_addr.t) list
(** Sorted [(rid, dist, first_hop)] snapshot, for tests. *)
