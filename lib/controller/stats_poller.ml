open Rf_openflow

type totals = {
  rx_packets : int64;
  tx_packets : int64;
  rx_bytes : int64;
  tx_bytes : int64;
}

let zero_totals = { rx_packets = 0L; tx_packets = 0L; rx_bytes = 0L; tx_bytes = 0L }

let sum_ports stats =
  List.fold_left
    (fun acc (ps : Of_msg.port_stats) ->
      {
        rx_packets = Int64.add acc.rx_packets ps.ps_rx_packets;
        tx_packets = Int64.add acc.tx_packets ps.ps_tx_packets;
        rx_bytes = Int64.add acc.rx_bytes ps.ps_rx_bytes;
        tx_bytes = Int64.add acc.tx_bytes ps.ps_tx_bytes;
      })
    zero_totals stats

type t = {
  engine : Rf_sim.Engine.t;
  interval : Rf_sim.Vtime.span;
  samples : (int64, Of_msg.port_stats list) Hashtbl.t;
  mutable on_sample : int64 -> Of_msg.port_stats list -> unit;
  mutable polls : int;
  mutable replies : int;
  m_polls : Rf_obs.Metrics.counter;
  m_replies : Rf_obs.Metrics.counter;
}

(* Each reply refreshes the per-switch traffic gauges in the engine
   registry, so exporters see the poller's view without holding a
   reference to it. *)
let publish_totals t dpid (totals : totals) =
  let m = Rf_sim.Engine.metrics t.engine in
  let labels = [ ("dpid", Int64.to_string dpid) ] in
  let set name help v =
    Rf_obs.Metrics.set
      (Rf_obs.Metrics.gauge m ~help ~labels name)
      (Int64.to_float v)
  in
  set "port_rx_packets" "Port-stats rx packets summed per switch"
    totals.rx_packets;
  set "port_tx_packets" "Port-stats tx packets summed per switch"
    totals.tx_packets;
  set "port_rx_bytes" "Port-stats rx bytes summed per switch" totals.rx_bytes;
  set "port_tx_bytes" "Port-stats tx bytes summed per switch" totals.tx_bytes

let create engine ?(interval = Rf_sim.Vtime.span_s 10.0) () =
  {
    engine;
    interval;
    samples = Hashtbl.create 32;
    on_sample = (fun _ _ -> ());
    polls = 0;
    replies = 0;
    m_polls =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"OFPST_PORT polls sent" "stats_polls_total";
    m_replies =
      Rf_obs.Metrics.counter
        (Rf_sim.Engine.metrics engine)
        ~help:"OFPST_PORT replies received" "stats_replies_total";
  }

let attach t conn =
  Of_conn.set_on_handshake conn (fun feats ->
      let dpid = feats.Of_msg.datapath_id in
      Of_conn.set_on_message conn (fun (m : Of_msg.t) ->
          match m.Of_msg.payload with
          | Of_msg.Stats_reply (Of_msg.Port_reply stats) ->
              t.replies <- t.replies + 1;
              Rf_obs.Metrics.incr t.m_replies;
              Hashtbl.replace t.samples dpid stats;
              publish_totals t dpid (sum_ports stats);
              t.on_sample dpid stats
          | _ -> ());
      let entity = Rf_obs.Profiler.switch dpid in
      ignore
        (Rf_sim.Engine.periodic ~entity t.engine
           ~jitter:(Rf_sim.Vtime.span_ms 500)
           t.interval
           (fun () ->
             if Of_conn.is_open conn then begin
               t.polls <- t.polls + 1;
               Rf_obs.Metrics.incr t.m_polls;
               ignore
                 (Of_conn.send conn
                    (Of_msg.Stats_request (Of_msg.Port_req Of_port.none)))
             end)))

let set_on_sample t f = t.on_sample <- f

let latest_totals t dpid =
  Option.map sum_ports (Hashtbl.find_opt t.samples dpid)

let network_totals t =
  Hashtbl.fold
    (fun _ stats acc ->
      let s = sum_ports stats in
      {
        rx_packets = Int64.add acc.rx_packets s.rx_packets;
        tx_packets = Int64.add acc.tx_packets s.tx_packets;
        rx_bytes = Int64.add acc.rx_bytes s.rx_bytes;
        tx_bytes = Int64.add acc.tx_bytes s.tx_bytes;
      })
    t.samples zero_totals

let polls_sent t = t.polls

let replies_received t = t.replies
