open Rf_packet
open Rf_openflow

type link = { la_dpid : int64; la_port : int; lb_dpid : int64; lb_port : int }

let normalize a_dpid a_port b_dpid b_port =
  if
    Int64.compare a_dpid b_dpid < 0
    || (Int64.equal a_dpid b_dpid && a_port <= b_port)
  then { la_dpid = a_dpid; la_port = a_port; lb_dpid = b_dpid; lb_port = b_port }
  else { la_dpid = b_dpid; la_port = b_port; lb_dpid = a_dpid; lb_port = a_port }

type switch_state = {
  conn : Of_conn.t;
  ports : Of_msg.phys_port list;
  first_seen : Rf_sim.Vtime.t;
  probe_timer : Rf_sim.Engine.timer;
}

type link_state = { mutable last_seen : Rf_sim.Vtime.t; first_reported : Rf_sim.Vtime.t }

type t = {
  engine : Rf_sim.Engine.t;
  probe_interval : Rf_sim.Vtime.span;
  link_timeout : Rf_sim.Vtime.span;
  switches : (int64, switch_state) Hashtbl.t;
  links : (link, link_state) Hashtbl.t;
  mutable on_switch_up : int64 -> Of_msg.phys_port list -> unit;
  mutable on_switch_down : int64 -> unit;
  mutable on_link_up : link -> unit;
  mutable on_link_down : link -> unit;
  mutable probes : int;
  mutable lldp_rx : int;
  m_probes : Rf_obs.Metrics.counter;
  m_lldp_rx : Rf_obs.Metrics.counter;
  m_links : Rf_obs.Metrics.counter;
}

let create engine ?(probe_interval = Rf_sim.Vtime.span_s 5.0)
    ?(link_timeout = Rf_sim.Vtime.span_s 15.0) () =
  let t =
    {
      engine;
      probe_interval;
      link_timeout;
      switches = Hashtbl.create 64;
      links = Hashtbl.create 64;
      on_switch_up = (fun _ _ -> ());
      on_switch_down = (fun _ -> ());
      on_link_up = (fun _ -> ());
      on_link_down = (fun _ -> ());
      probes = 0;
      lldp_rx = 0;
      m_probes =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"LLDP probe packet-outs sent" "discovery_probes_total";
      m_lldp_rx =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"LLDP packet-ins classified" "discovery_lldp_rx_total";
      m_links =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"Distinct links discovered" "discovery_links_total";
    }
  in
  (* Age out links whose probes stopped arriving. *)
  let age () =
    let now = Rf_sim.Engine.now engine in
    let stale =
      Hashtbl.fold
        (fun link st acc ->
          if Rf_sim.Vtime.(add st.last_seen t.link_timeout < now) then link :: acc
          else acc)
        t.links []
    in
    List.iter
      (fun link ->
        Hashtbl.remove t.links link;
        t.on_link_down link)
      stale
  in
  ignore
    (Rf_sim.Engine.periodic
       ~entity:(Rf_obs.Profiler.component "discovery")
       engine probe_interval age);
  t

let send_probes t dpid (st : switch_state) =
  List.iter
    (fun (p : Of_msg.phys_port) ->
      if Of_port.is_physical p.port_no && p.up then begin
        t.probes <- t.probes + 1;
        Rf_obs.Metrics.incr t.m_probes;
        let frame =
          Packet.lldp ~src:p.hw_addr (Lldp.discovery_probe ~dpid ~port:p.port_no)
        in
        Of_conn.packet_out st.conn
          ~actions:[ Of_action.output p.port_no ]
          frame
      end)
    st.ports

let handle_lldp t ~rx_dpid ~rx_port frame =
  match Packet.parse frame with
  | Error _ -> ()
  | Ok { l3 = Packet.Lldp lldp; _ } -> (
      t.lldp_rx <- t.lldp_rx + 1;
      Rf_obs.Metrics.incr t.m_lldp_rx;
      match Lldp.parse_discovery lldp with
      | None -> ()
      | Some (src_dpid, src_port) ->
          let link = normalize src_dpid src_port rx_dpid rx_port in
          let now = Rf_sim.Engine.now t.engine in
          (match Hashtbl.find_opt t.links link with
          | Some st -> st.last_seen <- now
          | None ->
              Hashtbl.replace t.links link { last_seen = now; first_reported = now };
              Rf_obs.Metrics.incr t.m_links;
              t.on_link_up link))
  | Ok { l3 = Packet.Arp _ | Packet.Ipv4 _ | Packet.Raw_l3 _; _ } -> ()

let remove_switch t dpid =
  match Hashtbl.find_opt t.switches dpid with
  | None -> ()
  | Some st ->
      Rf_sim.Engine.cancel st.probe_timer;
      Hashtbl.remove t.switches dpid;
      let gone =
        Hashtbl.fold
          (fun link _ acc ->
            if Int64.equal link.la_dpid dpid || Int64.equal link.lb_dpid dpid then
              link :: acc
            else acc)
          t.links []
      in
      List.iter
        (fun link ->
          Hashtbl.remove t.links link;
          t.on_link_down link)
        gone;
      t.on_switch_down dpid

let attach t conn =
  Of_conn.set_on_handshake conn (fun feats ->
      let dpid = feats.Of_msg.datapath_id in
      let st_ref = ref None in
      let probe_timer =
        Rf_sim.Engine.periodic
          ~entity:(Rf_obs.Profiler.switch dpid)
          t.engine
          ~jitter:(Rf_sim.Vtime.span_s 1.0)
          t.probe_interval
          (fun () ->
            match !st_ref with
            | Some st -> send_probes t dpid st
            | None -> ())
      in
      let st =
        {
          conn;
          ports = feats.Of_msg.ports;
          first_seen = Rf_sim.Engine.now t.engine;
          probe_timer;
        }
      in
      st_ref := Some st;
      Hashtbl.replace t.switches dpid st;
      t.on_switch_up dpid st.ports;
      (* First probe round immediately: discovery latency matters to the
         configuration-time experiment. *)
      send_probes t dpid st);
  Of_conn.set_on_message conn (fun (m : Of_msg.t) ->
      match m.payload with
      | Of_msg.Packet_in pi -> (
          match Of_conn.dpid conn with
          | Some rx_dpid ->
              handle_lldp t ~rx_dpid ~rx_port:pi.pi_in_port pi.pi_data
          | None -> ())
      | Of_msg.Port_status { desc; _ } when not desc.Of_msg.up -> (
          (* A port went down: its links are gone now, not after the
             aging timeout. *)
          match Of_conn.dpid conn with
          | Some dpid ->
              let gone =
                Hashtbl.fold
                  (fun link _ acc ->
                    if
                      (Int64.equal link.la_dpid dpid
                      && link.la_port = desc.Of_msg.port_no)
                      || (Int64.equal link.lb_dpid dpid
                         && link.lb_port = desc.Of_msg.port_no)
                    then link :: acc
                    else acc)
                  t.links []
              in
              List.iter
                (fun link ->
                  Hashtbl.remove t.links link;
                  t.on_link_down link)
                gone
          | None -> ())
      | Of_msg.Port_status _ | Of_msg.Error _ | Of_msg.Vendor _
      | Of_msg.Hello | Of_msg.Echo_request _ | Of_msg.Echo_reply _
      | Of_msg.Features_request | Of_msg.Features_reply _
      | Of_msg.Get_config_request | Of_msg.Get_config_reply _
      | Of_msg.Set_config _ | Of_msg.Flow_removed _ | Of_msg.Packet_out _
      | Of_msg.Flow_mod _ | Of_msg.Port_mod _ | Of_msg.Stats_request _
      | Of_msg.Stats_reply _ | Of_msg.Barrier_request | Of_msg.Barrier_reply ->
          ());
  Of_conn.set_on_close conn (fun () ->
      match Of_conn.dpid conn with
      | Some dpid -> remove_switch t dpid
      | None -> ())

let set_on_switch_up t f = t.on_switch_up <- f

let set_on_switch_down t f = t.on_switch_down <- f

let set_on_link_up t f = t.on_link_up <- f

let set_on_link_down t f = t.on_link_down <- f

let switches t =
  Hashtbl.fold (fun d st acc -> (d, st.ports) :: acc) t.switches []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let links t =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.links []
  |> List.sort compare

let switch_seen_at t dpid =
  Option.map (fun st -> st.first_seen) (Hashtbl.find_opt t.switches dpid)

let link_seen_at t link =
  Option.map (fun st -> st.first_reported) (Hashtbl.find_opt t.links link)

let probes_sent t = t.probes

let lldp_received t = t.lldp_rx

let pp_link ppf l =
  Format.fprintf ppf "sw%Ld/%d <-> sw%Ld/%d" l.la_dpid l.la_port l.lb_dpid
    l.lb_port
