(** Controller-side OpenFlow connection.

    Wraps one control channel: performs the Hello / Features handshake,
    answers echo requests, assigns transaction ids, and dispatches
    incoming messages to the owning application. *)

open Rf_openflow

type role = Master | Slave
(** OpenFlow 1.2-style controller role. A [Slave] keeps the channel
    alive (handshake, echo, reads) but its state-changing sends —
    [Flow_mod] and [Packet_out] — are suppressed and counted. Standby
    cluster replicas hold their switch connections as slaves until
    failover promotes them. *)

type t

val create :
  Rf_sim.Engine.t ->
  ?echo_interval:Rf_sim.Vtime.span ->
  Rf_net.Channel.endpoint ->
  t
(** Sends Hello immediately; requests features once the peer's Hello
    arrives. [echo_interval] (default 15 s) paces keepalives. *)

val dpid : t -> int64 option
(** Known after the handshake completes. *)

val features : t -> Of_msg.features option

val set_on_handshake : t -> (Of_msg.features -> unit) -> unit

val set_on_message : t -> (Of_msg.t -> unit) -> unit
(** Receives every message except Hello, Echo and Features_reply
    (handled internally). *)

val set_fault_profile : t -> Rf_sim.Rng.t -> Rf_sim.Faults.chan_profile -> unit
(** Makes this connection's outgoing messages subject to the lossy
    profile: each message is dropped, duplicated or delayed per a draw
    from the given generator (split it off the engine's seeded root so
    the run stays replayable). Faults apply at message granularity —
    framing is never corrupted — and the handshake openers (Hello,
    Features_request) are exempt from drop/duplication since nothing
    retries them. *)

val set_role : t -> role -> unit
(** Connections start as [Master]. *)

val role : t -> role

val suppressed_sends : t -> int
(** State-changing messages swallowed while in the [Slave] role. *)

val messages_dropped : t -> int

val messages_duplicated : t -> int

val messages_delayed : t -> int

val set_on_close : t -> (unit -> unit) -> unit

val send : t -> Of_msg.payload -> int32
(** Assigns and returns a fresh xid. *)

val send_msg : t -> Of_msg.t -> unit

val is_open : t -> bool

val close : t -> unit

(** {1 Convenience senders} *)

val packet_out :
  t -> ?in_port:int -> actions:Of_action.t list -> string -> unit

val packet_out_buffered : t -> buffer_id:int32 -> in_port:int -> actions:Of_action.t list -> unit

val flow_mod : t -> Of_msg.flow_mod -> unit

val barrier : t -> unit
