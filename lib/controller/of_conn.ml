open Rf_openflow

type role = Master | Slave

type t = {
  engine : Rf_sim.Engine.t;
  chan : Rf_net.Channel.endpoint;
  framer : Of_codec.Framer.t;
  mutable next_xid : int32;
  mutable features : Of_msg.features option;
  mutable handshake_done : bool;
  mutable on_handshake : Of_msg.features -> unit;
  mutable on_message : Of_msg.t -> unit;
  mutable on_close : unit -> unit;
  mutable echo_timer : Rf_sim.Engine.timer option;
  mutable faults : (Rf_sim.Rng.t * Rf_sim.Faults.chan_profile) option;
  mutable role : role;
  mutable suppressed : int;
  mutable msgs_dropped : int;
  mutable msgs_duplicated : int;
  mutable msgs_delayed : int;
  m_sent : Rf_obs.Metrics.counter;
  m_faulted : Rf_obs.Metrics.counter;
  entity : Rf_obs.Profiler.entity;
}

let fresh_xid t =
  t.next_xid <- Int32.add t.next_xid 1l;
  t.next_xid

let raw_send t m =
  Rf_obs.Metrics.incr t.m_sent;
  Rf_net.Channel.send t.chan (Of_codec.to_wire m)

(* Faults apply per message (never mid-frame, which would corrupt the
   peer's framer). The handshake openers are exempt from drop and
   duplication — there is no application-level retry for them, and the
   lossy profile models an overloaded channel, not a broken TCP — but
   they can still be delayed. *)
let handshake_critical (m : Of_msg.t) =
  match m.payload with
  | Of_msg.Hello | Of_msg.Features_request -> true
  | _ -> false

let send_msg t m =
  match t.faults with
  | None -> raw_send t m
  | Some (rng, profile) -> (
      match Rf_sim.Faults.fate rng profile with
      | Rf_sim.Faults.Drop when not (handshake_critical m) ->
          t.msgs_dropped <- t.msgs_dropped + 1;
          Rf_obs.Metrics.incr t.m_faulted;
          Rf_sim.Engine.record t.engine ~component:"of-conn" ~event:"fault-drop"
            (Of_msg.type_name m.payload)
      | Rf_sim.Faults.Duplicate when not (handshake_critical m) ->
          t.msgs_duplicated <- t.msgs_duplicated + 1;
          Rf_obs.Metrics.incr t.m_faulted;
          Rf_sim.Engine.record t.engine ~component:"of-conn" ~event:"fault-duplicate"
            (Of_msg.type_name m.payload);
          raw_send t m;
          raw_send t m
      | Rf_sim.Faults.Delay span ->
          t.msgs_delayed <- t.msgs_delayed + 1;
          Rf_obs.Metrics.incr t.m_faulted;
          ignore
            (Rf_sim.Engine.schedule ~entity:t.entity t.engine span (fun () ->
                 raw_send t m))
      | Rf_sim.Faults.Deliver | Rf_sim.Faults.Drop | Rf_sim.Faults.Duplicate ->
          raw_send t m)

(* OFPP 1.2-style role filtering: a slave controller keeps its channel
   (handshake, echo) but must not mutate switch state or emit packets.
   Standby cluster replicas hold their connections in this role. *)
let state_changing (payload : Of_msg.payload) =
  match payload with
  | Of_msg.Flow_mod _ | Of_msg.Packet_out _ -> true
  | _ -> false

let send t payload =
  let xid = fresh_xid t in
  if t.role = Slave && state_changing payload then begin
    t.suppressed <- t.suppressed + 1;
    Rf_sim.Engine.record t.engine ~component:"of-conn" ~event:"slave-suppressed"
      (Of_msg.type_name payload)
  end
  else send_msg t (Of_msg.msg ~xid payload);
  xid

let handle t (m : Of_msg.t) =
  match m.payload with
  | Of_msg.Hello -> ignore (send t Of_msg.Features_request)
  | Of_msg.Echo_request data -> send_msg t (Of_msg.msg ~xid:m.xid (Of_msg.Echo_reply data))
  | Of_msg.Echo_reply _ -> ()
  | Of_msg.Features_reply f ->
      t.features <- Some f;
      if not t.handshake_done then begin
        t.handshake_done <- true;
        t.on_handshake f
      end
  | Of_msg.Error _ | Of_msg.Vendor _ | Of_msg.Features_request
  | Of_msg.Get_config_request | Of_msg.Get_config_reply _ | Of_msg.Set_config _
  | Of_msg.Packet_in _ | Of_msg.Flow_removed _ | Of_msg.Port_status _
  | Of_msg.Packet_out _ | Of_msg.Flow_mod _ | Of_msg.Port_mod _
  | Of_msg.Stats_request _ | Of_msg.Stats_reply _ | Of_msg.Barrier_request
  | Of_msg.Barrier_reply ->
      t.on_message m

let create engine ?(echo_interval = Rf_sim.Vtime.span_s 15.0) chan =
  let t =
    {
      engine;
      chan;
      framer = Of_codec.Framer.create ();
      next_xid = 0l;
      features = None;
      handshake_done = false;
      on_handshake = (fun _ -> ());
      on_message = (fun _ -> ());
      on_close = (fun () -> ());
      echo_timer = None;
      faults = None;
      role = Master;
      suppressed = 0;
      msgs_dropped = 0;
      msgs_duplicated = 0;
      msgs_delayed = 0;
      m_sent =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"OpenFlow messages sent over control channels"
          "of_messages_sent_total";
      m_faulted =
        Rf_obs.Metrics.counter
          (Rf_sim.Engine.metrics engine)
          ~help:"OpenFlow messages dropped/duplicated/delayed by faults"
          "of_messages_faulted_total";
      entity = Rf_obs.Profiler.component "of-conn";
    }
  in
  Rf_net.Channel.set_on_close chan (fun () ->
      (match t.echo_timer with
      | Some timer -> Rf_sim.Engine.cancel timer
      | None -> ());
      t.on_close ());
  Rf_net.Channel.set_receiver chan (fun bytes ->
      match Of_codec.Framer.input t.framer bytes with
      | Ok msgs -> List.iter (handle t) msgs
      | Error e ->
          Rf_sim.Engine.record engine ~component:"of-conn" ~event:"framing-error" e;
          Rf_net.Channel.close chan);
  send_msg t (Of_msg.msg ~xid:0l Of_msg.Hello);
  t.echo_timer <-
    Some
      (Rf_sim.Engine.periodic ~entity:t.entity engine echo_interval (fun () ->
           if Rf_net.Channel.is_open chan then
             ignore (send t (Of_msg.Echo_request "keepalive"))));
  t

let dpid t = Option.map (fun f -> f.Of_msg.datapath_id) t.features

let features t = t.features

let set_on_handshake t f =
  t.on_handshake <- f;
  match t.features with Some feats when t.handshake_done -> f feats | Some _ | None -> ()

let set_on_message t f = t.on_message <- f

let set_fault_profile t rng profile = t.faults <- Some (rng, profile)

let set_role t role = t.role <- role

let role t = t.role

let suppressed_sends t = t.suppressed

let messages_dropped t = t.msgs_dropped

let messages_duplicated t = t.msgs_duplicated

let messages_delayed t = t.msgs_delayed

let set_on_close t f = t.on_close <- f

let is_open t = Rf_net.Channel.is_open t.chan

let close t = Rf_net.Channel.close t.chan

let packet_out t ?(in_port = Of_port.none) ~actions data =
  ignore
    (send t
       (Of_msg.Packet_out
          { po_buffer_id = None; po_in_port = in_port; po_actions = actions; po_data = data }))

let packet_out_buffered t ~buffer_id ~in_port ~actions =
  ignore
    (send t
       (Of_msg.Packet_out
          {
            po_buffer_id = Some buffer_id;
            po_in_port = in_port;
            po_actions = actions;
            po_data = "";
          }))

let flow_mod t fm = ignore (send t (Of_msg.Flow_mod fm))

let barrier t = ignore (send t Of_msg.Barrier_request)
