open Rf_packet

type t =
  | Switch_up of { dpid : int64; n_ports : int }
  | Switch_down of { dpid : int64 }
  | Link_up of {
      a_dpid : int64;
      a_port : int;
      a_ip : Ipv4_addr.t;
      a_prefix_len : int;
      b_dpid : int64;
      b_port : int;
      b_ip : Ipv4_addr.t;
      b_prefix_len : int;
    }
  | Link_down of { a_dpid : int64; a_port : int; b_dpid : int64; b_port : int }
  | Edge_subnet of {
      dpid : int64;
      port : int;
      gateway : Ipv4_addr.t;
      prefix_len : int;
    }

type ack = { a_epoch : int32; a_cum : int32; a_seq : int32 }

type envelope = { epoch : int32; seq : int32; body : body }

and body =
  | Request of t
  | Ack of ack
  | Ping
  | Pong
  | Sync_request
  | Sync_snapshot of t list
  | Elect_request of { el_epoch : int32; el_candidate : int; el_last : int32 }
  | Elect_vote of { ev_epoch : int32; ev_voter : int; ev_granted : bool }
  | Leader_heartbeat of {
      lh_epoch : int32;
      lh_leader : int;
      lh_commit : int32;
      lh_len : int32;
    }
  | Replicate of {
      rp_epoch : int32;
      rp_leader : int;
      rp_index : int32;
      rp_msg : t;
    }
  | Replicate_ack of { ra_epoch : int32; ra_replica : int; ra_index : int32 }

(* Serial (RFC 1982-style) sequence arithmetic: correct ordering across
   int32 wraparound as long as compared values are within 2^31 of each
   other. Sequence 0 is reserved for untracked envelopes (acks,
   heartbeats), so the successor function skips it. *)

let seq_after a b = Int32.compare (Int32.sub a b) 0l > 0

let seq_succ s =
  let s = Int32.add s 1l in
  if Int32.equal s 0l then 1l else s

let max_snapshot_msgs = 0xffff

let encode_request w = function
  | Switch_up { dpid; n_ports } ->
      Wire.Writer.u8 w 1;
      Wire.Writer.u64 w dpid;
      Wire.Writer.u16 w n_ports
  | Switch_down { dpid } ->
      Wire.Writer.u8 w 2;
      Wire.Writer.u64 w dpid
  | Link_up l ->
      Wire.Writer.u8 w 3;
      Wire.Writer.u64 w l.a_dpid;
      Wire.Writer.u16 w l.a_port;
      Wire.Writer.u32 w (Ipv4_addr.to_int32 l.a_ip);
      Wire.Writer.u8 w l.a_prefix_len;
      Wire.Writer.u64 w l.b_dpid;
      Wire.Writer.u16 w l.b_port;
      Wire.Writer.u32 w (Ipv4_addr.to_int32 l.b_ip);
      Wire.Writer.u8 w l.b_prefix_len
  | Link_down l ->
      Wire.Writer.u8 w 4;
      Wire.Writer.u64 w l.a_dpid;
      Wire.Writer.u16 w l.a_port;
      Wire.Writer.u64 w l.b_dpid;
      Wire.Writer.u16 w l.b_port
  | Edge_subnet e ->
      Wire.Writer.u8 w 5;
      Wire.Writer.u64 w e.dpid;
      Wire.Writer.u16 w e.port;
      Wire.Writer.u32 w (Ipv4_addr.to_int32 e.gateway);
      Wire.Writer.u8 w e.prefix_len

let to_wire env =
  let body = Wire.Writer.create ~initial:32 () in
  Wire.Writer.u32 body env.epoch;
  Wire.Writer.u32 body env.seq;
  (match env.body with
  | Request r ->
      Wire.Writer.u8 body 0;
      encode_request body r
  | Ack { a_epoch; a_cum; a_seq } ->
      Wire.Writer.u8 body 1;
      Wire.Writer.u32 body a_epoch;
      Wire.Writer.u32 body a_cum;
      Wire.Writer.u32 body a_seq
  | Ping -> Wire.Writer.u8 body 2
  | Pong -> Wire.Writer.u8 body 3
  | Sync_request -> Wire.Writer.u8 body 4
  | Sync_snapshot msgs ->
      if List.length msgs > max_snapshot_msgs then
        invalid_arg "Rpc_msg.to_wire: snapshot too large";
      Wire.Writer.u8 body 5;
      Wire.Writer.u16 body (List.length msgs);
      List.iter (encode_request body) msgs
  | Elect_request { el_epoch; el_candidate; el_last } ->
      Wire.Writer.u8 body 6;
      Wire.Writer.u32 body el_epoch;
      Wire.Writer.u16 body el_candidate;
      Wire.Writer.u32 body el_last
  | Elect_vote { ev_epoch; ev_voter; ev_granted } ->
      Wire.Writer.u8 body 7;
      Wire.Writer.u32 body ev_epoch;
      Wire.Writer.u16 body ev_voter;
      Wire.Writer.u8 body (if ev_granted then 1 else 0)
  | Leader_heartbeat { lh_epoch; lh_leader; lh_commit; lh_len } ->
      Wire.Writer.u8 body 8;
      Wire.Writer.u32 body lh_epoch;
      Wire.Writer.u16 body lh_leader;
      Wire.Writer.u32 body lh_commit;
      Wire.Writer.u32 body lh_len
  | Replicate { rp_epoch; rp_leader; rp_index; rp_msg } ->
      Wire.Writer.u8 body 9;
      Wire.Writer.u32 body rp_epoch;
      Wire.Writer.u16 body rp_leader;
      Wire.Writer.u32 body rp_index;
      encode_request body rp_msg
  | Replicate_ack { ra_epoch; ra_replica; ra_index } ->
      Wire.Writer.u8 body 10;
      Wire.Writer.u32 body ra_epoch;
      Wire.Writer.u16 body ra_replica;
      Wire.Writer.u32 body ra_index);
  let body = Wire.Writer.contents body in
  let w = Wire.Writer.create ~initial:(4 + String.length body) () in
  Wire.Writer.u32 w (Int32.of_int (String.length body));
  Wire.Writer.bytes w body;
  Wire.Writer.contents w

let decode_request r =
  let typ = Wire.Reader.u8 r in
  match typ with
  | 1 ->
      let dpid = Wire.Reader.u64 r in
      let n_ports = Wire.Reader.u16 r in
      Ok (Switch_up { dpid; n_ports })
  | 2 -> Ok (Switch_down { dpid = Wire.Reader.u64 r })
  | 3 ->
      let a_dpid = Wire.Reader.u64 r in
      let a_port = Wire.Reader.u16 r in
      let a_ip = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let a_prefix_len = Wire.Reader.u8 r in
      let b_dpid = Wire.Reader.u64 r in
      let b_port = Wire.Reader.u16 r in
      let b_ip = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let b_prefix_len = Wire.Reader.u8 r in
      Ok
        (Link_up
           { a_dpid; a_port; a_ip; a_prefix_len; b_dpid; b_port; b_ip; b_prefix_len })
  | 4 ->
      let a_dpid = Wire.Reader.u64 r in
      let a_port = Wire.Reader.u16 r in
      let b_dpid = Wire.Reader.u64 r in
      let b_port = Wire.Reader.u16 r in
      Ok (Link_down { a_dpid; a_port; b_dpid; b_port })
  | 5 ->
      let dpid = Wire.Reader.u64 r in
      let port = Wire.Reader.u16 r in
      let gateway = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let prefix_len = Wire.Reader.u8 r in
      Ok (Edge_subnet { dpid; port; gateway; prefix_len })
  | n -> Error (Printf.sprintf "rpc: unknown request type %d" n)

let of_frame frame =
  try
    let r = Wire.Reader.of_string frame in
    let epoch = Wire.Reader.u32 r in
    let seq = Wire.Reader.u32 r in
    let kind = Wire.Reader.u8 r in
    let env body = { epoch; seq; body } in
    match kind with
    | 0 -> Result.map (fun req -> env (Request req)) (decode_request r)
    | 1 ->
        let a_epoch = Wire.Reader.u32 r in
        let a_cum = Wire.Reader.u32 r in
        let a_seq = Wire.Reader.u32 r in
        Ok (env (Ack { a_epoch; a_cum; a_seq }))
    | 2 -> Ok (env Ping)
    | 3 -> Ok (env Pong)
    | 4 -> Ok (env Sync_request)
    | 5 ->
        let count = Wire.Reader.u16 r in
        let rec go acc n =
          if n = 0 then Ok (env (Sync_snapshot (List.rev acc)))
          else
            match decode_request r with
            | Ok m -> go (m :: acc) (n - 1)
            | Error e -> Error e
        in
        go [] count
    | 6 ->
        let el_epoch = Wire.Reader.u32 r in
        let el_candidate = Wire.Reader.u16 r in
        let el_last = Wire.Reader.u32 r in
        Ok (env (Elect_request { el_epoch; el_candidate; el_last }))
    | 7 ->
        let ev_epoch = Wire.Reader.u32 r in
        let ev_voter = Wire.Reader.u16 r in
        let ev_granted = Wire.Reader.u8 r <> 0 in
        Ok (env (Elect_vote { ev_epoch; ev_voter; ev_granted }))
    | 8 ->
        let lh_epoch = Wire.Reader.u32 r in
        let lh_leader = Wire.Reader.u16 r in
        let lh_commit = Wire.Reader.u32 r in
        let lh_len = Wire.Reader.u32 r in
        Ok (env (Leader_heartbeat { lh_epoch; lh_leader; lh_commit; lh_len }))
    | 9 ->
        let rp_epoch = Wire.Reader.u32 r in
        let rp_leader = Wire.Reader.u16 r in
        let rp_index = Wire.Reader.u32 r in
        Result.map
          (fun rp_msg -> env (Replicate { rp_epoch; rp_leader; rp_index; rp_msg }))
          (decode_request r)
    | 10 ->
        let ra_epoch = Wire.Reader.u32 r in
        let ra_replica = Wire.Reader.u16 r in
        let ra_index = Wire.Reader.u32 r in
        Ok (env (Replicate_ack { ra_epoch; ra_replica; ra_index }))
    | n -> Error (Printf.sprintf "rpc: unknown envelope kind %d" n)
  with Wire.Truncated -> Error "rpc: truncated"

module Framer = struct
  type nonrec t = { mutable buffer : string }

  let create () = { buffer = "" }

  (* Smallest body: epoch + seq + kind byte. *)
  let min_body_len = 9

  let input t chunk =
    t.buffer <- t.buffer ^ chunk;
    let rec extract acc =
      let len = String.length t.buffer in
      if len < 4 then Ok (List.rev acc)
      else begin
        let body_len =
          (Char.code t.buffer.[0] lsl 24)
          lor (Char.code t.buffer.[1] lsl 16)
          lor (Char.code t.buffer.[2] lsl 8)
          lor Char.code t.buffer.[3]
        in
        if body_len < min_body_len || body_len > 1 lsl 20 then
          Error "rpc: framing error"
        else if len < 4 + body_len then Ok (List.rev acc)
        else begin
          let frame = String.sub t.buffer 4 body_len in
          t.buffer <-
            String.sub t.buffer (4 + body_len) (len - 4 - body_len);
          match of_frame frame with
          | Ok env -> extract (env :: acc)
          | Error e -> Error e
        end
      end
    in
    extract []
end

let pp ppf = function
  | Switch_up { dpid; n_ports } ->
      Format.fprintf ppf "switch-up dpid=%Ld ports=%d" dpid n_ports
  | Switch_down { dpid } -> Format.fprintf ppf "switch-down dpid=%Ld" dpid
  | Link_up l ->
      Format.fprintf ppf "link-up sw%Ld/%d(%a/%d) <-> sw%Ld/%d(%a/%d)" l.a_dpid
        l.a_port Ipv4_addr.pp l.a_ip l.a_prefix_len l.b_dpid l.b_port
        Ipv4_addr.pp l.b_ip l.b_prefix_len
  | Link_down l ->
      Format.fprintf ppf "link-down sw%Ld/%d <-> sw%Ld/%d" l.a_dpid l.a_port
        l.b_dpid l.b_port
  | Edge_subnet e ->
      Format.fprintf ppf "edge sw%Ld/%d gw=%a/%d" e.dpid e.port Ipv4_addr.pp
        e.gateway e.prefix_len

let pp_body ppf = function
  | Request m -> Format.fprintf ppf "request(%a)" pp m
  | Ack { a_epoch; a_cum; a_seq } ->
      Format.fprintf ppf "ack e=%ld cum=%ld seq=%ld" a_epoch a_cum a_seq
  | Ping -> Format.fprintf ppf "ping"
  | Pong -> Format.fprintf ppf "pong"
  | Sync_request -> Format.fprintf ppf "sync-request"
  | Sync_snapshot msgs -> Format.fprintf ppf "sync-snapshot(%d)" (List.length msgs)
  | Elect_request { el_epoch; el_candidate; el_last } ->
      Format.fprintf ppf "elect-request e=%ld candidate=%d last=%ld" el_epoch
        el_candidate el_last
  | Elect_vote { ev_epoch; ev_voter; ev_granted } ->
      Format.fprintf ppf "elect-vote e=%ld voter=%d granted=%b" ev_epoch
        ev_voter ev_granted
  | Leader_heartbeat { lh_epoch; lh_leader; lh_commit; lh_len } ->
      Format.fprintf ppf "leader-heartbeat e=%ld leader=%d commit=%ld len=%ld"
        lh_epoch lh_leader lh_commit lh_len
  | Replicate { rp_epoch; rp_leader; rp_index; rp_msg } ->
      Format.fprintf ppf "replicate e=%ld leader=%d idx=%ld (%a)" rp_epoch
        rp_leader rp_index pp rp_msg
  | Replicate_ack { ra_epoch; ra_replica; ra_index } ->
      Format.fprintf ppf "replicate-ack e=%ld replica=%d idx=%ld" ra_epoch
        ra_replica ra_index
