(** Session-aware RPC server beside the RF-controller.

    Deduplication is bounded, unlike the original grow-forever seen
    set: a cumulative watermark records the highest contiguously
    delivered sequence of the current client epoch, and a fixed-size
    out-of-order window buffers (already acknowledged) frames ahead of
    it until the gap closes, so the handler observes every message of
    an epoch exactly once and in order. Frames beyond the window are
    dropped unacknowledged; frames from an older epoch are dropped as
    stale. Adopting a newer epoch evicts all dedup state — the client
    bumps its epoch precisely when it wants a fresh session.

    Every reply (ack, pong, sync request) carries the server's
    incarnation number in the envelope's epoch field; a {!restart}
    after a {!crash} increments it and proactively sends
    [Sync_request], so the client both notices the restart and learns
    it must resend its authoritative state. *)

type t

val create : Rf_sim.Engine.t -> Rf_net.Channel.endpoint -> t

val set_handler : t -> (Rpc_msg.t -> unit) -> unit
(** Receives each request of an epoch exactly once, in sequence
    order. *)

val set_snapshot_handler : t -> (Rpc_msg.t list -> unit) -> unit
(** Receives the client's [Sync_snapshot] (also exactly once per
    sequence number); the RF-controller reconciles it against its live
    VM/config state, applying only the delta. *)

val set_fault_profile : t -> Rf_sim.Rng.t -> Rf_sim.Faults.chan_profile -> unit
(** Applies per-frame fates to every reply transmission. *)

val crash : t -> unit
(** Process death: session state (epoch, watermark, out-of-order
    buffer, framer) is lost; incoming bytes are ignored. *)

val restart : t -> unit
(** Bumps the incarnation and sends [Sync_request]. *)

(** {1 Introspection} *)

val requests_handled : t -> int

val duplicates_dropped : t -> int

val stale_dropped : t -> int
(** Frames from an abandoned (older) epoch. *)

val snapshots_received : t -> int

val acks_sent : t -> int

val incarnation : t -> int32

val dedup_size : t -> int
(** Out-of-order frames currently buffered; never exceeds the window
    (512). *)

val watermark : t -> int32

val set_watermark : t -> int32 -> unit
(** Test hook: pretend every seq serially <= [seq] was already
    delivered (pair with [Rpc_client.set_next_seq] to exercise
    wraparound). *)
