module Engine = Rf_sim.Engine
module Rng = Rf_sim.Rng
module Faults = Rf_sim.Faults

(* How far ahead of the watermark an out-of-order frame may arrive and
   still be buffered for in-order delivery. Beyond this the frame is
   dropped unacknowledged and the client's retransmission recovers it
   once the gap closes. *)
let window = 512

type t = {
  engine : Engine.t;
  entity : Rf_obs.Profiler.entity;
  chan : Rf_net.Channel.endpoint;
  mutable framer : Rpc_msg.Framer.t;
  mutable incarnation : int32;
  mutable epoch : int32;  (** client session being tracked; 0 = none *)
  mutable watermark : int32;
      (** every seq of [epoch] serially <= this has been delivered *)
  ooo : (int32, Rpc_msg.body) Hashtbl.t;
      (** acknowledged frames ahead of the watermark, buffered until the
          gap closes so delivery stays in order *)
  mutable handler : Rpc_msg.t -> unit;
  mutable snapshot_handler : Rpc_msg.t list -> unit;
  mutable faults : (Rng.t * Faults.chan_profile) option;
  mutable crashed : bool;
  mutable handled : int;
  mutable dups : int;
  mutable stale : int;
  mutable snapshots : int;
  mutable acks : int;
  m_handled : Rf_obs.Metrics.counter;
  m_dups : Rf_obs.Metrics.counter;
  m_snapshots : Rf_obs.Metrics.counter;
}

let record t event detail =
  Engine.record t.engine ~component:"rpc-server" ~event detail

let transmit t frame =
  if not t.crashed then
    match t.faults with
    | None -> Rf_net.Channel.send t.chan frame
    | Some (rng, profile) -> (
        match Faults.fate rng profile with
        | Faults.Deliver -> Rf_net.Channel.send t.chan frame
        | Faults.Drop -> record t "fault-drop" ""
        | Faults.Duplicate ->
            Rf_net.Channel.send t.chan frame;
            Rf_net.Channel.send t.chan frame
        | Faults.Delay span ->
            ignore
              (Engine.schedule ~entity:t.entity t.engine span (fun () ->
                   Rf_net.Channel.send t.chan frame)))

(* Server envelopes carry the incarnation in the epoch field: every
   reply doubles as a restart beacon for the client. *)
let reply t body =
  transmit t (Rpc_msg.to_wire { Rpc_msg.epoch = t.incarnation; seq = 0l; body })

let ack t seq =
  t.acks <- t.acks + 1;
  reply t (Rpc_msg.Ack { a_epoch = t.epoch; a_cum = t.watermark; a_seq = seq })

let deliver t body =
  t.handled <- t.handled + 1;
  Rf_obs.Metrics.incr t.m_handled;
  match body with
  | Rpc_msg.Request req -> t.handler req
  | Rpc_msg.Sync_snapshot msgs ->
      t.snapshots <- t.snapshots + 1;
      Rf_obs.Metrics.incr t.m_snapshots;
      record t "sync-snapshot" (Printf.sprintf "%d messages" (List.length msgs));
      t.snapshot_handler msgs
  | Rpc_msg.Ack _ | Rpc_msg.Ping | Rpc_msg.Pong | Rpc_msg.Sync_request
  | Rpc_msg.Elect_request _ | Rpc_msg.Elect_vote _ | Rpc_msg.Leader_heartbeat _
  | Rpc_msg.Replicate _ | Rpc_msg.Replicate_ack _ ->
      ()

(* Deliver everything buffered contiguously past the new watermark. *)
let rec drain t =
  let next = Rpc_msg.seq_succ t.watermark in
  match Hashtbl.find_opt t.ooo next with
  | Some body ->
      Hashtbl.remove t.ooo next;
      t.watermark <- next;
      deliver t body;
      drain t
  | None -> ()

let adopt_epoch t epoch =
  if not (Int32.equal t.epoch epoch) then begin
    record t "epoch"
      (Printf.sprintf "%ld -> %ld (dedup state evicted)" t.epoch epoch);
    t.epoch <- epoch;
    t.watermark <- 0l;
    Hashtbl.reset t.ooo
  end

let handle_tracked t (env : Rpc_msg.envelope) =
  if Int32.equal t.epoch 0l then adopt_epoch t env.epoch;
  if not (Int32.equal env.epoch t.epoch) then
    if Rpc_msg.seq_after env.epoch t.epoch then adopt_epoch t env.epoch
    else begin
      (* a late frame from a session the client has already abandoned:
         acking it would corrupt the live session's bookkeeping *)
      t.stale <- t.stale + 1;
      record t "stale-epoch" (Printf.sprintf "epoch=%ld seq=%ld" env.epoch env.seq)
    end;
  if Int32.equal env.epoch t.epoch then
    if not (Rpc_msg.seq_after env.seq t.watermark) then begin
      (* already delivered; re-ack so the client stops retransmitting *)
      t.dups <- t.dups + 1;
      Rf_obs.Metrics.incr t.m_dups;
      ack t env.seq
    end
    else if Int32.equal env.seq (Rpc_msg.seq_succ t.watermark) then begin
      t.watermark <- env.seq;
      deliver t env.body;
      drain t;
      ack t env.seq
    end
    else if Hashtbl.mem t.ooo env.seq then begin
      t.dups <- t.dups + 1;
      Rf_obs.Metrics.incr t.m_dups;
      ack t env.seq
    end
    else if Hashtbl.length t.ooo < window then begin
      (* ahead of the watermark: ack now, deliver once the gap closes *)
      Hashtbl.replace t.ooo env.seq env.body;
      ack t env.seq
    end
    (* window overflow: drop silently; retransmission will recover *)

let handle_envelope t (env : Rpc_msg.envelope) =
  match env.body with
  | Rpc_msg.Request _ | Rpc_msg.Sync_snapshot _ -> handle_tracked t env
  | Rpc_msg.Ping -> reply t Rpc_msg.Pong
  | Rpc_msg.Pong | Rpc_msg.Ack _ | Rpc_msg.Sync_request
  | Rpc_msg.Elect_request _ | Rpc_msg.Elect_vote _ | Rpc_msg.Leader_heartbeat _
  | Rpc_msg.Replicate _ | Rpc_msg.Replicate_ack _ ->
      (* the client never originates these; cluster traffic rides its
         own replica mesh, not the client session *)
      ()

let create engine chan =
  let t =
    {
      engine;
      entity = Rf_obs.Profiler.component "rpc-server";
      chan;
      framer = Rpc_msg.Framer.create ();
      incarnation = 1l;
      epoch = 0l;
      watermark = 0l;
      ooo = Hashtbl.create 64;
      handler = (fun _ -> ());
      snapshot_handler = (fun _ -> ());
      faults = None;
      crashed = false;
      handled = 0;
      dups = 0;
      stale = 0;
      m_handled =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"Configuration messages delivered to the RF-controller"
          "rpc_server_handled_total";
      m_dups =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"Duplicate RPC frames dropped by dedup"
          "rpc_server_dups_total";
      m_snapshots =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"Anti-entropy snapshots applied" "rpc_server_snapshots_total";
      snapshots = 0;
      acks = 0;
    }
  in
  Rf_net.Channel.set_receiver chan (fun bytes ->
      if not t.crashed then
        match Rpc_msg.Framer.input t.framer bytes with
        | Ok envs -> List.iter (handle_envelope t) envs
        | Error e -> record t "framing-error" e);
  t

let set_handler t f = t.handler <- f

let set_snapshot_handler t f = t.snapshot_handler <- f

let set_fault_profile t rng profile = t.faults <- Some (rng, profile)

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    (* volatile session state dies with the process *)
    t.epoch <- 0l;
    t.watermark <- 0l;
    Hashtbl.reset t.ooo;
    t.framer <- Rpc_msg.Framer.create ();
    record t "crash" ""
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    t.incarnation <- Rpc_msg.seq_succ t.incarnation;
    record t "restart" (Printf.sprintf "incarnation=%ld" t.incarnation);
    (* anti-entropy: ask the client for its authoritative state rather
       than waiting for the next beacon-carrying reply *)
    reply t Rpc_msg.Sync_request
  end

let requests_handled t = t.handled

let duplicates_dropped t = t.dups

let stale_dropped t = t.stale

let snapshots_received t = t.snapshots

let acks_sent t = t.acks

let incarnation t = t.incarnation

let dedup_size t = Hashtbl.length t.ooo

let watermark t = t.watermark

let set_watermark t seq =
  t.watermark <- seq;
  if Int32.equal t.epoch 0l then t.epoch <- 1l
