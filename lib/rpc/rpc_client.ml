module Engine = Rf_sim.Engine
module Vtime = Rf_sim.Vtime
module Rng = Rf_sim.Rng
module Faults = Rf_sim.Faults

type params = {
  rto : Vtime.span;
  rto_max : Vtime.span;
  max_retries : int;
  heartbeat_every : Vtime.span;
  heartbeat_jitter : float;
      (** extra seeded-uniform fraction of [heartbeat_every] added to
          each tick, so co-seeded failure detectors don't fire in
          lockstep; 0 keeps the historical fixed cadence *)
  dead_after : int;
  resync : bool;
}

let default_params =
  {
    rto = Vtime.span_s 2.0;
    rto_max = Vtime.span_s 30.0;
    max_retries = 10;
    heartbeat_every = Vtime.span_s 5.0;
    (* The pinned experiment fingerprints (E1/E3/E4/E6/E7) encode the
       unjittered cadence; cluster scenarios opt into jitter. *)
    heartbeat_jitter = 0.0;
    dead_after = 3;
    resync = true;
  }

type pending = {
  p_seq : int32;
  p_body : Rpc_msg.body;  (** [Request _] or [Sync_snapshot _] *)
  p_span : int;  (** telemetry span open from first send to ack *)
  mutable p_attempts : int;  (** retransmissions so far *)
  mutable p_timer : Engine.timer option;
  mutable p_parked : bool;  (** gave up; waiting for peer revival *)
}

type t = {
  engine : Rf_sim.Engine.t;
  entity : Rf_obs.Profiler.entity;
  chan : Rf_net.Channel.endpoint;
  params : params;
  jitter_rng : Rng.t;
  mutable framer : Rpc_msg.Framer.t;
  pending : (int32, pending) Hashtbl.t;
  mutable epoch : int32;
  mutable next_seq : int32;  (** last tracked seq used; 0 = none yet *)
  mutable server_incarnation : int32 option;
  mutable resynced_for : int32 option;
      (** incarnation already resynced to, to avoid a double resync when
          both the beacon and the explicit [Sync_request] arrive *)
  mutable snapshot_provider : (unit -> Rpc_msg.t list) option;
  mutable faults : (Rng.t * Faults.chan_profile) option;
  mutable peer_alive : bool;
  mutable last_heard : Vtime.t;
  mutable crashed : bool;
  mutable sent : int;
  mutable retx : int;
  mutable gave_up : int;
  mutable pings : int;
  mutable snapshots : int;
  mutable resyncs : int;
  mutable dropped_while_down : int;
  m_sent : Rf_obs.Metrics.counter;
  m_retx : Rf_obs.Metrics.counter;
  m_gave_up : Rf_obs.Metrics.counter;
  m_resyncs : Rf_obs.Metrics.counter;
  m_delivery : Rf_obs.Metrics.histogram;
}

let record t event detail =
  Engine.record t.engine ~component:"rpc-client" ~event detail

let body_kind = function
  | Rpc_msg.Request (Rpc_msg.Switch_up _) -> "switch-up"
  | Rpc_msg.Request (Rpc_msg.Switch_down _) -> "switch-down"
  | Rpc_msg.Request (Rpc_msg.Link_up _) -> "link-up"
  | Rpc_msg.Request (Rpc_msg.Link_down _) -> "link-down"
  | Rpc_msg.Request (Rpc_msg.Edge_subnet _) -> "edge-subnet"
  | Rpc_msg.Sync_snapshot _ -> "sync-snapshot"
  | Rpc_msg.Ack _ -> "ack"
  | Rpc_msg.Ping -> "ping"
  | Rpc_msg.Pong -> "pong"
  | Rpc_msg.Sync_request -> "sync-request"
  | Rpc_msg.Elect_request _ -> "elect-request"
  | Rpc_msg.Elect_vote _ -> "elect-vote"
  | Rpc_msg.Leader_heartbeat _ -> "leader-heartbeat"
  | Rpc_msg.Replicate _ -> "replicate"
  | Rpc_msg.Replicate_ack _ -> "replicate-ack"

(* A Switch_up frame delivers *the* configuration message of the
   switch's RPC phase, so its span nests under that phase span (opened
   by autoconfig under "rpc:<dpid>"); everything else hangs free. *)
let frame_parent t body =
  match body with
  | Rpc_msg.Request (Rpc_msg.Switch_up { dpid; _ }) ->
      Rf_obs.Tracer.correlated (Engine.tracer t.engine)
        ~key:(Printf.sprintf "rpc:%Ld" dpid)
  | _ -> None

(* Ack received: close the frame span; for a Switch_up also close the
   switch's whole RPC phase (the ack proves the RF-controller has the
   configuration message). *)
let frame_acked t p =
  let tracer = Engine.tracer t.engine in
  (match Rf_obs.Tracer.find_span tracer p.p_span with
  | Some sp when sp.Rf_obs.Tracer.end_us = None ->
      Rf_obs.Metrics.observe t.m_delivery
        (float_of_int (Rf_obs.Tracer.now_us tracer - sp.Rf_obs.Tracer.start_us)
        /. 1e6)
  | Some _ | None -> ());
  Rf_obs.Tracer.span_end tracer
    ~attrs:[ ("attempts", string_of_int p.p_attempts) ]
    p.p_span;
  match p.p_body with
  | Rpc_msg.Request (Rpc_msg.Switch_up { dpid; _ }) -> (
      match
        Rf_obs.Tracer.take tracer ~key:(Printf.sprintf "rpc:%Ld" dpid)
      with
      | Some phase -> Rf_obs.Tracer.span_end tracer phase
      | None -> ())
  | _ -> ()

(* Per-frame fault application, as Of_conn does for the OpenFlow
   control channel: every transmission consults the profile so a seeded
   run replays the same drops and delays. *)
let transmit t frame =
  if not t.crashed then
    match t.faults with
    | None -> Rf_net.Channel.send t.chan frame
    | Some (rng, profile) -> (
        match Faults.fate rng profile with
        | Faults.Deliver -> Rf_net.Channel.send t.chan frame
        | Faults.Drop -> record t "fault-drop" ""
        | Faults.Duplicate ->
            Rf_net.Channel.send t.chan frame;
            Rf_net.Channel.send t.chan frame
        | Faults.Delay span ->
            ignore
              (Engine.schedule ~entity:t.entity t.engine span (fun () ->
                   Rf_net.Channel.send t.chan frame)))

let encode_pending t p = Rpc_msg.to_wire { Rpc_msg.epoch = t.epoch; seq = p.p_seq; body = p.p_body }

let send_control t body =
  transmit t (Rpc_msg.to_wire { Rpc_msg.epoch = t.epoch; seq = 0l; body })

let cancel_timer p =
  match p.p_timer with
  | Some timer ->
      Engine.cancel timer;
      p.p_timer <- None
  | None -> ()

(* Exponential backoff with a cap and seeded jitter; after
   [max_retries] retransmissions the frame is parked and the peer is
   declared dead. The timer handle lives on the pending entry and is
   cancelled the moment the ack arrives, so an ack landing mid-flight
   can never leave a stale timer re-arming itself (the bug in the old
   [watch] loop, which looked the seq up again after the timeout and
   re-armed even across seq reuse). *)
let rec arm t p =
  let backoff =
    let scaled =
      Vtime.span_s
        (Vtime.span_to_s t.params.rto *. (2. ** float_of_int p.p_attempts))
    in
    if Vtime.span_to_s scaled > Vtime.span_to_s t.params.rto_max then
      t.params.rto_max
    else scaled
  in
  let jitter =
    Vtime.span_s (Rng.float t.jitter_rng (0.1 *. Vtime.span_to_s backoff))
  in
  let wait = Vtime.span_s (Vtime.span_to_s backoff +. Vtime.span_to_s jitter) in
  p.p_timer <-
    Some
      (Engine.schedule ~entity:t.entity t.engine wait (fun () ->
           p.p_timer <- None;
           if (not t.crashed) && Hashtbl.mem t.pending p.p_seq && not p.p_parked
           then
             if p.p_attempts >= t.params.max_retries then begin
               p.p_parked <- true;
               t.gave_up <- t.gave_up + 1;
               Rf_obs.Metrics.incr t.m_gave_up;
               if t.peer_alive then begin
                 t.peer_alive <- false;
                 record t "peer-dead"
                   (Printf.sprintf "seq=%ld exhausted %d retries" p.p_seq
                      p.p_attempts)
               end
             end
             else begin
               p.p_attempts <- p.p_attempts + 1;
               t.retx <- t.retx + 1;
               Rf_obs.Metrics.incr t.m_retx;
               transmit t (encode_pending t p);
               arm t p
             end))

let alloc_seq t =
  t.next_seq <- Rpc_msg.seq_succ t.next_seq;
  t.next_seq

let send_tracked t body =
  let seq = alloc_seq t in
  let span =
    Rf_obs.Tracer.span_start (Engine.tracer t.engine) ?parent:(frame_parent t body)
      ~attrs:[ ("kind", body_kind body); ("seq", Int32.to_string seq) ]
      "rpc.frame"
  in
  let p =
    {
      p_seq = seq;
      p_body = body;
      p_span = span;
      p_attempts = 0;
      p_timer = None;
      p_parked = false;
    }
  in
  Hashtbl.replace t.pending p.p_seq p;
  t.sent <- t.sent + 1;
  Rf_obs.Metrics.incr t.m_sent;
  transmit t (encode_pending t p);
  arm t p

let send t msg =
  if t.crashed then t.dropped_while_down <- t.dropped_while_down + 1
  else send_tracked t (Rpc_msg.Request msg)

let pending_in_order t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pending []
  |> List.sort (fun a b ->
         if Int32.equal a.p_seq b.p_seq then 0
         else if Rpc_msg.seq_after a.p_seq b.p_seq then 1
         else -1)

let send_snapshot t msgs =
  t.snapshots <- t.snapshots + 1;
  record t "sync-snapshot" (Printf.sprintf "%d messages" (List.length msgs));
  send_tracked t (Rpc_msg.Sync_snapshot msgs)

(* Session resynchronisation: new epoch, sequence numbers restart at 1,
   and the full authoritative state goes out again — as a single
   snapshot when a provider is installed, otherwise by renumbering and
   resending whatever was still in flight. *)
let resync t =
  t.resyncs <- t.resyncs + 1;
  Rf_obs.Metrics.incr t.m_resyncs;
  t.epoch <- Rpc_msg.seq_succ t.epoch;
  t.next_seq <- 0l;
  let old = pending_in_order t in
  List.iter cancel_timer old;
  Hashtbl.reset t.pending;
  record t "resync" (Printf.sprintf "epoch=%ld" t.epoch);
  match t.snapshot_provider with
  | Some f -> send_snapshot t (f ())
  | None ->
      List.iter
        (fun p ->
          match p.p_body with
          | Rpc_msg.Request _ as body -> send_tracked t body
          | Rpc_msg.Sync_snapshot _ | Rpc_msg.Ack _ | Rpc_msg.Ping
          | Rpc_msg.Pong | Rpc_msg.Sync_request | Rpc_msg.Elect_request _
          | Rpc_msg.Elect_vote _ | Rpc_msg.Leader_heartbeat _
          | Rpc_msg.Replicate _ | Rpc_msg.Replicate_ack _ ->
              ())
        old

let resync_for t incarnation =
  if t.params.resync && t.resynced_for <> Some incarnation then begin
    t.resynced_for <- Some incarnation;
    resync t
  end

(* A parked frame is not dead state: the first sign of life from the
   peer resends everything that gave up, with the backoff restarted. *)
let revive t =
  if not t.peer_alive then begin
    t.peer_alive <- true;
    record t "peer-revived" "";
    if t.params.resync then
      List.iter
        (fun p ->
          if p.p_parked then begin
            p.p_parked <- false;
            p.p_attempts <- 0;
            t.retx <- t.retx + 1;
            Rf_obs.Metrics.incr t.m_retx;
            transmit t (encode_pending t p);
            arm t p
          end)
        (pending_in_order t)
  end

let clear_acked t (a : Rpc_msg.ack) =
  if Int32.equal a.a_epoch t.epoch then begin
    let clear p =
      cancel_timer p;
      Hashtbl.remove t.pending p.p_seq;
      frame_acked t p
    in
    (match Hashtbl.find_opt t.pending a.a_seq with
    | Some p -> clear p
    | None -> ());
    List.iter
      (fun p -> if not (Rpc_msg.seq_after p.p_seq a.a_cum) then clear p)
      (pending_in_order t)
  end

let handle_envelope t (env : Rpc_msg.envelope) =
  t.last_heard <- Engine.now t.engine;
  (* The epoch field of every server envelope carries its incarnation:
     any reply after a restart is a restart beacon. *)
  (match t.server_incarnation with
  | Some inc when not (Int32.equal inc env.Rpc_msg.epoch) ->
      record t "server-restarted"
        (Printf.sprintf "incarnation %ld -> %ld" inc env.Rpc_msg.epoch);
      t.server_incarnation <- Some env.Rpc_msg.epoch;
      resync_for t env.Rpc_msg.epoch
  | Some _ -> ()
  | None -> t.server_incarnation <- Some env.Rpc_msg.epoch);
  (match env.Rpc_msg.body with
  | Rpc_msg.Ack a -> clear_acked t a
  | Rpc_msg.Pong -> ()
  | Rpc_msg.Sync_request -> resync_for t env.Rpc_msg.epoch
  | Rpc_msg.Request _ | Rpc_msg.Ping | Rpc_msg.Sync_snapshot _
  | Rpc_msg.Elect_request _ | Rpc_msg.Elect_vote _ | Rpc_msg.Leader_heartbeat _
  | Rpc_msg.Replicate _ | Rpc_msg.Replicate_ack _ ->
      (* the server never originates these *)
      ());
  (* Last, so that a resync above (which rebuilds pending under a fresh
     epoch) wins over resending parked old-epoch frames. *)
  revive t

let heartbeat_tick t =
  if not t.crashed then begin
    let silence =
      Vtime.to_s (Engine.now t.engine) -. Vtime.to_s t.last_heard
    in
    let threshold =
      float_of_int t.params.dead_after *. Vtime.span_to_s t.params.heartbeat_every
    in
    if silence > threshold && t.peer_alive then begin
      t.peer_alive <- false;
      record t "peer-dead" (Printf.sprintf "silent for %.1fs" silence)
    end;
    t.pings <- t.pings + 1;
    send_control t Rpc_msg.Ping
  end

let create engine ?(params = default_params) chan =
  if params.max_retries < 0 then invalid_arg "Rpc_client: max_retries >= 0";
  if params.dead_after < 1 then invalid_arg "Rpc_client: dead_after >= 1";
  if params.heartbeat_jitter < 0. then
    invalid_arg "Rpc_client: heartbeat_jitter >= 0";
  let t =
    {
      engine;
      entity = Rf_obs.Profiler.component "rpc-client";
      chan;
      params;
      jitter_rng = Rng.split (Engine.rng engine);
      framer = Rpc_msg.Framer.create ();
      pending = Hashtbl.create 32;
      epoch = 1l;
      next_seq = 0l;
      server_incarnation = None;
      resynced_for = None;
      snapshot_provider = None;
      faults = None;
      peer_alive = true;
      last_heard = Engine.now engine;
      crashed = false;
      sent = 0;
      retx = 0;
      gave_up = 0;
      pings = 0;
      snapshots = 0;
      resyncs = 0;
      dropped_while_down = 0;
      m_sent =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"Tracked RPC frames sent" "rpc_client_sent_total";
      m_retx =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"RPC frame retransmissions" "rpc_client_retx_total";
      m_gave_up =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"RPC frames parked after exhausting retries"
          "rpc_client_gave_up_total";
      m_resyncs =
        Rf_obs.Metrics.counter
          (Engine.metrics engine)
          ~help:"Epoch-bumping session resyncs" "rpc_client_resyncs_total";
      m_delivery =
        Rf_obs.Metrics.histogram
          (Engine.metrics engine)
          ~help:"First send to acknowledgement per tracked frame"
          "rpc_delivery_seconds";
    }
  in
  Rf_net.Channel.set_receiver chan (fun bytes ->
      if not t.crashed then
        match Rpc_msg.Framer.input t.framer bytes with
        | Ok envs -> List.iter (handle_envelope t) envs
        | Error e -> record t "framing-error" e);
  (* Heartbeat cadence: fixed interval plus an optional seeded-uniform
     jitter drawn from a derived generator, so enabling jitter never
     shifts the draw sequence of any other component. *)
  if params.heartbeat_jitter = 0. then
    ignore
      (Engine.periodic ~entity:t.entity engine params.heartbeat_every
         (fun () -> heartbeat_tick t))
  else begin
    let hb_rng = Rng.derive (Engine.rng engine) 0x4842 in
    let base_s = Vtime.span_to_s params.heartbeat_every in
    let rec tick () =
      let wait =
        Vtime.span_s (base_s +. Rng.float hb_rng (params.heartbeat_jitter *. base_s))
      in
      ignore
        (Engine.schedule ~entity:t.entity engine wait (fun () ->
             heartbeat_tick t;
             tick ()))
    in
    tick ()
  end;
  t

let set_snapshot_provider t f = t.snapshot_provider <- Some f

let set_fault_profile t rng profile = t.faults <- Some (rng, profile)

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    List.iter cancel_timer (pending_in_order t);
    Hashtbl.reset t.pending;
    t.framer <- Rpc_msg.Framer.create ();
    record t "crash" ""
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    t.last_heard <- Engine.now t.engine;
    t.peer_alive <- true;
    record t "restart" "";
    if t.params.resync then begin
      t.epoch <- Rpc_msg.seq_succ t.epoch;
      t.next_seq <- 0l;
      match t.snapshot_provider with
      | Some f -> send_snapshot t (f ())
      | None -> ()
    end
    else
      (* legacy behaviour: the restarted process starts numbering from
         scratch in the same session, colliding with the server's dedup
         state — the exact bug epochs exist to fix *)
      t.next_seq <- 0l
  end

let unacked t = Hashtbl.length t.pending

let sent t = t.sent

let retransmissions t = t.retx

let gave_up t = t.gave_up

let pings_sent t = t.pings

let snapshots_sent t = t.snapshots

let resyncs t = t.resyncs

let dropped_while_down t = t.dropped_while_down

let peer_alive t = t.peer_alive

let epoch t = t.epoch

let set_next_seq t seq = t.next_seq <- seq
