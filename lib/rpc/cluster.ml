module Engine = Rf_sim.Engine
module Vtime = Rf_sim.Vtime
module Rng = Rf_sim.Rng
module Faults = Rf_sim.Faults

type t = {
  engine : Engine.t;
  entity : Rf_obs.Profiler.entity;
  n : int;
  mutable members : Replica.t array;
  links : Rf_net.Channel.endpoint option array array;
      (** [links.(i).(j)] is replica [i]'s endpoint towards [j] *)
  mutable partition : (int list * int list) option;
  mutable faults : (Rng.t * Faults.chan_profile) option;
  mutable current : (int * int32) option;  (** acting leader, epoch *)
  mutable history : (int32 * int) list;
  mutable pending : Rpc_msg.t list;  (** submission order *)
  mutable applied_global : int;  (** highest log index surfaced *)
  mutable applied_count : int;
  mutable failover_started : (Vtime.t * int) option;  (** start, span id *)
  mutable failovers : int;
  mutable last_failover_s : float option;
  mutable partition_drops : int;
  mutable on_apply : Rpc_msg.t -> unit;
  mutable on_leader_change : int -> unit;
  mutable on_failover : unit -> unit;
  g_epoch : Rf_obs.Metrics.gauge;
  c_elections : Rf_obs.Metrics.counter;
  h_election : Rf_obs.Metrics.histogram;
}

let record t event detail =
  Engine.record t.engine ~component:"cluster" ~event detail

let blocked t i j =
  match t.partition with
  | None -> false
  | Some (a, b) ->
      (List.mem i a && List.mem j b) || (List.mem i b && List.mem j a)

let transmit t ~src ~dst frame =
  match t.links.(src).(dst) with
  | None -> ()
  | Some ep -> (
      if blocked t src dst then t.partition_drops <- t.partition_drops + 1
      else
        match t.faults with
        | None -> Rf_net.Channel.send ep frame
        | Some (rng, profile) -> (
            match Faults.fate rng profile with
            | Faults.Deliver -> Rf_net.Channel.send ep frame
            | Faults.Drop -> ()
            | Faults.Duplicate ->
                Rf_net.Channel.send ep frame;
                Rf_net.Channel.send ep frame
            | Faults.Delay span ->
                ignore
                  (Engine.schedule ~entity:t.entity t.engine span (fun () ->
                       (* the partition is re-checked at delivery time *)
                       if not (blocked t src dst) then
                         Rf_net.Channel.send ep frame
                       else t.partition_drops <- t.partition_drops + 1))))

let send_from t src ~dst body =
  let frame = Rpc_msg.to_wire { Rpc_msg.epoch = 0l; seq = 0l; body } in
  transmit t ~src ~dst frame

let majority t = (t.n / 2) + 1

(* The acting leader, if it is alive and can reach a quorum. *)
let active_leader t =
  match t.current with
  | Some (id, _) when not (Replica.crashed t.members.(id)) -> Some id
  | _ -> None

let reachable_quorum t id =
  let count = ref 1 in
  for j = 0 to t.n - 1 do
    if j <> id && (not (Replica.crashed t.members.(j))) && not (blocked t id j)
    then incr count
  done;
  !count >= majority t

let begin_failover t reason =
  if t.failover_started = None then begin
    let span =
      Rf_obs.Tracer.span_start (Engine.tracer t.engine)
        ~attrs:[ ("reason", reason) ]
        "cluster.failover"
    in
    t.failover_started <- Some (Engine.now t.engine, span);
    record t "failover-begin" reason;
    t.on_failover ()
  end

let end_failover t leader epoch =
  match t.failover_started with
  | None -> ()
  | Some (since, span) ->
      let dur =
        Vtime.span_to_s (Vtime.diff (Engine.now t.engine) since)
      in
      t.failover_started <- None;
      t.failovers <- t.failovers + 1;
      t.last_failover_s <- Some dur;
      Rf_obs.Metrics.observe t.h_election dur;
      Rf_obs.Tracer.span_end (Engine.tracer t.engine)
        ~attrs:
          [ ("leader", string_of_int leader); ("epoch", Int32.to_string epoch) ]
        span;
      record t "failover-end"
        (Printf.sprintf "leader=%d epoch=%ld after %.3fs" leader epoch dur)

(* Re-offer the uncommitted tail to the new leader; committed entries
   that raced the failover show up as duplicate log entries, which the
   idempotent RouteFlow mutations absorb. *)
let resubmit_pending t leader =
  List.iter (fun msg -> ignore (Replica.submit t.members.(leader) msg)) t.pending

let adopt_leader t id epoch =
  let newer =
    match t.current with
    | None -> true
    | Some (_, e) -> Rpc_msg.seq_after epoch e
  in
  if newer then begin
    t.current <- Some (id, epoch);
    t.history <- (epoch, id) :: t.history;
    Rf_obs.Metrics.incr t.c_elections;
    Rf_obs.Metrics.set t.g_epoch (Int32.to_float epoch);
    record t "leader" (Printf.sprintf "replica=%d epoch=%ld" id epoch);
    end_failover t id epoch;
    resubmit_pending t id;
    t.on_leader_change id
  end

let remove_first msg l =
  let rec go = function
    | [] -> []
    | x :: rest -> if x = msg then rest else x :: go rest
  in
  go l

let handle_commit t idx msg =
  if idx > t.applied_global then begin
    t.applied_global <- idx;
    t.applied_count <- t.applied_count + 1;
    t.pending <- remove_first msg t.pending;
    t.on_apply msg
  end

let create engine ~rng ?(replicas = 3) ?(latency = Vtime.span_ms 1)
    ?(election_base = Replica.default_config.Replica.election_base)
    ?(heartbeat_every = Replica.default_config.Replica.heartbeat_every)
    ?(heartbeat_jitter = Replica.default_config.Replica.heartbeat_jitter) () =
  if replicas < 1 then invalid_arg "Cluster.create: replicas < 1";
  let metrics = Engine.metrics engine in
  let t =
    {
      engine;
      entity = Rf_obs.Profiler.component "cluster";
      n = replicas;
      members = [||];
      links = Array.make_matrix replicas replicas None;
      partition = None;
      faults = None;
      current = None;
      history = [];
      pending = [];
      applied_global = 0;
      applied_count = 0;
      failover_started = None;
      failovers = 0;
      last_failover_s = None;
      partition_drops = 0;
      on_apply = (fun _ -> ());
      on_leader_change = (fun _ -> ());
      on_failover = (fun () -> ());
      g_epoch =
        Rf_obs.Metrics.gauge metrics
          ~help:"Epoch of the acting cluster leader" "cluster_leader_epoch";
      c_elections =
        Rf_obs.Metrics.counter metrics ~help:"Completed leader elections"
          "cluster_elections_total";
      h_election =
        Rf_obs.Metrics.histogram metrics
          ~help:"Leaderless interval from fault to re-election"
          "cluster_election_seconds";
    }
  in
  (* full mesh: one channel per unordered pair *)
  for i = 0 to replicas - 1 do
    for j = i + 1 to replicas - 1 do
      let a, b =
        Rf_net.Channel.create engine ~latency
          ~name:(Printf.sprintf "mesh-%d-%d" i j)
          ~entity:t.entity ()
      in
      t.links.(i).(j) <- Some a;
      t.links.(j).(i) <- Some b
    done
  done;
  t.members <-
    Array.init replicas (fun i ->
        let cfg =
          {
            Replica.id = i;
            replicas;
            election_base;
            heartbeat_every;
            heartbeat_jitter;
          }
        in
        Replica.create engine
          ~rng:(Rng.derive rng (i + 1))
          cfg
          ~send:(fun ~dst body -> send_from t i ~dst body));
  Array.iteri
    (fun i r ->
      (* frames from j land on i's endpoint towards j *)
      for j = 0 to replicas - 1 do
        match t.links.(i).(j) with
        | None -> ()
        | Some ep ->
            let framer = Rpc_msg.Framer.create () in
            Rf_net.Channel.set_receiver ep (fun bytes ->
                match Rpc_msg.Framer.input framer bytes with
                | Ok envs ->
                    List.iter
                      (fun (env : Rpc_msg.envelope) ->
                        Replica.receive r ~src:j env.body)
                      envs
                | Error e -> record t "framing-error" e)
      done;
      Replica.set_on_commit r (fun idx msg -> handle_commit t idx msg);
      Replica.set_on_role r (fun role epoch ->
          if role = Replica.Leader then adopt_leader t i epoch))
    t.members;
  t

let set_on_apply t f = t.on_apply <- f

let set_on_leader_change t f = t.on_leader_change <- f

let set_on_failover t f = t.on_failover <- f

let set_fault_profile t rng profile = t.faults <- Some (rng, profile)

let submit t msg =
  t.pending <- t.pending @ [ msg ];
  match active_leader t with
  | Some id -> ignore (Replica.submit t.members.(id) msg)
  | None -> ()

let crash t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.crash: bad replica";
  if not (Replica.crashed t.members.(i)) then begin
    Replica.crash t.members.(i);
    record t "crash" (Printf.sprintf "replica=%d" i);
    match t.current with
    | Some (id, _) when id = i -> begin_failover t "leader-crash"
    | _ -> ()
  end

let restart t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.restart: bad replica";
  if Replica.crashed t.members.(i) then begin
    Replica.restart t.members.(i);
    record t "restart" (Printf.sprintf "replica=%d" i)
  end

let partition t a b =
  t.partition <- Some (a, b);
  record t "partition"
    (Printf.sprintf "{%s} | {%s}"
       (String.concat "," (List.map string_of_int a))
       (String.concat "," (List.map string_of_int b)));
  match active_leader t with
  | Some id when not (reachable_quorum t id) ->
      begin_failover t "leader-partitioned"
  | _ -> ()

let heal t =
  if t.partition <> None then begin
    t.partition <- None;
    record t "heal" ""
  end

let replicas t = t.n

let leader t = active_leader t

let leader_epoch t = match t.current with None -> 0l | Some (_, e) -> e

let member t i = t.members.(i)

let leadership_history t = t.history

let elections t = List.length t.history

let failovers t = t.failovers

let last_failover_s t = t.last_failover_s

let pending t = List.length t.pending

let applied t = t.applied_count

let partition_drops t = t.partition_drops

let log_digest t i = Replica.log_digest t.members.(i)

let converged t =
  let digests = ref [] in
  Array.iter
    (fun r ->
      if not (Replica.crashed r) then digests := Replica.log_digest r :: !digests)
    t.members;
  match !digests with
  | [] -> true
  | d :: rest -> List.for_all (String.equal d) rest
