(** Configuration messages between the topology controller's RPC client
    and the RPC server at the RF-controller (paper §2): switch
    detection carries the datapath id and port count; link detection
    carries the interface addresses the topology controller allocated
    from the administrator's range. [Edge_subnet] carries the
    host-facing subnets from the administrator's static input.

    Every envelope carries a session epoch and a sequence number. The
    client's epoch identifies one run of the topology controller:
    bumping it on restart keeps fresh sequence numbers from colliding
    with the server's dedup state for the previous session. Envelopes
    sent by the server carry its incarnation number in the epoch field,
    so every ack and heartbeat reply doubles as a restart beacon.
    Supervision messages: [Ping]/[Pong] heartbeats, [Ack] with a
    cumulative watermark, and the anti-entropy pair
    [Sync_request]/[Sync_snapshot]. *)

open Rf_packet

type t =
  | Switch_up of { dpid : int64; n_ports : int }
  | Switch_down of { dpid : int64 }
  | Link_up of {
      a_dpid : int64;
      a_port : int;
      a_ip : Ipv4_addr.t;
      a_prefix_len : int;
      b_dpid : int64;
      b_port : int;
      b_ip : Ipv4_addr.t;
      b_prefix_len : int;
    }
  | Link_down of { a_dpid : int64; a_port : int; b_dpid : int64; b_port : int }
  | Edge_subnet of {
      dpid : int64;
      port : int;
      gateway : Ipv4_addr.t;
      prefix_len : int;
    }

type ack = {
  a_epoch : int32;  (** the client epoch being acknowledged *)
  a_cum : int32;  (** every seq serially <= this has been delivered *)
  a_seq : int32;  (** the specific seq that triggered this ack *)
}

type envelope = { epoch : int32; seq : int32; body : body }

and body =
  | Request of t
  | Ack of ack
  | Ping
  | Pong
  | Sync_request  (** server asks the client for a full state snapshot *)
  | Sync_snapshot of t list
      (** the topology controller's authoritative view, in application
          order (switches, then edges, then links) *)
  | Elect_request of { el_epoch : int32; el_candidate : int; el_last : int32 }
      (** replica [el_candidate] stands for election in cluster epoch
          [el_epoch]; [el_last] is its replicated-log length, so voters
          can refuse candidates that would lose committed state *)
  | Elect_vote of { ev_epoch : int32; ev_voter : int; ev_granted : bool }
  | Leader_heartbeat of {
      lh_epoch : int32;
      lh_leader : int;
      lh_commit : int32;  (** committed log prefix at the leader *)
      lh_len : int32;  (** leader log length; shorter followers resync *)
    }
  | Replicate of {
      rp_epoch : int32;
      rp_leader : int;
      rp_index : int32;  (** 1-based log index of [rp_msg] *)
      rp_msg : t;
    }
  | Replicate_ack of { ra_epoch : int32; ra_replica : int; ra_index : int32 }
      (** follower [ra_replica]'s log holds a contiguous prefix up to
          [ra_index] *)

(** {1 Serial sequence arithmetic}

    Sequence numbers and epochs wrap around int32; comparisons use
    serial arithmetic so ordering survives the wrap. Sequence 0 is
    reserved for untracked envelopes (acks, heartbeats, sync
    requests). *)

val seq_after : int32 -> int32 -> bool
(** [seq_after a b] is true when [a] is serially after [b]. *)

val seq_succ : int32 -> int32
(** Successor, skipping the reserved value 0. *)

val max_snapshot_msgs : int
(** Upper bound on messages per [Sync_snapshot] frame (u16 count). *)

val to_wire : envelope -> string
(** Length-prefixed frame. Raises [Invalid_argument] if a snapshot
    exceeds {!max_snapshot_msgs}. *)

module Framer : sig
  type t

  val create : unit -> t

  val input : t -> string -> (envelope list, string) result
end

val pp : Format.formatter -> t -> unit

val pp_body : Format.formatter -> body -> unit
