(** One member of the replicated RF-controller cluster.

    A simplified Raft-style state machine over the {!Rpc_msg} wire:
    epoch-based leader election with randomized (seeded) timeouts,
    log replication with cumulative follower acks, and full-log
    snapshot anti-entropy ([Sync_request]/[Sync_snapshot]) for gap
    recovery. The epoch, vote and log model stable storage — they
    survive {!crash}; role, known leader, commit index and timers are
    volatile and are re-learned after {!restart} (committed entries
    replay through the commit hook, so appliers must be idempotent).

    Election safety: a vote is granted at most once per epoch and only
    to candidates whose log is at least as long as the voter's, so two
    leaders can never coexist in one epoch and an elected leader holds
    every committed entry (commit requires a majority, and majorities
    intersect). When a replica first accepts a leader for an epoch it
    truncates its uncommitted tail — entries an earlier leader failed
    to commit — and resyncs from the new leader's snapshot.

    The replica is transport-agnostic: it emits protocol messages
    through the [send] callback and consumes them via {!receive}; the
    mesh wiring (channels, partitions, frame faults) lives in
    {!Cluster}. *)

type role = Follower | Candidate | Leader

val pp_role : Format.formatter -> role -> unit

type config = {
  id : int;  (** this replica's index, [0 .. replicas-1] *)
  replicas : int;
  election_base : Rf_sim.Vtime.span;
      (** minimum silence before standing for election; each replica
          adds a deterministic bias proportional to its id plus a
          seeded jitter draw, so replica 0 bootstraps as the first
          leader and re-elections rarely collide *)
  heartbeat_every : Rf_sim.Vtime.span;
  heartbeat_jitter : float;
      (** extra uniform delay per leader heartbeat, as a fraction of
          [heartbeat_every] *)
}

val default_config : config
(** 3 replicas, 2 s election base, 0.5 s heartbeats with 0.25 jitter. *)

type t

val create :
  Rf_sim.Engine.t ->
  rng:Rf_sim.Rng.t ->
  config ->
  send:(dst:int -> Rpc_msg.body -> unit) ->
  t
(** Starts as follower with the election timer armed. All randomness
    (timeout jitter) comes from [rng], so same-seed runs are
    bit-identical. *)

val set_on_commit : t -> (int -> Rpc_msg.t -> unit) -> unit
(** Called once per newly committed log entry, in index order (1-based).
    Re-fires from index 1 after a crash/restart replay. *)

val set_on_role : t -> (role -> int32 -> unit) -> unit
(** Called on every role change with the new role and epoch. *)

val receive : t -> src:int -> Rpc_msg.body -> unit
(** Feed a protocol message from replica [src]. Non-cluster bodies and
    anything received while crashed are ignored. *)

val submit : t -> Rpc_msg.t -> bool
(** Leader-only append: adds the message to the replicated log and
    broadcasts it. Returns [false] (and does nothing) on a follower,
    candidate or crashed replica — callers re-submit to the next
    leader. *)

val crash : t -> unit
(** Process death: volatile state (role, leader, commit, timers) is
    lost; epoch, vote and log survive as stable storage. *)

val restart : t -> unit
(** Rejoins as follower and re-arms the election timer; committed
    entries replay through the commit hook once a leader is heard. *)

(** {1 Introspection} *)

val id : t -> int

val role : t -> role

val term : t -> int32
(** Current cluster epoch. *)

val leader : t -> int option
(** The leader this replica currently follows (itself when leading). *)

val crashed : t -> bool

val log : t -> Rpc_msg.t list
(** The replicated log, oldest first. *)

val log_length : t -> int

val commit_index : t -> int
(** Highest log index known committed (majority-held). *)

val log_digest : t -> string
(** MD5 over the committed prefix — equal across replicas once they
    have converged. *)

val elections_started : t -> int

val heartbeats_sent : t -> int

val snapshots_served : t -> int

val truncations : t -> int
(** Uncommitted tails discarded on leader change. *)
