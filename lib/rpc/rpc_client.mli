(** Session-aware reliable RPC client (topology-controller side).

    Every configuration message is wrapped in an envelope carrying the
    client's session epoch and a sequence number, retransmitted with
    exponential backoff (plus seeded jitter, so a run replays exactly
    from its seed) until acknowledged. After [max_retries]
    retransmissions a frame is parked, the counter {!gave_up} is
    bumped, and the peer is declared dead; the first sign of life from
    the peer resends every parked frame with the backoff restarted.

    A heartbeat [Ping] goes out every [heartbeat_every]; silence for
    [dead_after] consecutive intervals also flips {!peer_alive}.

    Restart semantics: the epoch field of every server envelope carries
    the server's incarnation number, so any reply after a server
    restart is detected immediately and triggers a resync — the client
    bumps its own epoch (invalidating the server's dedup state for the
    old session) and resends its authoritative state, as one
    [Sync_snapshot] when a provider is installed via
    {!set_snapshot_provider}. With [resync = false] the client keeps
    legacy behaviour: restarts reuse the same epoch and sequence
    numbers collide with the server's dedup state — the motivating bug,
    kept reproducible for the restart experiment's baseline. *)

type params = {
  rto : Rf_sim.Vtime.span;  (** initial retransmission timeout *)
  rto_max : Rf_sim.Vtime.span;  (** backoff cap *)
  max_retries : int;
      (** retransmissions before a frame is parked and the peer is
          declared dead *)
  heartbeat_every : Rf_sim.Vtime.span;
  heartbeat_jitter : float;
      (** extra uniform delay per heartbeat, as a fraction of
          [heartbeat_every]; 0 keeps the fixed cadence the pinned
          experiment fingerprints encode *)
  dead_after : int;
      (** heartbeat intervals of silence before the peer is presumed
          dead *)
  resync : bool;
      (** epoch bump + state resend on restart detection; [false]
          reproduces the pre-supervision protocol *)
}

val default_params : params
(** rto 2 s, cap 30 s, 10 retries, heartbeat 5 s, dead after 3 silent
    intervals, resync on. *)

type t

val create :
  Rf_sim.Engine.t -> ?params:params -> Rf_net.Channel.endpoint -> t
(** Installs the channel receiver and starts the heartbeat timer.
    Jitter draws come from a generator split off the engine's, so the
    retransmission schedule is replayable from the engine seed. *)

val send : t -> Rpc_msg.t -> unit
(** Tracked send: assigned the next sequence number and retransmitted
    until acknowledged. While crashed, messages are counted in
    {!dropped_while_down} and lost — exactly what the reconciliation
    snapshot exists to repair. *)

val set_snapshot_provider : t -> (unit -> Rpc_msg.t list) -> unit
(** Called on resync to rebuild the full authoritative state. Without a
    provider, resync renumbers and resends only the in-flight frames. *)

val set_fault_profile : t -> Rf_sim.Rng.t -> Rf_sim.Faults.chan_profile -> unit
(** Applies per-frame fates (drop/duplicate/delay) to every
    transmission, as [Of_conn] does for the OpenFlow channel. *)

val crash : t -> unit
(** Simulated process death: pending state, timers and the framer are
    lost; sends and received bytes are ignored until {!restart}. *)

val restart : t -> unit
(** Comes back up. With [resync] the epoch is bumped and a snapshot is
    sent (when a provider is installed); without it the client reuses
    its old epoch and restarts numbering from 1 — the seq-collision
    bug. *)

(** {1 Introspection} *)

val unacked : t -> int

val sent : t -> int
(** Tracked frames sent (excluding retransmissions). *)

val retransmissions : t -> int

val gave_up : t -> int
(** Frames that exhausted [max_retries] and were parked. *)

val pings_sent : t -> int

val snapshots_sent : t -> int

val resyncs : t -> int

val dropped_while_down : t -> int

val peer_alive : t -> bool

val epoch : t -> int32

val set_next_seq : t -> int32 -> unit
(** Test hook: force the next allocated sequence to be the successor of
    [seq] (pair with [Rpc_server.set_watermark] to exercise
    wraparound). *)
