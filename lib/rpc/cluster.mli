(** A replicated RF-controller cluster: N {!Replica}s wired over a
    full mesh of {!Rf_net.Channel}s speaking the {!Rpc_msg} wire
    format, plus the fault surface the robustness experiments drive —
    per-replica crash/restart, network partitions between replica
    subsets, and per-frame fault profiles (drop/duplicate/delay).

    The cluster tracks the acting leader across elections and exposes
    a single [submit] entry point: messages are appended to the
    current leader's replicated log (or queued while the cluster is
    leaderless) and surface exactly once, in commit order, through the
    apply hook once a majority holds them. After a failover the
    in-flight tail is re-submitted to the new leader, so appliers must
    be idempotent — the RouteFlow mutation entry points are.

    Telemetry: a [cluster_leader_epoch] gauge, a
    [cluster_elections_total] counter, a [cluster_election_seconds]
    histogram of leaderless intervals, and a [cluster.failover] span
    per disruption window, all on the engine's registry/tracer. *)

type t

val create :
  Rf_sim.Engine.t ->
  rng:Rf_sim.Rng.t ->
  ?replicas:int ->
  ?latency:Rf_sim.Vtime.span ->
  ?election_base:Rf_sim.Vtime.span ->
  ?heartbeat_every:Rf_sim.Vtime.span ->
  ?heartbeat_jitter:float ->
  unit ->
  t
(** Defaults: 3 replicas, 1 ms mesh latency, {!Replica.default_config}
    timers. Each replica's jitter stream is derived from [rng] by a
    per-replica salt, so the parent generator is never advanced and
    same-seed runs are bit-identical. Replica 0's biased election
    timeout makes it the deterministic bootstrap leader. *)

val set_on_apply : t -> (Rpc_msg.t -> unit) -> unit
(** Called once per committed log entry, in log order, deduplicated by
    index across replicas and failovers (re-submitted duplicates after
    a leader change appear as new entries and re-fire). *)

val set_on_leader_change : t -> (int -> unit) -> unit
(** Called when the acting leader changes, after the pending tail has
    been re-submitted to it. *)

val set_on_failover : t -> (unit -> unit) -> unit
(** Called when the cluster becomes leaderless (the acting leader
    crashed or lost its quorum) — the moment switch sessions must fall
    back to slave mode. *)

val set_fault_profile : t -> Rf_sim.Rng.t -> Rf_sim.Faults.chan_profile -> unit
(** Per-frame fates on every mesh transmission. *)

val submit : t -> Rpc_msg.t -> unit
(** Replicate a configuration message. Queued while leaderless;
    applied (via the apply hook) once committed by a majority. *)

(** {1 Fault injection} *)

val crash : t -> int -> unit
(** Kill replica [i]: volatile state lost, log and epoch survive. *)

val restart : t -> int -> unit

val partition : t -> int list -> int list -> unit
(** Drop every frame between the two replica subsets (both
    directions). Replicas in neither subset keep full connectivity.
    Replaces any previous partition. *)

val heal : t -> unit

(** {1 Introspection} *)

val replicas : t -> int

val leader : t -> int option
(** The acting leader the cluster currently routes submissions to. *)

val leader_epoch : t -> int32

val member : t -> int -> Replica.t

val leadership_history : t -> (int32 * int) list
(** Every (epoch, replica) pair that ever won an election, most recent
    first. Election safety means no epoch appears twice with different
    replicas. *)

val elections : t -> int

val failovers : t -> int
(** Completed leaderless intervals (crash/partition to re-election). *)

val last_failover_s : t -> float option
(** Duration of the most recent completed failover. *)

val pending : t -> int
(** Submitted messages not yet committed. *)

val applied : t -> int
(** Committed entries surfaced through the apply hook. *)

val partition_drops : t -> int
(** Frames dropped by the active partition. *)

val log_digest : t -> int -> string

val converged : t -> bool
(** All live replicas agree on the committed prefix digest. *)
