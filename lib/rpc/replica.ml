module Engine = Rf_sim.Engine
module Vtime = Rf_sim.Vtime
module Rng = Rf_sim.Rng

type role = Follower | Candidate | Leader

let pp_role ppf = function
  | Follower -> Format.pp_print_string ppf "follower"
  | Candidate -> Format.pp_print_string ppf "candidate"
  | Leader -> Format.pp_print_string ppf "leader"

type config = {
  id : int;
  replicas : int;
  election_base : Vtime.span;
  heartbeat_every : Vtime.span;
  heartbeat_jitter : float;
}

let default_config =
  {
    id = 0;
    replicas = 3;
    election_base = Vtime.span_s 2.0;
    heartbeat_every = Vtime.span_s 0.5;
    heartbeat_jitter = 0.25;
  }

type t = {
  engine : Engine.t;
  entity : Rf_obs.Profiler.entity;
  rng : Rng.t;
  cfg : config;
  send : dst:int -> Rpc_msg.body -> unit;
  (* stable storage: survives crash *)
  mutable term : int32;
  mutable voted_for : int option;
  mutable log_rev : Rpc_msg.t list;  (** newest first *)
  mutable log_len : int;
  (* volatile *)
  mutable role : role;
  mutable crashed : bool;
  mutable leader : int option;
  mutable accepted_leader_epoch : int32;
      (** last epoch in which we accepted a leader; first acceptance per
          epoch truncates the uncommitted tail *)
  mutable votes : int list;
  mutable match_index : int array;  (** leader only, per replica *)
  mutable commit : int;
  mutable applied : int;
  mutable election_timer : Engine.timer option;
  mutable hb_gen : int;  (** invalidates stale heartbeat loops *)
  mutable on_commit : int -> Rpc_msg.t -> unit;
  mutable on_role : role -> int32 -> unit;
  mutable elections_started : int;
  mutable heartbeats_sent : int;
  mutable snapshots_served : int;
  mutable truncations : int;
}

let record t event detail =
  Engine.record t.engine
    ~component:(Printf.sprintf "replica-%d" t.cfg.id)
    ~event detail

let majority t = (t.cfg.replicas / 2) + 1

let broadcast t body =
  for dst = 0 to t.cfg.replicas - 1 do
    if dst <> t.cfg.id then t.send ~dst body
  done

(* 1-based access into the reversed log. *)
let entry t i = List.nth t.log_rev (t.log_len - i)

let log t = List.rev t.log_rev

let apply_committed t =
  while t.applied < min t.commit t.log_len do
    t.applied <- t.applied + 1;
    t.on_commit t.applied (entry t t.applied)
  done

let set_role t role =
  if t.role <> role then begin
    t.role <- role;
    if role <> Leader then t.hb_gen <- t.hb_gen + 1;
    record t "role"
      (Format.asprintf "%a epoch=%ld log=%d" pp_role role t.term t.log_len);
    t.on_role role t.term
  end

(* Deterministic bias by id plus a seeded jitter smaller than the bias
   step, so timeouts never collide and replica 0 bootstraps first. *)
let timeout_span t =
  let base = Vtime.span_to_s t.cfg.election_base in
  let n = float_of_int (max 1 t.cfg.replicas) in
  let bias = base *. (float_of_int t.cfg.id /. n) in
  let jitter = Rng.float t.rng (base /. (2. *. n)) in
  Vtime.span_s (base +. bias +. jitter)

let cancel_election_timer t =
  match t.election_timer with
  | Some timer ->
      Engine.cancel timer;
      t.election_timer <- None
  | None -> ()

let rec arm_election t =
  cancel_election_timer t;
  if (not t.crashed) && t.role <> Leader then
    t.election_timer <-
      Some
        (Engine.schedule ~entity:t.entity t.engine (timeout_span t) (fun () ->
             election t))

and election t =
  if (not t.crashed) && t.role <> Leader then begin
    t.term <- Rpc_msg.seq_succ t.term;
    t.voted_for <- Some t.cfg.id;
    t.leader <- None;
    t.votes <- [ t.cfg.id ];
    t.elections_started <- t.elections_started + 1;
    set_role t Candidate;
    broadcast t
      (Rpc_msg.Elect_request
         {
           el_epoch = t.term;
           el_candidate = t.cfg.id;
           el_last = Int32.of_int t.log_len;
         });
    if List.length t.votes >= majority t then become_leader t
    else arm_election t
  end

and become_leader t =
  t.leader <- Some t.cfg.id;
  t.accepted_leader_epoch <- t.term;
  cancel_election_timer t;
  t.match_index <- Array.make t.cfg.replicas 0;
  t.match_index.(t.cfg.id) <- t.log_len;
  set_role t Leader;
  t.hb_gen <- t.hb_gen + 1;
  recompute_commit t;
  heartbeat_loop t t.hb_gen

and recompute_commit t =
  if t.role = Leader then begin
    let sorted = Array.copy t.match_index in
    Array.sort (fun a b -> compare b a) sorted;
    let held = sorted.(majority t - 1) in
    if held > t.commit then begin
      t.commit <- held;
      apply_committed t
    end
  end

and send_heartbeat t =
  t.heartbeats_sent <- t.heartbeats_sent + 1;
  broadcast t
    (Rpc_msg.Leader_heartbeat
       {
         lh_epoch = t.term;
         lh_leader = t.cfg.id;
         lh_commit = Int32.of_int t.commit;
         lh_len = Int32.of_int t.log_len;
       })

and heartbeat_loop t gen =
  if (not t.crashed) && t.role = Leader && gen = t.hb_gen then begin
    send_heartbeat t;
    let base = Vtime.span_to_s t.cfg.heartbeat_every in
    let wait = base +. Rng.float t.rng (t.cfg.heartbeat_jitter *. base) in
    ignore
      (Engine.schedule ~entity:t.entity t.engine (Vtime.span_s wait)
         (fun () -> heartbeat_loop t gen))
  end

(* Newer epoch observed in a vote request: adopt it, but keep the log
   intact — the candidate may well lose. A pending election timeout is
   deliberately NOT reset: only a granted vote defers the voter's own
   candidacy, otherwise a rejoining replica with a stale log, an
   inflated epoch and the shortest timeout could depose the leader on
   every timeout while never winning itself (the disruptive-server
   livelock). Ex-leaders carry no timer and get one armed here. *)
let step_down t epoch =
  if Rpc_msg.seq_after epoch t.term then begin
    t.term <- epoch;
    t.voted_for <- None;
    t.leader <- None;
    set_role t Follower;
    if t.election_timer = None then arm_election t
  end

(* A leader the cluster elected without us may have won on a log that
   lacks our uncommitted tail; committed entries are safe (commit and
   election quorums intersect), everything past them is forfeit. *)
let truncate_to_commit t =
  if t.log_len > t.commit then begin
    t.truncations <- t.truncations + 1;
    record t "truncate"
      (Printf.sprintf "uncommitted tail %d..%d dropped" (t.commit + 1)
         t.log_len);
    let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
    t.log_rev <- drop (t.log_len - t.commit) t.log_rev;
    t.log_len <- t.commit
  end

(* Heartbeat or append from an acting leader at a current-or-newer
   epoch: follow it and reset the election clock. *)
let follow_leader t epoch ldr =
  if Rpc_msg.seq_after epoch t.term then begin
    t.term <- epoch;
    t.voted_for <- None
  end;
  if not (Int32.equal t.accepted_leader_epoch epoch) then begin
    truncate_to_commit t;
    t.accepted_leader_epoch <- epoch
  end;
  t.leader <- Some ldr;
  set_role t Follower;
  arm_election t

let ack_prefix t dst =
  t.send ~dst
    (Rpc_msg.Replicate_ack
       {
         ra_epoch = t.term;
         ra_replica = t.cfg.id;
         ra_index = Int32.of_int t.log_len;
       })

let receive t ~src body =
  if not t.crashed then
    match body with
    | Rpc_msg.Elect_request { el_epoch; el_candidate; el_last } ->
        step_down t el_epoch;
        let grant =
          Int32.equal el_epoch t.term
          && (match t.voted_for with
             | None -> true
             | Some v -> v = el_candidate)
          && Int32.to_int el_last >= t.log_len
        in
        if grant then begin
          t.voted_for <- Some el_candidate;
          arm_election t
        end;
        t.send ~dst:el_candidate
          (Rpc_msg.Elect_vote
             { ev_epoch = el_epoch; ev_voter = t.cfg.id; ev_granted = grant })
    | Rpc_msg.Elect_vote { ev_epoch; ev_voter; ev_granted } ->
        if
          t.role = Candidate
          && Int32.equal ev_epoch t.term
          && ev_granted
          && not (List.mem ev_voter t.votes)
        then begin
          t.votes <- ev_voter :: t.votes;
          if List.length t.votes >= majority t then become_leader t
        end
    | Rpc_msg.Leader_heartbeat { lh_epoch; lh_leader; lh_commit; lh_len } ->
        if not (Rpc_msg.seq_after t.term lh_epoch) then begin
          follow_leader t lh_epoch lh_leader;
          if Int32.to_int lh_len > t.log_len then
            t.send ~dst:lh_leader Rpc_msg.Sync_request
          else
            (* in sync; the cumulative ack lets a fresh leader advance
               the commit point over pre-election entries *)
            ack_prefix t lh_leader;
          let seen = min (Int32.to_int lh_commit) t.log_len in
          if seen > t.commit then begin
            t.commit <- seen;
            apply_committed t
          end
        end
    | Rpc_msg.Replicate { rp_epoch; rp_leader; rp_index; rp_msg } ->
        if not (Rpc_msg.seq_after t.term rp_epoch) then begin
          follow_leader t rp_epoch rp_leader;
          let idx = Int32.to_int rp_index in
          if idx = t.log_len + 1 then begin
            t.log_rev <- rp_msg :: t.log_rev;
            t.log_len <- idx;
            ack_prefix t rp_leader
          end
          else if idx <= t.log_len then
            (* duplicate delivery; re-ack the prefix we hold *)
            ack_prefix t rp_leader
          else
            (* gap: recover the missing prefix by anti-entropy *)
            t.send ~dst:rp_leader Rpc_msg.Sync_request
        end
    | Rpc_msg.Replicate_ack { ra_epoch; ra_replica; ra_index } ->
        if
          t.role = Leader
          && Int32.equal ra_epoch t.term
          && ra_replica >= 0
          && ra_replica < t.cfg.replicas
        then begin
          t.match_index.(ra_replica) <-
            max t.match_index.(ra_replica) (Int32.to_int ra_index);
          recompute_commit t
        end
    | Rpc_msg.Sync_request ->
        if t.role = Leader then begin
          t.snapshots_served <- t.snapshots_served + 1;
          t.send ~dst:src (Rpc_msg.Sync_snapshot (log t))
        end
    | Rpc_msg.Sync_snapshot msgs ->
        (* full-log anti-entropy from the leader we follow *)
        if t.role = Follower && t.leader = Some src then begin
          t.log_rev <- List.rev msgs;
          t.log_len <- List.length msgs;
          if t.applied > t.log_len then t.applied <- t.log_len;
          ack_prefix t src;
          apply_committed t
        end
    | Rpc_msg.Request _ | Rpc_msg.Ack _ | Rpc_msg.Ping | Rpc_msg.Pong -> ()

let submit t msg =
  if t.crashed || t.role <> Leader then false
  else begin
    t.log_len <- t.log_len + 1;
    t.log_rev <- msg :: t.log_rev;
    t.match_index.(t.cfg.id) <- t.log_len;
    broadcast t
      (Rpc_msg.Replicate
         {
           rp_epoch = t.term;
           rp_leader = t.cfg.id;
           rp_index = Int32.of_int t.log_len;
           rp_msg = msg;
         });
    recompute_commit t;
    true
  end

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    cancel_election_timer t;
    t.hb_gen <- t.hb_gen + 1;
    t.role <- Follower;
    t.leader <- None;
    t.accepted_leader_epoch <- 0l;
    t.votes <- [];
    t.match_index <- [||];
    t.commit <- 0;
    t.applied <- 0;
    record t "crash" (Printf.sprintf "epoch=%ld log=%d" t.term t.log_len)
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    record t "restart" (Printf.sprintf "epoch=%ld log=%d" t.term t.log_len);
    arm_election t
  end

let create engine ~rng cfg ~send =
  if cfg.replicas < 1 then invalid_arg "Replica.create: replicas < 1";
  if cfg.id < 0 || cfg.id >= cfg.replicas then
    invalid_arg "Replica.create: id out of range";
  let t =
    {
      engine;
      entity = Rf_obs.Profiler.controller cfg.id;
      rng;
      cfg;
      send;
      term = 0l;
      voted_for = None;
      log_rev = [];
      log_len = 0;
      role = Follower;
      crashed = false;
      leader = None;
      accepted_leader_epoch = 0l;
      votes = [];
      match_index = [||];
      commit = 0;
      applied = 0;
      election_timer = None;
      hb_gen = 0;
      on_commit = (fun _ _ -> ());
      on_role = (fun _ _ -> ());
      elections_started = 0;
      heartbeats_sent = 0;
      snapshots_served = 0;
      truncations = 0;
    }
  in
  arm_election t;
  t

let set_on_commit t f = t.on_commit <- f

let set_on_role t f = t.on_role <- f

let id t = t.cfg.id

let role t = t.role

let term t = t.term

let leader t = t.leader

let crashed t = t.crashed

let log_length t = t.log_len

let commit_index t = t.commit

let log_digest t =
  let committed = min t.commit t.log_len in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i msg ->
      if i < committed then
        Buffer.add_string buf (Format.asprintf "%d %a\n" (i + 1) Rpc_msg.pp msg))
    (log t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let elections_started t = t.elections_started

let heartbeats_sent t = t.heartbeats_sent

let snapshots_served t = t.snapshots_served

let truncations t = t.truncations
