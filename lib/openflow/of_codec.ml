open Rf_packet
open Of_msg

let version = 0x01

let no_buffer = 0xFFFFFFFFl

let buffer_to_wire = function None -> no_buffer | Some b -> b

let buffer_of_wire v = if Int32.equal v no_buffer then None else Some v

let encode_phys_port w (p : phys_port) =
  Wire.Writer.u16 w p.port_no;
  Wire.Writer.bytes w (Mac.to_bytes p.hw_addr);
  let name = if String.length p.name > 15 then String.sub p.name 0 15 else p.name in
  Wire.Writer.bytes w name;
  Wire.Writer.zeros w (16 - String.length name);
  Wire.Writer.u32 w 0l (* config *);
  Wire.Writer.u32 w (if p.up then 0l else 1l) (* state: bit0 = link down *);
  Wire.Writer.u32 w 0l (* curr *);
  Wire.Writer.u32 w 0l (* advertised *);
  Wire.Writer.u32 w 0l (* supported *);
  Wire.Writer.u32 w 0l (* peer *)

let decode_phys_port r =
  let port_no = Wire.Reader.u16 r in
  let hw_addr = Mac.of_bytes (Wire.Reader.bytes r 6) in
  let raw_name = Wire.Reader.bytes r 16 in
  let name =
    match String.index_opt raw_name '\000' with
    | Some i -> String.sub raw_name 0 i
    | None -> raw_name
  in
  let _config = Wire.Reader.u32 r in
  let state = Wire.Reader.u32 r in
  Wire.Reader.skip r 16;
  { port_no; hw_addr; name; up = Int32.logand state 1l = 0l }

let fixed_string w len s =
  let s = if String.length s > len - 1 then String.sub s 0 (len - 1) else s in
  Wire.Writer.bytes w s;
  Wire.Writer.zeros w (len - String.length s)

let read_fixed_string r len =
  let raw = Wire.Reader.bytes r len in
  match String.index_opt raw '\000' with
  | Some i -> String.sub raw 0 i
  | None -> raw

let command_code = function
  | Add -> 0
  | Modify -> 1
  | Modify_strict -> 2
  | Delete -> 3
  | Delete_strict -> 4

let command_of_code = function
  | 0 -> Ok Add
  | 1 -> Ok Modify
  | 2 -> Ok Modify_strict
  | 3 -> Ok Delete
  | 4 -> Ok Delete_strict
  | n -> Stdlib.Error (Printf.sprintf "of_codec: bad flow-mod command %d" n)

let encode_body w = function
  | Hello | Features_request | Get_config_request | Barrier_request
  | Barrier_reply ->
      ()
  | Error e ->
      Wire.Writer.u16 w e.err_type;
      Wire.Writer.u16 w e.err_code;
      Wire.Writer.bytes w e.err_data
  | Echo_request data | Echo_reply data -> Wire.Writer.bytes w data
  | Vendor { vendor; data } ->
      Wire.Writer.u32 w vendor;
      Wire.Writer.bytes w data
  | Features_reply f ->
      Wire.Writer.u64 w f.datapath_id;
      Wire.Writer.u32 w f.n_buffers;
      Wire.Writer.u8 w f.n_tables;
      Wire.Writer.zeros w 3;
      Wire.Writer.u32 w f.capabilities;
      Wire.Writer.u32 w f.supported_actions;
      List.iter (encode_phys_port w) f.ports
  | Get_config_reply { flags; miss_send_len } | Set_config { flags; miss_send_len }
    ->
      Wire.Writer.u16 w flags;
      Wire.Writer.u16 w miss_send_len
  | Packet_in pi ->
      Wire.Writer.u32 w (buffer_to_wire pi.pi_buffer_id);
      Wire.Writer.u16 w pi.pi_total_len;
      Wire.Writer.u16 w pi.pi_in_port;
      Wire.Writer.u8 w
        (match pi.pi_reason with No_match -> 0 | Action_to_controller -> 1);
      Wire.Writer.u8 w 0;
      Wire.Writer.bytes w pi.pi_data
  | Flow_removed fr ->
      Wire.Writer.bytes w (Of_match.to_wire fr.fr_match);
      Wire.Writer.u64 w fr.fr_cookie;
      Wire.Writer.u16 w fr.fr_priority;
      Wire.Writer.u8 w
        (match fr.fr_reason with
        | Removed_idle -> 0
        | Removed_hard -> 1
        | Removed_delete -> 2);
      Wire.Writer.u8 w 0;
      Wire.Writer.u32 w (Int32.of_int fr.fr_duration_s);
      Wire.Writer.u32 w 0l (* nsec *);
      Wire.Writer.u16 w 0 (* idle_timeout *);
      Wire.Writer.zeros w 2;
      Wire.Writer.u64 w fr.fr_packet_count;
      Wire.Writer.u64 w fr.fr_byte_count
  | Port_status { reason; desc } ->
      Wire.Writer.u8 w
        (match reason with Port_add -> 0 | Port_delete -> 1 | Port_modify -> 2);
      Wire.Writer.zeros w 7;
      encode_phys_port w desc
  | Packet_out po ->
      let actions = Of_action.list_to_wire po.po_actions in
      Wire.Writer.u32 w (buffer_to_wire po.po_buffer_id);
      Wire.Writer.u16 w po.po_in_port;
      Wire.Writer.u16 w (String.length actions);
      Wire.Writer.bytes w actions;
      Wire.Writer.bytes w po.po_data
  | Flow_mod fm ->
      Wire.Writer.bytes w (Of_match.to_wire fm.fm_match);
      Wire.Writer.u64 w fm.fm_cookie;
      Wire.Writer.u16 w (command_code fm.fm_command);
      Wire.Writer.u16 w fm.fm_idle_timeout;
      Wire.Writer.u16 w fm.fm_hard_timeout;
      Wire.Writer.u16 w fm.fm_priority;
      Wire.Writer.u32 w (buffer_to_wire fm.fm_buffer_id);
      Wire.Writer.u16 w (Option.value fm.fm_out_port ~default:Of_port.none);
      Wire.Writer.u16 w (if fm.fm_notify_removed then 1 else 0);
      Wire.Writer.bytes w (Of_action.list_to_wire fm.fm_actions)
  | Port_mod { pm_port_no; pm_hw_addr; pm_down } ->
      Wire.Writer.u16 w pm_port_no;
      Wire.Writer.bytes w (Mac.to_bytes pm_hw_addr);
      Wire.Writer.u32 w (if pm_down then 1l else 0l) (* config *);
      Wire.Writer.u32 w 1l (* mask: PORT_DOWN *);
      Wire.Writer.u32 w 0l (* advertise *);
      Wire.Writer.zeros w 4
  | Stats_request req -> (
      match req with
      | Desc_req ->
          Wire.Writer.u16 w 0;
          Wire.Writer.u16 w 0
      | Flow_req { qf_match; qf_out_port } ->
          Wire.Writer.u16 w 1;
          Wire.Writer.u16 w 0;
          Wire.Writer.bytes w (Of_match.to_wire qf_match);
          Wire.Writer.u8 w 0xff (* table: all *);
          Wire.Writer.u8 w 0;
          Wire.Writer.u16 w (Option.value qf_out_port ~default:Of_port.none)
      | Port_req port ->
          Wire.Writer.u16 w 4;
          Wire.Writer.u16 w 0;
          Wire.Writer.u16 w port;
          Wire.Writer.zeros w 6)
  | Stats_reply rep -> (
      match rep with
      | Desc_reply d ->
          Wire.Writer.u16 w 0;
          Wire.Writer.u16 w 0;
          fixed_string w 256 d.manufacturer;
          fixed_string w 256 d.hardware;
          fixed_string w 256 d.software;
          fixed_string w 32 d.serial;
          fixed_string w 256 d.datapath_desc
      | Flow_reply entries ->
          Wire.Writer.u16 w 1;
          Wire.Writer.u16 w 0;
          List.iter
            (fun fs ->
              let actions = Of_action.list_to_wire fs.fs_actions in
              Wire.Writer.u16 w (88 + String.length actions);
              Wire.Writer.u8 w 0 (* table *);
              Wire.Writer.u8 w 0;
              Wire.Writer.bytes w (Of_match.to_wire fs.fs_match);
              Wire.Writer.u32 w (Int32.of_int fs.fs_duration_s);
              Wire.Writer.u32 w 0l;
              Wire.Writer.u16 w fs.fs_priority;
              Wire.Writer.u16 w 0 (* idle *);
              Wire.Writer.u16 w 0 (* hard *);
              Wire.Writer.zeros w 6;
              Wire.Writer.u64 w fs.fs_cookie;
              Wire.Writer.u64 w fs.fs_packet_count;
              Wire.Writer.u64 w fs.fs_byte_count;
              Wire.Writer.bytes w actions)
            entries
      | Port_reply entries ->
          Wire.Writer.u16 w 4;
          Wire.Writer.u16 w 0;
          List.iter
            (fun ps ->
              Wire.Writer.u16 w ps.ps_port_no;
              Wire.Writer.zeros w 6;
              Wire.Writer.u64 w ps.ps_rx_packets;
              Wire.Writer.u64 w ps.ps_tx_packets;
              Wire.Writer.u64 w ps.ps_rx_bytes;
              Wire.Writer.u64 w ps.ps_tx_bytes;
              Wire.Writer.u64 w ps.ps_rx_dropped;
              Wire.Writer.u64 w ps.ps_tx_dropped;
              (* rx_errors tx_errors rx_frame rx_over rx_crc collisions *)
              Wire.Writer.zeros w 48)
            entries)

let to_wire t =
  let body = Wire.Writer.create ~initial:64 () in
  encode_body body t.payload;
  let body = Wire.Writer.contents body in
  let w = Wire.Writer.create ~initial:(8 + String.length body) () in
  Wire.Writer.u8 w version;
  Wire.Writer.u8 w (type_code t.payload);
  Wire.Writer.u16 w (8 + String.length body);
  Wire.Writer.u32 w t.xid;
  Wire.Writer.bytes w body;
  Wire.Writer.contents w

let ( let* ) = Result.bind

let decode_flow_stats r =
  let rec loop acc =
    if Wire.Reader.remaining r < 88 then Ok (List.rev acc)
    else begin
      let length = Wire.Reader.u16 r in
      if length < 88 then Stdlib.Error "of_codec: flow stats entry too short"
      else begin
        let entry = Wire.Reader.sub r (length - 2) in
        let _table = Wire.Reader.u8 entry in
        Wire.Reader.skip entry 1;
        let* fs_match = Of_match.of_wire entry in
        let duration = Int32.to_int (Wire.Reader.u32 entry) in
        let _nsec = Wire.Reader.u32 entry in
        let fs_priority = Wire.Reader.u16 entry in
        let _idle = Wire.Reader.u16 entry in
        let _hard = Wire.Reader.u16 entry in
        Wire.Reader.skip entry 6;
        let fs_cookie = Wire.Reader.u64 entry in
        let fs_packet_count = Wire.Reader.u64 entry in
        let fs_byte_count = Wire.Reader.u64 entry in
        let* fs_actions = Of_action.list_of_wire entry in
        loop
          ({
             fs_match;
             fs_priority;
             fs_cookie;
             fs_duration_s = duration;
             fs_packet_count;
             fs_byte_count;
             fs_actions;
           }
          :: acc)
      end
    end
  in
  loop []

let decode_port_stats r =
  let rec loop acc =
    if Wire.Reader.remaining r < 104 then Ok (List.rev acc)
    else begin
      let ps_port_no = Wire.Reader.u16 r in
      Wire.Reader.skip r 6;
      let ps_rx_packets = Wire.Reader.u64 r in
      let ps_tx_packets = Wire.Reader.u64 r in
      let ps_rx_bytes = Wire.Reader.u64 r in
      let ps_tx_bytes = Wire.Reader.u64 r in
      let ps_rx_dropped = Wire.Reader.u64 r in
      let ps_tx_dropped = Wire.Reader.u64 r in
      Wire.Reader.skip r 48;
      loop
        ({
           ps_port_no;
           ps_rx_packets;
           ps_tx_packets;
           ps_rx_bytes;
           ps_tx_bytes;
           ps_rx_dropped;
           ps_tx_dropped;
         }
        :: acc)
    end
  in
  loop []

let decode_body typ xid r =
  match typ with
  | 0 -> Ok (msg ~xid Hello)
  | 1 ->
      let err_type = Wire.Reader.u16 r in
      let err_code = Wire.Reader.u16 r in
      Ok (msg ~xid (Error { err_type; err_code; err_data = Wire.Reader.rest r }))
  | 2 -> Ok (msg ~xid (Echo_request (Wire.Reader.rest r)))
  | 3 -> Ok (msg ~xid (Echo_reply (Wire.Reader.rest r)))
  | 4 ->
      let vendor = Wire.Reader.u32 r in
      Ok (msg ~xid (Vendor { vendor; data = Wire.Reader.rest r }))
  | 5 -> Ok (msg ~xid Features_request)
  | 6 ->
      let datapath_id = Wire.Reader.u64 r in
      let n_buffers = Wire.Reader.u32 r in
      let n_tables = Wire.Reader.u8 r in
      Wire.Reader.skip r 3;
      let capabilities = Wire.Reader.u32 r in
      let supported_actions = Wire.Reader.u32 r in
      let rec ports acc =
        if Wire.Reader.remaining r < 48 then List.rev acc
        else ports (decode_phys_port r :: acc)
      in
      Ok
        (msg ~xid
           (Features_reply
              {
                datapath_id;
                n_buffers;
                n_tables;
                capabilities;
                supported_actions;
                ports = ports [];
              }))
  | 7 -> Ok (msg ~xid Get_config_request)
  | 8 ->
      let flags = Wire.Reader.u16 r in
      let miss_send_len = Wire.Reader.u16 r in
      Ok (msg ~xid (Get_config_reply { flags; miss_send_len }))
  | 9 ->
      let flags = Wire.Reader.u16 r in
      let miss_send_len = Wire.Reader.u16 r in
      Ok (msg ~xid (Set_config { flags; miss_send_len }))
  | 10 ->
      let buffer = buffer_of_wire (Wire.Reader.u32 r) in
      let total_len = Wire.Reader.u16 r in
      let in_port = Wire.Reader.u16 r in
      let reason_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 1;
      let* reason =
        match reason_code with
        | 0 -> Ok No_match
        | 1 -> Ok Action_to_controller
        | n -> Stdlib.Error (Printf.sprintf "of_codec: bad packet-in reason %d" n)
      in
      Ok
        (msg ~xid
           (Packet_in
              {
                pi_buffer_id = buffer;
                pi_total_len = total_len;
                pi_in_port = in_port;
                pi_reason = reason;
                pi_data = Wire.Reader.rest r;
              }))
  | 11 ->
      let* fr_match = Of_match.of_wire r in
      let fr_cookie = Wire.Reader.u64 r in
      let fr_priority = Wire.Reader.u16 r in
      let reason_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 1;
      let duration = Int32.to_int (Wire.Reader.u32 r) in
      let _nsec = Wire.Reader.u32 r in
      let _idle = Wire.Reader.u16 r in
      Wire.Reader.skip r 2;
      let fr_packet_count = Wire.Reader.u64 r in
      let fr_byte_count = Wire.Reader.u64 r in
      let* fr_reason =
        match reason_code with
        | 0 -> Ok Removed_idle
        | 1 -> Ok Removed_hard
        | 2 -> Ok Removed_delete
        | n -> Stdlib.Error (Printf.sprintf "of_codec: bad flow-removed reason %d" n)
      in
      Ok
        (msg ~xid
           (Flow_removed
              {
                fr_match;
                fr_cookie;
                fr_priority;
                fr_reason;
                fr_duration_s = duration;
                fr_packet_count;
                fr_byte_count;
              }))
  | 12 ->
      let reason_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 7;
      let desc = decode_phys_port r in
      let* reason =
        match reason_code with
        | 0 -> Ok Port_add
        | 1 -> Ok Port_delete
        | 2 -> Ok Port_modify
        | n -> Stdlib.Error (Printf.sprintf "of_codec: bad port-status reason %d" n)
      in
      Ok (msg ~xid (Port_status { reason; desc }))
  | 13 ->
      let buffer = buffer_of_wire (Wire.Reader.u32 r) in
      let in_port = Wire.Reader.u16 r in
      let actions_len = Wire.Reader.u16 r in
      let actions_reader = Wire.Reader.sub r actions_len in
      let* actions = Of_action.list_of_wire actions_reader in
      Ok
        (msg ~xid
           (Packet_out
              {
                po_buffer_id = buffer;
                po_in_port = in_port;
                po_actions = actions;
                po_data = Wire.Reader.rest r;
              }))
  | 14 ->
      let* fm_match = Of_match.of_wire r in
      let fm_cookie = Wire.Reader.u64 r in
      let command_code = Wire.Reader.u16 r in
      let fm_idle_timeout = Wire.Reader.u16 r in
      let fm_hard_timeout = Wire.Reader.u16 r in
      let fm_priority = Wire.Reader.u16 r in
      let buffer = buffer_of_wire (Wire.Reader.u32 r) in
      let out_port = Wire.Reader.u16 r in
      let flags = Wire.Reader.u16 r in
      let* fm_command = command_of_code command_code in
      let* fm_actions = Of_action.list_of_wire r in
      Ok
        (msg ~xid
           (Flow_mod
              {
                fm_match;
                fm_cookie;
                fm_command;
                fm_idle_timeout;
                fm_hard_timeout;
                fm_priority;
                fm_buffer_id = buffer;
                fm_out_port =
                  (if out_port = Of_port.none then None else Some out_port);
                fm_notify_removed = flags land 1 <> 0;
                fm_actions;
              }))
  | 15 ->
      let pm_port_no = Wire.Reader.u16 r in
      let pm_hw_addr = Mac.of_bytes (Wire.Reader.bytes r 6) in
      let config = Wire.Reader.u32 r in
      let mask = Wire.Reader.u32 r in
      let _advertise = Wire.Reader.u32 r in
      Wire.Reader.skip r 4;
      let pm_down =
        Int32.logand mask 1l <> 0l && Int32.logand config 1l <> 0l
      in
      Ok (msg ~xid (Port_mod { pm_port_no; pm_hw_addr; pm_down }))
  | 16 -> (
      let stats_type = Wire.Reader.u16 r in
      let _flags = Wire.Reader.u16 r in
      match stats_type with
      | 0 -> Ok (msg ~xid (Stats_request Desc_req))
      | 1 ->
          let* qf_match = Of_match.of_wire r in
          let _table = Wire.Reader.u8 r in
          Wire.Reader.skip r 1;
          let out_port = Wire.Reader.u16 r in
          Ok
            (msg ~xid
               (Stats_request
                  (Flow_req
                     {
                       qf_match;
                       qf_out_port =
                         (if out_port = Of_port.none then None else Some out_port);
                     })))
      | 4 ->
          let port = Wire.Reader.u16 r in
          Wire.Reader.skip r 6;
          Ok (msg ~xid (Stats_request (Port_req port)))
      | n -> Stdlib.Error (Printf.sprintf "of_codec: unsupported stats request %d" n))
  | 17 -> (
      let stats_type = Wire.Reader.u16 r in
      let _flags = Wire.Reader.u16 r in
      match stats_type with
      | 0 ->
          let manufacturer = read_fixed_string r 256 in
          let hardware = read_fixed_string r 256 in
          let software = read_fixed_string r 256 in
          let serial = read_fixed_string r 32 in
          let datapath_desc = read_fixed_string r 256 in
          Ok
            (msg ~xid
               (Stats_reply
                  (Desc_reply
                     { manufacturer; hardware; software; serial; datapath_desc })))
      | 1 ->
          let* entries = decode_flow_stats r in
          Ok (msg ~xid (Stats_reply (Flow_reply entries)))
      | 4 ->
          let* entries = decode_port_stats r in
          Ok (msg ~xid (Stats_reply (Port_reply entries)))
      | n -> Stdlib.Error (Printf.sprintf "of_codec: unsupported stats reply %d" n))
  | 18 -> Ok (msg ~xid Barrier_request)
  | 19 -> Ok (msg ~xid Barrier_reply)
  | n -> Stdlib.Error (Printf.sprintf "of_codec: unsupported message type %d" n)

let of_wire_reader r =
  try
    let v = Wire.Reader.u8 r in
    if v <> version then Stdlib.Error (Printf.sprintf "of_codec: bad version %d" v)
    else begin
      let typ = Wire.Reader.u8 r in
      let length = Wire.Reader.u16 r in
      let xid = Wire.Reader.u32 r in
      if length < 8 then Stdlib.Error "of_codec: bad length"
      else
        let body = Wire.Reader.sub r (length - 8) in
        decode_body typ xid body
    end
  with Wire.Truncated -> Stdlib.Error "of_codec: truncated message"

let of_wire s = of_wire_reader (Wire.Reader.of_string s)

module Flow_mod_cursor = struct
  (* All fields are immediate ints (the 64-bit cookie is split in two,
     MACs are 48-bit ints), so decoding into a reused cursor allocates
     nothing. The action list is validated in place and recorded as a
     window; [to_flow_mod] materializes it for oracle comparisons. *)
  type c = {
    r : Wire.Reader.t;
    mutable xid : int;
    mutable wildcards : int;
    mutable in_port : int;
    mutable dl_src : int;
    mutable dl_dst : int;
    mutable dl_vlan : int;
    mutable dl_pcp : int;
    mutable dl_type : int;
    mutable nw_tos : int;
    mutable nw_proto : int;
    mutable nw_src : int;
    mutable nw_dst : int;
    mutable tp_src : int;
    mutable tp_dst : int;
    mutable cookie_hi : int;
    mutable cookie_lo : int;
    mutable command : int;
    mutable idle_timeout : int;
    mutable hard_timeout : int;
    mutable priority : int;
    mutable buffer_id : int;
    mutable out_port : int;
    mutable flags : int;
    mutable actions_off : int;
    mutable actions_len : int;
    mutable action_count : int;
  }

  let create () =
    {
      r = Wire.Reader.of_string "";
      xid = 0;
      wildcards = 0;
      in_port = 0;
      dl_src = 0;
      dl_dst = 0;
      dl_vlan = 0;
      dl_pcp = 0;
      dl_type = 0;
      nw_tos = 0;
      nw_proto = 0;
      nw_src = 0;
      nw_dst = 0;
      tp_src = 0;
      tp_dst = 0;
      cookie_hi = 0;
      cookie_lo = 0;
      command = 0;
      idle_timeout = 0;
      hard_timeout = 0;
      priority = 0;
      buffer_id = 0;
      out_port = 0;
      flags = 0;
      actions_off = 0;
      actions_len = 0;
      action_count = 0;
    }

  (* Mirrors Of_action.decode_one's acceptance without materializing
     the actions: same length rules, same supported type set. *)
  let validate_actions c r =
    c.actions_off <- Wire.Reader.pos r;
    c.actions_len <- Wire.Reader.remaining r;
    let ok = ref true in
    let count = ref 0 in
    while !ok && Wire.Reader.remaining r >= 4 do
      let atyp = Wire.Reader.u16 r in
      let alen = Wire.Reader.u16 r in
      if alen < 8 || alen - 4 > Wire.Reader.remaining r then ok := false
      else begin
        (match atyp with
        | 0 | 3 | 6 | 7 | 8 | 9 | 10 -> ()
        | 4 | 5 -> if alen < 10 then ok := false
        | _ -> ok := false);
        if !ok then begin
          Wire.Reader.skip r (alen - 4);
          incr count
        end
      end
    done;
    c.action_count <- !count;
    !ok

  let decode c s =
    try
      let r = c.r in
      Wire.Reader.reset r s;
      let v = Wire.Reader.u8 r in
      let typ = Wire.Reader.u8 r in
      let length = Wire.Reader.u16 r in
      c.xid <- Wire.Reader.u32_int r;
      if
        v <> version || typ <> 14 || length < 8
        || length - 8 > Wire.Reader.remaining r
      then false
      else begin
        Wire.Reader.reset_window r s 8 (length - 8);
        c.wildcards <- Wire.Reader.u32_int r land 0x3FFFFF;
        c.in_port <- Wire.Reader.u16 r;
        c.dl_src <- Wire.Reader.u48_int r;
        c.dl_dst <- Wire.Reader.u48_int r;
        c.dl_vlan <- Wire.Reader.u16 r;
        c.dl_pcp <- Wire.Reader.u8 r;
        Wire.Reader.skip r 1;
        c.dl_type <- Wire.Reader.u16 r;
        c.nw_tos <- Wire.Reader.u8 r;
        c.nw_proto <- Wire.Reader.u8 r;
        Wire.Reader.skip r 2;
        c.nw_src <- Wire.Reader.u32_int r;
        c.nw_dst <- Wire.Reader.u32_int r;
        c.tp_src <- Wire.Reader.u16 r;
        c.tp_dst <- Wire.Reader.u16 r;
        c.cookie_hi <- Wire.Reader.u32_int r;
        c.cookie_lo <- Wire.Reader.u32_int r;
        c.command <- Wire.Reader.u16 r;
        c.idle_timeout <- Wire.Reader.u16 r;
        c.hard_timeout <- Wire.Reader.u16 r;
        c.priority <- Wire.Reader.u16 r;
        c.buffer_id <- Wire.Reader.u32_int r;
        c.out_port <- Wire.Reader.u16 r;
        c.flags <- Wire.Reader.u16 r;
        c.command <= 4 && validate_actions c r
      end
    with Wire.Truncated -> false

  let to_flow_mod c s =
    let mr = Wire.Reader.of_string ~pos:8 ~len:40 s in
    let* fm_match = Of_match.of_wire mr in
    let ar = Wire.Reader.of_string ~pos:c.actions_off ~len:c.actions_len s in
    let* fm_actions = Of_action.list_of_wire ar in
    let* fm_command = command_of_code c.command in
    Ok
      {
        fm_match;
        fm_cookie =
          Int64.logor
            (Int64.shift_left (Int64.of_int c.cookie_hi) 32)
            (Int64.of_int c.cookie_lo);
        fm_command;
        fm_idle_timeout = c.idle_timeout;
        fm_hard_timeout = c.hard_timeout;
        fm_priority = c.priority;
        fm_buffer_id = buffer_of_wire (Int32.of_int c.buffer_id);
        fm_out_port =
          (if c.out_port = Of_port.none then None else Some c.out_port);
        fm_notify_removed = c.flags land 1 <> 0;
        fm_actions;
      }
end

module Framer = struct
  type t = { mutable buffer : string }

  let create () = { buffer = "" }

  let pending_bytes t = String.length t.buffer

  let input t chunk =
    t.buffer <- t.buffer ^ chunk;
    let rec extract acc =
      let len = String.length t.buffer in
      if len < 4 then Ok (List.rev acc)
      else begin
        let msg_len =
          (Char.code t.buffer.[2] lsl 8) lor Char.code t.buffer.[3]
        in
        if msg_len < 8 then Stdlib.Error "of_codec: framing error (length < 8)"
        else if len < msg_len then Ok (List.rev acc)
        else begin
          let frame = String.sub t.buffer 0 msg_len in
          t.buffer <- String.sub t.buffer msg_len (len - msg_len);
          match of_wire frame with
          | Ok m -> extract (m :: acc)
          | Error e -> Error e
        end
      end
    in
    extract []
end
