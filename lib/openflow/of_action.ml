open Rf_packet

type t =
  | Output of { port : Of_port.t; max_len : int }
  | Set_dl_src of Mac.t
  | Set_dl_dst of Mac.t
  | Set_nw_src of Ipv4_addr.t
  | Set_nw_dst of Ipv4_addr.t
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int
  | Strip_vlan

let output port = Output { port; max_len = 65535 }

let to_controller = output Of_port.controller

let outputs actions =
  List.filter_map
    (function Output { port; _ } -> Some port | _ -> None)
    actions

let size = function
  | Output _ | Strip_vlan | Set_nw_src _ | Set_nw_dst _ | Set_nw_tos _
  | Set_tp_src _ | Set_tp_dst _ ->
      8
  | Set_dl_src _ | Set_dl_dst _ -> 16

let encode w action =
  match action with
  | Output { port; max_len } ->
      Wire.Writer.u16 w 0 (* OFPAT_OUTPUT *);
      Wire.Writer.u16 w 8;
      Wire.Writer.u16 w port;
      Wire.Writer.u16 w max_len
  | Strip_vlan ->
      Wire.Writer.u16 w 3;
      Wire.Writer.u16 w 8;
      Wire.Writer.zeros w 4
  | Set_dl_src mac ->
      Wire.Writer.u16 w 4;
      Wire.Writer.u16 w 16;
      Wire.Writer.bytes w (Mac.to_bytes mac);
      Wire.Writer.zeros w 6
  | Set_dl_dst mac ->
      Wire.Writer.u16 w 5;
      Wire.Writer.u16 w 16;
      Wire.Writer.bytes w (Mac.to_bytes mac);
      Wire.Writer.zeros w 6
  | Set_nw_src ip ->
      Wire.Writer.u16 w 6;
      Wire.Writer.u16 w 8;
      Wire.Writer.u32 w (Ipv4_addr.to_int32 ip)
  | Set_nw_dst ip ->
      Wire.Writer.u16 w 7;
      Wire.Writer.u16 w 8;
      Wire.Writer.u32 w (Ipv4_addr.to_int32 ip)
  | Set_nw_tos tos ->
      Wire.Writer.u16 w 8;
      Wire.Writer.u16 w 8;
      Wire.Writer.u8 w tos;
      Wire.Writer.zeros w 3
  | Set_tp_src port ->
      Wire.Writer.u16 w 9;
      Wire.Writer.u16 w 8;
      Wire.Writer.u16 w port;
      Wire.Writer.zeros w 2
  | Set_tp_dst port ->
      Wire.Writer.u16 w 10;
      Wire.Writer.u16 w 8;
      Wire.Writer.u16 w port;
      Wire.Writer.zeros w 2

let list_to_wire actions =
  let w = Wire.Writer.create ~initial:32 () in
  List.iter (encode w) actions;
  Wire.Writer.contents w

let decode_one r =
  let typ = Wire.Reader.u16 r in
  let len = Wire.Reader.u16 r in
  if len < 8 then Error "of_action: length too small"
  else
    let body = Wire.Reader.sub r (len - 4) in
    match typ with
    | 0 ->
        let port = Wire.Reader.u16 body in
        let max_len = Wire.Reader.u16 body in
        Ok (Output { port; max_len })
    | 3 -> Ok Strip_vlan
    | 4 -> Ok (Set_dl_src (Mac.of_bytes (Wire.Reader.bytes body 6)))
    | 5 -> Ok (Set_dl_dst (Mac.of_bytes (Wire.Reader.bytes body 6)))
    | 6 -> Ok (Set_nw_src (Ipv4_addr.of_int32 (Wire.Reader.u32 body)))
    | 7 -> Ok (Set_nw_dst (Ipv4_addr.of_int32 (Wire.Reader.u32 body)))
    | 8 -> Ok (Set_nw_tos (Wire.Reader.u8 body))
    | 9 -> Ok (Set_tp_src (Wire.Reader.u16 body))
    | 10 -> Ok (Set_tp_dst (Wire.Reader.u16 body))
    | n -> Error (Printf.sprintf "of_action: unsupported type %d" n)

let list_of_wire r =
  let rec loop acc =
    if Wire.Reader.remaining r < 4 then Ok (List.rev acc)
    else
      match decode_one r with
      | Ok a -> loop (a :: acc)
      | Error e -> Error e
  in
  try loop [] with Wire.Truncated -> Error "of_action: truncated"

let pp ppf = function
  | Output { port; _ } -> Format.fprintf ppf "output(%a)" Of_port.pp port
  | Set_dl_src m -> Format.fprintf ppf "set_dl_src(%a)" Mac.pp m
  | Set_dl_dst m -> Format.fprintf ppf "set_dl_dst(%a)" Mac.pp m
  | Set_nw_src a -> Format.fprintf ppf "set_nw_src(%a)" Ipv4_addr.pp a
  | Set_nw_dst a -> Format.fprintf ppf "set_nw_dst(%a)" Ipv4_addr.pp a
  | Set_nw_tos t -> Format.fprintf ppf "set_nw_tos(%d)" t
  | Set_tp_src p -> Format.fprintf ppf "set_tp_src(%d)" p
  | Set_tp_dst p -> Format.fprintf ppf "set_tp_dst(%d)" p
  | Strip_vlan -> Format.fprintf ppf "strip_vlan"
