(** OpenFlow 1.0 actions. *)

open Rf_packet

type t =
  | Output of { port : Of_port.t; max_len : int }
  | Set_dl_src of Mac.t
  | Set_dl_dst of Mac.t
  | Set_nw_src of Ipv4_addr.t
  | Set_nw_dst of Ipv4_addr.t
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int
  | Strip_vlan

val output : Of_port.t -> t
(** Output with the default controller [max_len] of 65535. *)

val to_controller : t

val outputs : t list -> int list
(** The [Output] ports of an action list, in order, pseudo-ports
    included. *)

val size : t -> int
(** Encoded size in bytes (multiple of 8). *)

val list_to_wire : t list -> string

val list_of_wire : Wire.Reader.t -> (t list, string) result
(** Consumes the whole reader. *)

val pp : Format.formatter -> t -> unit
