(** OpenFlow 1.0 wire codec.

    Messages are framed by the standard 8-byte header
    (version, type, length, xid). [Framer] reassembles messages from an
    arbitrary byte stream, as delivered by the simulated TCP channels. *)

open Rf_packet

val version : int
(** 0x01. *)

val to_wire : Of_msg.t -> string

val of_wire : string -> (Of_msg.t, string) result
(** Decodes exactly one message. *)

val of_wire_reader : Wire.Reader.t -> (Of_msg.t, string) result

(** Zero-allocation Flow_mod decoding, the hot message on the
    controller -> switch path. The cursor is allocated once and
    reused; every decoded field is a plain [int] (64-bit cookie split
    hi/lo, MACs as 48-bit ints, addresses as 32-bit unsigned ints).
    The action list is validated in place and exposed as a window. *)
module Flow_mod_cursor : sig
  type c = {
    r : Wire.Reader.t;
    mutable xid : int;
    mutable wildcards : int;  (** raw OF 1.0 wildcard bits *)
    mutable in_port : int;
    mutable dl_src : int;
    mutable dl_dst : int;
    mutable dl_vlan : int;
    mutable dl_pcp : int;
    mutable dl_type : int;
    mutable nw_tos : int;
    mutable nw_proto : int;
    mutable nw_src : int;
    mutable nw_dst : int;
    mutable tp_src : int;
    mutable tp_dst : int;
    mutable cookie_hi : int;
    mutable cookie_lo : int;
    mutable command : int;
    mutable idle_timeout : int;
    mutable hard_timeout : int;
    mutable priority : int;
    mutable buffer_id : int;  (** raw; 0xFFFFFFFF = unbuffered *)
    mutable out_port : int;
    mutable flags : int;
    mutable actions_off : int;  (** window over the action list *)
    mutable actions_len : int;
    mutable action_count : int;
  }

  val create : unit -> c

  val decode : c -> string -> bool
  (** [true] exactly when {!of_wire} on the same bytes yields
      [Ok {payload = Flow_mod _}] — same header, command and action
      validation. Allocates nothing. *)

  val to_flow_mod : c -> string -> (Of_msg.flow_mod, string) result
  (** Materializes the message last decoded from [s] as the structured
      record (allocating); the oracle bridge for differential tests. *)
end

module Framer : sig
  type t

  val create : unit -> t

  val input : t -> string -> (Of_msg.t list, string) result
  (** Feeds bytes; returns every message completed by this chunk. After
      an error the framer must be discarded (the stream is corrupt). *)

  val pending_bytes : t -> int
end
