(** UDP datagrams (checksum emitted as 0, i.e. disabled, as permitted
    by RFC 768 for IPv4). *)

type t = { src_port : int; dst_port : int; payload : string }

val make : src_port:int -> dst_port:int -> string -> t

val to_wire : t -> string

val of_wire : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** Zero-allocation decoding into a preallocated record; accepts
    exactly the datagrams {!of_wire} accepts. *)
module Cursor : sig
  type c = {
    r : Wire.Reader.t;
    mutable src_port : int;
    mutable dst_port : int;
    mutable payload_off : int;  (** window into the parsed string *)
    mutable payload_len : int;
  }

  val create : unit -> c

  val parse_into : c -> string -> pos:int -> len:int -> bool
  (** Parses the datagram at [s.[pos .. pos+len-1]] without
      allocating; [false] on invalid or truncated input. *)
end
