(** IPv4 headers (no fragmentation or options emission; options in
    received packets are skipped). *)

type t = {
  tos : int;
  ident : int;
  ttl : int;
  protocol : int;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  payload : string;
}

val proto_icmp : int
val proto_tcp : int
val proto_udp : int
val proto_ospf : int

val make :
  ?tos:int ->
  ?ident:int ->
  ?ttl:int ->
  protocol:int ->
  src:Ipv4_addr.t ->
  dst:Ipv4_addr.t ->
  string ->
  t

val decrement_ttl : t -> t option
(** [None] when the TTL reaches zero (packet must be dropped). *)

val to_wire : t -> string
(** Computes the header checksum. *)

val of_wire : string -> (t, string) result
(** Verifies the header checksum. *)

val pp : Format.formatter -> t -> unit

(** Zero-allocation header decoding into a preallocated, reusable
    record of plain [int] fields. Accepts exactly the headers
    {!of_wire} accepts (where [of_wire] would raise on a truncated
    options area, the cursor reports [false]). *)
module Cursor : sig
  type c = {
    r : Wire.Reader.t;
    mutable tos : int;
    mutable total_len : int;
    mutable ident : int;
    mutable ttl : int;
    mutable protocol : int;
    mutable src : int;  (** address as a 32-bit unsigned int *)
    mutable dst : int;
    mutable payload_off : int;  (** window into the parsed string *)
    mutable payload_len : int;
  }

  val create : unit -> c

  val src_addr : c -> Ipv4_addr.t
  (** Allocating convenience accessors for non-hot-path callers. *)

  val dst_addr : c -> Ipv4_addr.t

  val parse_into : c -> string -> pos:int -> len:int -> bool
  (** Parses the header at [s.[pos .. pos+len-1]], verifying version,
      header length, checksum and total length exactly like
      {!of_wire}. Allocates nothing; returns [false] on any invalid or
      truncated input. *)
end
