type t = {
  tos : int;
  ident : int;
  ttl : int;
  protocol : int;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  payload : string;
}

let proto_icmp = 1

let proto_tcp = 6

let proto_udp = 17

let proto_ospf = 89

let make ?(tos = 0) ?(ident = 0) ?(ttl = 64) ~protocol ~src ~dst payload =
  { tos; ident; ttl; protocol; src; dst; payload }

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let header_words = 5

let to_wire t =
  let w = Wire.Writer.create ~initial:(20 + String.length t.payload) () in
  Wire.Writer.u8 w ((4 lsl 4) lor header_words);
  Wire.Writer.u8 w t.tos;
  Wire.Writer.u16 w (20 + String.length t.payload);
  Wire.Writer.u16 w t.ident;
  Wire.Writer.u16 w 0 (* flags/fragment *);
  Wire.Writer.u8 w t.ttl;
  Wire.Writer.u8 w t.protocol;
  Wire.Writer.u16 w 0 (* checksum placeholder *);
  Wire.Writer.u32 w (Ipv4_addr.to_int32 t.src);
  Wire.Writer.u32 w (Ipv4_addr.to_int32 t.dst);
  let header = Wire.Writer.contents w in
  let csum = Wire.checksum header in
  Wire.Writer.patch_u16 w 10 csum;
  Wire.Writer.bytes w t.payload;
  Wire.Writer.contents w

let of_wire s =
  try
    let r = Wire.Reader.of_string s in
    let vihl = Wire.Reader.u8 r in
    let version = vihl lsr 4 in
    let ihl = vihl land 0xF in
    if version <> 4 then Error "ipv4: not version 4"
    else if ihl < 5 then Error "ipv4: bad header length"
    else begin
      let tos = Wire.Reader.u8 r in
      let total_len = Wire.Reader.u16 r in
      let ident = Wire.Reader.u16 r in
      let _flags_frag = Wire.Reader.u16 r in
      let ttl = Wire.Reader.u8 r in
      let protocol = Wire.Reader.u8 r in
      let _checksum = Wire.Reader.u16 r in
      let src = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let dst = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let header_len = ihl * 4 in
      if Wire.checksum (String.sub s 0 header_len) <> 0 then
        Error "ipv4: bad checksum"
      else begin
        Wire.Reader.skip r (header_len - 20);
        if total_len < header_len || total_len > String.length s then
          Error "ipv4: bad total length"
        else
          let payload = Wire.Reader.bytes r (total_len - header_len) in
          Ok { tos; ident; ttl; protocol; src; dst; payload }
      end
    end
  with Wire.Truncated -> Error "ipv4: truncated"

let pp ppf t =
  Format.fprintf ppf "ipv4 %a -> %a proto=%d ttl=%d len=%d" Ipv4_addr.pp t.src
    Ipv4_addr.pp t.dst t.protocol t.ttl (String.length t.payload)

module Cursor = struct
  (* Every field is a plain immediate int, so parsing into a
     preallocated cursor never touches the minor heap. The payload is a
     window into the caller's string, not a copy. *)
  type c = {
    r : Wire.Reader.t;
    mutable tos : int;
    mutable total_len : int;
    mutable ident : int;
    mutable ttl : int;
    mutable protocol : int;
    mutable src : int;
    mutable dst : int;
    mutable payload_off : int;
    mutable payload_len : int;
  }

  let create () =
    {
      r = Wire.Reader.of_string "";
      tos = 0;
      total_len = 0;
      ident = 0;
      ttl = 0;
      protocol = 0;
      src = 0;
      dst = 0;
      payload_off = 0;
      payload_len = 0;
    }

  let src_addr c = Ipv4_addr.of_int32 (Int32.of_int c.src)

  let dst_addr c = Ipv4_addr.of_int32 (Int32.of_int c.dst)

  let parse_into c s ~pos ~len =
    try
      let r = c.r in
      Wire.Reader.reset_window r s pos len;
      let vihl = Wire.Reader.u8 r in
      let version = vihl lsr 4 in
      let ihl = vihl land 0xF in
      if version <> 4 || ihl < 5 then false
      else begin
        c.tos <- Wire.Reader.u8 r;
        let total_len = Wire.Reader.u16 r in
        c.total_len <- total_len;
        c.ident <- Wire.Reader.u16 r;
        let _flags_frag = Wire.Reader.u16 r in
        c.ttl <- Wire.Reader.u8 r;
        c.protocol <- Wire.Reader.u8 r;
        let _checksum = Wire.Reader.u16 r in
        c.src <- Wire.Reader.u32_int r;
        c.dst <- Wire.Reader.u32_int r;
        let header_len = ihl * 4 in
        if header_len > len then false
        else if Wire.checksum_sub s ~pos ~len:header_len <> 0 then false
        else begin
          Wire.Reader.skip r (header_len - 20);
          if total_len < header_len || total_len > len then false
          else begin
            c.payload_off <- pos + header_len;
            c.payload_len <- total_len - header_len;
            true
          end
        end
      end
    with Wire.Truncated -> false
end
