type l4 =
  | Udp of Udp.t
  | Tcp of Tcp.t
  | Icmp of Icmp.t
  | Ospf of Ospf_pkt.t
  | Raw_l4 of { protocol : int; data : string }

type l3 =
  | Arp of Arp.t
  | Ipv4 of Ipv4.t * l4
  | Lldp of Lldp.t
  | Raw_l3 of { ethertype : int; data : string }

type t = { eth : Ethernet.t; l3 : l3 }

let parse_l4 (ip : Ipv4.t) =
  let ( let* ) = Result.bind in
  if ip.protocol = Ipv4.proto_udp then
    let* u = Udp.of_wire ip.payload in
    Ok (Udp u)
  else if ip.protocol = Ipv4.proto_tcp then
    let* t = Tcp.of_wire ip.payload in
    Ok (Tcp t)
  else if ip.protocol = Ipv4.proto_icmp then
    let* i = Icmp.of_wire ip.payload in
    Ok (Icmp i)
  else if ip.protocol = Ipv4.proto_ospf then
    let* o = Ospf_pkt.of_wire ip.payload in
    Ok (Ospf o)
  else Ok (Raw_l4 { protocol = ip.protocol; data = ip.payload })

let parse frame =
  let ( let* ) = Result.bind in
  let* eth = Ethernet.of_wire frame in
  if eth.ethertype = Ethernet.ethertype_arp then
    let* a = Arp.of_wire eth.payload in
    Ok { eth; l3 = Arp a }
  else if eth.ethertype = Ethernet.ethertype_lldp then
    let* l = Lldp.of_wire eth.payload in
    Ok { eth; l3 = Lldp l }
  else if eth.ethertype = Ethernet.ethertype_ipv4 then
    let* ip = Ipv4.of_wire eth.payload in
    let* l4 = parse_l4 ip in
    Ok { eth; l3 = Ipv4 (ip, l4) }
  else Ok { eth; l3 = Raw_l3 { ethertype = eth.ethertype; data = eth.payload } }

let arp ~src ~dst a =
  Ethernet.to_wire
    {
      Ethernet.src;
      dst;
      ethertype = Ethernet.ethertype_arp;
      payload = Arp.to_wire a;
    }

let lldp ~src l =
  Ethernet.to_wire
    {
      Ethernet.src;
      dst = Mac.lldp_multicast;
      ethertype = Ethernet.ethertype_lldp;
      payload = Lldp.to_wire l;
    }

let ipv4 ~src_mac ~dst_mac ip =
  Ethernet.to_wire
    {
      Ethernet.src = src_mac;
      dst = dst_mac;
      ethertype = Ethernet.ethertype_ipv4;
      payload = Ipv4.to_wire ip;
    }

let udp ~src_mac ~dst_mac ~src_ip ~dst_ip ?(ttl = 64) u =
  ipv4 ~src_mac ~dst_mac
    (Ipv4.make ~ttl ~protocol:Ipv4.proto_udp ~src:src_ip ~dst:dst_ip
       (Udp.to_wire u))

let icmp ~src_mac ~dst_mac ~src_ip ~dst_ip ?(ttl = 64) i =
  ipv4 ~src_mac ~dst_mac
    (Ipv4.make ~ttl ~protocol:Ipv4.proto_icmp ~src:src_ip ~dst:dst_ip
       (Icmp.to_wire i))

let ospf ~src_mac ~dst_mac ~src_ip ~dst_ip o =
  ipv4 ~src_mac ~dst_mac
    (Ipv4.make ~ttl:1 ~protocol:Ipv4.proto_ospf ~src:src_ip ~dst:dst_ip
       (Ospf_pkt.to_wire o))

module Cursor = struct
  type c = {
    er : Wire.Reader.t;
    mutable dst : int;
    mutable src : int;
    mutable ethertype : int;
    ip : Ipv4.Cursor.c;
    udp : Udp.Cursor.c;
  }

  let create () =
    {
      er = Wire.Reader.of_string "";
      dst = 0;
      src = 0;
      ethertype = 0;
      ip = Ipv4.Cursor.create ();
      udp = Udp.Cursor.create ();
    }

  let parse_udp c frame =
    try
      let r = c.er in
      Wire.Reader.reset r frame;
      c.dst <- Wire.Reader.u48_int r;
      c.src <- Wire.Reader.u48_int r;
      c.ethertype <- Wire.Reader.u16 r;
      c.ethertype = Ethernet.ethertype_ipv4
      && Ipv4.Cursor.parse_into c.ip frame ~pos:Ethernet.header_size
           ~len:(String.length frame - Ethernet.header_size)
      && c.ip.Ipv4.Cursor.protocol = Ipv4.proto_udp
      && Udp.Cursor.parse_into c.udp frame ~pos:c.ip.Ipv4.Cursor.payload_off
           ~len:c.ip.Ipv4.Cursor.payload_len
    with Wire.Truncated -> false
end

let pp ppf t =
  match t.l3 with
  | Arp a -> Arp.pp ppf a
  | Lldp l -> Lldp.pp ppf l
  | Ipv4 (ip, Udp u) ->
      Format.fprintf ppf "%a / %a" Ipv4.pp ip Udp.pp u
  | Ipv4 (ip, Tcp tc) -> Format.fprintf ppf "%a / %a" Ipv4.pp ip Tcp.pp tc
  | Ipv4 (ip, Icmp i) -> Format.fprintf ppf "%a / %a" Ipv4.pp ip Icmp.pp i
  | Ipv4 (ip, Ospf o) -> Format.fprintf ppf "%a / %a" Ipv4.pp ip Ospf_pkt.pp o
  | Ipv4 (ip, Raw_l4 _) -> Ipv4.pp ppf ip
  | Raw_l3 _ -> Ethernet.pp ppf t.eth
