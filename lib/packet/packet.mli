(** Whole-frame parsing and construction.

    [parse] turns raw Ethernet bytes into a structured view, descending
    into ARP / LLDP / IPv4 and then UDP / TCP / ICMP / OSPF. Builders
    assemble complete frames from the top down. *)

type l4 =
  | Udp of Udp.t
  | Tcp of Tcp.t
  | Icmp of Icmp.t
  | Ospf of Ospf_pkt.t
  | Raw_l4 of { protocol : int; data : string }

type l3 =
  | Arp of Arp.t
  | Ipv4 of Ipv4.t * l4
  | Lldp of Lldp.t
  | Raw_l3 of { ethertype : int; data : string }

type t = { eth : Ethernet.t; l3 : l3 }

val parse : string -> (t, string) result
(** Parse errors at inner layers degrade to [Raw_l3] / [Raw_l4] only
    when the ethertype/protocol is unknown; malformed known protocols
    produce [Error]. *)

(** {1 Builders — return full frame bytes} *)

val arp : src:Mac.t -> dst:Mac.t -> Arp.t -> string

val lldp : src:Mac.t -> Lldp.t -> string
(** Sent to the LLDP nearest-bridge multicast address. *)

val ipv4 :
  src_mac:Mac.t -> dst_mac:Mac.t -> Ipv4.t -> string

val udp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ipv4_addr.t ->
  dst_ip:Ipv4_addr.t ->
  ?ttl:int ->
  Udp.t ->
  string

val icmp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ipv4_addr.t ->
  dst_ip:Ipv4_addr.t ->
  ?ttl:int ->
  Icmp.t ->
  string

val ospf :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ipv4_addr.t ->
  dst_ip:Ipv4_addr.t ->
  Ospf_pkt.t ->
  string
(** OSPF rides directly on IPv4 with TTL 1. *)

val pp : Format.formatter -> t -> unit

(** Zero-allocation fast path for the one shape the data plane decodes
    per forwarded packet: Ethernet / IPv4 / UDP. A cursor is allocated
    once and reused; parsing writes plain [int] fields only. *)
module Cursor : sig
  type c = {
    er : Wire.Reader.t;
    mutable dst : int;  (** MACs as 48-bit ints *)
    mutable src : int;
    mutable ethertype : int;
    ip : Ipv4.Cursor.c;
    udp : Udp.Cursor.c;
  }

  val create : unit -> c

  val parse_udp : c -> string -> bool
  (** [true] exactly when {!parse} would succeed with an
      [Ipv4 (_, Udp _)] body (same header, checksum and length
      validation); the cursor sub-records then hold the decoded
      fields. Allocates nothing. *)
end
