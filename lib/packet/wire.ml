exception Truncated

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(initial = 64) () = { buf = Bytes.create initial; len = 0 }

  let length w = w.len

  let ensure w n =
    let needed = w.len + n in
    if needed > Bytes.length w.buf then begin
      let cap = ref (2 * Bytes.length w.buf) in
      while needed > !cap do
        cap := 2 * !cap
      done;
      let buf = Bytes.create !cap in
      Bytes.blit w.buf 0 buf 0 w.len;
      w.buf <- buf
    end

  let u8 w v =
    ensure w 1;
    Bytes.unsafe_set w.buf w.len (Char.chr (v land 0xff));
    w.len <- w.len + 1

  let u16 w v =
    u8 w (v lsr 8);
    u8 w v

  let u32 w v =
    u16 w (Int32.to_int (Int32.shift_right_logical v 16));
    u16 w (Int32.to_int v land 0xffff)

  let u64 w v =
    u32 w (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 w (Int64.to_int32 v)

  let bytes w s =
    let n = String.length s in
    ensure w n;
    Bytes.blit_string s 0 w.buf w.len n;
    w.len <- w.len + n

  let zeros w n =
    ensure w n;
    Bytes.fill w.buf w.len n '\000';
    w.len <- w.len + n

  let contents w = Bytes.sub_string w.buf 0 w.len

  let patch_u16 w off v =
    if off < 0 || off + 2 > w.len then invalid_arg "Writer.patch_u16";
    Bytes.set w.buf off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set w.buf (off + 1) (Char.chr (v land 0xff))
end

module Reader = struct
  type t = { mutable src : string; mutable pos : int; mutable limit : int }

  let of_string ?(pos = 0) ?len src =
    let limit =
      match len with Some l -> pos + l | None -> String.length src
    in
    if pos < 0 || limit > String.length src || pos > limit then
      invalid_arg "Reader.of_string";
    { src; pos; limit }

  (* Re-aim an existing reader without allocating: the basis of the
     preallocated-cursor decode paths. *)
  let reset r src =
    r.src <- src;
    r.pos <- 0;
    r.limit <- String.length src

  let reset_window r src pos len =
    let limit = pos + len in
    if pos < 0 || len < 0 || limit > String.length src then
      invalid_arg "Reader.reset_window";
    r.src <- src;
    r.pos <- pos;
    r.limit <- limit

  let remaining r = r.limit - r.pos

  let pos r = r.pos

  let check r n = if r.pos + n > r.limit then raise Truncated

  let u8 r =
    check r 1;
    let v = Char.code (String.unsafe_get r.src r.pos) in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    check r 2;
    let s = r.src and p = r.pos in
    r.pos <- p + 2;
    (Char.code (String.unsafe_get s p) lsl 8)
    lor Char.code (String.unsafe_get s (p + 1))

  let u32_int r =
    check r 4;
    let s = r.src and p = r.pos in
    r.pos <- p + 4;
    (Char.code (String.unsafe_get s p) lsl 24)
    lor (Char.code (String.unsafe_get s (p + 1)) lsl 16)
    lor (Char.code (String.unsafe_get s (p + 2)) lsl 8)
    lor Char.code (String.unsafe_get s (p + 3))

  let u48_int r =
    check r 6;
    let hi = u16 r in
    let mid = u16 r in
    let lo = u16 r in
    (hi lsl 32) lor (mid lsl 16) lor lo

  let u32 r =
    let hi = u16 r in
    let lo = u16 r in
    Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo)

  let u64 r =
    let hi = u32 r in
    let lo = u32 r in
    Int64.logor
      (Int64.shift_left (Int64.of_int32 hi) 32)
      (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)

  let bytes r n =
    check r n;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let skip r n =
    check r n;
    r.pos <- r.pos + n

  let rest r = bytes r (remaining r)

  let sub r n =
    check r n;
    let sub_reader = { src = r.src; pos = r.pos; limit = r.pos + n } in
    r.pos <- r.pos + n;
    sub_reader
end

let checksum_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Wire.checksum_sub";
  let stop = pos + len in
  let sum = ref 0 in
  let i = ref pos in
  while !i + 1 < stop do
    sum :=
      !sum
      + (Char.code (String.unsafe_get s !i) lsl 8)
      + Char.code (String.unsafe_get s (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (String.unsafe_get s !i) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let checksum s = checksum_sub s ~pos:0 ~len:(String.length s)
