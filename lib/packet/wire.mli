(** Cursor-based binary reader/writer (network byte order).

    All protocol codecs in this repository are built on this module.
    Readers raise [Truncated] when the input is shorter than the field
    being read; codecs translate that into a parse error. *)

exception Truncated
(** Raised by [Reader] operations that run past the end of input. *)

module Writer : sig
  type t

  val create : ?initial:int -> unit -> t

  val length : t -> int

  val u8 : t -> int -> unit
  (** Writes the low 8 bits. *)

  val u16 : t -> int -> unit
  (** Big-endian, low 16 bits. *)

  val u32 : t -> int32 -> unit

  val u64 : t -> int64 -> unit

  val bytes : t -> string -> unit
  (** Appends raw bytes. *)

  val zeros : t -> int -> unit
  (** Appends [n] zero bytes (padding). *)

  val contents : t -> string

  val patch_u16 : t -> int -> int -> unit
  (** [patch_u16 w off v] overwrites two bytes at offset [off]; used to
      backfill length fields. *)
end

module Reader : sig
  type t

  val of_string : ?pos:int -> ?len:int -> string -> t

  val reset : t -> string -> unit
  (** Re-aims an existing reader at a whole string without allocating;
      the basis of preallocated-cursor decoding. *)

  val reset_window : t -> string -> int -> int -> unit
  (** [reset_window r s pos len] re-aims [r] at [s.[pos .. pos+len-1]].
      Raises [Invalid_argument] if the window is out of bounds. *)

  val remaining : t -> int

  val pos : t -> int
  (** Absolute offset within the underlying string. *)

  val u8 : t -> int

  val u16 : t -> int

  val u32 : t -> int32

  val u32_int : t -> int
  (** Big-endian 32-bit read as a plain non-negative [int]; avoids the
      boxed [int32] on hot decode paths. *)

  val u48_int : t -> int
  (** Big-endian 48-bit read as a plain [int] (MAC addresses). *)

  val u64 : t -> int64

  val bytes : t -> int -> string

  val skip : t -> int -> unit

  val rest : t -> string
  (** All remaining bytes; the reader ends up empty. *)

  val sub : t -> int -> t
  (** [sub r n] is a reader over the next [n] bytes, which are consumed
      from [r]. *)
end

val checksum : string -> int
(** RFC 1071 Internet checksum of a byte string. *)

val checksum_sub : string -> pos:int -> len:int -> int
(** [checksum] over a substring without copying it out. *)
