type t = { src_port : int; dst_port : int; payload : string }

let make ~src_port ~dst_port payload = { src_port; dst_port; payload }

let to_wire t =
  let w = Wire.Writer.create ~initial:(8 + String.length t.payload) () in
  Wire.Writer.u16 w t.src_port;
  Wire.Writer.u16 w t.dst_port;
  Wire.Writer.u16 w (8 + String.length t.payload);
  Wire.Writer.u16 w 0;
  Wire.Writer.bytes w t.payload;
  Wire.Writer.contents w

let of_wire s =
  try
    let r = Wire.Reader.of_string s in
    let src_port = Wire.Reader.u16 r in
    let dst_port = Wire.Reader.u16 r in
    let len = Wire.Reader.u16 r in
    let _checksum = Wire.Reader.u16 r in
    if len < 8 || len > String.length s then Error "udp: bad length"
    else Ok { src_port; dst_port; payload = Wire.Reader.bytes r (len - 8) }
  with Wire.Truncated -> Error "udp: truncated"

let pp ppf t =
  Format.fprintf ppf "udp %d -> %d len=%d" t.src_port t.dst_port
    (String.length t.payload)

module Cursor = struct
  type c = {
    r : Wire.Reader.t;
    mutable src_port : int;
    mutable dst_port : int;
    mutable payload_off : int;
    mutable payload_len : int;
  }

  let create () =
    {
      r = Wire.Reader.of_string "";
      src_port = 0;
      dst_port = 0;
      payload_off = 0;
      payload_len = 0;
    }

  let parse_into c s ~pos ~len =
    try
      let r = c.r in
      Wire.Reader.reset_window r s pos len;
      c.src_port <- Wire.Reader.u16 r;
      c.dst_port <- Wire.Reader.u16 r;
      let l = Wire.Reader.u16 r in
      let _checksum = Wire.Reader.u16 r in
      if l < 8 || l > len then false
      else begin
        c.payload_off <- pos + 8;
        c.payload_len <- l - 8;
        true
      end
    with Wire.Truncated -> false
end
