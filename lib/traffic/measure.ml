type sample = { s_sent : Rf_sim.Vtime.t; s_weight : int; s_bytes : int }

type flow = {
  f_id : int;
  f_class : string;
  f_src : string;
  f_dst : string;
  mutable f_offered : int;  (* weighted packets *)
  mutable f_delivered : int;
  mutable f_lost : int;
  mutable f_offered_samples : int;
  mutable f_delivered_samples : int;
  mutable f_late : int;  (* samples arriving after being declared lost *)
  mutable f_bytes : int;  (* weighted delivered bytes *)
  mutable f_outstanding : (int * sample) list;  (* newest first *)
  mutable f_first_loss : Rf_sim.Vtime.t option;
  mutable f_last_loss : Rf_sim.Vtime.t option;
  mutable f_disruption_span : int option;
  mutable f_closed : bool;  (* no more probes will be sent *)
  mutable f_watched : bool;
}

type cls_state = {
  k_name : string;
  k_latency : Rf_sim.Stats.series;
  k_offered : Rf_obs.Metrics.counter;
  k_delivered : Rf_obs.Metrics.counter;
  k_lost : Rf_obs.Metrics.counter;
  k_hist : Rf_obs.Metrics.histogram;
}

type t = {
  engine : Rf_sim.Engine.t;
  loss_timeout : Rf_sim.Vtime.span;
  by_id : (int, flow) Hashtbl.t;
  cls_tbl : (string, cls_state) Hashtbl.t;
  mutable cls_order : cls_state list;  (* reverse creation order *)
  mutable all_flows : flow list;  (* reverse creation order *)
  mutable watched : flow list;  (* flows with probes possibly in flight *)
  mutable next_id : int;
  mutable reaper : Rf_sim.Engine.timer option;
  mutable finalized : bool;
}

let reap_period = Rf_sim.Vtime.span_ms 500

let create engine ~loss_timeout_s () =
  {
    engine;
    loss_timeout = Rf_sim.Vtime.span_s loss_timeout_s;
    by_id = Hashtbl.create 1024;
    cls_tbl = Hashtbl.create 8;
    cls_order = [];
    all_flows = [];
    watched = [];
    next_id = 0;
    reaper = None;
    finalized = false;
  }

let cls_state t name =
  match Hashtbl.find_opt t.cls_tbl name with
  | Some k -> k
  | None ->
      let m = Rf_sim.Engine.metrics t.engine in
      let labels = [ ("class", name) ] in
      let k =
        {
          k_name = name;
          k_latency = Rf_sim.Stats.series ();
          k_offered =
            Rf_obs.Metrics.counter m ~labels
              ~help:"Weighted data-plane packets offered"
              "traffic_offered_packets_total";
          k_delivered =
            Rf_obs.Metrics.counter m ~labels
              ~help:"Weighted data-plane packets delivered"
              "traffic_delivered_packets_total";
          k_lost =
            Rf_obs.Metrics.counter m ~labels
              ~help:"Weighted data-plane packets lost"
              "traffic_lost_packets_total";
          k_hist =
            Rf_obs.Metrics.histogram m ~labels
              ~help:"Probe one-way delay" "traffic_latency_seconds";
        }
      in
      Hashtbl.replace t.cls_tbl name k;
      t.cls_order <- k :: t.cls_order;
      k

let register_flow t ~cls ~src ~dst =
  ignore (cls_state t cls);
  let f =
    {
      f_id = t.next_id;
      f_class = cls;
      f_src = src;
      f_dst = dst;
      f_offered = 0;
      f_delivered = 0;
      f_lost = 0;
      f_offered_samples = 0;
      f_delivered_samples = 0;
      f_late = 0;
      f_bytes = 0;
      f_outstanding = [];
      f_first_loss = None;
      f_last_loss = None;
      f_disruption_span = None;
      f_closed = false;
      f_watched = false;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.by_id f.f_id f;
  t.all_flows <- f :: t.all_flows;
  f

let flow_id f = f.f_id

let mark_lost t f (s : sample) =
  f.f_lost <- f.f_lost + s.s_weight;
  Rf_obs.Metrics.incr ~by:s.s_weight (cls_state t f.f_class).k_lost;
  (match f.f_first_loss with
  | None -> f.f_first_loss <- Some s.s_sent
  | Some w ->
      if Rf_sim.Vtime.compare s.s_sent w < 0 then f.f_first_loss <- Some s.s_sent);
  (match f.f_last_loss with
  | None -> f.f_last_loss <- Some s.s_sent
  | Some w ->
      if Rf_sim.Vtime.compare s.s_sent w > 0 then f.f_last_loss <- Some s.s_sent);
  if f.f_disruption_span = None then begin
    let tracer = Rf_sim.Engine.tracer t.engine in
    let id =
      Rf_obs.Tracer.span_start tracer
        ~start_us:(Rf_sim.Vtime.to_us s.s_sent)
        ~attrs:
          [
            ("class", f.f_class);
            ("flow", string_of_int f.f_id);
            ("src", f.f_src);
            ("dst", f.f_dst);
          ]
        "traffic.disruption"
    in
    f.f_disruption_span <- Some id
  end

let close_disruption t f =
  match f.f_disruption_span with
  | None -> ()
  | Some id ->
      Rf_obs.Tracer.span_end
        (Rf_sim.Engine.tracer t.engine)
        ~attrs:[ ("lost_packets", string_of_int f.f_lost) ]
        id;
      f.f_disruption_span <- None

(* Declare outstanding samples older than [loss_timeout] lost. With
   [all_outstanding] every sample still in flight is reaped (end of
   run). *)
let reap_flow t ?(all_outstanding = false) f ~now =
  match f.f_outstanding with
  | [] -> ()
  | outstanding ->
      let deadline = Rf_sim.Vtime.add now (Rf_sim.Vtime.span_scale (-1.0) t.loss_timeout) in
      let kept, lost =
        List.partition
          (fun (_, s) ->
            (not all_outstanding) && Rf_sim.Vtime.compare s.s_sent deadline > 0)
          outstanding
      in
      if lost <> [] then begin
        (* Oldest first, so the disruption span opens at the earliest
           lost probe. *)
        List.iter (fun (_, s) -> mark_lost t f s) (List.rev lost);
        f.f_outstanding <- kept
      end

let sent t f ~seq ~weight ~bytes =
  let now = Rf_sim.Engine.now t.engine in
  f.f_offered <- f.f_offered + weight;
  f.f_offered_samples <- f.f_offered_samples + 1;
  f.f_outstanding <-
    (seq, { s_sent = now; s_weight = weight; s_bytes = bytes })
    :: f.f_outstanding;
  Rf_obs.Metrics.incr ~by:weight (cls_state t f.f_class).k_offered;
  if not f.f_watched then begin
    f.f_watched <- true;
    t.watched <- f :: t.watched
  end;
  if t.reaper = None && not t.finalized then
    t.reaper <-
      Some
        (Rf_sim.Engine.periodic
           ~entity:(Rf_obs.Profiler.component "measure")
           t.engine reap_period (fun () ->
             let now = Rf_sim.Engine.now t.engine in
             t.watched <-
               List.filter
                 (fun f ->
                   reap_flow t f ~now;
                   not (f.f_closed && f.f_outstanding = []))
                 t.watched))

let delivered t ~flow_id ~seq =
  match Hashtbl.find_opt t.by_id flow_id with
  | None -> ()
  | Some f -> (
      match List.assoc_opt seq f.f_outstanding with
      | None ->
          (* Duplicate, or arrived after being declared lost: the
             original verdict stands so conservation holds. *)
          f.f_late <- f.f_late + 1
      | Some s ->
          let now = Rf_sim.Engine.now t.engine in
          f.f_outstanding <-
            List.filter (fun (q, _) -> q <> seq) f.f_outstanding;
          f.f_delivered <- f.f_delivered + s.s_weight;
          f.f_delivered_samples <- f.f_delivered_samples + 1;
          f.f_bytes <- f.f_bytes + s.s_bytes;
          let k = cls_state t f.f_class in
          Rf_obs.Metrics.incr ~by:s.s_weight k.k_delivered;
          let latency =
            Rf_sim.Vtime.span_to_s (Rf_sim.Vtime.diff now s.s_sent)
          in
          Rf_sim.Stats.add k.k_latency latency;
          Rf_obs.Metrics.observe k.k_hist latency;
          close_disruption t f)

let close_flow f = f.f_closed <- true

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    (match t.reaper with
    | Some timer ->
        Rf_sim.Engine.cancel timer;
        t.reaper <- None
    | None -> ());
    let now = Rf_sim.Engine.now t.engine in
    List.iter
      (fun f ->
        f.f_closed <- true;
        reap_flow t ~all_outstanding:true f ~now;
        close_disruption t f)
      t.watched;
    t.watched <- []
  end

(** {1 Summaries} *)

type class_summary = {
  cs_class : string;
  cs_flows : int;
  cs_offered : int;
  cs_delivered : int;
  cs_lost : int;
  cs_late : int;
  cs_bytes : int;
  cs_latency : Rf_sim.Stats.summary option;
  cs_disrupted_flows : int;
  cs_window : (float * float) option;
}

let flows t = List.rev t.all_flows

let flow_count t = t.next_id

let window_of_flow f =
  match (f.f_first_loss, f.f_last_loss) with
  | Some a, Some b -> Some (Rf_sim.Vtime.to_s a, Rf_sim.Vtime.to_s b)
  | _ -> None

let merge_window acc w =
  match (acc, w) with
  | None, w -> w
  | acc, None -> acc
  | Some (a1, b1), Some (a2, b2) -> Some (min a1 a2, max b1 b2)

let class_summary t name =
  let k = cls_state t name in
  let init =
    {
      cs_class = name;
      cs_flows = 0;
      cs_offered = 0;
      cs_delivered = 0;
      cs_lost = 0;
      cs_late = 0;
      cs_bytes = 0;
      cs_latency = Rf_sim.Stats.summarize k.k_latency;
      cs_disrupted_flows = 0;
      cs_window = None;
    }
  in
  List.fold_left
    (fun acc f ->
      if not (String.equal f.f_class name) then acc
      else
        {
          acc with
          cs_flows = acc.cs_flows + 1;
          cs_offered = acc.cs_offered + f.f_offered;
          cs_delivered = acc.cs_delivered + f.f_delivered;
          cs_lost = acc.cs_lost + f.f_lost;
          cs_late = acc.cs_late + f.f_late;
          cs_bytes = acc.cs_bytes + f.f_bytes;
          cs_disrupted_flows =
            (acc.cs_disrupted_flows + if f.f_lost > 0 then 1 else 0);
          cs_window = merge_window acc.cs_window (window_of_flow f);
        })
    init (flows t)

let summaries t =
  List.rev_map (fun k -> class_summary t k.k_name) t.cls_order

let total_offered t =
  List.fold_left (fun acc f -> acc + f.f_offered) 0 t.all_flows

let total_delivered t =
  List.fold_left (fun acc f -> acc + f.f_delivered) 0 t.all_flows

let total_lost t = List.fold_left (fun acc f -> acc + f.f_lost) 0 t.all_flows

let disruption_window t =
  List.fold_left
    (fun acc f -> merge_window acc (window_of_flow f))
    None t.all_flows

let disruption_seconds t =
  match disruption_window t with Some (a, b) -> b -. a | None -> 0.0

let disrupted_flows t =
  List.fold_left
    (fun acc f -> acc + if f.f_lost > 0 then 1 else 0)
    0 t.all_flows
