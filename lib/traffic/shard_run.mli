(** Sharded execution of aggregated-fabric traffic runs.

    Runs a {!Spec} workload on a {!Rf_sim.Shard_engine} instead of a
    single engine, partitioned by a host→shard assignment. The flow
    *schedule* — which flows start when, between which pair, with which
    probe weights — is expanded up front by a sequential pass that
    consumes the generator RNG stream exactly as {!Generator.start}
    would (same [Rng.split] per class, same pick/size/exponential draw
    order), so the schedule is one fixed object regardless of shard
    count. Each flow's probe pacing is then RNG-free and runs as events
    on its source host's shard; probes travel to the destination shard
    through the engine's deterministic mailbox and are accounted on
    arrival by the shard that owns the flow (the destination's).

    Equivalence with the legacy single-engine path holds under two
    preconditions this module validates:

    - every pair latency is positive (a zero-latency cross-shard pair
      would leave no conservative-lookahead horizon), and
    - every pair latency is below the spec's loss timeout, so the
      legacy reaper could never have declared an in-flight probe lost —
      losses happen only at the horizon, which the sharded runner
      reproduces exactly: a probe sent at [s] with path latency [L] is
      delivered iff [s + L <= horizon], otherwise it is declared lost
      with loss envelope at [s], matching {!Measure.finalize}.

    Integer results (flows, offered, delivered, lost, bytes, loss
    windows) are byte-identical for any shard count; latency summaries
    are folded over canonically sorted samples, so they too are
    byte-identical across shard counts (and agree with the legacy path
    up to float summation order). *)

type result = {
  sr_shards : int;
  sr_mode : Rf_sim.Shard_engine.mode;
  sr_lookahead : Rf_sim.Vtime.span;
      (** min cross-shard pair latency (1 ms when nothing crosses) *)
  sr_flows : int;
  sr_samples : int;  (** probes actually sent by the horizon *)
  sr_offered : int;  (** weighted packets; = delivered + lost *)
  sr_delivered : int;
  sr_lost : int;
  sr_classes : Measure.class_summary list;  (** in spec class order *)
  sr_events : int;
  sr_windows : int;  (** conservative windows executed *)
  sr_cross_msgs : int;  (** probes that crossed a shard boundary *)
  sr_digest : string;
      (** MD5 over the canonical per-flow dump + class summaries +
          totals + final clock — virtual-clock-only, so equal digests
          mean equal runs *)
  sr_fingerprint : string;
      (** MD5 over class summaries + totals only (the stable summary
          fingerprinted by CI) *)
  sr_elapsed_s : float;  (** wall-clock; never part of the digest *)
  sr_profile : Rf_obs.Profiler.snapshot option;
      (** merged over shards when [profile] was requested *)
}

val run :
  ?seed:int ->
  ?mode:Rf_sim.Shard_engine.mode ->
  ?profile:bool ->
  shards:int ->
  assign:(string -> int) ->
  latency:(src:string -> dst:string -> Rf_sim.Vtime.span) ->
  horizon_s:float ->
  rng:Rf_sim.Rng.t ->
  Spec.t ->
  result
(** [assign] maps a host name to its shard in [0, shards); [latency]
    gives the analytic path latency per pair (the aggregated-fabric
    model — probes are not routed through a network). [rng] is the
    generator stream the legacy path would receive; [seed] (default 42)
    seeds the per-shard engines. Raises [Invalid_argument] when an
    assignment falls outside [0, shards), when a pair latency is
    non-positive or at least the spec's loss timeout, or (via
    {!Rf_sim.Shard_engine.create}) when the induced lookahead is not
    positive. *)
