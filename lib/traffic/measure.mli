(** The measurement plane: per-flow loss / latency / goodput accounting
    and disruption-window detection.

    Generators declare probes with {!sent}; fabrics (or live host UDP
    handlers) report arrivals with {!delivered}. A periodic reaper
    declares probes lost once they are older than the spec's loss
    timeout; a flow's *disruption window* is the virtual-time envelope
    of its lost probes' send times, also emitted as a
    ["traffic.disruption"] span on the engine tracer (opened at the
    first loss, closed at the first delivery after the losses — the
    observed recovery). Latencies feed the engine's metrics registry
    (log-bucket [traffic_latency_seconds] histogram plus
    offered/delivered/lost counters, labelled by class).

    All counting is in *weighted* packets: a probe carrying weight w
    stands for w packets of its aggregated flow, so offered =
    delivered + lost holds exactly after {!finalize}. *)

type t

type flow

val create : Rf_sim.Engine.t -> loss_timeout_s:float -> unit -> t

val register_flow : t -> cls:string -> src:string -> dst:string -> flow

val flow_id : flow -> int

val sent : t -> flow -> seq:int -> weight:int -> bytes:int -> unit
(** Record a probe handed to the fabric at the current instant. *)

val delivered : t -> flow_id:int -> seq:int -> unit
(** Record a probe arrival. Unknown flows, duplicates and probes
    already declared lost are counted as late and otherwise ignored, so
    conservation is preserved. *)

val close_flow : flow -> unit
(** The generator will send no more probes for this flow; once its
    outstanding probes resolve the reaper stops tracking it. *)

val finalize : t -> unit
(** Stop the reaper, declare every still-outstanding probe lost and
    close open disruption spans. Call once, after the run's horizon. *)

(** {1 Summaries} *)

type class_summary = {
  cs_class : string;
  cs_flows : int;
  cs_offered : int;  (** weighted packets *)
  cs_delivered : int;
  cs_lost : int;
  cs_late : int;  (** duplicate / post-verdict arrivals (samples) *)
  cs_bytes : int;  (** weighted goodput, bytes *)
  cs_latency : Rf_sim.Stats.summary option;
  cs_disrupted_flows : int;
  cs_window : (float * float) option;
      (** loss envelope in seconds of virtual time *)
}

val flows : t -> flow list
(** In registration order. *)

val flow_count : t -> int

val class_summary : t -> string -> class_summary

val summaries : t -> class_summary list
(** One per class, in first-registration order. *)

val total_offered : t -> int

val total_delivered : t -> int

val total_lost : t -> int

val disruption_window : t -> (float * float) option
(** Envelope over all flows; [None] when no probe was lost. *)

val disruption_seconds : t -> float
(** Envelope duration, 0 when no loss. *)

val disrupted_flows : t -> int
