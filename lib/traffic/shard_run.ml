module Vtime = Rf_sim.Vtime
module Rng = Rf_sim.Rng
module Engine = Rf_sim.Engine
module Shard_engine = Rf_sim.Shard_engine
module Stats = Rf_sim.Stats

(* --- Phase 0: sequential expansion of the spec into a flow schedule --

   This replicates Generator.start's RNG consumption draw for draw
   (one Rng.split per class in class order; for Poisson classes a
   pick, a size draw and an exponential gap per arrival), so the
   schedule below is byte-identical to what the legacy generator
   would have executed — and, being computed before any shard exists,
   identical for every shard count. *)

type flow_plan = {
  fp_id : int;
  fp_cls : int;  (* index into the spec's class list *)
  fp_src : string;
  fp_dst : string;
  fp_start : Vtime.t;
  fp_probes : (Vtime.span * int) array;  (* (offset from start, weight) *)
}

(* Mirrors Generator.weights_for: S packets as K = min(S, cap) probes
   whose integer weights sum to S. *)
let weights_for ~sample_cap size =
  let k = max 1 (min size sample_cap) in
  let base = size / k and rem = size mod k in
  Array.init k (fun i -> base + if i < rem then 1 else 0)

(* Offsets accumulate span-by-span exactly as the legacy probe chain
   does (each hop adds the same rounded span), so probe instants match
   the event times the single-engine run would produce. *)
let paced_probes ~weights ~gap_s =
  let gap = Vtime.span_s gap_s in
  let off = ref Vtime.span_zero in
  Array.mapi
    (fun i w ->
      if i > 0 then off := Vtime.span_add !off gap;
      (!off, w))
    weights

let on_off_probes ~rate_pps ~on_s ~off_s ~duration_s =
  let period = 1.0 /. rate_pps in
  let cycle = on_s +. off_s in
  let probes = ref [] in
  let off = ref Vtime.span_zero in
  let off_t = ref 0.0 in
  while !off_t < duration_s do
    let pos = Float.rem !off_t cycle in
    let next_t =
      if pos < on_s then begin
        probes := (!off, 1) :: !probes;
        !off_t +. period
      end
      else !off_t -. pos +. cycle
    in
    off := Vtime.span_add !off (Vtime.span_s (next_t -. !off_t));
    off_t := next_t
  done;
  Array.of_list (List.rev !probes)

let expand ~rng (spec : Spec.t) =
  let plans = ref [] in
  let next_id = ref 0 in
  let emit cls_i ~src ~dst ~start probes =
    plans :=
      {
        fp_id = !next_id;
        fp_cls = cls_i;
        fp_src = src;
        fp_dst = dst;
        fp_start = start;
        fp_probes = probes;
      }
      :: !plans;
    incr next_id
  in
  List.iteri
    (fun cls_i (c : Spec.cls) ->
      let class_rng = Rng.split rng in
      let start = Vtime.of_s c.Spec.c_start_s in
      match c.Spec.c_kind with
      | Spec.Cbr { rate_pps; duration_s } ->
          let period = 1.0 /. rate_pps in
          let n = max 1 (int_of_float (duration_s *. rate_pps)) in
          let probes = paced_probes ~weights:(Array.make n 1) ~gap_s:period in
          List.iter
            (fun (src, dst) -> emit cls_i ~src ~dst ~start probes)
            c.Spec.c_pairs
      | Spec.On_off { rate_pps; on_s; off_s; duration_s } ->
          let probes = on_off_probes ~rate_pps ~on_s ~off_s ~duration_s in
          List.iter
            (fun (src, dst) -> emit cls_i ~src ~dst ~start probes)
            c.Spec.c_pairs
      | Spec.Poisson { arrivals_per_s; size_packets; packet_rate_pps; until_s }
        ->
          let pairs = Array.of_list c.Spec.c_pairs in
          if Array.length pairs = 0 then
            invalid_arg "Shard_run: Poisson class with no pairs";
          let sample_cap = spec.Spec.sample_cap in
          let cur = ref start in
          let live = ref true in
          while !live do
            if Vtime.to_s !cur < until_s then begin
              let src, dst = Rng.pick class_rng pairs in
              let size = Spec.draw_size class_rng size_packets in
              let weights = weights_for ~sample_cap size in
              let duration = float_of_int size /. packet_rate_pps in
              let gap_s = duration /. float_of_int (Array.length weights) in
              emit cls_i ~src ~dst ~start:!cur
                (paced_probes ~weights ~gap_s);
              let gap = Rng.exponential class_rng (1.0 /. arrivals_per_s) in
              cur := Vtime.add !cur (Vtime.span_s gap)
            end
            else live := false
          done)
    spec.Spec.classes;
  List.rev !plans

(* --- Sharded execution ---------------------------------------------- *)

(* Per-flow accounting, owned by the flow's destination shard: only
   that shard's domain touches the record during windows, so no field
   needs synchronisation. *)
type fstate = {
  mutable fs_offered : int;
  mutable fs_offered_samples : int;
  mutable fs_delivered : int;
  mutable fs_delivered_samples : int;
  mutable fs_bytes : int;
  mutable fs_lost : int;
  mutable fs_first_loss : Vtime.t option;
  mutable fs_last_loss : Vtime.t option;
}

type probe_msg = { pm_flow : int; pm_weight : int; pm_sent : Vtime.t }

type result = {
  sr_shards : int;
  sr_mode : Shard_engine.mode;
  sr_lookahead : Vtime.span;
  sr_flows : int;
  sr_samples : int;
  sr_offered : int;
  sr_delivered : int;
  sr_lost : int;
  sr_classes : Measure.class_summary list;
  sr_events : int;
  sr_windows : int;
  sr_cross_msgs : int;
  sr_digest : string;
  sr_fingerprint : string;
  sr_elapsed_s : float;
  sr_profile : Rf_obs.Profiler.snapshot option;
}

let vt_opt_us = function None -> "-" | Some t -> string_of_int (Vtime.to_us t)

let run ?(seed = 42) ?(mode = Shard_engine.Parallel) ?(profile = false) ~shards
    ~assign ~latency ~horizon_s ~rng spec =
  let until_v = Vtime.of_s horizon_s in
  let classes = Array.of_list spec.Spec.classes in
  (* Resolve each distinct pair once: latency, shard endpoints and the
     equivalence preconditions (positive latency below the loss
     timeout — see the interface). The minimum cross-shard latency is
     the engine's conservative lookahead. *)
  let loss_timeout = Vtime.span_s spec.Spec.loss_timeout_s in
  let pair_tbl : (string * string, Vtime.span * int * int) Hashtbl.t =
    Hashtbl.create 1024
  in
  let lookahead = ref None in
  let shard_of host =
    let s = assign host in
    if s < 0 || s >= shards then
      invalid_arg
        (Printf.sprintf "Shard_run: host %s assigned to shard %d outside [0, %d)"
           host s shards);
    s
  in
  let pair_info src dst =
    match Hashtbl.find_opt pair_tbl (src, dst) with
    | Some info -> info
    | None ->
        let l = latency ~src ~dst in
        if Vtime.span_compare l Vtime.span_zero <= 0 then
          invalid_arg
            (Printf.sprintf "Shard_run: non-positive latency on pair %s-%s" src
               dst);
        if Vtime.span_compare l loss_timeout >= 0 then
          invalid_arg
            (Printf.sprintf
               "Shard_run: pair %s-%s latency reaches the loss timeout — the \
                no-reaper shard model is not equivalent to the legacy run"
               src dst);
        let ss = shard_of src and ds = shard_of dst in
        if ss <> ds then
          lookahead :=
            Some
              (match !lookahead with
              | None -> l
              | Some la -> if Vtime.span_compare l la < 0 then l else la);
        let info = (l, ss, ds) in
        Hashtbl.add pair_tbl (src, dst) info;
        info
  in
  Array.iter
    (fun (c : Spec.cls) ->
      List.iter (fun (src, dst) -> ignore (pair_info src dst)) c.Spec.c_pairs)
    classes;
  let lookahead =
    match !lookahead with Some la -> la | None -> Vtime.span_ms 1
  in
  let plans =
    expand ~rng spec
    |> List.filter (fun p -> Vtime.(p.fp_start <= until_v))
    |> Array.of_list
  in
  let states =
    Array.map
      (fun _ ->
        {
          fs_offered = 0;
          fs_offered_samples = 0;
          fs_delivered = 0;
          fs_delivered_samples = 0;
          fs_bytes = 0;
          fs_lost = 0;
          fs_first_loss = None;
          fs_last_loss = None;
        })
      plans
  in
  let se = Shard_engine.create ~seed ~mode ~lookahead ~shards () in
  let profilers =
    if not profile then [||]
    else
      Array.init shards (fun i ->
          let p = Rf_obs.Profiler.create () in
          Engine.set_profiler (Shard_engine.engine se i) (Some p);
          p)
  in
  let host_entity =
    if not profile then fun _ _ -> None
    else begin
      (* Entity handles carry inline counters, so each shard needs its
         own — sharing one across domains would race. Profiler.merge
         re-unifies them by id afterwards. *)
      let tbls = Array.init shards (fun _ -> Hashtbl.create 64) in
      fun shard name ->
        let tbl = tbls.(shard) in
        match Hashtbl.find_opt tbl name with
        | Some e -> Some e
        | None ->
            let e = Rf_obs.Profiler.host name in
            Hashtbl.replace tbl name e;
            Some e
    end
  in
  (* Latency samples per (dst shard, class): appended only by the
     owning shard's domain, merged canonically afterwards. *)
  let lat_samples =
    Array.init shards (fun _ -> Array.map (fun _ -> ref []) classes)
  in
  (* Probes whose arrival would fall past the horizon, recorded at the
     source at send time ("doomed"): the legacy run would leave them
     outstanding and Measure.finalize would declare them lost. *)
  let doomed = Array.init shards (fun _ -> ref []) in
  let deliver shard ~at (m : probe_msg) =
    let p = plans.(m.pm_flow) in
    let fs = states.(m.pm_flow) in
    let payload = classes.(p.fp_cls).Spec.c_payload in
    fs.fs_offered <- fs.fs_offered + m.pm_weight;
    fs.fs_offered_samples <- fs.fs_offered_samples + 1;
    fs.fs_delivered <- fs.fs_delivered + m.pm_weight;
    fs.fs_delivered_samples <- fs.fs_delivered_samples + 1;
    fs.fs_bytes <- fs.fs_bytes + (m.pm_weight * payload);
    let cell = lat_samples.(shard).(p.fp_cls) in
    cell := Vtime.span_to_s (Vtime.diff at m.pm_sent) :: !cell
  in
  for i = 0 to shards - 1 do
    Shard_engine.set_handler se i (fun ~at ~src:_ m -> deliver i ~at m)
  done;
  (* Schedule every flow's probe chain on its source shard. The chain
     is lazy — each probe schedules the next — so the heap holds one
     pending event per live flow, as the legacy generator's does. *)
  Array.iter
    (fun p ->
      let lat, src_sh, dst_sh = pair_info p.fp_src p.fp_dst in
      let eng = Shard_engine.engine se src_sh in
      let src_entity = host_entity src_sh p.fp_src in
      let n = Array.length p.fp_probes in
      let rec fire i () =
        let off, w = p.fp_probes.(i) in
        let s = Vtime.add p.fp_start off in
        let arr = Vtime.add s lat in
        if Vtime.(arr <= until_v) then
          if src_sh = dst_sh then
            ignore
              (Engine.schedule_at
                 ?entity:(host_entity dst_sh p.fp_dst)
                 eng arr
                 (fun () ->
                   deliver dst_sh ~at:arr
                     { pm_flow = p.fp_id; pm_weight = w; pm_sent = s }))
          else
            Shard_engine.post se ~src:src_sh ~dst:dst_sh ~at:arr
              { pm_flow = p.fp_id; pm_weight = w; pm_sent = s }
        else doomed.(src_sh) := (p.fp_id, w, s) :: !(doomed.(src_sh));
        if i + 1 < n then
          ignore
            (Engine.schedule_at ?entity:src_entity eng
               (Vtime.add p.fp_start (fst p.fp_probes.(i + 1)))
               (fire (i + 1)))
      in
      ignore (Engine.schedule_at ?entity:src_entity eng p.fp_start (fire 0)))
    plans;
  let t0 = Unix.gettimeofday () in
  ignore (Shard_engine.run ~until:until_v se);
  let elapsed = Unix.gettimeofday () -. t0 in
  assert (Shard_engine.undelivered se = []);
  (* Finalize: fold the doomed probes into their flows exactly as
     Measure.finalize would (offered at send, lost at the horizon,
     loss envelope spanning the send times). Field updates commute, so
     the fold order does not matter. *)
  Array.iter
    (fun cell ->
      List.iter
        (fun (flow, w, sent) ->
          let fs = states.(flow) in
          fs.fs_offered <- fs.fs_offered + w;
          fs.fs_offered_samples <- fs.fs_offered_samples + 1;
          fs.fs_lost <- fs.fs_lost + w;
          (match fs.fs_first_loss with
          | None -> fs.fs_first_loss <- Some sent
          | Some t -> if Vtime.(sent < t) then fs.fs_first_loss <- Some sent);
          match fs.fs_last_loss with
          | None -> fs.fs_last_loss <- Some sent
          | Some t -> if Vtime.(t < sent) then fs.fs_last_loss <- Some sent)
        !cell)
    doomed;
  (* Per-class summaries over the merged, canonically sorted latency
     samples: the sort makes the float fold order — and therefore the
     summary bytes — a function of the sample multiset alone. *)
  let class_summaries =
    Array.to_list
      (Array.mapi
         (fun cls_i (c : Spec.cls) ->
           let series = Stats.series () in
           let samples =
             Array.fold_left
               (fun acc row -> List.rev_append !(row.(cls_i)) acc)
               [] lat_samples
             |> List.sort Float.compare
           in
           List.iter (Stats.add series) samples;
           let init =
             {
               Measure.cs_class = c.Spec.c_name;
               cs_flows = 0;
               cs_offered = 0;
               cs_delivered = 0;
               cs_lost = 0;
               cs_late = 0;
               cs_bytes = 0;
               cs_latency = Stats.summarize series;
               cs_disrupted_flows = 0;
               cs_window = None;
             }
           in
           let merge_window acc w =
             match (acc, w) with
             | None, w -> w
             | acc, None -> acc
             | Some (a1, b1), Some (a2, b2) ->
                 Some (Float.min a1 a2, Float.max b1 b2)
           in
           let acc = ref init in
           Array.iteri
             (fun i p ->
               if p.fp_cls = cls_i then begin
                 let fs = states.(i) in
                 let window =
                   match (fs.fs_first_loss, fs.fs_last_loss) with
                   | Some a, Some b -> Some (Vtime.to_s a, Vtime.to_s b)
                   | _ -> None
                 in
                 acc :=
                   {
                     !acc with
                     Measure.cs_flows = !acc.Measure.cs_flows + 1;
                     cs_offered = !acc.Measure.cs_offered + fs.fs_offered;
                     cs_delivered = !acc.Measure.cs_delivered + fs.fs_delivered;
                     cs_lost = !acc.Measure.cs_lost + fs.fs_lost;
                     cs_bytes = !acc.Measure.cs_bytes + fs.fs_bytes;
                     cs_disrupted_flows =
                       (!acc.Measure.cs_disrupted_flows
                       + if fs.fs_lost > 0 then 1 else 0);
                     cs_window = merge_window !acc.Measure.cs_window window;
                   }
               end)
             plans;
           !acc)
         classes)
  in
  let offered = Array.fold_left (fun a fs -> a + fs.fs_offered) 0 states in
  let delivered = Array.fold_left (fun a fs -> a + fs.fs_delivered) 0 states in
  let lost = Array.fold_left (fun a fs -> a + fs.fs_lost) 0 states in
  let samples =
    Array.fold_left (fun a fs -> a + fs.fs_offered_samples) 0 states
  in
  (* Canonical dumps. Everything below is virtual-clock-only, so two
     runs produce the same digest iff they produced the same results. *)
  let summary_buf = Buffer.create 1024 in
  List.iter
    (fun (cs : Measure.class_summary) ->
      Buffer.add_string summary_buf
        (Printf.sprintf
           "c %s flows=%d offered=%d delivered=%d lost=%d bytes=%d \
            disrupted=%d window=%s"
           cs.Measure.cs_class cs.Measure.cs_flows cs.Measure.cs_offered
           cs.Measure.cs_delivered cs.Measure.cs_lost cs.Measure.cs_bytes
           cs.Measure.cs_disrupted_flows
           (match cs.Measure.cs_window with
           | None -> "-"
           | Some (a, b) -> Printf.sprintf "%.6f..%.6f" a b));
      (match cs.Measure.cs_latency with
      | None -> Buffer.add_string summary_buf " latency=-"
      | Some (s : Stats.summary) ->
          Buffer.add_string summary_buf
            (Printf.sprintf " n=%d mean=%.17g p50=%.17g p90=%.17g p99=%.17g"
               s.Stats.count s.Stats.mean s.Stats.p50 s.Stats.p90 s.Stats.p99));
      Buffer.add_char summary_buf '\n')
    class_summaries;
  Buffer.add_string summary_buf
    (Printf.sprintf "t flows=%d samples=%d offered=%d delivered=%d lost=%d clock=%d\n"
       (Array.length plans) samples offered delivered lost
       (Vtime.to_us until_v));
  let flow_buf = Buffer.create (Array.length plans * 64) in
  Array.iteri
    (fun i p ->
      let fs = states.(i) in
      Buffer.add_string flow_buf
        (Printf.sprintf
           "f %d %s %s>%s start=%d off=%d del=%d lost=%d bytes=%d os=%d ds=%d \
            fl=%s ll=%s\n"
           p.fp_id
           classes.(p.fp_cls).Spec.c_name
           p.fp_src p.fp_dst
           (Vtime.to_us p.fp_start)
           fs.fs_offered fs.fs_delivered fs.fs_lost fs.fs_bytes
           fs.fs_offered_samples fs.fs_delivered_samples
           (vt_opt_us fs.fs_first_loss)
           (vt_opt_us fs.fs_last_loss)))
    plans;
  Buffer.add_buffer flow_buf summary_buf;
  let stats = Shard_engine.stats se in
  {
    sr_shards = shards;
    sr_mode = mode;
    sr_lookahead = lookahead;
    sr_flows = Array.length plans;
    sr_samples = samples;
    sr_offered = offered;
    sr_delivered = delivered;
    sr_lost = lost;
    sr_classes = class_summaries;
    sr_events = stats.Shard_engine.st_events;
    sr_windows = stats.Shard_engine.st_windows;
    sr_cross_msgs = stats.Shard_engine.st_messages;
    sr_digest = Digest.to_hex (Digest.string (Buffer.contents flow_buf));
    sr_fingerprint =
      Digest.to_hex (Digest.string (Buffer.contents summary_buf));
    sr_elapsed_s = elapsed;
    sr_profile =
      (if profile then
         Some
           (Rf_obs.Profiler.merge
              (Array.to_list (Array.map Rf_obs.Profiler.snapshot profilers)))
       else None);
  }
