(* A fabric hands out one sender closure per (src, dst, port) pair, so
   endpoint lookups (host resolution, path latency, attribution
   handles) happen once per pair rather than on every probe — Poisson
   classes draw hundreds of thousands of flows from a few thousand
   pairs, and the probe path is the hot path at high arrival rates. *)
type fabric = {
  fab_pair :
    src:string ->
    dst:string ->
    port:int ->
    flow_id:int ->
    seq:int ->
    size:int ->
    unit;
}

let live_fabric measure ~hosts =
  let tbl = Hashtbl.create (List.length hosts * 2) in
  List.iter (fun (name, h) -> Hashtbl.replace tbl name h) hosts;
  let host name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None -> invalid_arg ("Generator.live_fabric: unknown host " ^ name)
  in
  (* Demux deliveries by probe header, not by port: one handler serves
     every class. *)
  List.iter
    (fun (_, h) ->
      Rf_net.Host.set_udp_handler h
        (fun ~src:_ ~src_port:_ ~dst_port:_ ~payload ->
          match Spec.decode_probe payload with
          | Some (flow_id, seq) -> Measure.delivered measure ~flow_id ~seq
          | None -> ()))
    hosts;
  {
    fab_pair =
      (fun ~src ~dst ~port ->
        let src_h = host src in
        let dst_ip = Rf_net.Host.ip (host dst) in
        fun ~flow_id ~seq ~size ->
          Rf_net.Host.send_udp src_h ~dst:dst_ip ~dst_port:port
            (Spec.encode_probe ~flow_id ~seq ~size));
  }

(* With a profiler installed, deliveries are attributed to the
   destination host (cached handles — one per host name). *)
let aggregate_fabric engine measure ~latency =
  let ent =
    match Rf_sim.Engine.profiler engine with
    | None -> fun _ -> None
    | Some _ ->
        let tbl = Hashtbl.create 64 in
        fun name ->
          match Hashtbl.find_opt tbl name with
          | Some opt -> opt
          | None ->
              let opt = Some (Rf_obs.Profiler.host name) in
              Hashtbl.replace tbl name opt;
              opt
  in
  {
    fab_pair =
      (fun ~src ~dst ~port:_ ->
        let lat = latency ~src ~dst in
        let entity = ent dst in
        fun ~flow_id ~seq ~size:_ ->
          ignore
            (Rf_sim.Engine.schedule ?entity engine lat (fun () ->
                 Measure.delivered measure ~flow_id ~seq)));
  }

type t = {
  engine : Rf_sim.Engine.t;
  measure : Measure.t;
  fabric : fabric;
  spec : Spec.t;
  class_entity : Rf_obs.Profiler.entity;
  ent_for : string -> Rf_obs.Profiler.entity option;
  note_for : src:string -> dst:string -> (unit -> unit);
  mutable flows_launched : int;
  mutable samples_sent : int;
}

(* Everything a pair needs at probe time, resolved once. *)
type pair_ctx = {
  pc_src : string;
  pc_dst : string;
  pc_entity : Rf_obs.Profiler.entity option;
  pc_note : unit -> unit;
  pc_send : flow_id:int -> seq:int -> size:int -> unit;
}

let pair_ctx t (c : Spec.cls) (src, dst) =
  {
    pc_src = src;
    pc_dst = dst;
    pc_entity = t.ent_for src;
    pc_note = t.note_for ~src ~dst;
    pc_send = t.fabric.fab_pair ~src ~dst ~port:c.Spec.c_port;
  }

let send t (c : Spec.cls) flow pc ~seq ~weight =
  pc.pc_note ();
  Measure.sent t.measure flow ~seq ~weight ~bytes:(weight * c.Spec.c_payload);
  t.samples_sent <- t.samples_sent + 1;
  pc.pc_send ~flow_id:(Measure.flow_id flow) ~seq ~size:c.Spec.c_payload

let schedule_at_s t at_s f =
  let at = Rf_sim.Vtime.of_s at_s in
  let now = Rf_sim.Engine.now t.engine in
  if Rf_sim.Vtime.compare at now <= 0 then f ()
  else ignore (Rf_sim.Engine.schedule_at ~entity:t.class_entity t.engine at f)

(* One aggregated flow: [weights] probes paced [gap_s] apart starting
   now. *)
let launch_flow t (c : Spec.cls) pc ~weights ~gap_s =
  let flow =
    Measure.register_flow t.measure ~cls:c.Spec.c_name ~src:pc.pc_src
      ~dst:pc.pc_dst
  in
  t.flows_launched <- t.flows_launched + 1;
  let n = Array.length weights in
  let rec probe seq =
    send t c flow pc ~seq ~weight:weights.(seq);
    if seq + 1 < n then
      ignore
        (Rf_sim.Engine.schedule ?entity:pc.pc_entity t.engine
           (Rf_sim.Vtime.span_s gap_s)
           (fun () -> probe (seq + 1)))
    else Measure.close_flow flow
  in
  probe 0

(* Aggregation: S packets represented by K = min(S, sample_cap) probes
   whose integer weights sum to S. *)
let weights_for ~sample_cap size =
  let k = max 1 (min size sample_cap) in
  let base = size / k and rem = size mod k in
  Array.init k (fun i -> base + if i < rem then 1 else 0)

let start_cbr t (c : Spec.cls) ~rate_pps ~duration_s =
  let period = 1.0 /. rate_pps in
  let n = max 1 (int_of_float (duration_s *. rate_pps)) in
  List.iter
    (fun pair ->
      launch_flow t c (pair_ctx t c pair) ~weights:(Array.make n 1)
        ~gap_s:period)
    c.Spec.c_pairs

let start_on_off t (c : Spec.cls) ~rate_pps ~on_s ~off_s ~duration_s =
  let period = 1.0 /. rate_pps in
  let cycle = on_s +. off_s in
  List.iter
    (fun pair ->
      let pc = pair_ctx t c pair in
      let flow =
        Measure.register_flow t.measure ~cls:c.Spec.c_name ~src:pc.pc_src
          ~dst:pc.pc_dst
      in
      t.flows_launched <- t.flows_launched + 1;
      let seq = ref 0 in
      (* [off_t] is the offset in seconds since the class started; the
         step function runs exactly at class start + off_t. *)
      let rec step off_t =
        if off_t >= duration_s then Measure.close_flow flow
        else
          let pos = Float.rem off_t cycle in
          if pos < on_s then begin
            send t c flow pc ~seq:!seq ~weight:1;
            incr seq;
            after off_t (off_t +. period)
          end
          else after off_t (off_t -. pos +. cycle)
      and after from_t next_t =
        ignore
          (Rf_sim.Engine.schedule ?entity:pc.pc_entity t.engine
             (Rf_sim.Vtime.span_s (next_t -. from_t))
             (fun () -> step next_t))
      in
      step 0.0)
    c.Spec.c_pairs

let start_poisson t rng (c : Spec.cls) ~arrivals_per_s ~size_packets
    ~packet_rate_pps ~until_s =
  let pairs = Array.of_list c.Spec.c_pairs in
  if Array.length pairs = 0 then invalid_arg "Generator: Poisson class with no pairs";
  (* Flows vastly outnumber pairs, so resolve each pair's context once
     up front; [Rng.pick] consumes the same stream either way, keeping
     same-seed runs byte-identical. *)
  let ctxs = Array.map (pair_ctx t c) pairs in
  let sample_cap = t.spec.Spec.sample_cap in
  let rec arrival () =
    let now_s = Rf_sim.Vtime.to_s (Rf_sim.Engine.now t.engine) in
    if now_s < until_s then begin
      let pc = Rf_sim.Rng.pick rng ctxs in
      let size = Spec.draw_size rng size_packets in
      let weights = weights_for ~sample_cap size in
      let duration = float_of_int size /. packet_rate_pps in
      let gap_s = duration /. float_of_int (Array.length weights) in
      launch_flow t c pc ~weights ~gap_s;
      let gap = Rf_sim.Rng.exponential rng (1.0 /. arrivals_per_s) in
      ignore
        (Rf_sim.Engine.schedule ~entity:t.class_entity t.engine
           (Rf_sim.Vtime.span_s gap) arrival)
    end
  in
  arrival ()

let start engine ~rng ~measure ~fabric spec =
  let ent_for, note_for =
    match Rf_sim.Engine.profiler engine with
    | None ->
        let nop () = () in
        ((fun _ -> None), fun ~src:_ ~dst:_ -> nop)
    | Some p ->
        let tbl = Hashtbl.create 64 in
        let ent name =
          match Hashtbl.find_opt tbl name with
          | Some e -> e
          | None ->
              let e = Rf_obs.Profiler.host name in
              Hashtbl.replace tbl name e;
              e
        in
        ( (fun name -> Some (ent name)),
          fun ~src ~dst ->
            let r =
              Rf_obs.Profiler.message_counter p ~src:(ent src) ~dst:(ent dst)
            in
            fun () -> incr r )
  in
  let t =
    {
      engine;
      measure;
      fabric;
      spec;
      class_entity = Rf_obs.Profiler.component "traffic";
      ent_for;
      note_for;
      flows_launched = 0;
      samples_sent = 0;
    }
  in
  List.iter
    (fun (c : Spec.cls) ->
      (* One independent generator per class, split in class order so
         adding a class never perturbs earlier ones. *)
      let class_rng = Rf_sim.Rng.split rng in
      schedule_at_s t c.Spec.c_start_s (fun () ->
          match c.Spec.c_kind with
          | Spec.Cbr { rate_pps; duration_s } ->
              start_cbr t c ~rate_pps ~duration_s
          | Spec.On_off { rate_pps; on_s; off_s; duration_s } ->
              start_on_off t c ~rate_pps ~on_s ~off_s ~duration_s
          | Spec.Poisson
              { arrivals_per_s; size_packets; packet_rate_pps; until_s } ->
              start_poisson t class_rng c ~arrivals_per_s ~size_packets
                ~packet_rate_pps ~until_s))
    spec.Spec.classes;
  t

let flows_launched t = t.flows_launched

let samples_sent t = t.samples_sent
