type fabric = {
  fab_send :
    src:string ->
    dst:string ->
    port:int ->
    flow_id:int ->
    seq:int ->
    size:int ->
    unit;
}

let live_fabric measure ~hosts =
  let tbl = Hashtbl.create (List.length hosts * 2) in
  List.iter (fun (name, h) -> Hashtbl.replace tbl name h) hosts;
  let host name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None -> invalid_arg ("Generator.live_fabric: unknown host " ^ name)
  in
  (* Demux deliveries by probe header, not by port: one handler serves
     every class. *)
  List.iter
    (fun (_, h) ->
      Rf_net.Host.set_udp_handler h
        (fun ~src:_ ~src_port:_ ~dst_port:_ ~payload ->
          match Spec.decode_probe payload with
          | Some (flow_id, seq) -> Measure.delivered measure ~flow_id ~seq
          | None -> ()))
    hosts;
  {
    fab_send =
      (fun ~src ~dst ~port ~flow_id ~seq ~size ->
        let dst_ip = Rf_net.Host.ip (host dst) in
        Rf_net.Host.send_udp (host src) ~dst:dst_ip ~dst_port:port
          (Spec.encode_probe ~flow_id ~seq ~size));
  }

let aggregate_fabric engine measure ~latency =
  {
    fab_send =
      (fun ~src ~dst ~port:_ ~flow_id ~seq ~size:_ ->
        ignore
          (Rf_sim.Engine.schedule engine (latency ~src ~dst) (fun () ->
               Measure.delivered measure ~flow_id ~seq)));
  }

type t = {
  engine : Rf_sim.Engine.t;
  measure : Measure.t;
  fabric : fabric;
  spec : Spec.t;
  mutable flows_launched : int;
  mutable samples_sent : int;
}

let send t (c : Spec.cls) flow ~src ~dst ~seq ~weight =
  let bytes = weight * c.Spec.c_payload in
  Measure.sent t.measure flow ~seq ~weight ~bytes;
  t.samples_sent <- t.samples_sent + 1;
  t.fabric.fab_send ~src ~dst ~port:c.Spec.c_port
    ~flow_id:(Measure.flow_id flow)
    ~seq ~size:c.Spec.c_payload

let schedule_at_s t at_s f =
  let at = Rf_sim.Vtime.of_s at_s in
  let now = Rf_sim.Engine.now t.engine in
  if Rf_sim.Vtime.compare at now <= 0 then f ()
  else ignore (Rf_sim.Engine.schedule_at t.engine at f)

(* One aggregated flow: [weights] probes paced [gap_s] apart starting
   now. *)
let launch_flow t (c : Spec.cls) ~src ~dst ~weights ~gap_s =
  let flow = Measure.register_flow t.measure ~cls:c.Spec.c_name ~src ~dst in
  t.flows_launched <- t.flows_launched + 1;
  let n = Array.length weights in
  let rec probe seq =
    send t c flow ~src ~dst ~seq ~weight:weights.(seq);
    if seq + 1 < n then
      ignore
        (Rf_sim.Engine.schedule t.engine (Rf_sim.Vtime.span_s gap_s) (fun () ->
             probe (seq + 1)))
    else Measure.close_flow flow
  in
  probe 0

(* Aggregation: S packets represented by K = min(S, sample_cap) probes
   whose integer weights sum to S. *)
let weights_for ~sample_cap size =
  let k = max 1 (min size sample_cap) in
  let base = size / k and rem = size mod k in
  Array.init k (fun i -> base + if i < rem then 1 else 0)

let start_cbr t (c : Spec.cls) ~rate_pps ~duration_s =
  let period = 1.0 /. rate_pps in
  let n = max 1 (int_of_float (duration_s *. rate_pps)) in
  List.iter
    (fun (src, dst) ->
      launch_flow t c ~src ~dst ~weights:(Array.make n 1) ~gap_s:period)
    c.Spec.c_pairs

let start_on_off t (c : Spec.cls) ~rate_pps ~on_s ~off_s ~duration_s =
  let period = 1.0 /. rate_pps in
  let cycle = on_s +. off_s in
  List.iter
    (fun (src, dst) ->
      let flow =
        Measure.register_flow t.measure ~cls:c.Spec.c_name ~src ~dst
      in
      t.flows_launched <- t.flows_launched + 1;
      let seq = ref 0 in
      (* [off_t] is the offset in seconds since the class started; the
         step function runs exactly at class start + off_t. *)
      let rec step off_t =
        if off_t >= duration_s then Measure.close_flow flow
        else
          let pos = Float.rem off_t cycle in
          if pos < on_s then begin
            send t c flow ~src ~dst ~seq:!seq ~weight:1;
            incr seq;
            after off_t (off_t +. period)
          end
          else after off_t (off_t -. pos +. cycle)
      and after from_t next_t =
        ignore
          (Rf_sim.Engine.schedule t.engine
             (Rf_sim.Vtime.span_s (next_t -. from_t))
             (fun () -> step next_t))
      in
      step 0.0)
    c.Spec.c_pairs

let start_poisson t rng (c : Spec.cls) ~arrivals_per_s ~size_packets
    ~packet_rate_pps ~until_s =
  let pairs = Array.of_list c.Spec.c_pairs in
  if Array.length pairs = 0 then invalid_arg "Generator: Poisson class with no pairs";
  let sample_cap = t.spec.Spec.sample_cap in
  let rec arrival () =
    let now_s = Rf_sim.Vtime.to_s (Rf_sim.Engine.now t.engine) in
    if now_s < until_s then begin
      let src, dst = Rf_sim.Rng.pick rng pairs in
      let size = Spec.draw_size rng size_packets in
      let weights = weights_for ~sample_cap size in
      let duration = float_of_int size /. packet_rate_pps in
      let gap_s = duration /. float_of_int (Array.length weights) in
      launch_flow t c ~src ~dst ~weights ~gap_s;
      let gap = Rf_sim.Rng.exponential rng (1.0 /. arrivals_per_s) in
      ignore
        (Rf_sim.Engine.schedule t.engine (Rf_sim.Vtime.span_s gap) arrival)
    end
  in
  arrival ()

let start engine ~rng ~measure ~fabric spec =
  let t =
    { engine; measure; fabric; spec; flows_launched = 0; samples_sent = 0 }
  in
  List.iter
    (fun (c : Spec.cls) ->
      (* One independent generator per class, split in class order so
         adding a class never perturbs earlier ones. *)
      let class_rng = Rf_sim.Rng.split rng in
      schedule_at_s t c.Spec.c_start_s (fun () ->
          match c.Spec.c_kind with
          | Spec.Cbr { rate_pps; duration_s } ->
              start_cbr t c ~rate_pps ~duration_s
          | Spec.On_off { rate_pps; on_s; off_s; duration_s } ->
              start_on_off t c ~rate_pps ~on_s ~off_s ~duration_s
          | Spec.Poisson
              { arrivals_per_s; size_packets; packet_rate_pps; until_s } ->
              start_poisson t class_rng c ~arrivals_per_s ~size_packets
                ~packet_rate_pps ~until_s))
    spec.Spec.classes;
  t

let flows_launched t = t.flows_launched

let samples_sent t = t.samples_sent
