(** Open-loop workload generator driving a {!Spec.t} through a fabric.

    The fabric abstracts how probes travel: {!live_fabric} pushes them
    through the emulated hosts' UDP stacks (so they traverse real
    datapaths, flow tables and links), while {!aggregate_fabric}
    schedules delivery directly after a caller-supplied latency — the
    O(flows) path used for the fat-tree scaling runs where no control
    plane is present. All randomness is drawn from the provided
    {!Rf_sim.Rng.t}, so same-seed runs are byte-identical. *)

type t

type fabric = {
  fab_pair :
    src:string ->
    dst:string ->
    port:int ->
    flow_id:int ->
    seq:int ->
    size:int ->
    unit;
}
(** [fab_pair] is applied once per (src, dst, port) pair and yields
    the per-probe sender; fabrics resolve endpoints, latency and
    attribution handles up front so probes themselves stay cheap. *)

val live_fabric : Measure.t -> hosts:(string * Rf_net.Host.t) list -> fabric
(** Sends probes with [Host.send_udp] and installs a UDP handler on
    every listed host that feeds deliveries back into the measurement
    plane (demuxed by probe header, so it serves all classes). *)

val aggregate_fabric :
  Rf_sim.Engine.t ->
  Measure.t ->
  latency:(src:string -> dst:string -> Rf_sim.Vtime.span) ->
  fabric
(** Ideal fabric: every probe is delivered after [latency]; no loss, no
    queueing, no per-hop events. *)

val start :
  Rf_sim.Engine.t ->
  rng:Rf_sim.Rng.t ->
  measure:Measure.t ->
  fabric:fabric ->
  Spec.t ->
  t
(** Schedules every class of the spec (each class gets an [Rng.split]
    in class order) and returns immediately; the engine run drives the
    sends. *)

val flows_launched : t -> int

val samples_sent : t -> int
(** Probe datagrams handed to the fabric (weighted packet counts live
    in the measurement plane). *)
