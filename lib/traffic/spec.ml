open Rf_packet

type size_dist =
  | Fixed_size of int
  | Pareto of { alpha : float; xmin : int; cap : int }

type kind =
  | Cbr of { rate_pps : float; duration_s : float }
  | On_off of {
      rate_pps : float;
      on_s : float;
      off_s : float;
      duration_s : float;
    }
  | Poisson of {
      arrivals_per_s : float;
      size_packets : size_dist;
      packet_rate_pps : float;
      until_s : float;
    }

type cls = {
  c_name : string;
  c_pairs : (string * string) list;
  c_kind : kind;
  c_payload : int;
  c_port : int;
  c_start_s : float;
}

type t = { classes : cls list; sample_cap : int; loss_timeout_s : float }

let make ?(sample_cap = 4) ?(loss_timeout_s = 2.0) classes =
  if sample_cap < 1 then invalid_arg "Spec.make: sample_cap must be >= 1";
  if loss_timeout_s <= 0.0 then
    invalid_arg "Spec.make: loss_timeout_s must be positive";
  { classes; sample_cap; loss_timeout_s }

let probe_header_bytes = 12

let probe_magic = 0x52465447l (* "RFTG" *)

let cls ?(payload = 64) ?(port = 5005) ?(start_s = 0.0) ~name ~pairs kind =
  {
    c_name = name;
    c_pairs = pairs;
    c_kind = kind;
    c_payload = max probe_header_bytes payload;
    c_port = port;
    c_start_s = start_s;
  }

let encode_probe ~flow_id ~seq ~size =
  let w = Wire.Writer.create ~initial:(max probe_header_bytes size) () in
  Wire.Writer.u32 w probe_magic;
  Wire.Writer.u32 w (Int32.of_int flow_id);
  Wire.Writer.u32 w (Int32.of_int seq);
  Wire.Writer.zeros w (max 0 (size - probe_header_bytes));
  Wire.Writer.contents w

let decode_probe payload =
  if String.length payload < probe_header_bytes then None
  else
    let r = Wire.Reader.of_string payload in
    if not (Int32.equal (Wire.Reader.u32 r) probe_magic) then None
    else
      let flow_id = Int32.to_int (Wire.Reader.u32 r) in
      let seq = Int32.to_int (Wire.Reader.u32 r) in
      Some (flow_id, seq)

let draw_size rng = function
  | Fixed_size n -> max 1 n
  | Pareto { alpha; xmin; cap } ->
      (* Inverse-transform sampling of a Pareto tail: heavy-tailed flow
         sizes (a few elephants, many mice), truncated at [cap]. *)
      let u = max 1e-9 (1.0 -. Rf_sim.Rng.float rng 1.0) in
      let s = float_of_int xmin *. (u ** (-1.0 /. alpha)) in
      max 1 (min cap (int_of_float s))
