(** Declarative workload specifications.

    A spec names a set of traffic classes, each driving a list of
    (source, destination) host pairs with one of three arrival models:
    constant bit-rate streams, on-off (bursty) streams, or open-loop
    Poisson flow arrivals with heavy-tailed flow sizes. Flows are
    *aggregated*: a flow of S packets is represented by at most
    [sample_cap] probe datagrams carrying integer weights summing to S,
    so driving "millions of users" costs O(flows), not O(packets). *)

type size_dist =
  | Fixed_size of int  (** every flow is exactly this many packets *)
  | Pareto of { alpha : float; xmin : int; cap : int }
      (** heavy-tailed flow sizes (truncated Pareto): many mice, a few
          elephants *)

type kind =
  | Cbr of { rate_pps : float; duration_s : float }
      (** constant rate from class start for [duration_s] *)
  | On_off of {
      rate_pps : float;
      on_s : float;
      off_s : float;
      duration_s : float;
    }  (** alternating bursts: [on_s] sending, [off_s] silent *)
  | Poisson of {
      arrivals_per_s : float;
      size_packets : size_dist;
      packet_rate_pps : float;
      until_s : float;
    }
      (** open-loop flow arrivals at rate [arrivals_per_s] until
          [until_s] (absolute virtual time); each flow picks a random
          pair, draws its size and is paced at [packet_rate_pps] *)

type cls = {
  c_name : string;
  c_pairs : (string * string) list;  (** (src host, dst host) names *)
  c_kind : kind;
  c_payload : int;  (** bytes per probe datagram *)
  c_port : int;  (** destination UDP port *)
  c_start_s : float;  (** virtual time at which the class starts *)
}

type t = {
  classes : cls list;
  sample_cap : int;  (** max probe datagrams per aggregated flow *)
  loss_timeout_s : float;
      (** a probe not delivered within this span counts as lost *)
}

val make : ?sample_cap:int -> ?loss_timeout_s:float -> cls list -> t
(** Defaults: [sample_cap] 4, [loss_timeout_s] 2.0. *)

val cls :
  ?payload:int ->
  ?port:int ->
  ?start_s:float ->
  name:string ->
  pairs:(string * string) list ->
  kind ->
  cls
(** Defaults: 64-byte payload, port 5005, start at t=0. The payload is
    clamped up to {!probe_header_bytes}. *)

(** {1 Probe datagrams}

    Every generated datagram carries a 12-byte header — magic, flow id,
    sequence number — so the measurement plane can attribute deliveries
    without per-packet state in the fabric. *)

val probe_header_bytes : int

val encode_probe : flow_id:int -> seq:int -> size:int -> string

val decode_probe : string -> (int * int) option
(** [Some (flow_id, seq)] when the payload is a probe. *)

val draw_size : Rf_sim.Rng.t -> size_dist -> int
(** Flow size in packets, >= 1. *)
