(** Typed metrics registry: counters, gauges and fixed-bucket
    histograms with Prometheus-style text exposition.

    Instruments are created once (get-or-create, keyed by name +
    sorted label set) and then updated through a direct record-field
    mutation — no hashing or allocation on the hot path, which keeps
    the registry safe to update from per-packet code. All values are
    driven by the simulation, so the exposition of two same-seed runs
    is byte-identical. *)

type t

type counter
(** Monotonically increasing integer. *)

type gauge
(** A float that can go up and down. *)

type histogram
(** Observation distribution over the fixed [buckets] bounds. *)

val create : unit -> t

val buckets : float array
(** The shared log-scale bucket upper bounds, in seconds: a 1–2.5–5
    decade grid from 1 ms to 500 s (a [+Inf] bucket is implicit).
    Chosen to resolve both millisecond RPC deliveries and the
    100-second VM boot serialization of the Fig. 3 runs. *)

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Get-or-create. Reusing a name with a different instrument type
    raises [Invalid_argument]. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> histogram

val observe : histogram -> float -> unit
(** Adds an observation in seconds. *)

val observations : histogram -> int

val observation_sum : histogram -> float

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile (q in [0,1])
    with Prometheus semantics: locate the log bucket containing the
    q-rank and interpolate linearly within its bounds (lower edge 0 for
    the first bucket; observations in the implicit +Inf bucket clamp to
    the highest finite bound). Lets SLOs read p99 straight off a live
    histogram without keeping raw samples. Total on all inputs: an
    empty histogram yields [nan], [q] is clamped to [0,1] (NaN [q]
    reads as 0), mirroring [Rf_sim.Stats.percentile]. *)

val fold :
  t ->
  init:'a ->
  counter:('a -> name:string -> labels:(string * string) list -> int -> 'a) ->
  gauge:('a -> name:string -> labels:(string * string) list -> float -> 'a) ->
  'a
(** Folds over counters and gauges in exposition (sorted) order;
    histograms are skipped. Used by summary reports. *)

val to_prometheus : t -> string
(** Deterministic text exposition: families sorted by name, samples by
    label set. Every family gets a [# TYPE] line ([untyped] as the
    defensive fallback) and a [# HELP] line when help text was given;
    label values and help text are escaped per the exposition format
    (backslash, double-quote and newline). *)

val pp_prometheus : Format.formatter -> t -> unit
