(** Span tracing with causal parent ids over an injected clock.

    The tracer is the telemetry event bus of the simulator: components
    open spans around pipeline phases (discovery, RPC delivery, VM
    provisioning, Quagga configuration, convergence) and append
    point-in-time events, all stamped with the *virtual* clock the
    owner installs via [set_clock]. Nothing here reads wall-clock time
    or allocates identifiers non-deterministically, so two runs of the
    same seeded simulation produce byte-identical telemetry.

    Time is a plain [int] count of microseconds since the simulation
    epoch (the representation of [Rf_sim.Vtime.t]); this library sits
    below [rf_sim] and must not depend on it. *)

type span = {
  id : int;  (** sequential, 1-based, unique within a tracer *)
  parent : int option;
  name : string;
  start_us : int;
  mutable end_us : int option;  (** [None] while the span is open *)
  mutable attrs : (string * string) list;  (** insertion order *)
}

type event = {
  time_us : int;
  component : string;
  kind : string;
  detail : string;
  span : int option;  (** causal link into the span tree *)
}

type t

val create :
  ?clock:(unit -> int) -> ?max_spans:int -> ?max_events:int -> unit -> t
(** The default clock is [fun () -> 0]; the simulation engine installs
    its virtual clock with [set_clock] right after construction.
    [max_spans]/[max_events] bound the stores (default unbounded):
    records past the cap are dropped and counted — see
    {!dropped_spans}/{!dropped_events} — so truncated telemetry is
    always detectable downstream. *)

val set_clock : t -> (unit -> int) -> unit

val now_us : t -> int

(** {1 Spans} *)

val span_start :
  t -> ?parent:int -> ?start_us:int -> ?attrs:(string * string) list ->
  string -> int
(** Opens a span named after the phase it covers and returns its id.
    [start_us] overrides the clock for retroactive spans (e.g. a
    convergence span opened only once convergence is observed). *)

val span_end : t -> ?attrs:(string * string) list -> int -> unit
(** Closes the span at the current clock, appending [attrs]. Ending an
    already-ended or unknown span is a no-op, so hooks that may fire
    twice (reconnects, re-applies) need no guards. *)

val span_add_attr : t -> int -> string -> string -> unit

val span_is_open : t -> int -> bool

val find_span : t -> int -> span option

val spans : t -> span list
(** All spans in id (= start) order. *)

val span_count : t -> int

(** {1 Events} *)

val event :
  t -> ?span:int -> component:string -> kind:string -> string -> unit

val event_at :
  t -> ?span:int -> us:int -> component:string -> kind:string -> string ->
  unit
(** Explicit-timestamp variant, used by [Rf_sim.Trace] which carries
    its own [Vtime.t] stamps. *)

val events : t -> event list
(** All events in insertion order. *)

val event_count : t -> int

(** {1 Drop accounting}

    Non-zero counts mean the telemetry below is incomplete; exporters
    surface them so an SLO evaluated over a truncated stream cannot
    silently pass. *)

val dropped_spans : t -> int
(** Spans discarded because the store was at [max_spans]. *)

val dropped_events : t -> int
(** Events discarded because the store was at [max_events]. *)

(** {1 Correlation}

    Cross-component span hand-off. The component that opens a span
    registers it under a string key (["cfg:5"], ["rpc:5"], ...); the
    component that closes it — typically in another library, reached
    only via callbacks — looks the key up. Keys are process-local and
    deterministic, so this adds no wire format. *)

val correlate : t -> key:string -> int -> unit
(** Registers (or overwrites) a key. *)

val correlated : t -> key:string -> int option

val take : t -> key:string -> int option
(** Like [correlated] but removes the key, so a phase boundary fires
    at most once per key registration. *)
