open Rf_packet
module Of_match = Rf_openflow.Of_match
module Of_action = Rf_openflow.Of_action
module Of_port = Rf_openflow.Of_port

type rule = {
  ru_match : Of_match.t;
  ru_priority : int;
  ru_seq : int;
  ru_out_ports : int list;
  ru_set_dl_src : Mac.t option;
  ru_set_dl_dst : Mac.t option;
}

let rule_of_actions ~match_ ~priority ~seq actions =
  let out_ports = Of_action.outputs actions in
  let last f =
    List.fold_left (fun acc a -> match f a with Some _ as s -> s | None -> acc)
      None actions
  in
  {
    ru_match = match_;
    ru_priority = priority;
    ru_seq = seq;
    ru_out_ports = out_ports;
    ru_set_dl_src = last (function Of_action.Set_dl_src m -> Some m | _ -> None);
    ru_set_dl_dst = last (function Of_action.Set_dl_dst m -> Some m | _ -> None);
  }

type verdict = Delivered of int64 * int | Blackhole of int64 | Loop of int64 list

let verdict_to_string = function
  | Delivered _ -> "delivered"
  | Blackhole _ -> "blackhole"
  | Loop _ -> "loop"

(* Priority descending, then installation order — the Flow_table
   lookup order. *)
let compare_rules a b =
  match compare b.ru_priority a.ru_priority with
  | 0 -> compare a.ru_seq b.ru_seq
  | c -> c

type t = {
  switches : (int64, rule array) Hashtbl.t;
  peers : (int64 * int, int64 * int) Hashtbl.t;
  down : (int64 * int, unit) Hashtbl.t;
  host_ports : (int64 * int, Ipv4_addr.Prefix.t) Hashtbl.t;
}

let create () =
  {
    switches = Hashtbl.create 64;
    peers = Hashtbl.create 256;
    down = Hashtbl.create 16;
    host_ports = Hashtbl.create 64;
  }

let add_switch t dpid =
  if not (Hashtbl.mem t.switches dpid) then Hashtbl.replace t.switches dpid [||]

let set_switch_rules t dpid rules =
  let a = Array.of_list rules in
  Array.sort compare_rules a;
  Hashtbl.replace t.switches dpid a

let switch_rules t dpid =
  match Hashtbl.find_opt t.switches dpid with
  | None -> []
  | Some a -> Array.to_list a

let switches t =
  Hashtbl.fold (fun d _ acc -> d :: acc) t.switches []
  |> List.sort Int64.compare

let add_link t ~a ~b =
  Hashtbl.replace t.peers a b;
  Hashtbl.replace t.peers b a

let set_link_state t ~a ~b up =
  add_link t ~a ~b;
  if up then begin
    Hashtbl.remove t.down a;
    Hashtbl.remove t.down b
  end
  else begin
    Hashtbl.replace t.down a ();
    Hashtbl.replace t.down b ()
  end

let link_is_up t ep = not (Hashtbl.mem t.down ep)

let add_host t ~dpid ~port prefix =
  Hashtbl.replace t.host_ports (dpid, port) prefix

let host_port t dpid =
  Hashtbl.fold
    (fun (d, p) prefix acc ->
      if Int64.equal d dpid then
        match acc with
        | Some (p0, _) when p0 <= p -> acc
        | _ -> Some (p, prefix)
      else acc)
    t.host_ports None

(* RouteFlow's data plane is reactive at the edge: the destination
   switch installs host /32s only after its VM has ARP-resolved the
   host, so a packet that matches no rule at a switch owning a
   connected prefix covering its destination is not blackholed — it
   goes packet-in to the VM's slow path, which ARPs and delivers.
   Lowest port wins for determinism. *)
let local_delivery t dpid nw_dst =
  Hashtbl.fold
    (fun (d, p) prefix acc ->
      if Int64.equal d dpid && Ipv4_addr.Prefix.mem nw_dst prefix then
        match acc with Some p0 when p0 <= p -> acc | _ -> Some p
      else acc)
    t.host_ports None

let first_match rules (key : Of_match.key) =
  let n = Array.length rules in
  let rec go i =
    if i >= n then None
    else if Of_match.matches rules.(i).ru_match key then Some rules.(i)
    else go (i + 1)
  in
  go 0

let apply_rewrites ru (key : Of_match.key) =
  let key =
    match ru.ru_set_dl_src with
    | Some m -> { key with Of_match.dl_src = m }
    | None -> key
  in
  match ru.ru_set_dl_dst with
  | Some m -> { key with Of_match.dl_dst = m }
  | None -> key

(* The first usable physical output of a rule (OFPP_IN_PORT resolved
   against the ingress port). RouteFlow installs unicast rules, so
   following one output is exact for the audited system; synthetic
   multi-output rules follow their first port, and the test oracle
   mirrors that convention. *)
let first_physical ~in_port ports =
  let rec go = function
    | [] -> None
    | p :: rest ->
        let p = if p = Of_port.in_port then in_port else p in
        if Of_port.is_physical p then Some p else go rest
  in
  go ports

let walk t ~dpid ~in_port key =
  let seen = Hashtbl.create 16 in
  let rec go dpid in_port (key : Of_match.key) trail =
    if Hashtbl.mem seen (dpid, in_port) then (Loop (List.rev trail), trail)
    else begin
      Hashtbl.add seen (dpid, in_port) ();
      let trail = if List.mem dpid trail then trail else dpid :: trail in
      match Hashtbl.find_opt t.switches dpid with
      | None -> (Blackhole dpid, trail)
      | Some rules -> (
          let key = { key with Of_match.in_port } in
          match first_match rules key with
          | None -> (
              match local_delivery t dpid key.Of_match.nw_dst with
              | Some port -> (Delivered (dpid, port), trail)
              | None -> (Blackhole dpid, trail))
          | Some ru -> (
              let key = apply_rewrites ru key in
              match first_physical ~in_port ru.ru_out_ports with
              | None -> (Blackhole dpid, trail)
              | Some port -> (
                  match Hashtbl.find_opt t.host_ports (dpid, port) with
                  | Some prefix ->
                      if Ipv4_addr.Prefix.mem key.Of_match.nw_dst prefix then
                        (Delivered (dpid, port), trail)
                      else (Blackhole dpid, trail)
                  | None -> (
                      if Hashtbl.mem t.down (dpid, port) then
                        (Blackhole dpid, trail)
                      else
                        match Hashtbl.find_opt t.peers (dpid, port) with
                        | None -> (Blackhole dpid, trail)
                        | Some (d2, p2) -> go d2 p2 key trail))))
    end
  in
  let verdict, trail = go dpid in_port key [] in
  (verdict, List.rev trail)
