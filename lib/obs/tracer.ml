type span = {
  id : int;
  parent : int option;
  name : string;
  start_us : int;
  mutable end_us : int option;
  mutable attrs : (string * string) list;
}

type event = {
  time_us : int;
  component : string;
  kind : string;
  detail : string;
  span : int option;
}

type t = {
  mutable clock : unit -> int;
  mutable next_id : int;
  mutable spans_rev : span list;
  mutable n_spans : int;
  by_id : (int, span) Hashtbl.t;
  mutable events_rev : event list;
  mutable n_events : int;
  keys : (string, int) Hashtbl.t;
  max_spans : int option;
  max_events : int option;
  mutable dropped_spans : int;
  mutable dropped_events : int;
}

let create ?(clock = fun () -> 0) ?max_spans ?max_events () =
  {
    clock;
    next_id = 1;
    spans_rev = [];
    n_spans = 0;
    by_id = Hashtbl.create 64;
    events_rev = [];
    n_events = 0;
    keys = Hashtbl.create 16;
    max_spans;
    max_events;
    dropped_spans = 0;
    dropped_events = 0;
  }

let set_clock t clock = t.clock <- clock

let now_us t = t.clock ()

let span_start t ?parent ?start_us ?(attrs = []) name =
  let id = t.next_id in
  t.next_id <- id + 1;
  match t.max_spans with
  | Some cap when t.n_spans >= cap ->
      (* Callers keep a valid id either way; span_end/span_add_attr on a
         dropped span are no-ops, so truncation is safe but counted. *)
      t.dropped_spans <- t.dropped_spans + 1;
      id
  | Some _ | None ->
      let start_us = match start_us with Some us -> us | None -> t.clock () in
      let sp = { id; parent; name; start_us; end_us = None; attrs } in
      t.spans_rev <- sp :: t.spans_rev;
      t.n_spans <- t.n_spans + 1;
      Hashtbl.replace t.by_id id sp;
      id

let find_span t id = Hashtbl.find_opt t.by_id id

let span_end t ?(attrs = []) id =
  match find_span t id with
  | Some sp when sp.end_us = None ->
      sp.end_us <- Some (t.clock ());
      if attrs <> [] then sp.attrs <- sp.attrs @ attrs
  | Some _ | None -> ()

let span_add_attr t id k v =
  match find_span t id with
  | Some sp -> sp.attrs <- sp.attrs @ [ (k, v) ]
  | None -> ()

let span_is_open t id =
  match find_span t id with Some sp -> sp.end_us = None | None -> false

let spans t = List.rev t.spans_rev

let span_count t = t.n_spans

let event_at t ?span ~us ~component ~kind detail =
  match t.max_events with
  | Some cap when t.n_events >= cap ->
      t.dropped_events <- t.dropped_events + 1
  | Some _ | None ->
      t.events_rev <-
        { time_us = us; component; kind; detail; span } :: t.events_rev;
      t.n_events <- t.n_events + 1

let event t ?span ~component ~kind detail =
  event_at t ?span ~us:(t.clock ()) ~component ~kind detail

let events t = List.rev t.events_rev

let event_count t = t.n_events

let dropped_spans t = t.dropped_spans

let dropped_events t = t.dropped_events

let correlate t ~key id = Hashtbl.replace t.keys key id

let correlated t ~key = Hashtbl.find_opt t.keys key

let take t ~key =
  match Hashtbl.find_opt t.keys key with
  | Some id ->
      Hashtbl.remove t.keys key;
      Some id
  | None -> None
