(** Critical-path extraction and self-time attribution over the span
    trees the simulator emits (e.g. [sw.configure] with
    [phase.discovery]/[phase.rpc]/[phase.vm]/[phase.quagga] children).

    All arithmetic is on the integer-microsecond stamps, so totals and
    self times are exact and two same-seed runs produce byte-identical
    reports. *)

type node = {
  span : Tracer.span;
  n_end_us : int;
      (** [span.end_us], or the dump's latest timestamp for spans still
          open when the dump was taken. *)
  n_total_us : int;  (** [n_end_us - span.start_us] *)
  n_self_us : int;
      (** Total minus the union of child intervals (clipped to this
          span), i.e. time not attributable to any child. For the
          sequential phase children of a configure span, self times of
          a subtree sum exactly to the root total. *)
  children : node list;  (** sorted by start, then id *)
}

type step = {
  cp_name : string;
  cp_span_id : int;
  cp_depth : int;
  cp_total_us : int;
  cp_self_us : int;
}

val forest : Tracer.span list -> node list
(** Builds the span forest: roots sorted by start then id. Spans whose
    parent id is absent from the list are treated as roots of nothing
    (dropped), matching exporter behaviour. *)

val find_longest : name:string -> node list -> node option
(** The longest node named [name] anywhere in the forest; ties break
    to the lowest span id. *)

val critical_path : node -> step list
(** Root-to-leaf chain choosing, at every level, the child with the
    largest total (ties to the lowest id). The head is the node itself;
    each step's depth increments by one. *)

val fold_nodes : ('a -> node -> 'a) -> 'a -> node list -> 'a
(** Pre-order fold over every node in the forest. *)

val pp_path : Format.formatter -> step list -> unit
(** Table with per-step total, self time, and self share of the root
    total. *)
