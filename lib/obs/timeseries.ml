(* Sliding-window aggregation over timestamped samples.

   Points are sorted by timestamp on construction and every aggregate
   is a commutative reduction, so results are invariant under
   reordering of the input within a window — the property the SLO
   engine relies on when events from different components interleave
   nondeterministically in wall-time but identically in virtual
   time. *)

type point = { p_us : int; p_v : float }

type t = { points : point array }

type agg = Count | Sum | Mean | Max | Min

let of_points pts =
  let arr =
    Array.of_list (List.map (fun (us, v) -> { p_us = us; p_v = v }) pts)
  in
  (* Stable sort on the timestamp only: same-time points keep input
     order, which no commutative aggregate can observe anyway. *)
  Array.stable_sort (fun a b -> compare a.p_us b.p_us) arr;
  { points = arr }

let of_events ?(value = fun (_ : Tracer.event) -> 1.) events =
  of_points
    (List.map (fun (ev : Tracer.event) -> (ev.time_us, value ev)) events)

let length t = Array.length t.points

let span_us t =
  if Array.length t.points = 0 then None
  else
    Some
      ( t.points.(0).p_us,
        t.points.(Array.length t.points - 1).p_us )

let aggregate agg values =
  match (agg, values) with
  | Count, vs -> Some (float_of_int (List.length vs))
  | Sum, vs -> Some (List.fold_left ( +. ) 0. vs)
  | (Mean | Max | Min), [] -> None
  | Mean, vs ->
      Some (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))
  | Max, v :: vs -> Some (List.fold_left Stdlib.max v vs)
  | Min, v :: vs -> Some (List.fold_left Stdlib.min v vs)

(* Windows are [start, start + width), stepping by [step_us] from the
   step-aligned floor of the first point through the last point.
   Count/Sum report empty windows as 0; Mean/Max/Min skip them. *)
let sliding ~width_us ~step_us agg t =
  if width_us <= 0 then invalid_arg "Timeseries.sliding: width_us <= 0";
  if step_us <= 0 then invalid_arg "Timeseries.sliding: step_us <= 0";
  match span_us t with
  | None -> []
  | Some (first, last) ->
      let w0 = first / step_us * step_us in
      let n = Array.length t.points in
      (* [lo] tracks the first point with p_us >= window start; points
         are sorted so it only advances. *)
      let lo = ref 0 in
      let rec windows w acc =
        if w > last then List.rev acc
        else begin
          while !lo < n && t.points.(!lo).p_us < w do
            incr lo
          done;
          let values = ref [] in
          let i = ref !lo in
          while !i < n && t.points.(!i).p_us < w + width_us do
            values := t.points.(!i).p_v :: !values;
            incr i
          done;
          let acc =
            match aggregate agg !values with
            | Some v -> (w, v) :: acc
            | None -> acc
          in
          windows (w + step_us) acc
        end
      in
      windows w0 []

let max_window ~width_us ~step_us agg t =
  sliding ~width_us ~step_us agg t
  |> List.fold_left (fun acc (_, v) -> max acc v) neg_infinity
  |> fun m -> if m = neg_infinity then None else Some m
