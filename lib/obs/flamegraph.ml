(* Flamegraph exporters over a span forest.

   The folded format is Brendan Gregg's: one line per unique
   name-path, "root;child;leaf <self_us>", mergeable by any standard
   flamegraph renderer. Frames with zero self time are kept so the
   tree shape survives a fold/parse round trip, and lines are sorted
   by path, so output is byte-stable.

   Values are integer microseconds of SELF time under an exact
   partition of each span's interval among its children: a child
   claims the part of the parent's (remaining) interval it covers,
   earlier siblings winning any overlap, and recursion is confined to
   the claimed region. Concurrent siblings (overlapping rpc.frame
   spans) therefore never double-count, and the folded total equals
   the summed root-span durations exactly — the invariant the test
   suite and the E7 acceptance check rely on. *)

let frame name =
  String.map (function ';' -> ':' | '\n' -> ' ' | c -> c) name

(* Interval sets: sorted disjoint [(lo, hi)] lists, half-open. *)

let measure_ivs ivs = List.fold_left (fun t (a, b) -> t + (b - a)) 0 ivs

let clip (s, e) ivs =
  List.filter_map
    (fun (a, b) ->
      let a = max a s and b = min b e in
      if b > a then Some (a, b) else None)
    ivs

let subtract_ivs ivs minus =
  List.fold_left
    (fun ivs (ms, me) ->
      List.concat_map
        (fun (a, b) ->
          List.filter
            (fun (x, y) -> y > x)
            [ (a, min b ms); (max a me, b) ])
        ivs)
    ivs minus

let folded_entries nodes =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec walk path allowed (n : Critical_path.node) =
    let path = path @ [ frame n.span.name ] in
    let key = String.concat ";" path in
    let remaining, claims =
      List.fold_left
        (fun (remaining, claims) (c : Critical_path.node) ->
          let claim = clip (c.span.start_us, c.n_end_us) remaining in
          (subtract_ivs remaining claim, (c, claim) :: claims))
        (allowed, []) n.children
    in
    let prev = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0 in
    Hashtbl.replace tbl key (prev + measure_ivs remaining);
    List.iter (fun (c, claim) -> walk path claim c) (List.rev claims)
  in
  List.iter
    (fun (n : Critical_path.node) ->
      walk [] [ (n.span.start_us, n.n_end_us) ] n)
    nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let folded nodes =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, self_us) ->
      Buffer.add_string buf path;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int self_us);
      Buffer.add_char buf '\n')
    (folded_entries nodes);
  Buffer.contents buf

exception Malformed of string

let parse_folded text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match String.rindex_opt line ' ' with
         | None -> raise (Malformed ("no value in line: " ^ line))
         | Some i -> (
             let path = String.sub line 0 i in
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             match int_of_string_opt v with
             | Some n -> (String.split_on_char ';' path, n)
             | None -> raise (Malformed ("bad value in line: " ^ line))))

let total text =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (parse_folded text)

(* d3-flamegraph JSON: nested {"name","value","children"} with value =
   TOTAL microseconds (d3-flamegraph sizes frames by their own value,
   which must include descendants). Multiple roots wrap under a
   synthetic "all" frame, as d3 requires a single root. *)
let rec d3_node buf (n : Critical_path.node) =
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf (Export.json_escape (frame n.span.name));
  Buffer.add_string buf "\",\"value\":";
  Buffer.add_string buf (string_of_int n.n_total_us);
  (match n.children with
  | [] -> ()
  | cs ->
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          d3_node buf c)
        cs;
      Buffer.add_char buf ']');
  Buffer.add_char buf '}'

let d3_json nodes =
  let buf = Buffer.create 1024 in
  (match nodes with
  | [ n ] -> d3_node buf n
  | nodes ->
      let total =
        List.fold_left
          (fun acc (n : Critical_path.node) -> acc + n.n_total_us)
          0 nodes
      in
      Buffer.add_string buf "{\"name\":\"all\",\"value\":";
      Buffer.add_string buf (string_of_int total);
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i n ->
          if i > 0 then Buffer.add_char buf ',';
          d3_node buf n)
        nodes;
      Buffer.add_string buf "]}");
  Buffer.add_char buf '\n';
  Buffer.contents buf
