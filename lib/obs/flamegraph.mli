(** Flamegraph exporters over a {!Critical_path} span forest: the
    folded-stack text format (Brendan Gregg's tools, speedscope) and
    d3-flamegraph JSON.

    Both outputs are sorted/deterministic, so same-seed runs export
    byte-identical graphs. *)

val frame : string -> string
(** Span name sanitized for the folded format ([';'] and newlines
    replaced). *)

val folded_entries : Critical_path.node list -> (string * int) list
(** Unique semicolon-joined name-paths with summed SELF microseconds,
    sorted by path. Zero-self frames are kept so tree shape survives a
    round trip through {!parse_folded}. Each parent's interval is
    partitioned exactly among its children (earlier siblings win any
    overlap, recursion stays inside the claimed region), so concurrent
    sibling spans never double-count. *)

val folded : Critical_path.node list -> string
(** ["root;child;leaf <self_us>\n"] per entry. The values of a tree
    partition its root's interval, so the folded total equals the
    summed root-span durations exactly — the invariant the test suite
    checks. *)

exception Malformed of string

val parse_folded : string -> (string list * int) list
(** Inverse of {!folded} (paths split on [';']); raises {!Malformed}
    on lines without a trailing integer. *)

val total : string -> int
(** Sum of all values in a folded file. *)

val d3_json : Critical_path.node list -> string
(** Nested [{"name","value","children"}] with value = TOTAL
    microseconds per frame, wrapped under a synthetic ["all"] root
    when the forest has several roots. *)
