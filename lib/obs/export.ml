let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_str buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (json_escape s);
  Buffer.add_char buf '"'

let add_opt_int buf = function
  | None -> Buffer.add_string buf "null"
  | Some i -> Buffer.add_string buf (string_of_int i)

let span_line (sp : Tracer.span) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"type\":\"span\",\"id\":";
  Buffer.add_string buf (string_of_int sp.id);
  Buffer.add_string buf ",\"parent\":";
  add_opt_int buf sp.parent;
  Buffer.add_string buf ",\"name\":";
  add_str buf sp.name;
  Buffer.add_string buf ",\"start_us\":";
  Buffer.add_string buf (string_of_int sp.start_us);
  Buffer.add_string buf ",\"end_us\":";
  add_opt_int buf sp.end_us;
  Buffer.add_string buf ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_str buf v)
    sp.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let event_line (ev : Tracer.event) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"type\":\"event\",\"us\":";
  Buffer.add_string buf (string_of_int ev.time_us);
  Buffer.add_string buf ",\"component\":";
  add_str buf ev.component;
  Buffer.add_string buf ",\"kind\":";
  add_str buf ev.kind;
  Buffer.add_string buf ",\"detail\":";
  add_str buf ev.detail;
  Buffer.add_string buf ",\"span\":";
  add_opt_int buf ev.span;
  Buffer.add_string buf "}";
  Buffer.contents buf

(* Truncated telemetry must be detectable from the dump alone: any
   non-zero drop counts ride along in the meta line even when the
   caller passed no meta of its own. *)
let drop_meta t =
  let drops name n = if n = 0 then [] else [ (name, string_of_int n) ] in
  drops "dropped_spans" (Tracer.dropped_spans t)
  @ drops "dropped_events" (Tracer.dropped_events t)

let jsonl ?(meta = []) t =
  let buf = Buffer.create 4096 in
  let meta = meta @ drop_meta t in
  if meta <> [] then begin
    Buffer.add_string buf "{\"type\":\"meta\"";
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ',';
        add_str buf k;
        Buffer.add_char buf ':';
        add_str buf v)
      meta;
    Buffer.add_string buf "}\n"
  end;
  List.iter
    (fun sp ->
      Buffer.add_string buf (span_line sp);
      Buffer.add_char buf '\n')
    (Tracer.spans t);
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_line ev);
      Buffer.add_char buf '\n')
    (Tracer.events t);
  Buffer.contents buf

type span_stat = {
  st_name : string;
  st_count : int;
  st_open : int;
  st_total_s : float;
  st_mean_s : float;
  st_max_s : float;
}

type acc = {
  mutable a_count : int;
  mutable a_open : int;
  mutable a_total : float;
  mutable a_max : float;
}

let span_stats t =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (sp : Tracer.span) ->
      let a =
        match Hashtbl.find_opt tbl sp.name with
        | Some a -> a
        | None ->
            let a = { a_count = 0; a_open = 0; a_total = 0.; a_max = 0. } in
            Hashtbl.replace tbl sp.name a;
            a
      in
      match sp.end_us with
      | None -> a.a_open <- a.a_open + 1
      | Some e ->
          let d = float_of_int (e - sp.start_us) /. 1e6 in
          a.a_count <- a.a_count + 1;
          a.a_total <- a.a_total +. d;
          if d > a.a_max then a.a_max <- d)
    (Tracer.spans t);
  Hashtbl.fold
    (fun name a acc ->
      {
        st_name = name;
        st_count = a.a_count;
        st_open = a.a_open;
        st_total_s = a.a_total;
        st_mean_s =
          (if a.a_count = 0 then 0. else a.a_total /. float_of_int a.a_count);
        st_max_s = a.a_max;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)

let pp_span_stats ppf stats =
  Format.fprintf ppf "%-18s %6s %5s %10s %10s %10s@." "span" "count" "open"
    "total(s)" "mean(s)" "max(s)";
  List.iter
    (fun st ->
      Format.fprintf ppf "%-18s %6d %5d %10.3f %10.3f %10.3f@." st.st_name
        st.st_count st.st_open st.st_total_s st.st_mean_s st.st_max_s)
    stats

let completeness_line ?(trace_dropped = 0) t =
  Printf.sprintf
    "telemetry: %d spans (%d dropped), %d events (%d dropped), trace ring \
     dropped %d"
    (Tracer.span_count t) (Tracer.dropped_spans t) (Tracer.event_count t)
    (Tracer.dropped_events t) trace_dropped
