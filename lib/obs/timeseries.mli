(** Sliding-window aggregation over timestamped samples (virtual
    microseconds), the substrate for windowed SLO rules such as
    error-budget burn rate.

    Construction sorts by timestamp and every aggregate is
    commutative, so results are invariant under reordering of input
    points within a window. *)

type t

type agg = Count | Sum | Mean | Max | Min

val of_points : (int * float) list -> t
(** [(time_us, value)] samples in any order. *)

val of_events : ?value:(Tracer.event -> float) -> Tracer.event list -> t
(** One point per event at its timestamp; [value] defaults to
    [fun _ -> 1.] (counting). *)

val length : t -> int

val span_us : t -> (int * int) option
(** First and last timestamp, [None] when empty. *)

val sliding : width_us:int -> step_us:int -> agg -> t -> (int * float) list
(** Aggregate over half-open windows [\[w, w + width_us)], [w]
    stepping by [step_us] from the step-aligned floor of the first
    point through the last point. [Count]/[Sum] report empty windows
    as [0.]; [Mean]/[Max]/[Min] omit them. Raises [Invalid_argument]
    on non-positive width or step. *)

val max_window : width_us:int -> step_us:int -> agg -> t -> float option
(** Largest windowed value, [None] when no window produced one. *)
