(** Continuous forwarding-state auditor.

    Subscribes (via the owner's hooks) to flow-table changes, link
    state transitions, RIB publications and slice attributions,
    maintains an incremental {!Fwd_model} composed into forwarding
    walks per header equivalence class, and checks four invariants on
    every update:

    - no forwarding loops,
    - no blackholes for destinations inside a configured host prefix,
    - control-plane RIB vs. installed-FIB consistency per switch, and
    - FlowVisor slice isolation (no installed flow escapes the
      flowspace of the slice that installed it).

    Each violation is keyed coarsely (loops and blackholes by
    destination prefix, RIB–FIB divergence by switch, isolation by
    slice) and tracked as a *violation window* — opened when the first
    witness appears, closed when the last one disappears — so every
    fault produces a measurable interval in virtual time. Windows are
    mirrored as [audit.violation] spans on the attached tracer and
    counted in the attached metrics registry
    ([audit_violations_total{kind}], [audit_check_seconds],
    [audit_eq_classes], [audit_dropped_total]).

    Incrementality: every forwarding walk records the switches it
    visited; a rule or link update re-runs only the walks whose
    footprint contains a touched switch. {!full_recheck} re-runs
    everything and is the differential comparator the bench and the
    qcheck oracle use. All timestamps come from the injected clock
    (the simulation installs virtual time), so same-seed windows are
    byte-identical; wall-clock only ever feeds the
    [audit_check_seconds] histogram. *)

open Rf_packet

type kind = Loop | Blackhole | Rib_fib | Slice

val kind_to_string : kind -> string
(** ["loop"], ["blackhole"], ["rib_fib"], ["slice"]. *)

type window = {
  w_kind : kind;
  w_key : string;
  w_open_us : int;
  mutable w_close_us : int option;  (** [None] while still open *)
}

type t

val create :
  ?clock:(unit -> int) ->
  ?tracer:Tracer.t ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** [clock] defaults to the tracer's clock when one is attached, else
    to a constant 0. *)

(** {1 Topology feed (setup time)} *)

val add_switch : t -> int64 -> unit
(** Registers a switch as a probe ingress (and in the model). *)

val add_link : t -> a:int64 * int -> b:int64 * int -> unit

val add_host : t -> dpid:int64 -> port:int -> Ipv4_addr.Prefix.t -> unit
(** Declares a configured prefix served behind [port] of [dpid]:
    blackhole checking covers exactly these destinations. *)

val set_slice : t -> string -> Rf_openflow.Of_match.t list -> unit
(** Registers (or replaces) a slice's flowspace pattern list. *)

(** {1 Update feed (every call is one audited update)} *)

val set_switch_rules : t -> int64 -> Fwd_model.rule list -> unit
(** Replaces the switch's classifier snapshot and re-audits
    incrementally. *)

val set_link_state : t -> a:int64 * int -> b:int64 * int -> bool -> unit

val set_rib : t -> int64 -> (Ipv4_addr.Prefix.t * int) list -> unit
(** Publishes the switch's desired FIB: the (prefix, output port)
    pairs its VM's RIB currently resolves. *)

val attribute :
  t -> dpid:int64 -> match_:Rf_openflow.Of_match.t -> priority:int ->
  string -> unit
(** Records which slice installed the flow identified by (match,
    priority) on [dpid]; the isolation check consults this map. *)

val full_recheck : t -> unit
(** Re-runs every walk and every per-switch check. Window state is
    unchanged when the incremental bookkeeping was correct — this is
    the comparator benched against the incremental path. *)

(** {1 Results} *)

val windows : t -> window list
(** Every violation window, in opening order. *)

val open_violations : t -> (kind * string) list
(** Currently-open windows, sorted. *)

val overlapping : t -> start_us:int -> stop_us:int -> window list
(** Windows intersecting the closed interval [start_us, stop_us] —
    the exit-code-5 gate evaluates this over the steady-state
    interval. *)

val reachability : t -> (string * int64 * string) list
(** One row per (equivalence class, ingress switch): the class's
    prefix, the ingress dpid and the walk verdict ("delivered" /
    "blackhole" / "loop" / "unprobed" when the class has no coverable
    representative). Sorted; the qcheck oracle diffs this against
    brute-force per-packet simulation. *)

val updates : t -> int
(** Audited updates processed. *)

val eq_classes : t -> int

val walks : t -> int
(** Forwarding walks currently cached (classes x ingresses). *)

val dropped : t -> int
(** Classes the auditor could not probe (no representative address
    avoids every more-specific class): non-zero means the audit is
    incomplete, surfaced like dropped telemetry records. *)

val violations_total : t -> kind -> int
(** Windows opened so far, per kind. *)
