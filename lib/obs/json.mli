(** Minimal JSON reader for the formats this library itself writes
    ({!Export.jsonl} dumps, {!Baseline} files).

    Hand-rolled rather than a dependency: the build image carries no
    JSON library, and the emitted subset (objects, arrays, strings,
    numbers, booleans, null) keeps this small. Numbers that parse as
    OCaml [int] stay exact — span timestamps are integer microseconds
    and must not round-trip through floats. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

val parse : string -> value
(** Parses one complete JSON value; raises {!Parse_error} on malformed
    or trailing input. *)

(** {1 Accessors} — [None] on type or key mismatch. *)

val member : string -> value -> value option

val to_string_opt : value -> string option

val to_int_opt : value -> int option

val to_float_opt : value -> float option
(** Accepts both [Int] and [Float]. *)

val to_list_opt : value -> value list option

val obj_fields : value -> (string * value) list
(** Fields in document order; [[]] for non-objects. *)
