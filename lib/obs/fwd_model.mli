(** Network-wide forwarding model for the continuous auditor.

    A snapshot-fed mirror of the data plane: per-switch classifier
    snapshots (priority-ordered wildcard rules), link adjacency with
    up/down state, and host attachment points with the prefix each
    host serves. {!walk} traces one header through the model exactly
    as the emulated datapaths would forward it — first matching rule
    wins (priority descending, installation order breaking ties), MAC
    rewrites applied in flight, one physical output followed per hop —
    and classifies the outcome as delivered, blackholed or looping.

    This library sits below [rf_net]; it never reads live switch
    state. The auditor feeds it converted snapshots, which is what
    makes the differential oracle (model vs. real flow tables)
    meaningful. *)

open Rf_packet

type rule = {
  ru_match : Rf_openflow.Of_match.t;
  ru_priority : int;
  ru_seq : int;  (** installation order; equal-priority tie-break *)
  ru_out_ports : int list;  (** raw [Output] ports, pseudo-ports included *)
  ru_set_dl_src : Mac.t option;
  ru_set_dl_dst : Mac.t option;
}

val rule_of_actions :
  match_:Rf_openflow.Of_match.t ->
  priority:int ->
  seq:int ->
  Rf_openflow.Of_action.t list ->
  rule
(** Extracts outputs and MAC rewrites from an OF 1.0 action list
    (other rewrites are irrelevant to the invariants audited here). *)

type verdict =
  | Delivered of int64 * int  (** egress switch and host port *)
  | Blackhole of int64
      (** no matching rule, no usable output, a dead link, or delivery
          to a host that does not serve the destination *)
  | Loop of int64 list  (** switches visited, in order, on the cycle *)

val verdict_to_string : verdict -> string
(** ["delivered"], ["blackhole"] or ["loop"]. *)

type t

val create : unit -> t

val add_switch : t -> int64 -> unit
(** Registers a switch with an empty classifier. Idempotent. *)

val set_switch_rules : t -> int64 -> rule list -> unit
(** Replaces the switch's classifier snapshot (registering the switch
    if needed). Rules are re-sorted internally. *)

val switch_rules : t -> int64 -> rule list
(** Priority descending, then [ru_seq] ascending; [] when unknown. *)

val switches : t -> int64 list
(** Sorted. *)

val add_link : t -> a:int64 * int -> b:int64 * int -> unit
(** Registers a bidirectional switch-switch link, initially up. *)

val set_link_state : t -> a:int64 * int -> b:int64 * int -> bool -> unit
(** Marks both directions of the link up or down; unknown links are
    registered on the fly. *)

val link_is_up : t -> int64 * int -> bool
(** Whether the link behind this switch port is usable ([true] for
    ports with no registered link — {!walk} then reports a blackhole
    for want of a peer, not a dead link). *)

val add_host : t -> dpid:int64 -> port:int -> Ipv4_addr.Prefix.t -> unit
(** Declares a host attachment: packets leaving [port] of [dpid] reach
    a host serving [prefix]. *)

val host_port : t -> int64 -> (int * Ipv4_addr.Prefix.t) option
(** The first registered host attachment of a switch (lowest port). *)

val walk :
  t -> dpid:int64 -> in_port:int -> Rf_openflow.Of_match.key ->
  verdict * int64 list
(** Traces the header from ([dpid], [in_port]) and returns the verdict
    plus every switch visited, in order, first visit only — the
    footprint used for incremental invalidation. A revisited
    (switch, ingress port) pair is a loop. *)
