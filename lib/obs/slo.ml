(* Declarative SLO rules over an ingested telemetry dump.

   A rule names a measurement source, a direction, and warn/fail
   thresholds; evaluation is a pure function of the dump, so verdicts
   for a seeded run are byte-identical across invocations — which lets
   CI diff the scorecard like any other fingerprint. *)

type verdict = Pass | Warn | Fail

let verdict_string = function Pass -> "PASS" | Warn -> "WARN" | Fail -> "FAIL"

let verdict_rank = function Pass -> 0 | Warn -> 1 | Fail -> 2

type event_match = { m_component : string option; m_kind : string option }

type source =
  | Span_last_end_s of string
  | Span_max_duration_s of string
  | Span_total_duration_s of string
  | Span_union_duration_s of string
  | Span_quantile_s of string * float
  | Span_count of string
  | Event_count of event_match
  | Meta_s of string
  | Meta_diff_s of string * string
  | Meta_ratio of string * string
  | Burn_rate of {
      errors : event_match;
      total : event_match;
      objective : float;
      window_us : int;
    }
  | Dropped_records

type direction = At_most | At_least

type rule = {
  r_name : string;
  r_what : string;
  r_source : source;
  r_direction : direction;
  r_warn : float;
  r_fail : float;
  r_unit : string;
}

type result = { res_rule : rule; res_value : float option; res_verdict : verdict }

let s_of_us us = float_of_int us /. 1e6

let closed_durations_us dump name =
  Ingest.spans_named dump name
  |> List.filter_map (fun (sp : Tracer.span) ->
         match sp.end_us with Some e -> Some (e - sp.start_us) | None -> None)

(* Linear-interpolation percentile over raw durations; local rather
   than Rf_sim.Stats because this library sits below rf_sim. *)
let percentile q xs =
  match List.sort compare xs with
  | [] -> None
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let rank = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      Some (arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo))))

let union_us intervals =
  let sorted = List.sort compare intervals in
  let total, _ =
    List.fold_left
      (fun (total, cur_end) (s, e) ->
        if e <= s then (total, cur_end)
        else if s >= cur_end then (total + (e - s), e)
        else if e > cur_end then (total + (e - cur_end), e)
        else (total, cur_end))
      (0, min_int) sorted
  in
  total

let event_matches m (ev : Tracer.event) =
  (match m.m_component with Some c -> ev.component = c | None -> true)
  && match m.m_kind with Some k -> ev.kind = k | None -> true

let measure (dump : Ingest.dump) = function
  | Span_last_end_s name -> (
      match
        Ingest.spans_named dump name
        |> List.filter_map (fun (sp : Tracer.span) -> sp.end_us)
      with
      | [] -> None
      | ends -> Some (s_of_us (List.fold_left max min_int ends)))
  | Span_max_duration_s name -> (
      match closed_durations_us dump name with
      | [] -> None
      | ds -> Some (s_of_us (List.fold_left max 0 ds)))
  | Span_total_duration_s name -> (
      match closed_durations_us dump name with
      | [] -> None
      | ds -> Some (s_of_us (List.fold_left ( + ) 0 ds)))
  | Span_union_duration_s name -> (
      match
        Ingest.spans_named dump name
        |> List.filter_map (fun (sp : Tracer.span) ->
               match sp.end_us with
               | Some e -> Some (sp.start_us, e)
               | None -> None)
      with
      | [] -> None
      | intervals -> Some (s_of_us (union_us intervals)))
  | Span_quantile_s (name, q) ->
      closed_durations_us dump name
      |> List.map float_of_int
      |> percentile q
      |> Option.map (fun us -> us /. 1e6)
  | Span_count name ->
      Some (float_of_int (List.length (Ingest.spans_named dump name)))
  | Event_count m ->
      Some
        (float_of_int
           (List.length (List.filter (event_matches m) dump.events)))
  | Meta_s key -> Ingest.meta_float dump key
  | Meta_diff_s (a, b) -> (
      match (Ingest.meta_float dump a, Ingest.meta_float dump b) with
      | Some va, Some vb -> Some (va -. vb)
      | _ -> None)
  | Meta_ratio (num, den) -> (
      match (Ingest.meta_float dump num, Ingest.meta_float dump den) with
      | Some _, Some d when d = 0. -> None
      | Some n, Some d -> Some (n /. d)
      | _ -> None)
  | Burn_rate { errors; total; objective; window_us } ->
      if objective < 0. || objective >= 1. then
        invalid_arg "Slo: burn-rate objective outside [0,1)";
      let series m =
        Timeseries.of_events (List.filter (event_matches m) dump.events)
      in
      let step = max 1 (window_us / 4) in
      let windowed m =
        Timeseries.sliding ~width_us:window_us ~step_us:step Timeseries.Count
          (series m)
      in
      let err = windowed errors in
      let tot = windowed total in
      (* Windows align because both series step identically; missing
         windows on either side count as zero. *)
      let tbl = Hashtbl.create 16 in
      List.iter (fun (w, v) -> Hashtbl.replace tbl w v) tot;
      let burn =
        List.fold_left
          (fun acc (w, e) ->
            let t = match Hashtbl.find_opt tbl w with Some v -> v | None -> 0. in
            let all = max t e in
            if all = 0. then acc
            else max acc (e /. all /. (1. -. objective)))
          0. err
      in
      Some burn
  | Dropped_records -> Some (float_of_int (Ingest.dropped_records dump))

let verdict_of rule value =
  match value with
  | None -> Fail
  | Some v -> (
      match rule.r_direction with
      | At_most ->
          if v > rule.r_fail then Fail
          else if v > rule.r_warn then Warn
          else Pass
      | At_least ->
          if v < rule.r_fail then Fail
          else if v < rule.r_warn then Warn
          else Pass)

let evaluate dump rules =
  List.map
    (fun rule ->
      let value = measure dump rule.r_source in
      { res_rule = rule; res_value = value; res_verdict = verdict_of rule value })
    rules

let worst results =
  List.fold_left
    (fun acc r ->
      if verdict_rank r.res_verdict > verdict_rank acc then r.res_verdict
      else acc)
    Pass results

let pp_scorecard ppf results =
  Format.fprintf ppf "%-34s %14s %10s %10s  %s@." "SLO" "value" "warn" "fail"
    "verdict";
  List.iter
    (fun r ->
      let value =
        match r.res_value with
        | Some v -> Printf.sprintf "%.3f %s" v r.res_rule.r_unit
        | None -> "n/a"
      in
      Format.fprintf ppf "%-34s %14s %10.3f %10.3f  %s@." r.res_rule.r_name
        value r.res_rule.r_warn r.res_rule.r_fail
        (verdict_string r.res_verdict))
    results;
  Format.fprintf ppf "overall: %s@." (verdict_string (worst results))
