(* Critical-path extraction over a span tree.

   The configure pipeline traces as a root span (sw.configure) with
   phase children (discovery, rpc, vm, quagga); the critical path is
   the root-to-leaf chain of locally-longest spans, and self time is
   the part of each span not covered by its children — computed as
   interval arithmetic on the integer-microsecond stamps, so results
   are exact and byte-stable across same-seed runs. *)

type node = {
  span : Tracer.span;
  n_end_us : int;
  n_total_us : int;
  n_self_us : int;
  children : node list;
}

type step = {
  cp_name : string;
  cp_span_id : int;
  cp_depth : int;
  cp_total_us : int;
  cp_self_us : int;
}

(* Open spans (crash mid-configure, dump taken mid-run) clamp to the
   latest timestamp in the dump so durations stay defined. *)
let horizon spans =
  List.fold_left
    (fun acc (sp : Tracer.span) ->
      let e = match sp.end_us with Some e -> e | None -> sp.start_us in
      max acc e)
    0 spans

(* Length of the union of [intervals] clipped to [lo, hi]. Intervals
   must be sorted by start. *)
let covered_us ~lo ~hi intervals =
  let total, _ =
    List.fold_left
      (fun (total, cur_end) (s, e) ->
        let s = max s lo and e = min e hi in
        if e <= s then (total, cur_end)
        else if s >= cur_end then (total + (e - s), e)
        else if e > cur_end then (total + (e - cur_end), e)
        else (total, cur_end))
      (0, min_int) intervals
  in
  total

let forest spans =
  let hz = horizon spans in
  let end_of (sp : Tracer.span) =
    match sp.end_us with Some e -> e | None -> max hz sp.start_us
  in
  let by_parent : (int, Tracer.span list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sp : Tracer.span) ->
      match sp.parent with
      | Some p ->
          let prev =
            match Hashtbl.find_opt by_parent p with Some l -> l | None -> []
          in
          Hashtbl.replace by_parent p (sp :: prev)
      | None -> ())
    spans;
  let children_of id =
    (match Hashtbl.find_opt by_parent id with Some l -> l | None -> [])
    |> List.sort (fun (a : Tracer.span) (b : Tracer.span) ->
           match compare a.start_us b.start_us with
           | 0 -> compare a.id b.id
           | c -> c)
  in
  let rec build (sp : Tracer.span) =
    let n_end_us = end_of sp in
    let children = List.map build (children_of sp.id) in
    let intervals =
      List.map (fun c -> (c.span.start_us, c.n_end_us)) children
    in
    let covered = covered_us ~lo:sp.start_us ~hi:n_end_us intervals in
    {
      span = sp;
      n_end_us;
      n_total_us = n_end_us - sp.start_us;
      n_self_us = n_end_us - sp.start_us - covered;
      children;
    }
  in
  List.filter (fun (sp : Tracer.span) -> sp.parent = None) spans
  |> List.sort (fun (a : Tracer.span) (b : Tracer.span) ->
         match compare a.start_us b.start_us with
         | 0 -> compare a.id b.id
         | c -> c)
  |> List.map build

(* Deepest-first search for the longest node with [name]; ties break
   to the lowest span id so the choice is deterministic. *)
let find_longest ~name nodes =
  let better a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some na, Some nb ->
        if nb.n_total_us > na.n_total_us then Some nb
        else if nb.n_total_us < na.n_total_us then Some na
        else if nb.span.id < na.span.id then Some nb
        else Some na
  in
  let rec scan best n =
    let best =
      if n.span.name = name then better best (Some n) else best
    in
    List.fold_left scan best n.children
  in
  List.fold_left scan None nodes

let critical_path node =
  let rec go depth n acc =
    let step =
      {
        cp_name = n.span.name;
        cp_span_id = n.span.id;
        cp_depth = depth;
        cp_total_us = n.n_total_us;
        cp_self_us = n.n_self_us;
      }
    in
    match n.children with
    | [] -> List.rev (step :: acc)
    | cs ->
        let widest =
          List.fold_left
            (fun best c ->
              if c.n_total_us > best.n_total_us then c
              else if
                c.n_total_us = best.n_total_us && c.span.id < best.span.id
              then c
              else best)
            (List.hd cs) (List.tl cs)
        in
        go (depth + 1) widest (step :: acc)
  in
  go 0 node []

let rec fold_nodes f acc nodes =
  List.fold_left (fun acc n -> fold_nodes f (f acc n) n.children) acc nodes

let s_of_us us = float_of_int us /. 1e6

let pp_path ppf steps =
  Format.fprintf ppf "%-24s %10s %10s %6s@." "critical path" "total(s)"
    "self(s)" "share";
  let root_total =
    match steps with [] -> 0 | s :: _ -> max 1 s.cp_total_us
  in
  List.iter
    (fun s ->
      let indent = String.make (2 * s.cp_depth) ' ' in
      Format.fprintf ppf "%-24s %10.3f %10.3f %5.1f%%@."
        (indent ^ s.cp_name) (s_of_us s.cp_total_us) (s_of_us s.cp_self_us)
        (100. *. float_of_int s.cp_self_us /. float_of_int root_total))
    steps
