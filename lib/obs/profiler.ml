(* Per-entity load attribution over the simulation engine's dispatch
   loop. The engine calls [tick] once per executed event; each tick
   takes a single wall-clock sample and charges the interval since the
   previous sample to the *previous* event's entity. Consecutive
   samples therefore partition the run's wall time exactly: summing
   attributed busy time plus idle time reproduces the total run time
   to the nanosecond, which is what the conservation property tests
   pin.

   Entities are mutable handles with inline counters, created once per
   component and registered lazily on first tick (stamp check), so the
   per-event cost is one clock read plus a handful of int stores — no
   hashing, no allocation. *)

type kind =
  | Unattributed
  | Idle
  | Component of string
  | Switch of int64
  | Link of int64 * int64
  | Host of string
  | Controller of int

type entity = {
  kind : kind;
  mutable ev_count : int;
  mutable busy_ns : int;
  mutable stamp : int;
}

let make kind = { kind; ev_count = 0; busy_ns = 0; stamp = 0 }

let component name = make (Component name)

let switch dpid = make (Switch dpid)

let link a b = if Int64.compare a b <= 0 then make (Link (a, b)) else make (Link (b, a))

let host name = make (Host name)

let controller i = make (Controller i)

let unattributed () = make Unattributed

let kind_id = function
  | Unattributed -> "unattributed"
  | Idle -> "idle"
  | Component c -> "comp:" ^ c
  | Switch d -> Printf.sprintf "sw:%Ld" d
  | Link (a, b) -> Printf.sprintf "link:%Ld-%Ld" a b
  | Host h -> "host:" ^ h
  | Controller i -> Printf.sprintf "ctl:%d" i

let entity_id e = kind_id e.kind

type sample = {
  s_us : int;  (** virtual-clock timestamp of the sample *)
  s_depth : int;  (** event-heap depth at the sample point *)
  s_minor_words : float;  (** cumulative minor words since [create] *)
  s_major_collections : int;
}

type t = {
  clock_ns : unit -> int;
  clock_every : int;
  sample_every : int;
  stamp_id : int;
  idle : entity;
  gc0 : Gc.stat;
  messages : (kind * kind, int ref) Hashtbl.t;
  mutable handles : entity list;
  mutable current : entity;
  mutable last_ns : int;
  mutable run_start_ns : int;
  mutable running : bool;
  mutable dispatches : int;
  mutable next_clock : int;
  mutable next_sample : int;
  mutable run_ns : int;
  mutable heap_peak : int;
  mutable pushes : int;
  mutable samples : sample list;  (* newest first *)
  mutable gc_last : Gc.stat;
}

(* Wall clock in integer nanoseconds relative to a base captured at
   profiler creation: gettimeofday is a ~25 ns vDSO call with
   microsecond resolution, and subtracting the base keeps the float
   subtraction exact well past any realistic run length. *)
let default_clock () =
  let base = Unix.gettimeofday () in
  fun () -> int_of_float ((Unix.gettimeofday () -. base) *. 1e9)

let stamp_counter = ref 0

let create ?clock_ns ?(clock_every = 32) ?(sample_every = 4096) () =
  if sample_every < 1 then invalid_arg "Profiler.create: sample_every < 1";
  if clock_every < 1 then invalid_arg "Profiler.create: clock_every < 1";
  incr stamp_counter;
  let stamp = !stamp_counter in
  let clock_ns =
    match clock_ns with Some f -> f | None -> default_clock ()
  in
  let idle = make Idle in
  idle.stamp <- stamp;
  let gc0 = Gc.quick_stat () in
  {
    clock_ns;
    clock_every;
    sample_every;
    stamp_id = stamp;
    idle;
    gc0;
    messages = Hashtbl.create 64;
    handles = [ idle ];
    current = idle;
    last_ns = 0;
    run_start_ns = 0;
    running = false;
    dispatches = 0;
    next_clock = clock_every;
    next_sample = sample_every;
    run_ns = 0;
    heap_peak = 0;
    pushes = 0;
    samples = [];
    gc_last = gc0;
  }

let register p e =
  e.stamp <- p.stamp_id;
  e.ev_count <- 0;
  e.busy_ns <- 0;
  p.handles <- e :: p.handles

let take_sample p ~now_us ~depth =
  let st = Gc.quick_stat () in
  p.gc_last <- st;
  p.samples <-
    {
      s_us = now_us;
      s_depth = depth;
      s_minor_words = st.Gc.minor_words -. p.gc0.Gc.minor_words;
      s_major_collections =
        st.Gc.major_collections - p.gc0.Gc.major_collections;
    }
    :: p.samples

let run_begin p =
  if not p.running then begin
    p.running <- true;
    p.current <- p.idle;
    p.next_clock <- p.dispatches + p.clock_every;
    p.next_sample <- p.dispatches + p.sample_every;
    let t = p.clock_ns () in
    p.last_ns <- t;
    p.run_start_ns <- t
  end

(* The hot path: integer stores only, no allocation, no write barrier.
   The wall clock is read every [clock_every] dispatches; the interval
   it closes is charged to the entity of the previous clock boundary
   ([clock_every = 1] degenerates to exact per-event attribution).
   Successive intervals partition the run, so per-entity busy plus
   idle equals total run time to the nanosecond at any stride. *)
let tick p e ~depth ~now_us =
  if e.stamp <> p.stamp_id then register p e;
  e.ev_count <- e.ev_count + 1;
  let d = p.dispatches + 1 in
  p.dispatches <- d;
  if d >= p.next_clock then begin
    p.next_clock <- d + p.clock_every;
    let t = p.clock_ns () in
    p.current.busy_ns <- p.current.busy_ns + (t - p.last_ns);
    p.last_ns <- t;
    p.current <- e;
    (* Heap/GC samples align to clock boundaries, so their points stay
       a deterministic function of the dispatch count. *)
    if d >= p.next_sample then begin
      p.next_sample <- d + p.sample_every;
      take_sample p ~now_us ~depth
    end
  end

let run_end p ~depth ~now_us ~pushes ~peak =
  if p.running then begin
    let t = p.clock_ns () in
    p.current.busy_ns <- p.current.busy_ns + (t - p.last_ns);
    p.last_ns <- t;
    p.run_ns <- p.run_ns + (t - p.run_start_ns);
    p.current <- p.idle;
    p.running <- false;
    if peak > p.heap_peak then p.heap_peak <- peak;
    p.pushes <- pushes;
    (* Close the depth/GC timeseries with a final sample at the run's
       last virtual instant. *)
    take_sample p ~now_us ~depth
  end

let message_counter p ~src ~dst =
  let key = (src.kind, dst.kind) in
  match Hashtbl.find_opt p.messages key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace p.messages key r;
      r

let message p ~src ~dst = incr (message_counter p ~src ~dst)

let dispatches p = p.dispatches

(** {1 Snapshots} *)

type entity_stat = {
  es_id : string;
  es_kind : kind;
  es_events : int;
  es_busy_ns : int;
}

type gc_delta = {
  gd_minor_words : float;
  gd_promoted_words : float;
  gd_major_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_compactions : int;
  gd_top_heap_words : int;
}

type snapshot = {
  sn_events : int;
  sn_entities : entity_stat list;
  sn_attributed_events : int;
  sn_busy_ns : int;
  sn_idle_ns : int;
  sn_run_ns : int;
  sn_heap_peak : int;
  sn_heap_pushes : int;
  sn_samples : sample list;
  sn_gc : gc_delta;
  sn_messages : (string * string * int) list;
}

let snapshot p =
  (* Merge handles by kind: several components may hold distinct
     handles for the same logical entity (e.g. a switch's datapath and
     its VM both tagging [Switch dpid]). *)
  let merged : (kind, int * int) Hashtbl.t = Hashtbl.create 64 in
  let idle_ns = ref 0 in
  List.iter
    (fun e ->
      if e.kind = Idle then idle_ns := !idle_ns + e.busy_ns
      else
        let ev, ns =
          match Hashtbl.find_opt merged e.kind with
          | Some (ev, ns) -> (ev, ns)
          | None -> (0, 0)
        in
        Hashtbl.replace merged e.kind (ev + e.ev_count, ns + e.busy_ns))
    p.handles;
  let entities =
    Hashtbl.fold
      (fun kind (ev, ns) acc ->
        { es_id = kind_id kind; es_kind = kind; es_events = ev; es_busy_ns = ns }
        :: acc)
      merged []
    |> List.sort (fun a b ->
           match compare b.es_events a.es_events with
           | 0 -> String.compare a.es_id b.es_id
           | c -> c)
  in
  let busy = List.fold_left (fun acc e -> acc + e.es_busy_ns) 0 entities in
  let attributed =
    List.fold_left
      (fun acc e ->
        match e.es_kind with Unattributed | Idle -> acc | _ -> acc + e.es_events)
      0 entities
  in
  let gc =
    {
      gd_minor_words = p.gc_last.Gc.minor_words -. p.gc0.Gc.minor_words;
      gd_promoted_words =
        p.gc_last.Gc.promoted_words -. p.gc0.Gc.promoted_words;
      gd_major_words = p.gc_last.Gc.major_words -. p.gc0.Gc.major_words;
      gd_minor_collections =
        p.gc_last.Gc.minor_collections - p.gc0.Gc.minor_collections;
      gd_major_collections =
        p.gc_last.Gc.major_collections - p.gc0.Gc.major_collections;
      gd_compactions = p.gc_last.Gc.compactions - p.gc0.Gc.compactions;
      gd_top_heap_words = p.gc_last.Gc.top_heap_words;
    }
  in
  let messages =
    Hashtbl.fold
      (fun (src, dst) r acc -> (kind_id src, kind_id dst, !r) :: acc)
      p.messages []
    |> List.sort (fun (s1, d1, c1) (s2, d2, c2) ->
           match compare c2 c1 with
           | 0 -> (
               match String.compare s1 s2 with
               | 0 -> String.compare d1 d2
               | c -> c)
           | c -> c)
  in
  {
    sn_events = p.dispatches;
    sn_entities = entities;
    sn_attributed_events = attributed;
    sn_busy_ns = busy;
    sn_idle_ns = !idle_ns;
    sn_run_ns = p.run_ns;
    sn_heap_peak = p.heap_peak;
    sn_heap_pushes = p.pushes;
    sn_samples = List.rev p.samples;
    sn_gc = gc;
    sn_messages = messages;
  }

(* Aggregate per-shard snapshots into one profile so E10-style reports
   stay meaningful when the run was sharded: counters sum, entity and
   message rows merge by id, heap samples interleave chronologically.
   The heap peak is also summed — the shard heaps coexist, so their
   peaks add up to the run's worst-case footprint. *)
let merge snapshots =
  match snapshots with
  | [] -> invalid_arg "Profiler.merge: empty list"
  | [ sn ] -> sn
  | _ :: _ ->
      let entities : (string, entity_stat) Hashtbl.t = Hashtbl.create 64 in
      let messages : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun sn ->
          List.iter
            (fun es ->
              match Hashtbl.find_opt entities es.es_id with
              | Some cur ->
                  Hashtbl.replace entities es.es_id
                    {
                      cur with
                      es_events = cur.es_events + es.es_events;
                      es_busy_ns = cur.es_busy_ns + es.es_busy_ns;
                    }
              | None -> Hashtbl.add entities es.es_id es)
            sn.sn_entities;
          List.iter
            (fun (src, dst, n) ->
              let cur =
                Option.value ~default:0 (Hashtbl.find_opt messages (src, dst))
              in
              Hashtbl.replace messages (src, dst) (cur + n))
            sn.sn_messages)
        snapshots;
      let sum f = List.fold_left (fun acc sn -> acc + f sn) 0 snapshots in
      let sumf f = List.fold_left (fun acc sn -> acc +. f sn) 0. snapshots in
      {
        sn_events = sum (fun sn -> sn.sn_events);
        sn_entities =
          Hashtbl.fold (fun _ es acc -> es :: acc) entities []
          |> List.sort (fun a b ->
                 match compare b.es_events a.es_events with
                 | 0 -> String.compare a.es_id b.es_id
                 | c -> c);
        sn_attributed_events = sum (fun sn -> sn.sn_attributed_events);
        sn_busy_ns = sum (fun sn -> sn.sn_busy_ns);
        sn_idle_ns = sum (fun sn -> sn.sn_idle_ns);
        sn_run_ns = sum (fun sn -> sn.sn_run_ns);
        sn_heap_peak = sum (fun sn -> sn.sn_heap_peak);
        sn_heap_pushes = sum (fun sn -> sn.sn_heap_pushes);
        sn_samples =
          List.concat_map (fun sn -> sn.sn_samples) snapshots
          |> List.stable_sort (fun a b -> compare a.s_us b.s_us);
        sn_gc =
          {
            gd_minor_words = sumf (fun sn -> sn.sn_gc.gd_minor_words);
            gd_promoted_words = sumf (fun sn -> sn.sn_gc.gd_promoted_words);
            gd_major_words = sumf (fun sn -> sn.sn_gc.gd_major_words);
            gd_minor_collections =
              sum (fun sn -> sn.sn_gc.gd_minor_collections);
            gd_major_collections =
              sum (fun sn -> sn.sn_gc.gd_major_collections);
            gd_compactions = sum (fun sn -> sn.sn_gc.gd_compactions);
            gd_top_heap_words = sum (fun sn -> sn.sn_gc.gd_top_heap_words);
          };
        sn_messages =
          Hashtbl.fold (fun (src, dst) n acc -> (src, dst, n) :: acc) messages
            []
          |> List.sort (fun (s1, d1, c1) (s2, d2, c2) ->
                 match compare c2 c1 with
                 | 0 -> (
                     match String.compare s1 s2 with
                     | 0 -> String.compare d1 d2
                     | c -> c)
                 | c -> c);
      }

let attributed_share sn =
  if sn.sn_events = 0 then 0.
  else float_of_int sn.sn_attributed_events /. float_of_int sn.sn_events

let events_per_second sn =
  if sn.sn_run_ns <= 0 then 0.
  else float_of_int sn.sn_events /. (float_of_int sn.sn_run_ns /. 1e9)

(* Deterministic key/value pairs for telemetry meta: only values
   derived from the virtual simulation (event counts, heap shape) —
   never wall-clock or GC figures, which would break byte-identical
   fingerprints. *)
let meta sn =
  [
    ("profile_events", string_of_int sn.sn_events);
    ("profile_entities", string_of_int (List.length sn.sn_entities));
    ("profile_attributed_events", string_of_int sn.sn_attributed_events);
    ( "profile_attributed_pct",
      Printf.sprintf "%.1f" (100. *. attributed_share sn) );
    ("profile_heap_peak", string_of_int sn.sn_heap_peak);
    ("profile_heap_pushes", string_of_int sn.sn_heap_pushes);
  ]

(* Emit the snapshot onto the telemetry bus so JSONL export, analyze
   and SLO evaluation see profiles with no new plumbing. Entity events
   are stamped with the final virtual instant; heap-depth samples keep
   their own timestamps. *)
let emit sn ~tracer ~metrics ~now_us =
  List.iter
    (fun e ->
      Tracer.event_at tracer ~us:now_us ~component:"profiler" ~kind:"entity"
        (Printf.sprintf "%s events=%d" e.es_id e.es_events))
    sn.sn_entities;
  (* Stride the depth curve to at most 256 points so huge runs don't
     drown the event store. *)
  let n = List.length sn.sn_samples in
  let stride = if n <= 256 then 1 else (n + 255) / 256 in
  List.iteri
    (fun i s ->
      if i mod stride = 0 then
        Tracer.event_at tracer ~us:s.s_us ~component:"profiler" ~kind:"heap"
          (Printf.sprintf "depth=%d" s.s_depth))
    sn.sn_samples;
  (* dropped: samples not emitted are recoverable from the snapshot;
     the stride is deterministic so fingerprints stay stable. *)
  let g =
    Metrics.gauge metrics ~help:"peak event-heap depth over the profiled run"
      "profiler_heap_depth_peak"
  in
  Metrics.set g (float_of_int sn.sn_heap_peak);
  let g =
    Metrics.gauge metrics
      ~help:"share of executed events attributed to a typed entity"
      "profiler_attributed_ratio"
  in
  Metrics.set g (attributed_share sn);
  let c =
    Metrics.counter metrics ~help:"events executed while profiling"
      "profiler_events_total"
  in
  Metrics.incr ~by:sn.sn_events c;
  (* Wall-clock rate: real seconds, deliberately absent from [meta]. *)
  let g =
    Metrics.gauge metrics
      ~help:"executed events per wall-clock second while profiling"
      "profiler_events_per_second"
  in
  Metrics.set g (events_per_second sn)

(** {1 Reports} *)

let pp_share ppf (part, total) =
  if total = 0 then Format.fprintf ppf "0.0%%"
  else Format.fprintf ppf "%.1f%%" (100. *. float_of_int part /. float_of_int total)

(* [wall:false] prints only simulation-deterministic figures and is
   what fingerprinted summaries use; [wall:true] adds busy time, event
   rate and GC columns for interactive runs. *)
let pp_top ?(wall = false) ~top ppf sn =
  Format.fprintf ppf "profile: %d events over %d entities, %a attributed@."
    sn.sn_events
    (List.length sn.sn_entities)
    pp_share
    (sn.sn_attributed_events, sn.sn_events);
  Format.fprintf ppf "heap: peak depth %d, %d pushes@." sn.sn_heap_peak
    sn.sn_heap_pushes;
  if wall then begin
    Format.fprintf ppf
      "wall: run %.3f s, %.2f Mev/s, busy %.3f s, idle %.3f s@."
      (float_of_int sn.sn_run_ns /. 1e9)
      (events_per_second sn /. 1e6)
      (float_of_int sn.sn_busy_ns /. 1e9)
      (float_of_int sn.sn_idle_ns /. 1e9);
    Format.fprintf ppf
      "gc: %.1f M minor words, %.1f M major words, %d minor / %d major collections@."
      (sn.sn_gc.gd_minor_words /. 1e6)
      (sn.sn_gc.gd_major_words /. 1e6)
      sn.sn_gc.gd_minor_collections sn.sn_gc.gd_major_collections
  end;
  let shown = ref 0 in
  Format.fprintf ppf "%4s  %-24s %12s %7s" "rank" "entity" "events" "share";
  if wall then Format.fprintf ppf " %10s" "busy(ms)";
  Format.fprintf ppf "@.";
  List.iter
    (fun e ->
      if !shown < top then begin
        incr shown;
        Format.fprintf ppf "%4d  %-24s %12d %6.1f%%" !shown e.es_id
          e.es_events
          (if sn.sn_events = 0 then 0.
           else 100. *. float_of_int e.es_events /. float_of_int sn.sn_events);
        if wall then
          Format.fprintf ppf " %10.2f" (float_of_int e.es_busy_ns /. 1e6);
        Format.fprintf ppf "@."
      end)
    sn.sn_entities;
  if List.length sn.sn_entities > top then
    Format.fprintf ppf "      ... %d more entities@."
      (List.length sn.sn_entities - top)

let pp_depth_curve ?(points = 16) ppf sn =
  match sn.sn_samples with
  | [] -> Format.fprintf ppf "heap depth: no samples@."
  | samples ->
      let n = List.length samples in
      let stride = if n <= points then 1 else (n + points - 1) / points in
      Format.fprintf ppf "heap depth (every %d samples):@." stride;
      List.iteri
        (fun i s ->
          if i mod stride = 0 then
            Format.fprintf ppf "  t=%8.3fs depth=%6d@."
              (float_of_int s.s_us /. 1e6)
              s.s_depth)
        samples
