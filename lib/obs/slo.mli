(** Declarative SLO rule engine over an ingested telemetry dump.

    A rule pairs a measurement source with warn/fail thresholds;
    evaluation is a pure function of the dump, so a seeded run's
    scorecard is byte-identical across invocations and CI can diff it
    like any other fingerprint. A rule whose source produces no value
    (span never emitted, meta key absent) fails rather than passing
    vacuously. *)

type verdict = Pass | Warn | Fail

val verdict_string : verdict -> string
(** ["PASS"] / ["WARN"] / ["FAIL"] *)

val verdict_rank : verdict -> int
(** 0 / 1 / 2 — for ordering and exit codes. *)

type event_match = {
  m_component : string option;  (** [None] matches any *)
  m_kind : string option;
}

(** What to measure. All [_s] sources are seconds derived from the
    integer-microsecond telemetry. *)
type source =
  | Span_last_end_s of string
      (** Latest end of any span with this name — e.g. convergence
          completion time. *)
  | Span_max_duration_s of string  (** Slowest closed instance. *)
  | Span_total_duration_s of string  (** Sum over closed instances. *)
  | Span_union_duration_s of string
      (** Union of closed intervals — actual wall time disrupted when
          per-flow disruption spans overlap. *)
  | Span_quantile_s of string * float
      (** Linear-interpolation quantile of closed durations. *)
  | Span_count of string
  | Event_count of event_match
  | Meta_s of string  (** Meta value parsed as a float. *)
  | Meta_diff_s of string * string  (** [a - b]. *)
  | Meta_ratio of string * string
      (** [num / den]; no value when [den] is 0. *)
  | Burn_rate of {
      errors : event_match;
      total : event_match;
      objective : float;  (** success objective in [0,1), e.g. 0.99 *)
      window_us : int;
    }
      (** Worst sliding-window error-budget burn rate:
          [max over windows of (errors/total) / (1 - objective)];
          windows step by [window_us/4]. 1.0 = burning exactly the
          budget. *)
  | Dropped_records
      (** {!Ingest.dropped_records} — completeness guard. *)

type direction = At_most | At_least

type rule = {
  r_name : string;
  r_what : string;  (** human description, for docs/scorecards *)
  r_source : source;
  r_direction : direction;
  r_warn : float;
  r_fail : float;
  r_unit : string;
}

type result = {
  res_rule : rule;
  res_value : float option;
  res_verdict : verdict;
}

val measure : Ingest.dump -> source -> float option
(** Raises [Invalid_argument] on a burn-rate objective outside
    [\[0,1)]. *)

val evaluate : Ingest.dump -> rule list -> result list
(** One result per rule, in rule order. Missing values ⇒ [Fail]. *)

val worst : result list -> verdict
(** [Pass] for an empty list. *)

val pp_scorecard : Format.formatter -> result list -> unit
(** Fixed-width table plus an [overall:] line — the byte-diffable CI
    artifact. *)
