(** Machine-readable exporters for the tracer: JSONL span/event dump
    and a compact per-run summary table.

    All output is a pure function of tracer contents — timestamps are
    integer virtual microseconds and ordering is insertion order — so
    two same-seed runs export byte-identical text. *)

val json_escape : string -> string
(** Escapes for embedding inside a double-quoted JSON string
    (backslash, quote, control characters). *)

val span_line : Tracer.span -> string
(** One JSON object, no trailing newline:
    [{"type":"span","id":..,"parent":..,"name":"..","start_us":..,
      "end_us":..,"attrs":{..}}] — [parent]/[end_us] are [null] for
    roots/open spans. *)

val event_line : Tracer.event -> string
(** [{"type":"event","us":..,"component":"..","kind":"..",
     "detail":"..","span":..}] *)

val jsonl : ?meta:(string * string) list -> Tracer.t -> string
(** The full dump: an optional leading
    [{"type":"meta","k":"v",...}] line, then every span in id order,
    then every event in insertion order, newline-terminated. Non-zero
    tracer drop counts are appended to the meta line automatically
    (keys [dropped_spans]/[dropped_events]) so a truncated dump cannot
    pass downstream analysis silently. *)

val drop_meta : Tracer.t -> (string * string) list
(** The meta entries [jsonl] appends: empty when nothing was dropped. *)

val completeness_line : ?trace_dropped:int -> Tracer.t -> string
(** One summary-table line of span/event counts and drop counts;
    [trace_dropped] adds the {!Rf_sim.Trace} ring's own drop count. *)

(** {1 Summary table} *)

type span_stat = {
  st_name : string;
  st_count : int;  (** ended spans only *)
  st_open : int;  (** spans never closed *)
  st_total_s : float;
  st_mean_s : float;
  st_max_s : float;
}

val span_stats : Tracer.t -> span_stat list
(** Ended spans grouped by name, sorted by name. *)

val pp_span_stats : Format.formatter -> span_stat list -> unit
(** Renders the per-run summary table. *)
