(* Per-run summary persistence and regression detection.

   A run is a flat set of named indicators; the baseline file is JSON
   with deterministic key order and fixed-precision values, so saving
   the same run twice produces identical bytes. Diffing compares each
   indicator against a tolerance band: a change beyond tolerance in
   the bad direction (up for lower-is-better indicators, down
   otherwise) is a regression. *)

type indicator = {
  i_name : string;
  i_value : float;
  i_unit : string;
  i_lower_is_better : bool;
}

type run = { run_label : string; indicators : indicator list }

type tolerance = { tol_rel : float; tol_abs : float }

let default_tolerance = { tol_rel = 0.10; tol_abs = 0.001 }

type status = Ok | Improved | Regressed | Added | Removed

let status_string = function
  | Ok -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

type entry = {
  e_name : string;
  e_status : status;
  e_base : float option;
  e_current : float option;
  e_unit : string;
}

let schema = "rfauto-baseline-v1"

let sorted_indicators run =
  List.sort (fun a b -> String.compare a.i_name b.i_name) run.indicators

let to_json run =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"schema\": \"";
  Buffer.add_string buf schema;
  Buffer.add_string buf "\",\n  \"label\": \"";
  Buffer.add_string buf (Export.json_escape run.run_label);
  Buffer.add_string buf "\",\n  \"indicators\": [";
  List.iteri
    (fun i ind ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {\"name\": \"";
      Buffer.add_string buf (Export.json_escape ind.i_name);
      Buffer.add_string buf "\", \"value\": ";
      Buffer.add_string buf (Printf.sprintf "%.6f" ind.i_value);
      Buffer.add_string buf ", \"unit\": \"";
      Buffer.add_string buf (Export.json_escape ind.i_unit);
      Buffer.add_string buf "\", \"lower_is_better\": ";
      Buffer.add_string buf (if ind.i_lower_is_better then "true" else "false");
      Buffer.add_string buf "}")
    (sorted_indicators run);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let of_json text =
  let j =
    try Json.parse text with Json.Parse_error e -> fail "baseline: %s" e
  in
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | Some (Json.Str s) -> fail "baseline: unknown schema %S" s
  | _ -> fail "baseline: missing schema");
  let label =
    match Option.bind (Json.member "label" j) Json.to_string_opt with
    | Some l -> l
    | None -> fail "baseline: missing label"
  in
  let indicators =
    match Option.bind (Json.member "indicators" j) Json.to_list_opt with
    | None -> fail "baseline: missing indicators"
    | Some items ->
        List.map
          (fun item ->
            let str key =
              match Option.bind (Json.member key item) Json.to_string_opt with
              | Some s -> s
              | None -> fail "baseline: indicator missing %S" key
            in
            let value =
              match Option.bind (Json.member "value" item) Json.to_float_opt with
              | Some v -> v
              | None -> fail "baseline: indicator missing value"
            in
            let lower =
              match Json.member "lower_is_better" item with
              | Some (Json.Bool b) -> b
              | _ -> true
            in
            {
              i_name = str "name";
              i_value = value;
              i_unit = str "unit";
              i_lower_is_better = lower;
            })
          items
  in
  { run_label = label; indicators }

let save path run =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json run))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))

let within_tolerance tol ~base ~current =
  let delta = Float.abs (current -. base) in
  delta <= tol.tol_abs || delta <= tol.tol_rel *. Float.abs base

let diff ?(tol = default_tolerance) ~base ~current () =
  let names =
    List.sort_uniq String.compare
      (List.map (fun i -> i.i_name) base.indicators
      @ List.map (fun i -> i.i_name) current.indicators)
  in
  let find run name =
    List.find_opt (fun i -> i.i_name = name) run.indicators
  in
  List.map
    (fun name ->
      match (find base name, find current name) with
      | None, Some c ->
          {
            e_name = name;
            e_status = Added;
            e_base = None;
            e_current = Some c.i_value;
            e_unit = c.i_unit;
          }
      | Some b, None ->
          {
            e_name = name;
            e_status = Removed;
            e_base = Some b.i_value;
            e_current = None;
            e_unit = b.i_unit;
          }
      | None, None -> assert false
      | Some b, Some c ->
          let status =
            if within_tolerance tol ~base:b.i_value ~current:c.i_value then Ok
            else
              let worse =
                if c.i_lower_is_better then c.i_value > b.i_value
                else c.i_value < b.i_value
              in
              if worse then Regressed else Improved
          in
          {
            e_name = name;
            e_status = status;
            e_base = Some b.i_value;
            e_current = Some c.i_value;
            e_unit = c.i_unit;
          })
    names

let has_regression entries =
  List.exists (fun e -> e.e_status = Regressed) entries

let pp_diff ppf entries =
  Format.fprintf ppf "%-34s %12s %12s %8s  %s@." "indicator" "baseline"
    "current" "delta" "status";
  List.iter
    (fun e ->
      let f = function
        | Some v -> Printf.sprintf "%.3f" v
        | None -> "-"
      in
      let delta =
        match (e.e_base, e.e_current) with
        | Some b, Some c when b <> 0. ->
            Printf.sprintf "%+.1f%%" (100. *. (c -. b) /. Float.abs b)
        | _ -> "-"
      in
      Format.fprintf ppf "%-34s %12s %12s %8s  %s@." e.e_name (f e.e_base)
        (f e.e_current) delta (status_string e.e_status))
    entries
