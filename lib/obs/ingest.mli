(** Parses {!Export.jsonl} dumps back into tracer records, so the
    analysis suite (critical paths, flamegraphs, SLOs, baselines) runs
    identically on a live tracer and on a telemetry file replayed from
    disk. *)

type dump = {
  meta : (string * string) list;  (** merged from all meta lines *)
  spans : Tracer.span list;  (** sorted by id *)
  events : Tracer.event list;  (** file order *)
}

exception Malformed of string
(** Raised with a line number and reason on records the exporter could
    not have written. *)

val load_string : string -> dump
(** Blank lines are skipped; multiple meta lines merge in order, which
    keeps concatenated dumps loadable. *)

val load_file : string -> dump
(** [load_string] over the whole file; I/O errors propagate as
    [Sys_error]. *)

val of_tracer : ?meta:(string * string) list -> Tracer.t -> dump
(** The dump a live tracer would round-trip through
    [load_string (Export.jsonl ?meta t)], without serializing:
    drop-count meta entries are appended exactly as the exporter
    does. *)

(** {1 Convenience accessors} *)

val meta_value : dump -> string -> string option

val meta_float : dump -> string -> float option
(** [None] when the key is absent or not a float. *)

val spans_named : dump -> string -> Tracer.span list

val dropped_records : dump -> int
(** Sum of the [dropped_spans], [dropped_events], [trace_dropped] and
    [audit_dropped] meta counts (each 0 when absent) — the
    completeness input for {!Slo} rules. *)
