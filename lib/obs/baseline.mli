(** Per-run summary persistence and regression detection.

    A run is a flat list of named indicators (convergence seconds,
    disruption seconds, delivery ratios, …). Saved baselines are JSON
    with sorted keys and fixed-precision values — byte-identical for
    identical runs — and {!diff} flags any indicator that moved beyond
    a tolerance band in its bad direction. *)

type indicator = {
  i_name : string;
  i_value : float;
  i_unit : string;
  i_lower_is_better : bool;
      (** durations/losses: lower is better; ratios/deliveries:
          higher is better *)
}

type run = { run_label : string; indicators : indicator list }

type tolerance = {
  tol_rel : float;  (** fraction of the baseline value *)
  tol_abs : float;  (** absolute floor, protects near-zero baselines *)
}

val default_tolerance : tolerance
(** 10% relative, 0.001 absolute. *)

type status = Ok | Improved | Regressed | Added | Removed

val status_string : status -> string

type entry = {
  e_name : string;
  e_status : status;
  e_base : float option;
  e_current : float option;
  e_unit : string;
}

val schema : string
(** ["rfauto-baseline-v1"], embedded in every file. *)

exception Malformed of string

val to_json : run -> string

val of_json : string -> run
(** Raises {!Malformed} on wrong schema or missing fields. *)

val save : string -> run -> unit

val load : string -> run

val diff : ?tol:tolerance -> base:run -> current:run -> unit -> entry list
(** Entries sorted by indicator name; indicators present on only one
    side report [Added]/[Removed] (neither is a regression). *)

val has_regression : entry list -> bool

val pp_diff : Format.formatter -> entry list -> unit
(** Fixed-width comparison table with signed percentage deltas. *)
