(** Shard-cut advisor: deterministic greedy k-way partition of the
    topology graph weighted by profiled load.

    Consumes the per-entity busy-time/event weights and the message
    matrix produced by {!Profiler} and proposes a k-way domain cut,
    reporting per-shard load shares, the cross-shard message cut, and
    an upper bound on the speedup a conservative-lookahead parallel
    engine could extract from that cut (total weight over the
    heaviest shard). The placement pass is a streaming greedy
    (LDG-style) over nodes in decreasing weight order; all iteration
    is over sorted data, so identical inputs yield byte-identical
    reports. *)

type node = { nd_id : string; nd_weight : int }

type edge = { ed_a : string; ed_b : string; ed_msgs : int }

type input = {
  in_nodes : node list;
  in_edges : edge list;  (** message counts between entities *)
  in_adjacency : (string * string) list;  (** topology edges, weight-free *)
  in_horizon_s : float;  (** virtual seconds profiled, for msgs/s *)
}

type shard = {
  sh_id : int;
  sh_nodes : int;
  sh_weight : int;
  sh_share : float;
  sh_members : string list;  (** sorted ids *)
}

type report = {
  rp_k : int;
  rp_nodes : int;
  rp_total_weight : int;
  rp_shards : shard list;
  rp_max_share : float;
  rp_imbalance : float;  (** max shard weight / mean shard weight *)
  rp_cut_msgs : int;
  rp_total_msgs : int;
  rp_cut_fraction : float;
  rp_cut_msgs_per_s : float;
  rp_speedup_bound : float;  (** total weight / heaviest shard, <= k *)
  rp_efficiency : float;  (** speedup bound / k *)
}

val partition : k:int -> input -> report
(** Raises [Invalid_argument] if [k < 1]. Endpoints appearing only in
    edges or adjacency join the node set with weight 0. *)

val shard_assignment : report -> (string * int) list
(** Flat (node id, shard id) assignment, sorted by node id. *)

val assignment_json : report -> string
(** The entity→shard map as a [rfauto-shard-map-v1] JSON document —
    machine-readable form of {!shard_assignment}, with the advisor's
    [k], speedup bound and cut size alongside. *)

val assignment_of_json : string -> int * (string * int) list
(** Parses a [rfauto-shard-map-v1] document back into [(k, assignment)]
    with the assignment sorted by entity id. Raises {!Json.Parse_error}
    on malformed input, a wrong schema tag, or a shard id outside
    [0, k). *)

val meta : report -> (string * string) list
(** Deterministic key/value pairs for telemetry meta and SLO rules. *)

val pp_report : Format.formatter -> report -> unit
