type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = { counts : int array; mutable sum : float; mutable n : int }

type instrument = C of counter | G of gauge | H of histogram

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  inst : instrument;
}

type kind = Counter | Gauge | Histogram

type family = { f_kind : kind; mutable f_help : string option }

type t = {
  samples : (string, sample) Hashtbl.t;
  families : (string, family) Hashtbl.t;
}

(* 1-2.5-5 decades from 1 ms to 500 s; +Inf is implicit. *)
let buckets =
  [|
    0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.;
    10.; 25.; 50.; 100.; 250.; 500.;
  |]

let create () = { samples = Hashtbl.create 64; families = Hashtbl.create 32 }

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let sample_key name labels =
  let buf = Buffer.create 32 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let family t name kind help =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s is a %s, not a %s" name
             (kind_name f.f_kind) (kind_name kind));
      if f.f_help = None then f.f_help <- help
  | None -> Hashtbl.replace t.families name { f_kind = kind; f_help = help }

let get_or_create t ?help ?(labels = []) name kind make =
  family t name kind help;
  let labels = sort_labels labels in
  let key = sample_key name labels in
  match Hashtbl.find_opt t.samples key with
  | Some s -> s.inst
  | None ->
      let inst = make () in
      Hashtbl.replace t.samples key { s_name = name; s_labels = labels; inst };
      inst

let counter t ?help ?labels name =
  match get_or_create t ?help ?labels name Counter (fun () -> C { c = 0 }) with
  | C c -> c
  | G _ | H _ -> assert false

let incr ?(by = 1) c = c.c <- c.c + by

let counter_value c = c.c

let gauge t ?help ?labels name =
  match get_or_create t ?help ?labels name Gauge (fun () -> G { g = 0. }) with
  | G g -> g
  | C _ | H _ -> assert false

let set g v = g.g <- v

let gauge_value g = g.g

let histogram t ?help ?labels name =
  let make () =
    H { counts = Array.make (Array.length buckets + 1) 0; sum = 0.; n = 0 }
  in
  match get_or_create t ?help ?labels name Histogram make with
  | H h -> h
  | C _ | G _ -> assert false

let bucket_index v =
  let n = Array.length buckets in
  let rec go i = if i >= n then n else if v <= buckets.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let i = bucket_index v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let observations h = h.n

let observation_sum h = h.sum

(* Prometheus-style histogram_quantile: find the bucket holding the
   q-rank, then interpolate linearly inside it (the first bucket's
   lower edge is 0, the +Inf bucket clamps to the highest finite
   bound). Total functions on totally-ordered inputs: an empty
   histogram yields [nan] and q is clamped to [0,1], mirroring
   [Rf_sim.Stats.percentile]. *)
let histogram_quantile h q =
  if h.n = 0 then Float.nan
  else begin
  let q = if Float.is_nan q then 0. else Float.min 1. (Float.max 0. q) in
  let nb = Array.length buckets in
  let rank = q *. float_of_int h.n in
  let rec go i cum =
    if i >= nb then buckets.(nb - 1)
    else
      let cum' = cum + h.counts.(i) in
      if float_of_int cum' >= rank && h.counts.(i) > 0 then
        let lower = if i = 0 then 0. else buckets.(i - 1) in
        let upper = buckets.(i) in
        lower
        +. (upper -. lower)
           *. ((rank -. float_of_int cum) /. float_of_int h.counts.(i))
      else go (i + 1) cum'
  in
  go 0 0
  end

(* Exposition order: family name, then the (sorted) label set. *)
let sorted_samples t =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.samples [] in
  List.sort
    (fun a b ->
      match String.compare a.s_name b.s_name with
      | 0 -> compare a.s_labels b.s_labels
      | c -> c)
    all

let fold t ~init ~counter ~gauge =
  List.fold_left
    (fun acc s ->
      match s.inst with
      | C c -> counter acc ~name:s.s_name ~labels:s.s_labels c.c
      | G g -> gauge acc ~name:s.s_name ~labels:s.s_labels g.g
      | H _ -> acc)
    init (sorted_samples t)

(* Prometheus exposition-format escaping: label values escape
   backslash, double-quote and newline; HELP text escapes backslash
   and newline. *)
let add_escaped buf ~quote s =
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | ch -> Buffer.add_char buf ch)
    s

let escape_help s =
  let buf = Buffer.create (String.length s) in
  add_escaped buf ~quote:false s;
  Buffer.contents buf

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          add_escaped buf ~quote:true v;
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let add_sample buf name labels value =
  Buffer.add_string buf name;
  render_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.s_name <> !last_family then begin
        last_family := s.s_name;
        match Hashtbl.find_opt t.families s.s_name with
        | Some f ->
            (match f.f_help with
            | Some h ->
                Buffer.add_string buf
                  (Printf.sprintf "# HELP %s %s\n" s.s_name (escape_help h))
            | None -> ());
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s %s\n" s.s_name (kind_name f.f_kind))
        | None ->
            (* Every exposed family carries a # TYPE line even if it was
               never registered (defensive: untyped is the spec's
               catch-all). *)
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s untyped\n" s.s_name)
      end;
      match s.inst with
      | C c -> add_sample buf s.s_name s.s_labels (string_of_int c.c)
      | G g -> add_sample buf s.s_name s.s_labels (Printf.sprintf "%g" g.g)
      | H h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i bound ->
              cumulative := !cumulative + h.counts.(i);
              add_sample buf (s.s_name ^ "_bucket")
                (s.s_labels @ [ ("le", Printf.sprintf "%g" bound) ])
                (string_of_int !cumulative))
            buckets;
          cumulative := !cumulative + h.counts.(Array.length buckets);
          add_sample buf (s.s_name ^ "_bucket")
            (s.s_labels @ [ ("le", "+Inf") ])
            (string_of_int !cumulative);
          add_sample buf (s.s_name ^ "_sum") s.s_labels
            (Printf.sprintf "%g" h.sum);
          add_sample buf (s.s_name ^ "_count") s.s_labels (string_of_int h.n))
    (sorted_samples t);
  Buffer.contents buf

let pp_prometheus ppf t = Format.pp_print_string ppf (to_prometheus t)
