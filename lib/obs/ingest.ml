(* Reads an Export.jsonl dump back into tracer records so the
   analysis suite (critical paths, flamegraphs, SLOs) works equally on
   a live tracer and on a telemetry file from a previous run. *)

type dump = {
  meta : (string * string) list;
  spans : Tracer.span list;
  events : Tracer.event list;
}

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let str j key =
  match Json.member key j with
  | Some v -> (
      match Json.to_string_opt v with
      | Some s -> s
      | None -> fail "field %S is not a string" key)
  | None -> fail "missing field %S" key

let int_field j key =
  match Json.member key j with
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> i
      | None -> fail "field %S is not an integer" key)
  | None -> fail "missing field %S" key

let opt_int_field j key =
  match Json.member key j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Some i
      | None -> fail "field %S is not an integer or null" key)

let meta_of j =
  List.filter_map
    (fun (k, v) ->
      if k = "type" then None
      else
        match Json.to_string_opt v with
        | Some s -> Some (k, s)
        | None -> fail "meta field %S is not a string" k)
    (Json.obj_fields j)

let span_of j : Tracer.span =
  let attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj fields) ->
        List.map
          (fun (k, v) ->
            match Json.to_string_opt v with
            | Some s -> (k, s)
            | None -> fail "span attr %S is not a string" k)
          fields
    | Some _ -> fail "span attrs is not an object"
    | None -> []
  in
  {
    id = int_field j "id";
    parent = opt_int_field j "parent";
    name = str j "name";
    start_us = int_field j "start_us";
    end_us = opt_int_field j "end_us";
    attrs;
  }

let event_of j : Tracer.event =
  {
    time_us = int_field j "us";
    component = str j "component";
    kind = str j "kind";
    detail = str j "detail";
    span = opt_int_field j "span";
  }

let load_string text =
  let meta = ref [] in
  let spans = ref [] in
  let events = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" then
           let j =
             try Json.parse line
             with Json.Parse_error e -> fail "line %d: %s" !lineno e
           in
           match str j "type" with
           | "meta" -> meta := !meta @ meta_of j
           | "span" -> spans := span_of j :: !spans
           | "event" -> events := event_of j :: !events
           | other -> fail "line %d: unknown record type %S" !lineno other);
  (* The exporter writes spans in id order and events in insertion
     order; re-sorting spans by id makes ingestion robust to
     concatenated or hand-edited dumps. *)
  {
    meta = !meta;
    spans =
      List.sort
        (fun (a : Tracer.span) (b : Tracer.span) -> compare a.id b.id)
        !spans;
    events = List.rev !events;
  }

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> load_string (really_input_string ic (in_channel_length ic)))

let of_tracer ?(meta = []) t =
  { meta = meta @ Export.drop_meta t; spans = Tracer.spans t;
    events = Tracer.events t }

let meta_value dump key = List.assoc_opt key dump.meta

let meta_float dump key =
  match meta_value dump key with
  | None -> None
  | Some s -> float_of_string_opt s

let spans_named dump name =
  List.filter (fun (sp : Tracer.span) -> sp.name = name) dump.spans

let dropped_records dump =
  let n key =
    match meta_value dump key with
    | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 0)
    | None -> 0
  in
  n "dropped_spans" + n "dropped_events" + n "trace_dropped"
  + n "audit_dropped"
