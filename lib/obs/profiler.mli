(** Per-entity load attribution for the simulation engine.

    The engine's dispatch loop calls {!tick} once per executed event.
    Ticks count events per entity exactly; the wall clock is read only
    every [clock_every] dispatches, and each elapsed interval is
    charged to the entity at the previous clock boundary. Consecutive
    intervals partition the run's wall time exactly: over a completed
    run, attributed busy time plus idle time equals total run time to
    the nanosecond, and per-entity event counts sum to the engine's
    executed-event count. When no profiler is installed the engine
    dispatch path does not allocate and pays only a [None] branch.

    Alongside attribution the profiler records an event-heap
    depth/churn timeseries and periodic [Gc.quick_stat] deltas
    (sampled every [sample_every] events, so sample {e points} are
    deterministic even though the GC figures are not), plus a
    src/dst message matrix that feeds {!Shard_advisor}. *)

type kind =
  | Unattributed  (** events scheduled without an [~entity] tag *)
  | Idle  (** pseudo-entity for time outside event handlers *)
  | Component of string
  | Switch of int64
  | Link of int64 * int64  (** normalised so the smaller dpid is first *)
  | Host of string
  | Controller of int

type entity
(** Mutable attribution handle. Create one per logical component and
    reuse it on every [schedule] call — counters live inline on the
    handle, so tagging costs nothing beyond the pointer. Handles for
    the same [kind] are merged at {!snapshot} time. *)

val component : string -> entity

val switch : int64 -> entity

val link : int64 -> int64 -> entity

val host : string -> entity

val controller : int -> entity

val unattributed : unit -> entity

val entity_id : entity -> string
(** Stable display id: ["sw:5"], ["host:h0001"], ["comp:rpc"], ... *)

val kind_id : kind -> string

type t

val create :
  ?clock_ns:(unit -> int) -> ?clock_every:int -> ?sample_every:int -> unit -> t
(** [clock_ns] defaults to a [Unix.gettimeofday]-based nanosecond
    clock (injectable for deterministic tests). [clock_every] (default
    32) is the dispatch stride between clock reads: each interval is
    charged whole to the entity at the previous stride boundary —
    sampling-profiler semantics that keep the per-event cost to a few
    integer stores; [clock_every:1] recovers exact per-event
    attribution. Intervals partition the run either way, so busy +
    idle always equals total run time exactly. [sample_every] (default
    4096) is the event-count period of heap/GC samples (aligned to
    clock strides). Raises [Invalid_argument] if either stride is
    [< 1]. *)

(** {1 Engine hooks} *)

val run_begin : t -> unit

val tick : t -> entity -> depth:int -> now_us:int -> unit
(** Called once per executed event, before its handler runs. [depth]
    is the event-heap depth after popping; [now_us] the virtual
    clock. *)

val run_end : t -> depth:int -> now_us:int -> pushes:int -> peak:int -> unit
(** Closes the pending attribution interval and folds [pushes] (the
    heap's cumulative insertion count — churn) and [peak] (its exact
    high-water mark, tracked by the heap itself) into the profile. *)

val message : t -> src:entity -> dst:entity -> unit
(** Records one simulated message from [src] to [dst] in the traffic
    matrix consumed by the shard advisor. *)

val message_counter : t -> src:entity -> dst:entity -> int ref
(** The live counter behind {!message} for the (src, dst) pair —
    resolve it once per flow and [incr] it per message to keep the
    per-message cost to one store. *)

val dispatches : t -> int

(** {1 Snapshots} *)

type sample = {
  s_us : int;
  s_depth : int;
  s_minor_words : float;
  s_major_collections : int;
}

type entity_stat = {
  es_id : string;
  es_kind : kind;
  es_events : int;
  es_busy_ns : int;
}

type gc_delta = {
  gd_minor_words : float;
  gd_promoted_words : float;
  gd_major_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_compactions : int;
  gd_top_heap_words : int;
}

type snapshot = {
  sn_events : int;
  sn_entities : entity_stat list;  (** events desc, then id asc *)
  sn_attributed_events : int;
  sn_busy_ns : int;  (** sum over entities, idle excluded *)
  sn_idle_ns : int;
  sn_run_ns : int;  (** equals [sn_busy_ns + sn_idle_ns] exactly *)
  sn_heap_peak : int;
  sn_heap_pushes : int;
  sn_samples : sample list;  (** chronological *)
  sn_gc : gc_delta;
  sn_messages : (string * string * int) list;
      (** (src id, dst id, count), count desc then ids asc *)
}

val snapshot : t -> snapshot

val merge : snapshot list -> snapshot
(** Aggregates per-shard snapshots into one profile: counters, busy/idle
    time and GC deltas sum; entity and message rows merge by id; heap
    samples interleave in virtual-time order. Heap peaks are summed
    because shard heaps coexist — the result is the run's worst-case
    aggregate footprint, not a concurrent high-water mark. Raises
    [Invalid_argument] on an empty list. *)

val attributed_share : snapshot -> float

val events_per_second : snapshot -> float
(** Wall-clock rate; never included in deterministic output. *)

val meta : snapshot -> (string * string) list
(** Deterministic telemetry meta (event counts, heap shape) — safe
    for byte-identical fingerprints. Wall-clock and GC figures are
    deliberately excluded. *)

val emit : snapshot -> tracer:Tracer.t -> metrics:Metrics.t -> now_us:int -> unit
(** Publishes the snapshot on the telemetry bus: per-entity events and
    a strided heap-depth curve as tracer events, plus gauges/counters
    on the metrics registry. *)

(** {1 Reports} *)

val pp_top : ?wall:bool -> top:int -> Format.formatter -> snapshot -> unit
(** Top-entities table. With [wall:false] (the default) only
    simulation-deterministic figures are printed — this is the form
    fingerprinted summaries use; [wall:true] adds busy time, event
    rate and GC lines. *)

val pp_depth_curve : ?points:int -> Format.formatter -> snapshot -> unit
