(* Greedy k-way partition of the topology graph, weighted by profiled
   busy-time (or event counts), in the style of linear deterministic
   greedy (LDG) streaming partitioning: nodes are placed one at a time
   in decreasing weight order, each going to the shard maximising
   affinity (messages + adjacency to already-placed members) scaled by
   remaining capacity. Everything is processed in sorted order, so the
   same input always produces the same partition — reports are safe to
   fingerprint.

   The point is not an optimal cut (that is NP-hard) but a defensible
   estimate of what conservative-lookahead sharding would buy: the
   speedup bound is total weight over the heaviest shard — the best
   any synchronous-window parallel run of this partition could do. *)

type node = { nd_id : string; nd_weight : int }

type edge = { ed_a : string; ed_b : string; ed_msgs : int }

type input = {
  in_nodes : node list;
  in_edges : edge list;  (** message counts between entities *)
  in_adjacency : (string * string) list;  (** topology edges, weight-free *)
  in_horizon_s : float;  (** virtual seconds profiled, for msgs/s *)
}

type shard = {
  sh_id : int;
  sh_nodes : int;
  sh_weight : int;
  sh_share : float;
  sh_members : string list;  (** sorted; capped for display *)
}

type report = {
  rp_k : int;
  rp_nodes : int;
  rp_total_weight : int;
  rp_shards : shard list;
  rp_max_share : float;
  rp_imbalance : float;  (** max shard weight / mean shard weight *)
  rp_cut_msgs : int;
  rp_total_msgs : int;
  rp_cut_fraction : float;
  rp_cut_msgs_per_s : float;
  rp_speedup_bound : float;
  rp_efficiency : float;  (** speedup bound / k *)
}

let partition ~k input =
  if k < 1 then invalid_arg "Shard_advisor.partition: k < 1";
  (* Collect every id mentioned anywhere; edge/adjacency endpoints
     missing from in_nodes join with weight 0. *)
  let weights : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let w = try Hashtbl.find weights n.nd_id with Not_found -> 0 in
      Hashtbl.replace weights n.nd_id (w + n.nd_weight))
    input.in_nodes;
  let touch id =
    if not (Hashtbl.mem weights id) then Hashtbl.replace weights id 0
  in
  List.iter
    (fun e ->
      touch e.ed_a;
      touch e.ed_b)
    input.in_edges;
  List.iter
    (fun (a, b) ->
      touch a;
      touch b)
    input.in_adjacency;
  (* Neighbour affinities: message counts dominate; bare topology
     adjacency contributes weight 1 so unloaded switches still cluster
     next to their neighbours instead of being scattered. *)
  let affinity : (string, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
  let add_aff a b w =
    if a <> b then
      let cur = try Hashtbl.find affinity a with Not_found -> [] in
      Hashtbl.replace affinity a ((b, w) :: cur)
  in
  List.iter
    (fun e ->
      add_aff e.ed_a e.ed_b e.ed_msgs;
      add_aff e.ed_b e.ed_a e.ed_msgs)
    input.in_edges;
  List.iter
    (fun (a, b) ->
      add_aff a b 1;
      add_aff b a 1)
    input.in_adjacency;
  let nodes =
    Hashtbl.fold (fun id w acc -> (id, w) :: acc) weights []
    |> List.sort (fun (id1, w1) (id2, w2) ->
           match compare w2 w1 with 0 -> String.compare id1 id2 | c -> c)
  in
  let n_nodes = List.length nodes in
  let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 nodes in
  let capacity =
    (* 5% headroom over a perfect split; guards the greedy pass from
       piling every high-affinity node onto one shard. *)
    max 1 (total_weight * 21 / (20 * k))
  in
  let shard_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let load = Array.make k 0 in
  let members = Array.make k [] in
  let counts = Array.make k 0 in
  List.iter
    (fun (id, w) ->
      let best = ref 0 and best_score = ref neg_infinity in
      for j = 0 to k - 1 do
        let aff =
          List.fold_left
            (fun acc (nb, aw) ->
              match Hashtbl.find_opt shard_of nb with
              | Some s when s = j -> acc + aw
              | _ -> acc)
            0
            (try Hashtbl.find affinity id with Not_found -> [])
        in
        let room =
          1. -. (float_of_int load.(j) /. float_of_int capacity)
        in
        let room = if room < 0. then 0. else room in
        (* +1 keeps the capacity term decisive when affinities tie at
           zero, sending the node to the emptiest shard. *)
        let score = float_of_int (aff + 1) *. room in
        if score > !best_score then begin
          best_score := score;
          best := j
        end
      done;
      let j = !best in
      Hashtbl.replace shard_of id j;
      load.(j) <- load.(j) + w;
      counts.(j) <- counts.(j) + 1;
      members.(j) <- id :: members.(j))
    nodes;
  (* Edge cut: messages whose endpoints land in different shards. *)
  let cut_msgs = ref 0 and total_msgs = ref 0 in
  List.iter
    (fun e ->
      total_msgs := !total_msgs + e.ed_msgs;
      match (Hashtbl.find_opt shard_of e.ed_a, Hashtbl.find_opt shard_of e.ed_b) with
      | Some sa, Some sb when sa <> sb -> cut_msgs := !cut_msgs + e.ed_msgs
      | _ -> ())
    input.in_edges;
  let max_load = Array.fold_left max 0 load in
  let mean_load = float_of_int total_weight /. float_of_int k in
  let shards =
    List.init k (fun j ->
        {
          sh_id = j;
          sh_nodes = counts.(j);
          sh_weight = load.(j);
          sh_share =
            (if total_weight = 0 then 0.
             else float_of_int load.(j) /. float_of_int total_weight);
          sh_members = List.sort String.compare members.(j);
        })
  in
  let speedup =
    if max_load = 0 then 1.
    else float_of_int total_weight /. float_of_int max_load
  in
  {
    rp_k = k;
    rp_nodes = n_nodes;
    rp_total_weight = total_weight;
    rp_shards = shards;
    rp_max_share =
      (if total_weight = 0 then 0.
       else float_of_int max_load /. float_of_int total_weight);
    rp_imbalance =
      (if mean_load = 0. then 1. else float_of_int max_load /. mean_load);
    rp_cut_msgs = !cut_msgs;
    rp_total_msgs = !total_msgs;
    rp_cut_fraction =
      (if !total_msgs = 0 then 0.
       else float_of_int !cut_msgs /. float_of_int !total_msgs);
    rp_cut_msgs_per_s =
      (if input.in_horizon_s <= 0. then 0.
       else float_of_int !cut_msgs /. input.in_horizon_s);
    rp_speedup_bound = speedup;
    rp_efficiency = speedup /. float_of_int k;
  }

let shard_assignment report =
  List.concat_map
    (fun s -> List.map (fun id -> (id, s.sh_id)) s.sh_members)
    report.rp_shards
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Machine-readable entity→shard map: [rfauto profile --partition-out]
   writes it, [rfauto traffic --shards-from] loads it back, so a
   profiled cut can drive a later sharded run. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let assignment_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"rfauto-shard-map-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"k\": %d,\n" report.rp_k);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_bound\": %.4f,\n" report.rp_speedup_bound);
  Buffer.add_string buf
    (Printf.sprintf "  \"cut_msgs\": %d,\n" report.rp_cut_msgs);
  Buffer.add_string buf "  \"assign\": {\n";
  let assignment = shard_assignment report in
  let n = List.length assignment in
  List.iteri
    (fun i (id, shard) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %d%s\n" (json_escape id) shard
           (if i < n - 1 then "," else "")))
    assignment;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let assignment_of_json text =
  let fail what = raise (Json.Parse_error ("shard map: " ^ what)) in
  let v = Json.parse text in
  (match Json.member "schema" v with
  | Some s when Json.to_string_opt s = Some "rfauto-shard-map-v1" -> ()
  | Some _ | None -> fail "schema is not rfauto-shard-map-v1");
  let k =
    match Option.bind (Json.member "k" v) Json.to_int_opt with
    | Some k when k >= 1 -> k
    | Some _ | None -> fail "missing or bad \"k\""
  in
  let assign =
    match Json.member "assign" v with
    | Some (Json.Obj fields) ->
        List.map
          (fun (id, shard) ->
            match Json.to_int_opt shard with
            | Some s when s >= 0 && s < k -> (id, s)
            | Some _ | None ->
                fail (Printf.sprintf "shard of %S out of [0, k)" id))
          fields
    | Some _ | None -> fail "missing \"assign\" object"
  in
  (k, List.sort (fun (a, _) (b, _) -> String.compare a b) assign)

let meta report =
  [
    ("shard_k", string_of_int report.rp_k);
    ("shard_nodes", string_of_int report.rp_nodes);
    ("shard_max_share", Printf.sprintf "%.4f" report.rp_max_share);
    ("shard_imbalance", Printf.sprintf "%.4f" report.rp_imbalance);
    ("shard_cut_msgs", string_of_int report.rp_cut_msgs);
    ("shard_cut_fraction", Printf.sprintf "%.4f" report.rp_cut_fraction);
    ("shard_cut_msgs_per_s", Printf.sprintf "%.1f" report.rp_cut_msgs_per_s);
    ("shard_speedup_bound", Printf.sprintf "%.2f" report.rp_speedup_bound);
    ("shard_efficiency", Printf.sprintf "%.2f" report.rp_efficiency);
  ]

let pp_members ppf members =
  let n = List.length members in
  let shown = if n <= 6 then members else List.filteri (fun i _ -> i < 6) members in
  Format.fprintf ppf "%s%s"
    (String.concat " " shown)
    (if n > 6 then Printf.sprintf " +%d" (n - 6) else "")

let pp_report ppf r =
  Format.fprintf ppf
    "shard advisor: k=%d over %d nodes, total weight %d@." r.rp_k r.rp_nodes
    r.rp_total_weight;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  shard %d: %3d nodes, weight %10d (%5.1f%%)  [%a]@." s.sh_id
        s.sh_nodes s.sh_weight (100. *. s.sh_share) pp_members s.sh_members)
    r.rp_shards;
  Format.fprintf ppf
    "  balance: max share %.1f%%, imbalance %.2fx@."
    (100. *. r.rp_max_share)
    r.rp_imbalance;
  Format.fprintf ppf
    "  edge cut: %d / %d msgs cross shards (%.1f%%), %.1f msgs/s@."
    r.rp_cut_msgs r.rp_total_msgs
    (100. *. r.rp_cut_fraction)
    r.rp_cut_msgs_per_s;
  Format.fprintf ppf
    "  predicted speedup <= %.2fx on %d shards (efficiency %.0f%%, conservative lookahead)@."
    r.rp_speedup_bound r.rp_k
    (100. *. r.rp_efficiency)
