(* Minimal recursive-descent JSON reader, sufficient for the formats
   this library itself writes (Export.jsonl dumps, Baseline files).
   No external dependency: the toolchain image has no yojson, and the
   subset we emit — objects, arrays, strings, numbers, null, bool —
   keeps the parser small enough to audit. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected '%c' at %d, got '%c'" c st.pos c'
  | None -> fail "expected '%c' at %d, got end of input" c st.pos

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "invalid literal at %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' ->
            advance st;
            Buffer.add_char buf '"';
            go ()
        | Some '\\' ->
            advance st;
            Buffer.add_char buf '\\';
            go ()
        | Some '/' ->
            advance st;
            Buffer.add_char buf '/';
            go ()
        | Some 'n' ->
            advance st;
            Buffer.add_char buf '\n';
            go ()
        | Some 'r' ->
            advance st;
            Buffer.add_char buf '\r';
            go ()
        | Some 't' ->
            advance st;
            Buffer.add_char buf '\t';
            go ()
        | Some 'b' ->
            advance st;
            Buffer.add_char buf '\b';
            go ()
        | Some 'f' ->
            advance st;
            Buffer.add_char buf '\012';
            go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.s then
              fail "truncated \\u escape at %d" st.pos;
            let hex = String.sub st.s st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape at %d" st.pos
            in
            st.pos <- st.pos + 4;
            (* Our own writer only emits \u for control characters;
               anything above Latin-1 degrades to '?' rather than
               growing a UTF-8 encoder here. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            go ()
        | _ -> fail "bad escape at %d" st.pos)
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let lit = String.sub st.s start (st.pos - start) in
  match int_of_string_opt lit with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number %S at %d" lit start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at %d" st.pos
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected '%c' at %d" c st.pos

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else
    let rec members acc =
      skip_ws st;
      let k = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((k, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((k, v) :: acc))
      | _ -> fail "expected ',' or '}' at %d" st.pos
    in
    members []

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Arr []
  end
  else
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
      | _ -> fail "expected ',' or ']' at %d" st.pos
    in
    elements []

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing input at %d" st.pos;
  v

(* Accessors: total functions returning option, so callers decide
   whether a missing field is an error. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list_opt = function Arr l -> Some l | _ -> None

let obj_fields = function Obj fields -> fields | _ -> []
