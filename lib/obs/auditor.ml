open Rf_packet
module Of_match = Rf_openflow.Of_match
module Prefix = Ipv4_addr.Prefix

type kind = Loop | Blackhole | Rib_fib | Slice

let kind_to_string = function
  | Loop -> "loop"
  | Blackhole -> "blackhole"
  | Rib_fib -> "rib_fib"
  | Slice -> "slice"

let kind_index = function Loop -> 0 | Blackhole -> 1 | Rib_fib -> 2 | Slice -> 3

type window = {
  w_kind : kind;
  w_key : string;
  w_open_us : int;
  mutable w_close_us : int option;
}

(* One header equivalence class: a destination prefix seen in some
   classifier or configured on a host, refcounted across both. The
   representative address is the probe destination — chosen inside the
   prefix but outside every strictly-more-specific class, so the walk
   exercises this prefix's rules and not a longer match's. *)
type cls = {
  c_key : string;
  c_prefix : Prefix.t;
  mutable c_refs : int;
  mutable c_rep : Ipv4_addr.t option;
  mutable c_covered : bool;  (* rep lies inside a configured host prefix *)
}

type instruments = {
  i_violations : Metrics.counter array;  (* indexed by kind_index *)
  i_check : Metrics.histogram;
  i_eq_classes : Metrics.gauge;
  i_dropped : Metrics.counter;
}

type t = {
  model : Fwd_model.t;
  clock : unit -> int;
  tracer : Tracer.t option;
  inst : instruments option;
  classes : (string, cls) Hashtbl.t;
  sw_prefixes : (int64, (string * Prefix.t) list) Hashtbl.t;
      (* per switch, the classifier's nw_dst prefixes, sorted by key,
         duplicates kept (it is a multiset diff) *)
  mutable host_prefixes : Prefix.t list;
  known : (int64, unit) Hashtbl.t;
  verdicts : (string * int64, string * (kind * string) option) Hashtbl.t;
  paths : (string * int64, int64 list) Hashtbl.t;
  touched : (int64, (string * int64, unit) Hashtbl.t) Hashtbl.t;
      (* switch -> walks whose footprint contains it *)
  active : (kind * string, int) Hashtbl.t;
  open_wins : (kind * string, window * int option) Hashtbl.t;
  mutable windows_rev : window list;
  rib : (int64, (Prefix.t * int) list) Hashtbl.t;
  rib_bad : (int64, unit) Hashtbl.t;
  slices : (string, Of_match.t list) Hashtbl.t;
  attribution : (int64 * string * int, string) Hashtbl.t;
  slice_bad : (int64, string list) Hashtbl.t;
  totals : int array;  (* windows opened, by kind_index *)
  mutable updates : int;
  mutable dropped : int;
}

let create ?clock ?tracer ?metrics () =
  let clock =
    match (clock, tracer) with
    | Some c, _ -> c
    | None, Some tr -> fun () -> Tracer.now_us tr
    | None, None -> fun () -> 0
  in
  let inst =
    match metrics with
    | None -> None
    | Some m ->
        let c kind =
          Metrics.counter m ~help:"Violation windows opened by the auditor"
            ~labels:[ ("kind", kind_to_string kind) ]
            "audit_violations_total"
        in
        Some
          {
            i_violations = Array.map c [| Loop; Blackhole; Rib_fib; Slice |];
            i_check =
              Metrics.histogram m
                ~help:"Wall-clock cost of one incremental audit update"
                "audit_check_seconds";
            i_eq_classes =
              Metrics.gauge m
                ~help:"Header equivalence classes currently audited"
                "audit_eq_classes";
            i_dropped =
              Metrics.counter m
                ~help:"Classes that lost probe coverage (audit incomplete)"
                "audit_dropped_total";
          }
  in
  {
    model = Fwd_model.create ();
    clock;
    tracer;
    inst;
    classes = Hashtbl.create 64;
    sw_prefixes = Hashtbl.create 64;
    host_prefixes = [];
    known = Hashtbl.create 64;
    verdicts = Hashtbl.create 512;
    paths = Hashtbl.create 512;
    touched = Hashtbl.create 64;
    active = Hashtbl.create 16;
    open_wins = Hashtbl.create 16;
    windows_rev = [];
    rib = Hashtbl.create 64;
    rib_bad = Hashtbl.create 16;
    slices = Hashtbl.create 8;
    attribution = Hashtbl.create 512;
    slice_bad = Hashtbl.create 16;
    totals = [| 0; 0; 0; 0 |];
    updates = 0;
    dropped = 0;
  }

(* {2 Violation windows} *)

let open_window t kind key =
  let now = t.clock () in
  let w = { w_kind = kind; w_key = key; w_open_us = now; w_close_us = None } in
  t.windows_rev <- w :: t.windows_rev;
  t.totals.(kind_index kind) <- t.totals.(kind_index kind) + 1;
  let span =
    match t.tracer with
    | None -> None
    | Some tr ->
        Some
          (Tracer.span_start tr
             ~attrs:[ ("kind", kind_to_string kind); ("key", key) ]
             "audit.violation")
  in
  (match t.inst with
  | Some i -> Metrics.incr i.i_violations.(kind_index kind)
  | None -> ());
  Hashtbl.replace t.open_wins (kind, key) (w, span)

let close_window t kind key =
  match Hashtbl.find_opt t.open_wins (kind, key) with
  | None -> ()
  | Some (w, span) ->
      w.w_close_us <- Some (t.clock ());
      (match (span, t.tracer) with
      | Some id, Some tr -> Tracer.span_end tr id
      | _ -> ());
      Hashtbl.remove t.open_wins (kind, key)

let bump t kind key delta =
  let k = (kind, key) in
  let cur = Option.value (Hashtbl.find_opt t.active k) ~default:0 in
  let nxt = max 0 (cur + delta) in
  if cur = 0 && nxt > 0 then open_window t kind key;
  if cur > 0 && nxt = 0 then close_window t kind key;
  if nxt = 0 then Hashtbl.remove t.active k else Hashtbl.replace t.active k nxt

(* {2 Equivalence classes and walks} *)

let class_keys_sorted t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.classes []
  |> List.sort String.compare

let switches_sorted t =
  Hashtbl.fold (fun d _ acc -> d :: acc) t.known [] |> List.sort Int64.compare

let count_dropped t =
  t.dropped <- t.dropped + 1;
  match t.inst with Some i -> Metrics.incr i.i_dropped | None -> ()

let compute_rep t cls =
  let p = cls.c_prefix in
  let len = Prefix.length p in
  if len = 32 then Some (Prefix.network p)
  else
    let size = if len >= 24 then 1 lsl (32 - len) else 256 in
    let more_specific =
      Hashtbl.fold
        (fun _ c acc ->
          if
            (not (String.equal c.c_key cls.c_key))
            && Prefix.length c.c_prefix > len
            && Prefix.subset c.c_prefix p
          then c.c_prefix :: acc
          else acc)
        t.classes []
    in
    let rec scan i =
      if i >= size then None
      else
        let a = Prefix.host p i in
        if List.exists (fun q -> Prefix.mem a q) more_specific then scan (i + 1)
        else Some a
    in
    scan 0

let covered_of t = function
  | None -> false
  | Some a -> List.exists (fun hp -> Prefix.mem a hp) t.host_prefixes

let probe_key ~in_port rep =
  {
    Of_match.in_port;
    dl_src = Mac.zero;
    dl_dst = Mac.zero;
    dl_vlan = 0xffff;
    dl_pcp = 0;
    dl_type = 0x800;
    nw_tos = 0;
    nw_proto = 17;
    nw_src = Ipv4_addr.any;
    nw_dst = rep;
    tp_src = 0;
    tp_dst = 0;
  }

let contribution cls = function
  | Fwd_model.Loop _ -> Some (Loop, cls.c_key)
  | Fwd_model.Blackhole _ -> if cls.c_covered then Some (Blackhole, cls.c_key) else None
  | Fwd_model.Delivered _ -> None

let index_remove t wk path =
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.touched d with
      | Some tbl -> Hashtbl.remove tbl wk
      | None -> ())
    path

let index_add t wk path =
  List.iter
    (fun d ->
      let tbl =
        match Hashtbl.find_opt t.touched d with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 32 in
            Hashtbl.replace t.touched d tbl;
            tbl
      in
      Hashtbl.replace tbl wk ())
    path

let update_walk t cls dpid =
  let wk = (cls.c_key, dpid) in
  let old_contrib =
    match Hashtbl.find_opt t.verdicts wk with Some (_, c) -> c | None -> None
  in
  let vstr, contrib, path =
    match cls.c_rep with
    | None -> ("unprobed", None, [])
    | Some rep ->
        let in_port =
          match Fwd_model.host_port t.model dpid with
          | Some (p, _) -> p
          | None -> 0
        in
        let verdict, path =
          Fwd_model.walk t.model ~dpid ~in_port (probe_key ~in_port rep)
        in
        (Fwd_model.verdict_to_string verdict, contribution cls verdict, path)
  in
  (match Hashtbl.find_opt t.paths wk with
  | Some old_path -> index_remove t wk old_path
  | None -> ());
  index_add t wk path;
  Hashtbl.replace t.paths wk path;
  Hashtbl.replace t.verdicts wk (vstr, contrib);
  if old_contrib <> contrib then begin
    (match old_contrib with Some (k, key) -> bump t k key (-1) | None -> ());
    match contrib with Some (k, key) -> bump t k key 1 | None -> ()
  end

let remove_walk t cls dpid =
  let wk = (cls.c_key, dpid) in
  (match Hashtbl.find_opt t.verdicts wk with
  | Some (_, Some (k, key)) -> bump t k key (-1)
  | _ -> ());
  (match Hashtbl.find_opt t.paths wk with
  | Some path -> index_remove t wk path
  | None -> ());
  Hashtbl.remove t.paths wk;
  Hashtbl.remove t.verdicts wk

let walk_class t cls =
  List.iter (fun d -> update_walk t cls d) (switches_sorted t)

(* Re-derive the representative (and coverage) of a class; on change,
   every walk of the class is stale. *)
let refresh_class t cls =
  let rep = compute_rep t cls in
  let covered = covered_of t rep in
  let changed =
    (not (Option.equal Ipv4_addr.equal rep cls.c_rep))
    || covered <> cls.c_covered
  in
  if changed then begin
    if cls.c_rep <> None && rep = None then count_dropped t;
    cls.c_rep <- rep;
    cls.c_covered <- covered;
    walk_class t cls
  end

let enclosing_classes t prefix =
  let len = Prefix.length prefix in
  Hashtbl.fold
    (fun _ c acc ->
      if Prefix.length c.c_prefix < len && Prefix.subset prefix c.c_prefix then
        c :: acc
      else acc)
    t.classes []
  |> List.sort (fun a b -> String.compare a.c_key b.c_key)

let incr_class t prefix =
  let key = Prefix.to_string prefix in
  match Hashtbl.find_opt t.classes key with
  | Some c -> c.c_refs <- c.c_refs + 1
  | None ->
      let cls =
        { c_key = key; c_prefix = prefix; c_refs = 1; c_rep = None; c_covered = false }
      in
      Hashtbl.replace t.classes key cls;
      let rep = compute_rep t cls in
      cls.c_rep <- rep;
      cls.c_covered <- covered_of t rep;
      if rep = None then count_dropped t;
      walk_class t cls;
      List.iter (fun c -> refresh_class t c) (enclosing_classes t prefix)

let decr_class t prefix =
  let key = Prefix.to_string prefix in
  match Hashtbl.find_opt t.classes key with
  | None -> ()
  | Some c ->
      c.c_refs <- c.c_refs - 1;
      if c.c_refs <= 0 then begin
        List.iter (fun d -> remove_walk t c d) (switches_sorted t);
        Hashtbl.remove t.classes key;
        List.iter (fun c -> refresh_class t c) (enclosing_classes t prefix)
      end

let affected_walks t dpids =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.touched d with
      | Some tbl -> Hashtbl.iter (fun wk () -> Hashtbl.replace acc wk ()) tbl
      | None -> ())
    dpids;
  Hashtbl.fold (fun wk () l -> wk :: l) acc []
  |> List.sort (fun (k1, d1) (k2, d2) ->
         match String.compare k1 k2 with 0 -> Int64.compare d1 d2 | c -> c)

let rerun_walks t dpids =
  List.iter
    (fun (ckey, dpid) ->
      match Hashtbl.find_opt t.classes ckey with
      | Some cls -> update_walk t cls dpid
      | None -> ())
    (affected_walks t dpids)

(* {2 Per-switch checks} *)

let rib_key dpid = Printf.sprintf "sw%Ld" dpid

let rf_priority_floor = 0x4000

let installed_fib t dpid =
  Fwd_model.switch_rules t.model dpid
  |> List.filter_map (fun (ru : Fwd_model.rule) ->
         if ru.ru_priority < rf_priority_floor then None
         else if ru.ru_match.Of_match.m_dl_type <> Some 0x800 then None
         else
           match ru.ru_match.Of_match.m_nw_dst with
           | None -> None
           | Some p -> (
               match
                 List.find_opt Rf_openflow.Of_port.is_physical ru.ru_out_ports
               with
               | Some port -> Some (p, port)
               | None -> None))
  |> List.sort (fun (p1, o1) (p2, o2) ->
         match Prefix.compare p1 p2 with 0 -> compare o1 o2 | c -> c)

let recheck_rib t dpid =
  let desired = Option.value (Hashtbl.find_opt t.rib dpid) ~default:[] in
  let installed = installed_fib t dpid in
  let bad =
    not
      (List.length desired = List.length installed
      && List.for_all2
           (fun (p1, o1) (p2, o2) -> Prefix.equal p1 p2 && o1 = o2)
           desired installed)
  in
  let was = Hashtbl.mem t.rib_bad dpid in
  if bad && not was then begin
    Hashtbl.replace t.rib_bad dpid ();
    bump t Rib_fib (rib_key dpid) 1
  end
  else if (not bad) && was then begin
    Hashtbl.remove t.rib_bad dpid;
    bump t Rib_fib (rib_key dpid) (-1)
  end

let recheck_slice t dpid =
  let viol =
    Fwd_model.switch_rules t.model dpid
    |> List.filter_map (fun (ru : Fwd_model.rule) ->
           match
             Hashtbl.find_opt t.attribution
               (dpid, Of_match.to_wire ru.ru_match, ru.ru_priority)
           with
           | None -> None
           | Some slice ->
               let permitted =
                 match Hashtbl.find_opt t.slices slice with
                 | Some patterns ->
                     List.exists
                       (fun pat -> Of_match.subsumes pat ru.ru_match)
                       patterns
                 | None -> false
               in
               if permitted then None else Some slice)
    |> List.sort_uniq String.compare
  in
  let old = Option.value (Hashtbl.find_opt t.slice_bad dpid) ~default:[] in
  List.iter
    (fun s -> if not (List.mem s viol) then bump t Slice s (-1))
    old;
  List.iter (fun s -> if not (List.mem s old) then bump t Slice s 1) viol;
  if viol = [] then Hashtbl.remove t.slice_bad dpid
  else Hashtbl.replace t.slice_bad dpid viol

(* {2 Update wrapper} *)

let with_update t f =
  match t.inst with
  | None ->
      f ();
      t.updates <- t.updates + 1
  | Some i ->
      let t0 = Unix.gettimeofday () in
      f ();
      t.updates <- t.updates + 1;
      Metrics.observe i.i_check (Unix.gettimeofday () -. t0);
      Metrics.set i.i_eq_classes (float_of_int (Hashtbl.length t.classes))

(* {2 Topology feed} *)

let register_switch t dpid =
  if not (Hashtbl.mem t.known dpid) then begin
    Hashtbl.replace t.known dpid ();
    Fwd_model.add_switch t.model dpid;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.classes key with
        | Some cls -> update_walk t cls dpid
        | None -> ())
      (class_keys_sorted t)
  end

let add_switch t dpid = with_update t (fun () -> register_switch t dpid)

let add_link t ~a ~b =
  with_update t (fun () ->
      register_switch t (fst a);
      register_switch t (fst b);
      Fwd_model.add_link t.model ~a ~b;
      rerun_walks t [ fst a; fst b ])

let add_host t ~dpid ~port prefix =
  with_update t (fun () ->
      register_switch t dpid;
      Fwd_model.add_host t.model ~dpid ~port prefix;
      t.host_prefixes <- prefix :: t.host_prefixes;
      incr_class t prefix;
      (* Coverage of every class may change; refresh re-walks only on
         actual change, and the new attachment point invalidates the
         walks that touch this switch. *)
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.classes key with
          | Some cls -> refresh_class t cls
          | None -> ())
        (class_keys_sorted t);
      rerun_walks t [ dpid ])

let set_slice t name patterns =
  with_update t (fun () ->
      Hashtbl.replace t.slices name patterns;
      List.iter (fun d -> recheck_slice t d) (switches_sorted t))

(* {2 Update feed} *)

let prefixes_of_rules rules =
  List.filter_map
    (fun (ru : Fwd_model.rule) ->
      match ru.ru_match.Of_match.m_nw_dst with
      | Some p -> Some (Prefix.to_string p, p)
      | None -> None)
    rules
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)

(* Multiset diff of two sorted association lists: (only in old, only
   in new). *)
let rec diff_sorted old fresh =
  match (old, fresh) with
  | [], fresh -> ([], fresh)
  | old, [] -> (old, [])
  | (k1, _) :: o', (k2, _) :: f' when String.equal k1 k2 ->
      diff_sorted o' f'
  | ((k1, _) as x) :: o', (k2, _) :: _ when String.compare k1 k2 < 0 ->
      let removed, added = diff_sorted o' fresh in
      (x :: removed, added)
  | old, y :: f' ->
      let removed, added = diff_sorted old f' in
      (removed, y :: added)

(* A walk's key varies along its path only in [in_port] and the two
   MACs (rewrites); every other field is fixed by the probe. When no
   rule on a switch matches on those three fields, the table's verdict
   for a class depends only on the class representative, so a rule
   push needs to re-walk just the classes whose first match at this
   switch actually changed. A single rule matching any of the mutable
   fields falls back to re-walking everything that touches the switch. *)
let port_mac_insensitive rules =
  List.for_all
    (fun (ru : Fwd_model.rule) ->
      ru.ru_match.Of_match.m_in_port = None
      && ru.ru_match.Of_match.m_dl_src = None
      && ru.ru_match.Of_match.m_dl_dst = None)
    rules

let rec first_match_list (rules : Fwd_model.rule list) key =
  match rules with
  | [] -> None
  | ru :: rest ->
      if Of_match.matches ru.ru_match key then Some ru
      else first_match_list rest key

let match_signature = function
  | None -> None
  | Some (ru : Fwd_model.rule) ->
      Some
        ( Of_match.to_wire ru.ru_match,
          ru.ru_priority,
          ru.ru_out_ports,
          ru.ru_set_dl_src,
          ru.ru_set_dl_dst )

let changed_classes t ~old_rules ~new_rules =
  Hashtbl.fold
    (fun key cls acc ->
      match cls.c_rep with
      | None -> acc
      | Some rep ->
          let probe = probe_key ~in_port:0 rep in
          if
            match_signature (first_match_list old_rules probe)
            = match_signature (first_match_list new_rules probe)
          then acc
          else key :: acc)
    t.classes []

let set_switch_rules t dpid rules =
  with_update t (fun () ->
      register_switch t dpid;
      let old_rules = Fwd_model.switch_rules t.model dpid in
      Fwd_model.set_switch_rules t.model dpid rules;
      let new_rules = Fwd_model.switch_rules t.model dpid in
      let old = Option.value (Hashtbl.find_opt t.sw_prefixes dpid) ~default:[] in
      let fresh = prefixes_of_rules rules in
      Hashtbl.replace t.sw_prefixes dpid fresh;
      let removed, added = diff_sorted old fresh in
      List.iter (fun (_, p) -> decr_class t p) removed;
      List.iter (fun (_, p) -> incr_class t p) added;
      if port_mac_insensitive old_rules && port_mac_insensitive new_rules then begin
        let changed = changed_classes t ~old_rules ~new_rules in
        List.iter
          (fun (ckey, d) ->
            if List.mem ckey changed then
              match Hashtbl.find_opt t.classes ckey with
              | Some cls -> update_walk t cls d
              | None -> ())
          (affected_walks t [ dpid ])
      end
      else rerun_walks t [ dpid ];
      recheck_rib t dpid;
      recheck_slice t dpid)

let set_link_state t ~a ~b up =
  with_update t (fun () ->
      register_switch t (fst a);
      register_switch t (fst b);
      Fwd_model.set_link_state t.model ~a ~b up;
      rerun_walks t [ fst a; fst b ])

let set_rib t dpid routes =
  with_update t (fun () ->
      register_switch t dpid;
      let routes =
        List.sort
          (fun (p1, o1) (p2, o2) ->
            match Prefix.compare p1 p2 with 0 -> compare o1 o2 | c -> c)
          routes
      in
      Hashtbl.replace t.rib dpid routes;
      recheck_rib t dpid)

let attribute t ~dpid ~match_ ~priority slice =
  with_update t (fun () ->
      Hashtbl.replace t.attribution
        (dpid, Of_match.to_wire match_, priority)
        slice;
      recheck_slice t dpid)

let full_recheck t =
  with_update t (fun () ->
      let sws = switches_sorted t in
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.classes key with
          | Some cls ->
              refresh_class t cls;
              List.iter (fun d -> update_walk t cls d) sws
          | None -> ())
        (class_keys_sorted t);
      List.iter
        (fun d ->
          recheck_rib t d;
          recheck_slice t d)
        sws)

(* {2 Results} *)

let windows t = List.rev t.windows_rev

let open_violations t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.open_wins []
  |> List.sort (fun (k1, s1) (k2, s2) ->
         match compare (kind_index k1) (kind_index k2) with
         | 0 -> String.compare s1 s2
         | c -> c)

let overlapping t ~start_us ~stop_us =
  List.filter
    (fun w ->
      w.w_open_us <= stop_us
      && match w.w_close_us with None -> true | Some c -> c >= start_us)
    (windows t)

let reachability t =
  Hashtbl.fold (fun (ck, d) (v, _) acc -> (ck, d, v) :: acc) t.verdicts []
  |> List.sort (fun (k1, d1, _) (k2, d2, _) ->
         match String.compare k1 k2 with 0 -> Int64.compare d1 d2 | c -> c)

let updates t = t.updates
let eq_classes t = Hashtbl.length t.classes
let walks t = Hashtbl.length t.verdicts
let dropped t = t.dropped
let violations_total t kind = t.totals.(kind_index kind)
