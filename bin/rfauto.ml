(* rfauto — command-line front end for the reproduction experiments. *)

open Cmdliner
module Experiment = Rf_core.Experiment

let std = Format.std_formatter

(* --- fig3 --------------------------------------------------------- *)

let sizes_arg =
  let doc = "Ring sizes to sweep (comma separated)." in
  Arg.(value & opt (list int) [ 4; 8; 12; 16; 20; 24; 28 ] & info [ "sizes" ] ~doc)

let boot_arg =
  let doc = "VM creation (clone+boot) time in seconds." in
  Arg.(value & opt float 8.0 & info [ "boot-time" ] ~doc)

let parallel_arg =
  let doc = "Concurrent VM creations (1 = paper-era serialized RouteFlow)." in
  Arg.(value & opt int 1 & info [ "parallel-boot" ] ~doc)

let telemetry_arg =
  let doc =
    "Write the run's span/event telemetry as JSON lines to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~doc ~docv:"FILE")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Attach the engine profiler to the run and print the per-entity          load table, heap-depth curve and GC deltas afterwards (wall          figures; never part of fingerprinted output).")

let make_profiler enabled =
  if enabled then Some (Rf_obs.Profiler.create ()) else None

let print_profiler_report = function
  | None -> ()
  | Some p ->
      let sn = Rf_obs.Profiler.snapshot p in
      Format.fprintf Format.std_formatter "@.";
      Rf_obs.Profiler.pp_top ~wall:true ~top:10 Format.std_formatter sn;
      Rf_obs.Profiler.pp_depth_curve Format.std_formatter sn

(* --- trace analytics (shared by analyze/obs/failure/restart/traffic) --- *)

module Analysis = Rf_core.Analysis

let slo_arg =
  Arg.(
    value & flag
    & info [ "slo" ]
        ~doc:
          "Evaluate the experiment's SLO rules against the run's telemetry          and print the PASS/WARN/FAIL scorecard (exit 2 on FAIL).")

let flamegraph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flamegraph" ] ~docv:"FILE"
        ~doc:
          "Write a folded-stack flamegraph of the run's span tree to          $(docv) (self-time microseconds; renderable by flamegraph.pl or          speedscope).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Diff this run's indicators against the baseline stored in          $(docv) (exit 3 on regression); the file is created when          missing.")

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* Load an rfauto-shard-map-v1 entity→shard file (e.g. written by
   `rfauto profile --partition-out`). *)
let load_shard_map path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try Rf_obs.Shard_advisor.assignment_of_json s
  with Rf_obs.Json.Parse_error msg ->
    Format.eprintf "rfauto: %s: %s@." path msg;
    exit 64

let needs_analysis ~slo ~flamegraph ~baseline =
  slo || flamegraph <> None || baseline <> None

(* Commands keep their own telemetry flag; when analysis is requested
   without one, the dump routes through a temp file removed after
   ingestion. Returns the path to pass to the experiment plus a loader
   to call after the run. *)
let telemetry_route ~needed telemetry =
  match (telemetry, needed) with
  | Some path, _ -> (Some path, fun () -> Some (Rf_obs.Ingest.load_file path))
  | None, true ->
      let path = Filename.temp_file "rfauto-analyze" ".jsonl" in
      ( Some path,
        fun () ->
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () -> Some (Rf_obs.Ingest.load_file path)) )
  | None, false -> (None, fun () -> None)

(* Shared post-run analysis: scorecard, flamegraph, baseline diff.
   Exits 2 on an SLO FAIL, 3 on a baseline regression. *)
let analyze_dump exp dump ~slo ~flamegraph ~baseline =
  let results = Analysis.evaluate exp dump in
  if slo then Format.fprintf std "@.%a" Analysis.scorecard results;
  (match flamegraph with
  | Some path ->
      write_file path (Rf_obs.Flamegraph.folded (Analysis.forest dump));
      Format.fprintf std "flamegraph written to %s@." path
  | None -> ());
  let regressed = ref false in
  (match baseline with
  | Some path ->
      let current = Analysis.baseline_run ~label:(Analysis.name exp) results in
      if Sys.file_exists path then begin
        let entries =
          Rf_obs.Baseline.diff ~base:(Rf_obs.Baseline.load path) ~current ()
        in
        Format.fprintf std "@.vs baseline %s:@.%a" path Rf_obs.Baseline.pp_diff
          entries;
        if Rf_obs.Baseline.has_regression entries then regressed := true
      end
      else begin
        Rf_obs.Baseline.save path current;
        Format.fprintf std "baseline saved to %s@." path
      end
  | None -> ());
  if !regressed then exit 3;
  if slo && Rf_obs.Slo.worst results = Rf_obs.Slo.Fail then exit 2

let post_run_analysis exp load ~slo ~flamegraph ~baseline =
  if needs_analysis ~slo ~flamegraph ~baseline then
    match load () with
    | Some dump -> analyze_dump exp dump ~slo ~flamegraph ~baseline
    | None -> ()

(* --audit support: print the audited runs' window summaries and exit 5
   when any violation window overlaps the steady-state interval —
   "quiescent network => zero violations" is CI-gateable. *)
let audit_flag =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Attach the continuous forwarding-state auditor to the run(s),          print the violation-window summary, and exit 5 if any window          overlaps the steady-state (post-convergence, pre-fault)          interval.")

let print_audit_runs runs =
  List.iter (Experiment.print_audit_run std) (List.filter_map Fun.id runs)

let audit_gate runs =
  if
    List.exists
      (fun (r : Experiment.audit_run) -> r.ar_steady_windows > 0)
      (List.filter_map Fun.id runs)
  then begin
    Format.eprintf "rfauto: steady-state forwarding violations detected@.";
    exit 5
  end

let fig3_cmd =
  let run sizes vm_boot_s parallel_boot telemetry profile =
    let profiler = make_profiler profile in
    Experiment.print_fig3 std
      (Experiment.fig3 ~sizes ~vm_boot_s ~parallel_boot ?telemetry ?profiler ());
    print_profiler_report profiler
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Figure 3: automatic vs manual configuration time")
    Term.(
      const run $ sizes_arg $ boot_arg $ parallel_arg $ telemetry_arg
      $ profile_flag)

(* --- demo --------------------------------------------------------- *)

let horizon_arg =
  let doc = "Simulated horizon in seconds." in
  Arg.(value & opt float 360.0 & info [ "horizon" ] ~doc)

let server_arg =
  let doc = "City hosting the video server." in
  Arg.(value & opt string "Glasgow" & info [ "server" ] ~doc)

let client_arg =
  let doc = "City hosting the remote client." in
  Arg.(value & opt string "Athens" & info [ "client" ] ~doc)

let protocol_arg =
  let doc = "Routing protocol the VMs run: ospf or rip." in
  Arg.(
    value
    & opt
        (enum
           [
             ("ospf", Rf_routeflow.Rf_system.Proto_ospf);
             ("rip", Rf_routeflow.Rf_system.Proto_rip);
           ])
        Rf_routeflow.Rf_system.Proto_ospf
    & info [ "protocol" ] ~doc)

let pcap_arg =
  let doc = "Write a pcap capture of the client's access link to $(docv)." in
  Arg.(value & opt (some string) None & info [ "pcap" ] ~doc ~docv:"FILE")

let demo_cmd =
  let run vm_boot_s horizon_s server_city client_city protocol pcap_path
      telemetry =
    Experiment.print_demo std
      (Experiment.demo ~vm_boot_s ~horizon_s ~server_city ~client_city ~protocol
         ?pcap_path ?telemetry ())
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Reproduce the demonstration: stream video across the pan-European \
          topology while RouteFlow configures itself")
    Term.(
      const run $ boot_arg $ horizon_arg $ server_arg $ client_arg $ protocol_arg
      $ pcap_arg $ telemetry_arg)

(* --- failure -------------------------------------------------------- *)

let failure_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed (replays).")
  in
  let switches_arg =
    Arg.(value & opt int 6 & info [ "switches" ] ~doc:"Ring size (>= 4).")
  in
  let fail_at_arg =
    Arg.(value & opt float 60.0 & info [ "fail-at" ] ~doc:"Link cut time (sim s).")
  in
  let fail_horizon_arg =
    Arg.(value & opt float 150.0 & info [ "horizon" ] ~doc:"Sim seconds.")
  in
  let run seed switches fail_at_s horizon_s audit telemetry profile slo
      flamegraph baseline =
    let needed = needs_analysis ~slo ~flamegraph ~baseline in
    let telemetry, load = telemetry_route ~needed telemetry in
    let profiler = make_profiler profile in
    let r =
      Experiment.failure_recovery ~seed ~switches ~fail_at_s ~horizon_s ~audit
        ?telemetry ?profiler ()
    in
    Experiment.print_failure_recovery std r;
    print_audit_runs [ r.fr_audit ];
    print_profiler_report profiler;
    post_run_analysis Analysis.E3 load ~slo ~flamegraph ~baseline;
    audit_gate [ r.fr_audit ]
  in
  Cmd.v
    (Cmd.info "failure"
       ~doc:
         "Cut a ring link under live traffic and report packet loss and \
          reconvergence time (deterministic: same seed, same trace)")
    Term.(
      const run $ seed_arg $ switches_arg $ fail_at_arg $ fail_horizon_arg
      $ audit_flag $ telemetry_arg $ profile_flag $ slo_arg $ flamegraph_arg
      $ baseline_arg)

(* --- restart -------------------------------------------------------- *)

let restart_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed (replays).")
  in
  let switches_arg =
    Arg.(value & opt int 8 & info [ "switches" ] ~doc:"Ring size (>= 4).")
  in
  let crash_at_arg =
    Arg.(
      value & opt float 4.0
      & info [ "crash-at" ] ~doc:"RF-controller crash time (sim s).")
  in
  let cut_at_arg =
    Arg.(
      value & opt float 8.0
      & info [ "cut-at" ]
          ~doc:"Cut link sw2-sw3 at this time, while the controller is down.")
  in
  let recover_at_arg =
    Arg.(
      value & opt float 20.0
      & info [ "recover-at" ] ~doc:"RF-controller restart time (sim s).")
  in
  let restart_horizon_arg =
    Arg.(value & opt float 120.0 & info [ "horizon" ] ~doc:"Sim seconds.")
  in
  let run seed switches crash_at_s cut_at_s recover_at_s horizon_s audit
      telemetry slo flamegraph baseline =
    let needed = needs_analysis ~slo ~flamegraph ~baseline in
    let telemetry, load = telemetry_route ~needed telemetry in
    let r =
      Experiment.restart ~seed ~switches ~crash_at_s ~cut_at_s ~recover_at_s
        ~horizon_s ~audit ?telemetry ()
    in
    Experiment.print_restart std r;
    print_audit_runs
      [ r.rs_supervised.rr_audit; r.rs_legacy.rr_audit ];
    post_run_analysis Analysis.E4 load ~slo ~flamegraph ~baseline;
    audit_gate [ r.rs_supervised.rr_audit; r.rs_legacy.rr_audit ]
  in
  Cmd.v
    (Cmd.info "restart"
       ~doc:
         "Crash the RF-controller, cut a link while it is down, and compare \
          recovery with and without the session-aware RPC reconciliation \
          (deterministic: same seed, same trace)")
    Term.(
      const run $ seed_arg $ switches_arg $ crash_at_arg $ cut_at_arg
      $ recover_at_arg $ restart_horizon_arg $ audit_flag $ telemetry_arg
      $ slo_arg $ flamegraph_arg $ baseline_arg)

(* --- gui ----------------------------------------------------------- *)

let gui_cmd =
  let every_arg =
    Arg.(value & opt float 30.0 & info [ "every" ] ~doc:"Frame period (sim s).")
  in
  let run vm_boot_s every_s =
    List.iter
      (fun frame -> Format.fprintf std "%s@." frame)
      (Experiment.gui_frames ~vm_boot_s ~every_s ())
  in
  Cmd.v
    (Cmd.info "gui" ~doc:"Render the red/green GUI frames of the demo run")
    Term.(const run $ boot_arg $ every_arg)

(* --- scaling -------------------------------------------------------- *)

let scaling_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 50; 100; 250; 500; 1000 ]
      & info [ "sizes" ] ~doc:"Ring sizes.")
  in
  let run sizes = Experiment.print_scaling std (Experiment.scaling ~sizes ()) in
  Cmd.v
    (Cmd.info "scaling" ~doc:"Extension: configuration time up to 1000 switches")
    Term.(const run $ sizes)

(* --- ablation -------------------------------------------------------- *)

let ablation_cmd =
  let which =
    let doc = "Which knob: boot, probe, rpc, or proto." in
    Arg.(
      value
      & pos 0
          (enum [ ("boot", `Boot); ("probe", `Probe); ("rpc", `Rpc); ("proto", `Proto) ])
          `Boot
      & info [] ~doc)
  in
  let switches_arg =
    Arg.(value & opt int 28 & info [ "switches" ] ~doc:"Ring size.")
  in
  let run which switches =
    match which with
    | `Boot ->
        Experiment.print_ablation std "VM boot parallelism"
          (Experiment.ablation_parallel_boot ~switches ())
    | `Probe ->
        Experiment.print_ablation std "LLDP probe interval"
          (Experiment.ablation_probe_interval ~switches ())
    | `Rpc ->
        Experiment.print_ablation std "RPC latency (controller placement)"
          (Experiment.ablation_rpc_latency ~switches ())
    | `Proto ->
        Experiment.print_ablation std "routing protocol (OSPF vs RIPv2)"
          (Experiment.ablation_protocol ~switches ())
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations on the 28-switch ring")
    Term.(const run $ which $ switches_arg)

(* --- inspect ---------------------------------------------------------- *)

let inspect_cmd =
  let n_arg = Arg.(value & opt int 4 & info [ "switches" ] ~doc:"Ring size.") in
  let dpid_arg =
    Arg.(value & opt int 1 & info [ "dpid" ] ~doc:"Switch whose VM to inspect.")
  in
  let run n dpid =
    let topo = Rf_net.Topo_gen.ring n in
    let options =
      {
        Rf_core.Scenario.default_options with
        rf_params =
          {
            Rf_core.Scenario.default_options.Rf_core.Scenario.rf_params with
            Rf_routeflow.Rf_system.vm_boot_time = Rf_sim.Vtime.span_s 2.0;
          };
      }
    in
    let s = Rf_core.Scenario.build ~options topo in
    Rf_core.Scenario.run_for s (Rf_sim.Vtime.span_s ((2.0 *. float_of_int n) +. 30.));
    let d = Int64.of_int dpid in
    match Rf_routeflow.Rf_system.vm (Rf_core.Scenario.rf_system s) d with
    | None -> Format.printf "switch %Ld has no VM@." d
    | Some vm ->
        Format.printf "=== %s: show ip route ===@.%s@." (Rf_routeflow.Vm.hostname vm)
          (Rf_routing.Show.ip_route (Rf_routeflow.Vm.rib vm));
        (match Rf_routeflow.Vm.ospfd vm with
        | Some daemon ->
            Format.printf "=== show ip ospf neighbor ===@.%s@."
              (Rf_routing.Show.ip_ospf_neighbor daemon);
            Format.printf "=== show ip ospf database ===@.%s@."
              (Rf_routing.Show.ip_ospf_database daemon)
        | None -> ());
        (match Rf_routeflow.Vm.ripd vm with
        | Some daemon ->
            Format.printf "=== show ip rip ===@.%s@." (Rf_routing.Show.ip_rip daemon)
        | None -> ());
        (match Rf_routeflow.Vm.config_file vm "zebra.conf" with
        | Some text -> Format.printf "=== zebra.conf ===@.%s@." text
        | None -> ());
        let dp = Rf_net.Network.datapath (Rf_core.Scenario.network s) d in
        Format.printf "=== physical flow table (%d entries) ===@."
          (Rf_net.Flow_table.size (Rf_net.Datapath.flow_table dp));
        List.iter
          (fun (e : Rf_net.Flow_table.entry) ->
            Format.printf "  prio=%d %a -> %s@." e.Rf_net.Flow_table.e_priority
              Rf_openflow.Of_match.pp e.Rf_net.Flow_table.e_match
              (String.concat ", "
                 (List.map
                    (Format.asprintf "%a" Rf_openflow.Of_action.pp)
                    e.Rf_net.Flow_table.e_actions)))
          (Rf_net.Flow_table.entries (Rf_net.Datapath.flow_table dp))
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Run a ring scenario, then dump one VM's vtysh state and its switch's flow table")
    Term.(const run $ n_arg $ dpid_arg)

(* --- obs --------------------------------------------------------------- *)

let obs_cmd =
  let switches_arg =
    Arg.(value & opt int 28 & info [ "switches" ] ~doc:"Ring size.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write span/event JSONL to $(docv).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Write the per-phase summary table to $(docv) (stable across              same-seed runs; used by CI as a telemetry fingerprint).")
  in
  let prometheus_arg =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:"Also print the metrics registry in Prometheus text format.")
  in
  let spans_arg =
    Arg.(
      value & flag
      & info [ "spans" ] ~doc:"Also print per-span-name aggregates.")
  in
  let run switches vm_boot_s parallel_boot out summary_out prometheus spans
      slo flamegraph baseline =
    let options =
      {
        Rf_core.Scenario.default_options with
        rf_params =
          {
            Rf_core.Scenario.default_options.Rf_core.Scenario.rf_params with
            Rf_routeflow.Rf_system.vm_boot_time = Rf_sim.Vtime.span_s vm_boot_s;
            parallel_boot;
          };
      }
    in
    let s = Rf_core.Scenario.build ~options (Rf_net.Topo_gen.ring switches) in
    let horizon =
      (vm_boot_s *. float_of_int switches /. float_of_int parallel_boot) +. 120.
    in
    Rf_core.Scenario.run_for s (Rf_sim.Vtime.span_s horizon);
    let b = Experiment.breakdown_of s in
    Experiment.print_phases std b;
    (match out with
    | Some path ->
        Rf_core.Scenario.write_telemetry s path
          ~meta:[ ("experiment", "e1-phases") ];
        Format.fprintf std "telemetry written to %s@." path
    | None -> ());
    if needs_analysis ~slo ~flamegraph ~baseline then begin
      let dump =
        Rf_obs.Ingest.load_string
          (Rf_core.Scenario.telemetry_jsonl s
             ~meta:[ ("experiment", "e1-phases") ])
      in
      analyze_dump Analysis.E1b dump ~slo ~flamegraph ~baseline
    end;
    (match summary_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Format.asprintf "%a" Experiment.print_phases b);
        close_out oc
    | None -> ());
    if spans then begin
      Format.fprintf std "@.%a" Rf_obs.Export.pp_span_stats
        (Rf_core.Scenario.span_stats s)
    end;
    if prometheus then
      Format.fprintf std "@.%s" (Rf_core.Scenario.prometheus s)
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Run a ring configuration and decompose the end-to-end time into           discovery, RPC, VM-provisioning, Quagga and convergence phases           from the span tree; optionally dump JSONL telemetry and           Prometheus-style metrics")
    Term.(
      const run $ switches_arg $ boot_arg $ parallel_arg $ out_arg
      $ summary_arg $ prometheus_arg $ spans_arg $ slo_arg $ flamegraph_arg
      $ baseline_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let n_arg = Arg.(value & opt int 4 & info [ "switches" ] ~doc:"Ring size.") in
  let run n =
    let topo = Rf_net.Topo_gen.ring n in
    let s = Rf_core.Scenario.build topo in
    Rf_core.Scenario.run_for s (Rf_sim.Vtime.span_s ((8.0 *. float_of_int n) +. 60.));
    let timeline = Rf_core.Timeline.of_scenario s in
    print_string (Rf_core.Timeline.render timeline);
    let sum = Rf_core.Timeline.summarize timeline in
    Format.printf
      "@.%d switches detected, %d links detected, %d VMs ready, %d configured@."
      sum.Rf_core.Timeline.switches_detected sum.Rf_core.Timeline.links_detected
      sum.Rf_core.Timeline.vms_ready sum.Rf_core.Timeline.vms_configured;
    (match sum.Rf_core.Timeline.last_vm_ready_s with
    | Some t -> Format.printf "last VM ready at %.1f s@." t
    | None -> ())
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the configuration event timeline of a ring run")
    Term.(const run $ n_arg)

(* --- run: user topology file ------------------------------------------- *)

let run_cmd =
  let topo_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "topo" ] ~docv:"FILE"
          ~doc:"Topology file (switch/link/host lines; see Topo_file).")
  in
  let horizon_arg2 =
    Arg.(value & opt float 0.0 & info [ "horizon" ] ~doc:"Sim seconds (0 = auto).")
  in
  let run topo_path horizon vm_boot_s =
    match Rf_net.Topo_file.load topo_path with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
    | Ok topo ->
        let options =
          {
            Rf_core.Scenario.default_options with
            rf_params =
              {
                Rf_core.Scenario.default_options.Rf_core.Scenario.rf_params with
                Rf_routeflow.Rf_system.vm_boot_time = Rf_sim.Vtime.span_s vm_boot_s;
              };
          }
        in
        let s = Rf_core.Scenario.build ~options topo in
        let horizon =
          if horizon > 0. then horizon
          else
            (vm_boot_s *. float_of_int (Rf_net.Topology.switch_count topo)) +. 120.
        in
        Rf_core.Scenario.run_for s (Rf_sim.Vtime.span_s horizon);
        print_string (Rf_core.Timeline.render (Rf_core.Timeline.of_scenario s));
        Format.printf "@.%s@." (Rf_core.Gui.render (Rf_core.Scenario.gui s));
        (match Rf_core.Scenario.all_configured_at s with
        | Some t ->
            Format.printf "all switches configured at %.1f s@." (Rf_sim.Vtime.to_s t)
        | None -> Format.printf "configuration incomplete within the horizon@.");
        match Rf_core.Scenario.routing_converged_at s with
        | Some t -> Format.printf "routing converged at %.1f s@." (Rf_sim.Vtime.to_s t)
        | None -> Format.printf "routing not converged within the horizon@."
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Autoconfigure a user-supplied topology file and report the timeline")
    Term.(const run $ topo_arg $ horizon_arg2 $ boot_arg)

(* --- families --------------------------------------------------------- *)

let families_cmd =
  let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Switch count.") in
  let run n = Experiment.print_families std (Experiment.topo_families ~n ()) in
  Cmd.v
    (Cmd.info "families" ~doc:"Configuration time across topology families")
    Term.(const run $ n_arg)

(* --- traffic (E6) ------------------------------------------------------ *)

let traffic_cmd =
  let switches_arg =
    Arg.(value & opt int 8 & info [ "switches" ] ~doc:"Ring size (>= 8).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let fail_arg =
    Arg.(
      value & opt float 40.0
      & info [ "fail-at" ] ~doc:"Virtual second of the sw2-sw3 cut.")
  in
  let manual_arg =
    Arg.(
      value & opt float 25.0
      & info [ "manual-delay" ]
          ~doc:"Seconds the manual operator takes to respond to the cut.")
  in
  let horizon_arg =
    Arg.(value & opt float 90.0 & info [ "horizon" ] ~doc:"Sim seconds per run.")
  in
  let scale_arg =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Also run the fat-tree scaling workload (aggregate fabric,              >= 10^5 flows) and report events/sec.")
  in
  let k_arg =
    Arg.(
      value & opt int 20
      & info [ "k" ] ~doc:"Fat-tree arity for --scale (even, >= 2).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the automatic run's span/event JSONL to $(docv).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Write the disruption summary to $(docv) (byte-identical across              same-seed runs; used by CI as the E6 fingerprint).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "With --scale, also run the scaling workload on the sharded            engine cut N ways (block cut by host index) and report its            digest and events/sec next to the single-engine run.")
  in
  let shards_from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shards-from" ] ~docv:"FILE"
          ~doc:
            "With --scale, shard the scaling workload by an            rfauto-shard-map-v1 entity→shard map (e.g. from `rfauto            profile --partition-out`) instead of the block cut.")
  in
  let run switches seed fail_at manual_delay horizon scale k shards
      shards_from out summary_out profile slo flamegraph baseline =
    let needed = needs_analysis ~slo ~flamegraph ~baseline in
    let telemetry, load = telemetry_route ~needed out in
    let profiler = make_profiler profile in
    let r =
      Experiment.traffic_disruption ~seed ~switches ~fail_at_s:fail_at
        ~manual_response_s:manual_delay ~horizon_s:horizon ?telemetry
        ?profiler ()
    in
    Experiment.print_traffic std r;
    print_profiler_report profiler;
    (match out with
    | Some path -> Format.fprintf std "telemetry written to %s@." path
    | None -> ());
    let summary = Format.asprintf "%a" Experiment.print_traffic r in
    let summary =
      if scale then begin
        let sc = Experiment.traffic_scaling ~seed ~k () in
        Experiment.print_traffic_scaling ~show_rate:true std sc;
        let summary =
          summary
          ^ Format.asprintf "%a" (Experiment.print_traffic_scaling ~show_rate:false) sc
        in
        match (shards_from, shards) with
        | None, 1 -> summary
        | from, n ->
            let n, assignment =
              match from with
              | Some path ->
                  let km, a = load_shard_map path in
                  (km, Some a)
              | None -> (n, None)
            in
            let sr =
              Experiment.scaling_sharded ~seed ~k ~profile ?assignment
                ~shards:n ()
            in
            Experiment.print_scaling_sharded ~wall:true std sr;
            (match sr.Rf_traffic.Shard_run.sr_profile with
            | Some sn ->
                Format.fprintf std "@.";
                Rf_obs.Profiler.pp_top ~wall:true ~top:10 std sn;
                Rf_obs.Profiler.pp_depth_curve std sn
            | None -> ());
            summary
            ^ Format.asprintf "%a" (Experiment.print_scaling_sharded ~wall:false) sr
      end
      else summary
    in
    (match summary_out with
    | Some path ->
        let oc = open_out path in
        output_string oc summary;
        close_out oc
    | None -> ());
    post_run_analysis Analysis.E6 load ~slo ~flamegraph ~baseline
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "E6: measure data-plane traffic disruption (loss, latency,           disruption windows) while the E3 link-failure and E4           controller-restart scenarios play out, automatic configuration vs           a manual-operation baseline; optionally a fat-tree scaling run")
    Term.(
      const run $ switches_arg $ seed_arg $ fail_arg $ manual_arg
      $ horizon_arg $ scale_arg $ k_arg $ shards_arg $ shards_from_arg
      $ out_arg $ summary_arg $ profile_flag $ slo_arg $ flamegraph_arg
      $ baseline_arg)

(* --- cluster: controller-cluster failover (E9) ---------------------- *)

let cluster_cmd =
  let switches_arg =
    Arg.(value & opt int 28 & info [ "switches" ] ~doc:"Ring size (>= 8).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~doc:"RF-controller replicas (>= 3).")
  in
  let crash_arg =
    Arg.(
      value & opt float 30.0
      & info [ "crash-at" ]
          ~doc:"Virtual second the acting leader (replica 0) crashes.")
  in
  let cut_arg =
    Arg.(
      value & opt float 36.0
      & info [ "cut-at" ] ~doc:"Virtual second of the sw2-sw3 cut.")
  in
  let recover_arg =
    Arg.(
      value & opt float 60.0
      & info [ "recover-at" ]
          ~doc:"Virtual second the crashed replica rejoins.")
  in
  let manual_arg =
    Arg.(
      value & opt float 25.0
      & info [ "manual-delay" ]
          ~doc:
            "Seconds the operator takes to restart the single-controller            baseline after its crash.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 120.0 & info [ "horizon" ] ~doc:"Sim seconds per run.")
  in
  let traffic_start_arg =
    Arg.(
      value & opt float 20.0
      & info [ "traffic-start" ]
          ~doc:
            "Virtual second the workload starts; raise it (with            --parallel-boot) on large rings so provisioning completes            first.")
  in
  let parallel_boot_arg =
    Arg.(
      value & opt int 4
      & info [ "parallel-boot" ] ~doc:"Concurrent VM boots while provisioning.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the automatic run's span/event JSONL to $(docv).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Write the failover summary to $(docv) (byte-identical across              same-seed runs; used by CI as the E9 fingerprint).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Register a static N-way partition of the automatic run's            network and record its cut statistics (cross links, lookahead            bound) in the telemetry meta.")
  in
  let run switches seed replicas crash_at cut_at recover_at manual_delay
      horizon traffic_start parallel_boot shards audit out summary_out profile
      slo flamegraph baseline =
    let needed = needs_analysis ~slo ~flamegraph ~baseline in
    let telemetry, load = telemetry_route ~needed out in
    let profiler = make_profiler profile in
    let r =
      Experiment.cluster_failover ~seed ~switches ~replicas
        ~crash_at_s:crash_at ~cut_at_s:cut_at ~recover_at_s:recover_at
        ~manual_response_s:manual_delay ~horizon_s:horizon
        ~traffic_start_s:traffic_start ~parallel_boot ~shards ~audit
        ?telemetry ?profiler ()
    in
    Experiment.print_cluster std r;
    print_audit_runs [ r.cf_auto.cw_audit; r.cf_legacy.cw_audit ];
    print_profiler_report profiler;
    (match out with
    | Some path -> Format.fprintf std "telemetry written to %s@." path
    | None -> ());
    (match summary_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Format.asprintf "%a" Experiment.print_cluster r);
        close_out oc
    | None -> ());
    post_run_analysis Analysis.E9 load ~slo ~flamegraph ~baseline;
    audit_gate [ r.cf_auto.cw_audit; r.cf_legacy.cw_audit ]
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "E9: replicated RF-controller cluster under live traffic — the           acting leader crashes just before a link cut, the survivors           elect a new leader and take the switch sessions back, vs. the           single-controller baseline waiting for the operator")
    Term.(
      const run $ switches_arg $ seed_arg $ replicas_arg $ crash_arg
      $ cut_arg $ recover_arg $ manual_arg $ horizon_arg $ traffic_start_arg
      $ parallel_boot_arg $ shards_arg $ audit_flag $ out_arg $ summary_arg
      $ profile_flag $ slo_arg $ flamegraph_arg $ baseline_arg)

(* --- profile: engine profiler & shard-cut advisor (E10) ------------ *)

let profile_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let k_arg =
    Arg.(
      value & opt int 20
      & info [ "k" ] ~doc:"Fat-tree arity of the profiled run (even, >= 2).")
  in
  let horizon_arg =
    Arg.(value & opt float 60.0 & info [ "horizon" ] ~doc:"Sim seconds.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"K"
          ~doc:"Shard count the advisor partitions the topology into.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Entities shown in the load table.")
  in
  let entities_arg =
    Arg.(
      value & flag
      & info [ "entities" ]
          ~doc:"Show every profiled entity, not just the top N.")
  in
  let overhead_arg =
    Arg.(
      value & flag
      & info [ "measure-overhead" ]
          ~doc:
            "Run the identical workload once more without the profiler and            report the instrumentation's wall-clock overhead.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the run's span/event JSONL (profile snapshot included,            meta line carrying the profile and advisor figures) to $(docv).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic profile report to $(docv)            (byte-identical across same-seed runs; used by CI as the E10            fingerprint).")
  in
  let partition_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "partition-out" ] ~docv:"FILE"
          ~doc:
            "Write the advisor's entity→shard map to $(docv) as            rfauto-shard-map-v1 JSON, consumable by `rfauto shard            --shards-from` and `rfauto traffic --shards-from`.")
  in
  let run seed k horizon shards top entities overhead out summary_out
      partition_out slo flamegraph baseline =
    let needed = needs_analysis ~slo ~flamegraph ~baseline in
    let telemetry, load = telemetry_route ~needed out in
    let r =
      Experiment.profile_scaling ~seed ~k ~horizon_s:horizon ~shards
        ~measure_overhead:overhead ?telemetry ()
    in
    let top =
      if entities then
        List.length r.Experiment.pf_snapshot.Rf_obs.Profiler.sn_entities
      else top
    in
    Experiment.print_profile ~wall:true ~top std r;
    (match out with
    | Some path -> Format.fprintf std "telemetry written to %s@." path
    | None -> ());
    (match summary_out with
    | Some path ->
        write_file path
          (Format.asprintf "%a" (Experiment.print_profile ~wall:false ~top) r)
    | None -> ());
    (match partition_out with
    | Some path ->
        write_file path
          (Rf_obs.Shard_advisor.assignment_json r.Experiment.pf_report);
        Format.fprintf std "shard map written to %s@." path
    | None -> ());
    post_run_analysis Analysis.E10 load ~slo ~flamegraph ~baseline
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "E10: profile the engine across the fat-tree scaling run —           per-entity load attribution, event-heap depth/churn and GC           telemetry — and ask the shard-cut advisor for a k-way domain           partition with its conservative-lookahead speedup bound")
    Term.(
      const run $ seed_arg $ k_arg $ horizon_arg $ shards_arg $ top_arg
      $ entities_arg $ overhead_arg $ out_arg $ summary_arg $ partition_arg
      $ slo_arg $ flamegraph_arg $ baseline_arg)

(* --- shard: sharded-engine speedup sweep (E11) ---------------------- *)

let shard_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let k_arg =
    Arg.(
      value & opt int 10
      & info [ "k" ] ~doc:"Fat-tree arity of the workload (even, >= 2).")
  in
  let horizon_arg =
    Arg.(value & opt float 20.0 & info [ "horizon" ] ~doc:"Sim seconds.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "shards" ] ~docv:"N,.."
          ~doc:"Shard counts to sweep (comma separated).")
  in
  let cut_arg =
    Arg.(
      value & opt string "static"
      & info [ "cut" ] ~docv:"KIND"
          ~doc:
            "Partition source: $(b,static) (contiguous block cut by host            index) or $(b,advisor) (the profiled shard-cut advisor's            partition).")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shards-from" ] ~docv:"FILE"
          ~doc:
            "Load an rfauto-shard-map-v1 entity→shard map (e.g. from            `rfauto profile --partition-out`); replaces --shards/--cut            with a [1; k] sweep using the map's own k and assignment.")
  in
  let mode_arg =
    Arg.(
      value & opt string "parallel"
      & info [ "mode" ]
          ~doc:
            "Execution mode: $(b,parallel) (one domain per shard) or            $(b,sequential) (same windows and digests on one thread —            for isolating determinism from scheduling).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Write the virtual-clock shard summary to $(docv)            (byte-identical across same-seed runs and shard counts; used            by CI as the E11 fingerprint).")
  in
  let run seed k horizon shards cut from_file mode summary_out =
    let mode =
      match mode with
      | "parallel" -> Rf_sim.Shard_engine.Parallel
      | "sequential" -> Rf_sim.Shard_engine.Sequential
      | m ->
          Format.eprintf "rfauto shard: unknown --mode %s@." m;
          exit 64
    in
    let advisor_cut =
      match cut with
      | "advisor" -> true
      | "static" -> false
      | c ->
          Format.eprintf "rfauto shard: unknown --cut %s@." c;
          exit 64
    in
    let shard_counts, cut_fn =
      match from_file with
      | Some path ->
          let km, assignment = load_shard_map path in
          let f = Experiment.assignment_cut assignment in
          ( (if km <= 1 then [ 1 ] else [ 1; km ]),
            (* the 1-shard baseline keeps everything in shard 0 *)
            Some (fun n host -> if n = 1 then 0 else f host) )
      | None -> (shards, None)
    in
    let r =
      Experiment.shard_speedup ~seed ~k ~horizon_s:horizon ~shard_counts
        ~mode ~advisor_cut ?cut:cut_fn ()
    in
    Experiment.print_shard ~wall:true std r;
    (match summary_out with
    | Some path ->
        write_file path
          (Format.asprintf "%a" (Experiment.print_shard ~wall:false) r)
    | None -> ());
    if not (r.Experiment.sh_deterministic && r.Experiment.sh_legacy_agrees)
    then exit 4
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "E11: run the fat-tree scaling workload on the sharded           conservative-lookahead engine across a sweep of shard counts —           every count must reproduce the identical virtual-clock digest           (exit 4 otherwise) — and report wall-clock speedups next to the           profiled Amdahl bound of the cut")
    Term.(
      const run $ seed_arg $ k_arg $ horizon_arg $ shards_arg $ cut_arg
      $ from_arg $ mode_arg $ summary_arg)

(* --- analyze: trace analytics & SLO engine (E7) --------------------- *)

(* --- audit: E12 forwarding-state audit of the fault replays -------- *)

let audit_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let e3_arg =
    Arg.(
      value & opt int 6
      & info [ "e3-switches" ] ~doc:"Ring size of the E3 link-cut replay.")
  in
  let e4_arg =
    Arg.(
      value & opt int 8
      & info [ "e4-switches" ] ~doc:"Ring size of the E4 restart replay.")
  in
  let e9_arg =
    Arg.(
      value & opt int 28
      & info [ "e9-switches" ]
          ~doc:"Ring size of the E9 leader-crash replay (>= 8).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 3
      & info [ "replicas" ]
          ~doc:"RF-controller replicas of the E9 automatic replay (>= 3).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the E9 automatic replay's span/event JSONL (including            the audit.violation spans) to $(docv).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Write the audit summary to $(docv) (byte-identical across            same-seed runs; used by CI as the E12 fingerprint).")
  in
  let run seed e3_switches e4_switches e9_switches replicas out summary_out
      slo flamegraph baseline =
    let needed = needs_analysis ~slo ~flamegraph ~baseline in
    let telemetry, load = telemetry_route ~needed out in
    let r =
      Experiment.audit_windows ~seed ~e3_switches ~e4_switches ~e9_switches
        ~e9_replicas:replicas ?telemetry ()
    in
    Experiment.print_audit std r;
    (match out with
    | Some path -> Format.fprintf std "telemetry written to %s@." path
    | None -> ());
    (match summary_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Format.asprintf "%a" Experiment.print_audit r);
        close_out oc
    | None -> ());
    post_run_analysis Analysis.E12 load ~slo ~flamegraph ~baseline;
    if r.ad_steady_total > 0 then begin
      Format.eprintf "rfauto: steady-state forwarding violations detected@.";
      exit 5
    end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "E12: replay the E3 link-cut, E4 restart and E9 leader-crash fault           schedules with the continuous forwarding-state auditor           attached — loop / blackhole / RIB-FIB / slice-isolation           violation windows in virtual time, automatic vs legacy — and           exit 5 if any window overlaps the steady-state interval")
    Term.(
      const run $ seed_arg $ e3_arg $ e4_arg $ e9_arg $ replicas_arg
      $ out_arg $ summary_arg $ slo_arg $ flamegraph_arg $ baseline_arg)

let analyze_cmd =
  let input_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:
            "Analyze an existing telemetry JSONL dump instead of running            experiments; the experiment is inferred from the dump's meta            line unless --experiment names it.")
  in
  let experiment_arg =
    Arg.(
      value & opt string "all"
      & info [ "experiment" ] ~docv:"EXP"
          ~doc:
            "Which experiment to analyze: e1b, e3, e4, e6, e9, e10, e12 or            all (all covers the pinned E7 set, which excludes e9, e10 and            e12).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let flamegraph_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flamegraph-json" ] ~docv:"FILE"
          ~doc:"Write the span tree as d3-flamegraph JSON to $(docv).")
  in
  let save_baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-baseline" ] ~docv:"FILE"
          ~doc:
            "Write this run's indicators to $(docv) as the new baseline            (overwrites; no diff).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE"
          ~doc:
            "Also write the report to $(docv) (byte-identical across            same-seed runs; used by CI as the E7 fingerprint).")
  in
  let infer_experiment dump =
    match Rf_obs.Ingest.meta_value dump "experiment" with
    | Some ("e1-phases" | "fig3" | "demo") -> Some Analysis.E1b
    | Some "failure" -> Some Analysis.E3
    | Some "restart" -> Some Analysis.E4
    | Some "traffic" -> Some Analysis.E6
    | Some "cluster" -> Some Analysis.E9
    | Some "profile" -> Some Analysis.E10
    | Some "audit" -> Some Analysis.E12
    | Some _ | None -> None
  in
  let run input experiment seed slo flamegraph flamegraph_json baseline
      save_baseline summary_out =
    let die fmt =
      Format.kasprintf
        (fun msg ->
          Format.eprintf "rfauto analyze: %s@." msg;
          exit 64)
        fmt
    in
    let dumps =
      match input with
      | Some path ->
          let dump = Rf_obs.Ingest.load_file path in
          let exp =
            match
              if experiment = "all" then infer_experiment dump
              else Analysis.of_string experiment
            with
            | Some e -> e
            | None ->
                die
                  "cannot infer the experiment from %s; pass --experiment \
                   e1b|e3|e4|e6|e9|e10|e12"
                  path
          in
          [ (exp, dump) ]
      | None ->
          let exps =
            if experiment = "all" then Analysis.all
            else
              match Analysis.of_string experiment with
              | Some e -> [ e ]
              | None -> die "unknown experiment %s" experiment
          in
          List.map (fun e -> (e, Analysis.run_dump ~seed e)) exps
    in
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    (match input with
    | Some path -> Format.fprintf ppf "E7 — trace analytics of %s@." path
    | None ->
        Format.fprintf ppf "E7 — trace analytics & SLO scorecard (seed %d)@."
          seed);
    let all_results =
      List.map
        (fun (exp, dump) ->
          Format.fprintf ppf "@.== %s: %s ==@." (Analysis.name exp)
            (Analysis.describe exp);
          (match Analysis.configure_path dump with
          | Some steps ->
              Format.fprintf ppf "%a" Rf_obs.Critical_path.pp_path steps
          | None -> ());
          let results = Analysis.evaluate exp dump in
          if slo then Format.fprintf ppf "@.%a" Analysis.scorecard results;
          (exp, dump, results))
        dumps
    in
    Format.pp_print_flush ppf ();
    let report = Buffer.contents buf in
    print_string report;
    (match summary_out with
    | Some path -> write_file path report
    | None -> ());
    let forest_all =
      List.concat_map (fun (_, dump, _) -> Analysis.forest dump) all_results
    in
    (match flamegraph with
    | Some path ->
        write_file path (Rf_obs.Flamegraph.folded forest_all);
        Format.fprintf std "flamegraph written to %s@." path
    | None -> ());
    (match flamegraph_json with
    | Some path ->
        write_file path (Rf_obs.Flamegraph.d3_json forest_all);
        Format.fprintf std "flamegraph JSON written to %s@." path
    | None -> ());
    let results_flat = List.concat_map (fun (_, _, r) -> r) all_results in
    let label =
      match all_results with
      | [ (exp, _, _) ] -> Analysis.name exp
      | _ -> "all"
    in
    let current = Analysis.baseline_run ~label results_flat in
    (match save_baseline with
    | Some path ->
        Rf_obs.Baseline.save path current;
        Format.fprintf std "baseline saved to %s@." path
    | None -> ());
    let regressed = ref false in
    (match baseline with
    | Some path when Sys.file_exists path ->
        let entries =
          Rf_obs.Baseline.diff ~base:(Rf_obs.Baseline.load path) ~current ()
        in
        Format.fprintf std "@.vs baseline %s:@.%a" path Rf_obs.Baseline.pp_diff
          entries;
        if Rf_obs.Baseline.has_regression entries then regressed := true
    | Some path ->
        Rf_obs.Baseline.save path current;
        Format.fprintf std "baseline saved to %s@." path
    | None -> ());
    if !regressed then exit 3;
    if slo && Rf_obs.Slo.worst results_flat = Rf_obs.Slo.Fail then exit 2
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "E7: trace analytics & SLO engine — critical paths, flamegraphs,           sliding-window SLO verdicts and regression baselines over the           experiments' telemetry (consumes a JSONL dump via --input or runs           the experiments itself)")
    Term.(
      const run $ input_arg $ experiment_arg $ seed_arg $ slo_arg
      $ flamegraph_arg $ flamegraph_json_arg $ baseline_arg
      $ save_baseline_arg $ summary_arg)

let main =
  Cmd.group
    (Cmd.info "rfauto" ~version:"1.0.0"
       ~doc:
         "Automatic configuration of routing control platforms in OpenFlow \
          networks — reproduction experiments")
    [ fig3_cmd; demo_cmd; failure_cmd; restart_cmd; gui_cmd; scaling_cmd; ablation_cmd; families_cmd; inspect_cmd; obs_cmd; trace_cmd; run_cmd; traffic_cmd; cluster_cmd; profile_cmd; shard_cmd; audit_cmd; analyze_cmd ]

let () = exit (Cmd.eval main)
