(* Extension scenario: what the autoconfigured network does when a
   core link fails. The failure is expressed as a declarative fault
   plan: the simulator cuts the link at the planned instant, the
   port-status event reaches the topology controller, the Link_down
   RPC mirrors the failure into the virtual environment, OSPF inside
   the VMs re-originates and reconverges, the RF-clients re-export
   their routes, and traffic shifts to the backup path — all with no
   operator involvement, continuing the paper's theme.

   Every random draw descends from the scenario seed, so rerunning
   with the same seed replays the identical event trace.

   Run with:  dune exec examples/failure_recovery.exe *)

module Topology = Rf_net.Topology
module Topo_gen = Rf_net.Topo_gen
module Host = Rf_net.Host
module Scenario = Rf_core.Scenario
module Faults = Rf_sim.Faults
module Vtime = Rf_sim.Vtime

let seed = 42

let () =
  (* A 6-ring gives two disjoint paths between opposite corners. *)
  let topo = Topo_gen.ring 6 in
  Topology.add_host topo "server";
  Topology.add_host topo "client";
  ignore (Topology.connect topo (Topology.Host "server") (Topology.Switch 1L));
  ignore (Topology.connect topo (Topology.Host "client") (Topology.Switch 4L));

  let options =
    {
      Scenario.default_options with
      seed;
      rf_params =
        {
          Rf_routeflow.Rf_system.vm_boot_time = Vtime.span_s 2.0;
          parallel_boot = 4;
          config_apply_delay = Vtime.span_ms 200;
          routing_protocol = Rf_routeflow.Rf_system.Proto_ospf;
        };
      (* Fail the link the primary path uses, mid-stream. *)
      faults = Faults.(plan [ link_down ~at_s:60.0 2L 3L ]);
    }
  in
  let s = Scenario.build ~options topo in
  let server = Scenario.host s "server" in
  let client = Scenario.host s "client" in

  ignore
    (Host.start_udp_stream server ~dst:(Scenario.host_ip s "client")
       ~dst_port:5004 ~period:(Vtime.span_ms 100) ~payload_size:500 ());

  (* Let the network configure itself and traffic settle. *)
  Scenario.run_for s (Vtime.span_s 60.0);
  let before = Host.udp_received client in
  Format.printf "t=60s   configured; client received %d datagrams@." before;
  Format.printf "t=60s   fault plan fires: link sw2-sw3 DOWN@.";

  (* Event-driven failure propagation: reconvergence takes seconds,
     not the 40 s dead interval. *)
  Scenario.run_for s (Vtime.span_s 15.0);
  let during = Host.udp_received client in
  Format.printf "t=75s   client received %d datagrams (reroute window)@." during;

  Scenario.run_for s (Vtime.span_s 60.0);
  let after = Host.udp_received client in
  Format.printf "t=135s  client received %d datagrams@." after;
  let recovered = after - during in
  Format.printf "@.Delivery resumed after reconvergence: %d datagrams in the last minute (%s)@."
    recovered
    (if recovered > 400 then "recovered" else "NOT recovered");
  (match Scenario.reconverged_at s with
  | Some t ->
      Format.printf "Routes settled %.1f s after the cut (seed %d replays this exactly)@."
        (Vtime.to_s t -. 60.0) seed
  | None -> Format.printf "Routes did not settle within the horizon@.");

  (* Show the reconverged routing table of the ingress VM. *)
  match Rf_routeflow.Rf_system.vm (Scenario.rf_system s) 1L with
  | None -> ()
  | Some vm ->
      Format.printf "@.vm-1 routes after failure:@.";
      List.iter
        (fun r -> Format.printf "  %a@." Rf_routing.Rib.pp_route r)
        (Rf_routing.Rib.selected (Rf_routeflow.Vm.rib vm))
