(* Property-based tests: the OpenFlow wire codec round-trips every
   message it can emit, the framer is insensitive to TCP segmentation,
   address parsing round-trips, and the prefix trie agrees with a
   naive longest-prefix-match scan. *)

open Rf_openflow
open Rf_packet
module G = QCheck.Gen

(* The nightly CI job sets QCHECK_LONG to multiply every iteration
   count; interactive runs keep the fast defaults. *)
let long_factor =
  match Sys.getenv_opt "QCHECK_LONG" with
  | None | Some "" | Some "0" -> 1
  | Some _ -> 10

let prop ?(count = 300) name gen print f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(count * long_factor)
       (QCheck.make ~print gen) f)

(* --- generators ----------------------------------------------------- *)

let gen_u8 = G.int_range 0 0xff

let gen_u16 = G.int_range 0 0xffff

let gen_mac = G.map Mac.of_bytes (G.string_size ~gen:G.char (G.return 6))

let gen_ip = G.map Ipv4_addr.of_int32 G.int32

(* Length 0 encodes as a full wildcard on the wire, so matches carry
   1..32. *)
let gen_prefix =
  G.map2
    (fun a len -> Ipv4_addr.Prefix.make (Ipv4_addr.of_int32 a) len)
    G.int32 (G.int_range 1 32)

(* 0xffffffff is the "no buffer" sentinel. *)
let gen_buffer_opt =
  G.opt (G.map (fun b -> if Int32.equal b (-1l) then 0l else b) G.ui32)

(* 0xffff is Of_port.none, the "no port filter" sentinel. *)
let gen_out_port_opt = G.opt (G.int_range 0 (Of_port.none - 1))

let gen_small_string = G.string_size ~gen:G.char (G.int_range 0 64)

(* NUL terminates fixed-width name fields on the wire. *)
let gen_name len = G.string_size ~gen:G.printable (G.int_range 0 len)

let gen_match =
  let open G in
  let* m_in_port = opt gen_u16 in
  let* m_dl_src = opt gen_mac in
  let* m_dl_dst = opt gen_mac in
  let* m_dl_vlan = opt gen_u16 in
  let* m_dl_pcp = opt gen_u8 in
  let* m_dl_type = opt gen_u16 in
  let* m_nw_tos = opt gen_u8 in
  let* m_nw_proto = opt gen_u8 in
  let* m_nw_src = opt gen_prefix in
  let* m_nw_dst = opt gen_prefix in
  let* m_tp_src = opt gen_u16 in
  let* m_tp_dst = opt gen_u16 in
  return
    {
      Of_match.m_in_port;
      m_dl_src;
      m_dl_dst;
      m_dl_vlan;
      m_dl_pcp;
      m_dl_type;
      m_nw_tos;
      m_nw_proto;
      m_nw_src;
      m_nw_dst;
      m_tp_src;
      m_tp_dst;
    }

let gen_action =
  G.oneof
    [
      G.map2 (fun port max_len -> Of_action.Output { port; max_len }) gen_u16 gen_u16;
      G.map (fun m -> Of_action.Set_dl_src m) gen_mac;
      G.map (fun m -> Of_action.Set_dl_dst m) gen_mac;
      G.map (fun ip -> Of_action.Set_nw_src ip) gen_ip;
      G.map (fun ip -> Of_action.Set_nw_dst ip) gen_ip;
      G.map (fun t -> Of_action.Set_nw_tos t) gen_u8;
      G.map (fun p -> Of_action.Set_tp_src p) gen_u16;
      G.map (fun p -> Of_action.Set_tp_dst p) gen_u16;
      G.return Of_action.Strip_vlan;
    ]

let gen_actions = G.list_size (G.int_range 0 4) gen_action

let gen_phys_port =
  let open G in
  let* port_no = gen_u16 in
  let* hw_addr = gen_mac in
  let* name = gen_name 15 in
  let* up = bool in
  return { Of_msg.port_no; hw_addr; name; up }

let gen_flow_mod =
  let open G in
  let* fm_match = gen_match in
  let* fm_cookie = ui64 in
  let* fm_command =
    oneofl Of_msg.[ Add; Modify; Modify_strict; Delete; Delete_strict ]
  in
  let* fm_idle_timeout = gen_u16 in
  let* fm_hard_timeout = gen_u16 in
  let* fm_priority = gen_u16 in
  let* fm_buffer_id = gen_buffer_opt in
  let* fm_out_port = gen_out_port_opt in
  let* fm_notify_removed = bool in
  let* fm_actions = gen_actions in
  return
    {
      Of_msg.fm_match;
      fm_cookie;
      fm_command;
      fm_idle_timeout;
      fm_hard_timeout;
      fm_priority;
      fm_buffer_id;
      fm_out_port;
      fm_notify_removed;
      fm_actions;
    }

let gen_flow_stats =
  let open G in
  let* fs_match = gen_match in
  let* fs_priority = gen_u16 in
  let* fs_cookie = ui64 in
  let* fs_duration_s = int_range 0 1_000_000 in
  let* fs_packet_count = ui64 in
  let* fs_byte_count = ui64 in
  let* fs_actions = gen_actions in
  return
    {
      Of_msg.fs_match;
      fs_priority;
      fs_cookie;
      fs_duration_s;
      fs_packet_count;
      fs_byte_count;
      fs_actions;
    }

let gen_port_stats =
  let open G in
  let* ps_port_no = gen_u16 in
  let* ps_rx_packets = ui64 in
  let* ps_tx_packets = ui64 in
  let* ps_rx_bytes = ui64 in
  let* ps_tx_bytes = ui64 in
  let* ps_rx_dropped = ui64 in
  let* ps_tx_dropped = ui64 in
  return
    {
      Of_msg.ps_port_no;
      ps_rx_packets;
      ps_tx_packets;
      ps_rx_bytes;
      ps_tx_bytes;
      ps_rx_dropped;
      ps_tx_dropped;
    }

let gen_payload =
  let open G in
  oneof
    [
      return Of_msg.Hello;
      return Of_msg.Features_request;
      return Of_msg.Get_config_request;
      return Of_msg.Barrier_request;
      return Of_msg.Barrier_reply;
      (let* err_type = gen_u16 in
       let* err_code = gen_u16 in
       let* err_data = gen_small_string in
       return (Of_msg.Error { err_type; err_code; err_data }));
      map (fun d -> Of_msg.Echo_request d) gen_small_string;
      map (fun d -> Of_msg.Echo_reply d) gen_small_string;
      (let* vendor = ui32 in
       let* data = gen_small_string in
       return (Of_msg.Vendor { vendor; data }));
      (let* datapath_id = ui64 in
       let* n_buffers = ui32 in
       let* n_tables = gen_u8 in
       let* capabilities = ui32 in
       let* supported_actions = ui32 in
       let* ports = list_size (int_range 0 4) gen_phys_port in
       return
         (Of_msg.Features_reply
            {
              datapath_id;
              n_buffers;
              n_tables;
              capabilities;
              supported_actions;
              ports;
            }));
      (let* flags = gen_u16 in
       let* miss_send_len = gen_u16 in
       return (Of_msg.Get_config_reply { flags; miss_send_len }));
      (let* flags = gen_u16 in
       let* miss_send_len = gen_u16 in
       return (Of_msg.Set_config { flags; miss_send_len }));
      (let* pi_buffer_id = gen_buffer_opt in
       let* pi_total_len = gen_u16 in
       let* pi_in_port = gen_u16 in
       let* pi_reason = oneofl Of_msg.[ No_match; Action_to_controller ] in
       let* pi_data = gen_small_string in
       return
         (Of_msg.Packet_in
            { pi_buffer_id; pi_total_len; pi_in_port; pi_reason; pi_data }));
      (let* fr_match = gen_match in
       let* fr_cookie = ui64 in
       let* fr_priority = gen_u16 in
       let* fr_reason =
         oneofl Of_msg.[ Removed_idle; Removed_hard; Removed_delete ]
       in
       let* fr_duration_s = int_range 0 1_000_000 in
       let* fr_packet_count = ui64 in
       let* fr_byte_count = ui64 in
       return
         (Of_msg.Flow_removed
            {
              fr_match;
              fr_cookie;
              fr_priority;
              fr_reason;
              fr_duration_s;
              fr_packet_count;
              fr_byte_count;
            }));
      (let* reason = oneofl Of_msg.[ Port_add; Port_delete; Port_modify ] in
       let* desc = gen_phys_port in
       return (Of_msg.Port_status { reason; desc }));
      (let* po_buffer_id = gen_buffer_opt in
       let* po_in_port = gen_u16 in
       let* po_actions = gen_actions in
       let* po_data = gen_small_string in
       return (Of_msg.Packet_out { po_buffer_id; po_in_port; po_actions; po_data }));
      map (fun fm -> Of_msg.Flow_mod fm) gen_flow_mod;
      (let* pm_port_no = gen_u16 in
       let* pm_hw_addr = gen_mac in
       let* pm_down = bool in
       return (Of_msg.Port_mod { pm_port_no; pm_hw_addr; pm_down }));
      oneof
        [
          return (Of_msg.Stats_request Of_msg.Desc_req);
          (let* qf_match = gen_match in
           let* qf_out_port = gen_out_port_opt in
           return (Of_msg.Stats_request (Of_msg.Flow_req { qf_match; qf_out_port })));
          map (fun p -> Of_msg.Stats_request (Of_msg.Port_req p)) gen_u16;
        ];
      oneof
        [
          (let* manufacturer = gen_name 100 in
           let* hardware = gen_name 100 in
           let* software = gen_name 100 in
           let* serial = gen_name 31 in
           let* datapath_desc = gen_name 100 in
           return
             (Of_msg.Stats_reply
                (Of_msg.Desc_reply
                   { manufacturer; hardware; software; serial; datapath_desc })));
          map
            (fun entries -> Of_msg.Stats_reply (Of_msg.Flow_reply entries))
            (list_size (int_range 0 3) gen_flow_stats);
          map
            (fun entries -> Of_msg.Stats_reply (Of_msg.Port_reply entries))
            (list_size (int_range 0 3) gen_port_stats);
        ];
    ]

let gen_msg =
  let open G in
  let* xid = int32 in
  let* payload = gen_payload in
  return { Of_msg.xid; payload }

let print_msg = Format.asprintf "%a" Of_msg.pp

(* --- codec properties ------------------------------------------------ *)

let codec_roundtrip =
  prop "of_codec decode∘encode = id" gen_msg print_msg (fun m ->
      match Of_codec.of_wire (Of_codec.to_wire m) with
      | Ok m' -> m' = m
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

(* The framer must reassemble the same messages no matter how the byte
   stream is segmented. *)
let gen_framer_case =
  let open G in
  let* msgs = list_size (int_range 1 5) gen_msg in
  let* cuts = list_size (int_range 0 8) (int_range 1 32) in
  return (msgs, cuts)

let framer_chunking =
  prop "framer is segmentation-insensitive" gen_framer_case
    (fun (msgs, cuts) ->
      Printf.sprintf "%d msgs, cuts %s"
        (List.length msgs)
        (String.concat "," (List.map string_of_int cuts)))
    (fun (msgs, cuts) ->
      let stream = String.concat "" (List.map Of_codec.to_wire msgs) in
      let framer = Of_codec.Framer.create () in
      let decoded = ref [] in
      let feed chunk =
        match Of_codec.Framer.input framer chunk with
        | Ok ms -> decoded := !decoded @ ms
        | Error e -> QCheck.Test.fail_reportf "framing error: %s" e
      in
      let rec go pos cuts =
        if pos < String.length stream then
          match cuts with
          | c :: rest ->
              let len = min c (String.length stream - pos) in
              feed (String.sub stream pos len);
              go (pos + len) rest
          | [] -> feed (String.sub stream pos (String.length stream - pos))
      in
      go 0 cuts;
      !decoded = msgs && Of_codec.Framer.pending_bytes framer = 0)

(* --- address round-trips --------------------------------------------- *)

let ipv4_roundtrip =
  prop "Ipv4_addr parse∘print = id" gen_ip Ipv4_addr.to_string (fun ip ->
      match Ipv4_addr.of_string (Ipv4_addr.to_string ip) with
      | Some ip' -> Ipv4_addr.equal ip ip'
      | None -> false)

let gen_any_prefix =
  G.map2
    (fun a len -> Ipv4_addr.Prefix.make (Ipv4_addr.of_int32 a) len)
    G.int32 (G.int_range 0 32)

let prefix_print p = Format.asprintf "%a" Ipv4_addr.Prefix.pp p

let prefix_roundtrip =
  prop "Prefix parse∘print = id" gen_any_prefix prefix_print (fun p ->
      match Ipv4_addr.Prefix.of_string (prefix_print p) with
      | Some p' -> Ipv4_addr.Prefix.equal p p'
      | None -> false)

(* --- prefix trie vs naive LPM ---------------------------------------- *)

let lpm_naive entries ip =
  List.fold_left
    (fun best (p, v) ->
      if Ipv4_addr.Prefix.mem ip p then
        match best with
        | Some (bp, _)
          when Ipv4_addr.Prefix.length bp >= Ipv4_addr.Prefix.length p ->
            best
        | Some _ | None -> Some (p, v)
      else best)
    None entries

let gen_trie_case =
  let open G in
  let* raw = list_size (int_range 0 30) (pair gen_any_prefix nat) in
  (* The trie keeps one value per prefix (insert replaces); keep the
     first occurrence so the naive table agrees. *)
  let entries =
    List.fold_left
      (fun acc (p, v) ->
        if List.exists (fun (q, _) -> Ipv4_addr.Prefix.equal p q) acc then acc
        else (p, v) :: acc)
      [] raw
    |> List.rev
  in
  let* random_ips = list_size (int_range 1 10) gen_ip in
  let probes =
    List.map (fun (p, _) -> Ipv4_addr.Prefix.network p) entries @ random_ips
  in
  return (entries, probes)

let trie_vs_naive =
  prop "Prefix_trie LPM = naive scan" gen_trie_case
    (fun (entries, probes) ->
      Printf.sprintf "{%s} probing %s"
        (String.concat "; "
           (List.map
              (fun (p, v) -> Printf.sprintf "%s->%d" (prefix_print p) v)
              entries))
        (String.concat ", " (List.map Ipv4_addr.to_string probes)))
    (fun (entries, probes) ->
      let trie = Rf_routing.Prefix_trie.create () in
      List.iter (fun (p, v) -> Rf_routing.Prefix_trie.insert trie p v) entries;
      List.for_all
        (fun ip ->
          match (Rf_routing.Prefix_trie.lookup trie ip, lpm_naive entries ip) with
          | None, None -> true
          | Some (p, v), Some (p', v') ->
              Ipv4_addr.Prefix.equal p p' && v = v'
          | Some _, None | None, Some _ -> false)
        probes)

(* --- RPC envelope codec ---------------------------------------------- *)

module Rpc_msg = Rf_rpc.Rpc_msg

let gen_rpc_request =
  let open G in
  let gen_port = int_range 1 0xffff in
  let gen_len = int_range 0 32 in
  oneof
    [
      (let* dpid = ui64 in
       let* n_ports = int_range 0 0xffff in
       return (Rpc_msg.Switch_up { dpid; n_ports }));
      map (fun dpid -> Rpc_msg.Switch_down { dpid }) ui64;
      (let* a_dpid = ui64 in
       let* a_port = gen_port in
       let* a_ip = gen_ip in
       let* a_prefix_len = gen_len in
       let* b_dpid = ui64 in
       let* b_port = gen_port in
       let* b_ip = gen_ip in
       let* b_prefix_len = gen_len in
       return
         (Rpc_msg.Link_up
            {
              a_dpid;
              a_port;
              a_ip;
              a_prefix_len;
              b_dpid;
              b_port;
              b_ip;
              b_prefix_len;
            }));
      (let* a_dpid = ui64 in
       let* a_port = gen_port in
       let* b_dpid = ui64 in
       let* b_port = gen_port in
       return (Rpc_msg.Link_down { a_dpid; a_port; b_dpid; b_port }));
      (let* dpid = ui64 in
       let* port = gen_port in
       let* gateway = gen_ip in
       let* prefix_len = gen_len in
       return (Rpc_msg.Edge_subnet { dpid; port; gateway; prefix_len }));
    ]

let gen_rpc_envelope =
  let open G in
  let* epoch = int32 in
  let* seq = int32 in
  let* body =
    oneof
      [
        map (fun r -> Rpc_msg.Request r) gen_rpc_request;
        (let* a_epoch = int32 in
         let* a_cum = int32 in
         let* a_seq = int32 in
         return (Rpc_msg.Ack { a_epoch; a_cum; a_seq }));
        return Rpc_msg.Ping;
        return Rpc_msg.Pong;
        return Rpc_msg.Sync_request;
        map
          (fun msgs -> Rpc_msg.Sync_snapshot msgs)
          (list_size (int_range 0 20) gen_rpc_request);
      ]
  in
  return { Rpc_msg.epoch; seq; body }

let print_rpc_envelope (e : Rpc_msg.envelope) =
  Format.asprintf "epoch=%ld seq=%ld %a" e.epoch e.seq Rpc_msg.pp_body e.body

let rpc_codec_roundtrip =
  prop "rpc envelope decode∘encode = id" gen_rpc_envelope print_rpc_envelope
    (fun env ->
      let framer = Rpc_msg.Framer.create () in
      match Rpc_msg.Framer.input framer (Rpc_msg.to_wire env) with
      | Ok [ env' ] -> env' = env
      | Ok l -> QCheck.Test.fail_reportf "expected 1 envelope, got %d" (List.length l)
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

(* --- RPC delivery: exactly once, in order, within an epoch ----------- *)

(* An adversarial channel (seeded drops, duplicates, delays — delays
   reorder) between a live client/server pair. However the schedule
   falls, every request the client accepted must reach the server's
   handler exactly once and in submission order, because acks are
   cumulative, retransmission covers drops, the (epoch, seq) dedup
   swallows duplicates, and the reorder window holds early frames until
   the gap closes. *)
type delivery_case = {
  dc_seed : int;
  dc_n : int;
  dc_drop : float;
  dc_dup : float;
  dc_delay : float;
}

let gen_delivery_case =
  let open G in
  let* dc_seed = int_range 0 99_999 in
  let* dc_n = int_range 1 30 in
  let* dc_drop = float_bound_inclusive 0.4 in
  let* dc_dup = float_bound_inclusive 0.25 in
  let* dc_delay = float_bound_inclusive 0.25 in
  return { dc_seed; dc_n; dc_drop; dc_dup; dc_delay }

let print_delivery_case c =
  Printf.sprintf "seed=%d n=%d drop=%.2f dup=%.2f delay=%.2f" c.dc_seed c.dc_n
    c.dc_drop c.dc_dup c.dc_delay

let rpc_exactly_once =
  prop ~count:40 "rpc delivers exactly once, in order, per epoch"
    gen_delivery_case print_delivery_case (fun c ->
      let engine = Rf_sim.Engine.create ~seed:c.dc_seed () in
      let client_end, server_end =
        Rf_net.Channel.create engine
          ~latency:(Rf_sim.Vtime.span_ms 5)
          ~name:"rpc" ()
      in
      let params =
        {
          Rf_rpc.Rpc_client.rto = Rf_sim.Vtime.span_s 0.5;
          rto_max = Rf_sim.Vtime.span_s 4.0;
          max_retries = 4;
          heartbeat_every = Rf_sim.Vtime.span_s 2.0;
          heartbeat_jitter = 0.0;
          dead_after = 3;
          resync = true;
        }
      in
      let client = Rf_rpc.Rpc_client.create engine ~params client_end in
      let server = Rf_rpc.Rpc_server.create engine server_end in
      let profile =
        {
          Rf_sim.Faults.cf_drop = c.dc_drop;
          cf_duplicate = c.dc_dup;
          cf_delay = c.dc_delay;
          cf_max_delay = Rf_sim.Vtime.span_s 3.0;
        }
      in
      let rng = Rf_sim.Engine.rng engine in
      Rf_rpc.Rpc_client.set_fault_profile client (Rf_sim.Rng.split rng) profile;
      Rf_rpc.Rpc_server.set_fault_profile server (Rf_sim.Rng.split rng) profile;
      let delivered = ref [] in
      Rf_rpc.Rpc_server.set_handler server (fun msg ->
          match msg with
          | Rpc_msg.Switch_up { dpid; _ } -> delivered := dpid :: !delivered
          | _ -> ());
      for i = 1 to c.dc_n do
        ignore
          (Rf_sim.Engine.schedule_at engine
             (Rf_sim.Vtime.of_s (0.3 *. float_of_int i))
             (fun () ->
               Rf_rpc.Rpc_client.send client
                 (Rpc_msg.Switch_up { dpid = Int64.of_int i; n_ports = 4 })))
      done;
      ignore (Rf_sim.Engine.run ~until:(Rf_sim.Vtime.of_s 3600.0) engine);
      let got = List.rev !delivered in
      let want = List.init c.dc_n (fun i -> Int64.of_int (i + 1)) in
      if got <> want then
        QCheck.Test.fail_reportf "delivered [%s], wanted [%s] (retx=%d dups=%d)"
          (String.concat ";" (List.map Int64.to_string got))
          (String.concat ";" (List.map Int64.to_string want))
          (Rf_rpc.Rpc_client.retransmissions client)
          (Rf_rpc.Rpc_server.duplicates_dropped server)
      else Rf_rpc.Rpc_client.unacked client = 0)

let suite =
  [
    codec_roundtrip;
    framer_chunking;
    rpc_codec_roundtrip;
    rpc_exactly_once;
    ipv4_roundtrip;
    prefix_roundtrip;
    trie_vs_naive;
  ]
