(* Sharded engine tests: RNG stream independence, mailbox merge order,
   conservative-window mechanics, and the headline property — same-seed
   traffic runs are byte-identical for any shard count, and agree with
   the legacy single-engine generator. *)

module Engine = Rf_sim.Engine
module Vtime = Rf_sim.Vtime
module Rng = Rf_sim.Rng
module Mailbox = Rf_sim.Mailbox
module Shard_engine = Rf_sim.Shard_engine
module Spec = Rf_traffic.Spec
module Generator = Rf_traffic.Generator
module Measure = Rf_traffic.Measure
module Shard_run = Rf_traffic.Shard_run

(* --- Rng.split / derive_label --------------------------------------- *)

let draws rng n = List.init n (fun _ -> Rng.int rng 1_000_000)

(* Streams from [split] must not echo each other or the parent. *)
let test_rng_split_independence () =
  let parent = Rng.create 7 in
  let a = Rng.split parent in
  let b = Rng.split parent in
  let da = draws a 32 and db = draws b 32 and dp = draws parent 32 in
  Alcotest.(check bool) "a <> b" false (da = db);
  Alcotest.(check bool) "a <> parent" false (da = dp);
  Alcotest.(check bool) "b <> parent" false (db = dp)

(* derive_label is the repartition-stable jump: the stream depends only
   on (parent state, label) — not on sibling derivations or draw
   history after the derivation point. *)
let test_rng_derive_label_stable () =
  let p1 = Rng.create 99 in
  let p2 = Rng.create 99 in
  (* Deriving many siblings from p2 first must not change the stream
     p1 gets for the same label. *)
  for i = 0 to 9 do
    ignore (Rng.derive_label p2 (Printf.sprintf "shard:%d" i))
  done;
  let a = Rng.derive_label p1 "shard:3" in
  let b = Rng.derive_label p2 "shard:3" in
  Alcotest.(check (list int)) "same label, same stream" (draws a 32) (draws b 32);
  let c = Rng.derive_label p1 "shard:4" in
  Alcotest.(check bool)
    "different labels differ" false
    (draws (Rng.derive_label (Rng.create 99) "shard:3") 32 = draws c 32);
  (* And the parent's own draw sequence is unperturbed. *)
  let fresh = Rng.create 99 in
  Alcotest.(check (list int)) "parent unadvanced" (draws fresh 8) (draws p1 8)

(* --- Mailbox canonical merge ----------------------------------------- *)

let test_mailbox_merge_order () =
  let mb = Mailbox.create ~shards:3 in
  (* Post out of timestamp order, from several sources, with ties. *)
  Mailbox.post mb ~src:2 ~dst:0 ~at:(Vtime.of_us 50) "c";
  Mailbox.post mb ~src:0 ~dst:0 ~at:(Vtime.of_us 50) "a1";
  Mailbox.post mb ~src:0 ~dst:0 ~at:(Vtime.of_us 10) "a2";
  Mailbox.post mb ~src:1 ~dst:0 ~at:(Vtime.of_us 50) "b";
  Mailbox.post mb ~src:0 ~dst:0 ~at:(Vtime.of_us 50) "a3";
  Mailbox.post mb ~src:0 ~dst:1 ~at:(Vtime.of_us 1) "other-dst";
  let got =
    List.map (fun m -> m.Mailbox.mx_payload) (Mailbox.collect mb ~dst:0)
  in
  (* (at, src, seq): 10 first; then the t=50 batch ordered src 0 before
     1 before 2, and within src 0 in posting order. *)
  Alcotest.(check (list string))
    "canonical order"
    [ "a2"; "a1"; "a3"; "b"; "c" ]
    got;
  Alcotest.(check int) "posted counts all" 6 (Mailbox.posted mb);
  Alcotest.(check int) "dst 1 still in flight" 1 (Mailbox.in_flight mb)

(* --- Shard_engine windows -------------------------------------------- *)

(* Two shards ping-pong a counter: each message schedules the next one
   back. With lookahead equal to the message latency, the run needs one
   window per hop and the final tally is exact. *)
let ping_pong mode =
  let la = Vtime.span_ms 5 in
  let se = Shard_engine.create ~mode ~lookahead:la ~shards:2 () in
  let log = ref [] in
  let hops = 10 in
  let handler me ~at ~src:_ n =
    log := (me, Vtime.to_us at, n) :: !log;
    if n < hops then
      Shard_engine.post se ~src:me ~dst:(1 - me) ~at:(Vtime.add at la) (n + 1)
  in
  Shard_engine.set_handler se 0 (handler 0);
  Shard_engine.set_handler se 1 (handler 1);
  ignore
    (Engine.schedule_at (Shard_engine.engine se 0) (Vtime.of_us 0) (fun () ->
         Shard_engine.post se ~src:0 ~dst:1 ~at:(Vtime.add Vtime.zero la) 1));
  let result = Shard_engine.run ~until:(Vtime.of_s 1.0) se in
  let clocks =
    List.init 2 (fun i -> Vtime.to_us (Engine.now (Shard_engine.engine se i)))
  in
  (result, List.rev !log, Shard_engine.stats se, clocks)

let test_shard_engine_ping_pong () =
  let result, log, stats, clocks = ping_pong Shard_engine.Parallel in
  Alcotest.(check bool) "quiescent" true (result = Shard_engine.Quiescent);
  Alcotest.(check int) "all hops ran" 10 (List.length log);
  List.iteri
    (fun i (shard, at_us, n) ->
      Alcotest.(check int) "hop seq" (i + 1) n;
      Alcotest.(check int) "alternating shard" ((i + 1) mod 2) shard;
      Alcotest.(check int) "arrival instant" (5000 * (i + 1)) at_us)
    log;
  Alcotest.(check int) "one message per hop" 10 stats.Shard_engine.st_messages;
  (* Clocks settle at the horizon, like Engine.run ~until. *)
  Alcotest.(check (list int)) "clocks at horizon" [ 1_000_000; 1_000_000 ]
    clocks

let test_shard_engine_modes_agree () =
  let rp, logp, _, _ = ping_pong Shard_engine.Parallel in
  let rs, logs, _, _ = ping_pong Shard_engine.Sequential in
  Alcotest.(check bool) "same result" true (rp = rs);
  Alcotest.(check bool) "same log" true (logp = logs)

let test_zero_lookahead_rejected () =
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument
       "Shard_engine.create: lookahead must be positive — a zero-latency \
        cross-shard link leaves no safe horizon (drop to shards = 1 for that \
        cut)")
    (fun () ->
      ignore
        (Shard_engine.create ~lookahead:Vtime.span_zero ~shards:2 () : unit Shard_engine.t));
  (* shards = 1 tolerates any lookahead: no cross-shard horizon exists. *)
  ignore
    (Shard_engine.create ~lookahead:Vtime.span_zero ~shards:1 ()
      : unit Shard_engine.t)

let test_post_under_horizon_rejected () =
  let la = Vtime.span_ms 5 in
  let se = Shard_engine.create ~lookahead:la ~shards:2 () in
  Shard_engine.set_handler se 0 (fun ~at:_ ~src:_ () -> ());
  Shard_engine.set_handler se 1 (fun ~at:_ ~src:_ () -> ());
  let raised = ref false in
  ignore
    (Engine.schedule_at (Shard_engine.engine se 0) (Vtime.of_us 0) (fun () ->
         try Shard_engine.post se ~src:0 ~dst:1 ~at:(Vtime.of_us 100) ()
         with Invalid_argument _ -> raised := true));
  ignore (Shard_engine.run ~until:(Vtime.of_s 0.1) se);
  Alcotest.(check bool) "under-horizon post rejected" true !raised

(* --- Sharded traffic vs the legacy single-engine generator ----------- *)

(* A small synthetic fabric: [n] hosts, analytic pair latency derived
   deterministically from the host indices (1..60 ms — always positive
   and far below the 2 s loss timeout). *)
let host_name i = Printf.sprintf "h%d" i

let mk_latency ~salt ~ms_lo ~ms_hi =
  let span = max 1 (ms_hi - ms_lo + 1) in
  fun ~src ~dst ->
    let h = Hashtbl.hash (salt, src, dst) in
    Vtime.span_ms (ms_lo + (h mod span))

let mk_spec ~hosts ~pairs ~arrivals_per_s ~horizon_s ~seed =
  let pair_rng = Rng.create (seed + 7919) in
  let pair_list =
    List.init pairs (fun i ->
        let src = i mod hosts in
        let dst =
          let d = ref (Rng.int pair_rng hosts) in
          while !d = src do
            d := Rng.int pair_rng hosts
          done;
          !d
        in
        (host_name src, host_name dst))
  in
  Spec.make ~sample_cap:4 ~loss_timeout_s:2.0
    [
      Spec.cls ~name:"poisson" ~payload:512 ~port:5009 ~start_s:0.5
        ~pairs:pair_list
        (Spec.Poisson
           {
             arrivals_per_s;
             size_packets = Spec.Pareto { alpha = 1.3; xmin = 8; cap = 2000 };
             packet_rate_pps = 500.0;
             until_s = horizon_s -. 1.0;
           });
    ]

let legacy_run ~seed ~latency ~horizon_s spec =
  let engine = Engine.create ~seed () in
  let measure =
    Measure.create engine ~loss_timeout_s:spec.Spec.loss_timeout_s ()
  in
  let fabric = Generator.aggregate_fabric engine measure ~latency in
  let rng = Rng.create (seed + 1009) in
  let gen = Generator.start engine ~rng ~measure ~fabric spec in
  ignore (Engine.run ~until:(Vtime.of_s horizon_s) engine);
  Measure.finalize measure;
  (gen, measure)

let sharded_run ?(mode = Shard_engine.Sequential) ~seed ~shards ~latency
    ~horizon_s spec =
  let assign host =
    (* Deterministic static cut by host index. *)
    let i = int_of_string (String.sub host 1 (String.length host - 1)) in
    i mod shards
  in
  Shard_run.run ~seed ~mode ~shards ~assign ~latency ~horizon_s
    ~rng:(Rng.create (seed + 1009))
    spec

let check_float what tol a b =
  if Float.abs (a -. b) > tol *. (1.0 +. Float.abs a) then
    Alcotest.failf "%s: %.17g vs %.17g" what a b

let test_sharded_matches_legacy () =
  let seed = 42 and horizon_s = 8.0 in
  let latency = mk_latency ~salt:1 ~ms_lo:1 ~ms_hi:60 in
  let spec = mk_spec ~hosts:12 ~pairs:24 ~arrivals_per_s:200.0 ~horizon_s ~seed in
  let gen, measure = legacy_run ~seed ~latency ~horizon_s spec in
  let r = sharded_run ~seed ~shards:3 ~latency ~horizon_s spec in
  Alcotest.(check int) "flows" (Generator.flows_launched gen) r.Shard_run.sr_flows;
  Alcotest.(check int) "samples" (Generator.samples_sent gen) r.Shard_run.sr_samples;
  Alcotest.(check int) "offered" (Measure.total_offered measure) r.Shard_run.sr_offered;
  Alcotest.(check int) "delivered" (Measure.total_delivered measure)
    r.Shard_run.sr_delivered;
  Alcotest.(check int) "lost" (Measure.total_lost measure) r.Shard_run.sr_lost;
  Alcotest.(check int) "conservation" r.Shard_run.sr_offered
    (r.Shard_run.sr_delivered + r.Shard_run.sr_lost);
  let legacy_cls = Measure.summaries measure in
  List.iter2
    (fun (l : Measure.class_summary) (s : Measure.class_summary) ->
      Alcotest.(check string) "class" l.Measure.cs_class s.Measure.cs_class;
      Alcotest.(check int) "cls flows" l.Measure.cs_flows s.Measure.cs_flows;
      Alcotest.(check int) "cls offered" l.Measure.cs_offered s.Measure.cs_offered;
      Alcotest.(check int) "cls delivered" l.Measure.cs_delivered
        s.Measure.cs_delivered;
      Alcotest.(check int) "cls lost" l.Measure.cs_lost s.Measure.cs_lost;
      Alcotest.(check int) "cls bytes" l.Measure.cs_bytes s.Measure.cs_bytes;
      Alcotest.(check int) "cls disrupted" l.Measure.cs_disrupted_flows
        s.Measure.cs_disrupted_flows;
      (match (l.Measure.cs_window, s.Measure.cs_window) with
      | None, None -> ()
      | Some (a1, b1), Some (a2, b2) ->
          check_float "window lo" 1e-12 a1 a2;
          check_float "window hi" 1e-12 b1 b2
      | _ -> Alcotest.fail "loss windows disagree");
      match (l.Measure.cs_latency, s.Measure.cs_latency) with
      | None, None -> ()
      | Some ll, Some sl ->
          Alcotest.(check int) "latency n" ll.Rf_sim.Stats.count
            sl.Rf_sim.Stats.count;
          (* Float folds differ only in summation order. *)
          check_float "latency mean" 1e-9 ll.Rf_sim.Stats.mean
            sl.Rf_sim.Stats.mean;
          check_float "latency p50" 1e-12 ll.Rf_sim.Stats.p50
            sl.Rf_sim.Stats.p50;
          check_float "latency p99" 1e-12 ll.Rf_sim.Stats.p99
            sl.Rf_sim.Stats.p99
      | _ -> Alcotest.fail "latency summaries disagree")
    legacy_cls r.Shard_run.sr_classes

(* The headline determinism property: same seed, shards ∈ {1,2,4},
   random pair latencies — every digest, fingerprint and summary is
   byte-identical, in both execution modes. *)
let prop_shard_count_invariance =
  QCheck.Test.make ~name:"same-seed runs identical for shards in {1,2,4}"
    ~count:12
    QCheck.(
      quad (int_range 0 1_000_000) (int_range 4 16) (int_range 1 97)
        (int_range 20 400))
    (fun (seed, hosts, salt, arrivals) ->
      let horizon_s = 4.0 in
      let latency = mk_latency ~salt ~ms_lo:1 ~ms_hi:100 in
      let spec =
        mk_spec ~hosts ~pairs:(2 * hosts)
          ~arrivals_per_s:(float_of_int arrivals) ~horizon_s ~seed
      in
      let runs =
        List.map
          (fun (shards, mode) ->
            sharded_run ~mode ~seed ~shards ~latency ~horizon_s spec)
          [
            (1, Shard_engine.Sequential);
            (2, Shard_engine.Sequential);
            (2, Shard_engine.Parallel);
            (4, Shard_engine.Parallel);
          ]
      in
      match runs with
      | base :: rest ->
          List.for_all
            (fun (r : Shard_run.result) ->
              r.Shard_run.sr_digest = base.Shard_run.sr_digest
              && r.Shard_run.sr_fingerprint = base.Shard_run.sr_fingerprint
              && r.Shard_run.sr_flows = base.Shard_run.sr_flows
              && r.Shard_run.sr_offered = base.Shard_run.sr_offered
              && r.Shard_run.sr_delivered = base.Shard_run.sr_delivered
              && r.Shard_run.sr_lost = base.Shard_run.sr_lost)
            rest
      | [] -> false)

(* --- shard-map JSON round trip --------------------------------------- *)

let tiny_advisor_input () =
  {
    Rf_obs.Shard_advisor.in_nodes =
      [
        { Rf_obs.Shard_advisor.nd_id = "host:h0"; nd_weight = 30 };
        { nd_id = "host:h1"; nd_weight = 20 };
        { nd_id = "host:h2"; nd_weight = 25 };
        { nd_id = "host:h3"; nd_weight = 25 };
      ];
    in_edges =
      [
        { Rf_obs.Shard_advisor.ed_a = "host:h0"; ed_b = "host:h1"; ed_msgs = 5 };
        { ed_a = "host:h2"; ed_b = "host:h3"; ed_msgs = 7 };
      ];
    in_adjacency = [ ("host:h0", "host:h1"); ("host:h2", "host:h3") ];
    in_horizon_s = 10.0;
  }

let test_shard_map_roundtrip () =
  let report = Rf_obs.Shard_advisor.partition ~k:2 (tiny_advisor_input ()) in
  let json = Rf_obs.Shard_advisor.assignment_json report in
  let k, assignment = Rf_obs.Shard_advisor.assignment_of_json json in
  Alcotest.(check int) "k" 2 k;
  Alcotest.(check (list (pair string int)))
    "assignment round-trips"
    (Rf_obs.Shard_advisor.shard_assignment report)
    assignment;
  (* The loaded map drives host lookups through the same cut the
     advisor proposed. *)
  List.iter
    (fun (id, shard) ->
      Alcotest.(check int) id shard
        (Hashtbl.hash id |> fun _ ->
         List.assoc id assignment))
    assignment;
  Alcotest.check_raises "wrong schema rejected"
    (Rf_obs.Json.Parse_error "shard map: schema is not rfauto-shard-map-v1")
    (fun () ->
      ignore
        (Rf_obs.Shard_advisor.assignment_of_json
           {|{"schema":"bogus","k":2,"assign":{}}|}))

(* --- Network partition registration ---------------------------------- *)

let test_network_cut_stats () =
  let topo = Rf_net.Topology.create () in
  Rf_net.Topology.add_switch topo 1L;
  Rf_net.Topology.add_switch topo 2L;
  Rf_net.Topology.add_switch topo 3L;
  let connect ?latency a b =
    ignore
      (Rf_net.Topology.connect topo ?latency (Rf_net.Topology.Switch a)
         (Rf_net.Topology.Switch b))
  in
  connect ~latency:(Vtime.span_ms 4) 1L 2L;
  connect ~latency:(Vtime.span_ms 2) 2L 3L;
  connect ~latency:(Vtime.span_ms 9) 1L 3L;
  let assign = function
    | Rf_net.Topology.Switch d -> if d = 3L then 1 else 0
    | Rf_net.Topology.Host _ -> 0
  in
  let cut = Rf_net.Topology.cut_stats topo ~shards:2 ~assign in
  Alcotest.(check int) "cross edges" 2 cut.Rf_net.Topology.cut_cross_edges;
  Alcotest.(check int) "total edges" 3 cut.Rf_net.Topology.cut_total_edges;
  (match cut.Rf_net.Topology.cut_lookahead with
  | Some la ->
      Alcotest.(check int) "lookahead = min cross latency" 2000
        (Vtime.span_to_us la)
  | None -> Alcotest.fail "expected a lookahead bound");
  (* All nodes on one shard: nothing crosses, no bound. *)
  let cut1 =
    Rf_net.Topology.cut_stats topo ~shards:1 ~assign:(fun _ -> 0)
  in
  Alcotest.(check int) "no cross edges" 0 cut1.Rf_net.Topology.cut_cross_edges;
  Alcotest.(check bool) "no lookahead" true
    (cut1.Rf_net.Topology.cut_lookahead = None)

(* A scenario built with [shards] registers the partition on its
   network; a zero-latency cross link is rejected at build time. *)
let test_scenario_partition () =
  let topo = Rf_net.Topo_gen.ring 6 in
  let options = { Rf_core.Scenario.default_options with shards = 2 } in
  let s = Rf_core.Scenario.build ~options topo in
  let net = Rf_core.Scenario.network s in
  Alcotest.(check int) "partition recorded" 2
    (Rf_net.Network.partition_shards net);
  match Rf_net.Network.partition_cut net with
  | Some cut ->
      Alcotest.(check int) "shards" 2 cut.Rf_net.Topology.cut_shards;
      Alcotest.(check bool) "cut crosses the ring" true
        (cut.Rf_net.Topology.cut_cross_edges > 0);
      Alcotest.(check bool) "positive lookahead" true
        (match cut.Rf_net.Topology.cut_lookahead with
        | Some la -> Vtime.span_compare la Vtime.span_zero > 0
        | None -> false)
  | None -> Alcotest.fail "expected a recorded partition"

(* --- profiler merge across shards ------------------------------------ *)

let test_sharded_profile_merged () =
  let spec =
    mk_spec ~seed:5 ~hosts:8 ~pairs:16 ~arrivals_per_s:120.0 ~horizon_s:4.0
  in
  let latency = mk_latency ~salt:5 ~ms_lo:2 ~ms_hi:8 in
  let rng = Rng.create (5 + 1009) in
  let r =
    Shard_run.run ~seed:5 ~mode:Shard_engine.Sequential ~profile:true
      ~shards:3
      ~assign:(fun h ->
        int_of_string (String.sub h 1 (String.length h - 1)) mod 3)
      ~latency ~horizon_s:4.0 ~rng spec
  in
  match r.Shard_run.sr_profile with
  | None -> Alcotest.fail "expected a merged profile snapshot"
  | Some sn ->
      Alcotest.(check bool) "events attributed" true
        (sn.Rf_obs.Profiler.sn_events > 0);
      Alcotest.(check bool) "host entities present" true
        (List.exists
           (fun (es : Rf_obs.Profiler.entity_stat) ->
             match es.es_kind with
             | Rf_obs.Profiler.Host _ -> true
             | _ -> false)
           sn.Rf_obs.Profiler.sn_entities);
      Alcotest.check_raises "merge of nothing rejected"
        (Invalid_argument "Profiler.merge: empty list") (fun () ->
          ignore (Rf_obs.Profiler.merge []))

let suite =
  [
    Alcotest.test_case "rng: split streams independent" `Quick
      test_rng_split_independence;
    Alcotest.test_case "rng: derive_label stable under repartition" `Quick
      test_rng_derive_label_stable;
    Alcotest.test_case "mailbox: canonical (at, src, seq) merge" `Quick
      test_mailbox_merge_order;
    Alcotest.test_case "shard engine: ping-pong windows" `Quick
      test_shard_engine_ping_pong;
    Alcotest.test_case "shard engine: parallel = sequential" `Quick
      test_shard_engine_modes_agree;
    Alcotest.test_case "shard engine: zero lookahead rejected" `Quick
      test_zero_lookahead_rejected;
    Alcotest.test_case "shard engine: under-horizon post rejected" `Quick
      test_post_under_horizon_rejected;
    Alcotest.test_case "sharded traffic matches legacy generator" `Quick
      test_sharded_matches_legacy;
    Alcotest.test_case "shard map JSON round trip" `Quick
      test_shard_map_roundtrip;
    Alcotest.test_case "topology cut stats" `Quick test_network_cut_stats;
    Alcotest.test_case "scenario registers partition" `Quick
      test_scenario_partition;
    Alcotest.test_case "sharded profile merged across shards" `Quick
      test_sharded_profile_merged;
    QCheck_alcotest.to_alcotest prop_shard_count_invariance;
  ]
