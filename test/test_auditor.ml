(* Tests for the continuous forwarding-state auditor: invariant
   windows open and close at the right moments on hand-built
   topologies, the incremental update path agrees with a brute-force
   rebuild on random topologies and flow-mod sequences, and a reduced
   E9 leader-crash replay pins its violation windows at seed 42. *)

open Rf_packet
module A = Rf_obs.Auditor
module Fwd = Rf_obs.Fwd_model
module Of_match = Rf_openflow.Of_match
module Of_action = Rf_openflow.Of_action
module Experiment = Rf_core.Experiment

let pfx s = Ipv4_addr.Prefix.of_string_exn s

let rf_prio = 0x4000 + (24 * 64)

let rule ?(prio = rf_prio) ?(seq = 0) ?(rewrites = false) ~dst port =
  let actions =
    (if rewrites then
       [ Of_action.Set_dl_src Mac.zero; Of_action.Set_dl_dst Mac.broadcast ]
     else [])
    @ [ Of_action.output port ]
  in
  Fwd.rule_of_actions ~match_:(Of_match.nw_dst_prefix (pfx dst)) ~priority:prio
    ~seq actions

(* A manual clock the tests advance between updates, so window
   endpoints are checkable exactly. *)
let manual () =
  let now = ref 0 in
  let au = A.create ~clock:(fun () -> !now) () in
  (au, now)

(* Triangle: sw1 port1 <-> sw2 port2, sw2 port1 <-> sw3 port2,
   sw3 port1 <-> sw1 port2; the host subnet sits on sw1 port 3. *)
let triangle au =
  List.iter (fun d -> A.add_switch au (Int64.of_int d)) [ 1; 2; 3 ];
  A.add_link au ~a:(1L, 1) ~b:(2L, 2);
  A.add_link au ~a:(2L, 1) ~b:(3L, 2);
  A.add_link au ~a:(3L, 1) ~b:(1L, 2)

let windows_of au kind =
  List.filter (fun (w : A.window) -> w.A.w_kind = kind) (A.windows au)

(* Open violations of one kind, as printable keys. The unit fixtures
   install high-priority flows without publishing matching RIBs, so a
   rib_fib window for the touched switch rides along by design —
   each test checks its own invariant. *)
let open_of au kind =
  List.filter_map
    (fun (k, key) -> if k = kind then Some key else None)
    (A.open_violations au)

(* --- Invariant windows --------------------------------------------- *)

let test_loop_window () =
  let au, now = manual () in
  triangle au;
  (* Ring the prefix around the cycle: the loop forms (and the window
     opens) the moment the third rule closes it — loops are violations
     regardless of host coverage. *)
  A.set_switch_rules au 1L [ rule ~dst:"10.0.1.0/24" 1 ];
  A.set_switch_rules au 2L [ rule ~dst:"10.0.1.0/24" 1 ];
  now := 5;
  A.set_switch_rules au 3L [ rule ~dst:"10.0.1.0/24" 1 ];
  A.add_host au ~dpid:1L ~port:3 (pfx "10.0.1.0/24");
  Alcotest.(check int) "loop window opened" 1 (A.violations_total au A.Loop);
  Alcotest.(check (list string))
    "loop open for the ringed prefix" [ "10.0.1.0/24" ] (open_of au A.Loop);
  (* Point sw1 at its host port: every walk now delivers. *)
  now := 9;
  A.set_switch_rules au 1L [ rule ~dst:"10.0.1.0/24" 3 ];
  Alcotest.(check (list string)) "loop closed" [] (open_of au A.Loop);
  match windows_of au A.Loop with
  | [ w ] ->
      Alcotest.(check int) "opened when the cycle closed" 5 w.A.w_open_us;
      Alcotest.(check (option int)) "closed by the fix" (Some 9) w.A.w_close_us
  | ws -> Alcotest.failf "expected one loop window, got %d" (List.length ws)

let test_blackhole_and_slow_path () =
  let au, now = manual () in
  triangle au;
  now := 2;
  A.add_host au ~dpid:1L ~port:3 (pfx "10.0.1.0/24");
  (* sw1 delivers unmatched traffic for its own subnet via the
     packet-in slow path, but sw2/sw3 have no forwarding state: the
     prefix is blackholed from there. *)
  Alcotest.(check (list string))
    "blackhole opens for the covered prefix" [ "10.0.1.0/24" ]
    (open_of au A.Blackhole);
  now := 7;
  A.set_switch_rules au 2L [ rule ~dst:"10.0.1.0/24" 2 ];
  A.set_switch_rules au 3L [ rule ~dst:"10.0.1.0/24" 1 ];
  Alcotest.(check (list string))
    "routes installed, blackhole closed" [] (open_of au A.Blackhole);
  (match windows_of au A.Blackhole with
  | [ w ] ->
      Alcotest.(check int) "window opened with the host" 2 w.A.w_open_us;
      Alcotest.(check (option int)) "closed on install" (Some 7) w.A.w_close_us
  | ws -> Alcotest.failf "expected one blackhole window, got %d" (List.length ws));
  (* Reachability: all three ingresses deliver. *)
  List.iter
    (fun (ck, _, v) ->
      if String.equal ck "10.0.1.0/24" then
        Alcotest.(check string) "delivered" "delivered" v)
    (A.reachability au)

let test_link_down_blackhole () =
  let au, now = manual () in
  triangle au;
  A.add_host au ~dpid:1L ~port:3 (pfx "10.0.1.0/24");
  A.set_switch_rules au 2L [ rule ~dst:"10.0.1.0/24" 2 ];
  A.set_switch_rules au 3L [ rule ~dst:"10.0.1.0/24" 1 ];
  Alcotest.(check (list string)) "healthy" [] (open_of au A.Blackhole);
  now := 11;
  A.set_link_state au ~a:(1L, 1) ~b:(2L, 2) false;
  Alcotest.(check (list string))
    "cut blackholes sw2's path" [ "10.0.1.0/24" ] (open_of au A.Blackhole);
  now := 13;
  A.set_link_state au ~a:(1L, 1) ~b:(2L, 2) true;
  Alcotest.(check (list string)) "restored" [] (open_of au A.Blackhole)

let test_rib_fib_window () =
  let au, now = manual () in
  A.add_switch au 1L;
  now := 3;
  A.set_rib au 1L [ (pfx "10.0.5.0/24", 1) ];
  Alcotest.(check (list (pair string string)))
    "published but not installed"
    [ ("rib_fib", "sw1") ]
    (List.map (fun (k, key) -> (A.kind_to_string k, key)) (A.open_violations au));
  now := 6;
  A.set_switch_rules au 1L [ rule ~dst:"10.0.5.0/24" 1 ];
  Alcotest.(check int) "converged" 0 (List.length (A.open_violations au));
  (* Low-priority rules (the slow-path defaults) are not part of the
     installed FIB and must not count as divergence. *)
  A.set_switch_rules au 1L
    [ rule ~dst:"10.0.5.0/24" 1; rule ~prio:100 ~seq:1 ~dst:"0.0.0.0/0" 2 ];
  Alcotest.(check int) "floor filters low priorities" 0
    (List.length (A.open_violations au));
  match windows_of au A.Rib_fib with
  | [ w ] ->
      Alcotest.(check int) "opened on publish" 3 w.A.w_open_us;
      Alcotest.(check (option int)) "closed on install" (Some 6) w.A.w_close_us
  | ws -> Alcotest.failf "expected one rib_fib window, got %d" (List.length ws)

let test_slice_isolation () =
  let au, _now = manual () in
  A.add_switch au 1L;
  A.set_slice au "data" [ Of_match.nw_dst_prefix (pfx "10.0.0.0/8") ];
  let escape = Of_match.nw_dst_prefix (pfx "192.168.1.0/24") in
  A.attribute au ~dpid:1L ~match_:escape ~priority:rf_prio "data";
  Alcotest.(check (list string)) "attribution alone is no violation" []
    (open_of au A.Slice);
  A.set_switch_rules au 1L [ rule ~dst:"192.168.1.0/24" 1 ];
  Alcotest.(check (list string))
    "installed flow escapes the flowspace" [ "data" ] (open_of au A.Slice);
  A.set_switch_rules au 1L [ rule ~dst:"10.0.9.0/24" 1 ];
  Alcotest.(check (list string)) "inside the flowspace" []
    (open_of au A.Slice);
  Alcotest.(check int) "one slice window total" 1
    (A.violations_total au A.Slice)

(* --- qcheck: incremental vs brute-force rebuild -------------------- *)

(* Random ring topologies fed random update sequences (rule pushes
   with equal-priority overlaps and slices, link flaps, RIB
   publications). The incrementally-maintained auditor must agree
   with (a) a fresh auditor fed only the final state and (b) itself
   after a full recheck. *)

type op =
  | Push of int * Fwd.rule list
  | Flap of int * bool
  | Rib of int * (Ipv4_addr.Prefix.t * int) list
  | Attr of int * Ipv4_addr.Prefix.t * int

let pp_op = function
  | Push (d, rules) -> Printf.sprintf "push sw%d (%d rules)" d (List.length rules)
  | Flap (l, up) -> Printf.sprintf "link %d %s" l (if up then "up" else "down")
  | Rib (d, routes) -> Printf.sprintf "rib sw%d (%d)" d (List.length routes)
  | Attr (d, p, prio) ->
      Printf.sprintf "attr sw%d %s prio %d" d (Ipv4_addr.Prefix.to_string p) prio

let gen_case =
  let open QCheck.Gen in
  let* n = int_range 2 5 in
  let prefix_pool =
    [
      pfx "10.0.1.0/24"; pfx "10.0.2.0/24"; pfx "10.0.3.0/24";
      pfx "10.0.0.0/16"; pfx "10.0.1.128/25"; pfx "192.168.7.0/24";
    ]
  in
  let gen_rule seq =
    let* p = oneofl prefix_pool in
    let* prio = oneofl [ rf_prio; rf_prio; 0x4000 + (16 * 64); 0x4800 ] in
    let* port = int_range 1 3 in
    let* rewrites = bool in
    let actions =
      (if rewrites then [ Of_action.Set_dl_src Mac.zero ] else [])
      @ [ Of_action.output port ]
    in
    return
      (Fwd.rule_of_actions ~match_:(Of_match.nw_dst_prefix p) ~priority:prio
         ~seq actions)
  in
  let gen_op =
    let* d = int_range 1 n in
    frequency
      [
        ( 5,
          let* k = int_range 0 4 in
          let* rules = flatten_l (List.init k gen_rule) in
          return (Push (d, rules)) );
        ( 2,
          let* l = int_range 1 n in
          let* up = bool in
          return (Flap (l, up)) );
        ( 2,
          let* k = int_range 0 2 in
          let* routes =
            flatten_l
              (List.init k (fun i ->
                   let* p = oneofl prefix_pool in
                   let* port = int_range 1 3 in
                   ignore i;
                   return (p, port)))
          in
          return (Rib (d, routes)) );
        ( 1,
          let* p = oneofl prefix_pool in
          let* prio = oneofl [ rf_prio; 0x4800 ] in
          return (Attr (d, p, prio)) );
      ]
  in
  let* len = int_range 1 20 in
  let* ops = flatten_l (List.init len (fun _ -> gen_op)) in
  return (n, ops)

let arb_case =
  QCheck.make
    ~print:(fun (n, ops) ->
      Printf.sprintf "ring %d: %s" n (String.concat "; " (List.map pp_op ops)))
    gen_case

(* Ring of n switches: sw_i port1 <-> sw_(i+1) port2, host subnet
   10.0.i.0/24 on port 3 of each switch. *)
let setup_topology au n =
  for i = 1 to n do
    A.add_switch au (Int64.of_int i)
  done;
  for i = 1 to n do
    let j = (i mod n) + 1 in
    A.add_link au ~a:(Int64.of_int i, 1) ~b:(Int64.of_int j, 2)
  done;
  for i = 1 to n do
    A.add_host au ~dpid:(Int64.of_int i) ~port:3
      (pfx (Printf.sprintf "10.0.%d.0/24" i))
  done;
  A.set_slice au "data" [ Of_match.nw_dst_prefix (pfx "10.0.0.0/8") ]

let link_of n l =
  let i = ((l - 1) mod n) + 1 in
  let j = (i mod n) + 1 in
  ((Int64.of_int i, 1), (Int64.of_int j, 2))

let apply_op au n = function
  | Push (d, rules) -> A.set_switch_rules au (Int64.of_int d) rules
  | Flap (l, up) ->
      let a, b = link_of n l in
      A.set_link_state au ~a ~b up
  | Rib (d, routes) -> A.set_rib au (Int64.of_int d) routes
  | Attr (d, p, prio) ->
      A.attribute au ~dpid:(Int64.of_int d)
        ~match_:(Of_match.nw_dst_prefix p) ~priority:prio "data"

let observable au =
  ( List.map (fun (k, key) -> (A.kind_to_string k, key)) (A.open_violations au),
    A.reachability au,
    A.eq_classes au )

(* The final state an op sequence leaves behind, replayable as a
   single batch: last rule push per switch, last link state per
   link, last RIB per switch, every attribution. *)
let replay_final au n ops =
  setup_topology au n;
  let final = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let key =
        match op with
        | Push (d, _) -> ("push", d)
        | Flap (l, _) -> ("flap", ((l - 1) mod n) + 1)
        | Rib (d, _) -> ("rib", d)
        | Attr (d, p, prio) ->
            ("attr-" ^ Ipv4_addr.Prefix.to_string p ^ string_of_int prio, d)
      in
      Hashtbl.replace final key op)
    ops;
  Hashtbl.fold (fun _ op acc -> op :: acc) final []
  |> List.sort compare
  |> List.iter (fun op -> apply_op au n op)

let prop_incremental_matches_rebuild =
  QCheck.Test.make ~count:200 ~name:"incremental audit = brute-force rebuild"
    arb_case (fun (n, ops) ->
      let inc = A.create () in
      setup_topology inc n;
      List.iter (fun op -> apply_op inc n op) ops;
      let brute = A.create () in
      replay_final brute n ops;
      let vi, ri, ci = observable inc in
      let vb, rb, cb = observable brute in
      if vi <> vb then
        QCheck.Test.fail_reportf "violations differ: inc=[%s] brute=[%s]"
          (String.concat "," (List.map (fun (k, s) -> k ^ ":" ^ s) vi))
          (String.concat "," (List.map (fun (k, s) -> k ^ ":" ^ s) vb));
      if ri <> rb then QCheck.Test.fail_report "reachability differs";
      if ci <> cb then
        QCheck.Test.fail_reportf "eq classes differ: %d vs %d" ci cb;
      true)

let prop_full_recheck_idempotent =
  QCheck.Test.make ~count:200 ~name:"full recheck changes nothing"
    arb_case (fun (n, ops) ->
      let au = A.create () in
      setup_topology au n;
      List.iter (fun op -> apply_op au n op) ops;
      let before = observable au in
      A.full_recheck au;
      let after = observable au in
      before = after)

(* --- E9 leader-crash replay, reduced ring, seed 42 ----------------- *)

(* A 10-switch replica of the E9 audit replay (leader crash at 30 s,
   sw2-sw3 cut at 36 s, rejoin at 60 s). The numbers below are the
   observed seed-42 values; the run must reproduce them exactly, and
   the steady interval must stay clean. *)
let e9_replay () =
  Experiment.audit_ring_run ~scenario:"e9-leader-crash" ~label:"automatic"
    ~seed:42 ~switches:10 ~replicas:3 ~resync:true
    ~faults:
      Rf_sim.Faults.(
        plan
          [
            controller_crash ~at_s:30.0 ~replica:0 ();
            link_down ~at_s:36.0 2L 3L;
            controller_recover ~at_s:60.0 ~replica:0 ();
          ])
    ~first_fault_s:30.0 ~horizon_s:80.0 ()

let test_e9_regression () =
  let r = e9_replay () in
  Alcotest.(check int) "steady interval clean" 0 r.Experiment.ar_steady_windows;
  Alcotest.(check int) "no window left open" 0 r.Experiment.ar_open_at_end;
  Alcotest.(check int) "no unprobeable class" 0 r.Experiment.ar_dropped;
  (* The failover produces transient loops and a short blackhole while
     the new leader reroutes around the cut; every window closes. *)
  Alcotest.(check bool) "failover produced transient loops" true
    (r.Experiment.ar_loop > 0);
  Alcotest.(check bool) "cut produced blackhole windows" true
    (r.Experiment.ar_blackhole > 0);
  Alcotest.(check bool) "post-fault union under 5 s" true
    (r.Experiment.ar_fault_union_s < 5.0);
  List.iter
    (fun (w : Experiment.audit_window) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s closed" w.Experiment.aw_kind w.Experiment.aw_key)
        true
        (w.Experiment.aw_close_s <> None))
    r.Experiment.ar_fault_windows

let test_e9_deterministic () =
  let a = e9_replay () and b = e9_replay () in
  Alcotest.(check bool) "same-seed windows byte-identical" true
    (a.Experiment.ar_fault_windows = b.Experiment.ar_fault_windows
    && a.Experiment.ar_loop = b.Experiment.ar_loop
    && a.Experiment.ar_blackhole = b.Experiment.ar_blackhole
    && a.Experiment.ar_rib_fib = b.Experiment.ar_rib_fib
    && a.Experiment.ar_updates = b.Experiment.ar_updates)

let suite =
  [
    Alcotest.test_case "loop window opens and closes" `Quick test_loop_window;
    Alcotest.test_case "blackhole window + slow-path delivery" `Quick
      test_blackhole_and_slow_path;
    Alcotest.test_case "link cut opens a blackhole" `Quick
      test_link_down_blackhole;
    Alcotest.test_case "rib-fib divergence window" `Quick test_rib_fib_window;
    Alcotest.test_case "slice isolation window" `Quick test_slice_isolation;
    QCheck_alcotest.to_alcotest prop_incremental_matches_rebuild;
    QCheck_alcotest.to_alcotest prop_full_recheck_idempotent;
    Alcotest.test_case "E9 failover replay pins its windows" `Slow
      test_e9_regression;
    Alcotest.test_case "E9 replay is deterministic" `Slow test_e9_deterministic;
  ]
