(* Routing substrate tests: prefix trie, RIB selection, Quagga config
   round-trips, BGP codec and daemon behaviour, zebra glue. *)

open Rf_packet
open Rf_routing
module Engine = Rf_sim.Engine
module Vtime = Rf_sim.Vtime

let ip = Ipv4_addr.of_string_exn

let pfx = Ipv4_addr.Prefix.of_string_exn

(* --- prefix trie --------------------------------------------------------- *)

let test_trie_exact_and_lpm () =
  let t = Prefix_trie.create () in
  Prefix_trie.insert t (pfx "10.0.0.0/8") "eight";
  Prefix_trie.insert t (pfx "10.1.0.0/16") "sixteen";
  Prefix_trie.insert t (pfx "10.1.2.0/24") "twentyfour";
  Alcotest.(check (option string)) "exact /16" (Some "sixteen")
    (Prefix_trie.find_exact t (pfx "10.1.0.0/16"));
  (match Prefix_trie.lookup t (ip "10.1.2.3") with
  | Some (p, v) ->
      Alcotest.(check string) "longest" "twentyfour" v;
      Alcotest.(check int) "len" 24 (Ipv4_addr.Prefix.length p)
  | None -> Alcotest.fail "no match");
  (match Prefix_trie.lookup t (ip "10.1.9.9") with
  | Some (_, v) -> Alcotest.(check string) "middle" "sixteen" v
  | None -> Alcotest.fail "no match");
  (match Prefix_trie.lookup t (ip "10.200.0.1") with
  | Some (_, v) -> Alcotest.(check string) "shortest" "eight" v
  | None -> Alcotest.fail "no match");
  Alcotest.(check bool) "outside" true (Prefix_trie.lookup t (ip "11.0.0.1") = None)

let test_trie_remove_and_default () =
  let t = Prefix_trie.create () in
  Prefix_trie.insert t Ipv4_addr.Prefix.global "default";
  Prefix_trie.insert t (pfx "10.0.0.0/8") "ten";
  Prefix_trie.remove t (pfx "10.0.0.0/8");
  (match Prefix_trie.lookup t (ip "10.0.0.1") with
  | Some (_, v) -> Alcotest.(check string) "falls to default" "default" v
  | None -> Alcotest.fail "default missing");
  Alcotest.(check int) "size" 1 (Prefix_trie.size t)

let test_trie_entries_sorted () =
  let t = Prefix_trie.create () in
  List.iter
    (fun p -> Prefix_trie.insert t (pfx p) p)
    [ "10.1.0.0/16"; "10.0.0.0/8"; "192.168.1.0/24"; "10.1.2.0/24" ];
  let entries = List.map snd (Prefix_trie.entries t) in
  Alcotest.(check (list string)) "sorted"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "192.168.1.0/24" ]
    entries

(* Reference-model property: trie LPM equals a naive scan. *)
let prop_trie_matches_reference =
  QCheck.Test.make ~name:"trie LPM equals naive linear scan" ~count:100
    QCheck.(pair (list (pair (int_bound 0xFFFF) (int_range 8 28))) (int_bound 0xFFFFFF))
    (fun (entries, probe_raw) ->
      let t = Prefix_trie.create () in
      let prefixes =
        List.map
          (fun (raw, len) ->
            let p = Ipv4_addr.Prefix.make (Ipv4_addr.of_int32 (Int32.of_int (raw * 65537))) len in
            Prefix_trie.insert t p (Ipv4_addr.Prefix.to_string p);
            p)
          entries
      in
      let probe = Ipv4_addr.of_int32 (Int32.of_int (probe_raw * 257)) in
      let naive =
        List.fold_left
          (fun best p ->
            if Ipv4_addr.Prefix.mem probe p then
              match best with
              | Some b when Ipv4_addr.Prefix.length b >= Ipv4_addr.Prefix.length p -> best
              | _ -> Some p
            else best)
          None prefixes
      in
      match (Prefix_trie.lookup t probe, naive) with
      | None, None -> true
      | Some (p, _), Some q ->
          Ipv4_addr.Prefix.length p = Ipv4_addr.Prefix.length q
      | _ -> false)

(* --- RIB ------------------------------------------------------------------- *)

let route ?(proto = Rib.Ospf) ?(metric = 10) ?next_hop prefix =
  {
    Rib.r_prefix = pfx prefix;
    r_proto = proto;
    r_distance = Rib.default_distance proto;
    r_metric = metric;
    r_next_hop = Option.map ip next_hop;
    r_iface = "eth1";
  }

let test_rib_distance_preference () =
  let rib = Rib.create () in
  Rib.update rib (route ~proto:Rib.Ospf ~next_hop:"1.1.1.1" "10.0.0.0/24");
  Rib.update rib (route ~proto:Rib.Static ~next_hop:"2.2.2.2" "10.0.0.0/24");
  (match Rib.best rib (pfx "10.0.0.0/24") with
  | Some r -> Alcotest.(check string) "static wins" "static" (Rib.proto_name r.Rib.r_proto)
  | None -> Alcotest.fail "no route");
  Rib.withdraw rib Rib.Static (pfx "10.0.0.0/24");
  match Rib.best rib (pfx "10.0.0.0/24") with
  | Some r -> Alcotest.(check string) "ospf takes over" "ospf" (Rib.proto_name r.Rib.r_proto)
  | None -> Alcotest.fail "ospf candidate lost"

let test_rib_events () =
  let rib = Rib.create () in
  let events = ref [] in
  Rib.add_listener rib (fun e -> events := e :: !events);
  Rib.update rib (route ~next_hop:"1.1.1.1" "10.0.0.0/24");
  Rib.update rib (route ~metric:5 ~next_hop:"2.2.2.2" "10.0.0.0/24");
  Rib.withdraw rib Rib.Ospf (pfx "10.0.0.0/24");
  match List.rev !events with
  | [ Rib.Best_added _; Rib.Best_changed r; Rib.Best_removed _ ] ->
      Alcotest.(check int) "changed to better metric" 5 r.Rib.r_metric
  | evs -> Alcotest.fail (Printf.sprintf "wrong events (%d)" (List.length evs))

let test_rib_replace_proto () =
  let rib = Rib.create () in
  Rib.update rib (route ~next_hop:"1.1.1.1" "10.0.0.0/24");
  Rib.update rib (route ~next_hop:"1.1.1.1" "10.0.1.0/24");
  Rib.update rib (route ~proto:Rib.Connected "192.168.0.0/24");
  Rib.replace_proto rib Rib.Ospf
    [ route ~next_hop:"3.3.3.3" "10.0.2.0/24" ];
  Alcotest.(check int) "selected" 2 (Rib.size rib);
  Alcotest.(check bool) "old gone" true (Rib.best rib (pfx "10.0.0.0/24") = None);
  Alcotest.(check bool) "new there" true (Rib.best rib (pfx "10.0.2.0/24") <> None);
  Alcotest.(check bool) "other proto untouched" true
    (Rib.best rib (pfx "192.168.0.0/24") <> None)

let test_rib_lpm () =
  let rib = Rib.create () in
  Rib.update rib (route ~next_hop:"1.1.1.1" "10.0.0.0/8");
  Rib.update rib (route ~next_hop:"2.2.2.2" "10.1.0.0/16");
  match Rib.lookup rib (ip "10.1.5.5") with
  | Some r ->
      Alcotest.(check (option string)) "longest prefix" (Some "2.2.2.2")
        (Option.map Ipv4_addr.to_string r.Rib.r_next_hop)
  | None -> Alcotest.fail "no route"

(* --- Quagga config --------------------------------------------------------- *)

let test_zebra_conf_roundtrip () =
  let conf =
    {
      Quagga_conf.z_hostname = "vm-7";
      z_password = "rfauto";
      z_ifaces =
        [
          { Quagga_conf.ic_name = "eth1"; ic_ip = ip "172.16.0.1"; ic_prefix_len = 30 };
          { Quagga_conf.ic_name = "eth2"; ic_ip = ip "10.0.1.1"; ic_prefix_len = 24 };
        ];
      z_statics = [ { Quagga_conf.sr_prefix = pfx "0.0.0.0/0"; sr_next_hop = ip "172.16.0.2" } ];
    }
  in
  match Quagga_conf.parse_zebra (Quagga_conf.generate_zebra conf) with
  | Ok conf' ->
      Alcotest.(check string) "hostname" "vm-7" conf'.Quagga_conf.z_hostname;
      Alcotest.(check int) "ifaces" 2 (List.length conf'.Quagga_conf.z_ifaces);
      Alcotest.(check int) "statics" 1 (List.length conf'.Quagga_conf.z_statics);
      let i2 = List.nth conf'.Quagga_conf.z_ifaces 1 in
      Alcotest.(check int) "prefix len" 24 i2.Quagga_conf.ic_prefix_len
  | Error e -> Alcotest.fail e

let test_ospfd_conf_roundtrip () =
  let conf =
    {
      Quagga_conf.o_hostname = "vm-7";
      o_router_id = ip "10.255.0.7";
      o_networks = [ (pfx "172.16.0.0/30", Ipv4_addr.any); (pfx "10.0.1.0/24", Ipv4_addr.any) ];
      o_passive = [ "eth2" ];
      o_hello_interval = 5;
      o_dead_interval = 20;
    }
  in
  match Quagga_conf.parse_ospfd (Quagga_conf.generate_ospfd conf) with
  | Ok conf' ->
      Alcotest.(check bool) "router id" true
        (Ipv4_addr.equal conf'.Quagga_conf.o_router_id (ip "10.255.0.7"));
      Alcotest.(check int) "networks" 2 (List.length conf'.Quagga_conf.o_networks);
      Alcotest.(check (list string)) "passive" [ "eth2" ] conf'.Quagga_conf.o_passive;
      Alcotest.(check int) "hello" 5 conf'.Quagga_conf.o_hello_interval;
      Alcotest.(check int) "dead" 20 conf'.Quagga_conf.o_dead_interval
  | Error e -> Alcotest.fail e

let test_bgpd_conf_roundtrip () =
  let conf =
    {
      Quagga_conf.b_hostname = "vm-9";
      b_asn = 65009;
      b_router_id = ip "10.255.0.9";
      b_neighbors = [ (ip "172.16.0.2", 65010) ];
      b_networks = [ pfx "10.0.9.0/24" ];
    }
  in
  match Quagga_conf.parse_bgpd (Quagga_conf.generate_bgpd conf) with
  | Ok conf' ->
      Alcotest.(check int) "asn" 65009 conf'.Quagga_conf.b_asn;
      Alcotest.(check int) "neighbors" 1 (List.length conf'.Quagga_conf.b_neighbors);
      Alcotest.(check int) "networks" 1 (List.length conf'.Quagga_conf.b_networks)
  | Error e -> Alcotest.fail e

let test_conf_rejects_garbage () =
  (match Quagga_conf.parse_zebra "interface eth1\n ip address banana\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad address");
  (match Quagga_conf.parse_ospfd "router ospf\n network not-a-prefix area 0.0.0.0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad network");
  match Quagga_conf.parse_zebra "no such directive at all\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown line"

(* --- BGP ----------------------------------------------------------------------- *)

let test_bgp_msg_roundtrips () =
  let cases =
    [
      Bgp_msg.Open { o_asn = 65001; o_hold_time = 90; o_router_id = ip "1.1.1.1" };
      Bgp_msg.Keepalive;
      Bgp_msg.Notification { code = 6; subcode = 0 };
      Bgp_msg.Update
        {
          u_withdrawn = [ pfx "10.9.0.0/16" ];
          u_as_path = [ 65001; 65002 ];
          u_next_hop = Some (ip "172.16.0.1");
          u_nlri = [ pfx "10.1.0.0/16"; pfx "10.2.4.0/24" ];
        };
    ]
  in
  List.iter
    (fun m ->
      match Bgp_msg.of_wire (Bgp_msg.to_wire m) with
      | Ok m' ->
          if m <> m' then
            Alcotest.fail (Format.asprintf "mismatch: %a vs %a" Bgp_msg.pp m Bgp_msg.pp m')
      | Error e -> Alcotest.fail e)
    cases

(* Two BGP speakers over simulated channels. *)
let bgp_pair engine asn1 asn2 =
  let rib1 = Rib.create () and rib2 = Rib.create () in
  let d1 = Bgpd.create engine ~asn:asn1 ~router_id:(ip "1.1.1.1") rib1 in
  let d2 = Bgpd.create engine ~asn:asn2 ~router_id:(ip "2.2.2.2") rib2 in
  let e1, e2 = Rf_net.Channel.create engine () in
  let p1 =
    Bgpd.add_peer d1 ~remote_asn:asn2 ~next_hop_hint:(ip "172.16.0.1")
      ~send:(Rf_net.Channel.send e1)
  in
  let p2 =
    Bgpd.add_peer d2 ~remote_asn:asn1 ~next_hop_hint:(ip "172.16.0.2")
      ~send:(Rf_net.Channel.send e2)
  in
  Rf_net.Channel.set_receiver e1 (fun bytes -> Bgpd.input p1 bytes);
  Rf_net.Channel.set_receiver e2 (fun bytes -> Bgpd.input p2 bytes);
  Bgpd.start_peer p1;
  Bgpd.start_peer p2;
  ((d1, rib1, p1), (d2, rib2, p2))

let test_bgp_session_establishes () =
  let engine = Engine.create () in
  let (d1, _, p1), (d2, _, p2) = bgp_pair engine 65001 65002 in
  ignore (Engine.run ~until:(Vtime.of_s 5.0) engine);
  Alcotest.(check bool) "p1 established" true (Bgpd.peer_state p1 = Bgpd.Established);
  Alcotest.(check bool) "p2 established" true (Bgpd.peer_state p2 = Bgpd.Established);
  Alcotest.(check int) "d1 count" 1 (Bgpd.established_peers d1);
  Alcotest.(check int) "d2 count" 1 (Bgpd.established_peers d2)

let test_bgp_routes_propagate () =
  let engine = Engine.create () in
  let (d1, _, _), (_, rib2, _) = bgp_pair engine 65001 65002 in
  Bgpd.announce d1 (pfx "10.1.0.0/16");
  ignore (Engine.run ~until:(Vtime.of_s 10.0) engine);
  match Rib.best rib2 (pfx "10.1.0.0/16") with
  | Some r ->
      Alcotest.(check string) "proto" "bgp" (Rib.proto_name r.Rib.r_proto);
      Alcotest.(check (option string)) "next hop" (Some "172.16.0.1")
        (Option.map Ipv4_addr.to_string r.Rib.r_next_hop);
      Alcotest.(check int) "as-path length as metric" 1 r.Rib.r_metric
  | None -> Alcotest.fail "route not learned"

let test_bgp_announce_before_session () =
  let engine = Engine.create () in
  (* Announce first, then the session comes up: the full table must be
     advertised on establishment. *)
  let rib1 = Rib.create () and rib2 = Rib.create () in
  let d1 = Bgpd.create engine ~asn:65001 ~router_id:(ip "1.1.1.1") rib1 in
  let d2 = Bgpd.create engine ~asn:65002 ~router_id:(ip "2.2.2.2") rib2 in
  Bgpd.announce d1 (pfx "10.7.0.0/16");
  let e1, e2 = Rf_net.Channel.create engine () in
  let p1 = Bgpd.add_peer d1 ~remote_asn:65002 ~next_hop_hint:(ip "172.16.0.1")
      ~send:(Rf_net.Channel.send e1) in
  let p2 = Bgpd.add_peer d2 ~remote_asn:65001 ~next_hop_hint:(ip "172.16.0.2")
      ~send:(Rf_net.Channel.send e2) in
  Rf_net.Channel.set_receiver e1 (fun b -> Bgpd.input p1 b);
  Rf_net.Channel.set_receiver e2 (fun b -> Bgpd.input p2 b);
  Bgpd.start_peer p1;
  Bgpd.start_peer p2;
  ignore (Engine.run ~until:(Vtime.of_s 5.0) engine);
  Alcotest.(check bool) "learned pre-announced net" true
    (Rib.best rib2 (pfx "10.7.0.0/16") <> None)

let test_bgp_withdraw () =
  let engine = Engine.create () in
  let (d1, _, _), (_, rib2, _) = bgp_pair engine 65001 65002 in
  Bgpd.announce d1 (pfx "10.1.0.0/16");
  ignore (Engine.run ~until:(Vtime.of_s 5.0) engine);
  Alcotest.(check bool) "present" true (Rib.best rib2 (pfx "10.1.0.0/16") <> None);
  Bgpd.withdraw_network d1 (pfx "10.1.0.0/16");
  ignore (Engine.run ~until:(Vtime.of_s 10.0) engine);
  Alcotest.(check bool) "withdrawn" true (Rib.best rib2 (pfx "10.1.0.0/16") = None)

let test_bgp_loop_rejected () =
  let engine = Engine.create () in
  let (_, rib1, p1), _ = bgp_pair engine 65001 65002 in
  ignore (Engine.run ~until:(Vtime.of_s 5.0) engine);
  (* Forge an update whose AS path already contains 65001. *)
  Bgpd.input p1
    (Bgp_msg.to_wire
       (Bgp_msg.Update
          {
            u_withdrawn = [];
            u_as_path = [ 65002; 65001 ];
            u_next_hop = Some (ip "172.16.0.2");
            u_nlri = [ pfx "10.66.0.0/16" ];
          }));
  ignore (Engine.run ~until:(Vtime.of_s 6.0) engine);
  Alcotest.(check bool) "looped route rejected" true
    (Rib.best rib1 (pfx "10.66.0.0/16") = None)

(* --- zebra ------------------------------------------------------------------ *)

let test_zebra_connected_and_flap () =
  let z = Zebra.create ~hostname:"r1" () in
  let ifc = Iface.create ~name:"eth1" ~mac:(Mac.make_local 1) ~ip:(ip "10.0.0.1")
      ~prefix_len:24 () in
  Zebra.add_interface z ifc;
  Alcotest.(check int) "connected installed" 1 (List.length (Zebra.connected_routes z));
  Iface.set_up ifc false;
  Alcotest.(check int) "withdrawn on down" 0 (List.length (Zebra.connected_routes z));
  Iface.set_up ifc true;
  Alcotest.(check int) "reinstalled on up" 1 (List.length (Zebra.connected_routes z))

let test_zebra_unnumbered_then_addressed () =
  let z = Zebra.create ~hostname:"r1" () in
  let ifc = Iface.create ~name:"eth1" ~mac:(Mac.make_local 1) () in
  Zebra.add_interface z ifc;
  Alcotest.(check int) "no route while unnumbered" 0
    (List.length (Zebra.connected_routes z));
  Iface.set_address ifc ~ip:(ip "10.0.0.1") ~prefix_len:24;
  Alcotest.(check int) "route appears on addressing" 1
    (List.length (Zebra.connected_routes z))

let test_zebra_apply_config () =
  let z = Zebra.create ~hostname:"r1" () in
  let ifc = Iface.create ~name:"eth1" ~mac:(Mac.make_local 1) ~ip:(ip "172.16.0.1")
      ~prefix_len:30 () in
  Zebra.add_interface z ifc;
  let conf =
    {
      Quagga_conf.z_hostname = "r1";
      z_password = "x";
      z_ifaces = [ { Quagga_conf.ic_name = "eth1"; ic_ip = ip "172.16.0.1"; ic_prefix_len = 30 } ];
      z_statics = [ { Quagga_conf.sr_prefix = pfx "10.0.0.0/8"; sr_next_hop = ip "172.16.0.2" } ];
    }
  in
  (match Zebra.apply_config z conf with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "static installed" true
    (Rib.best (Zebra.rib z) (pfx "10.0.0.0/8") <> None);
  (* Mismatched address is rejected. *)
  let bad =
    { conf with Quagga_conf.z_ifaces =
        [ { Quagga_conf.ic_name = "eth1"; ic_ip = ip "9.9.9.9"; ic_prefix_len = 8 } ] }
  in
  match Zebra.apply_config z bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted mismatched address"

(* --- incremental SPF vs full recompute (differential oracle) ------------ *)

let spf_rid i = ip (Printf.sprintf "10.1.0.%d" (i + 1))

(* Push row [i] of the symmetric metric matrix into the SPF graph. *)
let spf_sync g adj n i =
  let links = ref [] in
  for j = n - 1 downto 0 do
    if adj.(i).(j) > 0 then links := (spf_rid j, adj.(i).(j)) :: !links
  done;
  Spf.graph_set_links g (spf_rid i) !links

let spf_snapshot t =
  List.map
    (fun (rid, d, hop) ->
      (Ipv4_addr.to_string rid, d, Ipv4_addr.to_string hop))
    (Spf.reachable t)

(* Random graphs of 4-12 routers, then a mutation sequence: each step
   rewrites one link (metric 0 = link down, otherwise cost change or
   link up). After every step the warm-started tree must match a cold
   recompute on distances AND canonical first hops — the canonical
   parent pass makes equal-cost ties deterministic, so exact equality
   is the contract, not just equal distances. *)
let prop_spf_incremental_matches_full =
  QCheck.Test.make
    ~name:"incremental SPF equals full recompute after every mutation"
    ~count:60
    QCheck.(
      triple (int_range 4 12)
        (list_of_size (Gen.int_bound 30)
           (triple (int_bound 11) (int_bound 11) (int_range 1 20)))
        (list_of_size (Gen.int_bound 20)
           (triple (int_bound 11) (int_bound 11) (int_bound 16))))
    (fun (n, edges, mutations) ->
      let adj = Array.make_matrix n n 0 in
      List.iter
        (fun (a, b, m) ->
          let i = a mod n and j = b mod n in
          if i <> j then begin
            adj.(i).(j) <- m;
            adj.(j).(i) <- m
          end)
        edges;
      let g = Spf.graph_create () in
      for i = 0 to n - 1 do
        spf_sync g adj n i
      done;
      let t = Spf.create ~root:(spf_rid 0) in
      Spf.full t g;
      List.for_all
        (fun (a, b, m) ->
          let i = a mod n and j = b mod n in
          if i = j then true
          else begin
            adj.(i).(j) <- m;
            adj.(j).(i) <- m;
            spf_sync g adj n i;
            spf_sync g adj n j;
            Spf.update t g ~dirty:[ spf_rid i; spf_rid j ];
            let fresh = Spf.create ~root:(spf_rid 0) in
            Spf.full fresh g;
            spf_snapshot t = spf_snapshot fresh
          end)
        mutations)

(* The daemon-level contract: after a sequence of LSA flaps, the RIB an
   incremental spf_now leaves behind is exactly what spf_now_full (the
   from-scratch oracle) computes — prefixes, metrics, next hops,
   interfaces, and ordering. *)
let route_repr (r : Rib.route) =
  ( Ipv4_addr.Prefix.to_string r.Rib.r_prefix,
    Rib.proto_name r.Rib.r_proto,
    r.Rib.r_distance,
    r.Rib.r_metric,
    (match r.Rib.r_next_hop with
    | None -> "-"
    | Some h -> Ipv4_addr.to_string h),
    r.Rib.r_iface )

let test_ospfd_incremental_rib_oracle () =
  let engine = Engine.create () in
  let join a b =
    Iface.set_transmit a (fun f ->
        ignore
          (Engine.schedule engine (Vtime.span_ms 1) (fun () ->
               Iface.deliver b f)));
    Iface.set_transmit b (fun f ->
        ignore
          (Engine.schedule engine (Vtime.span_ms 1) (fun () ->
               Iface.deliver a f)))
  in
  let n = 6 in
  let ribs = Array.init n (fun _ -> Rib.create ()) in
  let routers =
    Array.init n (fun i ->
        let rid = ip (Printf.sprintf "10.250.0.%d" (i + 1)) in
        Ospfd.create engine (Ospfd.default_config ~router_id:rid) ribs.(i))
  in
  Array.iteri
    (fun i d ->
      let stub =
        Iface.create
          ~name:(Printf.sprintf "stub%d" i)
          ~mac:(Mac.make_local (7000 + i))
          ~ip:(ip (Printf.sprintf "10.8.%d.1" i))
          ~prefix_len:24 ()
      in
      Ospfd.add_interface d ~passive:true stub)
    routers;
  for i = 0 to n - 2 do
    let ia =
      Iface.create
        ~name:(Printf.sprintf "r%d" i)
        ~mac:(Mac.make_local (7100 + (2 * i)))
        ~ip:(ip (Printf.sprintf "172.21.%d.1" i))
        ~prefix_len:30 ()
    in
    let ib =
      Iface.create
        ~name:(Printf.sprintf "l%d" (i + 1))
        ~mac:(Mac.make_local (7101 + (2 * i)))
        ~ip:(ip (Printf.sprintf "172.21.%d.2" i))
        ~prefix_len:30 ()
    in
    join ia ib;
    Ospfd.add_interface routers.(i) ia;
    Ospfd.add_interface routers.(i + 1) ib
  done;
  Array.iter Ospfd.start routers;
  ignore (Engine.run ~until:(Vtime.of_s 60.) engine);
  let d = routers.(0) in
  let rib = ribs.(0) in
  let flap_rid = ip "10.250.0.5" in
  let base_lsa =
    List.find
      (fun (l : Ospf_pkt.lsa) -> Ipv4_addr.compare l.adv_router flap_rid = 0)
      (Ospfd.lsdb d)
  in
  let seq = ref base_lsa.Ospf_pkt.seq in
  let flap metric =
    seq := Int32.succ !seq;
    let body =
      match base_lsa.Ospf_pkt.body with
      | Ospf_pkt.Router { links } ->
          Ospf_pkt.Router
            {
              links =
                List.map
                  (fun (l : Ospf_pkt.router_link) ->
                    match l.link_type with
                    | Ospf_pkt.Point_to_point -> { l with metric }
                    | _ -> l)
                  links;
            }
      | b -> b
    in
    Ospfd.install_lsa d { base_lsa with seq = !seq; body }
  in
  List.iteri
    (fun step metric ->
      flap metric;
      let n_inc = Ospfd.spf_now d in
      let after_inc = List.map route_repr (Rib.selected rib) in
      let n_full = Ospfd.spf_now_full d in
      let after_full = List.map route_repr (Rib.selected rib) in
      Alcotest.(check int)
        (Printf.sprintf "route count, step %d" step)
        n_full n_inc;
      Alcotest.(check (list (pair string (pair string (pair int (pair int (pair string string)))))))
        (Printf.sprintf "RIB identical, step %d" step)
        (List.map
           (fun (a, b, c, d', e, f) -> (a, (b, (c, (d', (e, f))))))
           after_full)
        (List.map
           (fun (a, b, c, d', e, f) -> (a, (b, (c, (d', (e, f))))))
           after_inc))
    [ 11; 10; 25; 10; 3; 10 ]

let suite =
  [
    Alcotest.test_case "trie exact and LPM" `Quick test_trie_exact_and_lpm;
    Alcotest.test_case "trie remove, default route" `Quick test_trie_remove_and_default;
    Alcotest.test_case "trie entries sorted" `Quick test_trie_entries_sorted;
    QCheck_alcotest.to_alcotest prop_trie_matches_reference;
    Alcotest.test_case "rib admin distance preference" `Quick
      test_rib_distance_preference;
    Alcotest.test_case "rib change events" `Quick test_rib_events;
    Alcotest.test_case "rib replace_proto" `Quick test_rib_replace_proto;
    Alcotest.test_case "rib longest-prefix lookup" `Quick test_rib_lpm;
    Alcotest.test_case "zebra.conf roundtrip" `Quick test_zebra_conf_roundtrip;
    Alcotest.test_case "ospfd.conf roundtrip" `Quick test_ospfd_conf_roundtrip;
    Alcotest.test_case "bgpd.conf roundtrip" `Quick test_bgpd_conf_roundtrip;
    Alcotest.test_case "config parser rejects garbage" `Quick test_conf_rejects_garbage;
    Alcotest.test_case "bgp message roundtrips" `Quick test_bgp_msg_roundtrips;
    Alcotest.test_case "bgp session establishes" `Quick test_bgp_session_establishes;
    Alcotest.test_case "bgp routes propagate with next-hop" `Quick
      test_bgp_routes_propagate;
    Alcotest.test_case "bgp full table on late establishment" `Quick
      test_bgp_announce_before_session;
    Alcotest.test_case "bgp withdraw" `Quick test_bgp_withdraw;
    Alcotest.test_case "bgp AS-path loop rejected" `Quick test_bgp_loop_rejected;
    Alcotest.test_case "zebra connected routes follow link state" `Quick
      test_zebra_connected_and_flap;
    Alcotest.test_case "zebra unnumbered then addressed" `Quick
      test_zebra_unnumbered_then_addressed;
    Alcotest.test_case "zebra apply_config" `Quick test_zebra_apply_config;
    QCheck_alcotest.to_alcotest prop_spf_incremental_matches_full;
    Alcotest.test_case "ospfd incremental SPF leaves oracle RIB" `Quick
      test_ospfd_incremental_rib_oracle;
  ]
